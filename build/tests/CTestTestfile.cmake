# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_tie[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_tooling[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_cli_common[1]_include.cmake")
add_test(integration_end_to_end "/root/repo/build/tests/test_integration")
set_tests_properties(integration_end_to_end PROPERTIES  TIMEOUT "900" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;31;add_test;/root/repo/tests/CMakeLists.txt;0;")
