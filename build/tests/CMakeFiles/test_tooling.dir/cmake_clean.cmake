file(REMOVE_RECURSE
  "CMakeFiles/test_tooling.dir/test_tooling.cpp.o"
  "CMakeFiles/test_tooling.dir/test_tooling.cpp.o.d"
  "test_tooling"
  "test_tooling.pdb"
  "test_tooling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
