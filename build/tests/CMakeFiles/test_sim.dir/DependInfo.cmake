
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/test_sim.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/test_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/exten_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/explore/CMakeFiles/exten_explore.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/exten_model.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/exten_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/exten_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/exten_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tie/CMakeFiles/exten_tie.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/exten_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/exten_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
