# Empty dependencies file for test_cli_common.
# This may be replaced when dependencies are built.
