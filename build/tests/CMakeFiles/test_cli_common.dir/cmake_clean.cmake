file(REMOVE_RECURSE
  "CMakeFiles/test_cli_common.dir/test_cli_common.cpp.o"
  "CMakeFiles/test_cli_common.dir/test_cli_common.cpp.o.d"
  "test_cli_common"
  "test_cli_common.pdb"
  "test_cli_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cli_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
