file(REMOVE_RECURSE
  "CMakeFiles/test_tie.dir/test_tie.cpp.o"
  "CMakeFiles/test_tie.dir/test_tie.cpp.o.d"
  "test_tie"
  "test_tie.pdb"
  "test_tie[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
