# Empty dependencies file for test_tie.
# This may be replaced when dependencies are built.
