# Empty compiler generated dependencies file for xtc-characterize.
# This may be replaced when dependencies are built.
