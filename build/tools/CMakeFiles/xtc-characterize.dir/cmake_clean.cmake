file(REMOVE_RECURSE
  "CMakeFiles/xtc-characterize.dir/xtc_characterize.cpp.o"
  "CMakeFiles/xtc-characterize.dir/xtc_characterize.cpp.o.d"
  "xtc-characterize"
  "xtc-characterize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtc-characterize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
