# Empty compiler generated dependencies file for xtc-energy.
# This may be replaced when dependencies are built.
