file(REMOVE_RECURSE
  "CMakeFiles/xtc-energy.dir/xtc_energy.cpp.o"
  "CMakeFiles/xtc-energy.dir/xtc_energy.cpp.o.d"
  "xtc-energy"
  "xtc-energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtc-energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
