# Empty compiler generated dependencies file for xtc-asm.
# This may be replaced when dependencies are built.
