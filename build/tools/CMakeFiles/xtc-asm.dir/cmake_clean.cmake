file(REMOVE_RECURSE
  "CMakeFiles/xtc-asm.dir/xtc_asm.cpp.o"
  "CMakeFiles/xtc-asm.dir/xtc_asm.cpp.o.d"
  "xtc-asm"
  "xtc-asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtc-asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
