file(REMOVE_RECURSE
  "CMakeFiles/xtc-explore.dir/xtc_explore.cpp.o"
  "CMakeFiles/xtc-explore.dir/xtc_explore.cpp.o.d"
  "xtc-explore"
  "xtc-explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtc-explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
