# Empty compiler generated dependencies file for xtc-explore.
# This may be replaced when dependencies are built.
