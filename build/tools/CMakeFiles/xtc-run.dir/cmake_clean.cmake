file(REMOVE_RECURSE
  "CMakeFiles/xtc-run.dir/xtc_run.cpp.o"
  "CMakeFiles/xtc-run.dir/xtc_run.cpp.o.d"
  "xtc-run"
  "xtc-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtc-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
