# Empty compiler generated dependencies file for xtc-run.
# This may be replaced when dependencies are built.
