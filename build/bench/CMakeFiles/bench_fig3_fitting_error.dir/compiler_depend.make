# Empty compiler generated dependencies file for bench_fig3_fitting_error.
# This may be replaced when dependencies are built.
