file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_configs.dir/bench_ablation_configs.cpp.o"
  "CMakeFiles/bench_ablation_configs.dir/bench_ablation_configs.cpp.o.d"
  "bench_ablation_configs"
  "bench_ablation_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
