# Empty compiler generated dependencies file for bench_suite_diagnostics.
# This may be replaced when dependencies are built.
