file(REMOVE_RECURSE
  "CMakeFiles/bench_suite_diagnostics.dir/bench_suite_diagnostics.cpp.o"
  "CMakeFiles/bench_suite_diagnostics.dir/bench_suite_diagnostics.cpp.o.d"
  "bench_suite_diagnostics"
  "bench_suite_diagnostics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_suite_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
