file(REMOVE_RECURSE
  "CMakeFiles/bench_example1_side_effects.dir/bench_example1_side_effects.cpp.o"
  "CMakeFiles/bench_example1_side_effects.dir/bench_example1_side_effects.cpp.o.d"
  "bench_example1_side_effects"
  "bench_example1_side_effects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example1_side_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
