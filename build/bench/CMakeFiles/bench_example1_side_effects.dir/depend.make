# Empty dependencies file for bench_example1_side_effects.
# This may be replaced when dependencies are built.
