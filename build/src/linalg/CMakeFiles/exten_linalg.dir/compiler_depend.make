# Empty compiler generated dependencies file for exten_linalg.
# This may be replaced when dependencies are built.
