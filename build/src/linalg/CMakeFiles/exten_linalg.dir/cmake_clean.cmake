file(REMOVE_RECURSE
  "CMakeFiles/exten_linalg.dir/least_squares.cpp.o"
  "CMakeFiles/exten_linalg.dir/least_squares.cpp.o.d"
  "CMakeFiles/exten_linalg.dir/matrix.cpp.o"
  "CMakeFiles/exten_linalg.dir/matrix.cpp.o.d"
  "libexten_linalg.a"
  "libexten_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exten_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
