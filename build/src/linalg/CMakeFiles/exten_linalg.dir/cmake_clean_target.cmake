file(REMOVE_RECURSE
  "libexten_linalg.a"
)
