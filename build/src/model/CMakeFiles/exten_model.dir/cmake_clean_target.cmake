file(REMOVE_RECURSE
  "libexten_model.a"
)
