file(REMOVE_RECURSE
  "CMakeFiles/exten_model.dir/characterize.cpp.o"
  "CMakeFiles/exten_model.dir/characterize.cpp.o.d"
  "CMakeFiles/exten_model.dir/estimate.cpp.o"
  "CMakeFiles/exten_model.dir/estimate.cpp.o.d"
  "CMakeFiles/exten_model.dir/macro_model.cpp.o"
  "CMakeFiles/exten_model.dir/macro_model.cpp.o.d"
  "CMakeFiles/exten_model.dir/profiler.cpp.o"
  "CMakeFiles/exten_model.dir/profiler.cpp.o.d"
  "CMakeFiles/exten_model.dir/test_program.cpp.o"
  "CMakeFiles/exten_model.dir/test_program.cpp.o.d"
  "CMakeFiles/exten_model.dir/validate.cpp.o"
  "CMakeFiles/exten_model.dir/validate.cpp.o.d"
  "CMakeFiles/exten_model.dir/variables.cpp.o"
  "CMakeFiles/exten_model.dir/variables.cpp.o.d"
  "libexten_model.a"
  "libexten_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exten_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
