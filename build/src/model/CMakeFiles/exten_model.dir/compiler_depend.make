# Empty compiler generated dependencies file for exten_model.
# This may be replaced when dependencies are built.
