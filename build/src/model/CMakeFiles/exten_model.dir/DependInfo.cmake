
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/characterize.cpp" "src/model/CMakeFiles/exten_model.dir/characterize.cpp.o" "gcc" "src/model/CMakeFiles/exten_model.dir/characterize.cpp.o.d"
  "/root/repo/src/model/estimate.cpp" "src/model/CMakeFiles/exten_model.dir/estimate.cpp.o" "gcc" "src/model/CMakeFiles/exten_model.dir/estimate.cpp.o.d"
  "/root/repo/src/model/macro_model.cpp" "src/model/CMakeFiles/exten_model.dir/macro_model.cpp.o" "gcc" "src/model/CMakeFiles/exten_model.dir/macro_model.cpp.o.d"
  "/root/repo/src/model/profiler.cpp" "src/model/CMakeFiles/exten_model.dir/profiler.cpp.o" "gcc" "src/model/CMakeFiles/exten_model.dir/profiler.cpp.o.d"
  "/root/repo/src/model/test_program.cpp" "src/model/CMakeFiles/exten_model.dir/test_program.cpp.o" "gcc" "src/model/CMakeFiles/exten_model.dir/test_program.cpp.o.d"
  "/root/repo/src/model/validate.cpp" "src/model/CMakeFiles/exten_model.dir/validate.cpp.o" "gcc" "src/model/CMakeFiles/exten_model.dir/validate.cpp.o.d"
  "/root/repo/src/model/variables.cpp" "src/model/CMakeFiles/exten_model.dir/variables.cpp.o" "gcc" "src/model/CMakeFiles/exten_model.dir/variables.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/exten_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/exten_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/exten_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/tie/CMakeFiles/exten_tie.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/exten_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/exten_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
