# Empty dependencies file for exten_isa.
# This may be replaced when dependencies are built.
