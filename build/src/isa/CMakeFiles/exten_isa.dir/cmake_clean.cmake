file(REMOVE_RECURSE
  "CMakeFiles/exten_isa.dir/assembler.cpp.o"
  "CMakeFiles/exten_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/exten_isa.dir/disassembler.cpp.o"
  "CMakeFiles/exten_isa.dir/disassembler.cpp.o.d"
  "CMakeFiles/exten_isa.dir/encoding.cpp.o"
  "CMakeFiles/exten_isa.dir/encoding.cpp.o.d"
  "CMakeFiles/exten_isa.dir/image_io.cpp.o"
  "CMakeFiles/exten_isa.dir/image_io.cpp.o.d"
  "CMakeFiles/exten_isa.dir/isa.cpp.o"
  "CMakeFiles/exten_isa.dir/isa.cpp.o.d"
  "CMakeFiles/exten_isa.dir/program.cpp.o"
  "CMakeFiles/exten_isa.dir/program.cpp.o.d"
  "libexten_isa.a"
  "libexten_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exten_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
