file(REMOVE_RECURSE
  "libexten_isa.a"
)
