file(REMOVE_RECURSE
  "CMakeFiles/exten_explore.dir/explore.cpp.o"
  "CMakeFiles/exten_explore.dir/explore.cpp.o.d"
  "libexten_explore.a"
  "libexten_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exten_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
