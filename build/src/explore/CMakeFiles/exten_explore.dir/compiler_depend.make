# Empty compiler generated dependencies file for exten_explore.
# This may be replaced when dependencies are built.
