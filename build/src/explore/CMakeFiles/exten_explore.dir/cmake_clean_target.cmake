file(REMOVE_RECURSE
  "libexten_explore.a"
)
