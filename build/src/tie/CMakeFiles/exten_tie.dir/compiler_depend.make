# Empty compiler generated dependencies file for exten_tie.
# This may be replaced when dependencies are built.
