file(REMOVE_RECURSE
  "CMakeFiles/exten_tie.dir/compiler.cpp.o"
  "CMakeFiles/exten_tie.dir/compiler.cpp.o.d"
  "CMakeFiles/exten_tie.dir/components.cpp.o"
  "CMakeFiles/exten_tie.dir/components.cpp.o.d"
  "CMakeFiles/exten_tie.dir/expr.cpp.o"
  "CMakeFiles/exten_tie.dir/expr.cpp.o.d"
  "CMakeFiles/exten_tie.dir/parser.cpp.o"
  "CMakeFiles/exten_tie.dir/parser.cpp.o.d"
  "CMakeFiles/exten_tie.dir/state.cpp.o"
  "CMakeFiles/exten_tie.dir/state.cpp.o.d"
  "libexten_tie.a"
  "libexten_tie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exten_tie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
