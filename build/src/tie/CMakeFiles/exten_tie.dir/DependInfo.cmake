
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tie/compiler.cpp" "src/tie/CMakeFiles/exten_tie.dir/compiler.cpp.o" "gcc" "src/tie/CMakeFiles/exten_tie.dir/compiler.cpp.o.d"
  "/root/repo/src/tie/components.cpp" "src/tie/CMakeFiles/exten_tie.dir/components.cpp.o" "gcc" "src/tie/CMakeFiles/exten_tie.dir/components.cpp.o.d"
  "/root/repo/src/tie/expr.cpp" "src/tie/CMakeFiles/exten_tie.dir/expr.cpp.o" "gcc" "src/tie/CMakeFiles/exten_tie.dir/expr.cpp.o.d"
  "/root/repo/src/tie/parser.cpp" "src/tie/CMakeFiles/exten_tie.dir/parser.cpp.o" "gcc" "src/tie/CMakeFiles/exten_tie.dir/parser.cpp.o.d"
  "/root/repo/src/tie/state.cpp" "src/tie/CMakeFiles/exten_tie.dir/state.cpp.o" "gcc" "src/tie/CMakeFiles/exten_tie.dir/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/exten_util.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/exten_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
