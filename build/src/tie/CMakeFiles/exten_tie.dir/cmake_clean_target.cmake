file(REMOVE_RECURSE
  "libexten_tie.a"
)
