file(REMOVE_RECURSE
  "CMakeFiles/exten_power.dir/estimator.cpp.o"
  "CMakeFiles/exten_power.dir/estimator.cpp.o.d"
  "libexten_power.a"
  "libexten_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exten_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
