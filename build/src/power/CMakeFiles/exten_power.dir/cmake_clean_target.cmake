file(REMOVE_RECURSE
  "libexten_power.a"
)
