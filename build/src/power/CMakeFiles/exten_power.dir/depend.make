# Empty dependencies file for exten_power.
# This may be replaced when dependencies are built.
