# Empty compiler generated dependencies file for exten_util.
# This may be replaced when dependencies are built.
