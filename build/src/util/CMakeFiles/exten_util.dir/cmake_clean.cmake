file(REMOVE_RECURSE
  "CMakeFiles/exten_util.dir/strings.cpp.o"
  "CMakeFiles/exten_util.dir/strings.cpp.o.d"
  "CMakeFiles/exten_util.dir/table.cpp.o"
  "CMakeFiles/exten_util.dir/table.cpp.o.d"
  "libexten_util.a"
  "libexten_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exten_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
