file(REMOVE_RECURSE
  "libexten_util.a"
)
