# Empty dependencies file for exten_sim.
# This may be replaced when dependencies are built.
