file(REMOVE_RECURSE
  "libexten_sim.a"
)
