file(REMOVE_RECURSE
  "CMakeFiles/exten_sim.dir/cache.cpp.o"
  "CMakeFiles/exten_sim.dir/cache.cpp.o.d"
  "CMakeFiles/exten_sim.dir/cpu.cpp.o"
  "CMakeFiles/exten_sim.dir/cpu.cpp.o.d"
  "CMakeFiles/exten_sim.dir/memory.cpp.o"
  "CMakeFiles/exten_sim.dir/memory.cpp.o.d"
  "CMakeFiles/exten_sim.dir/tracer.cpp.o"
  "CMakeFiles/exten_sim.dir/tracer.cpp.o.d"
  "libexten_sim.a"
  "libexten_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exten_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
