
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/exten_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/exten_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/cpu.cpp" "src/sim/CMakeFiles/exten_sim.dir/cpu.cpp.o" "gcc" "src/sim/CMakeFiles/exten_sim.dir/cpu.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/sim/CMakeFiles/exten_sim.dir/memory.cpp.o" "gcc" "src/sim/CMakeFiles/exten_sim.dir/memory.cpp.o.d"
  "/root/repo/src/sim/tracer.cpp" "src/sim/CMakeFiles/exten_sim.dir/tracer.cpp.o" "gcc" "src/sim/CMakeFiles/exten_sim.dir/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/exten_util.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/exten_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/tie/CMakeFiles/exten_tie.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
