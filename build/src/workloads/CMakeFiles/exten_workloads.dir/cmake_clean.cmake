file(REMOVE_RECURSE
  "CMakeFiles/exten_workloads.dir/asm_util.cpp.o"
  "CMakeFiles/exten_workloads.dir/asm_util.cpp.o.d"
  "CMakeFiles/exten_workloads.dir/extras.cpp.o"
  "CMakeFiles/exten_workloads.dir/extras.cpp.o.d"
  "CMakeFiles/exten_workloads.dir/kernels.cpp.o"
  "CMakeFiles/exten_workloads.dir/kernels.cpp.o.d"
  "CMakeFiles/exten_workloads.dir/reed_solomon.cpp.o"
  "CMakeFiles/exten_workloads.dir/reed_solomon.cpp.o.d"
  "CMakeFiles/exten_workloads.dir/synthetic.cpp.o"
  "CMakeFiles/exten_workloads.dir/synthetic.cpp.o.d"
  "CMakeFiles/exten_workloads.dir/tie_library.cpp.o"
  "CMakeFiles/exten_workloads.dir/tie_library.cpp.o.d"
  "libexten_workloads.a"
  "libexten_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exten_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
