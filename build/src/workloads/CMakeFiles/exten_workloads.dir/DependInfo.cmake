
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/asm_util.cpp" "src/workloads/CMakeFiles/exten_workloads.dir/asm_util.cpp.o" "gcc" "src/workloads/CMakeFiles/exten_workloads.dir/asm_util.cpp.o.d"
  "/root/repo/src/workloads/extras.cpp" "src/workloads/CMakeFiles/exten_workloads.dir/extras.cpp.o" "gcc" "src/workloads/CMakeFiles/exten_workloads.dir/extras.cpp.o.d"
  "/root/repo/src/workloads/kernels.cpp" "src/workloads/CMakeFiles/exten_workloads.dir/kernels.cpp.o" "gcc" "src/workloads/CMakeFiles/exten_workloads.dir/kernels.cpp.o.d"
  "/root/repo/src/workloads/reed_solomon.cpp" "src/workloads/CMakeFiles/exten_workloads.dir/reed_solomon.cpp.o" "gcc" "src/workloads/CMakeFiles/exten_workloads.dir/reed_solomon.cpp.o.d"
  "/root/repo/src/workloads/synthetic.cpp" "src/workloads/CMakeFiles/exten_workloads.dir/synthetic.cpp.o" "gcc" "src/workloads/CMakeFiles/exten_workloads.dir/synthetic.cpp.o.d"
  "/root/repo/src/workloads/tie_library.cpp" "src/workloads/CMakeFiles/exten_workloads.dir/tie_library.cpp.o" "gcc" "src/workloads/CMakeFiles/exten_workloads.dir/tie_library.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/exten_model.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/exten_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/exten_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/exten_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tie/CMakeFiles/exten_tie.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/exten_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/exten_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
