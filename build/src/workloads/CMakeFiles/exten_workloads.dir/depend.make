# Empty dependencies file for exten_workloads.
# This may be replaced when dependencies are built.
