file(REMOVE_RECURSE
  "libexten_workloads.a"
)
