# Empty dependencies file for characterize_processor.
# This may be replaced when dependencies are built.
