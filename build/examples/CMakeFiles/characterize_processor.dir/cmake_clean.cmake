file(REMOVE_RECURSE
  "CMakeFiles/characterize_processor.dir/characterize_processor.cpp.o"
  "CMakeFiles/characterize_processor.dir/characterize_processor.cpp.o.d"
  "characterize_processor"
  "characterize_processor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_processor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
