file(REMOVE_RECURSE
  "CMakeFiles/tie_tutorial.dir/tie_tutorial.cpp.o"
  "CMakeFiles/tie_tutorial.dir/tie_tutorial.cpp.o.d"
  "tie_tutorial"
  "tie_tutorial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tie_tutorial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
