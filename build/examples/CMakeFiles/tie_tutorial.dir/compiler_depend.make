# Empty compiler generated dependencies file for tie_tutorial.
# This may be replaced when dependencies are built.
