file(REMOVE_RECURSE
  "CMakeFiles/dsp_pipeline.dir/dsp_pipeline.cpp.o"
  "CMakeFiles/dsp_pipeline.dir/dsp_pipeline.cpp.o.d"
  "dsp_pipeline"
  "dsp_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
