// Reproduces the paper's Fig. 4: relative accuracy of the macro-model when
// used for energy optimization studies — one application (Reed-Solomon
// encoding/decoding) with four custom-instruction choices, estimated by
// both the macro-model and the RTL-level tool.
//
// Paper shape: the two profiles track one another across the choices, so
// the macro-model ranks candidate extensions correctly without
// synthesizing any of them.

#include "bench/bench_common.h"
#include "model/estimate.h"
#include "util/stats.h"

int main() {
  using namespace exten;
  bench::heading(
      "Fig. 4: Reed-Solomon energy across four custom-instruction choices");

  const model::CharacterizationResult result = bench::characterize_default();

  struct Point {
    std::string name;
    double est_uj;
    double ref_uj;
    std::uint64_t cycles;
  };
  std::vector<Point> points;
  double full_scale = 0.0;
  for (const model::TestProgram& variant :
       workloads::reed_solomon_variants()) {
    const model::EnergyEstimate est =
        model::estimate_energy(result.model, variant);
    const model::ReferenceResult ref = model::reference_energy(variant);
    points.push_back({variant.name, est.energy_uj(), ref.energy_uj(),
                      ref.stats.cycles});
    full_scale = std::max(full_scale, std::max(est.energy_uj(), ref.energy_uj()));
  }

  AsciiTable table({"Configuration", "Macro-model (uJ)", "RTL tool (uJ)",
                    "Error (%)", "Cycles"});
  for (const Point& p : points) {
    table.add_row({p.name, format_fixed(p.est_uj, 1),
                   format_fixed(p.ref_uj, 1),
                   format_fixed(percent_error(p.est_uj, p.ref_uj), 1),
                   with_commas(p.cycles)});
  }
  table.print(std::cout);

  std::cout << "\nprofiles (macro-model M vs RTL tool R):\n";
  for (const Point& p : points) {
    std::printf("  %-10s M |%-44s %8.1f uJ\n", p.name.c_str(),
                bench::bar(p.est_uj, full_scale, 44).c_str(), p.est_uj);
    std::printf("  %-10s R |%-44s %8.1f uJ\n", "",
                bench::bar(p.ref_uj, full_scale, 44).c_str(), p.ref_uj);
  }

  // Ordering agreement (the actual claim of Fig. 4).
  bool ordering_preserved = true;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (points[i].ref_uj > points[j].ref_uj * 1.05 &&
          points[i].est_uj <= points[j].est_uj) {
        ordering_preserved = false;
      }
    }
  }
  std::cout << "\nrelative ordering preserved: "
            << (ordering_preserved ? "yes" : "NO") << "\n";
  return 0;
}
