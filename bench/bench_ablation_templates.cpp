// Ablation A (ours): what does the *hybrid* template buy?
//
// The paper's central design decision (§I, §III) is combining
// instruction-level variables (base-core usage) with structural variables
// (custom-hardware usage). This harness re-fits the macro-model with the
// structural variables removed — the "conventional instruction-level
// macro-model" a fixed-ISA methodology would use — and compares application
// accuracy. The instruction-level-only template has no way to price custom
// datapaths, so it degrades most on the extension-heavy applications and
// mis-ranks the Reed-Solomon design points.

#include <cmath>

#include "bench/bench_common.h"
#include "linalg/least_squares.h"
#include "model/estimate.h"
#include "model/profiler.h"
#include "sim/cpu.h"
#include "util/stats.h"

namespace {

using namespace exten;

/// Fits on a column subset: columns not in [0, keep) are dropped from the
/// regression and get zero coefficients.
model::EnergyMacroModel fit_truncated(
    const std::vector<model::ProgramObservation>& observations,
    std::size_t keep) {
  linalg::Matrix a(observations.size(), keep);
  linalg::Vector e(observations.size());
  for (std::size_t r = 0; r < observations.size(); ++r) {
    const double w = 1.0 / observations[r].reference_pj;
    for (std::size_t c = 0; c < keep; ++c) {
      a(r, c) = observations[r].variables[c] * w;
    }
    e[r] = 1.0;
  }
  linalg::LeastSquaresOptions options;
  options.ridge_lambda = 1e-9;  // guard against unexcited columns
  const linalg::LeastSquaresFit fit = linalg::solve_least_squares(a, e, options);
  linalg::Vector coefficients(model::kNumVariables, 0.0);
  for (std::size_t c = 0; c < keep; ++c) coefficients[c] = fit.coefficients[c];
  return model::EnergyMacroModel(std::move(coefficients));
}

struct TemplateResult {
  std::string name;
  StreamingStats app_errors;
  std::vector<double> rs_estimates;
};

}  // namespace

int main() {
  bench::heading("Ablation A: hybrid vs instruction-level-only template");

  // Gather observations once.
  std::cout << "profiling the characterization suite...\n" << std::flush;
  std::vector<model::ProgramObservation> observations;
  for (const model::TestProgram& program :
       workloads::characterization_suite()) {
    observations.push_back(model::observe_program(program));
  }

  const model::EnergyMacroModel hybrid =
      fit_truncated(observations, model::kNumVariables);
  const model::EnergyMacroModel instruction_only =
      fit_truncated(observations, model::kNumInstructionVars);

  struct Row {
    std::string app;
    double ref_uj;
    double hybrid_err;
    double instr_err;
  };
  std::vector<Row> rows;
  StreamingStats hybrid_errors, instr_errors;
  auto evaluate = [&](const model::TestProgram& app) {
    const double ref = model::reference_energy(app).energy_pj;
    const double h =
        model::estimate_energy(hybrid, app).energy_pj;
    const double i = model::estimate_energy(instruction_only, app).energy_pj;
    rows.push_back({app.name, ref * 1e-6, percent_error(h, ref),
                    percent_error(i, ref)});
    hybrid_errors.add(percent_error(h, ref));
    instr_errors.add(percent_error(i, ref));
  };
  for (const model::TestProgram& app : workloads::application_suite()) {
    evaluate(app);
  }
  for (const model::TestProgram& variant :
       workloads::reed_solomon_variants()) {
    evaluate(variant);
  }

  AsciiTable table({"Application", "Reference (uJ)", "Hybrid err (%)",
                    "Instr-only err (%)"});
  for (const Row& row : rows) {
    table.add_row({row.app, format_fixed(row.ref_uj, 1),
                   format_fixed(row.hybrid_err, 1),
                   format_fixed(row.instr_err, 1)});
  }
  table.print(std::cout);

  std::cout << "\nmean |error|  hybrid: "
            << format_fixed(hybrid_errors.mean_abs(), 2)
            << " %   instruction-only: "
            << format_fixed(instr_errors.mean_abs(), 2) << " %\n"
            << "max  |error|  hybrid: "
            << format_fixed(hybrid_errors.max_abs(), 2)
            << " %   instruction-only: "
            << format_fixed(instr_errors.max_abs(), 2) << " %\n\n"
            << "The instruction-level-only template cannot price custom "
               "datapaths: its\nerrors concentrate on the extension-heavy "
               "kernels, which is exactly why\nthe paper's hybrid "
               "formulation exists.\n";
  return 0;
}
