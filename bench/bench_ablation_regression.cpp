// Ablation B (ours): robustness of the regression step.
//
// The paper fits with a plain pseudo-inverse (Eq. (5)). This harness
// compares fitting back-ends (QR OLS, normal-equations pseudo-inverse,
// non-negative least squares, ridge, and OLS without relative weighting)
// and sweeps the training-set size, evaluating each fitted model on the
// ten held-out applications.

#include <algorithm>
#include <cmath>

#include "bench/bench_common.h"
#include "model/estimate.h"
#include "model/validate.h"
#include "util/error.h"
#include "util/stats.h"

namespace {

using namespace exten;

struct Evaluation {
  double mean_abs = 0.0;
  double max_abs = 0.0;
  double fit_rms = 0.0;
};

Evaluation evaluate(
    const model::CharacterizationResult& result,
    const std::vector<model::TestProgram>& apps,
    const std::vector<double>& reference_pj) {
  Evaluation eval;
  StreamingStats errors;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const double est =
        model::estimate_energy(result.model, apps[i]).energy_pj;
    errors.add(percent_error(est, reference_pj[i]));
  }
  eval.mean_abs = errors.mean_abs();
  eval.max_abs = errors.max_abs();
  eval.fit_rms = result.rms_error_percent;
  return eval;
}

}  // namespace

int main() {
  bench::heading("Ablation B: regression back-ends and training-set size");

  const std::vector<model::TestProgram> suite =
      workloads::characterization_suite();
  const std::vector<model::TestProgram> apps =
      workloads::application_suite();

  std::cout << "computing RTL-level reference energies for the applications..."
            << std::endl;
  std::vector<double> reference_pj;
  reference_pj.reserve(apps.size());
  for (const model::TestProgram& app : apps) {
    reference_pj.push_back(model::reference_energy(app).energy_pj);
  }

  // --- fitting back-ends ------------------------------------------------------
  struct Config {
    std::string name;
    model::CharacterizeOptions options;
  };
  std::vector<Config> configs;
  configs.push_back({"QR OLS + relative weighting (default)", {}});
  {
    model::CharacterizeOptions o;
    o.method = model::FitMethod::kPseudoInverse;
    configs.push_back({"pseudo-inverse (paper Eq. (5))", o});
  }
  {
    model::CharacterizeOptions o;
    o.nonnegative = true;
    configs.push_back({"non-negative least squares", o});
  }
  {
    model::CharacterizeOptions o;
    o.ridge_lambda = 1e-6;
    configs.push_back({"ridge (lambda = 1e-6)", o});
  }
  {
    model::CharacterizeOptions o;
    o.relative_weighting = false;
    configs.push_back({"OLS without relative weighting", o});
  }

  AsciiTable backends({"Fit configuration", "Fit RMS (%)",
                       "App mean |err| (%)", "App max |err| (%)"});
  for (const Config& config : configs) {
    std::cout << "fitting: " << config.name << "..." << std::endl;
    const model::CharacterizationResult result =
        model::characterize(suite, config.options);
    const Evaluation eval = evaluate(result, apps, reference_pj);
    backends.add_row({config.name, format_fixed(eval.fit_rms, 2),
                      format_fixed(eval.mean_abs, 2),
                      format_fixed(eval.max_abs, 2)});
  }
  std::cout << "\n";
  backends.print(std::cout);

  // --- training-set size sweep --------------------------------------------------
  bench::heading("Training-set size sweep (QR OLS + relative weighting)");
  AsciiTable sweep({"Programs", "Fit RMS (%)", "App mean |err| (%)",
                    "App max |err| (%)"});
  for (std::size_t count :
       {std::size_t{21}, std::size_t{25}, std::size_t{30}, std::size_t{35},
        suite.size()}) {
    if (count > suite.size()) continue;
    // Keep a spread of program kinds: take every k-th program.
    std::vector<model::TestProgram> subset;
    for (std::size_t i = 0; i < suite.size() && subset.size() < count; ++i) {
      const std::size_t index = (i * suite.size() / count) % suite.size();
      subset.push_back(suite[index]);
    }
    std::cout << "fitting on " << subset.size() << " programs..." << std::endl;
    try {
      const model::CharacterizationResult result = model::characterize(subset);
      const Evaluation eval = evaluate(result, apps, reference_pj);
      sweep.add_row({std::to_string(subset.size()),
                     format_fixed(eval.fit_rms, 2),
                     format_fixed(eval.mean_abs, 2),
                     format_fixed(eval.max_abs, 2)});
    } catch (const exten::Error&) {
      sweep.add_row({std::to_string(subset.size()), "rank-deficient", "-",
                     "-"});
    }
  }
  std::cout << "\n";
  sweep.print(std::cout);

  std::cout << "\nSmall suites barely cover the 21-variable space and "
               "generalize poorly;\naccuracy saturates once every variable "
               "is excited from several directions.\n";

  // --- leave-one-out cross-validation -----------------------------------------
  bench::heading("Leave-one-out cross-validation");
  std::vector<model::ProgramObservation> observations;
  for (const model::TestProgram& program : suite) {
    observations.push_back(model::observe_program(program));
  }
  model::CharacterizeOptions loo_options;
  loo_options.ridge_lambda = 1e-12;  // rank guard only
  struct LooRow {
    std::string name;
    double error = 0.0;
  };
  std::vector<LooRow> rows;
  for (std::size_t held = 0; held < observations.size(); ++held) {
    std::vector<model::ProgramObservation> training;
    for (std::size_t i = 0; i < observations.size(); ++i) {
      if (i != held) training.push_back(observations[i]);
    }
    const model::EnergyMacroModel loo =
        model::fit_from_observations(training, loo_options);
    rows.push_back({observations[held].name,
                    percent_error(loo.estimate_pj(observations[held].variables),
                                  observations[held].reference_pj)});
  }
  std::sort(rows.begin(), rows.end(), [](const LooRow& a, const LooRow& b) {
    return std::fabs(a.error) < std::fabs(b.error);
  });
  StreamingStats all_loo;
  for (const LooRow& row : rows) all_loo.add(row.error);
  const double median = std::fabs(rows[rows.size() / 2].error);

  AsciiTable loo_table({"Held-out program", "LOO error (%)"});
  for (const LooRow& row : rows) {
    loo_table.add_row({row.name, format_fixed(row.error, 1)});
  }
  loo_table.print(std::cout);
  std::cout << "\nmedian |LOO error|: " << format_fixed(median, 2)
            << " %   (in-sample RMS: 4.9 %)\n\n"
            << "The median held-out program generalizes close to the "
               "in-sample fit. The\ntail does not — the worst entries are "
               "the suite's *solo carriers* (the only\nstrong excitation "
               "of a variable: the uncached-code program for N_unc, the\n"
               "stride program for N_dcm, single-category probes, ...). "
               "Removing such a\nprogram leaves its column unidentified, "
               "which is precisely why the suite\ncarries them: "
               "designed-experiment calibration points are not redundant.\n";
  return 0;
}
