// Measures the two-tier execution engine against the reference
// interpreter: bare-engine simulated MIPS (predecoded dispatch + TIE
// bytecode vs per-step decode + Expr tree walk) and end-to-end macro-model
// estimates per second (ISS + profiling + 21-term dot product).
//
// The engines produce bit-identical retirement streams and energy numbers
// (tests/test_engine_diff.cpp); this harness quantifies only speed.
//
//   bench_sim_throughput [--json out.json] [--reps N]
//
// --json writes a machine-readable snapshot (the committed baseline lives
// at BENCH_sim_throughput.json); --reps controls the repetitions per
// measurement (default 5; the minimum is reported).

#include <chrono>
#include <fstream>

#include "bench/bench_common.h"
#include "model/estimate.h"
#include "sim/cpu.h"
#include "util/json.h"

namespace {

using namespace exten;

/// Retirement sink that discards everything: timing runs measure the bare
/// engine, not observer cost.
struct NullSink {
  void on_run_begin() {}
  void on_retire(const sim::RetiredInstruction&) {}
  void on_run_end(std::uint64_t, std::uint64_t) {}
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct EngineTiming {
  std::uint64_t instructions = 0;
  double seconds = 0.0;

  double mips() const {
    return seconds > 0.0
               ? static_cast<double>(instructions) / seconds / 1e6
               : 0.0;
  }
};

/// One >=10 ms sample of pure run() time over repeated fresh simulations
/// (the smallest applications finish in tens of microseconds, far below
/// timer resolution); setup — Cpu construction, program load, predecode —
/// is excluded, so the number is the engine's steady-state simulation
/// rate. Returns seconds per instruction.
double sample_engine(const model::TestProgram& app, sim::Engine engine,
                     std::uint64_t* run_instructions) {
  constexpr double kMinSampleSeconds = 0.010;
  std::uint64_t instructions = 0;
  double elapsed = 0.0;
  do {
    sim::Cpu cpu({}, *app.tie, engine);
    cpu.load_program(app.image);
    NullSink sink;
    const double start = now_seconds();
    const sim::RunResult result = cpu.run_with_sink(sink);
    elapsed += now_seconds() - start;
    instructions += result.instructions;
    *run_instructions = result.instructions;
  } while (elapsed < kMinSampleSeconds);
  return elapsed / static_cast<double>(instructions);
}

/// Times both engines on `app`, interleaving the samples (fast, reference,
/// fast, reference, …) so a machine-load swing hits both engines rather
/// than skewing the ratio; the minimum per engine over `reps` rounds is
/// reported.
void time_engines(const model::TestProgram& app, int reps, EngineTiming* fast,
                  EngineTiming* ref) {
  double fast_per_instr = 1e30;
  double ref_per_instr = 1e30;
  std::uint64_t instructions = 0;
  for (int i = 0; i < reps; ++i) {
    fast_per_instr = std::min(
        fast_per_instr, sample_engine(app, sim::Engine::kFast, &instructions));
    ref_per_instr = std::min(
        ref_per_instr,
        sample_engine(app, sim::Engine::kReference, &instructions));
  }
  fast->instructions = instructions;
  fast->seconds = fast_per_instr * static_cast<double>(instructions);
  ref->instructions = instructions;
  ref->seconds = ref_per_instr * static_cast<double>(instructions);
}

/// Min-of-`reps` time to estimate every app in `suite` with the macro-model
/// on the chosen engine. Returns estimates per second.
double time_estimates(const model::EnergyMacroModel& macro,
                      const std::vector<model::TestProgram>& suite,
                      sim::Engine engine, int reps) {
  double best = 1e30;
  for (int i = 0; i < reps; ++i) {
    const double start = now_seconds();
    for (const model::TestProgram& app : suite) {
      const model::EnergyEstimate est = model::estimate_energy(
          macro, app, {}, sim::Cpu::kDefaultBudget, engine);
      if (est.energy_pj < 0) std::abort();  // keep the result observable
    }
    const double elapsed = now_seconds() - start;
    if (elapsed < best) best = elapsed;
  }
  return static_cast<double>(suite.size()) / best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else {
      std::cerr << "usage: bench_sim_throughput [--json out.json] [--reps N]\n";
      return 2;
    }
  }

  const std::vector<model::TestProgram> suite = workloads::application_suite();

  bench::heading("Simulated MIPS: fast engine vs reference interpreter");
  AsciiTable table({"Application", "Instructions", "Fast (MIPS)",
                    "Reference (MIPS)", "Ratio"});

  JsonWriter json;
  json.begin_object();
  json.field("bench", "sim_throughput");
  json.field("reps", reps);
  json.array_field("applications");

  double total_fast_s = 0.0;
  double total_ref_s = 0.0;
  std::uint64_t total_instructions = 0;
  for (const model::TestProgram& app : suite) {
    EngineTiming fast;
    EngineTiming ref;
    time_engines(app, reps, &fast, &ref);
    total_fast_s += fast.seconds;
    total_ref_s += ref.seconds;
    total_instructions += fast.instructions;
    const double ratio = ref.seconds > 0.0 ? fast.mips() / ref.mips() : 0.0;
    table.add_row({app.name, with_commas(fast.instructions),
                   format_fixed(fast.mips(), 1), format_fixed(ref.mips(), 1),
                   format_fixed(ratio, 2) + "x"});
    json.element_object();
    json.field("name", app.name);
    json.field("instructions", fast.instructions);
    json.field("fast_mips", fast.mips());
    json.field("reference_mips", ref.mips());
    json.field("ratio", ratio);
    json.end_object();
  }
  table.print(std::cout);

  const double agg_fast_mips =
      static_cast<double>(total_instructions) / total_fast_s / 1e6;
  const double agg_ref_mips =
      static_cast<double>(total_instructions) / total_ref_s / 1e6;
  const double agg_ratio = agg_fast_mips / agg_ref_mips;
  std::cout << "\naggregate: fast " << format_fixed(agg_fast_mips, 1)
            << " MIPS, reference " << format_fixed(agg_ref_mips, 1)
            << " MIPS, ratio " << format_fixed(agg_ratio, 2) << "x\n";

  // End-to-end estimation throughput: ISS + macro-model profiling + dot
  // product. The coefficients only feed the final dot product, so a fixed
  // synthetic model times identically to a characterized one.
  linalg::Vector coeffs(model::kNumVariables);
  for (std::size_t i = 0; i < model::kNumVariables; ++i) {
    coeffs[i] = 1.0;
  }
  const model::EnergyMacroModel macro(coeffs);
  const double est_fast = time_estimates(macro, suite, sim::Engine::kFast, reps);
  const double est_ref =
      time_estimates(macro, suite, sim::Engine::kReference, reps);
  std::cout << "estimates/sec (suite of " << suite.size() << "): fast "
            << format_fixed(est_fast, 1) << ", reference "
            << format_fixed(est_ref, 1) << " ("
            << format_fixed(est_fast / est_ref, 2) << "x)\n";

  json.end_array();
  json.field("aggregate_fast_mips", agg_fast_mips);
  json.field("aggregate_reference_mips", agg_ref_mips);
  json.field("aggregate_ratio", agg_ratio);
  json.field("estimates_per_sec_fast", est_fast);
  json.field("estimates_per_sec_reference", est_ref);
  json.end_object();

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << json.str() << "\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
