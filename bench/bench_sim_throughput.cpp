// Measures the three execution engines against each other: bare-engine
// simulated MIPS for the threaded superblock interpreter (computed-goto
// dispatch + fused handlers), the fast engine (predecoded dispatch + TIE
// bytecode), and the reference interpreter (per-step decode + Expr tree
// walk) — plus end-to-end macro-model estimates per second (ISS +
// profiling + 21-term dot product).
//
// The engines produce bit-identical retirement streams and energy numbers
// (tests/test_engine_diff.cpp, fuzz engine_diff); this harness quantifies
// only speed. The headline `ratio` is threaded vs reference;
// `fast_ratio` tracks the middle tier.
//
//   bench_sim_throughput [--json out.json] [--reps N]
//                        [--baseline FILE] [--min-fraction F]
//
// --json writes a machine-readable snapshot (the committed baseline lives
// at BENCH_sim_throughput.json); --reps controls the repetitions per
// measurement (default 5; the minimum is reported). --baseline compares
// this run's aggregate engine ratios against a previous snapshot and
// fails when either falls below --min-fraction (default 0.75) of the
// baseline — ratios rather than raw MIPS so the gate is insensitive to
// the absolute speed of the machine running it.

#include <chrono>
#include <fstream>

#include "bench/bench_common.h"
#include "model/estimate.h"
#include "sim/cpu.h"
#include "tools/tool_common.h"
#include "util/json.h"

namespace {

using namespace exten;

/// Retirement sink that discards everything: timing runs measure the bare
/// engine, not observer cost. kDiscardsRecords lets the threaded engine
/// skip building the per-instruction records entirely (architectural
/// results are bit-identical either way — see docs/sim.md).
struct NullSink {
  static constexpr bool kDiscardsRecords = true;
  void on_run_begin() {}
  void on_retire(const sim::RetiredInstruction&) {}
  void on_run_end(std::uint64_t, std::uint64_t) {}
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct EngineTiming {
  std::uint64_t instructions = 0;
  double seconds = 0.0;

  double mips() const {
    return seconds > 0.0
               ? static_cast<double>(instructions) / seconds / 1e6
               : 0.0;
  }
};

/// One >=10 ms sample of pure run() time over repeated fresh simulations
/// (the smallest applications finish in tens of microseconds, far below
/// timer resolution); setup — Cpu construction, program load, predecode —
/// is excluded, so the number is the engine's steady-state simulation
/// rate. Returns seconds per instruction.
double sample_engine(const model::TestProgram& app, sim::Engine engine,
                     std::uint64_t* run_instructions) {
  constexpr double kMinSampleSeconds = 0.010;
  std::uint64_t instructions = 0;
  double elapsed = 0.0;
  do {
    sim::Cpu cpu({}, *app.tie, engine);
    cpu.load_program(app.image);
    NullSink sink;
    const double start = now_seconds();
    const sim::RunResult result = cpu.run_with_sink(sink);
    elapsed += now_seconds() - start;
    instructions += result.instructions;
    *run_instructions = result.instructions;
  } while (elapsed < kMinSampleSeconds);
  return elapsed / static_cast<double>(instructions);
}

/// Times all three engines on `app`, interleaving the samples (threaded,
/// fast, reference, threaded, …) so a machine-load swing hits every
/// engine rather than skewing the ratios; the minimum per engine over
/// `reps` rounds is reported.
void time_engines(const model::TestProgram& app, int reps,
                  EngineTiming* threaded, EngineTiming* fast,
                  EngineTiming* ref) {
  double threaded_per_instr = 1e30;
  double fast_per_instr = 1e30;
  double ref_per_instr = 1e30;
  std::uint64_t instructions = 0;
  for (int i = 0; i < reps; ++i) {
    threaded_per_instr =
        std::min(threaded_per_instr,
                 sample_engine(app, sim::Engine::kThreaded, &instructions));
    fast_per_instr = std::min(
        fast_per_instr, sample_engine(app, sim::Engine::kFast, &instructions));
    ref_per_instr = std::min(
        ref_per_instr,
        sample_engine(app, sim::Engine::kReference, &instructions));
  }
  threaded->instructions = instructions;
  threaded->seconds = threaded_per_instr * static_cast<double>(instructions);
  fast->instructions = instructions;
  fast->seconds = fast_per_instr * static_cast<double>(instructions);
  ref->instructions = instructions;
  ref->seconds = ref_per_instr * static_cast<double>(instructions);
}

/// Min-of-`reps` time to estimate every app in `suite` with the macro-model
/// on the chosen engine. Returns estimates per second.
double time_estimates(const model::EnergyMacroModel& macro,
                      const std::vector<model::TestProgram>& suite,
                      sim::Engine engine, int reps) {
  double best = 1e30;
  for (int i = 0; i < reps; ++i) {
    const double start = now_seconds();
    for (const model::TestProgram& app : suite) {
      const model::EnergyEstimate est = model::estimate_energy(
          macro, app, {}, sim::Cpu::kDefaultBudget, engine);
      if (est.energy_pj < 0) std::abort();  // keep the result observable
    }
    const double elapsed = now_seconds() - start;
    if (elapsed < best) best = elapsed;
  }
  return static_cast<double>(suite.size()) / best;
}

}  // namespace

int main(int argc, char** argv) {
  return tools::tool_main("bench_sim_throughput", [&] {
  const tools::Args args(argc, argv);
  args.require_known({"json", "reps", "baseline", "min-fraction"});
  std::string json_path;
  int reps = 5;
  double min_fraction = 0.75;
  if (auto v = args.value("json")) json_path = *v;
  if (auto v = args.value("reps")) {
    reps = static_cast<int>(tools::parse_count("reps", *v, 1, 1000));
  }
  if (auto v = args.value("min-fraction")) min_fraction = std::stod(*v);

  const std::vector<model::TestProgram> suite = workloads::application_suite();

  bench::heading(
      "Simulated MIPS: threaded / fast engines vs reference interpreter");
  AsciiTable table({"Application", "Instructions", "Threaded (MIPS)",
                    "Fast (MIPS)", "Reference (MIPS)", "Ratio"});

  JsonWriter json;
  json.begin_object();
  json.field("bench", "sim_throughput");
  json.field("reps", reps);
  json.array_field("applications");

  double total_threaded_s = 0.0;
  double total_fast_s = 0.0;
  double total_ref_s = 0.0;
  std::uint64_t total_instructions = 0;
  for (const model::TestProgram& app : suite) {
    EngineTiming threaded;
    EngineTiming fast;
    EngineTiming ref;
    time_engines(app, reps, &threaded, &fast, &ref);
    total_threaded_s += threaded.seconds;
    total_fast_s += fast.seconds;
    total_ref_s += ref.seconds;
    total_instructions += fast.instructions;
    const double ratio =
        ref.seconds > 0.0 ? threaded.mips() / ref.mips() : 0.0;
    const double fast_ratio =
        ref.seconds > 0.0 ? fast.mips() / ref.mips() : 0.0;
    table.add_row({app.name, with_commas(fast.instructions),
                   format_fixed(threaded.mips(), 1),
                   format_fixed(fast.mips(), 1), format_fixed(ref.mips(), 1),
                   format_fixed(ratio, 2) + "x"});
    json.element_object();
    json.field("name", app.name);
    json.field("instructions", fast.instructions);
    json.field("threaded_mips", threaded.mips());
    json.field("fast_mips", fast.mips());
    json.field("reference_mips", ref.mips());
    json.field("ratio", ratio);
    json.field("fast_ratio", fast_ratio);
    json.end_object();
  }
  table.print(std::cout);

  const double agg_threaded_mips =
      static_cast<double>(total_instructions) / total_threaded_s / 1e6;
  const double agg_fast_mips =
      static_cast<double>(total_instructions) / total_fast_s / 1e6;
  const double agg_ref_mips =
      static_cast<double>(total_instructions) / total_ref_s / 1e6;
  const double agg_ratio = agg_threaded_mips / agg_ref_mips;
  const double agg_fast_ratio = agg_fast_mips / agg_ref_mips;
  std::cout << "\naggregate: threaded " << format_fixed(agg_threaded_mips, 1)
            << " MIPS, fast " << format_fixed(agg_fast_mips, 1)
            << " MIPS, reference " << format_fixed(agg_ref_mips, 1)
            << " MIPS, threaded/reference " << format_fixed(agg_ratio, 2)
            << "x, fast/reference " << format_fixed(agg_fast_ratio, 2)
            << "x\n";

  // End-to-end estimation throughput: ISS + macro-model profiling + dot
  // product. The coefficients only feed the final dot product, so a fixed
  // synthetic model times identically to a characterized one.
  linalg::Vector coeffs(model::kNumVariables);
  for (std::size_t i = 0; i < model::kNumVariables; ++i) {
    coeffs[i] = 1.0;
  }
  const model::EnergyMacroModel macro(coeffs);
  const double est_threaded =
      time_estimates(macro, suite, sim::Engine::kThreaded, reps);
  const double est_fast = time_estimates(macro, suite, sim::Engine::kFast, reps);
  const double est_ref =
      time_estimates(macro, suite, sim::Engine::kReference, reps);
  std::cout << "estimates/sec (suite of " << suite.size() << "): threaded "
            << format_fixed(est_threaded, 1) << ", fast "
            << format_fixed(est_fast, 1) << ", reference "
            << format_fixed(est_ref, 1) << " ("
            << format_fixed(est_threaded / est_ref, 2) << "x)\n";

  json.end_array();
  json.field("aggregate_threaded_mips", agg_threaded_mips);
  json.field("aggregate_fast_mips", agg_fast_mips);
  json.field("aggregate_reference_mips", agg_ref_mips);
  json.field("aggregate_ratio", agg_ratio);
  json.field("aggregate_fast_ratio", agg_fast_ratio);
  json.field("estimates_per_sec_threaded", est_threaded);
  json.field("estimates_per_sec_fast", est_fast);
  json.field("estimates_per_sec_reference", est_ref);
  json.end_object();

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << json.str() << "\n";
    std::cout << "wrote " << json_path << "\n";
  }

  // Regression floor vs the committed baseline (mirrors the bench_dse
  // gate). Engine ratios are compared, not raw MIPS: CI machines are
  // slower than the one that produced the baseline, but the speedup of
  // one engine over another should hold anywhere.
  if (auto baseline_path = args.value("baseline")) {
    const JsonValue baseline =
        JsonValue::parse(tools::read_file(*baseline_path));
    bool failed = false;
    const auto gate = [&](const char* key, double this_value) {
      const JsonValue* entry = baseline.find(key);
      EXTEN_CHECK(entry != nullptr, "baseline file lacks ", key);
      const double base = entry->as_number();
      const double fraction = base <= 0.0 ? 1.0 : this_value / base;
      std::cout << "baseline " << key << " " << format_fixed(base, 2)
                << ", this run " << format_fixed(this_value, 2) << " ("
                << format_fixed(fraction * 100.0, 1) << "%, floor "
                << format_fixed(min_fraction * 100.0, 1) << "%)\n";
      failed = failed || fraction < min_fraction;
    };
    gate("aggregate_ratio", agg_ratio);
    gate("aggregate_fast_ratio", agg_fast_ratio);
    if (failed) {
      std::cerr << "FAIL: engine speedup regressed below --min-fraction\n";
      return 1;
    }
  }
  return 0;
  });
}
