#pragma once

// Shared helpers for the experiment harnesses (one binary per paper table
// or figure). Each binary prints the corresponding table/series in ASCII
// and, where wall-clock measurement is the point, uses google-benchmark.

#include <cstdio>
#include <iostream>
#include <string>

#include "model/characterize.h"
#include "util/strings.h"
#include "util/table.h"
#include "workloads/workloads.h"

namespace exten::bench {

/// Runs the standard characterization flow used by all experiment
/// harnesses: the full characterization suite, QR least squares with
/// relative weighting (the repo's default configuration).
inline model::CharacterizationResult characterize_default() {
  std::cout << "characterizing the processor (this runs every test program\n"
               "through the RTL-level reference estimator)...\n"
            << std::flush;
  const auto suite = workloads::characterization_suite();
  const auto result = model::characterize(suite);
  std::cout << "  " << suite.size() << " test programs, R^2 = "
            << format_fixed(result.r_squared, 6)
            << ", RMS fitting error = "
            << format_fixed(result.rms_error_percent, 2) << " %\n\n";
  return result;
}

/// Prints a section header.
inline void heading(const std::string& title) {
  std::cout << "\n" << title << "\n" << std::string(title.size(), '=')
            << "\n\n";
}

/// Renders a crude horizontal bar for ASCII "figures".
inline std::string bar(double value, double full_scale, int width = 40) {
  const int n = value <= 0 ? 0
                           : static_cast<int>(value / full_scale *
                                              static_cast<double>(width));
  return std::string(static_cast<std::size_t>(std::min(n, width)), '#');
}

}  // namespace exten::bench
