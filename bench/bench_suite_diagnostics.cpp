// Experiment-design diagnostics of the characterization suite: per-variable
// excitation totals and the pairwise correlation structure of the design
// matrix. This is the quantitative backing for the suite-design story in
// docs/macromodel.md — which columns are strong, which are collinear, and
// therefore which coefficients the regression can actually identify.

#include <algorithm>
#include <cmath>

#include "bench/bench_common.h"
#include "linalg/matrix.h"
#include "model/variables.h"

namespace {

using namespace exten;

/// Pearson correlation of two columns.
double correlation(const linalg::Matrix& a, std::size_t x, std::size_t y) {
  const std::size_t n = a.rows();
  double mx = 0, my = 0;
  for (std::size_t r = 0; r < n; ++r) {
    mx += a(r, x);
    my += a(r, y);
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t r = 0; r < n; ++r) {
    const double dx = a(r, x) - mx;
    const double dy = a(r, y) - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace

int main() {
  bench::heading("Characterization-suite design diagnostics");

  std::cout << "profiling the suite...\n" << std::flush;
  const auto suite = workloads::characterization_suite();
  std::vector<model::ProgramObservation> observations;
  for (const auto& program : suite) {
    observations.push_back(model::observe_program(program));
  }

  // Relative-weighted design matrix (what the regression actually sees).
  linalg::Matrix a(observations.size(), model::kNumVariables);
  for (std::size_t r = 0; r < observations.size(); ++r) {
    for (std::size_t c = 0; c < model::kNumVariables; ++c) {
      a(r, c) = observations[r].variables[c] / observations[r].reference_pj;
    }
  }

  // Per-variable excitation: how many programs excite it, and the spread.
  bench::heading("Per-variable excitation");
  AsciiTable excitation({"Variable", "Programs exciting it",
                         "Strongest program", "Share of its row (%)"});
  for (std::size_t c = 0; c < model::kNumVariables; ++c) {
    int programs = 0;
    std::size_t strongest = 0;
    double strongest_value = 0.0;
    for (std::size_t r = 0; r < observations.size(); ++r) {
      if (observations[r].variables[c] > 0.0) ++programs;
      if (a(r, c) > strongest_value) {
        strongest_value = a(r, c);
        strongest = r;
      }
    }
    // Rough share: variable value x a nominal 400 pJ coefficient over the
    // row's total energy.
    const double share =
        100.0 * observations[strongest].variables[c] * 400.0 /
        observations[strongest].reference_pj;
    excitation.add_row({std::string(model::variable_name(c)),
                        std::to_string(programs),
                        observations[strongest].name,
                        format_fixed(std::min(share, 999.0), 1)});
  }
  excitation.print(std::cout);

  // Most-correlated column pairs (the identifiability risks).
  bench::heading("Most-correlated variable pairs (|r| >= 0.80)");
  struct Pair {
    std::size_t x, y;
    double r;
  };
  std::vector<Pair> pairs;
  for (std::size_t x = 0; x < model::kNumVariables; ++x) {
    for (std::size_t y = x + 1; y < model::kNumVariables; ++y) {
      const double r = correlation(a, x, y);
      if (std::fabs(r) >= 0.80) pairs.push_back({x, y, r});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& p, const Pair& q) {
              return std::fabs(p.r) > std::fabs(q.r);
            });
  AsciiTable corr({"Variable", "Variable ", "Correlation"});
  for (const Pair& p : pairs) {
    corr.add_row({std::string(model::variable_name(p.x)),
                  std::string(model::variable_name(p.y)),
                  format_fixed(p.r, 3)});
  }
  if (pairs.empty()) {
    corr.add_row({"(none)", "", ""});
  }
  corr.print(std::cout);
  std::cout << "\nHighly correlated pairs are the columns whose coefficients "
               "the fit can\nonly resolve jointly — the structural "
               "categories that co-occur inside\nthe same datapaths. The "
               "probe programs exist to push these below 1.0.\n";
  return 0;
}
