// bench_dse: end-to-end throughput of the design-space exploration driver
// (src/dse/) — candidates evaluated per second and the EvalCache dedup hit
// rate, per strategy.
//
//   bench_dse [--json out.json] [--budget N] [--threads N]
//             [--baseline FILE] [--min-fraction F]
//
// Each strategy runs one complete search (fixed seed, fixed budget)
// against a flat synthetic macro-model; throughput does not depend on
// coefficient values, and the harness programs are generated, so the
// bench needs no external inputs. The committed baseline lives at
// BENCH_dse_throughput.json. Expectations: random shows ~0% hit rate
// (fresh genomes every generation); beam and genetic show a substantial
// one (survivors/elites re-proposed every generation), which is exactly
// the dedup the search leans on.
//
// --baseline compares each strategy's candidates_per_second against the
// matching strategy in FILE and exits non-zero when any falls below
// --min-fraction (default 0.97, i.e. a >3% regression fails) — the same
// gate bench_server_throughput has. Only meaningful on hardware
// comparable to the baseline's; CI passes a small fraction as a smoke
// floor.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "dse/driver.h"
#include "tools/tool_common.h"
#include "util/json.h"

namespace {

using namespace exten;

model::EnergyMacroModel synthetic_model() {
  linalg::Vector coefficients(model::kNumVariables, 100.0);
  return model::EnergyMacroModel(std::move(coefficients));
}

struct Measurement {
  std::string strategy;
  dse::DseResult result;
};

}  // namespace

int main(int argc, char** argv) {
  return tools::tool_main("bench_dse", [&] {
  const tools::Args args(argc, argv);
  args.require_known({"json", "budget", "threads", "baseline",
                      "min-fraction"});
  std::string json_path;
  std::uint64_t budget = 512;
  unsigned threads = 0;
  double min_fraction = 0.97;
  if (auto v = args.value("json")) json_path = *v;
  if (auto v = args.value("budget")) {
    budget = tools::parse_count("budget", *v, 1);
  }
  if (auto v = args.value("threads")) {
    threads = static_cast<unsigned>(tools::parse_count("threads", *v));
  }
  if (auto v = args.value("min-fraction")) min_fraction = std::stod(*v);

  bench::heading("DSE throughput (generated extension sets, budget " +
                 std::to_string(budget) + ")");

  const model::EnergyMacroModel macro_model = synthetic_model();

  std::vector<Measurement> measurements;
  for (const char* strategy : {"random", "beam", "genetic"}) {
    dse::DseOptions options;
    options.strategy = strategy;
    options.budget = budget;
    options.seed = 42;
    options.batch.num_threads = threads;
    Measurement m;
    m.strategy = strategy;
    m.result = dse::run_dse(macro_model, options);
    measurements.push_back(std::move(m));
  }

  AsciiTable table({"Strategy", "Evaluations", "Wall (s)", "Candidates/s",
                    "Cache hit rate", "Infeasible", "Best score"});
  for (const Measurement& m : measurements) {
    const dse::DseStats& s = m.result.stats;
    table.add_row({m.strategy, with_commas(s.evaluations),
                   format_fixed(s.wall_seconds, 3),
                   format_fixed(s.candidates_per_second(), 1),
                   format_fixed(s.hit_rate() * 100.0, 1) + " %",
                   with_commas(s.infeasible),
                   m.result.frontier.empty()
                       ? std::string("-")
                       : format_fixed(m.result.frontier.front().score, 6)});
  }
  table.print(std::cout);

  JsonWriter w;
  w.begin_object();
  w.field("benchmark", std::string_view("dse_throughput"));
  w.field("budget", budget);
  w.field("seed", static_cast<std::uint64_t>(42));
  w.field("hardware_concurrency",
          static_cast<int>(service::resolve_thread_count(threads)));
  w.array_field("strategies");
  for (const Measurement& m : measurements) {
    const dse::DseStats& s = m.result.stats;
    w.element_object();
    w.field("strategy", std::string_view(m.strategy));
    w.field("evaluations", s.evaluations);
    w.field("generations", s.generations);
    w.field("wall_seconds", s.wall_seconds);
    w.field("candidates_per_second", s.candidates_per_second());
    w.field("cache_hits", s.cache_hits);
    w.field("cache_misses", s.cache_misses);
    w.field("cache_hit_rate", s.hit_rate());
    w.field("infeasible", s.infeasible);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::cout << "\njson " << w.str() << "\n";
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    out << w.str() << "\n";
    if (!out.good()) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
  }

  // Regression floor vs the committed baseline, per strategy (mirrors the
  // bench_server_throughput gate).
  if (auto baseline_path = args.value("baseline")) {
    const JsonValue baseline =
        JsonValue::parse(tools::read_file(*baseline_path));
    const JsonValue* strategies = baseline.find("strategies");
    EXTEN_CHECK(strategies != nullptr, "baseline file lacks strategies");
    bool failed = false;
    for (const Measurement& m : measurements) {
      const JsonValue* entry = nullptr;
      for (const JsonValue& candidate : strategies->as_array()) {
        const JsonValue* name = candidate.find("strategy");
        if (name != nullptr && name->as_string() == m.strategy) {
          entry = &candidate;
          break;
        }
      }
      EXTEN_CHECK(entry != nullptr, "baseline lacks strategy '", m.strategy,
                  "'");
      const JsonValue* cps = entry->find("candidates_per_second");
      EXTEN_CHECK(cps != nullptr, "baseline strategy '", m.strategy,
                  "' lacks candidates_per_second");
      const double baseline_cps = cps->as_number();
      const double this_cps = m.result.stats.candidates_per_second();
      const double fraction =
          baseline_cps <= 0.0 ? 1.0 : this_cps / baseline_cps;
      std::cout << "baseline " << m.strategy << " "
                << format_fixed(baseline_cps, 1) << " cand/s, this run "
                << format_fixed(this_cps, 1) << " ("
                << format_fixed(fraction * 100.0, 1) << "%, floor "
                << format_fixed(min_fraction * 100.0, 1) << "%)\n";
      failed = failed || fraction < min_fraction;
    }
    if (failed) {
      std::cerr << "FAIL: DSE throughput regressed below --min-fraction\n";
      return 1;
    }
  }
  return 0;
  });
}
