// Demonstrates the paper's Example 1 (§III, Fig. 1): on an extensible
// processor the base core and the custom datapaths share the operand
// buses, so
//
//   (a) a base-processor ADD activates the input stage of every
//       non-isolated custom datapath (CIHW side effects), and
//   (b) a custom instruction that reads/writes the generic register file
//       exercises base-processor hardware (the N_cisef term),
//
// and a macro-model that ignores either effect misattributes energy.
// This harness measures both on the RTL-level estimator.

#include "bench/bench_common.h"
#include "model/estimate.h"
#include "model/profiler.h"
#include "model/test_program.h"
#include "sim/cpu.h"

namespace {

using namespace exten;

double reference_uj(const model::TestProgram& program) {
  return model::reference_energy(program).energy_uj();
}

}  // namespace

int main() {
  bench::heading("Paper Example 1: shared-bus side effects, measured");

  // A base-only arithmetic loop; the processor variants differ only in
  // what custom hardware sits on the operand buses.
  const char* loop = R"(
  li   s0, 2000
  li   t0, 0x5a5a5a5a
  li   t1, 0xa5a5a5a5
w:
  add  t2, t0, t1
  xor  t0, t2, t1
  sub  t1, t1, t2
  addi s0, s0, -1
  bnez s0, w
  halt
)";
  const char* wide_dp = R"(
instruction wide {
  %ISOLATED%
  reads rs1, rs2
  writes rd
  use mult width=32 count=2
  use adder width=32 count=2
  semantics { rd = rs1 * rs2 + rs1 + rs2; }
}
)";
  auto spec_with = [&](const char* isolated) {
    std::string spec = wide_dp;
    spec.replace(spec.find("%ISOLATED%"), 10, isolated);
    return spec;
  };

  const model::TestProgram bare = model::make_test_program("bare", loop);
  const model::TestProgram open_dp =
      model::make_test_program("open", loop, spec_with(""));
  const model::TestProgram gated_dp =
      model::make_test_program("gated", loop, spec_with("isolated"));

  const double bare_uj = reference_uj(bare);
  const double open_uj = reference_uj(open_dp);
  const double gated_uj = reference_uj(gated_dp);

  AsciiTable side({"Processor variant", "Energy (uJ)", "vs bare core"});
  side.add_row({"bare base core", format_fixed(bare_uj, 3), "-"});
  side.add_row({"+ custom datapath on the shared buses",
                format_fixed(open_uj, 3),
                "+" + format_fixed(100.0 * (open_uj / bare_uj - 1.0), 1) + " %"});
  side.add_row({"+ the same datapath, operand-isolated",
                format_fixed(gated_uj, 3),
                "+" + format_fixed(100.0 * (gated_uj / bare_uj - 1.0), 1) + " %"});
  side.print(std::cout);
  std::cout << "\nThe program never executes the custom instruction, yet the "
               "non-isolated\nvariant burns extra energy on every base "
               "arithmetic instruction — the\noperand buses toggle the "
               "datapath's input stage. Operand isolation\nreduces the "
               "overhead to leakage. The macro-model tracks this through "
               "the\nstructural variables (resource-usage analysis adds "
               "side activation per\nbase arithmetic op on non-isolated "
               "configurations).\n";

  // Direction (b): custom instructions exercising the base core.
  bench::heading("N_cisef: custom instructions on the generic register file");
  const char* regfile_user = R"(
state acc2 width=32
instruction takes_regs {
  reads rs1, rs2
  use tie_add width=32
  semantics { acc2 = acc2 + rs1 + rs2; }
}
instruction pure_state {
  use tie_add width=32
  semantics { acc2 = acc2 + 7; }
}
)";
  const char* uses_regs_loop = R"(
  li   s0, 2000
w:
  takes_regs t0, t1
  addi s0, s0, -1
  bnez s0, w
  halt
)";
  const char* pure_state_loop = R"(
  li   s0, 2000
w:
  pure_state
  addi s0, s0, -1
  bnez s0, w
  halt
)";
  const model::TestProgram with_regs =
      model::make_test_program("takes_regs", uses_regs_loop, regfile_user);
  const model::TestProgram without_regs =
      model::make_test_program("pure_state", pure_state_loop, regfile_user);

  const model::ReferenceResult regs_ref = model::reference_energy(with_regs);
  const model::ReferenceResult pure_ref =
      model::reference_energy(without_regs);
  const model::MacroModelVariables regs_vars = [&] {
    sim::Cpu cpu({}, *with_regs.tie);
    cpu.load_program(with_regs.image);
    model::MacroModelProfiler profiler(*with_regs.tie);
    cpu.add_observer(&profiler);
    cpu.run();
    return profiler.variables();
  }();
  const model::MacroModelVariables pure_vars = [&] {
    sim::Cpu cpu({}, *without_regs.tie);
    cpu.load_program(without_regs.image);
    model::MacroModelProfiler profiler(*without_regs.tie);
    cpu.add_observer(&profiler);
    cpu.run();
    return profiler.variables();
  }();

  AsciiTable cisef({"Custom instruction", "Energy (uJ)", "N_cisef"});
  cisef.add_row({"reads rs1/rs2 (regfile ports + buses)",
                 format_fixed(regs_ref.energy_uj(), 3),
                 format_fixed(regs_vars[model::kVarCustomSideEffect], 0)});
  cisef.add_row({"touches only custom state",
                 format_fixed(pure_ref.energy_uj(), 3),
                 format_fixed(pure_vars[model::kVarCustomSideEffect], 0)});
  cisef.print(std::cout);
  std::cout << "\nThe regfile-reading variant costs more on the RTL model "
               "(register-file\nports and operand buses) and is the only one "
               "the profiler charges to\nN_cisef — the paper's CI3 case "
               "(custom instruction independent of the\nbase processor) in "
               "the second row.\n";
  return 0;
}
