// Reproduces the paper's Table II: "Application energy estimates: accuracy
// results" — macro-model estimate vs the RTL-level power estimator on ten
// applications (disjoint from the characterization suite), each with its
// custom instructions.
//
// Paper shape: errors of mixed sign, max |error| 8.5 %, mean |error| 3.3 %.

#include "bench/bench_common.h"
#include "model/estimate.h"
#include "util/stats.h"

int main() {
  using namespace exten;
  bench::heading("Table II: application energy estimates, accuracy results");

  const model::CharacterizationResult result = bench::characterize_default();

  AsciiTable table({"Application", "Estimate (uJ)", "WattWatcher* (uJ)",
                    "Error (%)"});
  StreamingStats errors;
  for (const model::TestProgram& app : workloads::application_suite()) {
    const model::EnergyEstimate est =
        model::estimate_energy(result.model, app);
    const model::ReferenceResult ref = model::reference_energy(app);
    const double err = percent_error(est.energy_pj, ref.energy_pj);
    errors.add(err);
    table.add_row({app.name, format_fixed(est.energy_uj(), 1),
                   format_fixed(ref.energy_uj(), 1),
                   format_fixed(err, 1)});
  }
  table.print(std::cout);

  std::cout << "\n(*) our RTL-level structural estimator stands in for the "
               "commercial tool.\n\n"
            << "mean |error|: " << format_fixed(errors.mean_abs(), 2)
            << " %  (paper: 3.3 %)\n"
            << "max  |error|: " << format_fixed(errors.max_abs(), 2)
            << " %  (paper: 8.5 %)\n";
  return 0;
}
