// Ablation C (ours): what the macro-model is — and is not — portable
// across.
//
// The paper's pitch (§I) is that one characterization of the *base*
// processor serves every candidate instruction-set extension: estimating a
// new extension needs no re-characterization. The flip side, stated as the
// motivation ("energy characterization has to be performed for every
// extended processor" is what the method avoids), is that the coefficients
// are tied to the base configuration: change the memory system and the
// per-event energies move.
//
// This harness measures both directions:
//   1. extensions the characterization never saw (the RS variants) are
//      estimated accurately with the stock model — portability across
//      extensions;
//   2. the same model applied to a processor with a slower memory system
//      (doubled miss penalties, deeper redirect) degrades, and
//      re-characterizing on the new configuration restores accuracy —
//      no portability across base configurations.

#include "bench/bench_common.h"
#include "model/estimate.h"
#include "util/stats.h"

namespace {

using namespace exten;

StreamingStats evaluate_apps(const model::EnergyMacroModel& macro_model,
                             const sim::ProcessorConfig& processor,
                             const power::TechnologyParams& technology) {
  StreamingStats errors;
  for (const model::TestProgram& app : workloads::application_suite()) {
    const double est =
        model::estimate_energy(macro_model, app, processor).energy_pj;
    const double ref =
        model::reference_energy(app, processor, technology).energy_pj;
    errors.add(percent_error(est, ref));
  }
  return errors;
}

}  // namespace

int main() {
  bench::heading("Ablation C: portability across extensions vs base configs");

  const model::CharacterizeOptions stock_options;
  std::cout << "characterizing on the stock T1040-like configuration...\n";
  const model::CharacterizationResult stock = model::characterize(
      workloads::characterization_suite(), stock_options);

  // A slower memory system: half-size caches, doubled miss penalties,
  // deeper branch redirect.
  sim::ProcessorConfig slow_mem;
  slow_mem.icache.size_bytes = 8 * 1024;
  slow_mem.dcache.size_bytes = 8 * 1024;
  slow_mem.icache_miss_penalty = 36;
  slow_mem.dcache_miss_penalty = 36;
  slow_mem.uncached_fetch_penalty = 20;
  slow_mem.uncached_data_penalty = 20;
  slow_mem.taken_branch_penalty = 3;

  std::cout << "evaluating applications on the stock configuration...\n";
  const StreamingStats on_stock =
      evaluate_apps(stock.model, stock_options.processor,
                    stock_options.technology);

  std::cout << "evaluating with the STALE model on the slow-memory "
               "configuration...\n";
  const StreamingStats stale =
      evaluate_apps(stock.model, slow_mem, stock_options.technology);

  std::cout << "re-characterizing on the slow-memory configuration...\n";
  model::CharacterizeOptions slow_options;
  slow_options.processor = slow_mem;
  const model::CharacterizationResult refit = model::characterize(
      workloads::characterization_suite(), slow_options);
  const StreamingStats refitted =
      evaluate_apps(refit.model, slow_mem, slow_options.technology);

  AsciiTable table({"Scenario", "App mean |err| (%)", "App max |err| (%)"});
  table.add_row({"stock model on stock config",
                 format_fixed(on_stock.mean_abs(), 2),
                 format_fixed(on_stock.max_abs(), 2)});
  table.add_row({"stock model on slow-memory config (stale)",
                 format_fixed(stale.mean_abs(), 2),
                 format_fixed(stale.max_abs(), 2)});
  table.add_row({"re-characterized on slow-memory config",
                 format_fixed(refitted.mean_abs(), 2),
                 format_fixed(refitted.max_abs(), 2)});
  table.print(std::cout);

  std::cout << "\nmiss-event coefficients, stock vs slow-memory refit:\n";
  AsciiTable coeffs({"Coefficient", "Stock (pJ)", "Slow-memory (pJ)"});
  for (std::size_t v : {model::kVarIcacheMiss, model::kVarDcacheMiss,
                        model::kVarUncachedFetch, model::kVarBranchTaken}) {
    coeffs.add_row({std::string(model::variable_name(v)),
                    format_fixed(stock.model.coefficient(v), 1),
                    format_fixed(refit.model.coefficient(v), 1)});
  }
  coeffs.print(std::cout);

  std::cout << "\nOne characterization covers every *extension*; a new base "
               "memory system\nneeds a new characterization — the per-event "
               "coefficients above move with\nthe stall costs, which is "
               "exactly what the stale model cannot know.\n";
  return 0;
}
