// Reproduces the paper's Table I: "Energy coefficients of the
// characterized Xtensa processor" — here, of the characterized XTC-32
// processor. Prints the 21 fitted macro-model coefficients with their
// descriptions, plus the regression diagnostics.
//
// Shape to compare against the paper: per-cycle base-class energies of a
// few hundred pJ; cache-miss events an order of magnitude above a cycle;
// branch-taken above branch-untaken; custom-component unit energies in the
// tens-to-hundreds of pJ with the multiplier-like categories at the top.

#include <algorithm>

#include "bench/bench_common.h"
#include "model/variables.h"

int main() {
  using namespace exten;
  bench::heading("Table I: energy coefficients of the characterized processor");

  const model::CharacterizationResult result = bench::characterize_default();
  result.model.coefficient_table().print(std::cout);

  bench::heading("Regression diagnostics");
  AsciiTable diag({"Metric", "Value"});
  diag.add_row({"test programs", std::to_string(result.observations.size())});
  diag.add_row({"R^2", format_fixed(result.r_squared, 6)});
  diag.add_row({"condition estimate", format_fixed(result.condition, 1)});
  diag.add_row({"RMS fitting error (%)",
                format_fixed(result.rms_error_percent, 2)});
  diag.add_row({"max |fitting error| (%)",
                format_fixed(result.max_abs_error_percent, 2)});
  diag.print(std::cout);

  std::cout << "\npaper reference: Table I lists (pJ-range values) e.g. "
               "mult 152.0, +/-/comp 70.0,\nlog/red/mux 12.0, shifter 377.0, "
               "custom register 177.0, TIE mult 165.0,\nTIE mac 190.0, "
               "TIE add 69.0, TIE csa 37.0, table 27.0.\n";
  return 0;
}
