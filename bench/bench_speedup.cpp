// Reproduces the paper's estimation-speed claim (abstract, §V.B): energy
// estimation with the characterized macro-model (instruction-set simulation
// + resource-usage analysis + 21-term dot product) versus the RTL-level
// flow (cycle-driven structural simulation of the synthesized processor).
//
// The paper reports an average speedup of three orders of magnitude over
// ModelSim + WattWatcher; our RTL stand-in evaluates a far smaller netlist
// than a commercial flow elaborates, so the measured ratio here is smaller
// but the shape — macro-model orders of magnitude faster, with the gap
// growing with program length — is the reproduced result.
//
// google-benchmark drives the per-application timing; a summary table
// prints the measured ratios.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "model/estimate.h"
#include "util/stats.h"

namespace {

using namespace exten;

const model::CharacterizationResult& shared_model() {
  static const model::CharacterizationResult result =
      bench::characterize_default();
  return result;
}

std::vector<model::TestProgram>& apps() {
  static std::vector<model::TestProgram> suite =
      workloads::application_suite();
  return suite;
}

void bm_macro_model(benchmark::State& state, const model::TestProgram* app) {
  const auto& model = shared_model().model;
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const model::EnergyEstimate est = model::estimate_energy(model, *app);
    benchmark::DoNotOptimize(est.energy_pj);
    instructions = est.stats.instructions;
  }
  state.counters["instructions"] = static_cast<double>(instructions);
}

void bm_rtl_reference(benchmark::State& state, const model::TestProgram* app) {
  for (auto _ : state) {
    const model::ReferenceResult ref = model::reference_energy(*app);
    benchmark::DoNotOptimize(ref.energy_pj);
  }
}

void print_summary() {
  bench::heading("Estimation speed: macro-model vs RTL-level flow");
  AsciiTable table({"Application", "Macro-model (ms)", "RTL flow (ms)",
                    "Speedup"});
  StreamingStats speedups;
  for (const model::TestProgram& app : apps()) {
    // Median-of-3 wall times.
    auto med3 = [](double a, double b, double c) {
      return std::max(std::min(a, b), std::min(std::max(a, b), c));
    };
    double est_times[3], ref_times[3];
    for (int i = 0; i < 3; ++i) {
      est_times[i] =
          model::estimate_energy(shared_model().model, app).elapsed_seconds;
      ref_times[i] = model::reference_energy(app).elapsed_seconds;
    }
    const double est_s = med3(est_times[0], est_times[1], est_times[2]);
    const double ref_s = med3(ref_times[0], ref_times[1], ref_times[2]);
    const double speedup = ref_s / est_s;
    speedups.add(speedup);
    table.add_row({app.name, format_fixed(est_s * 1e3, 2),
                   format_fixed(ref_s * 1e3, 2),
                   format_fixed(speedup, 0) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nmean speedup: " << format_fixed(speedups.mean(), 0)
            << "x   (paper: ~3 orders of magnitude vs ModelSim+WattWatcher;\n"
               " our RTL stand-in evaluates a much smaller netlist per cycle "
               "than a\n commercial flow, so the measured ratio is smaller "
               "in absolute terms)\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Force the characterization before timing anything.
  (void)shared_model();

  for (const model::TestProgram& app : apps()) {
    benchmark::RegisterBenchmark(("macro_model/" + app.name).c_str(),
                                 bm_macro_model, &app)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(10);
    benchmark::RegisterBenchmark(("rtl_reference/" + app.name).c_str(),
                                 bm_rtl_reference, &app)
        ->Unit(benchmark::kMillisecond)
        ->Iterations(3);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  print_summary();
  return 0;
}
