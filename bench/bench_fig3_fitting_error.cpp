// Reproduces the paper's Fig. 3: per-test-program fitting error of the
// regression macro-model over the characterization suite.
//
// Paper shape: every program under ~8.9 % absolute error, RMS 3.8 %.

#include <cmath>

#include "bench/bench_common.h"

int main() {
  using namespace exten;
  bench::heading("Fig. 3: fitting error of the test programs");

  const model::CharacterizationResult result = bench::characterize_default();

  AsciiTable table({"Test program", "Reference (uJ)", "Predicted (uJ)",
                    "Error (%)", ""});
  for (const model::ProgramObservation& obs : result.observations) {
    table.add_row({obs.name, format_fixed(obs.reference_pj * 1e-6, 2),
                   format_fixed(obs.predicted_pj * 1e-6, 2),
                   format_fixed(obs.fitting_error_percent, 2),
                   bench::bar(std::fabs(obs.fitting_error_percent), 20.0,
                              20)});
  }
  table.print(std::cout);

  std::cout << "\nRMS fitting error:  "
            << format_fixed(result.rms_error_percent, 2) << " %  (paper: 3.8 %)\n"
            << "max |fitting error|: "
            << format_fixed(result.max_abs_error_percent, 2)
            << " %  (paper: < 8.9 %)\n";
  return 0;
}
