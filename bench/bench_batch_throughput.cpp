// bench_batch_throughput: jobs/sec of the batch-estimation service at
// 1, 2, 4 and 8 worker threads, with a cold and a warm (content-
// addressed) cache.
//
// The batch is 8 distinct Reed-Solomon estimation jobs (the paper's
// Fig. 4 design space, two data seeds). Cold numbers measure parallel
// ISS throughput; warm numbers measure the cache fast path the DSE
// re-ranking loop rides on. A machine-readable JSON snapshot prints at
// the end so BENCH_*.json files can track the speedup across PRs.
//
// The snapshot records hardware_concurrency: on an N-core host the cold
// speedup at T<=N threads should approach T (the jobs are balanced and
// share no mutable state); on a single-core host it stays ~1.0 and only
// the warm-cache numbers are meaningful.

#include <iostream>

#include "bench/bench_common.h"
#include "service/batch_estimator.h"
#include "util/json.h"
#include "workloads/workloads.h"

namespace {

using namespace exten;

model::EnergyMacroModel synthetic_model() {
  // Throughput does not depend on coefficient values; a flat synthetic
  // model avoids the multi-minute characterization run.
  linalg::Vector coefficients(model::kNumVariables, 100.0);
  return model::EnergyMacroModel(std::move(coefficients));
}

std::vector<service::BatchJob> build_batch() {
  std::vector<service::BatchJob> jobs;
  for (std::uint64_t seed : {5ull, 23ull}) {
    for (model::TestProgram& variant :
         workloads::reed_solomon_variants(seed)) {
      service::BatchJob job;
      job.name = variant.name + "/s" + std::to_string(seed);
      job.program = std::move(variant);
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

struct Measurement {
  unsigned threads = 1;
  service::BatchMetrics cold;
  service::BatchMetrics warm;
};

double jobs_per_second(const service::BatchMetrics& m) {
  return m.wall_seconds <= 0.0
             ? 0.0
             : static_cast<double>(m.jobs) / m.wall_seconds;
}

}  // namespace

int main() {
  bench::heading("Batch estimation throughput (8-job Reed-Solomon batch)");

  const std::vector<service::BatchJob> jobs = build_batch();
  const model::EnergyMacroModel macro_model = synthetic_model();

  std::vector<Measurement> measurements;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    service::BatchOptions options;
    options.num_threads = threads;
    service::BatchEstimator estimator(macro_model, options);

    Measurement m;
    m.threads = threads;
    m.cold = estimator.estimate(jobs).metrics;  // every job simulates
    m.warm = estimator.estimate(jobs).metrics;  // every job hits the cache
    measurements.push_back(m);
  }

  const double serial_cold_wall = measurements.front().cold.wall_seconds;

  AsciiTable table({"Threads", "Cold wall (s)", "Cold jobs/s", "Speedup vs 1T",
                    "Warm wall (s)", "Warm jobs/s", "Warm hit rate"});
  for (const Measurement& m : measurements) {
    table.add_row({std::to_string(m.threads),
                   format_fixed(m.cold.wall_seconds, 3),
                   format_fixed(jobs_per_second(m.cold), 2),
                   format_fixed(serial_cold_wall / m.cold.wall_seconds, 2),
                   format_fixed(m.warm.wall_seconds, 4),
                   format_fixed(jobs_per_second(m.warm), 1),
                   format_fixed(m.warm.hit_rate() * 100.0, 1) + " %"});
  }
  table.print(std::cout);

  JsonWriter w;
  w.begin_object();
  w.field("benchmark", std::string_view("batch_throughput"));
  w.field("jobs", static_cast<std::uint64_t>(jobs.size()));
  w.field("hardware_concurrency",
          static_cast<int>(service::resolve_thread_count(0)));
  w.array_field("measurements");
  for (const Measurement& m : measurements) {
    w.element_object();
    w.field("threads", static_cast<int>(m.threads));
    w.field("cold_wall_seconds", m.cold.wall_seconds);
    w.field("cold_jobs_per_second", jobs_per_second(m.cold));
    w.field("cold_speedup_vs_1_thread",
            serial_cold_wall / m.cold.wall_seconds);
    w.field("cold_cache_hit_rate", m.cold.hit_rate());
    w.field("warm_wall_seconds", m.warm.wall_seconds);
    w.field("warm_jobs_per_second", jobs_per_second(m.warm));
    w.field("warm_cache_hit_rate", m.warm.hit_rate());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::cout << "\njson " << w.str() << "\n";
  return 0;
}
