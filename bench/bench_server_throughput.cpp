// bench_server_throughput: end-to-end request throughput of the xtc-serve
// HTTP stack (event loop + parser + router + BatchEstimator) measured
// with closed-loop keep-alive clients posting /v1/estimate over real
// loopback sockets.
//
// The request body repeats the same small program, so after the first
// request every evaluation is a content-addressed cache hit: the numbers
// measure the serving overhead per request (read, parse, route, digest,
// cache lookup, serialize, write), which is the warm path a DSE
// re-ranking loop exercises thousands of times. A machine-readable JSON
// snapshot prints at the end so BENCH_server_throughput.json can track
// the req/s floor across PRs.
//
//   bench_server_throughput [--clients N] [--seconds S] [--reps R] [--json]
//                           [--trace] [--baseline FILE] [--min-fraction F]
//                           [--shards N] [--scaling-floor F]
//
// --json suppresses the ASCII table (snapshot line only). --trace runs
// the whole bench with span collection enabled (to measure the tracing
// overhead itself). --baseline compares best req/s against the
// best_requests_per_second recorded in FILE (the committed
// BENCH_server_throughput.json) and exits non-zero below
// --min-fraction (default 0.97, i.e. a >3% regression fails); only
// meaningful on hardware comparable to the one that produced the
// baseline, so CI passes a much smaller fraction as a smoke floor.
//
// --shards N additionally measures an N-shard ShardedServer after the
// single-shard run and reports the scaling ratio (multi-shard best over
// single-shard best); --scaling-floor F exits non-zero when the ratio
// lands below F. The ratio only means anything with >= N free cores —
// gate on nproc before asserting a floor. The JSON keeps the top-level
// best_requests_per_second as the SINGLE-shard number (the committed
// baseline gate tracks the classic serving path) and adds one
// "shard_runs" entry per configuration.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "net/http_client.h"
#include "obs/trace.h"
#include "net/sharded_server.h"
#include "service/batch_estimator.h"
#include "tools/tool_common.h"
#include "util/json.h"

namespace {

using namespace exten;

constexpr std::string_view kAsm =
    "  addi r1, r0, 5\n"
    "  addi r2, r0, 7\n"
    "  add r3, r1, r2\n"
    "  halt\n";

std::string estimate_body() {
  JsonWriter w;
  w.begin_object();
  w.field("name", std::string_view("bench"));
  w.field("asm", kAsm);
  w.end_object();
  return w.str();
}

struct RepResult {
  double wall_seconds = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t rejected = 0;  // 503 backpressure answers
  std::uint64_t errors = 0;    // transport failures and other non-200s
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double requests_per_second() const {
    return wall_seconds <= 0.0
               ? 0.0
               : static_cast<double>(requests) / wall_seconds;
  }
};

double percentile(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted_ms.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_ms[lo] + (sorted_ms[hi] - sorted_ms[lo]) * frac;
}

RepResult run_rep(std::uint16_t port, unsigned clients, double seconds,
                  const std::string& body) {
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> counts(clients, 0);
  std::vector<std::uint64_t> rejected(clients, 0);
  std::vector<std::uint64_t> errors(clients, 0);
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);

  const auto start = std::chrono::steady_clock::now();
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::HttpClient client("127.0.0.1", port);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto t0 = std::chrono::steady_clock::now();
        try {
          const auto response = client.post("/v1/estimate", body);
          if (response.status == 503) {
            ++rejected[c];  // backpressure: by design under overload
            continue;
          }
          if (response.status != 200) {
            ++errors[c];
            continue;
          }
        } catch (const Error&) {
          ++errors[c];
          continue;
        }
        const auto t1 = std::chrono::steady_clock::now();
        ++counts[c];
        latencies[c].push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();

  RepResult rep;
  rep.wall_seconds = std::chrono::duration<double>(end - start).count();
  std::vector<double> all;
  for (unsigned c = 0; c < clients; ++c) {
    rep.requests += counts[c];
    rep.rejected += rejected[c];
    rep.errors += errors[c];
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
  }
  std::sort(all.begin(), all.end());
  rep.p50_ms = percentile(all, 0.50);
  rep.p99_ms = percentile(all, 0.99);
  return rep;
}

/// One full server lifecycle: boot a `shards`-shard server (1 = the
/// classic single loop), warm the cache, run `reps` measured reps, drain.
std::vector<RepResult> bench_config(unsigned shards, unsigned clients,
                                    double seconds, unsigned reps,
                                    const std::string& body) {
  // Throughput does not depend on coefficient values; a flat synthetic
  // model avoids the multi-minute characterization run.
  linalg::Vector coefficients(model::kNumVariables, 100.0);
  const model::EnergyMacroModel macro_model(std::move(coefficients));
  // The queue must absorb every closed-loop client or the bench measures
  // the 503 backpressure path instead of the serving path.
  service::BatchOptions batch_options;
  batch_options.queue_capacity = std::max<std::size_t>(64, clients * 4);
  service::BatchEstimator estimator(macro_model, batch_options);

  net::ShardedServerOptions options;
  options.server.max_inflight = 256;
  options.shards = shards;
  net::ShardedServer server(estimator, options);
  std::thread loop([&] { server.run(); });

  // Warm-up: populate the eval cache and fault in the serving path.
  run_rep(server.port(), 1, 0.2, body);

  std::vector<RepResult> measurements;
  for (unsigned r = 0; r < reps; ++r) {
    measurements.push_back(run_rep(server.port(), clients, seconds, body));
  }
  server.request_stop();
  loop.join();
  return measurements;
}

double best_of(const std::vector<RepResult>& measurements) {
  double best = 0.0;
  for (const RepResult& m : measurements) {
    best = std::max(best, m.requests_per_second());
  }
  return best;
}

void print_table(const std::vector<RepResult>& measurements,
                 unsigned shards, unsigned clients) {
  bench::heading("HTTP estimation server throughput (/v1/estimate, "
                 "warm cache, " +
                 std::to_string(clients) + " keep-alive clients, " +
                 std::to_string(shards) +
                 (shards == 1 ? " shard)" : " shards)"));
  AsciiTable table({"Rep", "Wall (s)", "Requests", "503s", "Errors", "Req/s",
                    "p50 (ms)", "p99 (ms)"});
  for (std::size_t i = 0; i < measurements.size(); ++i) {
    const RepResult& m = measurements[i];
    table.add_row({std::to_string(i + 1), format_fixed(m.wall_seconds, 3),
                   std::to_string(m.requests), std::to_string(m.rejected),
                   std::to_string(m.errors),
                   format_fixed(m.requests_per_second(), 1),
                   format_fixed(m.p50_ms, 3), format_fixed(m.p99_ms, 3)});
  }
  table.print(std::cout);
  std::cout << "\nbest: " << format_fixed(best_of(measurements), 1)
            << " req/s\n";
}

void write_measurements(JsonWriter& w,
                        const std::vector<RepResult>& measurements) {
  w.array_field("measurements");
  for (const RepResult& m : measurements) {
    w.element_object();
    w.field("wall_seconds", m.wall_seconds);
    w.field("requests", m.requests);
    w.field("rejected_503", m.rejected);
    w.field("errors", m.errors);
    w.field("requests_per_second", m.requests_per_second());
    w.field("p50_ms", m.p50_ms);
    w.field("p99_ms", m.p99_ms);
    w.end_object();
  }
  w.end_array();
}

}  // namespace

int main(int argc, char** argv) {
  return tools::tool_main("bench_server_throughput", [&] {
    const tools::Args args(argc, argv);
    args.require_known({"clients", "seconds", "reps", "json", "trace",
                        "baseline", "min-fraction", "shards",
                        "scaling-floor"});
    unsigned clients = 4;
    double seconds = 2.0;
    unsigned reps = 3;
    if (auto v = args.value("clients")) {
      clients = static_cast<unsigned>(tools::parse_count("clients", *v, 1));
    }
    if (auto v = args.value("seconds")) seconds = std::stod(*v);
    if (auto v = args.value("reps")) {
      reps = static_cast<unsigned>(tools::parse_count("reps", *v, 1));
    }
    const bool json_only = args.has("json");
    if (args.has("trace")) obs::Tracer::instance().set_enabled(true);
    double min_fraction = 0.97;
    if (auto v = args.value("min-fraction")) min_fraction = std::stod(*v);
    unsigned shards = 1;
    if (auto v = args.value("shards")) {
      shards = static_cast<unsigned>(
          tools::parse_count("shards", *v, 1, 256));
    }
    double scaling_floor = 0.0;
    if (auto v = args.value("scaling-floor")) scaling_floor = std::stod(*v);

    const std::string body = estimate_body();
    const std::vector<RepResult> single =
        bench_config(1, clients, seconds, reps, body);
    const double best_rps = best_of(single);
    std::vector<RepResult> sharded;
    double sharded_rps = 0.0;
    if (shards > 1) {
      sharded = bench_config(shards, clients, seconds, reps, body);
      sharded_rps = best_of(sharded);
    }

    if (!json_only) {
      print_table(single, 1, clients);
      if (shards > 1) print_table(sharded, shards, clients);
    }
    const double scaling_ratio =
        best_rps > 0.0 && shards > 1 ? sharded_rps / best_rps : 1.0;
    if (shards > 1) {
      std::cout << "scaling: " << shards << " shards at "
                << format_fixed(sharded_rps, 1) << " req/s = "
                << format_fixed(scaling_ratio, 2) << "x single-shard\n";
    }

    JsonWriter w;
    w.begin_object();
    w.field("benchmark", std::string_view("server_throughput"));
    w.field("endpoint", std::string_view("/v1/estimate"));
    w.field("clients", static_cast<int>(clients));
    w.field("seconds_per_rep", seconds);
    w.field("hardware_concurrency",
            static_cast<int>(service::resolve_thread_count(0)));
    w.field("best_requests_per_second", best_rps);
    write_measurements(w, single);
    w.array_field("shard_runs");
    w.element_object();
    w.field("shards", 1);
    w.field("best_requests_per_second", best_rps);
    write_measurements(w, single);
    w.end_object();
    if (shards > 1) {
      w.element_object();
      w.field("shards", static_cast<int>(shards));
      w.field("best_requests_per_second", sharded_rps);
      w.field("scaling_ratio", scaling_ratio);
      write_measurements(w, sharded);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::cout << "\njson " << w.str() << "\n";

    if (shards > 1 && scaling_floor > 0.0 &&
        scaling_ratio < scaling_floor) {
      std::cerr << "FAIL: " << shards << "-shard scaling "
                << format_fixed(scaling_ratio, 2) << "x below --scaling-floor "
                << format_fixed(scaling_floor, 2) << "x\n";
      return 1;
    }

    if (auto baseline_path = args.value("baseline")) {
      const JsonValue baseline =
          JsonValue::parse(tools::read_file(*baseline_path));
      const JsonValue* best = baseline.find("best_requests_per_second");
      EXTEN_CHECK(best != nullptr,
                  "baseline file lacks best_requests_per_second");
      const double baseline_rps = best->as_number();
      const double fraction =
          baseline_rps <= 0.0 ? 1.0 : best_rps / baseline_rps;
      std::cout << "baseline " << format_fixed(baseline_rps, 1)
                << " req/s, this run " << format_fixed(best_rps, 1) << " ("
                << format_fixed(fraction * 100.0, 1) << "%, floor "
                << format_fixed(min_fraction * 100.0, 1) << "%)\n";
      if (fraction < min_fraction) {
        std::cerr << "FAIL: throughput regressed below --min-fraction\n";
        return 1;
      }
    }
    return tools::kExitOk;
  });
}
