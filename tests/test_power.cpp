// Tests for the RTL-level structural energy estimator (the ground-truth
// path): determinism, monotonicity, event costs, custom-hardware activity,
// operand-bus side effects, and the per-block breakdown.

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "power/estimator.h"
#include "sim/cpu.h"
#include "util/error.h"

namespace exten::power {
namespace {

const tie::TieConfiguration& empty_tie() {
  static const tie::TieConfiguration config;
  return config;
}

double run_energy(const std::string& source,
                  const tie::TieConfiguration& tie = empty_tie(),
                  const TechnologyParams& params = {},
                  std::map<std::string, double>* breakdown = nullptr,
                  std::uint64_t* signature = nullptr) {
  isa::AssemblerOptions aopts;
  aopts.custom_mnemonics = tie.assembler_mnemonics();
  sim::Cpu cpu({}, tie);
  cpu.load_program(isa::assemble(source, aopts));
  RtlPowerEstimator rtl(tie, params);
  cpu.add_observer(&rtl);
  cpu.run(2'000'000);
  if (breakdown != nullptr) *breakdown = rtl.block_breakdown();
  if (signature != nullptr) *signature = rtl.netlist_signature();
  return rtl.energy_pj();
}

TEST(RtlPower, EnergyIsPositiveAndDeterministic) {
  const char* source = "li t0, 123\nadd t1, t0, t0\nhalt\n";
  const double a = run_energy(source);
  const double b = run_energy(source);
  EXPECT_GT(a, 0.0);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(RtlPower, NetlistSignatureDeterministic) {
  std::uint64_t sig_a = 0, sig_b = 0;
  run_energy("li t0, 5\nhalt\n", empty_tie(), {}, nullptr, &sig_a);
  run_energy("li t0, 5\nhalt\n", empty_tie(), {}, nullptr, &sig_b);
  EXPECT_EQ(sig_a, sig_b);
  std::uint64_t sig_c = 0;
  run_energy("li t0, 6\nhalt\n", empty_tie(), {}, nullptr, &sig_c);
  EXPECT_NE(sig_a, sig_c);
}

TEST(RtlPower, MoreWorkMoreEnergy) {
  const double small = run_energy(R"(
  li   s0, 10
a: addi s0, s0, -1
  bnez s0, a
  halt
)");
  const double big = run_energy(R"(
  li   s0, 100
a: addi s0, s0, -1
  bnez s0, a
  halt
)");
  EXPECT_GT(big, small * 5.0);
}

TEST(RtlPower, CacheMissesCostEnergy) {
  // Same instruction count; one version strides across lines (misses).
  const double hits = run_energy(R"(
  li   s0, buf
  li   s1, 64
a: lw  t0, 0(s0)
  addi s1, s1, -1
  bnez s1, a
  halt
.data
.align 32
buf: .space 4096
)");
  const double misses = run_energy(R"(
  li   s0, buf
  li   s1, 64
a: lw  t0, 0(s0)
  addi s0, s0, 32
  addi s1, s1, -1
  bnez s1, a
  halt
.data
.align 32
buf: .space 4096
)");
  // The missing version has one extra addi per iteration but also 64
  // refills; refills dominate.
  EXPECT_GT(misses, hits * 1.5);
}

TEST(RtlPower, MultiplierCostsMoreThanAlu) {
  TechnologyParams params;
  const double adds = run_energy(R"(
  li   s0, 200
  li   t0, 0x1234567
  li   t1, 0x89abcde
a: add  t2, t0, t1
  addi s0, s0, -1
  bnez s0, a
  halt
)",
                                 empty_tie(), params);
  const double muls = run_energy(R"(
  li   s0, 200
  li   t0, 0x1234567
  li   t1, 0x89abcde
a: mul  t2, t0, t1
  addi s0, s0, -1
  bnez s0, a
  halt
)",
                                 empty_tie(), params);
  EXPECT_GT(muls, adds);
  // Roughly the multiplier/ALU op-cost delta times 200 operations.
  EXPECT_NEAR(muls - adds, (params.multiplier_op - params.alu_op) * 200.0,
              (params.multiplier_op - params.alu_op) * 200.0 * 0.25);
}

TEST(RtlPower, SwitchingActivityMatters) {
  // Alternating complement operands toggle every bus bit; constant
  // operands toggle none. Same instruction stream length.
  const double quiet = run_energy(R"(
  li   s0, 300
  li   t0, 0
  li   t1, 0
a: add  t2, t0, t1
  add  t3, t0, t1
  addi s0, s0, -1
  bnez s0, a
  halt
)");
  const double noisy = run_energy(R"(
  li   s0, 300
  li   t0, 0
  li   t1, 0xffffffff
a: add  t2, t0, t1
  add  t3, t1, t0
  addi s0, s0, -1
  bnez s0, a
  halt
)");
  EXPECT_GT(noisy, quiet * 1.1);
}

TEST(RtlPower, BreakdownSumsToTotal) {
  std::map<std::string, double> breakdown;
  const double total = run_energy(
      "li t0, 9\nmul t1, t0, t0\nsll t2, t1, t0\nhalt\n", empty_tie(), {},
      &breakdown);
  double sum = 0.0;
  for (const auto& [name, pj] : breakdown) sum += pj;
  EXPECT_NEAR(sum, total, total * 1e-9);
  EXPECT_GT(breakdown.at("clock_tree"), 0.0);
  EXPECT_GT(breakdown.at("multiplier"), 0.0);
  EXPECT_GT(breakdown.at("shifter"), 0.0);
}

TEST(RtlPower, AveragePowerPlausible) {
  isa::AssemblerOptions aopts;
  sim::Cpu cpu({}, empty_tie());
  cpu.load_program(isa::assemble(R"(
  li   s0, 2000
a: add  t0, t0, s0
  xor  t1, t1, t0
  addi s0, s0, -1
  bnez s0, a
  halt
)"));
  RtlPowerEstimator rtl(empty_tie());
  cpu.add_observer(&rtl);
  cpu.run();
  // A 0.18um embedded core at 187 MHz: tens of mW, not uW or W.
  const double mw = rtl.average_power_mw(187.0);
  EXPECT_GT(mw, 20.0);
  EXPECT_LT(mw, 400.0);
}

// --- custom hardware --------------------------------------------------------

tie::TieConfiguration mac_config() {
  return tie::compile_tie_source(R"(
state acc width=48
instruction cmac {
  latency 2
  reads rs1, rs2
  use tie_mac width=24
  semantics { acc = acc + sext(rs1, 24) * sext(rs2, 24); }
}
)");
}

TEST(RtlPower, CustomInstructionBurnsDatapathEnergy) {
  const tie::TieConfiguration config = mac_config();
  std::map<std::string, double> breakdown;
  run_energy(R"(
  li   t0, 1234
  li   t1, 5678
  cmac t0, t1
  cmac t1, t0
  halt
)",
             config, {}, &breakdown);
  double mac_energy = 0.0;
  for (const auto& [name, pj] : breakdown) {
    if (name.find("tie:cmac:") == 0) mac_energy += pj;
  }
  EXPECT_GT(mac_energy, 0.0);
}

TEST(RtlPower, SideEffectsActivateNonIsolatedDatapaths) {
  // Base-only program, but the processor carries custom hardware: the
  // shared operand buses toggle its input stage (paper Example 1).
  const char* base_loop = R"(
  li   s0, 400
  li   t0, 0x5a5a5a5a
  li   t1, 0xa5a5a5a5
a: add  t2, t0, t1
  xor  t0, t2, t1
  addi s0, s0, -1
  bnez s0, a
  halt
)";
  const tie::TieConfiguration open = tie::compile_tie_source(R"(
instruction dp {
  reads rs1, rs2
  writes rd
  use mult width=32
  semantics { rd = rs1 * rs2; }
}
)");
  const tie::TieConfiguration gated = tie::compile_tie_source(R"(
instruction dp {
  isolated
  reads rs1, rs2
  writes rd
  use mult width=32
  semantics { rd = rs1 * rs2; }
}
)");
  const double plain = run_energy(base_loop, empty_tie());
  const double with_open = run_energy(base_loop, open);
  const double with_gated = run_energy(base_loop, gated);
  // Non-isolated custom hardware burns side-effect energy; isolated only
  // leaks. Both leak more than the bare core.
  EXPECT_GT(with_open, with_gated);
  EXPECT_GT(with_gated, plain);
}

TEST(RtlPower, LeakageScalesWithComplexity) {
  const char* idle_loop = R"(
  li   s0, 500
a: addi s0, s0, -1
  bnez s0, a
  halt
)";
  const tie::TieConfiguration small = tie::compile_tie_source(R"(
instruction dp { isolated reads rs1 writes rd use logic width=8
  semantics { rd = rs1; } }
)");
  const tie::TieConfiguration large = tie::compile_tie_source(R"(
instruction dp { isolated reads rs1 writes rd
  use mult width=64 count=4
  semantics { rd = rs1 * 3; } }
)");
  const double with_small = run_energy(idle_loop, small);
  const double with_large = run_energy(idle_loop, large);
  EXPECT_GT(with_large, with_small);
}

TEST(RtlPower, SettlePassesValidated) {
  TechnologyParams params;
  params.settle_passes = 0;
  EXPECT_THROW(RtlPowerEstimator(empty_tie(), params), Error);
}

TEST(RtlPower, RunBeginResetsState) {
  sim::Cpu cpu({}, empty_tie());
  cpu.load_program(isa::assemble("li t0, 3\nhalt\n"));
  RtlPowerEstimator rtl(empty_tie());
  cpu.add_observer(&rtl);
  cpu.run();
  const double first = rtl.energy_pj();
  // Second run on a fresh CPU with the same observer: on_run_begin must
  // reset accumulators so totals match, apart from cache state (same
  // program, same cold caches).
  sim::Cpu cpu2({}, empty_tie());
  cpu2.load_program(isa::assemble("li t0, 3\nhalt\n"));
  cpu2.add_observer(&rtl);
  cpu2.run();
  EXPECT_DOUBLE_EQ(rtl.energy_pj(), first);
}


TEST(RtlPower, EnergyInvariantUnderSettlePasses) {
  // Settle passes model evaluation *cost*; the converged Hamming distances
  // (and hence energy) must not depend on how many passes run.
  const char* source = R"(
  li   s0, 300
a: add  t0, t0, s0
  mul  t1, t0, s0
  addi s0, s0, -1
  bnez s0, a
  halt
)";
  TechnologyParams fast;
  fast.settle_passes = 1;
  TechnologyParams slow;
  slow.settle_passes = 8;
  EXPECT_DOUBLE_EQ(run_energy(source, empty_tie(), fast),
                   run_energy(source, empty_tie(), slow));
}

TEST(RtlPower, BaseOnlyProcessorHasNoCustomBlocks) {
  std::map<std::string, double> breakdown;
  run_energy("li t0, 1\nhalt\n", empty_tie(), {}, &breakdown);
  for (const auto& [name, pj] : breakdown) {
    EXPECT_EQ(name.rfind("tie:", 0), std::string::npos) << name;
  }
}

TEST(RtlPower, ScheduledComponentsChargeOnlyTheirCycles) {
  // Two otherwise identical 2-cycle datapaths; in one the multiplier is
  // active a single cycle. The single-cycle version must burn less.
  auto spec = [](const char* cycles) {
    return std::string(R"(
instruction dp {
  latency 2
  reads rs1, rs2
  writes rd
  use mult width=32)") + cycles + R"(
  semantics { rd = rs1 * rs2; }
}
)";
  };
  const tie::TieConfiguration both = tie::compile_tie_source(spec(""));
  const tie::TieConfiguration one = tie::compile_tie_source(spec(" cycles=0"));
  const char* source = R"(
  li   s0, 400
  li   t0, 12345
  li   t1, 54321
a: dp   t2, t0, t1
  addi s0, s0, -1
  bnez s0, a
  halt
)";
  EXPECT_GT(run_energy(source, both), run_energy(source, one));
}

}  // namespace
}  // namespace exten::power
