// Functional verification of the workload suite: every application kernel
// must compute the right answer (checked against independent C++
// references), the characterization suite must assemble/run/cover the
// variable space, and the Reed-Solomon kernels must agree with the
// reference encoder/syndrome implementations in all four configurations.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "model/profiler.h"
#include "model/variables.h"
#include "sim/cpu.h"
#include "sim/stats.h"
#include "util/rng.h"
#include "workloads/tie_library.h"
#include "workloads/workloads.h"

namespace exten::workloads {
namespace {

struct Executed {
  std::unique_ptr<sim::Cpu> cpu;
  sim::ExecutionStats stats;
  model::MacroModelVariables vars;
  const isa::ProgramImage* image;
};

Executed execute(const model::TestProgram& program) {
  Executed e;
  e.cpu = std::make_unique<sim::Cpu>(sim::ProcessorConfig{}, *program.tie);
  e.cpu->load_program(program.image);
  sim::StatsCollector stats;
  model::MacroModelProfiler profiler(*program.tie);
  e.cpu->add_observer(&stats);
  e.cpu->add_observer(&profiler);
  e.cpu->run(20'000'000);
  e.stats = stats.stats();
  e.vars = profiler.variables();
  return e;
}

std::vector<std::uint32_t> read_words(const sim::Cpu& cpu, std::uint32_t base,
                                      std::size_t count) {
  std::vector<std::uint32_t> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = cpu.memory().read32(base + 4 * static_cast<std::uint32_t>(i));
  }
  return out;
}

// --- GF / sbox references ----------------------------------------------------

TEST(GfReference, MultiplicationFieldAxioms) {
  // Spot-check field properties: commutativity, identity, zero, and a
  // known value of the 0x11d field.
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(gf_mul_reference(a, b), gf_mul_reference(b, a));
    EXPECT_EQ(gf_mul_reference(a, 1), a);
    EXPECT_EQ(gf_mul_reference(a, 0), 0);
  }
  EXPECT_EQ(gf_mul_reference(0x80, 2), 0x1d);  // overflow reduces by 0x11d
}

TEST(GfReference, DistributesOverXor) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto c = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(gf_mul_reference(a, b ^ c),
              gf_mul_reference(a, b) ^ gf_mul_reference(a, c));
  }
}

TEST(GfReference, AlphaPowersCycle) {
  EXPECT_EQ(gf_pow_alpha(0), 1);
  EXPECT_EQ(gf_pow_alpha(1), 2);
  EXPECT_EQ(gf_pow_alpha(255), 1);  // order divides 255
  EXPECT_EQ(gf_pow_alpha(8), 0x1d); // 2^8 reduced
}

TEST(SboxReference, MatchesKnownAesValues) {
  EXPECT_EQ(aes_sbox(0x00), 0x63);
  EXPECT_EQ(aes_sbox(0x01), 0x7c);
  EXPECT_EQ(aes_sbox(0x53), 0xed);
  EXPECT_EQ(aes_sbox(0xff), 0x16);
}

TEST(SboxReference, IsAPermutation) {
  std::array<bool, 256> seen{};
  for (unsigned i = 0; i < 256; ++i) seen[aes_sbox(static_cast<std::uint8_t>(i))] = true;
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

// --- TIE semantics against C++ references ------------------------------------

TEST(TieLibrary, GfmulInstructionMatchesReference) {
  const tie::TieConfiguration config =
      tie::compile_tie_source(tie_gfmul_spec());
  tie::TieState state = config.make_state();
  Rng rng(8);
  for (int i = 0; i < 300; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(256));
    const auto b = static_cast<std::uint32_t>(rng.next_below(256));
    EXPECT_EQ(config.execute(config.find("gfmul")->func, a, b, &state),
              gf_mul_reference(static_cast<std::uint8_t>(a),
                               static_cast<std::uint8_t>(b)));
  }
}

TEST(TieLibrary, Add4MatchesPerLaneAddition) {
  const tie::TieConfiguration config =
      tie::compile_tie_source(tie_add4_spec());
  tie::TieState state = config.make_state();
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t a = rng.next_u32();
    const std::uint32_t b = rng.next_u32();
    const std::uint32_t got =
        config.execute(config.find("add4")->func, a, b, &state);
    for (int lane = 0; lane < 4; ++lane) {
      const std::uint32_t ea =
          ((a >> (8 * lane)) + (b >> (8 * lane))) & 0xff;
      EXPECT_EQ((got >> (8 * lane)) & 0xff, ea);
    }
  }
}

TEST(TieLibrary, MacAccumulates) {
  const tie::TieConfiguration config = tie::compile_tie_source(tie_mac_spec());
  tie::TieState state = config.make_state();
  const auto mac = config.find("mac")->func;
  const auto rdmac = config.find("rdmac")->func;
  config.execute(mac, 1000, 2000, &state);
  config.execute(mac, 3000, 3000, &state);
  EXPECT_EQ(config.execute(rdmac, 0, 0, &state), 1000u * 2000 + 3000u * 3000);
  config.execute(config.find("clrmac")->func, 0, 0, &state);
  EXPECT_EQ(config.execute(rdmac, 0, 0, &state), 0u);
}

TEST(TieLibrary, MacHandlesNegativeOperands) {
  const tie::TieConfiguration config = tie::compile_tie_source(tie_mac_spec());
  tie::TieState state = config.make_state();
  // -5 * 7 accumulated twice = -70; the 48-bit accumulator holds it in
  // two's complement.
  const std::uint32_t minus5 = 0xfffffffbu;
  config.execute(config.find("mac")->func, minus5, 7, &state);
  config.execute(config.find("mac")->func, minus5, 7, &state);
  EXPECT_EQ(state.read_state("macc"), (std::uint64_t{1} << 48) - 70);
}

TEST(TieLibrary, CsaMaintainsSumInvariant) {
  const tie::TieConfiguration config = tie::compile_tie_source(tie_csa_spec());
  tie::TieState state = config.make_state();
  Rng rng(10);
  std::uint32_t expected = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint32_t a = rng.next_u32();
    const std::uint32_t b = rng.next_u32();
    expected += a + b;
    config.execute(config.find("csa3")->func, a, b, &state);
    const std::uint32_t flushed = config.execute(
        config.find("csaflush")->func, 0, 0, &state);
    EXPECT_EQ(flushed, expected);
  }
}

TEST(TieLibrary, FunnelShift) {
  const tie::TieConfiguration config =
      tie::compile_tie_source(tie_funnel_spec());
  tie::TieState state = config.make_state();
  config.execute(config.find("setsh")->func, 8, 0, &state);
  const std::uint32_t got = config.execute(
      config.find("funnel")->func, 0x12345678u, 0x9abcdef0u, &state);
  EXPECT_EQ(got, (0x12345678u << 8) | (0x9abcdef0u >> 24));
}

TEST(TieLibrary, BlendInterpolates) {
  const tie::TieConfiguration config =
      tie::compile_tie_source(tie_blend_spec());
  tie::TieState state = config.make_state();
  config.execute(config.find("setalpha")->func, 256, 0, &state);
  // alpha = 256: result = rs1 channels exactly.
  EXPECT_EQ(config.execute(config.find("blend")->func, 0x1234u, 0x9876u,
                           &state),
            0x1234u);
  config.execute(config.find("setalpha")->func, 0, 0, &state);
  EXPECT_EQ(config.execute(config.find("blend")->func, 0x1234u, 0x9876u,
                           &state),
            0x9876u);
}

TEST(TieLibrary, FullLibraryCompilesAndCoversAllCategories) {
  const tie::TieConfiguration config =
      tie::compile_tie_source(tie_full_library_spec());
  std::array<double, tie::kComponentClassCount> coverage{};
  for (const tie::CustomInstruction& ci : config.instructions()) {
    for (std::size_t c = 0; c < tie::kComponentClassCount; ++c) {
      coverage[c] += ci.execution_weights[c];
    }
  }
  for (std::size_t c = 0; c < tie::kComponentClassCount; ++c) {
    EXPECT_GT(coverage[c], 0.0)
        << tie::component_class_name(static_cast<tie::ComponentClass>(c));
  }
}

// --- application kernels --------------------------------------------------------

TEST(Apps, InsSortSortsAscending) {
  const auto program = make_ins_sort(64, 77);
  const Executed e = execute(program);
  const auto base = program.image.symbol("array").value();
  const auto data = read_words(*e.cpu, base, 64);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

TEST(Apps, BubsortSortsAscending) {
  const auto program = make_bubsort(48, 78);
  const Executed e = execute(program);
  const auto data =
      read_words(*e.cpu, program.image.symbol("array").value(), 48);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
}

TEST(Apps, SortsPreserveMultiset) {
  const auto program = make_ins_sort(64, 79);
  // Initial contents from the image; final from memory.
  std::vector<std::uint32_t> before(64);
  const auto base = program.image.symbol("array").value();
  for (std::size_t i = 0; i < 64; ++i) {
    before[i] = program.image.read_word(base + 4 * i).value();
  }
  const Executed e = execute(program);
  auto after = read_words(*e.cpu, base, 64);
  std::sort(before.begin(), before.end());
  EXPECT_EQ(after, before);
}

TEST(Apps, GcdComputesGcds) {
  const auto program = make_gcd(32, 80);
  const Executed e = execute(program);
  const auto pairs_base = program.image.symbol("pairs").value();
  const auto results =
      read_words(*e.cpu, program.image.symbol("results").value(), 32);
  for (std::size_t i = 0; i < 32; ++i) {
    const std::uint32_t a =
        program.image.read_word(pairs_base + 8 * i).value();
    const std::uint32_t b =
        program.image.read_word(pairs_base + 8 * i + 4).value();
    EXPECT_EQ(results[i], std::gcd(a, b)) << "pair " << i;
  }
}

TEST(Apps, AlphablendMatchesFormula) {
  const auto program = make_alphablend(32, 81);
  const Executed e = execute(program);
  const auto a_base = program.image.symbol("img_a").value();
  const auto b_base = program.image.symbol("img_b").value();
  const auto out = read_words(*e.cpu, program.image.symbol("img_out").value(), 32);
  const unsigned alpha = 180;
  for (std::size_t i = 0; i < 32; ++i) {
    const std::uint32_t pa = program.image.read_word(a_base + 4 * i).value();
    const std::uint32_t pb = program.image.read_word(b_base + 4 * i).value();
    std::uint32_t expected = 0;
    for (int lane = 0; lane < 2; ++lane) {
      const unsigned ca = (pa >> (8 * lane)) & 0xff;
      const unsigned cb = (pb >> (8 * lane)) & 0xff;
      expected |= (((alpha * ca + (256 - alpha) * cb) >> 8) & 0xff)
                  << (8 * lane);
    }
    EXPECT_EQ(out[i], expected) << "pixel " << i;
  }
}

TEST(Apps, Add4MatchesLaneSum) {
  const auto program = make_add4(40, 82);
  const Executed e = execute(program);
  const auto a_base = program.image.symbol("vec_a").value();
  const auto b_base = program.image.symbol("vec_b").value();
  const auto out =
      read_words(*e.cpu, program.image.symbol("vec_out").value(), 40);
  for (std::size_t i = 0; i < 40; ++i) {
    const std::uint32_t a = program.image.read_word(a_base + 4 * i).value();
    const std::uint32_t b = program.image.read_word(b_base + 4 * i).value();
    std::uint32_t expected = 0;
    for (int lane = 0; lane < 4; ++lane) {
      expected |= (((a >> (8 * lane)) + (b >> (8 * lane))) & 0xff)
                  << (8 * lane);
    }
    EXPECT_EQ(out[i], expected);
  }
}

TEST(Apps, DesRoundsMatchReference) {
  const auto program = make_des(24, 83);
  const Executed e = execute(program);
  const auto in_base = program.image.symbol("blocks").value();
  const auto out =
      read_words(*e.cpu, program.image.symbol("blocks_out").value(), 24);
  auto sboxp = [](std::uint32_t x, std::uint32_t key) {
    std::uint32_t r = 0;
    for (int lane = 0; lane < 4; ++lane) {
      const auto idx =
          static_cast<std::uint8_t>(((x >> (8 * lane)) ^ (key >> (8 * lane))) & 0xff);
      r |= static_cast<std::uint32_t>(aes_sbox(idx)) << (8 * lane);
    }
    return r;
  };
  for (std::size_t i = 0; i < 24; ++i) {
    const std::uint32_t block = program.image.read_word(in_base + 4 * i).value();
    const std::uint32_t expected =
        sboxp(sboxp(block, 0x3a94b7c1u), 0x5ce02d88u) ^ block;
    EXPECT_EQ(out[i], expected) << "block " << i;
  }
}

TEST(Apps, AccumulateSumsArray) {
  const auto program = make_accumulate(64, 84);
  const Executed e = execute(program);
  const auto base = program.image.symbol("samples").value();
  std::uint32_t expected = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    expected += program.image.read_word(base + 4 * i).value();
  }
  EXPECT_EQ(e.cpu->memory().read32(program.image.symbol("sum_out").value()),
            expected);
}

TEST(Apps, DrawlinePlotsEndpoints) {
  const auto program = make_drawline(8, 85);
  const Executed e = execute(program);
  const auto ep_base = program.image.symbol("endpoints").value();
  const auto fb = program.image.symbol("framebuffer").value();
  for (std::size_t i = 0; i < 8; ++i) {
    const std::uint32_t x0 = program.image.read_word(ep_base + 16 * i).value();
    const std::uint32_t y0 =
        program.image.read_word(ep_base + 16 * i + 4).value();
    const std::uint32_t x1 =
        program.image.read_word(ep_base + 16 * i + 8).value();
    EXPECT_EQ(e.cpu->memory().read8(fb + y0 * 128 + x0), 1) << "line " << i;
    // The x1 column is plotted at some y; scan the column.
    bool found = false;
    for (unsigned y = 0; y < 128 && !found; ++y) {
      found = e.cpu->memory().read8(fb + y * 128 + x1) == 1;
    }
    EXPECT_TRUE(found) << "line " << i;
  }
}

TEST(Apps, DrawlinePixelCountMatchesBresenham) {
  // For slope <= 1 lines, Bresenham plots exactly dx+1 pixels per line.
  const auto program = make_drawline(6, 86);
  const Executed e = execute(program);
  const auto ep_base = program.image.symbol("endpoints").value();
  std::size_t expected_pixels = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    const std::uint32_t x0 = program.image.read_word(ep_base + 16 * i).value();
    const std::uint32_t x1 =
        program.image.read_word(ep_base + 16 * i + 8).value();
    expected_pixels += x1 - x0 + 1;
  }
  const auto fb = program.image.symbol("framebuffer").value();
  std::size_t plotted = 0;
  for (unsigned off = 0; off < 128 * 128; ++off) {
    plotted += e.cpu->memory().read8(fb + off);
  }
  // Lines may overlap; plotted <= expected, and most pixels are distinct.
  EXPECT_LE(plotted, expected_pixels);
  EXPECT_GE(plotted, expected_pixels / 2);
}

TEST(Apps, MultiAccumulateBlocksMatchMac) {
  const unsigned n = 64, block = 16;
  const auto program = make_multi_accumulate(n, 87);
  const Executed e = execute(program);
  const auto a_base = program.image.symbol("sig_a").value();
  const auto b_base = program.image.symbol("sig_b").value();
  const auto out_base = program.image.symbol("mac_out").value();
  for (unsigned blk = 0; blk < n / block; ++blk) {
    std::uint64_t acc = 0;
    for (unsigned i = 0; i < block; ++i) {
      const std::uint64_t a =
          program.image.read_word(a_base + 4 * (blk * block + i)).value();
      const std::uint64_t b =
          program.image.read_word(b_base + 4 * (blk * block + i)).value();
      acc += a * b;
    }
    const std::uint32_t lo = e.cpu->memory().read32(out_base + 8 * blk);
    const std::uint32_t hi = e.cpu->memory().read32(out_base + 8 * blk + 4);
    EXPECT_EQ(lo, static_cast<std::uint32_t>(acc));
    EXPECT_EQ(hi, static_cast<std::uint32_t>(acc >> 32) & 0xffff);
  }
}

TEST(Apps, SeqMultChainMatches) {
  const auto program = make_seq_mult(50, 88);
  const Executed e = execute(program);
  const auto f_base = program.image.symbol("factors").value();
  const auto out =
      read_words(*e.cpu, program.image.symbol("prod_out").value(), 50);
  std::uint32_t running = 3;
  for (std::size_t i = 0; i < 50; ++i) {
    const std::uint32_t f = program.image.read_word(f_base + 4 * i).value();
    const std::int64_t product =
        static_cast<std::int64_t>(static_cast<std::int16_t>(running)) *
        static_cast<std::int16_t>(f);
    running = (static_cast<std::uint32_t>(product) & 0x3fff) | 1;
    EXPECT_EQ(out[i], running) << "step " << i;
  }
}

TEST(Apps, SuiteHasTenNamedPrograms) {
  const auto suite = application_suite();
  ASSERT_EQ(suite.size(), 10u);
  EXPECT_EQ(suite[0].name, "Ins_sort");
  EXPECT_EQ(suite[5].name, "DES");
  EXPECT_EQ(suite[9].name, "Seq_mult");
  for (const auto& program : suite) {
    const Executed e = execute(program);
    EXPECT_GT(e.stats.instructions, 500u) << program.name;
  }
}

// --- characterization suite -----------------------------------------------------

TEST(CharSuite, AllProgramsRunToCompletion) {
  for (const auto& program : characterization_suite()) {
    const Executed e = execute(program);
    EXPECT_GT(e.stats.instructions, 100u) << program.name;
    EXPECT_LT(e.stats.instructions, 2'000'000u) << program.name;
  }
}

TEST(CharSuite, CoversEveryMacroModelVariable) {
  model::MacroModelVariables total;
  for (const auto& program : characterization_suite()) {
    total += execute(program).vars;
  }
  for (std::size_t i = 0; i < model::kNumVariables; ++i) {
    EXPECT_GT(total[i], 0.0) << model::variable_name(i);
  }
}

TEST(CharSuite, DeterministicForSeed) {
  const auto a = characterization_suite(123);
  const auto b = characterization_suite(123);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].image.segments().size(), b[i].image.segments().size());
    EXPECT_EQ(a[i].image.total_bytes(), b[i].image.total_bytes());
  }
}

// --- Reed-Solomon ---------------------------------------------------------------

TEST(ReedSolomon, GeneratorPolyAnnihilatesItsRoots) {
  // g(alpha^i) == 0 for i = 0..7: evaluate the monic polynomial.
  const auto taps = rs_generator_poly();  // G[i] = c_{7-i}
  for (unsigned i = 0; i < 8; ++i) {
    const std::uint8_t x = gf_pow_alpha(i);
    // value = x^8 + sum_j c_j x^j, with c_j = taps[7-j].
    std::uint8_t value = 1;
    for (int k = 0; k < 8; ++k) value = gf_mul_reference(value, x);
    std::uint8_t xp = 1;
    for (unsigned j = 0; j < 8; ++j) {
      value ^= gf_mul_reference(taps[7 - j], xp);
      xp = gf_mul_reference(xp, x);
    }
    EXPECT_EQ(value, 0) << "root alpha^" << i;
  }
}

TEST(ReedSolomon, EncodedCodewordHasZeroSyndromes) {
  Rng rng(33);
  std::vector<std::uint8_t> msg(15);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_below(256));
  const auto parity = rs_encode_reference(msg);
  std::vector<std::uint8_t> cw(msg.begin(), msg.end());
  cw.insert(cw.end(), parity.begin(), parity.end());
  cw.push_back(0);  // pad
  const auto syndromes = rs_syndromes_reference(cw);
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(syndromes[i], 0) << "S_" << i;
  }
}

TEST(ReedSolomon, ErrorMakesSyndromesNonZero) {
  std::vector<std::uint8_t> msg(15, 0x41);
  const auto parity = rs_encode_reference(msg);
  std::vector<std::uint8_t> cw(msg.begin(), msg.end());
  cw.insert(cw.end(), parity.begin(), parity.end());
  cw.push_back(0);
  cw[5] ^= 0x27;
  const auto syndromes = rs_syndromes_reference(cw);
  bool any = false;
  for (std::uint8_t s : syndromes) any |= s != 0;
  EXPECT_TRUE(any);
}

class RsKernel : public ::testing::TestWithParam<RsConfig> {};

TEST_P(RsKernel, MatchesReferenceEncoderAndSyndromes) {
  const unsigned blocks = 6;
  const auto program = make_reed_solomon(GetParam(), blocks, 91);
  const Executed e = execute(program);
  const auto msg_base = program.image.symbol("msg").value();
  const auto parity_base = program.image.symbol("parity_out").value();
  const auto synd_base = program.image.symbol("synd_out").value();

  for (unsigned blk = 0; blk < blocks; ++blk) {
    std::vector<std::uint8_t> msg(15);
    for (unsigned i = 0; i < 15; ++i) {
      msg[i] = e.cpu->memory().read8(msg_base + blk * 15 + i);
    }
    const auto parity = rs_encode_reference(msg);
    for (unsigned i = 0; i < 8; ++i) {
      EXPECT_EQ(e.cpu->memory().read8(parity_base + blk * 8 + i), parity[i])
          << "block " << blk << " parity byte " << i;
    }
    // Rebuild the padded codeword (with the kernel's error injection for
    // odd countdown values: blocks are processed with s1 = blocks..1, and
    // the error hits when s1 is odd).
    std::vector<std::uint8_t> cw(msg.begin(), msg.end());
    cw.insert(cw.end(), parity.begin(), parity.end());
    cw.push_back(0);
    const unsigned countdown = blocks - blk;
    if (countdown % 2 == 1) cw[5] ^= 0x27;
    const auto syndromes = rs_syndromes_reference(cw);
    for (unsigned i = 0; i < 8; ++i) {
      EXPECT_EQ(e.cpu->memory().read8(synd_base + blk * 8 + i), syndromes[i])
          << "block " << blk << " syndrome " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, RsKernel,
                         ::testing::Values(RsConfig::kBase, RsConfig::kGfMul,
                                           RsConfig::kGfMac,
                                           RsConfig::kGfMac2));

TEST(ReedSolomon, CustomConfigsReduceCycles) {
  const auto variants = reed_solomon_variants(91);
  ASSERT_EQ(variants.size(), 4u);
  std::vector<std::uint64_t> cycles;
  for (const auto& program : variants) {
    cycles.push_back(execute(program).stats.cycles);
  }
  // Every extension beats the base config; the packed variant beats the
  // scalar MAC variant.
  EXPECT_GT(cycles[0], cycles[1]);
  EXPECT_GT(cycles[0], cycles[2]);
  EXPECT_GT(cycles[2], cycles[3]);
}


// --- extra applications (FIR / CRC-32 / SAD) ------------------------------------

TEST(Extras, FirMatchesReference) {
  const unsigned n = 64;
  const auto program = make_fir(n, 55);
  const Executed e = execute(program);
  const auto s_base = program.image.symbol("samples").value();
  const auto t_base = program.image.symbol("taps").value();
  const auto o_base = program.image.symbol("fir_out").value();

  std::vector<std::int16_t> samples(n), taps(8);
  for (unsigned i = 0; i < n; ++i) {
    samples[i] = static_cast<std::int16_t>(e.cpu->memory().read16(s_base + 2 * i));
  }
  for (unsigned i = 0; i < 8; ++i) {
    taps[i] = static_cast<std::int16_t>(e.cpu->memory().read16(t_base + 2 * i));
  }
  const auto expected = fir_reference(samples, taps);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(static_cast<std::int32_t>(
                  e.cpu->memory().read32(o_base + 4 * static_cast<std::uint32_t>(i))),
              expected[i])
        << "output " << i;
  }
}

TEST(Extras, Crc32MatchesReference) {
  const unsigned bytes = 256;
  const auto program = make_crc32(bytes, 56);
  const Executed e = execute(program);
  const auto p_base = program.image.symbol("payload").value();
  std::vector<std::uint8_t> payload(bytes);
  for (unsigned i = 0; i < bytes; ++i) {
    payload[i] = e.cpu->memory().read8(p_base + i);
  }
  EXPECT_EQ(e.cpu->memory().read32(program.image.symbol("crc_out").value()),
            crc32_reference(payload));
}

TEST(Extras, Crc32KnownVector) {
  // "123456789" -> 0xCBF43926 (the canonical CRC-32 check value).
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32_reference(digits), 0xcbf43926u);
}

TEST(Extras, SadMatchesReference) {
  const unsigned blocks = 3;
  const auto program = make_sad(blocks, 57);
  const Executed e = execute(program);
  const auto c_base = program.image.symbol("cur_frame").value();
  const auto r_base = program.image.symbol("ref_frame").value();
  const auto o_base = program.image.symbol("sad_out").value();
  const unsigned block_bytes = 64 * 4;
  for (unsigned blk = 0; blk < blocks; ++blk) {
    std::vector<std::uint8_t> cur(block_bytes), ref(block_bytes);
    for (unsigned i = 0; i < block_bytes; ++i) {
      cur[i] = e.cpu->memory().read8(c_base + blk * block_bytes + i);
      ref[i] = e.cpu->memory().read8(r_base + blk * block_bytes + i);
    }
    EXPECT_EQ(e.cpu->memory().read32(o_base + 4 * blk),
              sad_reference(cur, ref))
        << "block " << blk;
  }
}

TEST(Extras, SuiteRunsAndUsesItsExtensions) {
  for (const auto& program : extras_suite()) {
    const Executed e = execute(program);
    EXPECT_GT(e.stats.instructions, 500u) << program.name;
    EXPECT_FALSE(e.stats.custom_counts.empty()) << program.name;
  }
}


// --- seed sweeps: the generators must be correct for any seed -------------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, SortsStayCorrect) {
  const std::uint64_t seed = GetParam();
  const auto program = make_ins_sort(40, seed);
  const Executed e = execute(program);
  const auto data =
      read_words(*e.cpu, program.image.symbol("array").value(), 40);
  EXPECT_TRUE(std::is_sorted(data.begin(), data.end())) << "seed " << seed;
}

TEST_P(SeedSweep, GcdStaysCorrect) {
  const std::uint64_t seed = GetParam();
  const auto program = make_gcd(16, seed);
  const Executed e = execute(program);
  const auto pairs_base = program.image.symbol("pairs").value();
  const auto results =
      read_words(*e.cpu, program.image.symbol("results").value(), 16);
  for (std::size_t i = 0; i < 16; ++i) {
    const std::uint32_t a = program.image.read_word(pairs_base + 8 * i).value();
    const std::uint32_t b =
        program.image.read_word(pairs_base + 8 * i + 4).value();
    EXPECT_EQ(results[i], std::gcd(a, b)) << "seed " << seed << " pair " << i;
  }
}

TEST_P(SeedSweep, AccumulateStaysCorrect) {
  const std::uint64_t seed = GetParam();
  const auto program = make_accumulate(32, seed);
  const Executed e = execute(program);
  const auto base = program.image.symbol("samples").value();
  std::uint32_t expected = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    expected += program.image.read_word(base + 4 * i).value();
  }
  EXPECT_EQ(e.cpu->memory().read32(program.image.symbol("sum_out").value()),
            expected)
      << "seed " << seed;
}

TEST_P(SeedSweep, Crc32StaysCorrect) {
  const std::uint64_t seed = GetParam();
  const auto program = make_crc32(128, seed);
  const Executed e = execute(program);
  const auto p_base = program.image.symbol("payload").value();
  std::vector<std::uint8_t> payload(128);
  for (unsigned i = 0; i < 128; ++i) {
    payload[i] = e.cpu->memory().read8(p_base + i);
  }
  EXPECT_EQ(e.cpu->memory().read32(program.image.symbol("crc_out").value()),
            crc32_reference(payload))
      << "seed " << seed;
}

TEST_P(SeedSweep, ReedSolomonParityStaysCorrect) {
  const std::uint64_t seed = GetParam();
  const auto program = make_reed_solomon(RsConfig::kGfMul, 3, seed);
  const Executed e = execute(program);
  const auto msg_base = program.image.symbol("msg").value();
  const auto parity_base = program.image.symbol("parity_out").value();
  for (unsigned blk = 0; blk < 3; ++blk) {
    std::vector<std::uint8_t> msg(15);
    for (unsigned i = 0; i < 15; ++i) {
      msg[i] = e.cpu->memory().read8(msg_base + blk * 15 + i);
    }
    const auto parity = rs_encode_reference(msg);
    for (unsigned i = 0; i < 8; ++i) {
      EXPECT_EQ(e.cpu->memory().read8(parity_base + blk * 8 + i), parity[i])
          << "seed " << seed << " block " << blk;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 2u, 3u, 42u, 1000u, 31337u,
                                           0xdeadbeefu, 0xffffffffffffffffull));

}  // namespace
}  // namespace exten::workloads
