// Unit and property tests for the XTC-32 ISA definition and the binary
// encoder / decoder.

#include <gtest/gtest.h>

#include "isa/encoding.h"
#include "isa/isa.h"
#include "util/error.h"
#include "util/rng.h"

namespace exten::isa {
namespace {

// --- Opcode table -----------------------------------------------------------

TEST(Isa, OpcodeTableIsConsistent) {
  for (unsigned i = 0; i < kOpcodeCount; ++i) {
    const auto op = static_cast<Opcode>(i);
    const OpcodeInfo& info = opcode_info(op);
    EXPECT_EQ(info.opcode, op);
    EXPECT_FALSE(info.mnemonic.empty());
  }
}

TEST(Isa, MnemonicLookupRoundTrips) {
  for (unsigned i = 0; i < kOpcodeCount; ++i) {
    const auto op = static_cast<Opcode>(i);
    const auto found = find_opcode(opcode_info(op).mnemonic);
    ASSERT_TRUE(found.has_value()) << opcode_info(op).mnemonic;
    EXPECT_EQ(*found, op);
  }
}

TEST(Isa, UnknownMnemonicIsNullopt) {
  EXPECT_FALSE(find_opcode("frobnicate").has_value());
  EXPECT_FALSE(find_opcode("").has_value());
  EXPECT_FALSE(find_opcode("ADD").has_value());  // lookup is lower-case
}

TEST(Isa, ClassPredicates) {
  EXPECT_TRUE(is_branch(Opcode::kBeq));
  EXPECT_FALSE(is_branch(Opcode::kJ));
  EXPECT_TRUE(is_load(Opcode::kLbu));
  EXPECT_FALSE(is_load(Opcode::kSw));
}

TEST(Isa, StoreReadsValueRegister) {
  const OpcodeInfo& sw_info = opcode_info(Opcode::kSw);
  EXPECT_TRUE(sw_info.reads_rs1);
  EXPECT_TRUE(sw_info.reads_rs2);
  EXPECT_FALSE(sw_info.writes_rd);
}

TEST(Isa, ClassCountsCoverSixMacroModelClasses) {
  int arith = 0, load = 0, store = 0, jump = 0, branch = 0;
  for (unsigned i = 0; i < kOpcodeCount; ++i) {
    switch (opcode_info(static_cast<Opcode>(i)).cls) {
      case InstrClass::Arithmetic: ++arith; break;
      case InstrClass::Load: ++load; break;
      case InstrClass::Store: ++store; break;
      case InstrClass::Jump: ++jump; break;
      case InstrClass::Branch: ++branch; break;
      default: break;
    }
  }
  EXPECT_GE(arith, 20);
  EXPECT_EQ(load, 5);
  EXPECT_EQ(store, 3);
  EXPECT_EQ(jump, 4);
  EXPECT_EQ(branch, 8);
}

// --- Encoding round trips ------------------------------------------------------

/// Property: encode(decode_form) then decode must reproduce the decoded
/// form exactly, for every opcode and many random field values.
class EncodeRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(EncodeRoundTrip, AllFieldValues) {
  const auto op = static_cast<Opcode>(GetParam());
  const OpcodeInfo& info = opcode_info(op);
  Rng rng(GetParam() * 977 + 5);

  for (int trial = 0; trial < 50; ++trial) {
    DecodedInstr d;
    d.op = op;
    switch (info.format) {
      case Format::RType:
        d = make_rtype(op, rng.next_below(64), rng.next_below(64),
                       rng.next_below(64));
        break;
      case Format::IType: {
        std::int32_t imm;
        switch (op) {
          case Opcode::kAndi:
          case Opcode::kOri:
          case Opcode::kXori:
            imm = static_cast<std::int32_t>(rng.next_below(kImm14UMax + 1));
            break;
          case Opcode::kSlli:
          case Opcode::kSrli:
          case Opcode::kSrai:
            imm = static_cast<std::int32_t>(rng.next_below(32));
            break;
          default:
            imm = static_cast<std::int32_t>(rng.next_in(kImm14Min, kImm14Max));
            break;
        }
        if (info.cls == InstrClass::Store) {
          d = make_store(op, rng.next_below(64), rng.next_below(64), imm);
        } else {
          d = make_itype(op, rng.next_below(64), rng.next_below(64), imm);
        }
        break;
      }
      case Format::UType:
        d = make_utype(op, rng.next_below(64),
                       static_cast<std::int32_t>(rng.next_below(kImm18UMax + 1)
                                                 << 14));
        break;
      case Format::BranchType:
        d = make_branch(op, rng.next_below(64), rng.next_below(64),
                        static_cast<std::int32_t>(
                            rng.next_in(kImm14Min, kImm14Max)));
        if (op == Opcode::kBeqz || op == Opcode::kBnez) d.rs2 = 0;
        break;
      case Format::JType:
        d = make_jump(op, static_cast<std::int32_t>(
                              rng.next_in(kImm26Min, kImm26Max)));
        break;
      case Format::CustomType:
        d = make_custom(rng.next_below(256), rng.next_below(64),
                        rng.next_below(64), rng.next_below(64));
        break;
      case Format::None:
        break;
    }
    const std::uint32_t word = encode(d);
    const DecodedInstr back = decode(word);
    EXPECT_EQ(back, d) << info.mnemonic << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodeRoundTrip,
                         ::testing::Range(0u, kOpcodeCount));

// --- Field range validation ----------------------------------------------------

TEST(Encode, RejectsRegisterOutOfRange) {
  EXPECT_THROW(encode(make_rtype(Opcode::kAdd, 64, 0, 0)), Error);
  EXPECT_THROW(encode(make_rtype(Opcode::kAdd, 0, 99, 0)), Error);
}

TEST(Encode, RejectsImmediateOutOfRange) {
  EXPECT_THROW(encode(make_itype(Opcode::kAddi, 1, 2, kImm14Max + 1)), Error);
  EXPECT_THROW(encode(make_itype(Opcode::kAddi, 1, 2, kImm14Min - 1)), Error);
  EXPECT_THROW(encode(make_itype(Opcode::kOri, 1, 2, -1)), Error);
  EXPECT_THROW(encode(make_itype(Opcode::kOri, 1, 2, kImm14UMax + 1)), Error);
}

TEST(Encode, RejectsBranchOffsetOutOfRange) {
  EXPECT_THROW(encode(make_branch(Opcode::kBeq, 1, 2, kImm14Max + 1)), Error);
  EXPECT_THROW(encode(make_jump(Opcode::kJ, kImm26Max + 1)), Error);
}

TEST(Encode, LuiRequiresClearedLowBits) {
  EXPECT_NO_THROW(encode(make_utype(Opcode::kLui, 3, 0x4000)));
  EXPECT_THROW(encode(make_utype(Opcode::kLui, 3, 0x4001)), Error);
}

TEST(Decode, UndefinedPrimaryOpcodeThrows) {
  const std::uint32_t bad = 0xffffffffu;  // primary 63, undefined
  EXPECT_THROW(decode(bad), Error);
}

TEST(Decode, SignExtendsNegativeImmediates) {
  const DecodedInstr d = decode(encode(make_itype(Opcode::kAddi, 1, 2, -5)));
  EXPECT_EQ(d.imm, -5);
}

TEST(Decode, ZeroExtendsLogicalImmediates) {
  const DecodedInstr d =
      decode(encode(make_itype(Opcode::kOri, 1, 2, 0x3fff)));
  EXPECT_EQ(d.imm, 0x3fff);
}

TEST(Decode, StoreFieldsMapToValueAndBase) {
  const DecodedInstr d =
      decode(encode(make_store(Opcode::kSw, /*value=*/7, /*base=*/9, 12)));
  EXPECT_EQ(d.rs2, 7);
  EXPECT_EQ(d.rs1, 9);
  EXPECT_EQ(d.imm, 12);
}

}  // namespace
}  // namespace exten::isa
