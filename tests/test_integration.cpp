// End-to-end integration tests: the full characterize -> estimate flow of
// the paper, reproducing the headline claims in-test (with thresholds
// slightly looser than the expected values so seeds/platforms don't flake):
//  - Fig. 3: small per-program fitting errors on the characterization suite
//  - Table II: small application estimation errors vs the RTL reference
//  - Fig. 4: relative accuracy across Reed-Solomon custom-instruction
//    choices
//  - speedup: macro-model path much faster than the RTL path

#include <gtest/gtest.h>

#include <cmath>

#include "model/characterize.h"
#include "model/estimate.h"
#include "util/stats.h"
#include "workloads/workloads.h"

namespace exten {
namespace {

/// Characterization is expensive (~40 programs through the RTL-level
/// estimator); share one result across all tests in this file.
const model::CharacterizationResult& shared_model() {
  static const model::CharacterizationResult result =
      model::characterize(workloads::characterization_suite());
  return result;
}

TEST(EndToEnd, CharacterizationFitsWell) {
  const auto& result = shared_model();
  EXPECT_GE(result.observations.size(), 25u);
  EXPECT_GT(result.r_squared, 0.99);
  // Paper Fig. 3: max < 8.9 %, RMS 3.8 %. Allow headroom.
  EXPECT_LT(result.rms_error_percent, 8.0);
  EXPECT_LT(result.max_abs_error_percent, 18.0);
  EXPECT_TRUE(std::isfinite(result.condition));
}

TEST(EndToEnd, InstructionLevelCoefficientsPlausible) {
  const auto& model = shared_model().model;
  using namespace exten::model;
  // Per-cycle class energies in a few-hundred-pJ band.
  for (std::size_t v :
       {kVarArith, kVarLoad, kVarStore, kVarJump, kVarBranchTaken}) {
    EXPECT_GT(model.coefficient(v), 100.0) << variable_name(v);
    EXPECT_LT(model.coefficient(v), 1500.0) << variable_name(v);
  }
  // Cache misses cost an order of magnitude more than a cycle.
  EXPECT_GT(model.coefficient(kVarIcacheMiss),
            3.0 * model.coefficient(kVarArith));
  EXPECT_GT(model.coefficient(kVarDcacheMiss),
            3.0 * model.coefficient(kVarArith));
  // Taken branches cost more than untaken ones (flush bubbles).
  EXPECT_GT(model.coefficient(kVarBranchTaken),
            model.coefficient(kVarBranchUntaken));
}

TEST(EndToEnd, ApplicationAccuracyMatchesPaperShape) {
  // Paper Table II: max |error| 8.5 %, mean |error| 3.3 %.
  const auto& result = shared_model();
  StreamingStats errors;
  for (const auto& app : workloads::application_suite()) {
    const model::EnergyEstimate est =
        model::estimate_energy(result.model, app);
    const model::ReferenceResult ref = model::reference_energy(app);
    const double err = percent_error(est.energy_pj, ref.energy_pj);
    errors.add(err);
    EXPECT_LT(std::fabs(err), 15.0) << app.name;
  }
  EXPECT_EQ(errors.count(), 10u);
  EXPECT_LT(errors.mean_abs(), 8.0);
}

TEST(EndToEnd, ApplicationErrorsHaveMixedSigns) {
  // The estimator should not be systematically biased: Table II has both
  // over- and under-estimates.
  const auto& result = shared_model();
  bool any_positive = false, any_negative = false;
  for (const auto& app : workloads::application_suite()) {
    const double est =
        model::estimate_energy(result.model, app).energy_pj;
    const double ref = model::reference_energy(app).energy_pj;
    (est > ref ? any_positive : any_negative) = true;
  }
  EXPECT_TRUE(any_positive);
  EXPECT_TRUE(any_negative);
}

TEST(EndToEnd, ReedSolomonRelativeAccuracy) {
  // Fig. 4: macro-model and RTL-tool profiles track each other across the
  // four custom-instruction choices.
  const auto& result = shared_model();
  std::vector<double> est, ref;
  for (const auto& variant : workloads::reed_solomon_variants()) {
    est.push_back(model::estimate_energy(result.model, variant).energy_pj);
    ref.push_back(model::reference_energy(variant).energy_pj);
  }
  ASSERT_EQ(est.size(), 4u);
  // Absolute accuracy within 15 % per variant.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_LT(std::fabs(percent_error(est[i], ref[i])), 15.0) << i;
  }
  // Relative ordering is preserved wherever the reference gap is > 5 %.
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (ref[i] > ref[j] * 1.05) {
        EXPECT_GT(est[i], est[j])
            << "ordering of variants " << i << " and " << j;
      }
    }
  }
  // The base configuration is the most expensive by a wide margin in both
  // profiles (the custom instructions pay off).
  EXPECT_GT(ref[0], 1.5 * ref[1]);
  EXPECT_GT(est[0], 1.5 * est[1]);
}

TEST(EndToEnd, MacroModelPathIsMuchFaster) {
  const auto& result = shared_model();
  double est_seconds = 0.0, ref_seconds = 0.0;
  for (const auto& app : workloads::application_suite()) {
    est_seconds += model::estimate_energy(result.model, app).elapsed_seconds;
    ref_seconds += model::reference_energy(app).elapsed_seconds;
  }
  // The paper reports ~3 orders of magnitude vs a commercial RTL flow; our
  // RTL stand-in is lighter than ModelSim+WattWatcher, so require >= 20x
  // here and report the measured ratio in the speedup bench.
  EXPECT_GT(ref_seconds, 20.0 * est_seconds);
}

TEST(EndToEnd, SerializedModelReproducesEstimates) {
  const auto& result = shared_model();
  const model::EnergyMacroModel restored =
      model::EnergyMacroModel::deserialize(result.model.serialize());
  const auto apps = workloads::application_suite();
  const model::EnergyEstimate a =
      model::estimate_energy(result.model, apps[0]);
  const model::EnergyEstimate b = model::estimate_energy(restored, apps[0]);
  EXPECT_NEAR(a.energy_pj, b.energy_pj, std::fabs(a.energy_pj) * 1e-6);
}

TEST(EndToEnd, EstimationIsDeterministic) {
  const auto& result = shared_model();
  const auto apps = workloads::application_suite();
  const double a = model::estimate_energy(result.model, apps[3]).energy_pj;
  const double b = model::estimate_energy(result.model, apps[3]).energy_pj;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(EndToEnd, PseudoInverseFitMatchesQrPredictions) {
  // The paper's literal Eq. (5) (normal equations) and the QR path agree
  // on predictions for the full suite.
  model::CharacterizeOptions pinv;
  pinv.method = model::FitMethod::kPseudoInverse;
  const auto suite = workloads::characterization_suite();
  const model::CharacterizationResult via_pinv =
      model::characterize(suite, pinv);
  const auto& via_qr = shared_model();
  for (std::size_t i = 0; i < via_qr.observations.size(); ++i) {
    const double qr_pred = via_qr.observations[i].predicted_pj;
    const double pinv_pred = via_pinv.observations[i].predicted_pj;
    EXPECT_NEAR(pinv_pred, qr_pred, std::fabs(qr_pred) * 5e-3)
        << via_qr.observations[i].name;
  }
}

}  // namespace
}  // namespace exten
