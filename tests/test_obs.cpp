// Tests for src/obs/: the thread-local seqlock span rings (nesting,
// ordering, wraparound, concurrent snapshot), the disabled-mode contract
// (inert and allocation-free), correlation ids, the Chrome trace-event
// exporter, the stage aggregation, and the differential guarantee that
// tracing never changes an estimate.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <set>
#include <thread>
#include <vector>

#include "model/estimate.h"
#include "model/macro_model.h"
#include "model/test_program.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "util/json.h"

// --- global allocation counter ---------------------------------------------
// Replaces the global allocation functions for this whole test binary so
// the disabled-mode zero-allocation contract is pinned by an exact count
// (not a heuristic). delete is malloc-matched, so the replacement is safe
// under ASan/TSan too.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace exten::obs {
namespace {

/// Every test leaves the tracer disabled and empty for the next one.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
};

const Span* find_span(const std::vector<Span>& spans, std::string_view name) {
  for (const Span& span : spans) {
    if (span.name != nullptr && name == span.name) return &span;
  }
  return nullptr;
}

// --- nesting, ordering, counters -------------------------------------------

TEST_F(ObsTest, NestedSpansRecordDepthAndContainment) {
  Tracer::instance().set_enabled(true);
  {
    ScopedSpan outer(Category::kServer, "outer");
    outer.add_counter("requests", 3);
    {
      ScopedSpan inner(Category::kService, "inner");
    }
  }
  Tracer::instance().set_enabled(false);

  const std::vector<Span> spans = Tracer::instance().snapshot();
  const Span* outer = find_span(spans, "outer");
  const Span* inner = find_span(spans, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->category, Category::kServer);
  EXPECT_EQ(inner->category, Category::kService);
  EXPECT_EQ(inner->depth, outer->depth + 1);
  // Time containment: the child starts after and ends before its parent.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->end_ns(), outer->end_ns());
  // snapshot() orders by start time, so the parent sorts first even
  // though the child was *emitted* first (RAII emits on destruction).
  EXPECT_LT(outer - spans.data(), inner - spans.data());
  ASSERT_STREQ(outer->counter_name[0], "requests");
  EXPECT_EQ(outer->counter_value[0], 3u);
  EXPECT_EQ(outer->thread, inner->thread);
}

TEST_F(ObsTest, ScopedIdPropagatesAndNests) {
  Tracer::instance().set_enabled(true);
  {
    ScopedId request(42);
    EXPECT_EQ(current_id(), 42u);
    { ScopedSpan span(Category::kServer, "outer_id"); }
    {
      ScopedId job(7);
      EXPECT_EQ(current_id(), 7u);
      { ScopedSpan span(Category::kService, "inner_id"); }
    }
    EXPECT_EQ(current_id(), 42u);
    { ScopedSpan span(Category::kServer, "explicit_id", 99); }
  }
  EXPECT_EQ(current_id(), 0u);
  Tracer::instance().set_enabled(false);

  const std::vector<Span> spans = Tracer::instance().snapshot();
  ASSERT_NE(find_span(spans, "outer_id"), nullptr);
  EXPECT_EQ(find_span(spans, "outer_id")->id, 42u);
  EXPECT_EQ(find_span(spans, "inner_id")->id, 7u);
  EXPECT_EQ(find_span(spans, "explicit_id")->id, 99u);
}

TEST_F(ObsTest, EmitSpanRecordsExternalTiming) {
  Tracer::instance().set_enabled(true);
  emit_span(Category::kService, "external", 5, 1000, 2000, "bytes", 7);
  Tracer::instance().set_enabled(false);

  const std::vector<Span> spans = Tracer::instance().snapshot();
  const Span* span = find_span(spans, "external");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->id, 5u);
  EXPECT_EQ(span->start_ns, 1000u);
  EXPECT_EQ(span->dur_ns, 2000u);
  ASSERT_STREQ(span->counter_name[0], "bytes");
  EXPECT_EQ(span->counter_value[0], 7u);
}

TEST_F(ObsTest, NextIdIsMonotonicAndNonZero) {
  const std::uint64_t a = Tracer::instance().next_id();
  const std::uint64_t b = Tracer::instance().next_id();
  EXPECT_NE(a, 0u);
  EXPECT_LT(a, b);
}

// --- ring wraparound --------------------------------------------------------

TEST_F(ObsTest, RingWraparoundKeepsNewestAndCountsDrops) {
  Tracer::instance().set_thread_capacity(16);
  Tracer::instance().set_enabled(true);
  // A fresh thread gets a fresh ring with the small capacity (the capacity
  // applies to rings created after the call).
  std::thread emitter([] {
    for (int i = 0; i < 50; ++i) {
      ScopedSpan span(Category::kTool, "wrap_span");
    }
  });
  emitter.join();
  Tracer::instance().set_enabled(false);
  Tracer::instance().set_thread_capacity(16384);  // restore for later tests

  const std::vector<Span> spans = Tracer::instance().snapshot();
  std::size_t kept = 0;
  for (const Span& span : spans) {
    if (span.name != nullptr && std::string_view("wrap_span") == span.name) {
      ++kept;
    }
  }
  EXPECT_EQ(kept, 16u);  // ring holds exactly its capacity
  EXPECT_GE(Tracer::instance().dropped_spans(), 34u);
  Tracer::instance().clear();
  EXPECT_EQ(Tracer::instance().dropped_spans(), 0u);
}

// --- disabled mode ----------------------------------------------------------

TEST_F(ObsTest, DisabledSpansAreInertAndAllocationFree) {
  // Warm every lazy path (ring registration, thread-locals) first.
  Tracer::instance().set_enabled(true);
  { ScopedSpan warm(Category::kTool, "warm"); }
  Tracer::instance().set_enabled(false);
  Tracer::instance().clear();

  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    ScopedSpan span(Category::kTool, "disabled");
    span.add_counter("counter", 1);
    ScopedId id(static_cast<std::uint64_t>(i + 1));
    emit_span(Category::kTool, "disabled_emit", 1, 0, 1);
  }
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "disabled tracing must not allocate";
  EXPECT_TRUE(Tracer::instance().snapshot().empty());
}

TEST_F(ObsTest, EnabledEmitPathDoesNotAllocateAfterRegistration) {
  Tracer::instance().set_enabled(true);
  { ScopedSpan warm(Category::kTool, "warm"); }  // registers this ring

  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    ScopedSpan span(Category::kTool, "steady_state");
    span.add_counter("i", static_cast<std::uint64_t>(i));
  }
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  Tracer::instance().set_enabled(false);
  EXPECT_EQ(after, before) << "steady-state emit must not allocate";
}

// --- concurrent emit + snapshot --------------------------------------------

TEST_F(ObsTest, SnapshotWhileEmittingNeverYieldsTornSpans) {
  Tracer::instance().set_thread_capacity(256);  // force constant wraparound
  Tracer::instance().set_enabled(true);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        ScopedSpan span(Category::kEngine, "concurrent");
        span.add_counter("marker", 0xABCDABCDu);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    const std::vector<Span> spans = Tracer::instance().snapshot();
    for (const Span& span : spans) {
      // A torn slot would show mixed fields; the seqlock must never let
      // one escape. Every published span is fully formed.
      ASSERT_NE(span.name, nullptr);
      ASSERT_EQ(std::string_view("concurrent"), span.name);
      ASSERT_EQ(span.category, Category::kEngine);
      ASSERT_EQ(span.counter_value[0], 0xABCDABCDu);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : writers) w.join();
  Tracer::instance().set_enabled(false);
  Tracer::instance().set_thread_capacity(16384);
}

// --- exporters --------------------------------------------------------------

TEST_F(ObsTest, ChromeTraceJsonIsValidAndComplete) {
  Tracer::instance().set_enabled(true);
  {
    ScopedId id(11);
    ScopedSpan outer(Category::kServer, "request");
    ScopedSpan inner(Category::kTie, "tie_compile");
  }
  Tracer::instance().set_enabled(false);

  const std::string json =
      chrome_trace_json(Tracer::instance().snapshot());
  const JsonValue parsed = JsonValue::parse(json);  // throws if malformed
  const JsonValue* events = parsed.find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::set<std::string> names;
  std::set<std::string> cats;
  bool saw_thread_metadata = false;
  for (const JsonValue& event : events->as_array()) {
    const std::string ph = event.find("ph")->as_string();
    if (ph == "M") {
      saw_thread_metadata = true;
      continue;
    }
    ASSERT_EQ(ph, "X");
    names.insert(event.find("name")->as_string());
    cats.insert(event.find("cat")->as_string());
    EXPECT_GE(event.find("dur")->as_number(), 0.0);
    EXPECT_EQ(event.find("args")->find("id")->as_number(), 11.0);
  }
  EXPECT_TRUE(saw_thread_metadata);
  EXPECT_TRUE(names.count("request"));
  EXPECT_TRUE(names.count("tie_compile"));
  EXPECT_TRUE(cats.count("server"));
  EXPECT_TRUE(cats.count("tie"));
}

TEST_F(ObsTest, AggregateStagesComputesPerNameStatistics) {
  std::vector<Span> spans(3);
  spans[0].name = "evaluate";
  spans[0].category = Category::kService;
  spans[0].dur_ns = 1000;
  spans[1].name = "evaluate";
  spans[1].category = Category::kService;
  spans[1].dur_ns = 3000;
  spans[2].name = "run_fast";
  spans[2].category = Category::kEngine;
  spans[2].dur_ns = 500;

  const std::vector<StageStats> stages = aggregate_stages(spans);
  ASSERT_EQ(stages.size(), 2u);
  const StageStats* eval = nullptr;
  for (const StageStats& s : stages) {
    if (s.name == "evaluate") eval = &s;
  }
  ASSERT_NE(eval, nullptr);
  EXPECT_EQ(eval->count, 2u);
  EXPECT_DOUBLE_EQ(eval->total_seconds, 4e-6);
  EXPECT_DOUBLE_EQ(eval->min_seconds, 1e-6);
  EXPECT_DOUBLE_EQ(eval->max_seconds, 3e-6);
  EXPECT_DOUBLE_EQ(eval->mean_seconds(), 2e-6);

  const std::string table = stage_summary_table(stages);
  EXPECT_NE(table.find("evaluate"), std::string::npos);
  EXPECT_NE(table.find("run_fast"), std::string::npos);
  EXPECT_TRUE(stage_summary_table({}).empty());
}

// --- tracing must not perturb results ---------------------------------------

constexpr std::string_view kMacTie = R"(state acc width=32
instruction cma {
  latency 2
  reads rs1, rs2
  use tie_mac width=32
  semantics { acc = acc + rs1 * rs2; }
}
)";

constexpr std::string_view kMacAsm =
    "  li r1, 3\n"
    "  li r2, 4\n"
    "  li r4, 200\n"
    "loop:\n"
    "  cma r1, r2\n"
    "  addi r4, r4, -1\n"
    "  bnez r4, loop\n"
    "  halt\n";

TEST_F(ObsTest, TracedAndUntracedEstimatesAreBitIdentical) {
  const model::TestProgram program =
      model::make_test_program("differential", kMacAsm, kMacTie);
  linalg::Vector coefficients(model::kNumVariables, 100.0);
  const model::EnergyMacroModel macro_model(std::move(coefficients));

  Tracer::instance().set_enabled(false);
  const model::EnergyEstimate untraced =
      model::estimate_energy(macro_model, program, {}, 1'000'000);
  Tracer::instance().set_enabled(true);
  const model::EnergyEstimate traced =
      model::estimate_energy(macro_model, program, {}, 1'000'000);
  Tracer::instance().set_enabled(false);

  EXPECT_EQ(untraced.energy_pj, traced.energy_pj);  // bit-exact
  EXPECT_EQ(untraced.stats.cycles, traced.stats.cycles);
  EXPECT_EQ(untraced.stats.instructions, traced.stats.instructions);
  for (std::size_t i = 0; i < model::kNumVariables; ++i) {
    EXPECT_EQ(untraced.variables[i], traced.variables[i]) << "variable " << i;
  }

  // The traced run left engine + TIE spans behind.
  const std::vector<Span> spans = Tracer::instance().snapshot();
  EXPECT_NE(find_span(spans, "run_fast"), nullptr);
  EXPECT_NE(find_span(spans, "tie_execute"), nullptr);
  const Span* tie = find_span(spans, "tie_execute");
  ASSERT_STREQ(tie->counter_name[0], "custom_ops");
  EXPECT_EQ(tie->counter_value[0], 200u);
}

}  // namespace
}  // namespace exten::obs
