// Tests for the service layer: bounded job queue (shutdown semantics),
// thread pool (error containment), content hashing (cache keying),
// the LRU evaluation cache, the BatchEstimator facade (deterministic
// ordering, per-job error isolation, cache hit accounting) and the
// parallel rank_candidates rewiring.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <latch>
#include <memory>
#include <thread>
#include <vector>

#include "explore/explore.h"
#include "model/test_program.h"
#include "service/batch_estimator.h"
#include "service/content_hash.h"
#include "service/eval_cache.h"
#include "service/job_queue.h"
#include "service/thread_pool.h"
#include "util/error.h"
#include "util/json.h"
#include "workloads/workloads.h"

namespace exten::service {
namespace {

// --- fixtures --------------------------------------------------------------

model::EnergyMacroModel flat_model() {
  linalg::Vector coefficients(model::kNumVariables, 0.0);
  for (std::size_t i = 0; i < model::kNumInstructionVars; ++i) {
    coefficients[i] = 100.0;
  }
  for (std::size_t i = model::kNumInstructionVars; i < model::kNumVariables;
       ++i) {
    coefficients[i] = 50.0;
  }
  return model::EnergyMacroModel(std::move(coefficients));
}

constexpr const char* kTinyAsm = R"(
  li   t1, buf
  lw   t0, 0(t1)
  add  t2, t0, t0
  sw   t2, 4(t1)
  halt
.data
buf: .word 7
)";

// Misaligned load: the simulator raises an alignment fault (exten::Error).
constexpr const char* kFaultingAsm = R"(
  li   t1, 1
  lw   t0, 0(t1)
  halt
)";

constexpr const char* kMacTie = R"(
state acc width=32
instruction cma {
  latency 2
  reads rs1, rs2
  use tie_mac width=32
  semantics { acc = acc + rs1 * rs2; }
}
)";

// Same instruction name/shape, different datapath width: must hash apart.
constexpr const char* kMacTie16 = R"(
state acc width=32
instruction cma {
  latency 2
  reads rs1, rs2
  use tie_mac width=16
  semantics { acc = acc + rs1 * rs2; }
}
)";

// --- BoundedQueue ----------------------------------------------------------

TEST(BoundedQueue, FifoOrderAndSize) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueue, TryPushRespectsCapacity) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));
  queue.pop();
  EXPECT_TRUE(queue.try_push(3));
}

TEST(BoundedQueue, CloseRefusesProducersAndDrainsConsumers) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));
  queue.close();
  EXPECT_FALSE(queue.push(3));      // refused after close
  EXPECT_FALSE(queue.try_push(3));
  EXPECT_EQ(queue.pop(), 1);        // queued items still drain...
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), std::nullopt);  // ...then end-of-stream
  EXPECT_TRUE(queue.closed());
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(2);
  std::atomic<bool> saw_end{false};
  std::thread consumer([&] {
    while (queue.pop().has_value()) {
    }
    saw_end = true;
  });
  // Give the consumer a chance to block on the empty queue, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  consumer.join();
  EXPECT_TRUE(saw_end);
}

TEST(BoundedQueue, FullQueueBlocksProducerUntilPop) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));
  std::atomic<bool> produced{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(2));  // blocks until the consumer pops
    produced = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(produced);
  EXPECT_EQ(queue.pop(), 1);
  producer.join();
  EXPECT_TRUE(produced);
  EXPECT_EQ(queue.pop(), 2);
}

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPool, RunsEveryJob) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4u);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(pool.submit([&counter] { ++counter; }));
    }
    pool.shutdown();  // graceful: drains all 100
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SubmitAfterShutdownFails) {
  ThreadPool pool(2);
  pool.shutdown();
  pool.shutdown();  // idempotent
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(ThreadPool, ThrowingJobDoesNotKillWorker) {
  std::atomic<int> counter{0};
  ThreadPool pool(1);
  EXPECT_TRUE(pool.submit([] { throw Error("boom"); }));
  EXPECT_TRUE(pool.submit([&counter] { ++counter; }));
  pool.shutdown();
  EXPECT_EQ(counter.load(), 1);  // the worker survived the throw
  EXPECT_EQ(pool.escaped_exceptions(), 1u);
}

// --- content hashing -------------------------------------------------------

TEST(ContentHash, DeterministicAndHexFormatted) {
  const model::TestProgram program = model::make_test_program("p", kTinyAsm);
  const Digest a = hash_program_image(program.image);
  const Digest b = hash_program_image(program.image);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hex().size(), 32u);
  EXPECT_NE(a, Digest{});
}

TEST(ContentHash, DistinctProgramsHashApart) {
  const model::TestProgram a = model::make_test_program("a", kTinyAsm);
  const model::TestProgram b = model::make_test_program("b", kFaultingAsm);
  EXPECT_NE(hash_program_image(a.image), hash_program_image(b.image));
}

TEST(ContentHash, IdenticalTieSpecsCollideDistinctSpecsDoNot) {
  const tie::TieConfiguration mac32a = tie::compile_tie_source(kMacTie);
  const tie::TieConfiguration mac32b = tie::compile_tie_source(kMacTie);
  const tie::TieConfiguration mac16 = tie::compile_tie_source(kMacTie16);
  const tie::TieConfiguration empty;
  // Same spec, compiled twice: content-equal, must share a cache slot.
  EXPECT_EQ(hash_tie_configuration(mac32a), hash_tie_configuration(mac32b));
  // A single width change anywhere must produce a different key.
  EXPECT_NE(hash_tie_configuration(mac32a), hash_tie_configuration(mac16));
  EXPECT_NE(hash_tie_configuration(mac32a), hash_tie_configuration(empty));
}

TEST(ContentHash, ProcessorConfigAndModelFeedTheKey) {
  sim::ProcessorConfig base;
  sim::ProcessorConfig small_icache;
  small_icache.icache.size_bytes = 4 * 1024;
  EXPECT_NE(hash_processor_config(base), hash_processor_config(small_icache));

  const Digest model_a = hash_macro_model(flat_model());
  linalg::Vector coefficients(model::kNumVariables, 1.0);
  const Digest model_b =
      hash_macro_model(model::EnergyMacroModel(std::move(coefficients)));
  EXPECT_NE(model_a, model_b);

  // Order matters in the combined key.
  EXPECT_NE(combine_digests({model_a, model_b}),
            combine_digests({model_b, model_a}));
}

// --- EvalCache -------------------------------------------------------------

model::EnergyEstimate dummy_estimate(double pj) {
  model::EnergyEstimate e;
  e.energy_pj = pj;
  return e;
}

Digest key_of(std::uint64_t n) {
  ContentHasher h;
  h.u64(n);
  return h.digest();
}

TEST(EvalCache, MissThenInsertThenHit) {
  EvalCache cache(8);
  EXPECT_EQ(cache.lookup(key_of(1)), std::nullopt);
  cache.insert(key_of(1), dummy_estimate(42.0));
  const auto hit = cache.lookup(key_of(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->energy_pj, 42.0);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(EvalCache, LruEvictionPrefersStaleEntries) {
  EvalCache cache(2);
  cache.insert(key_of(1), dummy_estimate(1.0));
  cache.insert(key_of(2), dummy_estimate(2.0));
  ASSERT_TRUE(cache.lookup(key_of(1)).has_value());  // 1 becomes MRU
  cache.insert(key_of(3), dummy_estimate(3.0));      // evicts 2, not 1
  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(2)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(3)).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(EvalCache, ZeroCapacityDisablesCaching) {
  EvalCache cache(0);
  cache.insert(key_of(1), dummy_estimate(1.0));
  EXPECT_FALSE(cache.lookup(key_of(1)).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(EvalCache, TracksApproximateBytes) {
  EvalCache cache(2);
  EXPECT_EQ(cache.stats().approx_bytes, 0u);
  cache.insert(key_of(1), dummy_estimate(1.0));
  const std::uint64_t one_entry = cache.stats().approx_bytes;
  EXPECT_GT(one_entry, 0u);
  cache.insert(key_of(2), dummy_estimate(2.0));
  const std::uint64_t two_entries = cache.stats().approx_bytes;
  EXPECT_EQ(two_entries, 2 * one_entry);  // identical-shape estimates
  // Refreshing an existing key replaces, not grows.
  cache.insert(key_of(2), dummy_estimate(2.5));
  EXPECT_EQ(cache.stats().approx_bytes, two_entries);
  // Eviction releases the evicted entry's bytes.
  cache.insert(key_of(3), dummy_estimate(3.0));
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().approx_bytes, two_entries);
  cache.clear();
  EXPECT_EQ(cache.stats().approx_bytes, 0u);
}

TEST(EvalCache, ConcurrentHitsAndEvictionsKeepCountersCoherent) {
  // 4 threads churning 32 keys through an 8-slot cache: constant hits,
  // misses and evictions racing. The invariants below must hold exactly
  // regardless of interleaving (and the test doubles as the TSan probe
  // for the lock discipline).
  EvalCache cache(8);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Digest key = key_of(static_cast<std::uint64_t>(
            (i * (t + 1) + t) % 32));
        if (!cache.lookup(key).has_value()) {
          cache.insert(key, dummy_estimate(static_cast<double>(i)));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kOpsPerThread);
  EXPECT_LE(stats.entries, 8u);
  EXPECT_EQ(stats.entries, stats.insertions - stats.evictions);
  EXPECT_GT(stats.approx_bytes, 0u);
  EXPECT_EQ(stats.approx_bytes,
            stats.entries * (sizeof(Digest) + sizeof(model::EnergyEstimate)));
}

TEST(EvalCache, ClearDropsEntriesKeepsCounters) {
  EvalCache cache(8);
  cache.insert(key_of(1), dummy_estimate(1.0));
  ASSERT_TRUE(cache.lookup(key_of(1)).has_value());
  cache.clear();
  EXPECT_FALSE(cache.lookup(key_of(1)).has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(EvalCache, AutoStripingKeepsSmallCachesExactGlobalLru) {
  // Below the threshold: one stripe, so the global-LRU tests above keep
  // pinning exact eviction order. At/above it: the full auto stripe count.
  EXPECT_EQ(EvalCache(2).num_stripes(), 1u);
  EXPECT_EQ(EvalCache(EvalCache::kAutoStripeThreshold - 1).num_stripes(), 1u);
  EXPECT_EQ(EvalCache(EvalCache::kAutoStripeThreshold).num_stripes(),
            EvalCache::kMaxAutoStripes);
  EXPECT_EQ(EvalCache(4096).num_stripes(), EvalCache::kMaxAutoStripes);
  // Explicit stripe counts are honored but clamped to the capacity so no
  // stripe ends up unable to hold anything.
  EXPECT_EQ(EvalCache(64, 8).num_stripes(), 8u);
  EXPECT_EQ(EvalCache(4, 16).num_stripes(), 4u);
  EXPECT_EQ(EvalCache(0).num_stripes(), 1u);
}

TEST(EvalCache, StripeCapacitiesPartitionTheTotal) {
  EvalCache cache(100, 8);  // 100 = 8*12 + 4: four stripes get 13
  ASSERT_EQ(cache.num_stripes(), 8u);
  std::size_t total = 0;
  for (std::size_t i = 0; i < cache.num_stripes(); ++i) {
    const CacheStats stripe = cache.stripe_stats(i);
    EXPECT_GE(stripe.capacity, 12u);
    EXPECT_LE(stripe.capacity, 13u);
    total += stripe.capacity;
  }
  EXPECT_EQ(total, 100u);
  EXPECT_EQ(cache.stats().capacity, 100u);
}

TEST(EvalCache, StripeOfIsStableAndInRange) {
  EvalCache cache(256, 8);
  for (std::uint64_t n = 0; n < 100; ++n) {
    const std::size_t stripe = cache.stripe_of(key_of(n));
    EXPECT_LT(stripe, cache.num_stripes());
    EXPECT_EQ(stripe, cache.stripe_of(key_of(n)));  // deterministic
  }
}

TEST(EvalCache, StripedStressInvariantsHoldPerStripeAndInTotal) {
  // The striped counterpart of ConcurrentHitsAndEvictionsKeepCountersCoherent:
  // 8 threads hammering 96 overlapping keys through a 48-slot, 8-stripe
  // cache — concurrent hits, inserts, refreshes and evictions on every
  // stripe. Capacity and byte accounting must hold exactly per stripe AND
  // summed, regardless of interleaving (this is the TSan probe for the
  // striped lock discipline).
  constexpr std::size_t kCapacity = 48;
  constexpr std::size_t kStripes = 8;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr std::uint64_t kKeySpace = 96;
  EvalCache cache(kCapacity, kStripes);
  ASSERT_EQ(cache.num_stripes(), kStripes);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Digest key = key_of(static_cast<std::uint64_t>(
            (i * (t + 3) + t) % kKeySpace));
        if (!cache.lookup(key).has_value()) {
          cache.insert(key, dummy_estimate(static_cast<double>(i)));
        } else if (i % 17 == 0) {
          // Deliberate refresh of a resident key: exercises the
          // replace-not-grow path under contention.
          cache.insert(key, dummy_estimate(static_cast<double>(i) + 0.5));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  constexpr std::uint64_t kEntryBytes =
      sizeof(Digest) + sizeof(model::EnergyEstimate);
  CacheStats summed;
  for (std::size_t i = 0; i < cache.num_stripes(); ++i) {
    const CacheStats stripe = cache.stripe_stats(i);
    EXPECT_LE(stripe.entries, stripe.capacity) << "stripe " << i;
    EXPECT_EQ(stripe.entries, stripe.insertions - stripe.evictions)
        << "stripe " << i;
    EXPECT_EQ(stripe.approx_bytes, stripe.entries * kEntryBytes)
        << "stripe " << i;
    summed.hits += stripe.hits;
    summed.misses += stripe.misses;
    summed.insertions += stripe.insertions;
    summed.evictions += stripe.evictions;
    summed.entries += stripe.entries;
    summed.approx_bytes += stripe.approx_bytes;
  }
  const CacheStats total = cache.stats();
  EXPECT_EQ(total.hits, summed.hits);
  EXPECT_EQ(total.misses, summed.misses);
  EXPECT_EQ(total.insertions, summed.insertions);
  EXPECT_EQ(total.evictions, summed.evictions);
  EXPECT_EQ(total.entries, summed.entries);
  EXPECT_EQ(total.approx_bytes, summed.approx_bytes);
  EXPECT_LE(total.entries, kCapacity);
  EXPECT_EQ(total.entries, total.insertions - total.evictions);
  EXPECT_EQ(total.approx_bytes, total.entries * kEntryBytes);
  // Every lookup was either a hit or a miss; refreshes don't count as
  // lookups but do count as insertions.
  EXPECT_GE(total.hits + total.misses,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST(EvalCache, StripedKeysLandInTheirOwnStripeOnly) {
  EvalCache cache(256, 8);
  for (std::uint64_t n = 0; n < 64; ++n) {
    cache.insert(key_of(n), dummy_estimate(static_cast<double>(n)));
  }
  std::vector<std::size_t> expected(cache.num_stripes(), 0);
  for (std::uint64_t n = 0; n < 64; ++n) {
    ++expected[cache.stripe_of(key_of(n))];
  }
  for (std::size_t i = 0; i < cache.num_stripes(); ++i) {
    EXPECT_EQ(cache.stripe_stats(i).entries, expected[i]) << "stripe " << i;
  }
}

// --- BatchEstimator --------------------------------------------------------

std::vector<BatchJob> tiny_batch(std::size_t copies) {
  std::vector<BatchJob> jobs;
  for (std::size_t i = 0; i < copies; ++i) {
    BatchJob job;
    job.name = "tiny" + std::to_string(i);
    job.program = model::make_test_program(job.name, kTinyAsm, kMacTie);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

TEST(BatchEstimator, ResultsArriveInJobOrder) {
  BatchOptions options;
  options.num_threads = 4;
  BatchEstimator estimator(flat_model(), options);
  const std::vector<BatchJob> jobs = tiny_batch(16);
  const BatchResult batch = estimator.estimate(jobs);
  ASSERT_EQ(batch.results.size(), 16u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(batch.results[i].name, jobs[i].name);
    EXPECT_TRUE(batch.results[i].ok);
  }
  EXPECT_TRUE(batch.all_ok());
  EXPECT_EQ(batch.metrics.jobs, 16u);
  EXPECT_EQ(batch.metrics.succeeded, 16u);
  EXPECT_EQ(batch.metrics.threads, 4u);
}

TEST(BatchEstimator, RepeatedBatchIsAllCacheHitsWithIdenticalResults) {
  BatchOptions options;
  options.num_threads = 4;
  BatchEstimator estimator(flat_model(), options);
  // Distinct names, identical content: the content hash ignores job names,
  // so within the first batch some jobs may already hit (scheduling-
  // dependent); across batches every job must hit.
  const std::vector<BatchJob> jobs = tiny_batch(1);
  const BatchResult first = estimator.estimate(jobs);
  const BatchResult second = estimator.estimate(jobs);
  ASSERT_TRUE(first.all_ok());
  ASSERT_TRUE(second.all_ok());
  EXPECT_EQ(first.metrics.cache_hits, 0u);
  EXPECT_EQ(second.metrics.cache_hits, 1u);
  EXPECT_EQ(second.metrics.cache_misses, 0u);
  EXPECT_DOUBLE_EQ(second.metrics.hit_rate(), 1.0);
  EXPECT_TRUE(second.results[0].cache_hit);
  // The cached estimate is the original one, bit for bit.
  EXPECT_EQ(second.results[0].estimate.energy_pj,
            first.results[0].estimate.energy_pj);
  EXPECT_EQ(second.results[0].estimate.stats.cycles,
            first.results[0].estimate.stats.cycles);
}

TEST(BatchEstimator, DistinctTieSpecsDoNotShareCacheSlots) {
  BatchEstimator estimator(flat_model());
  std::vector<BatchJob> jobs;
  BatchJob mac32;
  mac32.name = "mac32";
  mac32.program = model::make_test_program("mac32", kTinyAsm, kMacTie);
  BatchJob mac16;
  mac16.name = "mac16";
  mac16.program = model::make_test_program("mac16", kTinyAsm, kMacTie16);
  jobs.push_back(std::move(mac32));
  jobs.push_back(std::move(mac16));

  const BatchResult batch = estimator.estimate(jobs);
  ASSERT_TRUE(batch.all_ok());
  // Same assembly, different TIE spec: both must be computed, not served
  // from one another's slot.
  EXPECT_EQ(batch.metrics.cache_hits, 0u);
  EXPECT_EQ(batch.metrics.cache_misses, 2u);
  EXPECT_EQ(estimator.cache_stats().entries, 2u);
}

TEST(BatchEstimator, FaultingJobDoesNotPoisonTheBatch) {
  BatchOptions options;
  options.num_threads = 2;
  BatchEstimator estimator(flat_model(), options);
  std::vector<BatchJob> jobs = tiny_batch(1);
  BatchJob faulty;
  faulty.name = "misaligned";
  faulty.program = model::make_test_program("misaligned", kFaultingAsm);
  jobs.insert(jobs.begin() + 0, std::move(faulty));
  jobs.push_back(tiny_batch(1)[0]);

  const BatchResult batch = estimator.estimate(jobs);
  ASSERT_EQ(batch.results.size(), 3u);
  EXPECT_FALSE(batch.results[0].ok);
  EXPECT_FALSE(batch.results[0].error.empty());
  EXPECT_TRUE(batch.results[1].ok);
  EXPECT_TRUE(batch.results[2].ok);
  EXPECT_EQ(batch.metrics.failed, 1u);
  EXPECT_EQ(batch.metrics.succeeded, 2u);
  EXPECT_FALSE(batch.all_ok());
}

TEST(BatchEstimator, MissingTieConfigurationIsCapturedPerJob) {
  BatchEstimator estimator(flat_model());
  BatchJob job;
  job.name = "no-tie";
  job.program.name = "no-tie";  // tie left null
  const JobResult result = estimator.estimate_one(job);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no TIE configuration"), std::string::npos);
}

TEST(BatchEstimator, EmptyBatchIsANoOp) {
  BatchEstimator estimator(flat_model());
  const BatchResult batch = estimator.estimate({});
  EXPECT_TRUE(batch.results.empty());
  EXPECT_EQ(batch.metrics.jobs, 0u);
  EXPECT_TRUE(batch.all_ok());
}

// --- explore rewiring ------------------------------------------------------

TEST(ExploreService, ParallelAndSerialRankingsAreIdentical) {
  std::vector<explore::Candidate> candidates;
  for (model::TestProgram& variant : workloads::reed_solomon_variants(5)) {
    std::string name = variant.name;
    candidates.push_back({std::move(name), std::move(variant)});
  }
  const model::EnergyMacroModel macro_model = flat_model();

  BatchOptions serial;
  serial.num_threads = 1;
  BatchOptions parallel;
  parallel.num_threads = 4;
  BatchEstimator serial_estimator(macro_model, serial);
  BatchEstimator parallel_estimator(macro_model, parallel);

  const explore::ExploreResult a = explore::rank_candidates(
      candidates, serial_estimator, explore::Objective::kEdp);
  const explore::ExploreResult b = explore::rank_candidates(
      candidates, parallel_estimator, explore::Objective::kEdp);

  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].name, b.ranked[i].name);
    // Bit-identical, not approximately equal: the simulation is
    // deterministic and the ordering is scheduling-independent.
    EXPECT_EQ(a.ranked[i].energy_pj, b.ranked[i].energy_pj);
    EXPECT_EQ(a.ranked[i].cycles, b.ranked[i].cycles);
    EXPECT_EQ(a.ranked[i].edp, b.ranked[i].edp);
    EXPECT_EQ(a.ranked[i].pareto_optimal, b.ranked[i].pareto_optimal);
  }
}

TEST(ExploreService, ReRankingReusesTheCache) {
  std::vector<explore::Candidate> candidates;
  for (model::TestProgram& variant : workloads::reed_solomon_variants(5)) {
    std::string name = variant.name;
    candidates.push_back({std::move(name), std::move(variant)});
  }
  BatchEstimator estimator(flat_model());
  explore::rank_candidates(candidates, estimator, explore::Objective::kEdp);
  const CacheStats after_first = estimator.cache_stats();
  // Re-ranking by a different objective re-evaluates nothing.
  explore::rank_candidates(candidates, estimator, explore::Objective::kEnergy);
  const CacheStats after_second = estimator.cache_stats();
  EXPECT_EQ(after_second.hits, after_first.hits + candidates.size());
  EXPECT_EQ(after_second.insertions, after_first.insertions);
}

TEST(ExploreService, EqualObjectiveCandidatesRankInNameOrder) {
  // Identical programs under different names: every objective value ties,
  // so the ranking must fall back to name order — not manifest order,
  // which would make "the best candidate" depend on input shuffling.
  std::vector<explore::Candidate> candidates;
  for (const char* name : {"zeta", "alpha", "mid", "beta"}) {
    candidates.push_back({name, model::make_test_program(name, kTinyAsm)});
  }
  BatchEstimator estimator(flat_model());
  for (const explore::Objective objective :
       {explore::Objective::kEnergy, explore::Objective::kDelay,
        explore::Objective::kEdp}) {
    const explore::ExploreResult result =
        explore::rank_candidates(candidates, estimator, objective);
    ASSERT_EQ(result.ranked.size(), 4u);
    EXPECT_EQ(result.ranked[0].name, "alpha");
    EXPECT_EQ(result.ranked[1].name, "beta");
    EXPECT_EQ(result.ranked[2].name, "mid");
    EXPECT_EQ(result.ranked[3].name, "zeta");
  }
}

TEST(ExploreService, FaultingCandidateStillThrows) {
  std::vector<explore::Candidate> candidates;
  candidates.push_back(
      {"bad", model::make_test_program("bad", kFaultingAsm)});
  BatchEstimator estimator(flat_model());
  EXPECT_THROW(explore::rank_candidates(candidates, estimator), Error);
}

// --- try_submit + cancellation ----------------------------------------------

// ~20M instructions: keeps a single worker busy long enough for the tests
// below to observe jobs while they are still queued.
constexpr const char* kSlowLoopAsm = R"(
  li   t0, 10000000
loop:
  addi t0, t0, -1
  bnez t0, loop
  halt
)";

TEST(BatchEstimator, TrySubmitBackpressureAndQueueDepth) {
  BatchOptions options;
  options.num_threads = 1;
  options.queue_capacity = 1;
  BatchEstimator estimator(flat_model(), options);
  EXPECT_EQ(estimator.queue_capacity(), 1u);

  BatchJob blocker;
  blocker.name = "blocker";
  blocker.program = model::make_test_program("blocker", kSlowLoopAsm);
  std::latch blocker_done(1);
  ASSERT_TRUE(estimator.try_submit(std::move(blocker), [&](JobResult r) {
    EXPECT_TRUE(r.ok);
    blocker_done.count_down();
  }));
  // Wait for the worker to pick the blocker up, freeing the queue slot.
  while (estimator.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  BatchJob queued;
  queued.name = "queued";
  queued.program = model::make_test_program("queued", kTinyAsm);
  std::latch queued_done(1);
  ASSERT_TRUE(estimator.try_submit(queued, [&](JobResult) {
    queued_done.count_down();
  }));
  EXPECT_EQ(estimator.queue_depth(), 1u);

  // Queue full while the worker is busy: non-blocking rejection.
  BatchJob rejected;
  rejected.name = "rejected";
  rejected.program = model::make_test_program("rejected", kTinyAsm);
  EXPECT_FALSE(estimator.try_submit(std::move(rejected), [](JobResult) {
    FAIL() << "rejected job must never run";
  }));

  blocker_done.wait();
  queued_done.wait();
}

TEST(BatchEstimator, CancelTokenSkipsStillQueuedJob) {
  BatchOptions options;
  options.num_threads = 1;
  options.queue_capacity = 4;
  BatchEstimator estimator(flat_model(), options);

  BatchJob blocker;
  blocker.name = "blocker";
  blocker.program = model::make_test_program("blocker", kSlowLoopAsm);
  std::latch blocker_done(1);
  ASSERT_TRUE(estimator.try_submit(std::move(blocker),
                                   [&](JobResult) { blocker_done.count_down(); }));

  BatchJob doomed;
  doomed.name = "doomed";
  doomed.program = model::make_test_program("doomed", kTinyAsm);
  auto token = std::make_shared<CancelToken>();
  JobResult doomed_result;
  std::latch doomed_done(1);
  ASSERT_TRUE(estimator.try_submit(std::move(doomed),
                                   [&](JobResult r) {
                                     doomed_result = std::move(r);
                                     doomed_done.count_down();
                                   },
                                   token));
  // Cancel while it is still queued behind the blocker.
  token->cancel();
  blocker_done.wait();
  doomed_done.wait();
  EXPECT_FALSE(doomed_result.ok);
  EXPECT_TRUE(doomed_result.cancelled);
  EXPECT_NE(doomed_result.error.find("cancelled"), std::string::npos);
  EXPECT_FALSE(doomed_result.cache_hit);
}

TEST(BatchEstimator, PerJobInstructionBudgetIsHonoredAndKeyedSeparately) {
  BatchEstimator estimator(flat_model());
  BatchJob unbounded;
  unbounded.name = "unbounded";
  unbounded.program = model::make_test_program("tiny", kTinyAsm);
  BatchJob capped = unbounded;
  capped.max_instructions = 2;  // stops mid-program, no halt reached

  const JobResult full = estimator.estimate_one(unbounded);
  ASSERT_TRUE(full.ok) << full.error;
  EXPECT_FALSE(full.cache_hit);

  // A budget too small to reach HALT is a runaway-program error — and
  // crucially it must NOT be served from the unbounded run's cache entry,
  // which would silently mask the error. Same program, different budget,
  // different evaluation.
  const JobResult partial = estimator.estimate_one(capped);
  EXPECT_FALSE(partial.ok);
  EXPECT_FALSE(partial.cache_hit);
  EXPECT_NE(partial.error.find("budget"), std::string::npos) << partial.error;

  // A third distinct budget that is still generous enough succeeds and
  // computes the same energy — but under its own cache key (miss).
  BatchJob roomy = unbounded;
  roomy.max_instructions = 64;
  const JobResult again = estimator.estimate_one(roomy);
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_FALSE(again.cache_hit);
  EXPECT_DOUBLE_EQ(again.estimate.energy_pj, full.estimate.energy_pj);
  // Re-running with an identical budget does hit.
  const JobResult roomy_again = estimator.estimate_one(roomy);
  ASSERT_TRUE(roomy_again.ok);
  EXPECT_TRUE(roomy_again.cache_hit);
}

// --- util/json (service tooling dependency) --------------------------------

TEST(Json, ParsesRequestLine) {
  const JsonValue v = JsonValue::parse(
      R"({"name": "rs \"q\"", "asm": "rs.s", "tie": null, "n": 4.5,)"
      R"( "flags": [true, false]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.string_or("name", ""), "rs \"q\"");
  EXPECT_EQ(v.string_or("asm", ""), "rs.s");
  EXPECT_EQ(v.string_or("tie", "-"), "-");  // null falls back
  EXPECT_EQ(v.string_or("absent", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(v.find("n")->as_number(), 4.5);
  ASSERT_EQ(v.find("flags")->as_array().size(), 2u);
  EXPECT_TRUE(v.find("flags")->as_array()[0].as_bool());
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse("{"), Error);
  EXPECT_THROW(JsonValue::parse("{\"a\": }"), Error);
  EXPECT_THROW(JsonValue::parse("[1, 2,]"), Error);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), Error);
  EXPECT_THROW(JsonValue::parse("{} trailing"), Error);
  EXPECT_THROW(JsonValue::parse("nul"), Error);
}

TEST(Json, DecodesUnicodeEscapes) {
  // BMP escapes: 1-, 2- and 3-byte UTF-8.
  EXPECT_EQ(JsonValue::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(JsonValue::parse("\"\\u00e9\"").as_string(), "\xC3\xA9");
  EXPECT_EQ(JsonValue::parse("\"\\u20AC\"").as_string(),
            "\xE2\x82\xAC");  // euro sign
  // Surrogate pair: U+1F600 as \uD83D\uDE00 -> 4-byte UTF-8.
  EXPECT_EQ(JsonValue::parse("\"\\uD83D\\uDE00\"").as_string(),
            "\xF0\x9F\x98\x80");
  // Case-insensitive hex digits.
  EXPECT_EQ(JsonValue::parse("\"\\ud83d\\ude00\"").as_string(),
            "\xF0\x9F\x98\x80");
}

TEST(Json, RejectsLoneAndMismatchedSurrogates) {
  // High surrogate with no continuation.
  EXPECT_THROW(JsonValue::parse("\"\\uD83D\""), Error);
  // High surrogate followed by a non-escape.
  EXPECT_THROW(JsonValue::parse("\"\\uD83Dxx\""), Error);
  // High surrogate followed by a non-surrogate escape.
  EXPECT_THROW(JsonValue::parse("\"\\uD83D\\u0041\""), Error);
  // Lone low surrogate.
  EXPECT_THROW(JsonValue::parse("\"\\uDE00\""), Error);
  // Truncated hex.
  EXPECT_THROW(JsonValue::parse("\"\\u00\""), Error);
}

TEST(Json, RejectsTrailingGarbageAfterAnyDocument) {
  EXPECT_THROW(JsonValue::parse("{} {}"), Error);
  EXPECT_THROW(JsonValue::parse("[1] 2"), Error);
  EXPECT_THROW(JsonValue::parse("1 2"), Error);
  EXPECT_THROW(JsonValue::parse("true false"), Error);
  EXPECT_THROW(JsonValue::parse("\"a\" \"b\""), Error);
  // ...but trailing whitespace is fine.
  EXPECT_DOUBLE_EQ(JsonValue::parse(" 1 \n\t").as_number(), 1.0);
}

TEST(Json, WriterEmitsParseableOutput) {
  JsonWriter w;
  w.begin_object();
  w.field("jobs", std::uint64_t{8});
  w.field("hit_rate", 0.75);
  w.field("tool", std::string_view("xtc-batch \"v1\"\n"));
  w.array_field("threads");
  w.element(1.0);
  w.element(4.0);
  w.end_array();
  w.end_object();

  const JsonValue v = JsonValue::parse(w.str());
  EXPECT_DOUBLE_EQ(v.find("jobs")->as_number(), 8.0);
  EXPECT_DOUBLE_EQ(v.find("hit_rate")->as_number(), 0.75);
  EXPECT_EQ(v.find("tool")->as_string(), "xtc-batch \"v1\"\n");
  EXPECT_EQ(v.find("threads")->as_array().size(), 2u);
}

}  // namespace
}  // namespace exten::service
