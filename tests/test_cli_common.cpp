// Tests for the CLI helper layer shared by the xtc-* tools: flag parsing,
// file IO, and program loading (assembly vs image, with and without TIE).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "isa/image_io.h"
#include "tools/tool_common.h"
#include "util/error.h"

namespace exten::tools {
namespace {

/// Builds argv-style arguments from a list of strings.
class ArgvBuilder {
 public:
  explicit ArgvBuilder(std::vector<std::string> args)
      : storage_(std::move(args)) {
    pointers_.push_back(const_cast<char*>("tool"));
    for (std::string& arg : storage_) {
      pointers_.push_back(arg.data());
    }
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

TEST(Args, PositionalAndFlags) {
  ArgvBuilder argv({"input.s", "--out", "a.img", "--list"});
  const Args args(argv.argc(), argv.argv());
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.s");
  EXPECT_TRUE(args.has("out"));
  EXPECT_EQ(args.value("out").value(), "a.img");
  EXPECT_TRUE(args.has("list"));
  EXPECT_FALSE(args.value("list").has_value());  // bare flag has no value
  EXPECT_FALSE(args.has("missing"));
}

TEST(Args, FlagsConsumeOptionalValuesGreedily) {
  // Flags take the next token as their value unless it is another flag —
  // this is what lets --trace / --profile accept optional counts. The
  // consequence: positionals must precede bare flags.
  ArgvBuilder argv({"input.s", "--trace", "20"});
  const Args args(argv.argc(), argv.argv());
  EXPECT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.value("trace").value(), "20");
}

TEST(Args, FlagFollowedByFlagTakesNoValue) {
  ArgvBuilder argv({"--trace", "--profile", "7"});
  const Args args(argv.argc(), argv.argv());
  EXPECT_TRUE(args.has("trace"));
  EXPECT_FALSE(args.value("trace").has_value());
  EXPECT_EQ(args.value("profile").value(), "7");
}

class CliFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("exten_cli_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(CliFiles, ReadWriteRoundTrip) {
  const std::string file = path("data.txt");
  write_file(file, "hello\nworld\n");
  EXPECT_EQ(read_file(file), "hello\nworld\n");
}

TEST_F(CliFiles, ReadMissingFileThrows) {
  EXPECT_THROW(read_file(path("nope.txt")), Error);
}

TEST_F(CliFiles, LoadProgramFromAssembly) {
  const std::string source = path("prog.s");
  write_file(source, "_start:\n  nop\n  halt\n");
  ArgvBuilder argv({source});
  const Args args(argv.argc(), argv.argv());
  const LoadedProgram loaded = load_program(source, args);
  EXPECT_TRUE(loaded.tie->empty());
  EXPECT_TRUE(loaded.image.read_word(isa::kTextBase).has_value());
}

TEST_F(CliFiles, LoadProgramFromImageByExtension) {
  const isa::ProgramImage image = isa::assemble("li t0, 7\nhalt\n");
  const std::string img_path = path("prog.img");
  write_file(img_path, isa::image_to_string(image));
  ArgvBuilder argv({img_path});
  const Args args(argv.argc(), argv.argv());
  const LoadedProgram loaded = load_program(img_path, args);
  EXPECT_EQ(loaded.image.entry_point(), image.entry_point());
  EXPECT_EQ(loaded.image.total_bytes(), image.total_bytes());
}

TEST_F(CliFiles, LoadProgramWithTieSpec) {
  const std::string tie_path = path("ext.tie");
  write_file(tie_path, R"(
instruction dbl { reads rs1 writes rd use logic width=32
  semantics { rd = rs1 << 1; } }
)");
  const std::string source = path("prog.s");
  write_file(source, "  li t0, 21\n  dbl t1, t0\n  halt\n");
  ArgvBuilder argv({source, "--tie", tie_path});
  const Args args(argv.argc(), argv.argv());
  const LoadedProgram loaded = load_program(source, args);
  EXPECT_FALSE(loaded.tie->empty());
  EXPECT_NE(loaded.tie->find("dbl"), nullptr);
}

TEST_F(CliFiles, LoadProgramRejectsBadTie) {
  const std::string tie_path = path("bad.tie");
  write_file(tie_path, "instruction { broken");
  const std::string source = path("prog.s");
  write_file(source, "halt\n");
  ArgvBuilder argv({source, "--tie", tie_path});
  const Args args(argv.argc(), argv.argv());
  EXPECT_THROW(load_program(source, args), Error);
}

}  // namespace
}  // namespace exten::tools
