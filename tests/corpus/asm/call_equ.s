.equ K, 12
  addi r6, r0, K
  jal helper
  halt
helper:
  mv r7, r6
  ret
.data
buf: .space 16
tail: .byte 1, 2, 3
