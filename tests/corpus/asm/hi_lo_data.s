_start:
  lui r4, %hi(value)
  ori r4, r4, %lo(value)
  lw r5, 0(r4)
  sw r5, 4(r4)
  halt
.data
value: .word 0x12345678, 42
