  li r3, 10
loop:
  addi r3, r3, -1
  bnez r3, loop
  halt
