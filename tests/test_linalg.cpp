// Unit and property tests for the linalg module: matrix/vector algebra,
// Householder QR, least squares (OLS / ridge / nonnegative), and the
// paper's pseudo-inverse formulation (Eq. (5)).

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/least_squares.h"
#include "linalg/matrix.h"
#include "util/error.h"
#include "util/rng.h"

namespace exten::linalg {
namespace {

Matrix random_matrix(Rng& rng, std::size_t rows, std::size_t cols) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = rng.next_double() * 10.0 - 5.0;
    }
  }
  return m;
}

Vector random_vector(Rng& rng, std::size_t n) {
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = rng.next_double() * 10.0 - 5.0;
  return v;
}

// --- Vector ------------------------------------------------------------------

TEST(Vector, DotAndNorm) {
  Vector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  Vector b{1.0, 2.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 11.0);
}

TEST(Vector, DotSizeMismatchThrows) {
  Vector a{1.0};
  Vector b{1.0, 2.0};
  EXPECT_THROW(a.dot(b), Error);
}

TEST(Vector, Arithmetic) {
  Vector a{1.0, 2.0};
  Vector b{10.0, 20.0};
  const Vector sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 11.0);
  const Vector diff = b - a;
  EXPECT_DOUBLE_EQ(diff[1], 18.0);
  const Vector scaled = a * 3.0;
  EXPECT_DOUBLE_EQ(scaled[1], 6.0);
}

// --- Matrix ------------------------------------------------------------------

TEST(Matrix, InitializerListAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), Error);
}

TEST(Matrix, IdentityMultiplicationIsNoop) {
  Rng rng(3);
  const Matrix m = random_matrix(rng, 4, 4);
  const Matrix mi = m * Matrix::identity(4);
  EXPECT_LT(Matrix::max_abs_diff(m, mi), 1e-12);
}

TEST(Matrix, TransposeInvolution) {
  Rng rng(4);
  const Matrix m = random_matrix(rng, 3, 5);
  const Matrix mtt = m.transpose().transpose();
  EXPECT_LT(Matrix::max_abs_diff(m, mtt), 1e-15);
}

TEST(Matrix, MatVecAgreesWithMatMul) {
  Rng rng(5);
  const Matrix m = random_matrix(rng, 4, 3);
  const Vector v = random_vector(rng, 3);
  const Vector direct = m * v;
  // Via a 3x1 matrix.
  Matrix col(3, 1);
  for (std::size_t i = 0; i < 3; ++i) col(i, 0) = v[i];
  const Matrix product = m * col;
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(direct[i], product(i, 0), 1e-12);
  }
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a * b, Error);
  EXPECT_THROW(a * Vector(2), Error);
}

TEST(Matrix, RowColRoundTrip) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Vector r = m.row(1);
  EXPECT_DOUBLE_EQ(r[2], 6.0);
  const Vector c = m.col(2);
  EXPECT_DOUBLE_EQ(c[0], 3.0);
  m.set_row(0, Vector{7.0, 8.0, 9.0});
  EXPECT_DOUBLE_EQ(m(0, 1), 8.0);
}

// --- solve_linear -----------------------------------------------------------

TEST(SolveLinear, RecoversKnownSolution) {
  const Matrix m{{2.0, 1.0}, {1.0, 3.0}};
  const Vector b{5.0, 10.0};
  const Vector x = solve_linear(m, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, NeedsPivoting) {
  // Zero on the initial pivot position forces a row swap.
  const Matrix m{{0.0, 1.0}, {1.0, 0.0}};
  const Vector b{2.0, 3.0};
  const Vector x = solve_linear(m, b);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinear, SingularThrows) {
  const Matrix m{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(solve_linear(m, Vector{1.0, 2.0}), Error);
}

class SolveLinearRandom : public ::testing::TestWithParam<int> {};

TEST_P(SolveLinearRandom, ResidualIsTiny) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 3 + rng.next_below(8);
  Matrix m = random_matrix(rng, n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) += 8.0;  // well conditioned
  const Vector b = random_vector(rng, n);
  const Vector x = solve_linear(m, b);
  const Vector residual = b - m * x;
  EXPECT_LT(residual.norm(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolveLinearRandom, ::testing::Range(0, 12));

// --- QR ---------------------------------------------------------------------

TEST(Qr, ExactSolutionOnSquareSystem) {
  const Matrix a{{4.0, 1.0}, {2.0, 3.0}};
  QrDecomposition qr(a);
  EXPECT_TRUE(qr.full_rank());
  const Vector x = qr.solve(Vector{9.0, 13.0});
  EXPECT_NEAR(x[0], 1.4, 1e-12);
  EXPECT_NEAR(x[1], 3.4, 1e-12);
}

TEST(Qr, UnderdeterminedRejected) {
  EXPECT_THROW(QrDecomposition(Matrix(2, 3)), Error);
}

TEST(Qr, RankDeficientDetected) {
  Matrix a(4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    a(r, 0) = static_cast<double>(r + 1);
    a(r, 1) = 2.0 * static_cast<double>(r + 1);  // column 1 = 2 * column 0
  }
  QrDecomposition qr(a);
  EXPECT_FALSE(qr.full_rank());
  EXPECT_THROW(qr.solve(Vector(4)), Error);
}

class QrRecovery : public ::testing::TestWithParam<int> {};

TEST_P(QrRecovery, RecoversPlantedCoefficients) {
  // Property: for consistent overdetermined systems (b exactly = A c),
  // least squares must recover c.
  Rng rng(static_cast<std::uint64_t>(100 + GetParam()));
  const std::size_t rows = 12 + rng.next_below(20);
  const std::size_t cols = 2 + rng.next_below(6);
  const Matrix a = random_matrix(rng, rows, cols);
  const Vector truth = random_vector(rng, cols);
  const Vector b = a * truth;
  QrDecomposition qr(a);
  const Vector x = qr.solve(b);
  for (std::size_t i = 0; i < cols; ++i) {
    EXPECT_NEAR(x[i], truth[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QrRecovery, ::testing::Range(0, 16));

TEST(Qr, ConditionEstimateOrdersSystems) {
  const Matrix good{{1.0, 0.0}, {0.0, 1.0}};
  Matrix bad{{1.0, 0.0}, {0.0, 1e-6}};
  EXPECT_LT(QrDecomposition(good).condition_estimate(),
            QrDecomposition(bad).condition_estimate());
}

// --- solve_least_squares -------------------------------------------------------

TEST(LeastSquares, MinimizesResidualNotInterpolates) {
  // Fit y = c0 * x to three points that no line fits exactly.
  Matrix a(3, 1);
  a(0, 0) = 1.0;
  a(1, 0) = 2.0;
  a(2, 0) = 3.0;
  const Vector b{1.1, 1.9, 3.2};
  const LeastSquaresFit fit = solve_least_squares(a, b);
  // Closed form: c = sum(x y) / sum(x^2) = (1.1 + 3.8 + 9.6) / 14.
  EXPECT_NEAR(fit.coefficients[0], 14.5 / 14.0, 1e-12);
  EXPECT_GT(fit.r_squared, 0.9);
  EXPECT_EQ(fit.residuals.size(), 3u);
}

TEST(LeastSquares, PerfectFitHasUnitR2) {
  Rng rng(42);
  const Matrix a = random_matrix(rng, 10, 3);
  const Vector truth{1.0, -2.0, 0.5};
  const LeastSquaresFit fit = solve_least_squares(a, a * truth);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
  EXPECT_NEAR(fit.rmse, 0.0, 1e-9);
}

TEST(LeastSquares, ResidualOrthogonalToColumns) {
  // The defining property of an OLS solution: A^T r = 0.
  Rng rng(77);
  const Matrix a = random_matrix(rng, 15, 4);
  const Vector b = random_vector(rng, 15);
  const LeastSquaresFit fit = solve_least_squares(a, b);
  const Vector atr = a.transpose() * fit.residuals;
  EXPECT_LT(atr.norm(), 1e-8);
}

TEST(LeastSquares, RidgeShrinksCoefficients) {
  Rng rng(13);
  const Matrix a = random_matrix(rng, 20, 4);
  const Vector b = random_vector(rng, 20);
  const LeastSquaresFit ols = solve_least_squares(a, b);
  LeastSquaresOptions opts;
  opts.ridge_lambda = 100.0;
  const LeastSquaresFit ridge = solve_least_squares(a, b, opts);
  double ols_norm = 0, ridge_norm = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    ols_norm += ols.coefficients[i] * ols.coefficients[i];
    ridge_norm += ridge.coefficients[i] * ridge.coefficients[i];
  }
  EXPECT_LT(ridge_norm, ols_norm);
}

TEST(LeastSquares, RidgeHandlesRankDeficiency) {
  // Duplicate columns: OLS would be rank-deficient, ridge regularizes.
  Matrix a(6, 2);
  for (std::size_t r = 0; r < 6; ++r) {
    a(r, 0) = static_cast<double>(r);
    a(r, 1) = static_cast<double>(r);
  }
  Vector b(6);
  for (std::size_t r = 0; r < 6; ++r) b[r] = 2.0 * static_cast<double>(r);
  EXPECT_THROW(solve_least_squares(a, b), Error);
  LeastSquaresOptions opts;
  opts.ridge_lambda = 1e-6;
  const LeastSquaresFit fit = solve_least_squares(a, b, opts);
  // Symmetric split: each column gets ~1.0.
  EXPECT_NEAR(fit.coefficients[0], 1.0, 1e-3);
  EXPECT_NEAR(fit.coefficients[1], 1.0, 1e-3);
}

TEST(LeastSquares, NonnegativeClampsAndRefits) {
  // Planted model with a negative coefficient: the nonnegative fit must
  // pin it to zero and keep the others close.
  Rng rng(21);
  Matrix a = random_matrix(rng, 40, 3);
  for (std::size_t r = 0; r < 40; ++r) {
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = std::fabs(a(r, c));
  }
  const Vector truth{2.0, -1.5, 3.0};
  const Vector b = a * truth;
  LeastSquaresOptions opts;
  opts.nonnegative = true;
  const LeastSquaresFit fit = solve_least_squares(a, b, opts);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(fit.coefficients[i], 0.0);
  }
  EXPECT_EQ(fit.coefficients[1], 0.0);
}

TEST(LeastSquares, UnderdeterminedWithoutRidgeThrows) {
  EXPECT_THROW(solve_least_squares(Matrix(2, 5), Vector(2)), Error);
}

TEST(LeastSquares, RhsSizeMismatchThrows) {
  EXPECT_THROW(solve_least_squares(Matrix(4, 2), Vector(3)), Error);
}

// --- pseudo_inverse_solve (the paper's Eq. (5)) -----------------------------

class PseudoInverseAgreesWithQr : public ::testing::TestWithParam<int> {};

TEST_P(PseudoInverseAgreesWithQr, OnWellConditionedSystems) {
  Rng rng(static_cast<std::uint64_t>(500 + GetParam()));
  const std::size_t rows = 15 + rng.next_below(15);
  const std::size_t cols = 2 + rng.next_below(5);
  const Matrix a = random_matrix(rng, rows, cols);
  const Vector b = random_vector(rng, rows);
  const Vector via_normal = pseudo_inverse_solve(a, b);
  const Vector via_qr = solve_least_squares(a, b).coefficients;
  for (std::size_t i = 0; i < cols; ++i) {
    EXPECT_NEAR(via_normal[i], via_qr[i], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PseudoInverseAgreesWithQr,
                         ::testing::Range(0, 10));

TEST(PseudoInverse, UnderdeterminedThrows) {
  EXPECT_THROW(pseudo_inverse_solve(Matrix(2, 4), Vector(2)), Error);
}

}  // namespace
}  // namespace exten::linalg
