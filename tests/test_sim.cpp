// Tests for the simulator: sparse memory, set-associative caches, the
// functional semantics of every base instruction, and the cycle model
// (interlocks, branch penalties, cache-miss and uncached costs).

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "sim/cache.h"
#include "sim/cpu.h"
#include "sim/memory.h"
#include "sim/stats.h"
#include "util/error.h"

namespace exten::sim {
namespace {

const tie::TieConfiguration& empty_tie() {
  static const tie::TieConfiguration config;
  return config;
}

/// Assembles and runs a program on a default processor; returns the Cpu for
/// post-mortem inspection.
struct RanProgram {
  std::unique_ptr<Cpu> cpu;
  RunResult result;
  ExecutionStats stats;
};

RanProgram run_asm(const std::string& source,
                   const ProcessorConfig& config = {}) {
  RanProgram ran;
  ran.cpu = std::make_unique<Cpu>(config, empty_tie());
  ran.cpu->load_program(isa::assemble(source));
  StatsCollector collector;
  ran.cpu->add_observer(&collector);
  ran.result = ran.cpu->run(2'000'000);
  ran.stats = collector.stats();
  return ran;
}

// --- Memory ------------------------------------------------------------------

TEST(Memory, UntouchedReadsZero) {
  Memory m;
  EXPECT_EQ(m.read32(0x1234'0000), 0u);
  EXPECT_EQ(m.read8(0xffff'ffff), 0u);
  EXPECT_EQ(m.resident_pages(), 0u);
}

TEST(Memory, ByteHalfWordRoundTrip) {
  Memory m;
  m.write32(0x1000, 0xdeadbeef);
  EXPECT_EQ(m.read32(0x1000), 0xdeadbeefu);
  EXPECT_EQ(m.read8(0x1000), 0xefu);       // little endian
  EXPECT_EQ(m.read8(0x1003), 0xdeu);
  EXPECT_EQ(m.read16(0x1002), 0xdeadu);
  m.write8(0x1001, 0x00);
  EXPECT_EQ(m.read32(0x1000), 0xdead00efu);
  m.write16(0x2000, 0x1234);
  EXPECT_EQ(m.read16(0x2000), 0x1234u);
}

TEST(Memory, AlignmentFaults) {
  Memory m;
  EXPECT_THROW(m.read32(0x1001), Error);
  EXPECT_THROW(m.read16(0x1001), Error);
  EXPECT_THROW(m.write32(0x1002, 0), Error);
  EXPECT_THROW(m.write16(0x1003, 0), Error);
}

TEST(Memory, CrossPageBytes) {
  Memory m;
  // Bytes straddling a page boundary via byte writes.
  m.write8(Memory::kPageBytes - 1, 0xaa);
  m.write8(Memory::kPageBytes, 0xbb);
  EXPECT_EQ(m.read8(Memory::kPageBytes - 1), 0xaau);
  EXPECT_EQ(m.read8(Memory::kPageBytes), 0xbbu);
  EXPECT_EQ(m.resident_pages(), 2u);
}

TEST(Memory, LoadsProgramImage) {
  isa::ProgramImage image;
  image.add_segment(isa::Segment{0x3000, {1, 2, 3, 4}});
  Memory m;
  m.load(image);
  EXPECT_EQ(m.read32(0x3000), 0x04030201u);
}

// --- Cache ---------------------------------------------------------------------

TEST(Cache, GeometryValidation) {
  EXPECT_THROW(Cache(CacheConfig{1000, 32, 4}), Error);   // not divisible
  EXPECT_THROW(Cache(CacheConfig{16384, 3, 4}), Error);   // line not pow2
  EXPECT_NO_THROW(Cache(CacheConfig{16384, 32, 4}));
  EXPECT_EQ(CacheConfig{}.num_sets(), 128u);
}

TEST(Cache, HitAfterMiss) {
  Cache c(CacheConfig{1024, 32, 2});
  EXPECT_EQ(c.access(0x100), CacheOutcome::kMiss);
  EXPECT_EQ(c.access(0x100), CacheOutcome::kHit);
  EXPECT_EQ(c.access(0x104), CacheOutcome::kHit);  // same line
  EXPECT_EQ(c.access(0x120), CacheOutcome::kMiss); // next line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEviction) {
  // 2-way, 16 sets of 32B lines: addresses 0x0, 0x200, 0x400 map to set 0.
  Cache c(CacheConfig{1024, 32, 2});
  c.access(0x000);
  c.access(0x200);
  c.access(0x000);            // refresh way holding 0x000
  c.access(0x400);            // evicts LRU = 0x200
  EXPECT_EQ(c.access(0x000), CacheOutcome::kHit);
  EXPECT_EQ(c.access(0x200), CacheOutcome::kMiss);
}

TEST(Cache, ProbeDoesNotAllocate) {
  Cache c(CacheConfig{1024, 32, 2});
  EXPECT_EQ(c.probe(0x100), CacheOutcome::kMiss);
  EXPECT_EQ(c.probe(0x100), CacheOutcome::kMiss);  // still not resident
  c.access(0x100);
  EXPECT_EQ(c.probe(0x100), CacheOutcome::kHit);
}

TEST(Cache, FlushInvalidates) {
  Cache c(CacheConfig{1024, 32, 2});
  c.access(0x40);
  c.flush();
  EXPECT_EQ(c.access(0x40), CacheOutcome::kMiss);
}

class CacheSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(CacheSweep, SequentialFillThenFullHits) {
  // Property: a working set equal to the cache size, touched sequentially,
  // misses exactly size/line times and then hits on every revisit.
  const auto [size, ways] = GetParam();
  Cache c(CacheConfig{size, 32, ways});
  const std::uint32_t lines = size / 32;
  for (std::uint32_t i = 0; i < lines; ++i) c.access(i * 32);
  EXPECT_EQ(c.misses(), lines);
  for (std::uint32_t i = 0; i < lines; ++i) {
    EXPECT_EQ(c.access(i * 32), CacheOutcome::kHit);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    ::testing::Combine(::testing::Values(1024u, 4096u, 16384u),
                       ::testing::Values(1u, 2u, 4u, 8u)));

// --- Functional semantics ---------------------------------------------------------

struct AluCase {
  const char* op;
  std::uint32_t a;
  std::uint32_t b;
  std::uint32_t expected;
};

class AluSemantics : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluSemantics, RTypeResult) {
  const AluCase& c = GetParam();
  std::string source = "li t0, " + std::to_string(c.a) + "\nli t1, " +
                       std::to_string(c.b) + "\n" + c.op +
                       " t2, t0, t1\nhalt\n";
  auto ran = run_asm(source);
  EXPECT_EQ(ran.cpu->reg(22), c.expected) << c.op;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AluSemantics,
    ::testing::Values(
        AluCase{"add", 7, 5, 12}, AluCase{"add", 0xffffffffu, 1, 0},
        AluCase{"sub", 5, 7, 0xfffffffeu}, AluCase{"and", 0xff, 0x0f, 0x0f},
        AluCase{"or", 0xf0, 0x0f, 0xff}, AluCase{"xor", 0xff, 0xf0, 0x0f},
        AluCase{"nor", 0, 0, 0xffffffffu},
        AluCase{"andn", 0xff, 0x0f, 0xf0},
        AluCase{"sll", 1, 31, 0x80000000u}, AluCase{"sll", 1, 32, 1},
        AluCase{"srl", 0x80000000u, 31, 1},
        AluCase{"sra", 0x80000000u, 31, 0xffffffffu},
        AluCase{"slt", 0xffffffffu, 0, 1},  // signed: -1 < 0
        AluCase{"sltu", 0xffffffffu, 0, 0},
        AluCase{"mul", 100000, 100000, 0x540be400u},
        AluCase{"mulh", 0xffffffffu, 0xffffffffu, 0},  // (-1)*(-1) = 1
        AluCase{"min", 0xffffffffu, 1, 0xffffffffu},
        AluCase{"max", 0xffffffffu, 1, 1},
        AluCase{"minu", 0xffffffffu, 1, 1},
        AluCase{"maxu", 0xffffffffu, 1, 0xffffffffu}));

TEST(CpuSemantics, ImmediatesAndLui) {
  auto ran = run_asm(R"(
  addi t0, zero, -7
  lui  t1, 0x8000
  ori  t1, t1, 0x21
  slti t2, t0, 0
  sltiu t3, t0, 1
  xori t4, t0, 0xff
  halt
)");
  EXPECT_EQ(ran.cpu->reg(20), 0xfffffff9u);
  EXPECT_EQ(ran.cpu->reg(21), 0x8021u);
  EXPECT_EQ(ran.cpu->reg(22), 1u);
  EXPECT_EQ(ran.cpu->reg(23), 0u);  // 0xfffffff9 not < 1 unsigned
  EXPECT_EQ(ran.cpu->reg(24), 0xffffff06u);
}

TEST(CpuSemantics, ZeroRegisterIsImmutable) {
  auto ran = run_asm("addi r0, r0, 5\nadd t0, r0, r0\nhalt\n");
  EXPECT_EQ(ran.cpu->reg(0), 0u);
  EXPECT_EQ(ran.cpu->reg(20), 0u);
}

TEST(CpuSemantics, LoadStoreWidthsAndSignExtension) {
  auto ran = run_asm(R"(
  li   t0, buf
  li   t1, 0x800081ff
  sw   t1, 0(t0)
  lb   t2, 0(t0)        # 0xff sign-extended
  lbu  t3, 0(t0)
  lh   t4, 0(t0)        # 0x81ff sign-extended
  lhu  t5, 0(t0)
  lw   t6, 0(t0)
  sh   t1, 4(t0)
  lhu  t7, 4(t0)
  sb   t1, 6(t0)
  lbu  t8, 6(t0)
  halt
.data
buf: .space 16
)");
  EXPECT_EQ(ran.cpu->reg(22), 0xffffffffu);
  EXPECT_EQ(ran.cpu->reg(23), 0xffu);
  EXPECT_EQ(ran.cpu->reg(24), 0xffff81ffu);
  EXPECT_EQ(ran.cpu->reg(25), 0x81ffu);
  EXPECT_EQ(ran.cpu->reg(26), 0x800081ffu);
  EXPECT_EQ(ran.cpu->reg(27), 0x81ffu);
  EXPECT_EQ(ran.cpu->reg(28), 0xffu);
}

TEST(CpuSemantics, BranchDirections) {
  auto ran = run_asm(R"(
  li   t0, 5
  li   t1, -3
  li   t9, 0
  blt  t1, t0, sgn_ok     # signed: -3 < 5
  halt
sgn_ok:
  addi t9, t9, 1
  bltu t0, t1, uns_ok     # unsigned: 5 < 0xfffffffd
  halt
uns_ok:
  addi t9, t9, 1
  beq  t0, t0, eq_ok
  halt
eq_ok:
  addi t9, t9, 1
  bne  t0, t0, bad
  bge  t0, t1, ge_ok
  halt
ge_ok:
  addi t9, t9, 1
  beqz zero, z_ok
  halt
z_ok:
  addi t9, t9, 1
  bnez t0, nz_ok
  halt
nz_ok:
  addi t9, t9, 1
bad:
  halt
)");
  EXPECT_EQ(ran.cpu->reg(29), 6u);
}

TEST(CpuSemantics, CallChainLinksAndReturns) {
  auto ran = run_asm(R"(
  li   t0, 0
  call f1
  addi t0, t0, 100
  halt
f1:
  addi t0, t0, 1
  mv   s0, ra
  call f2
  mv   ra, s0
  ret
f2:
  addi t0, t0, 10
  jr   ra
)");
  EXPECT_EQ(ran.cpu->reg(20), 111u);
  EXPECT_TRUE(ran.result.halted);
}

TEST(CpuSemantics, JalrIndirectCall) {
  auto ran = run_asm(R"(
  li   t1, target
  jalr t1
  halt
target:
  addi t0, t0, 9
  ret
)");
  EXPECT_EQ(ran.cpu->reg(20), 9u);
}

TEST(Cpu, IllegalInstructionFaults) {
  Cpu cpu({}, empty_tie());
  isa::ProgramImage image;
  image.add_segment(isa::Segment{isa::kTextBase, {0xff, 0xff, 0xff, 0xff}});
  image.set_entry_point(isa::kTextBase);
  cpu.load_program(image);
  EXPECT_THROW(cpu.run(), Error);
}

TEST(Cpu, RunawayBudgetFaults) {
  Cpu cpu({}, empty_tie());
  cpu.load_program(isa::assemble("loop: j loop\n"));
  EXPECT_THROW(cpu.run(100), Error);
}

TEST(Cpu, StackPointerInitialized) {
  Cpu cpu({}, empty_tie());
  cpu.load_program(isa::assemble("halt\n"));
  EXPECT_EQ(cpu.reg(isa::kStackRegister), isa::kStackTop);
}

// --- Cycle model ----------------------------------------------------------------

TEST(CycleModel, StraightLineCpiIsOne) {
  // After the initial I-cache miss, sequential arithmetic runs at CPI 1.
  auto ran = run_asm(R"(
  add t0, t1, t2
  add t0, t1, t2
  add t0, t1, t2
  add t0, t1, t2
  add t0, t1, t2
  add t0, t1, t2
  halt
)");
  const ProcessorConfig config;
  // 7 instructions + one icache miss penalty (all fit one line).
  EXPECT_EQ(ran.result.cycles, 7 + config.icache_miss_penalty);
  EXPECT_EQ(ran.stats.icache_misses, 1u);
}

TEST(CycleModel, LoadUseInterlockCostsOneCycle) {
  ProcessorConfig config;
  auto dependent = run_asm(R"(
  li  t1, buf
  lw  t0, 0(t1)
  add t2, t0, t0     # immediate use: interlock
  halt
.data
buf: .word 1
)",
                           config);
  auto spaced = run_asm(R"(
  li  t1, buf
  lw  t0, 0(t1)
  nop
  add t2, t0, t0     # one instruction of slack: no interlock
  halt
.data
buf: .word 1
)",
                        config);
  EXPECT_EQ(dependent.stats.interlock_events, 1u);
  EXPECT_EQ(spaced.stats.interlock_events, 0u);
  // The nop costs 1 cycle but removes the 1-cycle interlock: equal cycles.
  EXPECT_EQ(dependent.result.cycles, spaced.result.cycles);
}

TEST(CycleModel, StoreValueInterlocks) {
  auto ran = run_asm(R"(
  li  t1, buf
  lw  t0, 0(t1)
  sw  t0, 4(t1)      # store value depends on the load
  halt
.data
buf: .word 42
)");
  EXPECT_EQ(ran.stats.interlock_events, 1u);
  const std::uint32_t buf = isa::kDataBase;
  EXPECT_EQ(ran.cpu->memory().read32(buf + 4), 42u);
}

TEST(CycleModel, TakenBranchPenalty) {
  ProcessorConfig config;
  auto taken = run_asm(R"(
  li   t0, 1
  bnez t0, over
  nop
over:
  halt
)",
                       config);
  auto untaken = run_asm(R"(
  li   t0, 0
  bnez t0, over
  nop
over:
  halt
)",
                         config);
  // Taken: 4 retired (skips nop) + penalty. Untaken: 5 retired, no penalty.
  EXPECT_EQ(taken.stats.branches_taken, 1u);
  EXPECT_EQ(untaken.stats.branches_untaken, 1u);
  EXPECT_EQ(taken.result.instructions, 4u);
  EXPECT_EQ(untaken.result.instructions, 5u);
  EXPECT_EQ(taken.result.cycles,
            untaken.result.cycles - 1 + config.taken_branch_penalty);
}

TEST(CycleModel, DcacheMissPenaltyOnLoads) {
  ProcessorConfig config;
  auto ran = run_asm(R"(
  li  t1, buf
  lw  t0, 0(t1)      # miss
  lw  t2, 4(t1)      # same line: hit
  lw  t3, 32(t1)     # next line: miss
  halt
.data
.align 32
buf: .space 64
)",
                     config);
  EXPECT_EQ(ran.stats.dcache_misses, 2u);
}

TEST(CycleModel, StoresDoNotAllocate) {
  auto ran = run_asm(R"(
  li  t1, buf
  sw  t0, 0(t1)      # write-around: no allocation
  lw  t2, 0(t1)      # still a miss
  lw  t3, 0(t1)      # now resident
  halt
.data
.align 32
buf: .space 32
)");
  EXPECT_EQ(ran.stats.dcache_misses, 1u);
}

TEST(CycleModel, UncachedFetchCounted) {
  ProcessorConfig config;
  auto ran = run_asm(R"(
  li   t0, ucode
  jr   t0
.org 0x80004000
ucode:
  nop
  nop
  halt
)",
                     config);
  EXPECT_EQ(ran.stats.uncached_fetches, 3u);
  EXPECT_EQ(ran.stats.icache_misses, 1u);  // the cached prologue line
}

TEST(CycleModel, IcacheMissPerLine) {
  // 16 sequential instructions = 2 lines of 32 bytes.
  std::string source;
  for (int i = 0; i < 15; ++i) source += "nop\n";
  source += "halt\n";
  auto ran = run_asm(source);
  EXPECT_EQ(ran.stats.icache_misses, 2u);
}

TEST(CycleModel, CustomLatencyOccupiesEx) {
  const tie::TieConfiguration config = tie::compile_tie_source(R"(
instruction slow3 {
  latency 3
  reads rs1, rs2
  writes rd
  use adder width=32
  semantics { rd = rs1 + rs2; }
}
)");
  isa::AssemblerOptions aopts;
  aopts.custom_mnemonics = config.assembler_mnemonics();
  Cpu cpu({}, config);
  cpu.load_program(isa::assemble(R"(
  slow3 t2, t0, t1
  slow3 t3, t2, t1
  halt
)",
                                 aopts));
  StatsCollector stats;
  cpu.add_observer(&stats);
  const RunResult result = cpu.run();
  // 2 customs x 3 cycles + halt + icache miss.
  EXPECT_EQ(result.cycles, 6u + 1u + ProcessorConfig{}.icache_miss_penalty);
  EXPECT_EQ(stats.stats().custom_counts.at("slow3"), 2u);
}

TEST(StatsCollector, ClassAndCpiAccounting) {
  auto ran = run_asm(R"(
  li   t1, buf
  lw   t0, 0(t1)
  sw   t0, 4(t1)
  add  t2, t1, t1
  j    next
next:
  beqz zero, over
over:
  halt
.data
buf: .word 5
)");
  using isa::InstrClass;
  EXPECT_EQ(ran.stats.class_counts[static_cast<int>(InstrClass::Load)], 1u);
  EXPECT_EQ(ran.stats.class_counts[static_cast<int>(InstrClass::Store)], 1u);
  EXPECT_EQ(ran.stats.class_counts[static_cast<int>(InstrClass::Jump)], 1u);
  EXPECT_EQ(ran.stats.class_counts[static_cast<int>(InstrClass::Branch)], 1u);
  // li expands to 2 arithmetic instructions; plus add.
  EXPECT_EQ(ran.stats.class_counts[static_cast<int>(InstrClass::Arithmetic)],
            3u);
  EXPECT_GT(ran.stats.cpi(), 1.0);
  EXPECT_GT(ran.stats.seconds_at(187.0), 0.0);
}

TEST(Cpu, ObserverSeesEveryRetirement) {
  class Counter : public RetireObserver {
   public:
    int begins = 0, retires = 0, ends = 0;
    std::uint64_t final_cycles = 0;
    void on_run_begin() override { ++begins; }
    void on_retire(const RetiredInstruction&) override { ++retires; }
    void on_run_end(std::uint64_t, std::uint64_t cycles) override {
      ++ends;
      final_cycles = cycles;
    }
  };
  Counter counter;
  Cpu cpu({}, empty_tie());
  cpu.load_program(isa::assemble("nop\nnop\nhalt\n"));
  cpu.add_observer(&counter);
  const RunResult result = cpu.run();
  EXPECT_EQ(counter.begins, 1);
  EXPECT_EQ(counter.retires, 3);
  EXPECT_EQ(counter.ends, 1);
  EXPECT_EQ(counter.final_cycles, result.cycles);
}

}  // namespace
}  // namespace exten::sim
