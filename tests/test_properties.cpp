// Property-based and differential tests across the stack:
//  - the simulator's ALU against an independent golden interpreter on
//    randomly generated straight-line programs;
//  - the cache model against a naive reference implementation on random
//    address streams;
//  - robustness fuzzing of the TIE-lite front end and the assembler
//    (mutated inputs must fail with exten::Error, never crash);
//  - physical invariants of the energy model (monotonicity, additivity).

#include <gtest/gtest.h>

#include <list>
#include <sstream>

#include "isa/assembler.h"
#include "power/estimator.h"
#include "sim/cache.h"
#include "sim/cpu.h"
#include "sim/stats.h"
#include "tie/compiler.h"
#include "util/error.h"
#include "util/rng.h"
#include "workloads/tie_library.h"

namespace exten {
namespace {

const tie::TieConfiguration& empty_tie() {
  static const tie::TieConfiguration config;
  return config;
}

// ---------------------------------------------------------------------------
// Differential test: random straight-line ALU programs vs a golden
// interpreter written independently of the simulator.
// ---------------------------------------------------------------------------

struct GoldenOp {
  std::string text;  // assembly line
  int kind;          // index into the op table
  unsigned rd, rs1, rs2;
  std::int32_t imm;
};

class AluFuzz : public ::testing::TestWithParam<int> {};

TEST_P(AluFuzz, MatchesGoldenInterpreter) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);

  // Golden register file (the simulator's semantics re-derived from the
  // ISA definition, not from the simulator code).
  std::uint32_t regs[64] = {};
  regs[isa::kStackRegister] = isa::kStackTop;  // set by load_program
  std::ostringstream program;
  auto set_reg = [&](unsigned r, std::uint32_t v) {
    if (r != 0) regs[r] = v;
  };

  // Seed registers through li.
  for (unsigned r = 20; r < 28; ++r) {
    const std::uint32_t value = rng.next_u32();
    program << "li r" << r << ", " << value << "\n";
    set_reg(r, value);
  }

  struct OpSpec {
    const char* mnemonic;
    std::uint32_t (*eval)(std::uint32_t, std::uint32_t);
  };
  static const OpSpec kOps[] = {
      {"add", [](std::uint32_t a, std::uint32_t b) { return a + b; }},
      {"sub", [](std::uint32_t a, std::uint32_t b) { return a - b; }},
      {"and", [](std::uint32_t a, std::uint32_t b) { return a & b; }},
      {"or", [](std::uint32_t a, std::uint32_t b) { return a | b; }},
      {"xor", [](std::uint32_t a, std::uint32_t b) { return a ^ b; }},
      {"nor", [](std::uint32_t a, std::uint32_t b) { return ~(a | b); }},
      {"andn", [](std::uint32_t a, std::uint32_t b) { return a & ~b; }},
      {"sll", [](std::uint32_t a, std::uint32_t b) { return a << (b & 31); }},
      {"srl", [](std::uint32_t a, std::uint32_t b) { return a >> (b & 31); }},
      {"sra",
       [](std::uint32_t a, std::uint32_t b) {
         return static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >>
                                           (b & 31));
       }},
      {"slt",
       [](std::uint32_t a, std::uint32_t b) -> std::uint32_t {
         return static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b)
                    ? 1u
                    : 0u;
       }},
      {"sltu",
       [](std::uint32_t a, std::uint32_t b) -> std::uint32_t {
         return a < b ? 1u : 0u;
       }},
      {"mul", [](std::uint32_t a, std::uint32_t b) { return a * b; }},
      {"mulh",
       [](std::uint32_t a, std::uint32_t b) {
         const std::int64_t p =
             static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
             static_cast<std::int64_t>(static_cast<std::int32_t>(b));
         return static_cast<std::uint32_t>(p >> 32);
       }},
      {"minu",
       [](std::uint32_t a, std::uint32_t b) { return a < b ? a : b; }},
      {"maxu",
       [](std::uint32_t a, std::uint32_t b) { return a > b ? a : b; }},
  };

  // 200 random ops over r16..r31 (keeping the seeded range inside).
  for (int i = 0; i < 200; ++i) {
    const OpSpec& op = kOps[rng.next_below(std::size(kOps))];
    const unsigned rd = 16 + rng.next_below(16);
    const unsigned rs1 = 16 + rng.next_below(16);
    const unsigned rs2 = 16 + rng.next_below(16);
    program << op.mnemonic << " r" << rd << ", r" << rs1 << ", r" << rs2
            << "\n";
    set_reg(rd, op.eval(regs[rs1], regs[rs2]));
  }
  program << "halt\n";

  sim::Cpu cpu({}, empty_tie());
  cpu.load_program(isa::assemble(program.str()));
  cpu.run();

  for (unsigned r = 0; r < 64; ++r) {
    EXPECT_EQ(cpu.reg(r), regs[r]) << "r" << r << " diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AluFuzz, ::testing::Range(0, 20));

// ---------------------------------------------------------------------------
// Differential test: Cache vs a naive list-based LRU reference.
// ---------------------------------------------------------------------------

class ReferenceCache {
 public:
  ReferenceCache(std::uint32_t size, std::uint32_t line, std::uint32_t ways)
      : line_(line), sets_(size / (line * ways)), ways_(ways),
        lru_(sets_) {}

  bool access(std::uint32_t addr, bool allocate) {
    const std::uint32_t line_addr = addr / line_;
    const std::uint32_t set = line_addr % sets_;
    const std::uint32_t tag = line_addr / sets_;
    auto& list = lru_[set];  // front = most recently used
    for (auto it = list.begin(); it != list.end(); ++it) {
      if (*it == tag) {
        list.erase(it);
        list.push_front(tag);
        return true;
      }
    }
    if (allocate) {
      list.push_front(tag);
      if (list.size() > ways_) list.pop_back();
    }
    return false;
  }

 private:
  std::uint32_t line_;
  std::uint32_t sets_;
  std::uint32_t ways_;
  std::vector<std::list<std::uint32_t>> lru_;
};

class CacheDifferential
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(CacheDifferential, AgreesWithReferenceLru) {
  const auto [seed, ways] = GetParam();
  const std::uint32_t size = 2048, line = 32;
  sim::Cache cache(sim::CacheConfig{size, line, ways});
  ReferenceCache reference(size, line, ways);
  Rng rng(static_cast<std::uint64_t>(seed) * 31 + 11);

  for (int i = 0; i < 5000; ++i) {
    // Cluster addresses so sets collide frequently.
    const std::uint32_t addr =
        static_cast<std::uint32_t>(rng.next_below(16 * size)) & ~3u;
    const bool allocate = rng.next_bool(0.8);
    const bool hit = allocate
                         ? cache.access(addr) == sim::CacheOutcome::kHit
                         : cache.probe(addr) == sim::CacheOutcome::kHit;
    const bool ref_hit = reference.access(addr, allocate);
    ASSERT_EQ(hit, ref_hit) << "divergence at access " << i << " addr 0x"
                            << std::hex << addr;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, CacheDifferential,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(1u, 2u, 4u)));

// ---------------------------------------------------------------------------
// Robustness fuzz: mutated inputs fail cleanly.
// ---------------------------------------------------------------------------

TEST(FuzzRobustness, MutatedTieSpecsNeverCrash) {
  const std::string base = workloads::tie_mac_spec();
  Rng rng(99);
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = base;
    const int edits = 1 + static_cast<int>(rng.next_below(3));
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = rng.next_below(mutated.size());
      switch (rng.next_below(3)) {
        case 0:
          mutated[pos] = static_cast<char>(32 + rng.next_below(95));
          break;
        case 1:
          mutated.erase(pos, 1 + rng.next_below(4));
          break;
        default:
          mutated.insert(pos, 1, static_cast<char>(32 + rng.next_below(95)));
          break;
      }
    }
    try {
      const tie::TieConfiguration config = tie::compile_tie_source(mutated);
      ++parsed;  // mutation happened to stay valid
    } catch (const Error&) {
      ++rejected;
    }
    // Any other exception type (or a crash) fails the test by escaping.
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(parsed + rejected, 400);
}

TEST(FuzzRobustness, MutatedAssemblyNeverCrashes) {
  const std::string base = R"(
_start:
  li   s0, 100
loop:
  lw   t0, 0(s0)
  add  t1, t1, t0
  addi s0, s0, -4
  bnez s0, loop
  halt
.data
buf: .word 1, 2, 3
)";
  Rng rng(101);
  int rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = base;
    const std::size_t pos = rng.next_below(mutated.size());
    mutated[pos] = static_cast<char>(32 + rng.next_below(95));
    try {
      (void)isa::assemble(mutated);
    } catch (const Error&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
}

// ---------------------------------------------------------------------------
// Energy-model invariants.
// ---------------------------------------------------------------------------

double loop_energy(unsigned iterations) {
  std::ostringstream source;
  source << "  li s0, " << iterations << "\nloop:\n"
         << "  add t0, t0, s0\n  xor t1, t1, t0\n"
         << "  addi s0, s0, -1\n  bnez s0, loop\n  halt\n";
  sim::Cpu cpu({}, empty_tie());
  cpu.load_program(isa::assemble(source.str()));
  power::RtlPowerEstimator rtl(empty_tie());
  cpu.add_observer(&rtl);
  cpu.run();
  return rtl.energy_pj();
}

TEST(EnergyInvariants, MonotoneInWork) {
  double previous = 0.0;
  for (unsigned iterations : {50u, 100u, 200u, 400u, 800u}) {
    const double energy = loop_energy(iterations);
    EXPECT_GT(energy, previous) << iterations;
    previous = energy;
  }
}

TEST(EnergyInvariants, ApproximatelyLinearInIterations) {
  // Doubling the loop count roughly doubles the energy (startup and the
  // first-iteration cache misses amortize away).
  const double e1 = loop_energy(2000);
  const double e2 = loop_energy(4000);
  EXPECT_NEAR(e2 / e1, 2.0, 0.06);
}

TEST(EnergyInvariants, ExtensionPresenceAddsLeakageOnly) {
  // Running a base-only, arithmetic-free program (loads + branches
  // barely touch the operand bus side effects) on a processor carrying an
  // isolated extension costs leakage, bounded by complexity x cycles.
  const char* source = R"(
  li   s0, 300
loop:
  addi s0, s0, -1
  bnez s0, loop
  halt
)";
  const tie::TieConfiguration gated = tie::compile_tie_source(R"(
instruction big {
  isolated
  reads rs1
  writes rd
  use mult width=64 count=2
  semantics { rd = rs1 * 3; }
}
)");
  auto run_with = [&](const tie::TieConfiguration& config) {
    sim::Cpu cpu({}, config);
    cpu.load_program(isa::assemble(source));
    power::RtlPowerEstimator rtl(config);
    cpu.add_observer(&rtl);
    const sim::RunResult result = cpu.run();
    return std::pair<double, std::uint64_t>(rtl.energy_pj(), result.cycles);
  };
  const auto [base_pj, base_cycles] = run_with(empty_tie());
  const auto [ext_pj, ext_cycles] = run_with(gated);
  EXPECT_EQ(base_cycles, ext_cycles);
  const power::TechnologyParams params;
  const double weight = 2.0 * 4.0;  // count=2 x C(64) = (64/32)^2
  const double expected_leakage =
      params.leakage_per_complexity_cycle * weight *
      static_cast<double>(ext_cycles);
  EXPECT_NEAR(ext_pj - base_pj, expected_leakage, expected_leakage * 1e-6);
}

TEST(EnergyInvariants, IdleCyclesStillBurnClockEnergy) {
  // A program stalled on cache misses burns clock/leakage on every stall
  // cycle: energy per cycle is lower, but energy per instruction higher.
  const char* hits = R"(
  li   s0, 200
  li   s1, buf
loop:
  lw   t0, 0(s1)
  addi s0, s0, -1
  bnez s0, loop
  halt
.data
buf: .word 7
)";
  const char* misses = R"(
  li   s0, 200
  li   s1, buf
loop:
  lw   t0, 0(s1)
  addi s1, s1, 4096      # new set every time; wraps around a huge region
  andi s2, s0, 15
  bnez s2, nofix
  li   s1, buf
nofix:
  addi s0, s0, -1
  bnez s0, loop
  halt
.data
buf: .space 4
)";
  auto measure = [&](const char* src) {
    sim::Cpu cpu({}, empty_tie());
    cpu.load_program(isa::assemble(src));
    power::RtlPowerEstimator rtl(empty_tie());
    sim::StatsCollector stats;
    cpu.add_observer(&rtl);
    cpu.add_observer(&stats);
    cpu.run();
    return std::pair<double, sim::ExecutionStats>(rtl.energy_pj(),
                                                  stats.stats());
  };
  const auto [hit_pj, hit_stats] = measure(hits);
  const auto [miss_pj, miss_stats] = measure(misses);
  EXPECT_GT(miss_stats.dcache_misses, 100u);
  const double hit_epi = hit_pj / static_cast<double>(hit_stats.instructions);
  const double miss_epi =
      miss_pj / static_cast<double>(miss_stats.instructions);
  EXPECT_GT(miss_epi, hit_epi * 1.5);
  const double hit_epc = hit_pj / static_cast<double>(hit_stats.cycles);
  const double miss_epc = miss_pj / static_cast<double>(miss_stats.cycles);
  EXPECT_LT(miss_epc, hit_epc);
}

}  // namespace
}  // namespace exten
