// Tests for the TIE-lite subsystem: component library, custom state,
// semantics expression evaluation, the parser, and the compiler's
// validation and integration.

#include <gtest/gtest.h>

#include "tie/compiler.h"
#include "tie/components.h"
#include "tie/expr.h"
#include "tie/spec.h"
#include "tie/state.h"
#include "util/error.h"
#include "workloads/tie_library.h"

namespace exten::tie {
namespace {

// --- components -------------------------------------------------------------

TEST(Components, NamesRoundTrip) {
  for (std::size_t i = 0; i < kComponentClassCount; ++i) {
    const auto cls = static_cast<ComponentClass>(i);
    const auto found = find_component_class(component_class_name(cls));
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, cls);
  }
  EXPECT_FALSE(find_component_class("warp_core").has_value());
}

TEST(Components, QuadraticClasses) {
  EXPECT_TRUE(is_quadratic(ComponentClass::kMultiplier));
  EXPECT_TRUE(is_quadratic(ComponentClass::kTieMult));
  EXPECT_TRUE(is_quadratic(ComponentClass::kTieMac));
  EXPECT_FALSE(is_quadratic(ComponentClass::kAdderCmp));
  EXPECT_FALSE(is_quadratic(ComponentClass::kTable));
}

TEST(Components, ComplexityNormalization) {
  // 32-bit linear primitive has C = 1; quadratic scales with (W/32)^2.
  EXPECT_DOUBLE_EQ(complexity(ComponentClass::kAdderCmp, 32), 1.0);
  EXPECT_DOUBLE_EQ(complexity(ComponentClass::kAdderCmp, 16), 0.5);
  EXPECT_DOUBLE_EQ(complexity(ComponentClass::kMultiplier, 32), 1.0);
  EXPECT_DOUBLE_EQ(complexity(ComponentClass::kMultiplier, 16), 0.25);
  // 256-entry 8-bit table has C = 1.
  EXPECT_DOUBLE_EQ(complexity(ComponentClass::kTable, 8, 256), 1.0);
  EXPECT_DOUBLE_EQ(complexity(ComponentClass::kTable, 16, 256), 2.0);
}

TEST(Components, ComplexityMonotoneInWidth) {
  for (std::size_t i = 0; i < kComponentClassCount; ++i) {
    const auto cls = static_cast<ComponentClass>(i);
    const unsigned entries = cls == ComponentClass::kTable ? 256 : 0;
    double prev = 0.0;
    for (unsigned w = 4; w <= 64; w *= 2) {
      const double c = complexity(cls, w, entries);
      EXPECT_GT(c, prev) << component_class_name(cls) << " width " << w;
      prev = c;
    }
  }
}

TEST(Components, ComplexityRejectsBadWidths) {
  EXPECT_THROW(complexity(ComponentClass::kAdderCmp, 0), Error);
  EXPECT_THROW(complexity(ComponentClass::kAdderCmp, 1000), Error);
  EXPECT_THROW(complexity(ComponentClass::kTable, 8, 0), Error);
}

TEST(Components, CyclesActiveUsesScheduleOrLatency) {
  ComponentUse use;
  EXPECT_EQ(use.cycles_active(3), 3u);
  use.active_cycles = {0, 2};
  EXPECT_EQ(use.cycles_active(3), 2u);
}

// --- TieState -----------------------------------------------------------------

TEST(TieState, ScalarMaskedToWidth) {
  TieState state;
  state.declare_state("acc", 12);
  state.write_state("acc", 0xffffu);
  EXPECT_EQ(state.read_state("acc"), 0xfffu);
  EXPECT_EQ(state.state_width("acc"), 12u);
}

TEST(TieState, RegfileIndexWraps) {
  TieState state;
  state.declare_regfile("v", 16, 4);
  state.write_regfile("v", 1, 42);
  EXPECT_EQ(state.read_regfile("v", 1), 42u);
  EXPECT_EQ(state.read_regfile("v", 5), 42u);  // 5 mod 4 == 1
  state.write_regfile("v", 7, 9);              // 7 mod 4 == 3
  EXPECT_EQ(state.read_regfile("v", 3), 9u);
}

TEST(TieState, DuplicateAndUnknownNames) {
  TieState state;
  state.declare_state("x", 8);
  EXPECT_THROW(state.declare_state("x", 8), Error);
  EXPECT_THROW(state.declare_regfile("x", 8, 2), Error);
  EXPECT_THROW(state.read_state("nope"), Error);
  EXPECT_THROW(state.write_regfile("nope", 0, 0), Error);
}

TEST(TieState, ResetZeroesEverything) {
  TieState state;
  state.declare_state("a", 32);
  state.declare_regfile("f", 32, 2);
  state.write_state("a", 7);
  state.write_regfile("f", 0, 8);
  state.reset();
  EXPECT_EQ(state.read_state("a"), 0u);
  EXPECT_EQ(state.read_regfile("f", 0), 0u);
}

// --- expression evaluation -----------------------------------------------------

/// Compiles a one-instruction spec and executes it.
std::uint32_t run_semantics(const std::string& decls,
                            const std::string& instr_body, std::uint32_t rs1,
                            std::uint32_t rs2, TieState* state_out = nullptr) {
  const std::string source = decls +
                             "\ninstruction t_op {\n  reads rs1, rs2\n"
                             "  writes rd\n  use logic width=32\n"
                             "  semantics { " +
                             instr_body + " }\n}\n";
  const TieConfiguration config = compile_tie_source(source);
  TieState state = config.make_state();
  const std::uint32_t rd = config.execute(0, rs1, rs2, &state);
  if (state_out != nullptr) *state_out = std::move(state);
  return rd;
}

struct ExprCase {
  const char* expr;
  std::uint32_t rs1;
  std::uint32_t rs2;
  std::uint32_t expected;
};

class SemanticsExpr : public ::testing::TestWithParam<ExprCase> {};

TEST_P(SemanticsExpr, Evaluates) {
  const ExprCase& c = GetParam();
  EXPECT_EQ(run_semantics("", std::string("rd = ") + c.expr + ";", c.rs1,
                          c.rs2),
            c.expected)
      << c.expr;
}

INSTANTIATE_TEST_SUITE_P(
    Operators, SemanticsExpr,
    ::testing::Values(
        ExprCase{"rs1 + rs2", 3, 4, 7},
        ExprCase{"rs1 - rs2", 3, 4, 0xffffffffu},
        ExprCase{"rs1 * rs2", 6, 7, 42},
        ExprCase{"rs1 & rs2", 0xf0, 0x3c, 0x30},
        ExprCase{"rs1 | rs2", 0xf0, 0x0f, 0xff},
        ExprCase{"rs1 ^ rs2", 0xff, 0x0f, 0xf0},
        ExprCase{"rs1 << rs2", 1, 5, 32},
        ExprCase{"rs1 >> rs2", 64, 3, 8},
        ExprCase{"~rs1", 0, 0, 0xffffffffu},
        ExprCase{"-rs1", 1, 0, 0xffffffffu},
        ExprCase{"rs1 == rs2", 5, 5, 1},
        ExprCase{"rs1 != rs2", 5, 5, 0},
        ExprCase{"rs1 < rs2", 3, 9, 1},
        ExprCase{"rs1 >= rs2", 3, 9, 0},
        ExprCase{"sel(rs1 < rs2, 10, 20)", 1, 2, 10},
        ExprCase{"sel(rs1 < rs2, 10, 20)", 2, 1, 20},
        ExprCase{"sext(rs1, 8)", 0x80, 0, 0xffffff80u},
        ExprCase{"zext(rs1, 8)", 0x1ff, 0, 0xff},
        ExprCase{"min(rs1, rs2)", 3, 9, 3},
        ExprCase{"max(rs1, rs2)", 3, 9, 9},
        ExprCase{"mins(rs1, rs2)", 0xffffffffu, 1, 1},  // zero-extended operands
        ExprCase{"maxs(sext(rs1,32), sext(rs2,32))", 0xffffffffu, 1, 1},
        ExprCase{"abs(sext(rs1, 8))", 0xfe, 0, 2},
        ExprCase{"popcount(rs1)", 0xf0f0, 0, 8},
        ExprCase{"asr(rs1, 4, 8)", 0x80, 0, 0xfffffff8u},
        ExprCase{"rs1 + rs2 * 2", 1, 3, 7},           // precedence: * > +
        ExprCase{"rs1 | rs2 & 12", 1, 6, 5},          // & > |
        ExprCase{"(rs1 + rs2) * 2", 1, 3, 8},
        ExprCase{"rs1 + rs2 >> 1", 3, 5, 4}));        // + > >>

TEST(Semantics, SequentialAssignmentsSeeEarlierWrites) {
  TieState state;
  const std::uint32_t rd = run_semantics(
      "state tmp width=32",
      "tmp = rs1 + rs2; rd = tmp * 2;", 3, 4, &state);
  EXPECT_EQ(rd, 14u);
  EXPECT_EQ(state.read_state("tmp"), 7u);
}

TEST(Semantics, TableLookupWraps) {
  const std::uint32_t rd = run_semantics(
      "table quad size=4 width=8 { 10, 20, 30, 40 }",
      "rd = quad[rs1] + quad[rs1 + 4];", 1, 0);
  EXPECT_EQ(rd, 40u);  // quad[1] + quad[5 mod 4] = 20 + 20
}

TEST(Semantics, RegfileElementAssignment) {
  const std::string source = R"(
regfile vec width=16 size=4
instruction t_op {
  reads rs1, rs2
  semantics { vec[rs1] = rs2 + 1; }
}
)";
  const TieConfiguration config = compile_tie_source(source);
  TieState state = config.make_state();
  config.execute(0, 2, 99, &state);
  EXPECT_EQ(state.read_regfile("vec", 2), 100u);
}

TEST(Semantics, ShiftBeyond63IsZero) {
  EXPECT_EQ(run_semantics("", "rd = rs1 << 100;", 0xff, 0), 0u);
  EXPECT_EQ(run_semantics("", "rd = rs1 >> 70;", 0xff, 0), 0u);
}

// --- parser -----------------------------------------------------------------

TEST(Parser, FullFeatureSpec) {
  const TieSpec spec = parse_tie(R"(
# comment
regfile acc width=48 size=2
state flag width=1
table lut size=4 width=4 { 1, 2, 3, 4 }

instruction fancy {
  latency 3
  reads rs1, rs2
  writes rd
  isolated
  use mult width=16 count=2 cycles=0,1
  use adder width=32
  semantics {
    rd = lut[rs1 & 3] + acc[0];
    flag = rs1 == rs2;
  }
}
)");
  ASSERT_EQ(spec.regfiles.size(), 1u);
  EXPECT_EQ(spec.regfiles[0].width, 48u);
  ASSERT_EQ(spec.states.size(), 1u);
  ASSERT_EQ(spec.tables.size(), 1u);
  EXPECT_EQ(spec.tables[0].values.size(), 4u);
  ASSERT_EQ(spec.instructions.size(), 1u);
  const InstructionDecl& instr = spec.instructions[0];
  EXPECT_EQ(instr.latency, 3u);
  EXPECT_TRUE(instr.isolated);
  EXPECT_TRUE(instr.reads_rs1);
  EXPECT_TRUE(instr.writes_rd);
  ASSERT_EQ(instr.uses.size(), 2u);
  EXPECT_EQ(instr.uses[0].count, 2u);
  EXPECT_EQ(instr.uses[0].active_cycles.size(), 2u);
  EXPECT_EQ(instr.semantics.size(), 2u);
}

TEST(Parser, LineNumbersInErrors) {
  try {
    parse_tie("state ok width=8\nbanana\n");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, TableSizeMismatchRejected) {
  EXPECT_THROW(parse_tie("table t size=4 width=8 { 1, 2 }\n"), Error);
}

TEST(Parser, UnknownIdentifierInSemanticsRejected) {
  EXPECT_THROW(parse_tie(R"(
instruction bad {
  reads rs1
  semantics { rd = mystery; }
}
)"),
               Error);
}

TEST(Parser, AssignmentToUndeclaredTargetRejected) {
  EXPECT_THROW(parse_tie(R"(
instruction bad {
  reads rs1
  semantics { ghost = rs1; }
}
)"),
               Error);
}

// --- compiler validation ---------------------------------------------------------

TEST(Compiler, RejectsBaseMnemonicCollision) {
  EXPECT_THROW(compile_tie_source(R"(
instruction add {
  reads rs1, rs2
  writes rd
  use adder width=32
  semantics { rd = rs1 + rs2; }
}
)"),
               Error);
}

TEST(Compiler, RejectsPseudoMnemonicCollision) {
  EXPECT_THROW(compile_tie_source(R"(
instruction li {
  reads rs1
  writes rd
  use logic width=8
  semantics { rd = rs1; }
}
)"),
               Error);
}

TEST(Compiler, RejectsSemanticsOperandMismatch) {
  // Reads rs2 in semantics without declaring it.
  EXPECT_THROW(compile_tie_source(R"(
instruction bad {
  reads rs1
  writes rd
  use logic width=8
  semantics { rd = rs1 + rs2; }
}
)"),
               Error);
  // Declares writes rd but never assigns it.
  EXPECT_THROW(compile_tie_source(R"(
state s width=8
instruction bad2 {
  reads rs1
  writes rd
  use logic width=8
  semantics { s = rs1; }
}
)"),
               Error);
}

TEST(Compiler, RejectsBadLatencyAndCycles) {
  EXPECT_THROW(compile_tie_source(R"(
instruction bad {
  latency 99
  reads rs1
  writes rd
  use logic width=8
  semantics { rd = rs1; }
}
)"),
               Error);
  EXPECT_THROW(compile_tie_source(R"(
instruction bad2 {
  latency 2
  reads rs1
  writes rd
  use logic width=8 cycles=5
  semantics { rd = rs1; }
}
)"),
               Error);
}

TEST(Compiler, RejectsNonPowerOfTwoTable) {
  EXPECT_THROW(compile_tie_source(
                   "table t size=3 width=8 { 1, 2, 3 }\n"
                   "instruction u { reads rs1 writes rd\n"
                   "  semantics { rd = t[rs1]; } }\n"),
               Error);
}

TEST(Compiler, RejectsTableValueOverflow) {
  EXPECT_THROW(compile_tie_source("table t size=2 width=4 { 1, 300 }\n"),
               Error);
}

TEST(Compiler, ImplicitCustregAndTableComponents) {
  const TieConfiguration config = compile_tie_source(R"(
state acc width=24
table lut size=256 width=8 { )" + [] {
    std::string v;
    for (int i = 0; i < 256; ++i) {
      v += std::to_string(i & 0xff);
      if (i != 255) v += ", ";
    }
    return v;
  }() + R"( }
instruction look {
  reads rs1
  use adder width=24
  semantics { acc = acc + lut[rs1 & 255]; }
}
)");
  const CustomInstruction& ci = *config.find("look");
  bool has_custreg = false, has_table = false, has_adder = false;
  for (const ComponentUse& use : ci.components) {
    has_custreg |= use.cls == ComponentClass::kCustomReg && use.width == 24;
    has_table |= use.cls == ComponentClass::kTable && use.entries == 256;
    has_adder |= use.cls == ComponentClass::kAdderCmp;
  }
  EXPECT_TRUE(has_custreg);
  EXPECT_TRUE(has_table);
  EXPECT_TRUE(has_adder);
}

TEST(Compiler, ExecutionWeightsScaleWithLatencyAndSchedule) {
  const TieConfiguration config = compile_tie_source(R"(
instruction two_cycle {
  latency 2
  reads rs1, rs2
  writes rd
  use mult width=32 cycles=0
  use adder width=32
  semantics { rd = rs1 * rs2; }
}
)");
  const CustomInstruction& ci = *config.find("two_cycle");
  // mult: active 1 cycle, C(32) = 1 -> weight 1. adder: active both cycles.
  EXPECT_DOUBLE_EQ(
      ci.execution_weights[static_cast<std::size_t>(ComponentClass::kMultiplier)],
      1.0);
  EXPECT_DOUBLE_EQ(
      ci.execution_weights[static_cast<std::size_t>(ComponentClass::kAdderCmp)],
      2.0);
  // Both are in the input stage (mult scheduled at 0; adder always-on).
  EXPECT_DOUBLE_EQ(
      ci.input_stage_weights[static_cast<std::size_t>(ComponentClass::kMultiplier)],
      1.0);
}

TEST(Compiler, IsolatedDatapathExcludedFromSharedBus) {
  const TieConfiguration config = compile_tie_source(R"(
instruction open_dp {
  reads rs1
  writes rd
  use adder width=32
  semantics { rd = rs1 + 1; }
}
instruction gated_dp {
  isolated
  reads rs1
  writes rd
  use adder width=32
  semantics { rd = rs1 + 2; }
}
)");
  // Only the non-isolated datapath's adder shows on the shared bus.
  EXPECT_DOUBLE_EQ(
      config.shared_bus_weights()[static_cast<std::size_t>(
          ComponentClass::kAdderCmp)],
      1.0);
}

TEST(Compiler, FuncAssignmentAndLookup) {
  const TieConfiguration config = compile_tie_source(R"(
instruction first { reads rs1 writes rd use logic width=8
  semantics { rd = rs1; } }
instruction second { reads rs1 writes rd use logic width=8
  semantics { rd = rs1 + 1; } }
)");
  EXPECT_EQ(config.instruction(0).name, "first");
  EXPECT_EQ(config.instruction(1).name, "second");
  EXPECT_THROW(config.instruction(2), Error);
  EXPECT_EQ(config.find("second")->func, 1);
  EXPECT_EQ(config.find("third"), nullptr);
}

TEST(Compiler, MnemonicTablesMatchSignatures) {
  const TieConfiguration config = compile_tie_source(R"(
state s width=8
instruction sink { reads rs1 use logic width=8 semantics { s = rs1; } }
instruction source { writes rd use logic width=8 semantics { rd = s; } }
)");
  const auto mnemonics = config.assembler_mnemonics();
  const auto& sink = mnemonics.at("sink");
  EXPECT_FALSE(sink.has_rd);
  EXPECT_TRUE(sink.has_rs1);
  EXPECT_FALSE(sink.has_rs2);
  const auto& source = mnemonics.at("source");
  EXPECT_TRUE(source.has_rd);
  EXPECT_FALSE(source.has_rs1);
  const auto disasm = config.disassembler_mnemonics();
  EXPECT_EQ(disasm.at(0), "sink");
}

TEST(Compiler, UsesGenericRegfileFlag) {
  const TieConfiguration config = compile_tie_source(R"(
state s width=8
instruction touches { reads rs1 use logic width=8 semantics { s = rs1; } }
instruction internal { use logic width=8 semantics { s = s + 1; } }
)");
  EXPECT_TRUE(config.find("touches")->uses_generic_regfile());
  EXPECT_FALSE(config.find("internal")->uses_generic_regfile());
}

TEST(Compiler, EmptyConfigurationBehaves) {
  const TieConfiguration config;
  EXPECT_TRUE(config.empty());
  EXPECT_TRUE(config.assembler_mnemonics().empty());
  EXPECT_THROW(config.instruction(0), Error);
}

TEST(Compiler, DuplicateInstructionNamesRejected) {
  EXPECT_THROW(compile_tie_source(R"(
instruction dup { reads rs1 writes rd use logic width=8
  semantics { rd = rs1; } }
instruction dup { reads rs1 writes rd use logic width=8
  semantics { rd = rs1; } }
)"),
               Error);
}

TEST(Compiler, InstructionWithoutComponentsRejected) {
  EXPECT_THROW(compile_tie_source(R"(
instruction bare { reads rs1 writes rd semantics { rd = rs1; } }
)"),
               Error);
}


// --- parameterized rejection suite ----------------------------------------------

class BadSpec : public ::testing::TestWithParam<const char*> {};

TEST_P(BadSpec, IsRejectedWithError) {
  EXPECT_THROW(compile_tie_source(GetParam()), Error);
}

INSTANTIATE_TEST_SUITE_P(
    Specs, BadSpec,
    ::testing::Values(
        // state width out of range
        "state s width=0\n",
        "state s width=65\n",
        // regfile size out of range
        "regfile f width=8 size=0\n",
        "regfile f width=8 size=512\n",
        // duplicate symbols across kinds
        "state x width=8\nregfile x width=8 size=2\n",
        "state x width=8\ntable x size=2 width=8 { 1, 2 }\n",
        // component width / count out of range
        "instruction u { reads rs1 writes rd use adder width=0\n"
        "  semantics { rd = rs1; } }\n",
        "instruction u { reads rs1 writes rd use adder width=8 count=0\n"
        "  semantics { rd = rs1; } }\n",
        // table component without entries
        "instruction u { reads rs1 writes rd use table width=8\n"
        "  semantics { rd = rs1; } }\n",
        // latency zero
        "instruction u { latency 0 reads rs1 writes rd use logic width=8\n"
        "  semantics { rd = rs1; } }\n",
        // missing semantics
        "instruction u { reads rs1 writes rd use logic width=8 }\n",
        // unknown component class
        "instruction u { reads rs1 writes rd use flux width=8\n"
        "  semantics { rd = rs1; } }\n",
        // garbage
        "instruction { }", "%%%", "state\n"));

TEST(Compiler, GfMac2PackedSemantics) {
  // The packed two-way GF MAC accumulates both byte lanes independently.
  const TieConfiguration config =
      compile_tie_source(exten::workloads::tie_gfmac2_spec());
  TieState state = config.make_state();
  const auto gfmac2 = config.find("gfmac2")->func;
  const auto rdgf2 = config.find("rdgf2")->func;
  // lanes: (3 * 5) | (7 * 9) << 8 over GF(2^8)/0x11d.
  config.execute(gfmac2, 3u | (7u << 8), 5u | (9u << 8), &state);
  const std::uint32_t acc = config.execute(rdgf2, 0, 0, &state);
  EXPECT_EQ(acc & 0xff, exten::workloads::gf_mul_reference(3, 5));
  EXPECT_EQ((acc >> 8) & 0xff, exten::workloads::gf_mul_reference(7, 9));
  // Accumulation is XOR: applying the same product twice cancels.
  config.execute(gfmac2, 3u | (7u << 8), 5u | (9u << 8), &state);
  EXPECT_EQ(config.execute(rdgf2, 0, 0, &state), 0u);
}

}  // namespace
}  // namespace exten::tie
