// Golden-file regression tests for the disassembler.
//
// Each case assembles a source program, disassembles every word of its
// text segment into a listing, and compares the listing byte-for-byte
// against tests/golden/<name>.dis. Any change to disassembler output —
// mnemonic spelling, operand order, immediate formatting — shows up as a
// readable text diff instead of a silent behaviour change.
//
// Updating the goldens after an intentional output change:
//
//   EXTEN_UPDATE_GOLDEN=1 ./build/tests/test_disasm_golden
//
// (or `EXTEN_UPDATE_GOLDEN=1 ctest -R DisasmGolden`). This rewrites the
// files under tests/golden/ in the source tree; review the diff and commit
// them with the change that motivated it. The tests PASS in update mode so
// a full-suite run with the variable set regenerates everything in one go.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "isa/assembler.h"
#include "isa/disassembler.h"
#include "isa/program.h"

namespace exten {
namespace {

bool update_mode() {
  const char* env = std::getenv("EXTEN_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && std::string(env) != "0";
}

std::string hex_word(std::uint32_t value) {
  char buffer[11];
  std::snprintf(buffer, sizeof(buffer), "0x%08x", value);
  return buffer;
}

/// Disassembles every aligned word of every code segment (segments below
/// kDataBase) and dumps data segments as raw words, producing a stable
/// text listing.
std::string make_listing(const isa::ProgramImage& image) {
  std::ostringstream os;
  os << "entry " << hex_word(image.entry_point()) << "\n";
  for (const auto& [name, value] : image.symbols()) {
    os << "symbol " << name << " " << hex_word(value) << "\n";
  }
  for (const isa::Segment& segment : image.segments()) {
    os << "segment " << hex_word(segment.base) << " size "
       << segment.bytes.size() << "\n";
    const bool is_code = segment.base < isa::kDataBase;
    for (std::size_t offset = 0; offset + 4 <= segment.bytes.size();
         offset += 4) {
      std::uint32_t word = 0;
      for (unsigned b = 0; b < 4; ++b) {
        word |= std::uint32_t{segment.bytes[offset + b]} << (8 * b);
      }
      const std::uint32_t addr = segment.base + static_cast<std::uint32_t>(offset);
      os << hex_word(addr) << ": " << hex_word(word);
      if (is_code) os << "  " << isa::disassemble_word(word);
      os << "\n";
    }
  }
  return os.str();
}

std::string read_file_or_empty(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.good()) return {};
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

void check_golden(const std::string& name, const std::string& source) {
  SCOPED_TRACE("golden case: " + name);
  const std::string listing = make_listing(isa::assemble(source));
  const std::string path = std::string(EXTEN_GOLDEN_DIR) + "/" + name + ".dis";
  if (update_mode()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << listing;
    return;
  }
  const std::string golden = read_file_or_empty(path);
  ASSERT_FALSE(golden.empty())
      << path << " missing — regenerate with EXTEN_UPDATE_GOLDEN=1";
  EXPECT_EQ(listing, golden)
      << "disassembly drifted from " << path
      << "; if intentional, regenerate with EXTEN_UPDATE_GOLDEN=1";
}

void check_golden_from_corpus(const std::string& name) {
  const std::string source =
      read_file_or_empty(std::string(EXTEN_CORPUS_DIR) + "/asm/" + name + ".s");
  ASSERT_FALSE(source.empty()) << "corpus source " << name << ".s missing";
  check_golden(name, source);
}

// One instruction per base-ISA mnemonic (plus pseudo-instruction
// expansions), so a formatting change to any opcode class is caught.
TEST(DisasmGolden, AllOpcodes) {
  check_golden("opcodes",
               "_start:\n"
               "  add r3, r4, r5\n"
               "  sub r3, r4, r5\n"
               "  and r3, r4, r5\n"
               "  or r3, r4, r5\n"
               "  xor r3, r4, r5\n"
               "  nor r3, r4, r5\n"
               "  andn r3, r4, r5\n"
               "  sll r3, r4, r5\n"
               "  srl r3, r4, r5\n"
               "  sra r3, r4, r5\n"
               "  slt r3, r4, r5\n"
               "  sltu r3, r4, r5\n"
               "  mul r3, r4, r5\n"
               "  mulh r3, r4, r5\n"
               "  min r3, r4, r5\n"
               "  max r3, r4, r5\n"
               "  minu r3, r4, r5\n"
               "  maxu r3, r4, r5\n"
               "  addi r3, r4, -7\n"
               "  andi r3, r4, 255\n"
               "  ori r3, r4, 16\n"
               "  xori r3, r4, 5\n"
               "  slli r3, r4, 3\n"
               "  srli r3, r4, 3\n"
               "  srai r3, r4, 3\n"
               "  slti r3, r4, -1\n"
               "  sltiu r3, r4, 9\n"
               "  lui r3, 0x48000\n"
               "  lw r3, 8(r4)\n"
               "  lh r3, 6(r4)\n"
               "  lhu r3, 6(r4)\n"
               "  lb r3, 1(r4)\n"
               "  lbu r3, 1(r4)\n"
               "  sw r3, 8(r4)\n"
               "  sh r3, 6(r4)\n"
               "  sb r3, 1(r4)\n"
               "target:\n"
               "  beq r3, r4, target\n"
               "  bne r3, r4, target\n"
               "  blt r3, r4, target\n"
               "  bge r3, r4, target\n"
               "  bltu r3, r4, target\n"
               "  bgeu r3, r4, target\n"
               "  beqz r3, target\n"
               "  bnez r3, target\n"
               "  j ahead\n"
               "  jal ahead\n"
               "ahead:\n"
               "  jr r1\n"
               "  jalr r4\n"
               "  nop\n"
               "  li r6, 0x1234567\n"
               "  mv r7, r6\n"
               "  not r8, r7\n"
               "  neg r9, r8\n"
               "  halt\n");
}

TEST(DisasmGolden, CorpusCountdown) { check_golden_from_corpus("countdown"); }

TEST(DisasmGolden, CorpusHiLoData) { check_golden_from_corpus("hi_lo_data"); }

TEST(DisasmGolden, CorpusCallEqu) { check_golden_from_corpus("call_equ"); }

}  // namespace
}  // namespace exten
