// Tests for the design-space exploration subsystem (src/dse/): genome
// expansion and variation operators, candidate naming, strategy
// determinism and state round-trips, checkpoint serialization, and the
// driver's headline contracts — bit-reproducible reruns, bit-reproducible
// kill + resume, and EvalCache dedup across generations.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "dse/candidate.h"
#include "dse/checkpoint.h"
#include "dse/driver.h"
#include "dse/genome.h"
#include "dse/strategy.h"
#include "tie/compiler.h"
#include "util/error.h"

namespace exten::dse {
namespace {

model::EnergyMacroModel flat_model() {
  linalg::Vector coefficients(model::kNumVariables, 100.0);
  return model::EnergyMacroModel(std::move(coefficients));
}

// --- genome ----------------------------------------------------------------

TEST(Genome, RandomGenomesRespectTheGeneBudget) {
  GenomeOptions options;
  options.max_instructions = 3;
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const Genome g = random_genome(rng, options);
    EXPECT_GE(g.instr_seeds.size(), 1u);
    EXPECT_LE(g.instr_seeds.size(), 3u);
  }
}

TEST(Genome, MutationAlwaysChangesTheGenome) {
  GenomeOptions options;
  Rng rng(12);
  Genome parent = random_genome(rng, options);
  for (int i = 0; i < 100; ++i) {
    const Genome child = mutate(parent, rng, options);
    EXPECT_FALSE(child == parent) << "iteration " << i;
    EXPECT_GE(child.instr_seeds.size(), 1u);
    EXPECT_LE(child.instr_seeds.size(), options.max_instructions);
    parent = child;
  }
}

TEST(Genome, CrossoverRespectsTheGeneBudget) {
  GenomeOptions options;
  options.max_instructions = 4;
  Rng rng(13);
  const Genome a = random_genome(rng, options);
  const Genome b = random_genome(rng, options);
  for (int i = 0; i < 50; ++i) {
    const Genome child = crossover(a, b, rng, options);
    EXPECT_GE(child.instr_seeds.size(), 1u);
    EXPECT_LE(child.instr_seeds.size(), 4u);
    EXPECT_TRUE(child.decl_seed == a.decl_seed ||
                child.decl_seed == b.decl_seed);
  }
}

TEST(Genome, JsonRoundTripPreservesFullU64Seeds) {
  // 2^53 + 1 is not representable as a double: a numeric JSON encoding
  // would corrupt it silently. The hex-string encoding must not.
  Genome g;
  g.decl_seed = (1ull << 53) + 1;
  g.instr_seeds = {0xffffffffffffffffull, 0, 0x8000000000000001ull};
  JsonWriter w;
  w.begin_object();
  write_genome_fields(w, g);
  w.end_object();
  const Genome back = parse_genome(JsonValue::parse(w.str()));
  EXPECT_TRUE(back == g);
}

TEST(Genome, ExpansionCompilesAndIsDeterministic) {
  GenomeOptions options;
  Rng rng(21);
  for (int i = 0; i < 20; ++i) {
    const Genome g = random_genome(rng, options);
    const std::string a = to_tie_source(g, options);
    const std::string b = to_tie_source(g, options);
    EXPECT_EQ(a, b);
    EXPECT_NO_THROW(tie::compile_tie_source(a)) << a;
  }
}

// --- candidate -------------------------------------------------------------

TEST(Candidate, NamesAreContentDerivedAndStable) {
  GenomeOptions options;
  Rng rng(31);
  const Genome g = random_genome(rng, options);
  const CandidateSources a = expand_candidate(g, options);
  const CandidateSources b = expand_candidate(g, options);
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.tie_source, b.tie_source);
  EXPECT_EQ(a.asm_source, b.asm_source);
  EXPECT_EQ(a.name.size(), 17u);  // "g" + 16 hex digits
  EXPECT_EQ(a.name[0], 'g');
  ASSERT_NE(a.tie, nullptr);

  const Genome other = random_genome(rng, options);
  EXPECT_NE(expand_candidate(other, options).name, a.name);
}

TEST(Candidate, MakeJobProducesAnEvaluatableJob) {
  GenomeOptions options;
  Rng rng(32);
  const Genome g = random_genome(rng, options);
  const CandidateSources sources = expand_candidate(g, options);
  const service::BatchJob job = make_job(sources);
  EXPECT_EQ(job.name, sources.name);
  service::BatchEstimator estimator(flat_model());
  const service::JobResult result = estimator.estimate_one(job);
  EXPECT_TRUE(result.ok) << result.error;
}

// --- strategies ------------------------------------------------------------

TEST(Strategy, BetterOrdersByScoreThenName) {
  ScoredGenome a, b, c;
  a.name = "b";
  a.score = 1.0;
  b.name = "a";
  b.score = 2.0;
  c.name = "a";
  c.score = 1.0;
  EXPECT_TRUE(better(a, b));   // lower score wins
  EXPECT_TRUE(better(c, a));   // equal score: name order
  EXPECT_FALSE(better(a, c));
}

TEST(Strategy, UnknownNameThrows) {
  EXPECT_THROW(Strategy::create("hillclimb", {}), Error);
}

TEST(Strategy, ProposalsAreDeterministicPerGenerationSeed) {
  for (const char* name : {"random", "beam", "genetic"}) {
    StrategyOptions options;
    GenomeOptions genome_options;
    const auto propose_once = [&] {
      const std::unique_ptr<Strategy> s = Strategy::create(name, options);
      Rng rng(Rng::derive_seed(77, 1));
      return s->propose(rng, 8, genome_options);
    };
    const std::vector<Genome> a = propose_once();
    const std::vector<Genome> b = propose_once();
    ASSERT_EQ(a.size(), b.size()) << name;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(a[i] == b[i]) << name << " proposal " << i;
    }
  }
}

TEST(Strategy, StateRoundTripsThroughJson) {
  StrategyOptions options;
  options.beam_width = 3;
  GenomeOptions genome_options;
  const std::unique_ptr<Strategy> s = Strategy::create("beam", options);

  Rng rng(Rng::derive_seed(78, 1));
  const std::vector<Genome> proposals = s->propose(rng, 6, genome_options);
  std::vector<ScoredGenome> scored;
  for (std::size_t i = 0; i < proposals.size(); ++i) {
    ScoredGenome sg;
    sg.genome = proposals[i];
    sg.name = "c" + std::to_string(i);
    sg.score = static_cast<double>(i);
    scored.push_back(sg);
  }
  scored[4].score = std::numeric_limits<double>::infinity();  // infeasible
  s->observe(scored);

  JsonWriter w;
  w.begin_object();
  s->save_state(w);
  w.end_object();
  const std::unique_ptr<Strategy> restored = Strategy::create("beam", options);
  restored->load_state(JsonValue::parse(w.str()));

  // The restored strategy proposes the same next generation.
  Rng rng_a(Rng::derive_seed(78, 2));
  Rng rng_b(Rng::derive_seed(78, 2));
  const std::vector<Genome> next_a = s->propose(rng_a, 6, genome_options);
  const std::vector<Genome> next_b = restored->propose(rng_b, 6, genome_options);
  ASSERT_EQ(next_a.size(), next_b.size());
  for (std::size_t i = 0; i < next_a.size(); ++i) {
    EXPECT_TRUE(next_a[i] == next_b[i]) << "proposal " << i;
  }
}

// --- checkpoint ------------------------------------------------------------

TEST(Checkpoint, RoundTripPreservesTheSearchState) {
  CheckpointData data;
  data.strategy = "genetic";
  data.seed = 99;
  data.objective = explore::Objective::kEnergy;
  data.budget = 500;
  data.frontier_size = 4;
  data.genome.max_instructions = 5;
  data.search.population = 12;
  data.generation = 3;
  data.evaluations = 36;
  data.infeasible = 2;
  ScoredGenome s;
  s.name = "gdeadbeef";
  s.score = 1.5;
  s.energy_pj = 1.5;
  s.cycles = 123;
  s.edp = 0.1;
  s.genome.decl_seed = 5;
  s.genome.instr_seeds = {6, 7};
  data.frontier.push_back(s);

  const std::unique_ptr<Strategy> strategy =
      Strategy::create(data.strategy, data.search);
  const std::string text = render_checkpoint(data, *strategy);
  const CheckpointData back = parse_checkpoint(text);

  EXPECT_EQ(back.strategy, "genetic");
  EXPECT_EQ(back.seed, 99u);
  EXPECT_EQ(back.objective, explore::Objective::kEnergy);
  EXPECT_EQ(back.budget, 500u);
  EXPECT_EQ(back.frontier_size, 4u);
  EXPECT_EQ(back.genome.max_instructions, 5u);
  EXPECT_EQ(back.search.population, 12u);
  EXPECT_EQ(back.generation, 3u);
  EXPECT_EQ(back.evaluations, 36u);
  EXPECT_EQ(back.infeasible, 2u);
  ASSERT_EQ(back.frontier.size(), 1u);
  EXPECT_EQ(back.frontier[0].name, "gdeadbeef");
  EXPECT_EQ(back.frontier[0].score, 1.5);
  EXPECT_EQ(back.frontier[0].cycles, 123u);
  EXPECT_TRUE(back.frontier[0].genome == s.genome);
}

TEST(Checkpoint, InfeasibleScoreSurvivesTheRoundTrip) {
  ScoredGenome s;
  s.name = "gbad";
  s.genome.instr_seeds = {1};
  JsonWriter w;
  w.begin_object();
  write_scored_genome_fields(w, s);
  w.end_object();
  const ScoredGenome back = parse_scored_genome(JsonValue::parse(w.str()));
  EXPECT_FALSE(back.feasible());
}

TEST(Checkpoint, MalformedTextThrows) {
  EXPECT_THROW(parse_checkpoint("{\"version\": 999}"), Error);
  EXPECT_THROW(parse_checkpoint("not json"), Error);
}

// --- driver ----------------------------------------------------------------

class DseDriver : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("exten_dse_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static DseOptions small_search(const std::string& strategy) {
    DseOptions options;
    options.strategy = strategy;
    options.budget = 24;
    options.seed = 42;
    options.search.population = 8;
    options.search.beam_width = 3;
    options.batch.num_threads = 2;
    return options;
  }

  static void expect_same_frontier(const DseResult& a, const DseResult& b) {
    ASSERT_EQ(a.frontier.size(), b.frontier.size());
    for (std::size_t i = 0; i < a.frontier.size(); ++i) {
      EXPECT_EQ(a.frontier[i].name, b.frontier[i].name) << "rank " << i;
      EXPECT_EQ(a.frontier[i].score, b.frontier[i].score) << "rank " << i;
      EXPECT_TRUE(a.frontier[i].genome == b.frontier[i].genome)
          << "rank " << i;
    }
  }

  std::filesystem::path dir_;
};

TEST_F(DseDriver, RerunWithTheSameSeedIsBitIdentical) {
  const model::EnergyMacroModel macro_model = flat_model();
  for (const char* strategy : {"random", "beam", "genetic"}) {
    const DseResult a = run_dse(macro_model, small_search(strategy));
    const DseResult b = run_dse(macro_model, small_search(strategy));
    expect_same_frontier(a, b);
    EXPECT_EQ(a.evaluations, 24u) << strategy;
  }
}

TEST_F(DseDriver, BeamSearchDedupsRevisitedCandidates) {
  const DseResult result = run_dse(flat_model(), small_search("beam"));
  // The beam is re-proposed every generation after the first; with a
  // 24-eval budget across 3 generations the cache must have fired.
  EXPECT_GT(result.stats.cache_hits, 0u);
  EXPECT_GT(result.stats.hit_rate(), 0.0);
}

TEST_F(DseDriver, CheckpointedRunWritesAllThreeFiles) {
  DseOptions options = small_search("beam");
  options.checkpoint_dir = path("ck");
  run_dse(flat_model(), options);
  EXPECT_TRUE(std::filesystem::is_regular_file(path("ck/checkpoint.json")));
  EXPECT_TRUE(std::filesystem::is_regular_file(path("ck/frontier.json")));
  EXPECT_TRUE(std::filesystem::is_regular_file(path("ck/run.jsonl")));
}

TEST_F(DseDriver, RefusesToOverwriteAnExistingCheckpoint) {
  DseOptions options = small_search("beam");
  options.checkpoint_dir = path("ck");
  run_dse(flat_model(), options);
  EXPECT_THROW(run_dse(flat_model(), options), Error);
}

TEST_F(DseDriver, InterruptedRunResumesBitIdentically) {
  const model::EnergyMacroModel macro_model = flat_model();

  // The uninterrupted reference run.
  DseOptions full = small_search("beam");
  full.checkpoint_dir = path("full");
  run_dse(macro_model, full);

  // The same search stopped at a third of the budget, then resumed in a
  // fresh process segment (fresh estimator, cold cache).
  DseOptions partial = small_search("beam");
  partial.budget = 8;
  partial.checkpoint_dir = path("partial");
  run_dse(macro_model, partial);
  DseOptions resume_env;
  resume_env.checkpoint_dir = path("partial");
  resume_env.batch.num_threads = 2;
  const DseResult resumed = resume_dse(macro_model, resume_env,
                                       /*budget_override=*/24);

  EXPECT_EQ(resumed.evaluations, 24u);
  EXPECT_EQ(read_checkpoint_file(path("full/frontier.json")),
            read_checkpoint_file(path("partial/frontier.json")));
}

TEST_F(DseDriver, ResumeOfACompleteSearchReturnsImmediately) {
  DseOptions options = small_search("genetic");
  options.checkpoint_dir = path("ck");
  const DseResult first = run_dse(flat_model(), options);

  DseOptions resume_env;
  resume_env.checkpoint_dir = path("ck");
  const DseResult again = resume_dse(flat_model(), resume_env);
  EXPECT_EQ(again.stats.evaluations, 0u);  // nothing re-ran
  expect_same_frontier(first, again);
}

TEST_F(DseDriver, FrontierIsRankedByScoreThenName) {
  const DseResult result = run_dse(flat_model(), small_search("random"));
  ASSERT_FALSE(result.frontier.empty());
  std::set<std::string> names;
  // Names are unique, so (score, name) is a strict total order: every
  // adjacent pair must compare strictly better.
  for (std::size_t i = 0; i + 1 < result.frontier.size(); ++i) {
    EXPECT_TRUE(better(result.frontier[i], result.frontier[i + 1]))
        << "rank " << i;
  }
  for (const ScoredGenome& s : result.frontier) {
    EXPECT_TRUE(s.feasible());
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
  }
}

TEST_F(DseDriver, GenerationCallbackSeesMonotonicProgress) {
  DseOptions options = small_search("beam");
  std::uint64_t last_generation = 0;
  std::uint64_t last_evaluations = 0;
  options.on_generation = [&](const GenerationSummary& g) {
    EXPECT_EQ(g.generation, last_generation + 1);
    EXPECT_GT(g.evaluations, last_evaluations);
    EXPECT_LE(g.evaluations, g.budget);
    last_generation = g.generation;
    last_evaluations = g.evaluations;
  };
  run_dse(flat_model(), options);
  EXPECT_EQ(last_evaluations, 24u);
}

}  // namespace
}  // namespace exten::dse
