// Unit tests for the util module: error handling, string utilities,
// deterministic RNG, streaming statistics, table rendering.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace exten {
namespace {

// --- Error -----------------------------------------------------------------

TEST(Error, FormatsStreamedParts) {
  Error e("width ", 42, " exceeds ", 3.5);
  EXPECT_STREQ(e.what(), "width 42 exceeds 3.5");
}

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    EXTEN_CHECK(1 == 2, "one is not ", "two");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("one is not two"), std::string::npos);
  }
}

TEST(Error, CheckMacroPassesWhenTrue) {
  EXPECT_NO_THROW(EXTEN_CHECK(2 + 2 == 4, "unreachable"));
}

// --- trim / split ------------------------------------------------------------

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\r\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Strings, SplitDropsEmptyFieldsByDefault) {
  const auto fields = split("a,,b,c,", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(Strings, SplitKeepsEmptyFieldsWhenAsked) {
  const auto fields = split("a,,b", ',', /*keep_empty=*/true);
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "");
}

TEST(Strings, SplitLinesHandlesCrLfAndTrailingNewline) {
  const auto lines = split_lines("one\r\ntwo\nthree\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "one");
  EXPECT_EQ(lines[1], "two");
  EXPECT_EQ(lines[2], "three");
}

TEST(Strings, SplitLinesKeepsInteriorEmptyLines) {
  const auto lines = split_lines("a\n\nb");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1], "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("prefix_rest", "prefix"));
  EXPECT_FALSE(starts_with("pre", "prefix"));
  EXPECT_TRUE(ends_with("file.cpp", ".cpp"));
  EXPECT_FALSE(ends_with("cpp", "file.cpp"));
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("MiXeD_42"), "mixed_42");
}

TEST(Strings, IsIdentifier) {
  EXPECT_TRUE(is_identifier("_start"));
  EXPECT_TRUE(is_identifier("loop2"));
  EXPECT_TRUE(is_identifier("a.b"));
  EXPECT_FALSE(is_identifier("2start"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("has space"));
}

// --- parse_int -----------------------------------------------------------------

struct ParseIntCase {
  const char* text;
  bool ok;
  std::int64_t value;
};

class ParseIntTest : public ::testing::TestWithParam<ParseIntCase> {};

TEST_P(ParseIntTest, ParsesOrRejects) {
  const ParseIntCase& c = GetParam();
  std::int64_t out = 0;
  EXPECT_EQ(parse_int(c.text, &out), c.ok) << c.text;
  if (c.ok) {
    EXPECT_EQ(out, c.value) << c.text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParseIntTest,
    ::testing::Values(
        ParseIntCase{"0", true, 0}, ParseIntCase{"42", true, 42},
        ParseIntCase{"-17", true, -17}, ParseIntCase{"+9", true, 9},
        ParseIntCase{"0x10", true, 16}, ParseIntCase{"0XfF", true, 255},
        ParseIntCase{"0b101", true, 5}, ParseIntCase{"-0x8", true, -8},
        ParseIntCase{"0xffffffff", true, 0xffffffffll},
        ParseIntCase{" 12 ", true, 12}, ParseIntCase{"", false, 0},
        ParseIntCase{"-", false, 0}, ParseIntCase{"0x", false, 0},
        ParseIntCase{"12x", false, 0}, ParseIntCase{"abc", false, 0},
        ParseIntCase{"1 2", false, 0}));

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
}

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 4000.0, 0.5, 0.03);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(5);
  const std::uint64_t first = rng.next_u64();
  rng.next_u64();
  rng.reseed(5);
  EXPECT_EQ(rng.next_u64(), first);
}

// --- Rng golden sequences ---------------------------------------------------
//
// The fuzzing subsystem's reproducibility guarantee ("seed S, iteration I
// replays bit-identically anywhere") rests on these exact sequences. They
// are pure xoshiro256** + splitmix64 + explicit rejection sampling, so
// they must never vary by platform, compiler, or standard library. If one
// of these tests fails, the change invalidated every recorded fuzz seed
// and repro artifact — don't update the constants without that intent.

TEST(Rng, GoldenNextU64) {
  Rng rng(1);
  const std::uint64_t expected[] = {
      0xb3f2af6d0fc710c5ULL, 0x853b559647364ceaULL, 0x92f89756082a4514ULL,
      0x642e1c7bc266a3a7ULL, 0xb27a48e29a233673ULL, 0x24c123126ffda722ULL,
      0x123004ef8df510e6ULL, 0x61954dcc47b1e89dULL,
  };
  for (std::uint64_t value : expected) EXPECT_EQ(rng.next_u64(), value);

  Rng other(0xDEADBEEF);
  EXPECT_EQ(other.next_u64(), 0xc5555444a74d7e83ULL);
  EXPECT_EQ(other.next_u64(), 0x65c30d37b4b16e38ULL);
  EXPECT_EQ(other.next_u64(), 0x54f773200a4efa23ULL);
  EXPECT_EQ(other.next_u64(), 0x429aed75fb958af7ULL);
}

TEST(Rng, GoldenNextU32AndDouble) {
  Rng rng(11);
  const std::uint32_t words[] = {0x39287fc2u, 0x1654fe5fu, 0x3ec96828u,
                                 0x719b3caeu};
  for (std::uint32_t value : words) EXPECT_EQ(rng.next_u32(), value);

  Rng doubles(11);
  EXPECT_EQ(doubles.next_double(), 0.22327421661723301);
  EXPECT_EQ(doubles.next_double(), 0.08723440006391181);
  EXPECT_EQ(doubles.next_double(), 0.24526072486170158);
}

TEST(Rng, GoldenBoundedDraws) {
  Rng below(7);
  const std::uint64_t expected_below[] = {4, 4, 8, 4, 4, 1, 6, 6, 8, 9, 3, 6};
  for (std::uint64_t value : expected_below) {
    EXPECT_EQ(below.next_below(10), value);
  }

  Rng inclusive(7);
  const std::int64_t expected_in[] = {1, -3, 5, 3, -2, -4, -4, 4, 5, -3, 4, 0};
  for (std::int64_t value : expected_in) {
    EXPECT_EQ(inclusive.next_in(-5, 5), value);
  }

  Rng bools(11);
  const bool expected_bools[] = {true, true,  true,  false, true,
                                 false, false, false, false, true};
  for (bool value : expected_bools) EXPECT_EQ(bools.next_bool(0.25), value);
}

TEST(Rng, GoldenShuffleAndPick) {
  Rng rng(99);
  std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7};
  rng.shuffle(items);
  EXPECT_EQ(items, (std::vector<int>{2, 6, 7, 0, 1, 3, 5, 4}));

  Rng picker(3);
  const std::vector<std::string> names{"alpha", "beta", "gamma", "delta"};
  const char* expected[] = {"alpha", "gamma", "beta", "gamma", "gamma",
                            "delta"};
  for (const char* name : expected) EXPECT_EQ(picker.pick(names), name);
}

TEST(Rng, GoldenDeriveSeed) {
  EXPECT_EQ(Rng::derive_seed(1, 0), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(Rng::derive_seed(1, 1), 0xbeeb8da1658eec67ULL);
  EXPECT_EQ(Rng::derive_seed(42, 1234567), 0xe251ac5c662b89bbULL);
  // Pure function of its inputs: no hidden state.
  EXPECT_EQ(Rng::derive_seed(1, 0), Rng::derive_seed(1, 0));
}

// --- StreamingStats -------------------------------------------------------------

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.rms(), 0.0);
  EXPECT_EQ(s.max_abs(), 0.0);
}

TEST(StreamingStats, BasicMoments) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StreamingStats, RmsAndMeanAbsWithSigns) {
  StreamingStats s;
  s.add(-3.0);
  s.add(4.0);
  EXPECT_DOUBLE_EQ(s.mean_abs(), 3.5);
  EXPECT_DOUBLE_EQ(s.rms(), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(s.max_abs(), 4.0);
}

TEST(StreamingStats, PercentError) {
  EXPECT_DOUBLE_EQ(percent_error(110.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percent_error(90.0, 100.0), -10.0);
  EXPECT_DOUBLE_EQ(percent_error(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percent_error(5.0, 0.0), 100.0);
}

// --- AsciiTable ---------------------------------------------------------------

TEST(AsciiTable, RejectsWrongArity) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), Error);
}

TEST(AsciiTable, RendersAlignedColumns) {
  AsciiTable t({"Name", "Value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "23"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| Name   |"), std::string::npos);
  EXPECT_NE(out.find("| longer |    23 |"), std::string::npos);
  // Header rule above and below plus bottom rule.
  EXPECT_EQ(std::count(out.begin(), out.end(), '+'), 3 * 3);
}

TEST(AsciiTable, CsvEscaping) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(AsciiTable, CsvOutput) {
  AsciiTable t({"k", "v"});
  t.add_row({"a,b", "1"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "k,v\n\"a,b\",1\n");
}

}  // namespace
}  // namespace exten
