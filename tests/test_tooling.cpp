// Tests for the tooling layer: program-image serialization (image_io),
// the execution tracer and PC profiler, and the design-space exploration
// module.

#include <gtest/gtest.h>

#include <sstream>

#include "explore/explore.h"
#include "isa/assembler.h"
#include "isa/image_io.h"
#include "sim/cpu.h"
#include "sim/tracer.h"
#include "tools/tool_common.h"
#include "util/error.h"
#include "workloads/tie_library.h"
#include "workloads/workloads.h"

namespace exten {
namespace {

// --- image_io ------------------------------------------------------------------

TEST(ImageIo, RoundTripsAssembledProgram) {
  const isa::ProgramImage image = isa::assemble(R"(
_start:
  li   t0, 0x1234
  halt
.data
values: .word 1, 2, 3
.org 0x80001000
device: .byte 0xaa
)");
  const std::string text = isa::image_to_string(image);
  const isa::ProgramImage back = isa::parse_image(text);

  EXPECT_EQ(back.entry_point(), image.entry_point());
  EXPECT_EQ(back.symbols(), image.symbols());
  ASSERT_EQ(back.segments().size(), image.segments().size());
  for (std::size_t i = 0; i < image.segments().size(); ++i) {
    EXPECT_EQ(back.segments()[i].base, image.segments()[i].base);
    EXPECT_EQ(back.segments()[i].bytes, image.segments()[i].bytes);
  }
}

TEST(ImageIo, RoundTripsEveryWorkloadImage) {
  // Property: serialization must be lossless for every program we ship.
  for (const model::TestProgram& program : workloads::application_suite()) {
    const std::string text = isa::image_to_string(program.image);
    const isa::ProgramImage back = isa::parse_image(text);
    EXPECT_EQ(back.entry_point(), program.image.entry_point()) << program.name;
    EXPECT_EQ(back.total_bytes(), program.image.total_bytes()) << program.name;
    for (const isa::Segment& segment : program.image.segments()) {
      for (std::uint32_t off = 0; off + 4 <= segment.bytes.size(); off += 4) {
        EXPECT_EQ(back.read_word(segment.base + off),
                  program.image.read_word(segment.base + off))
            << program.name;
      }
    }
  }
}

TEST(ImageIo, RejectsCorruptInput) {
  EXPECT_THROW(isa::parse_image("not an image"), Error);
  EXPECT_THROW(isa::parse_image("exten-image v1\nsegment 0x0 4\nzz\n"), Error);
  EXPECT_THROW(isa::parse_image("exten-image v1\nsegment 0x0 8\n00\n"), Error);
  EXPECT_THROW(isa::parse_image("exten-image v1\nbogus record\n"), Error);
  // No entry record.
  EXPECT_THROW(isa::parse_image("exten-image v1\nsymbol a 0x0\n"), Error);
}

TEST(ImageIo, RejectsOverrunningSegmentData) {
  EXPECT_THROW(isa::parse_image(
                   "exten-image v1\nentry 0x0\nsegment 0x0 2\n001122\n"),
               Error);
}

// --- tracer ---------------------------------------------------------------------

struct TracedRun {
  std::string trace;
  std::uint64_t lines = 0;
};

TracedRun trace_program(const std::string& source,
                        sim::TraceWriter::Options options = {}) {
  static const tie::TieConfiguration empty;
  sim::Cpu cpu({}, empty);
  cpu.load_program(isa::assemble(source));
  std::ostringstream os;
  sim::TraceWriter tracer(os, std::move(options));
  cpu.add_observer(&tracer);
  cpu.run();
  return {os.str(), tracer.lines_written()};
}

TEST(Tracer, EmitsOneLinePerInstruction) {
  const TracedRun run = trace_program("nop\nadd t0, t1, t2\nhalt\n");
  EXPECT_EQ(run.lines, 3u);
  EXPECT_NE(run.trace.find("add r20, r21, r22"), std::string::npos);
  EXPECT_NE(run.trace.find("halt"), std::string::npos);
  EXPECT_NE(run.trace.find("0x00001000"), std::string::npos);
}

TEST(Tracer, AnnotatesEventsAndValues) {
  const TracedRun run = trace_program(R"(
  li   t1, buf
  lw   t0, 0(t1)
  beqz t0, somewhere
somewhere:
  halt
.data
buf: .word 0
)");
  EXPECT_NE(run.trace.find("IMISS"), std::string::npos);
  EXPECT_NE(run.trace.find("DMISS"), std::string::npos);
  EXPECT_NE(run.trace.find("TAKEN"), std::string::npos);
  EXPECT_NE(run.trace.find("mem=0x"), std::string::npos);
  EXPECT_NE(run.trace.find("rd=0x"), std::string::npos);
}

TEST(Tracer, MaxLinesCapsOutput) {
  sim::TraceWriter::Options options;
  options.max_lines = 2;
  const TracedRun run = trace_program("nop\nnop\nnop\nnop\nhalt\n", options);
  EXPECT_EQ(run.lines, 2u);
}

TEST(Tracer, QuietModesSuppressAnnotations) {
  sim::TraceWriter::Options options;
  options.show_events = false;
  options.show_values = false;
  const TracedRun run = trace_program(R"(
  li   t1, buf
  lw   t0, 0(t1)
  halt
.data
buf: .word 0
)",
                                      options);
  EXPECT_EQ(run.trace.find("DMISS"), std::string::npos);
  EXPECT_EQ(run.trace.find("rd=0x"), std::string::npos);
}

TEST(PcProfile, FindsTheLoop) {
  static const tie::TieConfiguration empty;
  sim::Cpu cpu({}, empty);
  cpu.load_program(isa::assemble(R"(
  li   s0, 100
loop:
  addi s0, s0, -1
  bnez s0, loop
  halt
)"));
  sim::PcProfile profile;
  cpu.add_observer(&profile);
  cpu.run();
  ASSERT_GE(profile.distinct_pcs(), 4u);
  const auto top = profile.hottest(2);
  ASSERT_EQ(top.size(), 2u);
  // The two loop instructions dominate: 100 executions each.
  EXPECT_EQ(top[0].executions, 100u);
  EXPECT_EQ(top[1].executions, 100u);
  EXPECT_GT(profile.concentration(2), 0.8);
  // The taken branch costs more cycles than the addi.
  EXPECT_GT(top[0].cycles, top[1].cycles);
}

// --- explore ---------------------------------------------------------------------

model::EnergyMacroModel flat_model() {
  // A synthetic but monotone model: every cycle-ish variable costs 100 pJ.
  linalg::Vector coefficients(model::kNumVariables, 0.0);
  for (std::size_t i = 0; i < model::kNumInstructionVars; ++i) {
    coefficients[i] = 100.0;
  }
  coefficients[model::kVarIcacheMiss] = 2000.0;
  coefficients[model::kVarDcacheMiss] = 2000.0;
  for (std::size_t i = model::kNumInstructionVars; i < model::kNumVariables;
       ++i) {
    coefficients[i] = 50.0;
  }
  return model::EnergyMacroModel(std::move(coefficients));
}

TEST(Explore, RanksReedSolomonVariants) {
  std::vector<explore::Candidate> candidates;
  for (model::TestProgram& variant : workloads::reed_solomon_variants(5)) {
    std::string name = variant.name;
    candidates.push_back({std::move(name), std::move(variant)});
  }
  const model::EnergyMacroModel macro_model = flat_model();

  const explore::ExploreResult by_delay = explore::rank_candidates(
      candidates, macro_model, explore::Objective::kDelay);
  ASSERT_EQ(by_delay.ranked.size(), 4u);
  // Cycle order: gfmac2 < gfmul/gfmac < base.
  EXPECT_EQ(by_delay.best().name, "RS_gfmac2");
  EXPECT_EQ(by_delay.ranked.back().name, "RS_base");
  for (std::size_t i = 1; i < by_delay.ranked.size(); ++i) {
    EXPECT_GE(by_delay.ranked[i].cycles, by_delay.ranked[i - 1].cycles);
  }

  const explore::ExploreResult by_energy = explore::rank_candidates(
      candidates, macro_model, explore::Objective::kEnergy);
  for (std::size_t i = 1; i < by_energy.ranked.size(); ++i) {
    EXPECT_GE(by_energy.ranked[i].energy_pj,
              by_energy.ranked[i - 1].energy_pj);
  }

  // The best-by-EDP point must be Pareto optimal.
  const explore::ExploreResult by_edp = explore::rank_candidates(
      candidates, macro_model, explore::Objective::kEdp);
  EXPECT_TRUE(by_edp.best().pareto_optimal);
  // The strictly-worst point (base: most cycles AND most energy) is
  // dominated.
  for (const explore::Evaluation& eval : by_edp.ranked) {
    if (eval.name == "RS_base") {
      EXPECT_FALSE(eval.pareto_optimal);
    }
  }
}

TEST(Explore, EmptyCandidateListRejected) {
  const model::EnergyMacroModel macro_model = flat_model();
  EXPECT_THROW(
      explore::rank_candidates({}, macro_model, explore::Objective::kEdp),
      Error);
}

TEST(Explore, TableRendersAllCandidates) {
  std::vector<explore::Candidate> candidates;
  candidates.push_back(
      {"only", model::make_test_program("only", "nop\nhalt\n")});
  const explore::ExploreResult result =
      explore::rank_candidates(candidates, flat_model());
  EXPECT_EQ(explore::to_table(result).row_count(), 1u);
  EXPECT_TRUE(result.best().pareto_optimal);
}

// --- tool_common: exit codes and --version -------------------------------

/// Builds argv-style arguments from a list of strings (same shape the
/// xtc-* main() functions receive).
class ArgvBuilder {
 public:
  explicit ArgvBuilder(std::vector<std::string> args)
      : storage_(std::move(args)) {
    pointers_.push_back(const_cast<char*>("tool"));
    for (std::string& arg : storage_) {
      pointers_.push_back(arg.data());
    }
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

TEST(ToolCommon, ExitCodesAreStableContract) {
  // Deployment scripts branch on these: 0 = success, 1 = the work failed,
  // 2 = bad invocation. They are part of the CLI contract — renumbering
  // them is a breaking change.
  EXPECT_EQ(tools::kExitOk, 0);
  EXPECT_EQ(tools::kExitError, 1);
  EXPECT_EQ(tools::kExitUsage, 2);
}

TEST(ToolCommon, VersionLineNamesToolAndSemver) {
  const std::string line = tools::version_line("xtc-asm");
  EXPECT_EQ(line, std::string("xtc-asm ") + EXTEN_VERSION);
  // The build wires PROJECT_VERSION through; probe scripts rely on the
  // "<tool> <major>.<minor>.<patch>" shape.
  EXPECT_EQ(line.rfind("xtc-asm ", 0), 0u);
  EXPECT_NE(line.find('.'), std::string::npos);
}

TEST(ToolCommon, HandleVersionPrintsLineAndRequestsExit) {
  ArgvBuilder argv({"--version"});
  const tools::Args args(argv.argc(), argv.argv());
  ::testing::internal::CaptureStdout();
  const bool handled = tools::handle_version(args, "xtc-run");
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_TRUE(handled);
  EXPECT_EQ(out, tools::version_line("xtc-run") + "\n");
}

TEST(ToolCommon, HandleVersionIsANoOpWithoutTheFlag) {
  ArgvBuilder argv({"input.s", "--out", "a.img"});
  const tools::Args args(argv.argc(), argv.argv());
  ::testing::internal::CaptureStdout();
  EXPECT_FALSE(tools::handle_version(args, "xtc-run"));
  EXPECT_TRUE(::testing::internal::GetCapturedStdout().empty());
}

TEST(ToolCommon, ToolMainPassesThroughBodyExitCode) {
  EXPECT_EQ(tools::tool_main("t", [] { return tools::kExitOk; }),
            tools::kExitOk);
  EXPECT_EQ(tools::tool_main("t", [] { return tools::kExitUsage; }),
            tools::kExitUsage);
}

TEST(ToolCommon, ParseCountAcceptsPlainUnsignedIntegers) {
  EXPECT_EQ(tools::parse_count("clients", "4"), 4u);
  EXPECT_EQ(tools::parse_count("clients", "0"), 0u);
  EXPECT_EQ(tools::parse_count("clients", "1024"), 1024u);
  EXPECT_EQ(tools::parse_count("shards", "18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(ToolCommon, ParseCountEnforcesInclusiveBounds) {
  EXPECT_EQ(tools::parse_count("clients", "1", 1, 1024), 1u);
  EXPECT_EQ(tools::parse_count("clients", "1024", 1, 1024), 1024u);
  EXPECT_THROW(tools::parse_count("clients", "0", 1, 1024), Error);
  EXPECT_THROW(tools::parse_count("clients", "1025", 1, 1024), Error);
}

TEST(ToolCommon, PortFlagsRejectOutOfRangeValues) {
  // xtc-http's --endpoint HOST:PORT and the DSE --remote worker spec
  // validate connect ports through the inclusive [1, 65535] bound
  // (xtc-serve's listen flag additionally allows 0 = ephemeral); values
  // past 65535 used to truncate silently through uint16_t and must now
  // fail with the flag named in the message.
  EXPECT_EQ(tools::parse_count("port", "1", 1, 65'535), 1u);
  EXPECT_EQ(tools::parse_count("port", "65535", 1, 65'535), 65'535u);
  EXPECT_EQ(tools::parse_count("port", "0", 0, 65'535), 0u);
  EXPECT_THROW(tools::parse_count("port", "0", 1, 65'535), Error);
  EXPECT_THROW(tools::parse_count("port", "65536", 1, 65'535), Error);
  EXPECT_THROW(tools::parse_count("port", "-1", 1, 65'535), Error);
  try {
    tools::parse_count("port", "70000", 1, 65'535);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--port"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("65535"), std::string::npos);
  }
}

TEST(ToolCommon, ParseCountRejectsGarbage) {
  // std::stoul would silently accept "8x" (-> 8), "-1" (-> huge), and
  // leading whitespace; tool flags must not. The error text names the
  // flag so "--clients banana" produces an actionable message.
  EXPECT_THROW(tools::parse_count("clients", ""), Error);
  EXPECT_THROW(tools::parse_count("clients", "banana"), Error);
  EXPECT_THROW(tools::parse_count("clients", "8x"), Error);
  EXPECT_THROW(tools::parse_count("clients", "4 "), Error);
  EXPECT_THROW(tools::parse_count("clients", " 4"), Error);
  EXPECT_THROW(tools::parse_count("clients", "-1"), Error);
  EXPECT_THROW(tools::parse_count("clients", "+4"), Error);
  EXPECT_THROW(tools::parse_count("clients", "0x10"), Error);
  EXPECT_THROW(tools::parse_count("clients", "4.5"), Error);
  EXPECT_THROW(tools::parse_count("clients", "99999999999999999999999"),
               Error);  // overflows uint64
  try {
    tools::parse_count("clients", "banana");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--clients"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("banana"), std::string::npos);
  }
}

TEST(ToolCommon, ToolMainMapsErrorsToExitError) {
  ::testing::internal::CaptureStderr();
  const int code = tools::tool_main(
      "xtc-test", []() -> int { throw Error("model file is unreadable"); });
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(code, tools::kExitError);
  EXPECT_NE(err.find("xtc-test: error: model file is unreadable"),
            std::string::npos);
}

}  // namespace
}  // namespace exten
