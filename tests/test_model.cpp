// Tests for the macro-model core: variable extraction (profiler), the
// model template and serialization, characterization, and estimation.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "model/characterize.h"
#include "model/estimate.h"
#include "model/macro_model.h"
#include "model/profiler.h"
#include "model/test_program.h"
#include "model/validate.h"
#include "model/variables.h"
#include "sim/cpu.h"
#include "util/error.h"

namespace exten::model {
namespace {

MacroModelVariables profile(const TestProgram& program) {
  sim::Cpu cpu({}, *program.tie);
  cpu.load_program(program.image);
  MacroModelProfiler profiler(*program.tie);
  cpu.add_observer(&profiler);
  cpu.run(2'000'000);
  return profiler.variables();
}

// --- variables -------------------------------------------------------------

TEST(Variables, TemplateHas21NamedVariables) {
  EXPECT_EQ(kNumVariables, 21u);
  for (std::size_t i = 0; i < kNumVariables; ++i) {
    EXPECT_FALSE(variable_name(i).empty());
    EXPECT_FALSE(variable_description(i).empty());
  }
  EXPECT_EQ(variable_name(kVarArith), "N_a");
  EXPECT_EQ(variable_name(structural_index(tie::ComponentClass::kTieMac)),
            "tie_mac");
  EXPECT_THROW(variable_name(kNumVariables), Error);
}

TEST(Variables, VectorConversionAndAccumulate) {
  MacroModelVariables a;
  a[0] = 1.5;
  a[20] = 2.5;
  MacroModelVariables b;
  b[0] = 1.0;
  a += b;
  const linalg::Vector v = a.to_vector();
  EXPECT_EQ(v.size(), kNumVariables);
  EXPECT_DOUBLE_EQ(v[0], 2.5);
  EXPECT_DOUBLE_EQ(v[20], 2.5);
}

// --- profiler --------------------------------------------------------------

TEST(Profiler, InstructionClassCycles) {
  const TestProgram program = make_test_program("p", R"(
  li   t1, buf
  lw   t0, 0(t1)
  sw   t0, 4(t1)
  add  t2, t1, t1
  j    next
next:
  beqz zero, over       # taken
over:
  beqz t1, never        # untaken (t1 != 0)
never:
  halt
.data
buf: .word 7
)");
  const MacroModelVariables vars = profile(program);
  EXPECT_DOUBLE_EQ(vars[kVarLoad], 1.0);
  EXPECT_DOUBLE_EQ(vars[kVarStore], 1.0);
  EXPECT_DOUBLE_EQ(vars[kVarJump], 1.0);
  EXPECT_DOUBLE_EQ(vars[kVarBranchTaken], 1.0);
  EXPECT_DOUBLE_EQ(vars[kVarBranchUntaken], 1.0);
  // li(2) + add + halt counted as arithmetic-class cycles.
  EXPECT_DOUBLE_EQ(vars[kVarArith], 4.0);
  EXPECT_GE(vars[kVarIcacheMiss], 1.0);
  EXPECT_DOUBLE_EQ(vars[kVarDcacheMiss], 1.0);
}

TEST(Profiler, InterlockAndUncachedCounted) {
  const TestProgram program = make_test_program("p", R"(
  li   t1, buf
  lw   t0, 0(t1)
  add  t2, t0, t0       # interlock
  li   t3, ucode
  jr   t3
.org 0x80005000
ucode:
  nop
  halt
.data
buf: .word 7
)");
  const MacroModelVariables vars = profile(program);
  EXPECT_DOUBLE_EQ(vars[kVarInterlock], 1.0);
  EXPECT_DOUBLE_EQ(vars[kVarUncachedFetch], 2.0);
}

TEST(Profiler, CustomInstructionVariables) {
  const char* tie_source = R"(
state acc width=32
instruction cma {
  latency 2
  reads rs1, rs2
  use tie_mac width=32
  semantics { acc = acc + rs1 * rs2; }
}
instruction internal {
  use logic width=16
  semantics { acc = acc + 1; }
}
)";
  const TestProgram program = make_test_program("p", R"(
  li   t0, 3
  li   t1, 4
  cma  t0, t1
  cma  t1, t0
  internal
  halt
)",
                                                tie_source);
  const MacroModelVariables vars = profile(program);
  // Two cma executions, latency 2, generic-regfile users -> N_cisef = 4;
  // `internal` touches no generic register -> no contribution.
  EXPECT_DOUBLE_EQ(vars[kVarCustomSideEffect], 4.0);
  // tie_mac: weight C(32)=1 x 2 cycles x 2 executions = 4, plus side
  // activation by the 4 base arithmetic instructions (li expands to 2).
  EXPECT_NEAR(vars[structural_index(tie::ComponentClass::kTieMac)],
              4.0 + 4.0 * kSideActivationWeight, 1e-9);
  // custreg (implicit, 32b) active 2 cycles per cma and 1 per internal.
  const double custreg =
      vars[structural_index(tie::ComponentClass::kCustomReg)];
  EXPECT_GT(custreg, 0.0);
  // logic from `internal` plus side activation of non-isolated datapaths
  // by the base arithmetic instructions.
  EXPECT_GT(vars[structural_index(tie::ComponentClass::kLogic)], 0.0);
}

TEST(Profiler, BaseArithSideActivatesSharedBusDatapaths) {
  const char* tie_source = R"(
instruction dp {
  reads rs1, rs2
  writes rd
  use mult width=32
  semantics { rd = rs1 * rs2; }
}
)";
  // The program never executes `dp`, yet structural multiplier activity
  // accumulates from base arithmetic operand-bus traffic.
  const TestProgram program = make_test_program("p", R"(
  li   t0, 1
  add  t1, t0, t0
  add  t2, t1, t0
  halt
)",
                                                tie_source);
  const MacroModelVariables vars = profile(program);
  const double mult =
      vars[structural_index(tie::ComponentClass::kMultiplier)];
  // 4 arithmetic-class instructions (li=2, add, add; halt is Misc) at
  // weight kSideActivationWeight each... halt excluded.
  EXPECT_NEAR(mult, kSideActivationWeight * 4.0, 1e-9);
}

TEST(Profiler, IsolatedDatapathNotSideActivated) {
  const char* tie_source = R"(
instruction dp {
  isolated
  reads rs1, rs2
  writes rd
  use mult width=32
  semantics { rd = rs1 * rs2; }
}
)";
  const TestProgram program =
      make_test_program("p", "add t0, t1, t2\nhalt\n", tie_source);
  const MacroModelVariables vars = profile(program);
  EXPECT_DOUBLE_EQ(vars[structural_index(tie::ComponentClass::kMultiplier)],
                   0.0);
}

// --- macro model ---------------------------------------------------------------

TEST(MacroModel, EstimateIsDotProduct) {
  linalg::Vector coeffs(kNumVariables, 0.0);
  coeffs[kVarArith] = 100.0;
  coeffs[kVarLoad] = 200.0;
  const EnergyMacroModel model(coeffs);
  MacroModelVariables vars;
  vars[kVarArith] = 3.0;
  vars[kVarLoad] = 2.0;
  EXPECT_DOUBLE_EQ(model.estimate_pj(vars), 700.0);
  EXPECT_DOUBLE_EQ(model.estimate_uj(vars), 700.0e-6);
}

TEST(MacroModel, WrongCoefficientCountRejected) {
  EXPECT_THROW(EnergyMacroModel(linalg::Vector(5)), Error);
}

TEST(MacroModel, SerializationRoundTrips) {
  linalg::Vector coeffs(kNumVariables);
  for (std::size_t i = 0; i < kNumVariables; ++i) {
    coeffs[i] = 0.125 * static_cast<double>(i) - 1.0;
  }
  const EnergyMacroModel model(coeffs);
  const EnergyMacroModel back = EnergyMacroModel::deserialize(model.serialize());
  for (std::size_t i = 0; i < kNumVariables; ++i) {
    EXPECT_NEAR(back.coefficient(i), coeffs[i], 1e-6);
  }
}

TEST(MacroModel, DeserializeRejectsCorruptInput) {
  EXPECT_THROW(EnergyMacroModel::deserialize("not a model"), Error);
  EXPECT_THROW(EnergyMacroModel::deserialize("exten-macro-model v1\nN_a 1\n"),
               Error);
  linalg::Vector coeffs(kNumVariables, 1.0);
  std::string text = EnergyMacroModel(coeffs).serialize();
  text.replace(text.find("N_l"), 3, "XXX");
  EXPECT_THROW(EnergyMacroModel::deserialize(text), Error);
}

TEST(MacroModel, CoefficientTableListsAllVariables) {
  const EnergyMacroModel model(linalg::Vector(kNumVariables, 1.0));
  EXPECT_EQ(model.coefficient_table().row_count(), kNumVariables);
}

// --- characterize / estimate -----------------------------------------------------

/// A tiny synthetic suite: enough *independent* rows to identify the
/// base-core variables (the columns two programs share must appear in
/// different proportions, or the system is rank-deficient no matter how
/// many programs run).
std::vector<TestProgram> mini_suite() {
  std::vector<TestProgram> suite;
  auto loop = [](int iters, const std::string& body) {
    return "  li s9, " + std::to_string(iters) + "\nx:\n" + body +
           "  addi s9, s9, -1\n  bnez s9, x\n  halt\n";
  };
  // Each program's per-iteration mix differs both in composition and in
  // the arithmetic padding length, so no two rows are proportional.
  const char* arith_pad[] = {"", "  add t5, t6, t7\n",
                             "  add t5, t6, t7\n  xor t6, t5, t7\n",
                             "  add t5, t6, t7\n  xor t6, t5, t7\n"
                             "  sub t7, t6, t5\n"};
  int variant = 0;
  for (int iters : {40, 70, 100, 130}) {
    const std::string pad = arith_pad[variant % 4];
    suite.push_back(make_test_program(
        "arith" + std::to_string(iters),
        loop(iters, "  add t0, t1, t2\n  xor t3, t0, t1\n" + pad + pad)));
    suite.push_back(make_test_program(
        "mem" + std::to_string(iters),
        loop(iters, "  li t1, buf\n  lw t0, 0(t1)\n  lw t3, 8(t1)\n"
                    "  sw t0, 4(t1)\n" +
                        pad) +
            ".data\nbuf: .word 3, 4, 5\n"));
    suite.push_back(make_test_program(
        "store" + std::to_string(iters),
        loop(iters, "  li t1, buf\n  sw t0, 0(t1)\n  sw t0, 4(t1)\n"
                    "  sw t0, 8(t1)\n" +
                        pad) +
            ".data\nbuf: .space 16\n"));
    suite.push_back(make_test_program(
        "br" + std::to_string(iters),
        loop(iters, "  beq t0, t0, y\ny:\n  bne t0, t0, z\nz:\n"
                    "  beq t1, t1, w\nw:\n" +
                        pad)));
    suite.push_back(make_test_program(
        "bun" + std::to_string(iters),
        loop(iters, "  li t0, 1\n  beqz t0, never\n  beqz t0, never\n"
                    "  beqz t0, never\n" +
                        pad) +
            "never:\n  halt\n"));
    suite.push_back(make_test_program(
        "call" + std::to_string(iters),
        loop(iters, "  call f\n  call f\n" + pad) + "f:\n  ret\n"));
    suite.push_back(make_test_program(
        "ilk" + std::to_string(iters),
        loop(iters, "  li t1, buf\n  lw t0, 0(t1)\n  add t2, t0, t0\n"
                    "  lw t3, 4(t1)\n  add t4, t3, t3\n" +
                        pad) +
            ".data\nbuf: .word 9, 11\n"));
    // Five lines at set-stride (4 KiB) into a 4-way cache: conflict misses
    // on every access.
    suite.push_back(make_test_program(
        "thrash" + std::to_string(iters),
        loop(iters,
             "  li t1, region\n  lw t0, 0(t1)\n"
             "  li t1, region+4096\n  lw t2, 0(t1)\n"
             "  li t1, region+8192\n  lw t3, 0(t1)\n"
             "  li t1, region+12288\n  lw t4, 0(t1)\n"
             "  li t1, region+16384\n  lw t5, 0(t1)\n" +
                 pad) +
            ".data\nregion: .space 4\n"));
    ++variant;
  }
  return suite;
}

TEST(Characterize, NeedsEnoughPrograms) {
  std::vector<TestProgram> tiny;
  tiny.push_back(make_test_program("one", "halt\n"));
  EXPECT_THROW(characterize(tiny), Error);
}

TEST(Characterize, FitsMiniSuiteWell) {
  CharacterizeOptions options;
  options.ridge_lambda = 1e-9;  // the mini suite never excites TIE columns
  const CharacterizationResult result = characterize(mini_suite(), options);
  EXPECT_GT(result.r_squared, 0.99);
  EXPECT_LT(result.rms_error_percent, 10.0);
  EXPECT_EQ(result.observations.size(), 32u);
  // Base-class coefficients are positive and plausibly ordered.
  EXPECT_GT(result.model.coefficient(kVarArith), 100.0);
  EXPECT_GT(result.model.coefficient(kVarIcacheMiss),
            result.model.coefficient(kVarArith));
}

TEST(Characterize, PseudoInverseAgreesWithQr) {
  CharacterizeOptions qr_options;
  qr_options.ridge_lambda = 1e-9;
  CharacterizeOptions pinv_options;
  pinv_options.method = FitMethod::kPseudoInverse;
  pinv_options.relative_weighting = false;

  CharacterizeOptions qr_plain;
  qr_plain.relative_weighting = false;
  qr_plain.ridge_lambda = 1e-9;

  // The paper's normal-equations path and QR must agree on the same
  // (unweighted, unregularized... ridge off for comparability) system.
  // Use ridge-free: the mini suite leaves TIE columns zero, so compare
  // predictions rather than raw coefficients.
  const auto suite = mini_suite();
  const CharacterizationResult a = characterize(suite, qr_plain);
  pinv_options.relative_weighting = false;
  // Pseudo-inverse on a singular system throws: acceptable and documented.
  // Compare on predictions from the QR fit instead.
  for (const ProgramObservation& obs : a.observations) {
    EXPECT_NEAR(obs.predicted_pj, a.model.estimate_pj(obs.variables),
                std::fabs(obs.predicted_pj) * 1e-12);
  }
}

TEST(Characterize, ObservationCyclesMatchRun) {
  const auto suite = mini_suite();
  const ProgramObservation obs = observe_program(suite[0]);
  EXPECT_GT(obs.instructions, 0u);
  EXPECT_GT(obs.cycles, obs.instructions / 2);
  EXPECT_GT(obs.reference_pj, 0.0);
}

TEST(Estimate, MatchesReferenceOnTrainingDistribution) {
  CharacterizeOptions options;
  options.ridge_lambda = 1e-9;
  const auto suite = mini_suite();
  const CharacterizationResult result = characterize(suite, options);
  // A held-out program from the same family.
  const TestProgram held_out = make_test_program("held_out", R"(
  li s9, 85
x:
  add t0, t1, t2
  xor t3, t0, t1
  li t1, buf
  lw t4, 0(t1)
  addi s9, s9, -1
  bnez s9, x
  halt
.data
buf: .word 3
)");
  const EnergyEstimate estimate = estimate_energy(result.model, held_out);
  const ReferenceResult reference = reference_energy(held_out);
  const double err = std::fabs(estimate.energy_pj - reference.energy_pj) /
                     reference.energy_pj;
  EXPECT_LT(err, 0.10) << "estimate " << estimate.energy_pj << " vs "
                       << reference.energy_pj;
  EXPECT_GT(estimate.stats.instructions, 0u);
  EXPECT_GT(reference.breakdown.size(), 0u);
}

TEST(Estimate, ElapsedTimesAreMeasured) {
  const TestProgram program = make_test_program("t", R"(
  li s9, 2000
x:
  add t0, t1, t2
  addi s9, s9, -1
  bnez s9, x
  halt
)");
  const EnergyMacroModel model(linalg::Vector(kNumVariables, 1.0));
  const EnergyEstimate estimate = estimate_energy(model, program);
  const ReferenceResult reference = reference_energy(program);
  EXPECT_GT(estimate.elapsed_seconds, 0.0);
  EXPECT_GT(reference.elapsed_seconds, estimate.elapsed_seconds);
}

TEST(TestProgramFactory, ErrorsCarryProgramName) {
  try {
    make_test_program("broken_prog", "bogus t0\n");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("broken_prog"), std::string::npos);
  }
  try {
    make_test_program("bad_tie", "halt\n", "instruction { }");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bad_tie"), std::string::npos);
  }
}

TEST(TestProgramFactory, SharedConfigurationReused) {
  auto config = std::make_shared<tie::TieConfiguration>(
      tie::compile_tie_source(R"(
instruction pass { reads rs1 writes rd use logic width=8
  semantics { rd = rs1; } }
)"));
  const TestProgram a = make_test_program("a", "pass t0, t1\nhalt\n", config);
  const TestProgram b = make_test_program("b", "pass t2, t3\nhalt\n", config);
  EXPECT_EQ(a.tie.get(), b.tie.get());
}


// --- cross-validation -----------------------------------------------------------

TEST(CrossValidate, HoldsOutEveryProgramOnce) {
  const auto suite = mini_suite();
  CharacterizeOptions options;
  options.ridge_lambda = 1e-9;
  const CrossValidationResult result = cross_validate(suite, 4, options);
  EXPECT_EQ(result.predictions.size(), suite.size());
  // Every program appears exactly once across the folds.
  std::set<std::string> names;
  for (const HoldOutPrediction& p : result.predictions) {
    EXPECT_TRUE(names.insert(p.name + std::to_string(p.fold)).second);
    EXPECT_LT(p.fold, 4u);
    EXPECT_GT(p.reference_pj, 0.0);
  }
  // Generalization on this homogeneous mini suite is decent.
  EXPECT_LT(result.rms_error_percent, 25.0);
  EXPECT_GT(result.mean_fit_rms_percent, 0.0);
}

TEST(CrossValidate, ReusesSuppliedObservations) {
  const auto suite = mini_suite();
  CharacterizeOptions options;
  options.ridge_lambda = 1e-9;
  std::vector<ProgramObservation> observations;
  for (const TestProgram& program : suite) {
    observations.push_back(observe_program(program, options));
  }
  const CrossValidationResult a =
      cross_validate(suite, 4, options, observations);
  const CrossValidationResult b = cross_validate(suite, 4, options);
  EXPECT_NEAR(a.rms_error_percent, b.rms_error_percent, 1e-9);
}

TEST(CrossValidate, ValidatesArguments) {
  const auto suite = mini_suite();
  EXPECT_THROW(cross_validate(suite, 1), Error);
  EXPECT_THROW(cross_validate(suite, suite.size() + 1), Error);
}

TEST(FitFromObservations, MatchesCharacterizeCoefficients) {
  const auto suite = mini_suite();
  CharacterizeOptions options;
  options.ridge_lambda = 1e-9;
  const CharacterizationResult full = characterize(suite, options);
  const EnergyMacroModel refit =
      fit_from_observations(full.observations, options);
  for (std::size_t i = 0; i < kNumVariables; ++i) {
    EXPECT_NEAR(refit.coefficient(i), full.model.coefficient(i), 1e-9);
  }
}

}  // namespace
}  // namespace exten::model
