// Tests for the two-pass assembler and the disassembler: syntax, labels,
// directives, pseudo-instructions, expression evaluation, custom
// mnemonics, and round-trip properties.

#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/disassembler.h"
#include "isa/encoding.h"
#include "util/error.h"

namespace exten::isa {
namespace {

std::uint32_t first_word(const ProgramImage& image) {
  const auto word = image.read_word(kTextBase);
  EXPECT_TRUE(word.has_value());
  return word.value_or(0);
}

DecodedInstr first_instr(const std::string& source) {
  return decode(first_word(assemble(source)));
}

// --- register parsing ---------------------------------------------------------

TEST(Registers, NumericAndAliases) {
  EXPECT_EQ(parse_register("r0"), 0u);
  EXPECT_EQ(parse_register("r63"), 63u);
  EXPECT_EQ(parse_register("zero"), 0u);
  EXPECT_EQ(parse_register("ra"), kLinkRegister);
  EXPECT_EQ(parse_register("sp"), kStackRegister);
  EXPECT_EQ(parse_register("a0"), 10u);
  EXPECT_EQ(parse_register("a7"), 17u);
  EXPECT_EQ(parse_register("t0"), 20u);
  EXPECT_EQ(parse_register("t9"), 29u);
  EXPECT_EQ(parse_register("s0"), 30u);
  EXPECT_EQ(parse_register("s9"), 39u);
  EXPECT_EQ(parse_register("  T3 "), 23u);  // trims and lower-cases
}

TEST(Registers, RejectsBadNames) {
  EXPECT_THROW(parse_register("r64"), Error);
  EXPECT_THROW(parse_register("x5"), Error);
  EXPECT_THROW(parse_register("a8"), Error);
  EXPECT_THROW(parse_register(""), Error);
}

// --- basic instructions ---------------------------------------------------------

TEST(Assembler, RType) {
  const DecodedInstr d = first_instr("add r3, r4, r5\n");
  EXPECT_EQ(d.op, Opcode::kAdd);
  EXPECT_EQ(d.rd, 3);
  EXPECT_EQ(d.rs1, 4);
  EXPECT_EQ(d.rs2, 5);
}

TEST(Assembler, ITypeWithHexImmediate) {
  const DecodedInstr d = first_instr("addi t0, t1, 0x7f\n");
  EXPECT_EQ(d.op, Opcode::kAddi);
  EXPECT_EQ(d.imm, 0x7f);
}

TEST(Assembler, LoadStoreMemoryOperands) {
  const DecodedInstr load = first_instr("lw a0, 8(sp)\n");
  EXPECT_EQ(load.op, Opcode::kLw);
  EXPECT_EQ(load.rd, 10);
  EXPECT_EQ(load.rs1, kStackRegister);
  EXPECT_EQ(load.imm, 8);

  const DecodedInstr store = first_instr("sw a1, -4(sp)\n");
  EXPECT_EQ(store.op, Opcode::kSw);
  EXPECT_EQ(store.rs2, 11);  // value register
  EXPECT_EQ(store.imm, -4);
}

TEST(Assembler, EmptyOffsetDefaultsToZero) {
  const DecodedInstr d = first_instr("lw a0, (sp)\n");
  EXPECT_EQ(d.imm, 0);
}

TEST(Assembler, BranchTargetsResolveToWordOffsets) {
  const ProgramImage image = assemble(R"(
start:
  beq r1, r2, target
  nop
target:
  halt
)");
  const DecodedInstr d = decode(first_word(image));
  EXPECT_EQ(d.op, Opcode::kBeq);
  EXPECT_EQ(d.imm, 1);  // skip one instruction
}

TEST(Assembler, BackwardBranch) {
  const ProgramImage image = assemble(R"(
loop:
  addi r3, r3, -1
  bnez r3, loop
  halt
)");
  const auto word = image.read_word(kTextBase + 4);
  const DecodedInstr d = decode(word.value());
  EXPECT_EQ(d.op, Opcode::kBnez);
  EXPECT_EQ(d.imm, -2);
}

TEST(Assembler, JumpAndLink) {
  const ProgramImage image = assemble(R"(
  jal func
  halt
func:
  ret
)");
  const DecodedInstr d = decode(first_word(image));
  EXPECT_EQ(d.op, Opcode::kJal);
  EXPECT_EQ(d.imm, 1);
  const DecodedInstr ret = decode(image.read_word(kTextBase + 8).value());
  EXPECT_EQ(ret.op, Opcode::kJr);
  EXPECT_EQ(ret.rs1, kLinkRegister);
}

// --- pseudo-instructions ---------------------------------------------------------

TEST(Assembler, LiExpandsToLuiOri) {
  const ProgramImage image = assemble("li t0, 0x12345678\n  halt\n");
  const DecodedInstr lui = decode(first_word(image));
  const DecodedInstr ori = decode(image.read_word(kTextBase + 4).value());
  EXPECT_EQ(lui.op, Opcode::kLui);
  EXPECT_EQ(ori.op, Opcode::kOri);
  // lui loads the high 18 bits; ori the low 14.
  const std::uint32_t rebuilt = static_cast<std::uint32_t>(lui.imm) |
                                static_cast<std::uint32_t>(ori.imm);
  EXPECT_EQ(rebuilt, 0x12345678u);
}

TEST(Assembler, LiHandlesNegativeAndSmallValues) {
  const ProgramImage image = assemble("li t0, -1\n  li t1, 5\n  halt\n");
  const DecodedInstr lui = decode(first_word(image));
  const DecodedInstr ori = decode(image.read_word(kTextBase + 4).value());
  const std::uint32_t value = static_cast<std::uint32_t>(lui.imm) |
                              static_cast<std::uint32_t>(ori.imm);
  EXPECT_EQ(value, 0xffffffffu);
}

TEST(Assembler, MvNotNegExpansions) {
  EXPECT_EQ(first_instr("mv t0, t1\n").op, Opcode::kAddi);
  const DecodedInstr n = first_instr("not t0, t1\n");
  EXPECT_EQ(n.op, Opcode::kNor);
  EXPECT_EQ(n.rs2, kZeroRegister);
  const DecodedInstr neg = first_instr("neg t0, t1\n");
  EXPECT_EQ(neg.op, Opcode::kSub);
  EXPECT_EQ(neg.rs1, kZeroRegister);
}

TEST(Assembler, CallAndB) {
  const ProgramImage image = assemble(R"(
  b over
  nop
over:
  call over
  halt
)");
  EXPECT_EQ(decode(first_word(image)).op, Opcode::kJ);
  const DecodedInstr call = decode(image.read_word(kTextBase + 8).value());
  EXPECT_EQ(call.op, Opcode::kJal);
  EXPECT_EQ(call.imm, -1);
}

// --- directives ------------------------------------------------------------------

TEST(Assembler, DataSectionAndWordDirective) {
  const ProgramImage image = assemble(R"(
  halt
.data
values: .word 1, 2, 0x30
)");
  EXPECT_EQ(image.symbol("values").value(), kDataBase);
  EXPECT_EQ(image.read_word(kDataBase).value(), 1u);
  EXPECT_EQ(image.read_word(kDataBase + 8).value(), 0x30u);
}

TEST(Assembler, ByteHalfAndSpace) {
  const ProgramImage image = assemble(R"(
  halt
.data
b: .byte 1, 2, 3, 4
h: .half 0x1234, 0x5678
gap: .space 8
end_marker: .word 0xdeadbeef
)");
  EXPECT_EQ(image.read_word(image.symbol("b").value()).value(), 0x04030201u);
  EXPECT_EQ(image.read_word(image.symbol("h").value()).value(), 0x56781234u);
  EXPECT_EQ(image.symbol("end_marker").value(),
            image.symbol("gap").value() + 8);
  EXPECT_EQ(image.read_word(image.symbol("end_marker").value()).value(),
            0xdeadbeefu);
}

TEST(Assembler, AlignPadsToBoundary) {
  const ProgramImage image = assemble(R"(
  halt
.data
.byte 1
.align 8
aligned: .word 7
)");
  EXPECT_EQ(image.symbol("aligned").value() % 8, 0u);
}

TEST(Assembler, EquDefinesConstants) {
  const DecodedInstr d = first_instr(".equ LEN, 40\naddi t0, t1, LEN\n");
  EXPECT_EQ(d.imm, 40);
}

TEST(Assembler, OrgStartsNewSegment) {
  const ProgramImage image = assemble(R"(
  halt
.org 0x80001000
ucode:
  nop
)");
  EXPECT_EQ(image.symbol("ucode").value(), 0x80001000u);
  EXPECT_TRUE(image.read_word(0x80001000u).has_value());
  ASSERT_EQ(image.segments().size(), 2u);
}

TEST(Assembler, EntryPointFollowsStart) {
  const ProgramImage with = assemble("nop\n_start:\n  halt\n");
  EXPECT_EQ(with.entry_point(), kTextBase + 4);
  const ProgramImage without = assemble("halt\n");
  EXPECT_EQ(without.entry_point(), kTextBase);
}

// --- expressions -----------------------------------------------------------------

TEST(Assembler, AdditiveExpressions) {
  const DecodedInstr d = first_instr(".equ A, 10\naddi t0, t1, A + 2 - 4\n");
  EXPECT_EQ(d.imm, 8);
}

TEST(Assembler, HiLoOperators) {
  const ProgramImage image = assemble(R"(
.equ ADDR, 0x12345678
  lui t0, %hi(ADDR)
  ori t0, t0, %lo(ADDR)
  halt
)");
  const DecodedInstr lui = decode(first_word(image));
  const DecodedInstr ori = decode(image.read_word(kTextBase + 4).value());
  EXPECT_EQ(static_cast<std::uint32_t>(lui.imm) |
                static_cast<std::uint32_t>(ori.imm),
            0x12345678u);
}

TEST(Assembler, SymbolPlusOffsetInDirective) {
  const ProgramImage image = assemble(R"(
  halt
.data
base: .space 16
ptr: .word base + 12
)");
  EXPECT_EQ(image.read_word(image.symbol("ptr").value()).value(),
            image.symbol("base").value() + 12);
}

// --- errors ----------------------------------------------------------------------

TEST(AssemblerErrors, ReportLineNumbers) {
  try {
    assemble("nop\nbogus_op t0, t1\n");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bogus_op"), std::string::npos);
  }
}

TEST(AssemblerErrors, UndefinedSymbol) {
  EXPECT_THROW(assemble("j nowhere\n"), Error);
}

TEST(AssemblerErrors, WrongOperandCount) {
  EXPECT_THROW(assemble("add t0, t1\n"), Error);
  EXPECT_THROW(assemble("nop t0\n"), Error);
}

TEST(AssemblerErrors, DuplicateLabel) {
  EXPECT_THROW(assemble("x:\nnop\nx:\nnop\n"), Error);
}

TEST(AssemblerErrors, ImmediateOutOfRange) {
  EXPECT_THROW(assemble("addi t0, t1, 9000\n"), Error);
}

TEST(AssemblerErrors, UnknownDirective) {
  EXPECT_THROW(assemble(".bogus 1\n"), Error);
}

TEST(AssemblerErrors, MalformedMemoryOperand) {
  EXPECT_THROW(assemble("lw t0, t1\n"), Error);
}

// --- custom mnemonics ---------------------------------------------------------

TEST(Assembler, CustomMnemonicsBindPositionally) {
  AssemblerOptions options;
  options.custom_mnemonics["mac3"] = CustomMnemonic{5, true, true, true};
  options.custom_mnemonics["sink"] = CustomMnemonic{6, false, true, false};
  const ProgramImage image = assemble("mac3 t0, t1, t2\nsink a0\nhalt\n",
                                      options);
  const DecodedInstr full = decode(image.read_word(kTextBase).value());
  EXPECT_EQ(full.op, Opcode::kCustom);
  EXPECT_EQ(full.func, 5);
  EXPECT_EQ(full.rd, 20);
  EXPECT_EQ(full.rs1, 21);
  EXPECT_EQ(full.rs2, 22);
  const DecodedInstr one = decode(image.read_word(kTextBase + 4).value());
  EXPECT_EQ(one.func, 6);
  EXPECT_EQ(one.rd, 0);
  EXPECT_EQ(one.rs1, 10);
}

TEST(Assembler, CustomMnemonicWrongArityThrows) {
  AssemblerOptions options;
  options.custom_mnemonics["sink"] = CustomMnemonic{6, false, true, false};
  EXPECT_THROW(assemble("sink a0, a1\n", options), Error);
}

// --- comments / labels -----------------------------------------------------------

TEST(Assembler, CommentsAndInlineLabels) {
  const ProgramImage image = assemble(R"(
# full line comment
start:  nop          ; trailing comment
more: final: halt
)");
  EXPECT_EQ(image.symbol("start").value(), kTextBase);
  EXPECT_EQ(image.symbol("more").value(), kTextBase + 4);
  EXPECT_EQ(image.symbol("final").value(), kTextBase + 4);
}

// --- disassembler ----------------------------------------------------------------

TEST(Disassembler, RendersCommonForms) {
  EXPECT_EQ(disassemble(make_rtype(Opcode::kAdd, 3, 4, 5)), "add r3, r4, r5");
  EXPECT_EQ(disassemble(make_itype(Opcode::kLw, 10, 2, 8)), "lw r10, 8(r2)");
  EXPECT_EQ(disassemble(make_store(Opcode::kSw, 11, 2, -4)),
            "sw r11, -4(r2)");
  EXPECT_EQ(disassemble(make_branch(Opcode::kBeq, 1, 2, 1)),
            "beq r1, r2, pc+8");
  EXPECT_EQ(disassemble(make_jump(Opcode::kJ, -1)), "j pc+0");
  EXPECT_EQ(disassemble(DecodedInstr{.op = Opcode::kNop}), "nop");
}

TEST(Disassembler, CustomUsesRegisteredNames) {
  DisassemblerOptions options;
  options.custom_mnemonics[3] = "gfmul";
  EXPECT_EQ(disassemble(make_custom(3, 1, 2, 3), options),
            "gfmul r1, r2, r3");
  EXPECT_EQ(disassemble(make_custom(9, 1, 2, 3), options),
            "custom.9 r1, r2, r3");
}

/// Round trip: assemble a program, disassemble each word, re-assemble the
/// mnemonic forms that are position independent, and compare encodings.
TEST(Disassembler, ReassemblesPositionIndependentForms) {
  const char* lines[] = {
      "add r3, r4, r5", "sub r1, r2, r3",  "sll r9, r8, r7",
      "addi r3, r4, -100", "ori r3, r4, 1234", "lw r10, 44(r2)",
      "sw r11, -8(r2)", "lb r5, 0(r6)",     "nop",
  };
  for (const char* line : lines) {
    const ProgramImage image = assemble(std::string(line) + "\n");
    const std::uint32_t word = image.read_word(kTextBase).value();
    const std::string text = disassemble_word(word);
    const ProgramImage again = assemble(text + "\n");
    EXPECT_EQ(again.read_word(kTextBase).value(), word) << line;
  }
}

// --- ProgramImage ---------------------------------------------------------------

TEST(ProgramImage, OverlappingSegmentsRejected) {
  ProgramImage image;
  image.add_segment(Segment{100, {1, 2, 3, 4}});
  EXPECT_THROW(image.add_segment(Segment{102, {9}}), Error);
  EXPECT_NO_THROW(image.add_segment(Segment{104, {9}}));
}

TEST(ProgramImage, SymbolRedefinitionRejected) {
  ProgramImage image;
  image.define_symbol("x", 4);
  EXPECT_NO_THROW(image.define_symbol("x", 4));
  EXPECT_THROW(image.define_symbol("x", 8), Error);
}

TEST(ProgramImage, ReadWordAcrossGapIsNullopt) {
  ProgramImage image;
  image.add_segment(Segment{100, {1, 2}});
  EXPECT_FALSE(image.read_word(100).has_value());
}

}  // namespace
}  // namespace exten::isa
