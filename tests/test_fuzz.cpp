// Tests for the deterministic fuzzing subsystem (src/fuzz/).
//
// The budgeted smokes here run every builtin target for a small iteration
// count; the longer runs live behind `ctest -L fuzz` (registered in
// tests/CMakeLists.txt) and in CI. The injected-bug test simulates the
// headline acceptance property end to end: a target whose oracle diverges
// (two timing configs instead of two engines) is caught by run_target and
// minimized to a payload that still reproduces the divergence.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fuzz/fuzz.h"
#include "fuzz/gen_program.h"
#include "fuzz/gen_tie.h"
#include "fuzz/targets.h"
#include "isa/assembler.h"
#include "service/content_hash.h"
#include "sim/cpu.h"
#include "tie/compiler.h"
#include "util/error.h"

namespace exten::fuzz {
namespace {

TEST(Fuzz, BuiltinTargetRegistry) {
  const std::vector<const Target*>& targets = builtin_targets();
  std::vector<std::string> names;
  for (const Target* t : targets) names.emplace_back(t->name());
  const std::vector<std::string> expected = {
      "engine_diff", "tie_diff", "asm", "disasm", "image", "json", "http"};
  EXPECT_EQ(names, expected);
  for (const Target* t : targets) {
    EXPECT_EQ(find_target(t->name()), t);
    EXPECT_FALSE(t->description().empty());
  }
  EXPECT_EQ(find_target("no_such_target"), nullptr);
}

TEST(Fuzz, GenerationIsDeterministic) {
  const Corpus empty;
  for (const Target* target : builtin_targets()) {
    for (std::uint64_t seed : {1ULL, 99ULL}) {
      Rng a(Rng::derive_seed(seed, 3));
      Rng b(Rng::derive_seed(seed, 3));
      EXPECT_EQ(target->generate(a, empty), target->generate(b, empty))
          << target->name() << " seed " << seed;
    }
  }
}

TEST(Fuzz, EveryTargetSmokeIterationsPass) {
  // Budgeted in-tree smoke; CI and `ctest -L fuzz` run the long version.
  for (const Target* target : builtin_targets()) {
    RunOptions options;
    options.seed = 12;
    options.iterations = 120;
    const std::optional<Failure> failure = run_target(*target, options);
    EXPECT_FALSE(failure.has_value())
        << target->name() << " failed at iteration " << failure->iteration
        << ": " << failure->message;
  }
}

TEST(Fuzz, EngineDiffPayloadRoundTrip) {
  EngineDiffCase original;
  original.config.icache_miss_penalty = 7;
  original.config.dcache_miss_penalty = 0;
  original.config.taken_branch_penalty = 3;
  original.config.jump_penalty = 2;
  original.config.load_use_interlock = 0;
  original.config.uncached_fetch_penalty = 4;
  original.config.uncached_data_penalty = 5;
  original.config.icache.size_bytes = 1024;
  original.config.icache.line_bytes = 16;
  original.config.icache.ways = 2;
  original.tie_source =
      "instruction xor3 {\n  reads rs1\n  reads rs2\n  writes rd\n"
      "  use logic width=32\n  semantics { rd = rs1 ^ rs2 ^ 3; }\n}\n";
  original.asm_source = "  li r3, 5\n  halt\n";

  const EngineDiffCase parsed =
      parse_engine_diff_payload(make_engine_diff_payload(original));
  EXPECT_EQ(parsed.config.icache_miss_penalty, 7u);
  EXPECT_EQ(parsed.config.dcache_miss_penalty, 0u);
  EXPECT_EQ(parsed.config.taken_branch_penalty, 3u);
  EXPECT_EQ(parsed.config.jump_penalty, 2u);
  EXPECT_EQ(parsed.config.load_use_interlock, 0u);
  EXPECT_EQ(parsed.config.uncached_fetch_penalty, 4u);
  EXPECT_EQ(parsed.config.uncached_data_penalty, 5u);
  EXPECT_EQ(parsed.config.icache.size_bytes, 1024u);
  EXPECT_EQ(parsed.config.icache.line_bytes, 16u);
  EXPECT_EQ(parsed.config.icache.ways, 2u);
  EXPECT_EQ(parsed.tie_source, original.tie_source);
  EXPECT_EQ(parsed.asm_source, original.asm_source);

  // A bare program with no %-markers is a valid payload: all program text.
  const EngineDiffCase bare = parse_engine_diff_payload("  halt\n");
  EXPECT_EQ(bare.asm_source, "  halt\n");
  EXPECT_TRUE(bare.tie_source.empty());
}

TEST(Fuzz, GeneratedEngineDiffCasesPass) {
  // The exposed structured generator + oracle, driven directly (the same
  // path test_engine_diff.cpp uses for its generator-backed tests).
  for (std::uint64_t iteration = 0; iteration < 40; ++iteration) {
    Rng rng(Rng::derive_seed(77, iteration));
    const EngineDiffCase c = generate_engine_diff_case(rng);
    const Outcome outcome = run_engine_diff(c);
    EXPECT_TRUE(outcome.ok) << "iteration " << iteration << ": "
                            << outcome.message;
  }
}

TEST(Fuzz, ReproTextRoundTrip) {
  Failure failure;
  failure.target = "engine_diff";
  failure.seed = 42;
  failure.iteration = 1234;
  failure.payload = "line one\n";
  failure.payload.push_back('\0');  // binary bytes survive the byte count
  failure.payload.push_back('\x01');
  failure.payload.push_back('\xff');
  failure.payload += "binary\nno trailing newline";
  failure.message = "digest mismatch\nwith a second line";

  const Failure parsed = parse_repro_text(write_repro_text(failure));
  EXPECT_EQ(parsed.target, failure.target);
  EXPECT_EQ(parsed.seed, failure.seed);
  EXPECT_EQ(parsed.iteration, failure.iteration);
  EXPECT_EQ(parsed.payload, failure.payload);
}

TEST(Fuzz, ReproTextRejectsMalformed) {
  EXPECT_THROW(parse_repro_text(""), Error);
  EXPECT_THROW(parse_repro_text("not a repro\n"), Error);
  EXPECT_THROW(parse_repro_text("xtc-fuzz repro v1\ntarget asm\n"), Error);
  // Truncated payload: header claims more bytes than present.
  EXPECT_THROW(
      parse_repro_text("xtc-fuzz repro v1\ntarget asm\n"
                       "seed 1 iteration 2\npayload 100\nshort\n"),
      Error);
}

TEST(Fuzz, CorpusLoadsDirectorySortedAndToleratesMissing) {
  const Corpus corpus = Corpus::load_directory(EXTEN_CORPUS_DIR "/json");
  ASSERT_FALSE(corpus.empty());
  EXPECT_GE(corpus.entries().size(), 4u);
  for (const std::string& entry : corpus.entries()) {
    EXPECT_FALSE(entry.empty());
  }
  // Directory loads sort by file name, so two loads agree entry-for-entry.
  const Corpus again = Corpus::load_directory(EXTEN_CORPUS_DIR "/json");
  EXPECT_EQ(corpus.entries(), again.entries());

  EXPECT_TRUE(Corpus::load_directory("/no/such/directory").empty());
}

/// Oracle that fails iff the payload contains a marker line. Minimization
/// must keep exactly the lines needed for the failure.
class MarkerTarget final : public Target {
 public:
  std::string_view name() const override { return "test_marker"; }
  std::string_view description() const override { return "test helper"; }
  bool shrink_lines() const override { return true; }
  std::string generate(Rng&, const Corpus&) const override { return {}; }
  Outcome run(const std::string& payload) const override {
    if (payload.find("NEEDLE") != std::string::npos) {
      return Outcome::fail("found the needle");
    }
    return Outcome::pass();
  }
};

TEST(Fuzz, MinimizeShrinksToFailingCore) {
  MarkerTarget target;
  std::string payload;
  for (int i = 0; i < 40; ++i) payload += "filler line " + std::to_string(i) + "\n";
  payload += "the NEEDLE line\n";
  for (int i = 0; i < 40; ++i) payload += "more filler " + std::to_string(i) + "\n";

  std::string message;
  const std::string minimized = minimize(target, payload, &message, 600);
  EXPECT_FALSE(target.run(minimized).ok);
  EXPECT_NE(minimized.find("NEEDLE"), std::string::npos);
  EXPECT_LT(minimized.size(), 40u) << "minimized to: " << minimized;
  EXPECT_EQ(message, "found the needle");
}

/// Simulates an injected engine bug as a differential target: the same
/// generated program timed under two configs that differ only in the
/// load-use interlock penalty. Any program with a load-use hazard
/// diverges, so run_target must find one and minimize it down to the
/// hazard itself — the same catch-and-minimize path a real engine bug
/// takes through the engine_diff target.
class InterlockBugTarget final : public Target {
 public:
  std::string_view name() const override { return "test_interlock_bug"; }
  std::string_view description() const override { return "test helper"; }
  bool shrink_lines() const override { return true; }

  std::string generate(Rng& rng, const Corpus&) const override {
    ProgramGenOptions options;
    options.blocks = 6;
    options.allow_loops = false;
    return generate_program(rng, options);
  }

  Outcome run(const std::string& payload) const override {
    isa::ProgramImage image;
    try {
      image = isa::assemble(payload);
    } catch (const Error&) {
      return Outcome::pass();  // shrink candidates may not assemble
    }
    std::uint64_t with = 0;
    std::uint64_t without = 0;
    try {
      with = cycles(image, 2);
      without = cycles(image, 0);
    } catch (const Error&) {
      return Outcome::pass();  // shrink candidates may fault or run away
    }
    if (with != without) {
      return Outcome::fail("interlock-sensitive: " + std::to_string(with) +
                           " vs " + std::to_string(without) + " cycles");
    }
    return Outcome::pass();
  }

 private:
  static std::uint64_t cycles(const isa::ProgramImage& image,
                              unsigned interlock) {
    sim::ProcessorConfig config;
    config.load_use_interlock = interlock;
    sim::Cpu cpu(config, tie::TieConfiguration{}, sim::Engine::kFast);
    cpu.load_program(image);
    return cpu.run(200'000).cycles;
  }
};

TEST(Fuzz, InjectedTimingBugIsCaughtAndMinimized) {
  InterlockBugTarget target;
  RunOptions options;
  options.seed = 3;
  options.iterations = 50;
  const std::optional<Failure> failure = run_target(target, options);
  ASSERT_TRUE(failure.has_value())
      << "no generated program hit a load-use hazard in 50 cases";
  EXPECT_EQ(failure->target, "test_interlock_bug");
  // The minimized payload still reproduces and is a fraction of a full
  // generated program (a hazard needs only a load + consumer + halt).
  EXPECT_FALSE(target.run(failure->payload).ok);
  EXPECT_LT(failure->payload.size(), 200u)
      << "minimized payload:\n" << failure->payload;
}

TEST(Fuzz, RunTargetIsBitReproducible) {
  InterlockBugTarget target;
  RunOptions options;
  options.seed = 3;
  options.iterations = 50;
  const std::optional<Failure> a = run_target(target, options);
  const std::optional<Failure> b = run_target(target, options);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->iteration, b->iteration);
  EXPECT_EQ(a->payload, b->payload);
  EXPECT_EQ(a->message, b->message);
}

TEST(Fuzz, GeneratedTieSpecsCompile) {
  for (std::uint64_t iteration = 0; iteration < 60; ++iteration) {
    Rng rng(Rng::derive_seed(5150, iteration));
    const std::string spec = generate_tie_spec(rng);
    EXPECT_NO_THROW(tie::compile_tie_source(spec))
        << "iteration " << iteration << " spec:\n" << spec;
  }
}

// Seed-stability goldens: a fixed seed must expand to the same spec on
// every platform and across refactors of the generator. The DSE genome
// encoding (src/dse/genome.h) stores seeds, not source text, so any
// change to the draw sequence silently remaps every checkpointed search
// space — these digests turn that into a loud failure. If a generator
// change is *intentional*, recompute the digests and note the break in
// the commit message (old checkpoints stop being comparable).
TEST(Fuzz, TieSpecDigestsAreSeedStable) {
  const struct {
    std::uint64_t seed;
    const char* digest;
    std::size_t length;
  } kGolden[] = {
      {1, "9578e5187901471f8002e5581b32dcaf", 604},
      {42, "403fa923b07e27750af9ea5c0ca14127", 684},
      {0xdeadbeef, "a91a0a4f1dbb2501ac0287e5c7e0c003", 750},
  };
  for (const auto& g : kGolden) {
    Rng rng(g.seed);
    const std::string spec = generate_tie_spec(rng);
    service::ContentHasher hasher;
    hasher.str(spec);
    EXPECT_EQ(hasher.digest().hex(), g.digest) << "seed " << g.seed
                                               << " spec:\n" << spec;
    EXPECT_EQ(spec.size(), g.length) << "seed " << g.seed;
  }
}

TEST(Fuzz, TieDeclAndInstructionDigestsAreSeedStable) {
  Rng decl_rng(2);
  TieDeclNames names;
  const std::string decls = generate_tie_decls(decl_rng, {}, &names);
  service::ContentHasher decl_hasher;
  decl_hasher.str(decls);
  EXPECT_EQ(decl_hasher.digest().hex(), "0047368ae4cf5be5295c29f0ac4edebb")
      << decls;
  ASSERT_EQ(names.states.size(), 2u);
  ASSERT_EQ(names.regfiles.size(), 1u);
  ASSERT_EQ(names.tables.size(), 1u);

  // The instruction draw sequence is independent of the decl stream: the
  // same instruction seed over the same declaration context is stable.
  Rng instr_rng(9);
  const std::string instr =
      generate_tie_instruction(instr_rng, "fz0", names, {});
  service::ContentHasher instr_hasher;
  instr_hasher.str(instr);
  EXPECT_EQ(instr_hasher.digest().hex(), "5a0c39655d8afda2ec45a843b0179cbe")
      << instr;
}

TEST(Fuzz, DeclNamesPointerIsOptional) {
  Rng a(2), b(2);
  TieDeclNames names;
  EXPECT_EQ(generate_tie_decls(a, {}, nullptr),
            generate_tie_decls(b, {}, &names));
}

TEST(Fuzz, GeneratedProgramsAssembleAndTerminate) {
  for (std::uint64_t iteration = 0; iteration < 60; ++iteration) {
    Rng rng(Rng::derive_seed(6010, iteration));
    ProgramGenOptions options;
    options.blocks = 12;
    options.allow_self_modify = (iteration % 2) == 0;
    options.allow_uncached = (iteration % 3) == 0;
    const std::string source = generate_program(rng, options);
    isa::ProgramImage image;
    ASSERT_NO_THROW(image = isa::assemble(source))
        << "iteration " << iteration << " source:\n" << source;
    sim::Cpu cpu(sim::ProcessorConfig{}, tie::TieConfiguration{},
                 sim::Engine::kFast);
    cpu.load_program(image);
    const sim::RunResult result = cpu.run(2'000'000);
    EXPECT_TRUE(result.halted) << "iteration " << iteration
                               << " did not halt:\n" << source;
  }
}

}  // namespace
}  // namespace exten::fuzz
