// Tests for the net/ subsystem: the incremental HTTP parser under
// adversarial inputs (truncated lines, oversized headers, bodies split
// across arbitrary read boundaries, pipelining), the poller backends, the
// latency histogram, and the HttpServer end to end over real sockets —
// including the robustness contract: backpressure (503), deadline expiry
// (504) cancelling queued jobs, malformed-input rejection, keep-alive and
// graceful drain.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fuzz/fuzz.h"
#include "model/test_program.h"
#include "net/api.h"
#include "net/http.h"
#include "net/http_client.h"
#include "net/metrics.h"
#include "net/poller.h"
#include "net/server.h"
#include "net/sharded_server.h"
#include "net/socket.h"
#include "obs/trace.h"
#include "service/batch_estimator.h"
#include "util/error.h"
#include "util/json.h"
#include "util/strings.h"

namespace exten::net {
namespace {

// --- fixtures --------------------------------------------------------------

model::EnergyMacroModel flat_model() {
  linalg::Vector coefficients(model::kNumVariables, 100.0);
  return model::EnergyMacroModel(std::move(coefficients));
}

constexpr const char* kTinyAsm =
    "  addi r1, r0, 5\n  addi r2, r0, 7\n  add r3, r1, r2\n  halt\n";

// Misaligned load: the simulator raises an alignment fault.
constexpr const char* kFaultingAsm = "  li t1, 1\n  lw t0, 0(t1)\n  halt\n";

// ~20M instructions: long enough that a short deadline expires while it
// runs, short enough to keep the suite quick.
constexpr const char* kSlowAsm =
    "  li t0, 10000000\nloop:\n  addi t0, t0, -1\n  bnez t0, loop\n  halt\n";

std::string estimate_body(std::string_view name, std::string_view asm_source,
                          int deadline_ms = 0) {
  JsonWriter w;
  w.begin_object();
  w.field("name", name);
  w.field("asm", asm_source);
  if (deadline_ms > 0) w.field("deadline_ms", deadline_ms);
  w.end_object();
  return w.str();
}

std::string wire_post(std::string_view target, std::string_view body) {
  return serialize_request("POST", target, "test", body, "application/json");
}

// --- RequestParser: happy paths --------------------------------------------

TEST(RequestParser, ParsesSimpleGetInOneFeed) {
  RequestParser parser;
  EXPECT_EQ(parser.feed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"),
            RequestParser::Status::kComplete);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/healthz");
  EXPECT_EQ(parser.request().version, "HTTP/1.1");
  EXPECT_TRUE(parser.request().keep_alive());
  EXPECT_TRUE(parser.request().body.empty());
}

TEST(RequestParser, PathStripsQueryString) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("GET /metrics?format=text HTTP/1.1\r\n\r\n"),
            RequestParser::Status::kComplete);
  EXPECT_EQ(parser.request().path(), "/metrics");
}

// --- RequestParser: split-schedule invariance over the corpus ---------------
//
// The parser's contract is that feed() accepts ANY chunking of the input:
// the final parse must not depend on where read(2) happened to split the
// bytes. These tests enforce that exhaustively — every 2-chunk split point
// and a full byte-at-a-time feed — over every wire in tests/corpus/http/
// (good requests, pipelined requests, and ones the parser must reject)
// plus the service wires the rest of this suite uses. The corpus lives on
// disk so xtc-fuzz's http target mutates the same seed set.

/// Everything observable about a finished parse. For kError only the
/// status and rejection code are compared: feed() discards input once in
/// the error state ("answer and close"), so buffered_bytes is legitimately
/// schedule-dependent there.
struct ParseObservation {
  RequestParser::Status status = RequestParser::Status::kNeedMore;
  int error_status = 0;
  std::string method, target, version, body;
  bool keep_alive = false;
  std::size_t buffered = 0;

  bool operator==(const ParseObservation& other) const {
    if (status != other.status) return false;
    if (status == RequestParser::Status::kError) {
      return error_status == other.error_status;
    }
    return method == other.method && target == other.target &&
           version == other.version && body == other.body &&
           keep_alive == other.keep_alive && buffered == other.buffered;
  }
};

ParseObservation observe(RequestParser& parser) {
  ParseObservation o;
  o.status = parser.status();
  if (o.status == RequestParser::Status::kError) {
    o.error_status = parser.error_status();
    return o;
  }
  o.buffered = parser.buffered_bytes();
  if (o.status == RequestParser::Status::kComplete) {
    o.method = parser.request().method;
    o.target = parser.request().target;
    o.version = parser.request().version;
    o.body = parser.request().body;
    o.keep_alive = parser.request().keep_alive();
  }
  return o;
}

std::vector<std::string> corpus_wires() {
  const fuzz::Corpus corpus =
      fuzz::Corpus::load_directory(EXTEN_CORPUS_DIR "/http");
  std::vector<std::string> wires = corpus.entries();
  // The wires the service tests use must stay in the covered set even if
  // the on-disk corpus changes.
  wires.push_back(wire_post("/v1/estimate", "{\"asm\": \"halt\"}"));
  wires.push_back(wire_post("/v1/batch", "{\"jobs\": []}"));
  return wires;
}

TEST(RequestParser, CorpusEveryTwoChunkSplitMatchesSingleFeed) {
  const std::vector<std::string> wires = corpus_wires();
  ASSERT_GE(wires.size(), 10u) << "http corpus missing";
  for (const std::string& wire : wires) {
    RequestParser whole;
    whole.feed(wire);
    const ParseObservation expected = observe(whole);
    for (std::size_t split = 0; split <= wire.size(); ++split) {
      RequestParser parser;
      parser.feed(std::string_view(wire).substr(0, split));
      parser.feed(std::string_view(wire).substr(split));
      EXPECT_TRUE(observe(parser) == expected)
          << "split at " << split << " diverges on wire:\n" << wire;
    }
  }
}

TEST(RequestParser, CorpusByteAtATimeFeedMatchesSingleFeed) {
  for (const std::string& wire : corpus_wires()) {
    RequestParser whole;
    whole.feed(wire);
    const ParseObservation expected = observe(whole);
    RequestParser parser;
    for (char byte : wire) parser.feed(std::string_view(&byte, 1));
    EXPECT_TRUE(observe(parser) == expected)
        << "byte-at-a-time diverges on wire:\n" << wire;
  }
}

TEST(RequestParser, CorpusCompleteRequestsStayCompleteUnderSplits) {
  // Sanity on the corpus itself: the known-good wires really complete and
  // the known-bad ones really error, so the invariance tests above are not
  // vacuously comparing error states.
  unsigned complete = 0, error = 0;
  for (const std::string& wire : corpus_wires()) {
    RequestParser parser;
    parser.feed(wire);
    if (parser.status() == RequestParser::Status::kComplete) ++complete;
    if (parser.status() == RequestParser::Status::kError) ++error;
  }
  EXPECT_GE(complete, 7u);
  EXPECT_GE(error, 2u);  // chunked_rejected.req, bad_version.req
}

TEST(RequestParser, PipelinedRequestsParseSequentially) {
  const std::string wire =
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
  RequestParser parser;
  ASSERT_EQ(parser.feed(wire), RequestParser::Status::kComplete);
  EXPECT_EQ(parser.request().target, "/a");
  EXPECT_GT(parser.buffered_bytes(), 0u);
  parser.reset();
  ASSERT_EQ(parser.status(), RequestParser::Status::kComplete);
  EXPECT_EQ(parser.request().target, "/b");
  parser.reset();
  EXPECT_EQ(parser.status(), RequestParser::Status::kNeedMore);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(RequestParser, ToleratesLeadingBlankLinesAndBareLf) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("\r\n\nPOST /x HTTP/1.1\nContent-Length: 2\n\nok"),
            RequestParser::Status::kComplete);
  EXPECT_EQ(parser.request().target, "/x");
  EXPECT_EQ(parser.request().body, "ok");
}

TEST(RequestParser, HeaderLookupIsCaseInsensitive) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("GET / HTTP/1.1\r\nX-Foo:  bar \r\n\r\n"),
            RequestParser::Status::kComplete);
  const std::string* value = parser.request().header("x-foo");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(*value, "bar");  // surrounding whitespace trimmed
}

TEST(RequestParser, KeepAliveSemantics) {
  RequestParser p1;
  p1.feed("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_FALSE(p1.request().keep_alive());
  RequestParser p2;
  p2.feed("GET / HTTP/1.0\r\n\r\n");
  EXPECT_FALSE(p2.request().keep_alive());
  RequestParser p3;
  p3.feed("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
  EXPECT_TRUE(p3.request().keep_alive());
}

// --- RequestParser: malformed and oversized inputs -------------------------

TEST(RequestParser, TruncatedRequestNeverCompletes) {
  RequestParser parser;
  EXPECT_EQ(parser.feed("POST /v1/estimate HTTP/1.1\r\nContent-Le"),
            RequestParser::Status::kNeedMore);
  EXPECT_EQ(parser.feed("ngth: 100\r\n\r\nshort"),
            RequestParser::Status::kNeedMore);  // body incomplete forever
}

TEST(RequestParser, MalformedRequestLineIs400) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("NONSENSE\r\n\r\n"), RequestParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParser, UnsupportedVersionIs505) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("GET / HTTP/2.0\r\n\r\n"),
            RequestParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 505);
}

TEST(RequestParser, OversizedRequestLineIs431) {
  RequestParser parser(ParserLimits{.max_request_line = 64});
  const std::string line = "GET /" + std::string(200, 'a') + " HTTP/1.1\r\n";
  ASSERT_EQ(parser.feed(line), RequestParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParser, OversizedHeaderSectionIs431) {
  ParserLimits limits;
  limits.max_header_bytes = 128;
  RequestParser parser(limits);
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 16; ++i) {
    wire += "X-Padding-" + std::to_string(i) + ": " + std::string(32, 'x') +
            "\r\n";
  }
  wire += "\r\n";
  ASSERT_EQ(parser.feed(wire), RequestParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParser, OversizedBodyIs413) {
  ParserLimits limits;
  limits.max_body_bytes = 16;
  RequestParser parser(limits);
  ASSERT_EQ(parser.feed("POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n"),
            RequestParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(RequestParser, BadContentLengthIs400) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            RequestParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParser, TransferEncodingIs501) {
  RequestParser parser;
  ASSERT_EQ(
      parser.feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
      RequestParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(RequestParser, ObsFoldIs400) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("GET / HTTP/1.1\r\nX-A: 1\r\n  folded\r\n\r\n"),
            RequestParser::Status::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParser, StaysInErrorStateOnFurtherFeeds) {
  RequestParser parser;
  ASSERT_EQ(parser.feed("BAD\r\n"), RequestParser::Status::kError);
  EXPECT_EQ(parser.feed("GET / HTTP/1.1\r\n\r\n"),
            RequestParser::Status::kError);
}

// --- Response serialization round trip -------------------------------------

TEST(HttpMessages, ResponseRoundTripsThroughResponseParser) {
  HttpResponse response;
  response.status = 503;
  response.body = "{\"error\":\"busy\"}";
  response.extra_headers.push_back({"Retry-After", "1"});
  const std::string wire = serialize_response(response, /*keep_alive=*/true);

  ResponseParser parser;
  ASSERT_EQ(parser.feed(wire), ResponseParser::Status::kComplete);
  EXPECT_EQ(parser.response().status, 503);
  EXPECT_EQ(parser.response().body, response.body);
  const std::string* retry = parser.response().header("retry-after");
  ASSERT_NE(retry, nullptr);
  EXPECT_EQ(*retry, "1");
}

TEST(HttpMessages, ResponseParserHandlesCloseDelimitedBody) {
  ResponseParser parser;
  parser.feed("HTTP/1.1 200 OK\r\nConnection: close\r\n\r\npartial bo");
  EXPECT_EQ(parser.status(), ResponseParser::Status::kNeedMore);
  parser.feed("dy");
  ASSERT_EQ(parser.feed_eof(), ResponseParser::Status::kComplete);
  EXPECT_EQ(parser.response().body, "partial body");
}

// --- Poller ----------------------------------------------------------------

class PollerBackends : public ::testing::TestWithParam<Poller::Backend> {};

TEST_P(PollerBackends, ReportsPipeReadability) {
  Poller poller(GetParam());
  Socket pipe[2];
  make_wake_pipe(pipe);
  poller.add(pipe[0].fd(), /*read=*/true, /*write=*/false);

  EXPECT_TRUE(poller.wait(0).empty());  // nothing pending
  ASSERT_EQ(::write(pipe[1].fd(), "x", 1), 1);
  const std::vector<Poller::Event>& events = poller.wait(1000);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].fd, pipe[0].fd());
  EXPECT_TRUE(events[0].readable);

  // Clearing the interest set silences the (level-triggered) event.
  poller.mod(pipe[0].fd(), /*read=*/false, /*write=*/false);
  EXPECT_TRUE(poller.wait(0).empty());
  poller.remove(pipe[0].fd());
  EXPECT_EQ(poller.watched(), 0u);
}

TEST_P(PollerBackends, ModOnUnregisteredFdThrows) {
  Poller poller(GetParam());
  EXPECT_THROW(poller.mod(42, true, false), Error);
}

INSTANTIATE_TEST_SUITE_P(Backends, PollerBackends,
                         ::testing::Values(Poller::Backend::kEpoll,
                                           Poller::Backend::kPoll),
                         [](const auto& info) {
                           return info.param == Poller::Backend::kEpoll
                                      ? "epoll"
                                      : "poll";
                         });

// --- LatencyHistogram ------------------------------------------------------

TEST(LatencyHistogram, QuantilesTrackObservations) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.observe(0.0002);  // -> 0.00025 bucket
  h.observe(2.0);                                  // one slow outlier
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.00025);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.00025);
  EXPECT_DOUBLE_EQ(h.quantile(0.999), 2.5);  // upper bound of 2.0's bucket
}

TEST(LatencyHistogram, RendersPrometheusText) {
  ServerMetrics metrics;
  metrics.record_request("estimate", 200, 0.001);
  metrics.on_backpressure_rejection();
  const std::string text = metrics.render(MetricsGauges{});
  EXPECT_NE(text.find("xtc_requests_total{endpoint=\"estimate\",code=\"200\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("xtc_backpressure_rejections_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("xtc_request_duration_seconds_bucket"),
            std::string::npos);
}

TEST(LatencyHistogram, OverflowQuantileIsInfinityNotTopBound) {
  LatencyHistogram h;
  for (int i = 0; i < 9; ++i) h.observe(0.0002);
  h.observe(50.0);  // above the 10s top bound -> overflow bucket
  bool overflow = true;
  EXPECT_DOUBLE_EQ(h.quantile(0.5, &overflow), 0.00025);
  EXPECT_FALSE(overflow);
  // The p99.9 lands on the overflow observation. Reporting the top bound
  // (10s) would understate it by an unknowable amount; the contract is
  // +Inf plus the out-param.
  EXPECT_TRUE(std::isinf(h.quantile(0.999, &overflow)));
  EXPECT_TRUE(overflow);
  EXPECT_TRUE(std::isinf(h.quantile(0.999)));  // out-param is optional
}

TEST(LatencyHistogram, CountsArePerBucketNotCumulative) {
  LatencyHistogram h;
  h.observe(0.00005);  // bucket 0: (0, 1e-4]
  h.observe(0.0002);   // bucket 1: (1e-4, 2.5e-4]
  h.observe(0.0002);
  h.observe(50.0);  // overflow bucket
  const std::vector<std::uint64_t>& counts = h.counts();
  ASSERT_EQ(counts.size(), h.bounds().size() + 1);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);  // cumulative would be 3
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts.back(), 1u);
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  EXPECT_EQ(total, h.count());
}

/// The metric family a sample belongs to: histogram samples carry a
/// _bucket/_sum/_count suffix on top of the family name.
std::string family_of(const std::string& sample_name) {
  for (const std::string_view suffix : {"_bucket", "_sum", "_count"}) {
    if (sample_name.size() > suffix.size() &&
        sample_name.compare(sample_name.size() - suffix.size(),
                            suffix.size(), suffix) == 0) {
      return sample_name.substr(0, sample_name.size() - suffix.size());
    }
  }
  return sample_name;
}

TEST(ServerMetrics, ExpositionHasHelpAndTypeForEveryFamily) {
  ServerMetrics metrics;
  metrics.record_request("estimate", 200, 0.001);
  metrics.observe_stage(Stage::kEvaluate, 0.002);
  metrics.on_backpressure_rejection();
  const std::string text = metrics.render(MetricsGauges{});

  // Walk the exposition like a Prometheus scraper: every sample line must
  // have been preceded by # HELP and # TYPE lines for its family.
  std::set<std::string> help_seen;
  std::set<std::string> type_seen;
  std::size_t samples = 0;
  for (std::string_view line : split_lines(text)) {
    if (line.empty()) continue;
    if (starts_with(line, "# HELP ")) {
      const std::string_view rest = line.substr(7);
      help_seen.insert(std::string(rest.substr(0, rest.find(' '))));
      continue;
    }
    if (starts_with(line, "# TYPE ")) {
      const std::string_view rest = line.substr(7);
      type_seen.insert(std::string(rest.substr(0, rest.find(' '))));
      continue;
    }
    ASSERT_FALSE(starts_with(line, "#")) << "unknown comment: " << line;
    ++samples;
    const std::string name(line.substr(0, line.find_first_of("{ ")));
    const std::string family = family_of(name);
    EXPECT_TRUE(help_seen.count(family)) << "no # HELP before " << line;
    EXPECT_TRUE(type_seen.count(family)) << "no # TYPE before " << line;
  }
  EXPECT_GT(samples, 20u);
}

TEST(ServerMetrics, EscapesLabelValues) {
  ServerMetrics metrics;
  // An endpoint label with every character the text format requires
  // escaping: backslash, double quote, newline.
  metrics.record_request("we\"ird\\end\npoint", 200, 0.001);
  const std::string text = metrics.render(MetricsGauges{});
  EXPECT_NE(text.find("endpoint=\"we\\\"ird\\\\end\\npoint\""),
            std::string::npos);
  EXPECT_EQ(text.find("end\npoint"), std::string::npos)
      << "raw newline leaked into a label value";
}

TEST(ServerMetrics, StageHistogramsRenderWithStageLabel) {
  ServerMetrics metrics;
  metrics.observe_stage(Stage::kQueueWait, 0.0002);
  metrics.observe_stage(Stage::kEvaluate, 0.05);
  const std::string text = metrics.render(MetricsGauges{});
  EXPECT_NE(text.find("# TYPE xtc_stage_duration_seconds histogram"),
            std::string::npos);
  EXPECT_NE(
      text.find("xtc_stage_duration_seconds_bucket{stage=\"queue_wait\""),
      std::string::npos);
  EXPECT_NE(text.find("xtc_stage_duration_seconds_count{stage=\"evaluate\"} 1"),
            std::string::npos);
  // All six stages render (zero-count ones included), so dashboards see a
  // stable label set from the first scrape.
  for (const char* stage :
       {"parse", "route", "queue_wait", "cache_probe", "evaluate",
        "respond"}) {
    EXPECT_NE(text.find("xtc_stage_duration_seconds_count{stage=\"" +
                        std::string(stage) + "\"}"),
              std::string::npos)
        << stage;
  }
}

// --- api request parsing ---------------------------------------------------

TEST(Api, RejectsUnknownObjective) {
  const JsonValue v = JsonValue::parse(
      "{\"objective\": \"speed\", \"candidates\": [{\"asm\": \"halt\"}]}");
  EXPECT_THROW(api::parse_rank_request(v, 10), Error);
}

TEST(Api, BatchErrorsNameTheOffendingJob) {
  const JsonValue v =
      JsonValue::parse("{\"jobs\": [{\"asm\": \"halt\"}, {\"name\": \"x\"}]}");
  try {
    api::parse_batch_request(v, 10);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("jobs[1]"), std::string::npos);
  }
}

// --- HttpServer end to end -------------------------------------------------

service::BatchOptions small_batch_options(unsigned threads = 2) {
  service::BatchOptions options;
  options.num_threads = threads;
  options.cache_capacity = 64;
  return options;
}

/// Runs a server on an ephemeral port in a background thread; stops and
/// joins on destruction.
class TestServer {
 public:
  explicit TestServer(
      ServerOptions options = {},
      service::BatchOptions batch_options = small_batch_options())
      : estimator_(flat_model(), batch_options),
        server_(estimator_, std::move(options)),
        thread_([this] { server_.run(); }) {}

  ~TestServer() {
    server_.request_stop();
    thread_.join();
  }

  std::uint16_t port() const { return server_.port(); }
  HttpServer& server() { return server_; }
  HttpClient client() { return HttpClient("127.0.0.1", port(), 30'000); }

 private:
  service::BatchEstimator estimator_;
  HttpServer server_;
  std::thread thread_;
};

TEST(HttpServer, HealthzAnswersOk) {
  TestServer ts;
  HttpClient client = ts.client();
  const auto response = client.get("/healthz");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body,
            "{\"status\":\"ok\",\"energy_backend\":\"none\"}");
}

TEST(HttpServer, EstimateReturnsEnergyAndBreakdown) {
  TestServer ts;
  HttpClient client = ts.client();
  const auto response =
      client.post("/v1/estimate", estimate_body("tiny", kTinyAsm));
  ASSERT_EQ(response.status, 200);
  const JsonValue body = JsonValue::parse(response.body);
  EXPECT_TRUE(body.find("ok")->as_bool());
  EXPECT_GT(body.find("energy_pj")->as_number(), 0.0);
  EXPECT_GT(body.find("cycles")->as_number(), 0.0);
  ASSERT_NE(body.find("breakdown_pj"), nullptr);
  // Four instructions at 100 pJ each on the flat model.
  EXPECT_DOUBLE_EQ(body.find("breakdown_pj")->find("N_a")->as_number(),
                   400.0);
}

TEST(HttpServer, RepeatedEstimateHitsTheCache) {
  TestServer ts;
  HttpClient client = ts.client();
  const std::string body = estimate_body("tiny", kTinyAsm);
  const auto first = client.post("/v1/estimate", body);
  const auto second = client.post("/v1/estimate", body);
  ASSERT_EQ(first.status, 200);
  ASSERT_EQ(second.status, 200);
  EXPECT_FALSE(JsonValue::parse(first.body).find("cache_hit")->as_bool());
  EXPECT_TRUE(JsonValue::parse(second.body).find("cache_hit")->as_bool());
}

TEST(HttpServer, KeepAliveReusesOneConnection) {
  TestServer ts;
  HttpClient client = ts.client();
  for (int i = 0; i < 5; ++i) {
    const auto response = client.get("/healthz");
    EXPECT_EQ(response.status, 200);
  }
  EXPECT_TRUE(client.connected());
}

TEST(HttpServer, MalformedJsonIs400) {
  TestServer ts;
  HttpClient client = ts.client();
  const auto response = client.post("/v1/estimate", "{not json");
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(JsonValue::parse(response.body).find("error"), nullptr);
}

TEST(HttpServer, FaultingProgramIsIsolatedNotFatal) {
  TestServer ts;
  HttpClient client = ts.client();
  const auto bad =
      client.post("/v1/estimate", estimate_body("bad", kFaultingAsm));
  ASSERT_EQ(bad.status, 200);  // transport ok; the job itself failed
  const JsonValue body = JsonValue::parse(bad.body);
  EXPECT_FALSE(body.find("ok")->as_bool());
  EXPECT_FALSE(body.find("error")->as_string().empty());
  // The server survives: a healthy request still works.
  EXPECT_EQ(client.get("/healthz").status, 200);
}

TEST(HttpServer, UnknownEndpointIs404) {
  TestServer ts;
  HttpClient client = ts.client();
  EXPECT_EQ(client.get("/nope").status, 404);
}

TEST(HttpServer, WrongMethodIs405) {
  TestServer ts;
  HttpClient client = ts.client();
  EXPECT_EQ(client.get("/v1/estimate").status, 405);
  EXPECT_EQ(client.post("/healthz", "{}").status, 405);
}

TEST(HttpServer, BatchMixesSuccessesAndFailures) {
  TestServer ts;
  HttpClient client = ts.client();
  JsonWriter w;
  w.begin_object();
  w.array_field("jobs");
  w.element_object();
  w.field("name", std::string_view("good"));
  w.field("asm", std::string_view(kTinyAsm));
  w.end_object();
  w.element_object();
  w.field("name", std::string_view("bad"));
  w.field("asm", std::string_view(kFaultingAsm));
  w.end_object();
  w.end_array();
  w.end_object();
  const auto response = client.post("/v1/batch", w.str());
  ASSERT_EQ(response.status, 200);
  const JsonValue body = JsonValue::parse(response.body);
  EXPECT_EQ(body.find("jobs")->as_number(), 2.0);
  EXPECT_EQ(body.find("succeeded")->as_number(), 1.0);
  EXPECT_EQ(body.find("failed")->as_number(), 1.0);
  const JsonValue::Array& results = body.find("results")->as_array();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].find("ok")->as_bool());
  EXPECT_FALSE(results[1].find("ok")->as_bool());
}

TEST(HttpServer, RankOrdersCandidatesByObjective) {
  TestServer ts;
  HttpClient client = ts.client();
  JsonWriter w;
  w.begin_object();
  w.field("objective", std::string_view("energy"));
  w.array_field("candidates");
  w.element_object();
  w.field("name", std::string_view("long"));
  w.field("asm", std::string_view(
                     "  addi r1, r0, 1\n  addi r2, r0, 2\n"
                     "  addi r3, r0, 3\n  halt\n"));
  w.end_object();
  w.element_object();
  w.field("name", std::string_view("short"));
  w.field("asm", std::string_view("  addi r1, r0, 1\n  halt\n"));
  w.end_object();
  w.end_array();
  w.end_object();
  const auto response = client.post("/v1/rank", w.str());
  ASSERT_EQ(response.status, 200);
  const JsonValue body = JsonValue::parse(response.body);
  const JsonValue::Array& ranked = body.find("ranked")->as_array();
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].find("name")->as_string(), "short");
  EXPECT_EQ(ranked[1].find("name")->as_string(), "long");
}

TEST(HttpServer, MetricsExposeRequestCounters) {
  TestServer ts;
  HttpClient client = ts.client();
  ASSERT_EQ(client.post("/v1/estimate", estimate_body("t", kTinyAsm)).status,
            200);
  const auto response = client.get("/metrics");
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.body.find(
                "xtc_requests_total{endpoint=\"estimate\",code=\"200\"} 1"),
            std::string::npos);
  EXPECT_NE(response.body.find("xtc_cache_misses_total 1"),
            std::string::npos);
  EXPECT_NE(response.body.find("xtc_cache_insertions_total 1"),
            std::string::npos);
  EXPECT_NE(response.body.find("xtc_queue_capacity"), std::string::npos);
}

TEST(HttpServer, MetricsExposeStageHistograms) {
  TestServer ts;
  HttpClient client = ts.client();
  ASSERT_EQ(client.post("/v1/estimate", estimate_body("t", kTinyAsm)).status,
            200);
  const std::string text = client.get("/metrics").body;
  // The estimate exchange observed every stage once. The /metrics request
  // itself had its parse stage recorded before the exposition rendered
  // (route/respond for it land after), hence parse = 2.
  const struct {
    const char* stage;
    int count;
  } kExpected[] = {{"parse", 2},       {"route", 1},    {"queue_wait", 1},
                   {"cache_probe", 1}, {"evaluate", 1}, {"respond", 1}};
  for (const auto& expected : kExpected) {
    EXPECT_NE(text.find("xtc_stage_duration_seconds_count{stage=\"" +
                        std::string(expected.stage) + "\"} " +
                        std::to_string(expected.count)),
              std::string::npos)
        << expected.stage;
  }
}

// --- tracing end to end ----------------------------------------------------

constexpr const char* kNetMacTie = R"(
state acc width=32
instruction cma {
  latency 2
  reads rs1, rs2
  use tie_mac width=32
  semantics { acc = acc + rs1 * rs2; }
}
)";

// ~3M instructions of TIE-bearing work: heavy enough that evaluation
// dominates the request latency, so the stage-sum acceptance check below
// is meaningful (a trivial program's latency is all event-loop wakeups).
constexpr const char* kMacLoopAsm =
    "  li r1, 3\n  li r2, 4\n  li r4, 1000000\n"
    "loop:\n  cma r1, r2\n  addi r4, r4, -1\n  bnez r4, loop\n  halt\n";

std::string batch_body_with_tie(std::string_view name) {
  JsonWriter w;
  w.begin_object();
  w.array_field("jobs");
  w.element_object();
  w.field("name", name);
  w.field("asm", std::string_view(kMacLoopAsm));
  w.field("tie", std::string_view(kNetMacTie));
  w.end_object();
  w.end_array();
  w.end_object();
  return w.str();
}

/// Leaves tracing disabled and the rings empty for the rest of the suite.
class ScopedTracing {
 public:
  ScopedTracing() {
    obs::Tracer::instance().clear();
    obs::Tracer::instance().set_enabled(true);
  }
  ~ScopedTracing() {
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().clear();
  }
};

TEST(HttpServer, TraceEndpointServesChromeTraceJson) {
  TestServer ts;
  HttpClient client = ts.client();
  EXPECT_EQ(client.post("/v1/trace", "{}").status, 405);
  const auto response = client.get("/v1/trace");
  ASSERT_EQ(response.status, 200);
  // Valid Chrome trace JSON even with tracing disabled (empty trace).
  const JsonValue body = JsonValue::parse(response.body);
  ASSERT_NE(body.find("traceEvents"), nullptr);
}

// The tentpole acceptance: a traced batch request produces spans that
// nest server -> service -> engine -> tie under one correlation id, with
// per-stage durations consistent with the request latency.
TEST(HttpServer, TracedBatchNestsServerServiceEngineTie) {
  ScopedTracing tracing;
  TestServer ts;
  HttpClient client = ts.client();
  // Warm-up on a different program: registers the worker threads' span
  // rings so the measured request doesn't pay their one-time allocation.
  ASSERT_EQ(
      client.post("/v1/estimate", estimate_body("warm", kTinyAsm)).status,
      200);
  obs::Tracer::instance().clear();

  const auto response = client.post("/v1/batch", batch_body_with_tie("mac"));
  ASSERT_EQ(response.status, 200);
  const JsonValue body = JsonValue::parse(response.body);
  const JsonValue::Array& results = body.find("results")->as_array();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].find("ok")->as_bool());
  const JsonValue* stages = results[0].find("stages");
  ASSERT_NE(stages, nullptr);  // per-job stage timings in the API response
  EXPECT_GE(stages->find("queue_seconds")->as_number(), 0.0);
  EXPECT_GT(stages->find("cache_probe_seconds")->as_number(), 0.0);
  EXPECT_GT(stages->find("evaluate_seconds")->as_number(), 0.0);

  obs::Tracer::instance().set_enabled(false);
  const std::vector<obs::Span> spans = obs::Tracer::instance().snapshot();

  const auto find = [&](std::string_view name) -> const obs::Span* {
    for (const obs::Span& span : spans) {
      if (span.name != nullptr && name == span.name) return &span;
    }
    return nullptr;
  };

  const obs::Span* request = find("batch");
  ASSERT_NE(request, nullptr) << "no request span";
  EXPECT_EQ(request->category, obs::Category::kServer);
  ASSERT_NE(request->id, 0u);

  // Every layer contributed a span carrying the request's correlation id.
  const struct {
    const char* name;
    obs::Category category;
  } kExpected[] = {
      {"http_parse", obs::Category::kServer},
      {"route", obs::Category::kServer},
      {"tie_compile", obs::Category::kTie},
      {"queue_wait", obs::Category::kService},
      {"job", obs::Category::kService},
      {"cache_probe", obs::Category::kService},
      {"evaluate", obs::Category::kService},
      {"run_fast", obs::Category::kEngine},
      {"tie_execute", obs::Category::kTie},
  };
  for (const auto& expected : kExpected) {
    const obs::Span* span = find(expected.name);
    ASSERT_NE(span, nullptr) << expected.name;
    EXPECT_EQ(span->category, expected.category) << expected.name;
    EXPECT_EQ(span->id, request->id) << expected.name;
  }

  // Nesting: the service/engine work happens inside the request window
  // (http_parse legitimately ends where the window begins).
  for (const char* inner : {"route", "job", "evaluate", "run_fast"}) {
    const obs::Span* span = find(inner);
    EXPECT_GE(span->start_ns, request->start_ns) << inner;
    EXPECT_LE(span->end_ns(), request->end_ns()) << inner;
  }
  const obs::Span* evaluate = find("evaluate");
  const obs::Span* run = find("run_fast");
  EXPECT_GE(run->start_ns, evaluate->start_ns);
  EXPECT_LE(run->end_ns(), evaluate->end_ns());
  EXPECT_EQ(run->depth, find("job")->depth + 2);  // job > evaluate > run

  // The TIE attribution counted every cma the loop executed.
  const obs::Span* tie = find("tie_execute");
  ASSERT_STREQ(tie->counter_name[0], "custom_ops");
  EXPECT_EQ(tie->counter_value[0], 1'000'000u);

  // Per-stage durations reconcile with the request latency: the disjoint
  // stages (route covers dispatch; queue wait, cache probe and the
  // evaluation cover the worker) account for most of the request and
  // never exceed it by more than bookkeeping noise.
  const double dur = request->dur_seconds();
  const double stage_sum =
      find("route")->dur_seconds() + find("queue_wait")->dur_seconds() +
      find("cache_probe")->dur_seconds() + find("evaluate")->dur_seconds();
  EXPECT_LE(stage_sum, 1.10 * dur);
  EXPECT_GE(stage_sum, 0.5 * dur)
      << "stages only account for " << (100.0 * stage_sum / dur)
      << "% of the request";
}

// Raw-socket tests: drive the server below the HttpClient abstraction.
std::string raw_exchange(std::uint16_t port, std::string_view bytes) {
  Socket socket = connect_tcp("127.0.0.1", port, 5000);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::write(socket.fd(), bytes.data() + sent, bytes.size() - sent);
    if (n <= 0 && errno == EINTR) continue;
    EXTEN_CHECK(n > 0, "raw write failed");
    sent += static_cast<std::size_t>(n);
  }
  std::string received;
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(socket.fd(), buf, sizeof(buf));
    if (n > 0) {
      received.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF or timeout
  }
  return received;
}

TEST(HttpServer, GarbageRequestGets400AndClose) {
  TestServer ts;
  const std::string reply = raw_exchange(ts.port(), "THIS IS NOT HTTP\r\n");
  EXPECT_NE(reply.find("HTTP/1.1 400"), std::string::npos);
  EXPECT_NE(reply.find("Connection: close"), std::string::npos);
  // And the server is still alive for the next client.
  HttpClient client = ts.client();
  EXPECT_EQ(client.get("/healthz").status, 200);
}

TEST(HttpServer, OversizedHeadersGet431) {
  ServerOptions options;
  options.limits.max_header_bytes = 256;
  TestServer ts(options);
  std::string wire = "GET /healthz HTTP/1.1\r\n";
  for (int i = 0; i < 32; ++i) {
    wire += "X-P" + std::to_string(i) + ": " + std::string(64, 'x') + "\r\n";
  }
  wire += "\r\n";
  const std::string reply = raw_exchange(ts.port(), wire);
  EXPECT_NE(reply.find("HTTP/1.1 431"), std::string::npos);
}

TEST(HttpServer, OversizedBodyGets413) {
  ServerOptions options;
  options.limits.max_body_bytes = 64;
  TestServer ts(options);
  const std::string reply = raw_exchange(
      ts.port(),
      "POST /v1/estimate HTTP/1.1\r\nContent-Length: 100000\r\n\r\n");
  EXPECT_NE(reply.find("HTTP/1.1 413"), std::string::npos);
}

TEST(HttpServer, Http10GetsConnectionClose) {
  TestServer ts;
  const std::string reply =
      raw_exchange(ts.port(), "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(reply.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(reply.find("Connection: close"), std::string::npos);
  EXPECT_NE(reply.find("{\"status\":\"ok\",\"energy_backend\":\"none\"}"),
            std::string::npos);
}

TEST(HttpServer, PipelinedRequestsAllAnswered) {
  TestServer ts;
  const std::string one = "GET /healthz HTTP/1.1\r\n\r\n";
  const std::string last =
      "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
  const std::string reply = raw_exchange(ts.port(), one + one + last);
  std::size_t count = 0;
  for (std::size_t pos = reply.find("HTTP/1.1 200");
       pos != std::string::npos; pos = reply.find("HTTP/1.1 200", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST(HttpServer, BackpressureRejectsWith503RetryAfter) {
  ServerOptions options;
  options.max_inflight = 1;
  TestServer ts(options, small_batch_options(/*threads=*/1));

  std::thread slow([&] {
    HttpClient client = ts.client();
    const auto response =
        client.post("/v1/estimate", estimate_body("slow", kSlowAsm));
    EXPECT_EQ(response.status, 200);
  });
  // Give the slow request time to occupy the single in-flight slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  HttpClient client = ts.client();
  const auto rejected =
      client.post("/v1/estimate", estimate_body("tiny", kTinyAsm));
  EXPECT_EQ(rejected.status, 503);
  const std::string* retry_after = rejected.header("Retry-After");
  ASSERT_NE(retry_after, nullptr);
  EXPECT_EQ(*retry_after, "1");
  slow.join();

  // The rejection is visible in /metrics.
  const auto metrics = client.get("/metrics");
  EXPECT_NE(metrics.body.find("xtc_backpressure_rejections_total 1"),
            std::string::npos);
}

TEST(HttpServer, DeadlineExpiryAnswers504AndCancelsQueuedJob) {
  // One worker: the slow job occupies it, the deadlined job sits queued
  // until its deadline fires.
  TestServer ts({}, small_batch_options(/*threads=*/1));

  std::thread slow([&] {
    HttpClient client = ts.client();
    const auto response =
        client.post("/v1/estimate", estimate_body("slow", kSlowAsm));
    EXPECT_EQ(response.status, 200);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  HttpClient client = ts.client();
  const auto expired = client.post(
      "/v1/estimate", estimate_body("queued", kTinyAsm, /*deadline_ms=*/50));
  EXPECT_EQ(expired.status, 504);
  EXPECT_NE(expired.body.find("deadline"), std::string::npos);
  slow.join();

  const auto metrics = client.get("/metrics");
  EXPECT_NE(metrics.body.find("xtc_deadline_expiries_total 1"),
            std::string::npos);
}

TEST(HttpServer, GracefulDrainFinishesInflightRequest) {
  service::BatchEstimator estimator(flat_model(), small_batch_options());
  // The slow job must finish inside the drain window even under a ~20x
  // sanitizer slowdown, or the force-close path (not under test here)
  // kicks in and the client sees a truncated response.
  ServerOptions options;
  options.drain_timeout_ms = 240'000;
  options.default_deadline_ms = 240'000;
  HttpServer server(estimator, options);
  std::thread loop([&] { server.run(); });

  HttpClient client("127.0.0.1", server.port(), 30'000);
  std::thread inflight([&] {
    try {
      const auto response =
          client.post("/v1/estimate", estimate_body("slow", kSlowAsm));
      EXPECT_EQ(response.status, 200);
      const std::string* connection = response.header("Connection");
      ASSERT_NE(connection, nullptr);
      EXPECT_EQ(*connection, "close");  // responses during drain close
    } catch (const Error& e) {
      ADD_FAILURE() << "in-flight request failed: " << e.what();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  server.request_stop();
  loop.join();  // returns only after the in-flight response was written
  inflight.join();
  EXPECT_GE(server.requests_served(), 1u);
}

TEST(HttpServer, StopWithIdleKeepAliveConnectionDrainsImmediately) {
  service::BatchEstimator estimator(flat_model(), small_batch_options());
  HttpServer server(estimator);
  std::thread loop([&] { server.run(); });

  HttpClient client("127.0.0.1", server.port(), 5000);
  EXPECT_EQ(client.get("/healthz").status, 200);
  EXPECT_TRUE(client.connected());  // idle keep-alive connection held open

  const auto stop_at = std::chrono::steady_clock::now();
  server.request_stop();
  loop.join();
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - stop_at)
                             .count();
  EXPECT_LT(seconds, 5.0);  // did not wait for idle/drain timeouts
}

TEST(HttpServer, PollBackendServesRequests) {
  ServerOptions options;
  options.poller_backend = Poller::Backend::kPoll;
  TestServer ts(options);
  HttpClient client = ts.client();
  EXPECT_EQ(client.get("/healthz").status, 200);
  const auto response =
      client.post("/v1/estimate", estimate_body("tiny", kTinyAsm));
  EXPECT_EQ(response.status, 200);
  EXPECT_TRUE(JsonValue::parse(response.body).find("ok")->as_bool());
}

TEST(HttpServer, ConcurrentClientsAllServed) {
  TestServer ts;
  constexpr int kClients = 4;
  constexpr int kRequestsEach = 8;
  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      HttpClient client = ts.client();
      for (int i = 0; i < kRequestsEach; ++i) {
        const auto response = client.post(
            "/v1/estimate",
            estimate_body("c" + std::to_string(c), kTinyAsm));
        if (response.status == 200) ok_count.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok_count.load(), kClients * kRequestsEach);
}

// --- ShardedServer ---------------------------------------------------------

ShardedServerOptions sharded_options(
    unsigned shards,
    ShardedServerOptions::AcceptMode mode =
        ShardedServerOptions::AcceptMode::kAuto) {
  ShardedServerOptions options;
  options.shards = shards;
  options.accept_mode = mode;
  return options;
}

/// TestServer's multi-shard sibling: N event-loop shards over one shared
/// estimator, stopped and joined on destruction.
class ShardedTestServer {
 public:
  explicit ShardedTestServer(
      ShardedServerOptions options = sharded_options(4),
      service::BatchOptions batch_options = small_batch_options())
      : estimator_(flat_model(), batch_options),
        server_(estimator_, std::move(options)),
        thread_([this] { server_.run(); }) {}

  ~ShardedTestServer() {
    server_.request_stop();
    thread_.join();
  }

  std::uint16_t port() const { return server_.port(); }
  ShardedServer& server() { return server_; }
  HttpClient client() { return HttpClient("127.0.0.1", port(), 30'000); }

 private:
  service::BatchEstimator estimator_;
  ShardedServer server_;
  std::thread thread_;
};

/// Extracts the value of `family{label}` (or `family` with empty label)
/// from a Prometheus text exposition; -1 when absent.
long long metric_value(const std::string& body, const std::string& name) {
  const std::size_t pos = body.find("\n" + name + " ");
  if (pos == std::string::npos) return -1;
  return std::stoll(body.substr(pos + name.size() + 2));
}

TEST(ShardedServer, FourShardsServeConcurrentMixedClients) {
  // The battery: 6 concurrent keep-alive clients firing estimates and
  // health checks at a 4-shard server. Every response must be well-formed
  // regardless of which shard the kernel (or the handoff acceptor) picked.
  // 4 workers -> queue capacity 8 > 6 concurrent posts, so backpressure
  // cannot trigger and every request must answer 200.
  ShardedTestServer ts(sharded_options(4), small_batch_options(/*threads=*/4));
  EXPECT_EQ(ts.server().num_shards(), 4u);
  constexpr int kClients = 6;
  constexpr int kRequestsEach = 10;
  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      HttpClient client = ts.client();
      for (int i = 0; i < kRequestsEach; ++i) {
        if (i % 3 == 2) {
          if (client.get("/healthz").status == 200) ok_count.fetch_add(1);
          continue;
        }
        const auto response = client.post(
            "/v1/estimate",
            estimate_body("c" + std::to_string(c), kTinyAsm));
        if (response.status != 200) continue;
        const JsonValue body = JsonValue::parse(response.body);
        if (body.find("ok")->as_bool() &&
            body.find("energy_pj")->as_number() > 0.0) {
          ok_count.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok_count.load(), kClients * kRequestsEach);
  EXPECT_GE(ts.server().requests_served(),
            static_cast<std::uint64_t>(kClients * kRequestsEach));
}

TEST(ShardedServer, MetricsCountersSumAcrossShards) {
  ShardedTestServer ts(sharded_options(
      4, ShardedServerOptions::AcceptMode::kHandoff));
  constexpr int kClients = 8;  // two round-robin laps over 4 shards
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      HttpClient client = ts.client();
      for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(client.get("/healthz").status, 200);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  HttpClient scraper = ts.client();
  const auto metrics = scraper.get("/metrics");
  ASSERT_EQ(metrics.status, 200);
  const std::string& body = metrics.body;
  EXPECT_EQ(metric_value(body, "xtc_shards"), 4);

  // The per-shard families must sum exactly to the aggregated ones (the
  // scrape itself is shard-served, so compare against the merged counters
  // rendered in the same exposition — one consistent pass).
  long long shard_requests = 0;
  long long shard_connections = 0;
  for (int s = 0; s < 4; ++s) {
    const std::string label = "{shard=\"" + std::to_string(s) + "\"}";
    const long long requests =
        metric_value(body, "xtc_shard_requests_total" + label);
    const long long connections =
        metric_value(body, "xtc_shard_connections_accepted_total" + label);
    ASSERT_GE(requests, 0) << "missing shard " << s;
    ASSERT_GE(connections, 0) << "missing shard " << s;
    shard_requests += requests;
    shard_connections += connections;
  }
  EXPECT_EQ(shard_requests,
            metric_value(body, "xtc_request_duration_seconds_count"));
  EXPECT_EQ(shard_connections,
            metric_value(body, "xtc_connections_accepted_total"));
  // Round-robin handoff spread the 9 connections over all 4 shards.
  for (int s = 0; s < 4; ++s) {
    const std::string label = "{shard=\"" + std::to_string(s) + "\"}";
    EXPECT_GE(metric_value(
                  body, "xtc_shard_connections_accepted_total" + label),
              2)
        << "shard " << s << " starved";
  }
}

TEST(ShardedServer, PipelinedKeepAliveAndSplitRequestsAcrossShards) {
  ShardedTestServer ts(sharded_options(
      4, ShardedServerOptions::AcceptMode::kHandoff));
  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::atomic<int> ok_responses{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      // Two pipelined requests plus a third, deliberately split
      // mid-request-line and mid-headers, on one keep-alive connection.
      Socket socket = connect_tcp("127.0.0.1", ts.port(), 5000);
      const std::string pipelined =
          "GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n";
      const std::string split_a = "GET /heal";
      const std::string split_b = "thz HTTP/1.1\r\nConnection: cl";
      const std::string split_c = "ose\r\n\r\n";
      for (const std::string* part :
           {&pipelined, &split_a, &split_b, &split_c}) {
        std::size_t sent = 0;
        while (sent < part->size()) {
          const ssize_t n = ::write(socket.fd(), part->data() + sent,
                                    part->size() - sent);
          if (n <= 0 && errno == EINTR) continue;
          ASSERT_GT(n, 0);
          sent += static_cast<std::size_t>(n);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      std::string received;
      char buf[4096];
      while (true) {
        const ssize_t n = ::read(socket.fd(), buf, sizeof(buf));
        if (n > 0) {
          received.append(buf, static_cast<std::size_t>(n));
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        break;  // EOF after Connection: close
      }
      int count = 0;
      for (std::size_t pos = received.find("HTTP/1.1 200");
           pos != std::string::npos;
           pos = received.find("HTTP/1.1 200", pos + 1)) {
        ++count;
      }
      EXPECT_EQ(count, 3) << "connection got: " << received;
      ok_responses.fetch_add(count);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok_responses.load(), kClients * 3);
}

TEST(ShardedServer, StopDrainsEveryShardWithIdleConnections) {
  // One idle keep-alive connection parked on each shard (round-robin
  // handoff guarantees the spread); request_stop must close all of them
  // and join all four loops promptly — a stuck shard would hang here.
  service::BatchEstimator estimator(flat_model(), small_batch_options());
  ShardedServer server(
      estimator,
      sharded_options(4, ShardedServerOptions::AcceptMode::kHandoff));
  std::thread loop([&] { server.run(); });

  std::vector<HttpClient> parked;
  for (int c = 0; c < 4; ++c) {
    parked.emplace_back("127.0.0.1", server.port(), 5000);
    EXPECT_EQ(parked.back().get("/healthz").status, 200);
    EXPECT_TRUE(parked.back().connected());
  }
  EXPECT_EQ(server.requests_served(), 4u);

  const auto stop_at = std::chrono::steady_clock::now();
  server.request_stop();
  loop.join();
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - stop_at)
                             .count();
  EXPECT_LT(seconds, 5.0);  // no shard waited for idle/drain timeouts
}

TEST(ShardedServer, ReusePortModeServesWhenSupported) {
  if (!reuse_port_supported()) {
    GTEST_SKIP() << "platform has no SO_REUSEPORT";
  }
  ShardedTestServer ts(sharded_options(
      2, ShardedServerOptions::AcceptMode::kReusePort));
  EXPECT_TRUE(ts.server().using_reuse_port());
  HttpClient client = ts.client();
  EXPECT_EQ(client.get("/healthz").status, 200);
  const auto response =
      client.post("/v1/estimate", estimate_body("tiny", kTinyAsm));
  EXPECT_EQ(response.status, 200);
}

TEST(ShardedServer, BackpressureOn503SaturatedShardIsDeterministic) {
  // Handoff round-robin makes connection k land on shard k % 2: the slow
  // request's connection (#0) and the probe connection (#2) both hit
  // shard 0, while its single admission slot is held — the same 503 +
  // Retry-After contract as the single-loop server, now provably
  // exercised on a specific saturated shard.
  ShardedServerOptions options =
      sharded_options(2, ShardedServerOptions::AcceptMode::kHandoff);
  options.server.max_inflight = 1;
  ShardedTestServer ts(options, small_batch_options(/*threads=*/1));

  std::thread slow([&] {
    HttpClient client = ts.client();  // connection #0 -> shard 0
    const auto response =
        client.post("/v1/estimate", estimate_body("slow", kSlowAsm));
    EXPECT_EQ(response.status, 200);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  HttpClient occupy_shard1 = ts.client();  // connection #1 -> shard 1
  EXPECT_EQ(occupy_shard1.get("/healthz").status, 200);

  HttpClient probe = ts.client();  // connection #2 -> shard 0 (saturated)
  const auto rejected =
      probe.post("/v1/estimate", estimate_body("tiny", kTinyAsm));
  EXPECT_EQ(rejected.status, 503);
  const std::string* retry_after = rejected.header("Retry-After");
  ASSERT_NE(retry_after, nullptr);
  EXPECT_EQ(*retry_after, "1");
  slow.join();

  // The rejection is attributed to shard 0 and to the aggregate.
  const auto metrics = occupy_shard1.get("/metrics");
  const std::string& body = metrics.body;
  EXPECT_EQ(metric_value(body, "xtc_backpressure_rejections_total"), 1);
  EXPECT_EQ(
      metric_value(body, "xtc_shard_backpressure_rejections_total{shard=\"0\"}"),
      1);
  EXPECT_EQ(
      metric_value(body, "xtc_shard_backpressure_rejections_total{shard=\"1\"}"),
      0);
}

TEST(ShardedServer, DeadlineExpiry504InShardedPathDropsStaleCompletion) {
  // One shared worker: the slow job (via shard 0) occupies it; the
  // deadlined job (via shard 1) sits queued until its 50ms deadline
  // fires. Shard 1 must answer 504 and drop the eventual stale completion
  // by generation check — identical to the single-loop contract.
  ShardedTestServer ts(
      sharded_options(2, ShardedServerOptions::AcceptMode::kHandoff),
      small_batch_options(/*threads=*/1));

  std::thread slow([&] {
    HttpClient client = ts.client();  // connection #0 -> shard 0
    const auto response =
        client.post("/v1/estimate", estimate_body("slow", kSlowAsm));
    EXPECT_EQ(response.status, 200);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  HttpClient client = ts.client();  // connection #1 -> shard 1
  const auto expired = client.post(
      "/v1/estimate", estimate_body("queued", kTinyAsm, /*deadline_ms=*/50));
  EXPECT_EQ(expired.status, 504);
  EXPECT_NE(expired.body.find("deadline"), std::string::npos);
  slow.join();

  // The same connection keeps working after its 504 (stale completion was
  // dropped, not delivered), and the expiry is attributed to shard 1.
  const auto metrics = client.get("/metrics");
  const std::string& body = metrics.body;
  EXPECT_EQ(metric_value(body, "xtc_deadline_expiries_total"), 1);
  EXPECT_EQ(
      metric_value(body, "xtc_shard_deadline_expiries_total{shard=\"1\"}"), 1);
  EXPECT_EQ(
      metric_value(body, "xtc_shard_deadline_expiries_total{shard=\"0\"}"), 0);
}

TEST(ShardedServer, SingleShardBehavesLikePlainServer) {
  ShardedTestServer ts(sharded_options(1));
  EXPECT_EQ(ts.server().num_shards(), 1u);
  EXPECT_FALSE(ts.server().using_reuse_port());
  HttpClient client = ts.client();
  EXPECT_EQ(client.get("/healthz").status, 200);
  const auto metrics = client.get("/metrics");
  EXPECT_EQ(metric_value(metrics.body, "xtc_shards"), 1);
  // Single shard: aggregated families only, no per-shard breakdown... but
  // the ShardedServer still renders the cluster view with one sample.
  EXPECT_NE(metrics.body.find("xtc_shard_requests_total{shard=\"0\"}"),
            std::string::npos);
}

}  // namespace
}  // namespace exten::net
