// Differential tests for the three-tier execution engine: the fast engine
// (predecoded dispatch + TIE bytecode) and the threaded engine (superblock
// dispatch + fused pairs + block-level event accounting) must be bit-exact
// against the reference interpreter (per-step decode + Expr tree walk) —
// same retired stream, same cycle counts, same macro-model variables, same
// energy.
//
// These tests are what lets every fast-path shortcut (predecode, cache
// hot-line memo, data-page memo, interlock source bytes, superinstruction
// fusion, deferred exit counting) be treated as an optimization rather
// than an approximation.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fuzz/gen_program.h"
#include "fuzz/gen_tie.h"
#include "fuzz/targets.h"
#include "isa/assembler.h"
#include "model/estimate.h"
#include "model/profiler.h"
#include "sim/cpu.h"
#include "sim/tracer.h"
#include "tie/compiler.h"
#include "workloads/workloads.h"

namespace exten {
namespace {

// --- Retirement-stream digest ------------------------------------------------

/// FNV-1a over every field of every retired instruction, plus the run
/// totals. Two runs with equal digests executed the same instructions with
/// the same operands, timing, events, and custom-instruction identity.
class DigestSink {
 public:
  void on_run_begin() { digest_ = 1469598103934665603ull; }
  void on_retire(const sim::RetiredInstruction& r) {
    mix(r.pc);
    mix(static_cast<std::uint64_t>(r.instr.op));
    mix(r.instr.rd);
    mix(r.instr.rs1);
    mix(r.instr.rs2);
    mix(r.instr.func);
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(r.instr.imm)));
    mix(static_cast<std::uint64_t>(r.cls));
    mix(r.branch_taken);
    mix(r.base_cycles);
    mix(r.total_cycles);
    mix(r.icache_miss);
    mix(r.dcache_miss);
    mix(r.uncached_fetch);
    mix(r.uncached_data);
    mix(r.interlock_cycles);
    mix(r.redirect_cycles);
    mix(r.memory_stall_cycles);
    mix(r.rs1_value);
    mix(r.rs2_value);
    mix(r.result);
    mix(r.mem_addr);
    mix(r.is_mem);
    // Pointer identity: both engines must resolve a CUSTOM opcode to the
    // same CustomInstruction record of the shared TieConfiguration.
    mix(reinterpret_cast<std::uintptr_t>(r.custom));
  }
  void on_run_end(std::uint64_t instructions, std::uint64_t cycles) {
    mix(instructions);
    mix(cycles);
  }

  std::uint64_t digest() const { return digest_; }

 private:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      digest_ ^= (v >> (8 * i)) & 0xff;
      digest_ *= 1099511628211ull;
    }
  }

  std::uint64_t digest_ = 0;
};

struct EngineRun {
  std::uint64_t digest = 0;
  sim::RunResult result;
};

EngineRun run_digest(const model::TestProgram& app, sim::Engine engine,
                     const sim::ProcessorConfig& config = {}) {
  sim::Cpu cpu(config, *app.tie, engine);
  cpu.load_program(app.image);
  DigestSink sink;
  EngineRun run;
  run.result = cpu.run_with_sink(sink);
  run.digest = sink.digest();
  return run;
}

void expect_engines_match(const model::TestProgram& app,
                          const sim::ProcessorConfig& config = {}) {
  const EngineRun ref = run_digest(app, sim::Engine::kReference, config);
  for (const sim::Engine engine :
       {sim::Engine::kFast, sim::Engine::kThreaded}) {
    const EngineRun run = run_digest(app, engine, config);
    const char* name =
        engine == sim::Engine::kFast ? "fast" : "threaded";
    EXPECT_EQ(run.digest, ref.digest) << app.name << " " << name;
    EXPECT_EQ(run.result.instructions, ref.result.instructions)
        << app.name << " " << name;
    EXPECT_EQ(run.result.cycles, ref.result.cycles)
        << app.name << " " << name;
    EXPECT_EQ(run.result.halted, ref.result.halted)
        << app.name << " " << name;
  }
}

TEST(EngineDiff, CharacterizationSuiteBitExact) {
  for (const model::TestProgram& app : workloads::characterization_suite()) {
    expect_engines_match(app);
  }
}

TEST(EngineDiff, ApplicationSuiteBitExact) {
  for (const model::TestProgram& app : workloads::application_suite()) {
    expect_engines_match(app);
  }
}

TEST(EngineDiff, ExtrasSuiteBitExact) {
  for (const model::TestProgram& app : workloads::extras_suite()) {
    expect_engines_match(app);
  }
}

TEST(EngineDiff, ReedSolomonBitExact) {
  for (const model::TestProgram& app : workloads::reed_solomon_variants()) {
    expect_engines_match(app);
  }
}

TEST(EngineDiff, BitExactUnderNonDefaultTimingConfig) {
  // Non-default penalties exercise the event/penalty accounting paths.
  sim::ProcessorConfig config;
  config.icache_miss_penalty = 13;
  config.dcache_miss_penalty = 9;
  config.taken_branch_penalty = 5;
  config.load_use_interlock = 3;
  for (const model::TestProgram& app : workloads::application_suite()) {
    expect_engines_match(app, config);
  }
}

/// run() (virtual observers) and run_with_sink (static dispatch) must
/// publish the same stream.
TEST(EngineDiff, ObserverPathMatchesSinkPath) {
  class DigestObserver final : public sim::RetireObserver {
   public:
    void on_run_begin() override { sink.on_run_begin(); }
    void on_retire(const sim::RetiredInstruction& r) override {
      sink.on_retire(r);
    }
    void on_run_end(std::uint64_t instructions,
                    std::uint64_t cycles) override {
      sink.on_run_end(instructions, cycles);
    }
    DigestSink sink;
  };

  const std::vector<model::TestProgram> suite =
      workloads::application_suite();
  const model::TestProgram& app = suite.front();
  for (const sim::Engine engine :
       {sim::Engine::kFast, sim::Engine::kReference, sim::Engine::kThreaded}) {
    sim::Cpu observed(sim::ProcessorConfig{}, *app.tie, engine);
    observed.load_program(app.image);
    DigestObserver observer;
    observed.add_observer(&observer);
    observed.run();

    const EngineRun sunk = run_digest(app, engine);
    EXPECT_EQ(observer.sink.digest(), sunk.digest);
  }
}

// --- Macro-model equivalence -------------------------------------------------

model::MacroModelVariables profile_variables(const model::TestProgram& app,
                                             sim::Engine engine) {
  sim::Cpu cpu(sim::ProcessorConfig{}, *app.tie, engine);
  cpu.load_program(app.image);
  model::MacroModelProfiler profiler(*app.tie);
  cpu.add_observer(&profiler);
  cpu.run();
  return profiler.variables();
}

TEST(EngineDiff, MacroModelVariablesBitExact) {
  for (const model::TestProgram& app : workloads::application_suite()) {
    const model::MacroModelVariables fast =
        profile_variables(app, sim::Engine::kFast);
    const model::MacroModelVariables ref =
        profile_variables(app, sim::Engine::kReference);
    for (std::size_t i = 0; i < model::kNumVariables; ++i) {
      // Bit-exact, not approximately equal: both engines must accumulate
      // the identical sequence of updates.
      EXPECT_EQ(fast[i], ref[i])
          << app.name << " variable " << model::variable_name(i);
    }
  }
}

TEST(EngineDiff, EstimateEnergyIdentical) {
  linalg::Vector coeffs(model::kNumVariables);
  for (std::size_t i = 0; i < model::kNumVariables; ++i) {
    coeffs[i] = 0.5 + static_cast<double>(i);
  }
  const model::EnergyMacroModel macro(coeffs);
  for (const model::TestProgram& app : workloads::application_suite()) {
    const model::EnergyEstimate fast = model::estimate_energy(
        macro, app, {}, sim::Cpu::kDefaultBudget, sim::Engine::kFast);
    const model::EnergyEstimate ref = model::estimate_energy(
        macro, app, {}, sim::Cpu::kDefaultBudget, sim::Engine::kReference);
    EXPECT_EQ(fast.energy_pj, ref.energy_pj) << app.name;
    EXPECT_EQ(fast.stats.cycles, ref.stats.cycles) << app.name;
    EXPECT_EQ(fast.stats.instructions, ref.stats.instructions) << app.name;
  }
}

// --- TIE bytecode vs Expr-tree reference -------------------------------------

/// Deterministic 64-bit generator — no <random> engine state to worry
/// about across library versions. (The structured fuzz generators use
/// exten::Rng; this older splitmix stream is kept so the hand-written
/// schedules below stay byte-identical.)
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

void expect_states_equal(const tie::TieState& a, const tie::TieState& b,
                         const std::string& context) {
  ASSERT_EQ(a.num_states(), b.num_states());
  for (std::size_t s = 0; s < a.num_states(); ++s) {
    EXPECT_EQ(a.read_state_slot(s), b.read_state_slot(s))
        << context << " state slot " << s;
  }
  ASSERT_EQ(a.num_regfiles(), b.num_regfiles());
  for (std::size_t f = 0; f < a.num_regfiles(); ++f) {
    // Indices wrap to the file size, so probing a fixed range at least as
    // large as any declared file compares every entry.
    for (std::uint64_t i = 0; i < 256; ++i) {
      EXPECT_EQ(a.read_regfile_slot(f, i), b.read_regfile_slot(f, i))
          << context << " regfile " << f << " index " << i;
    }
  }
}

TEST(EngineDiff, TieBytecodeMatchesTreeEvaluation) {
  SplitMix64 rng(0x5eed);
  for (const model::TestProgram& app : workloads::characterization_suite()) {
    const tie::TieConfiguration& tie = *app.tie;
    if (tie.instructions().empty()) continue;
    tie::TieState fast_state = tie.make_state();
    tie::TieState ref_state = tie.make_state();
    // Evolve both states through a long interleaved random schedule: any
    // divergence in a write (rd, scalar state, or regfile) propagates into
    // later reads and the final state comparison.
    for (int step = 0; step < 300; ++step) {
      const std::size_t which = static_cast<std::size_t>(
          rng.next() % tie.instructions().size());
      const tie::CustomInstruction& ci = tie.instructions()[which];
      const std::uint32_t rs1 = static_cast<std::uint32_t>(rng.next());
      const std::uint32_t rs2 = static_cast<std::uint32_t>(rng.next());
      const std::uint32_t fast_rd = tie.execute(ci, rs1, rs2, &fast_state);
      const std::uint32_t ref_rd =
          tie.execute_reference(ci, rs1, rs2, &ref_state);
      EXPECT_EQ(fast_rd, ref_rd)
          << app.name << " instruction " << ci.name << " step " << step;
    }
    expect_states_equal(fast_state, ref_state, app.name);
  }
}

// --- Predecode invalidation --------------------------------------------------

TEST(EngineDiff, SelfModifyingCodeBitExact) {
  // The program overwrites an upcoming instruction word (addi r3, r0, 1 at
  // label `patch`) with the word stored at `newinstr` (addi r3, r0, 42),
  // then executes it. The fast engine must observe the store (note_write →
  // stale → refresh) and retire the same stream as the reference engine.
  const char* source = R"(
      start:
        li   r4, newinstr
        lw   r1, 0(r4)
        li   r2, patch
        sw   r1, 0(r2)
      patch:
        addi r3, r0, 1
        halt
      newinstr:
        .word 0
  )";

  // Encode the replacement word by assembling the wanted instruction alone
  // and reading back its first text word.
  isa::ProgramImage wanted = isa::assemble("addi r3, r0, 42\n");
  std::uint32_t replacement = 0;
  for (const isa::Segment& seg : wanted.segments()) {
    if (wanted.entry_point() >= seg.base && wanted.entry_point() < seg.end()) {
      replacement = static_cast<std::uint32_t>(seg.bytes[0]) |
                    (static_cast<std::uint32_t>(seg.bytes[1]) << 8) |
                    (static_cast<std::uint32_t>(seg.bytes[2]) << 16) |
                    (static_cast<std::uint32_t>(seg.bytes[3]) << 24);
    }
  }
  ASSERT_NE(replacement, 0u);

  const tie::TieConfiguration empty_tie;
  EngineRun runs[3];
  std::uint32_t r3[3];
  const sim::Engine engines[3] = {sim::Engine::kFast, sim::Engine::kReference,
                                  sim::Engine::kThreaded};
  for (int e = 0; e < 3; ++e) {
    isa::ProgramImage image = isa::assemble(source);
    sim::Cpu cpu(sim::ProcessorConfig{}, empty_tie, engines[e]);
    cpu.load_program(image);
    // Plant the replacement word in the data slot before running.
    const auto newinstr = image.symbol("newinstr");
    ASSERT_TRUE(newinstr.has_value());
    cpu.memory().write32(*newinstr, replacement);
    cpu.invalidate_predecode();  // text bytes changed behind the engine
    DigestSink sink;
    runs[e].result = cpu.run_with_sink(sink);
    runs[e].digest = sink.digest();
    r3[e] = cpu.reg(3);
  }
  EXPECT_EQ(r3[0], 42u);  // the patched instruction actually executed
  EXPECT_EQ(runs[0].digest, runs[1].digest);
  EXPECT_EQ(runs[0].result.cycles, runs[1].result.cycles);
  EXPECT_EQ(r3[2], 42u);
  EXPECT_EQ(runs[2].digest, runs[1].digest);
  EXPECT_EQ(runs[2].result.cycles, runs[1].result.cycles);
}

TEST(EngineDiff, ExternalTextWriteNeedsInvalidate) {
  // Writing text through memory() and calling invalidate_predecode() makes
  // the predecoding engines pick up the new code.
  isa::ProgramImage wanted = isa::assemble("addi r1, r0, 7\n");
  const isa::Segment& wseg = wanted.segments().front();
  const std::uint32_t word =
      static_cast<std::uint32_t>(wseg.bytes[0]) |
      (static_cast<std::uint32_t>(wseg.bytes[1]) << 8) |
      (static_cast<std::uint32_t>(wseg.bytes[2]) << 16) |
      (static_cast<std::uint32_t>(wseg.bytes[3]) << 24);

  const tie::TieConfiguration empty_tie;
  for (const sim::Engine engine :
       {sim::Engine::kFast, sim::Engine::kThreaded}) {
    isa::ProgramImage image = isa::assemble(R"(
          addi r1, r0, 1
          halt
    )");
    sim::Cpu cpu(sim::ProcessorConfig{}, empty_tie, engine);
    cpu.load_program(image);
    cpu.memory().write32(image.entry_point(), word);
    cpu.invalidate_predecode();
    cpu.run();
    EXPECT_EQ(cpu.reg(1), 7u)
        << (engine == sim::Engine::kFast ? "fast" : "threaded");
  }
}

TEST(EngineDiff, InvalidatePredecodeMarksEveryEntryStale) {
  // The documented contract of Cpu::invalidate_predecode(): writes through
  // memory() bypass the store-path staleness tracking, so entries stay
  // kReady until the explicit invalidation marks the whole window stale
  // (and drops every superblock with it).
  isa::ProgramImage image = isa::assemble(R"(
        addi r1, r0, 1
        addi r2, r0, 2
        halt
  )");
  const tie::TieConfiguration empty_tie;
  sim::Cpu cpu(sim::ProcessorConfig{}, empty_tie, sim::Engine::kThreaded);
  cpu.load_program(image);  // predecodes the text segment eagerly

  const std::uint32_t entry = image.entry_point();
  const sim::PredecodedInstr* first = cpu.predecode().lookup(entry);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->status, sim::PredecodedInstr::kReady);
  EXPECT_EQ(cpu.predecode().lookup(entry + 4)->status,
            sim::PredecodedInstr::kReady);

  // A raw memory() write is invisible to the table — still kReady.
  cpu.memory().write32(entry, 0xffffffffu);
  EXPECT_EQ(cpu.predecode().lookup(entry)->status,
            sim::PredecodedInstr::kReady);

  cpu.invalidate_predecode();
  EXPECT_EQ(cpu.predecode().lookup(entry)->status,
            sim::PredecodedInstr::kStale);
  EXPECT_EQ(cpu.predecode().lookup(entry + 4)->status,
            sim::PredecodedInstr::kStale);
  EXPECT_EQ(cpu.predecode().lookup(entry + 8)->status,
            sim::PredecodedInstr::kStale);

  // Misaligned and out-of-window pcs stay unmapped.
  EXPECT_EQ(cpu.predecode().lookup(entry + 2), nullptr);
  EXPECT_EQ(cpu.predecode().lookup(entry - 4), nullptr);
}

TEST(EngineDiff, SelfModifyingStoreIntoFusedPairBitExact) {
  // The store is the *first* half of a fused sw+addi pair and its target is
  // the pair's own second word: the block dies mid-op, the threaded engine
  // must exit with an odd done-count, attribute the executed prefix, and
  // re-decode the patched word — retiring the same stream as the reference
  // interpreter. A second program patches a word later in the same block
  // (store-kill at an op boundary instead of mid-pair).
  const char* programs[] = {
      // sw's fused partner is the patched instruction itself.
      R"(
        start:
          li   r4, newinstr
          lw   r1, 0(r4)
          li   r2, patch
          sw   r1, 0(r2)
        patch:
          addi r3, r0, 1
          halt
        newinstr:
          .word 0
      )",
      // Patched word is further down the same straight-line block.
      R"(
        start:
          li   r4, newinstr
          lw   r1, 0(r4)
          li   r2, patch
          sw   r1, 0(r2)
          addi r5, r0, 3
          addi r6, r0, 4
        patch:
          addi r3, r0, 1
          halt
        newinstr:
          .word 0
      )",
  };

  isa::ProgramImage wanted = isa::assemble("addi r3, r0, 42\n");
  const isa::Segment& wseg = wanted.segments().front();
  const std::uint32_t replacement =
      static_cast<std::uint32_t>(wseg.bytes[0]) |
      (static_cast<std::uint32_t>(wseg.bytes[1]) << 8) |
      (static_cast<std::uint32_t>(wseg.bytes[2]) << 16) |
      (static_cast<std::uint32_t>(wseg.bytes[3]) << 24);

  const tie::TieConfiguration empty_tie;
  for (const char* source : programs) {
    const EngineRun ref = [&] {
      isa::ProgramImage image = isa::assemble(source);
      sim::Cpu cpu(sim::ProcessorConfig{}, empty_tie, sim::Engine::kReference);
      cpu.load_program(image);
      cpu.memory().write32(*image.symbol("newinstr"), replacement);
      cpu.invalidate_predecode();
      DigestSink sink;
      EngineRun run;
      run.result = cpu.run_with_sink(sink);
      run.digest = sink.digest();
      EXPECT_EQ(cpu.reg(3), 42u);
      return run;
    }();

    isa::ProgramImage image = isa::assemble(source);
    sim::Cpu cpu(sim::ProcessorConfig{}, empty_tie, sim::Engine::kThreaded);
    cpu.load_program(image);
    cpu.memory().write32(*image.symbol("newinstr"), replacement);
    cpu.invalidate_predecode();
    DigestSink sink;
    const sim::RunResult result = cpu.run_with_sink(sink);
    EXPECT_EQ(cpu.reg(3), 42u);
    EXPECT_EQ(sink.digest(), ref.digest);
    EXPECT_EQ(result.instructions, ref.result.instructions);
    EXPECT_EQ(result.cycles, ref.result.cycles);
    // Running the (now stable) patched program again must still match:
    // the rebuilt superblocks cover the patched text.
    sim::Cpu again(sim::ProcessorConfig{}, empty_tie, sim::Engine::kThreaded);
    again.load_program(image);
    again.memory().write32(*image.symbol("newinstr"), replacement);
    again.invalidate_predecode();
    again.run();
    EXPECT_EQ(again.reg(3), 42u);
  }
}

TEST(EngineDiff, ThreadedBlockCountsReconcileWithRetirementStream) {
  // The threaded engine counts events at superblock granularity
  // (exec_full / exit_counts harvested into ThreadedCounters); those block
  // totals must reconcile *exactly* with a per-instruction count of the
  // same run's retirement stream.
  for (const model::TestProgram& app : workloads::application_suite()) {
    sim::Cpu cpu(sim::ProcessorConfig{}, *app.tie, sim::Engine::kThreaded);
    cpu.load_program(app.image);
    sim::StatsCollector stats;
    cpu.add_observer(&stats);
    const sim::RunResult result = cpu.run();

    const sim::ExecutionStats& s = stats.stats();
    const sim::ThreadedCounters& tc = cpu.threaded_counters();
    EXPECT_EQ(tc.instructions, s.instructions) << app.name;
    EXPECT_EQ(tc.instructions, result.instructions) << app.name;
    for (std::size_t c = 0; c < isa::kInstrClassCount; ++c) {
      EXPECT_EQ(tc.class_instrs[c], s.class_counts[c])
          << app.name << " class " << c;
    }
    // Sanity on the block-execution shape: real workloads must actually
    // run through superblocks, with single-step fallbacks a strict subset.
    EXPECT_GT(tc.superblocks, 0u) << app.name;
    EXPECT_LE(tc.singles, tc.instructions) << app.name;
  }
}

/// Sink that opts into record elision (threaded.h skips materialising
/// RetiredInstruction for it). Namespace-scope because local classes
/// cannot declare static data members.
struct NullSink {
  static constexpr bool kDiscardsRecords = true;
  void on_run_begin() {}
  void on_retire(const sim::RetiredInstruction&) {}
  void on_run_end(std::uint64_t, std::uint64_t) {}
};

TEST(EngineDiff, ThreadedDiscardingSinkMatchesPublishingSink) {
  // A sink declaring kDiscardsRecords lets the threaded engine skip
  // materialising RetiredInstruction records entirely; architectural
  // state, run totals, and the block-level counters must be identical to
  // a publishing run.
  for (const model::TestProgram& app : workloads::application_suite()) {
    sim::Cpu pub(sim::ProcessorConfig{}, *app.tie, sim::Engine::kThreaded);
    pub.load_program(app.image);
    DigestSink digest;
    const sim::RunResult rp = pub.run_with_sink(digest);

    sim::Cpu disc(sim::ProcessorConfig{}, *app.tie, sim::Engine::kThreaded);
    disc.load_program(app.image);
    NullSink null;
    const sim::RunResult rd = disc.run_with_sink(null);

    EXPECT_EQ(rp.instructions, rd.instructions) << app.name;
    EXPECT_EQ(rp.cycles, rd.cycles) << app.name;
    EXPECT_EQ(rp.halted, rd.halted) << app.name;
    for (unsigned r = 0; r < isa::kNumRegisters; ++r) {
      EXPECT_EQ(pub.reg(r), disc.reg(r)) << app.name << " r" << r;
    }
    const sim::ThreadedCounters& a = pub.threaded_counters();
    const sim::ThreadedCounters& b = disc.threaded_counters();
    EXPECT_EQ(a.instructions, b.instructions) << app.name;
    EXPECT_EQ(a.superblocks, b.superblocks) << app.name;
    EXPECT_EQ(a.singles, b.singles) << app.name;
    EXPECT_EQ(a.fused, b.fused) << app.name;
    for (std::size_t c = 0; c < isa::kInstrClassCount; ++c) {
      EXPECT_EQ(a.class_instrs[c], b.class_instrs[c])
          << app.name << " class " << c;
    }
  }
}

TEST(EngineDiff, IllegalInstructionFaultsMatch) {
  // An undecodable word inside the text segment must raise the same fault
  // from all engines (the fast and threaded engines route illegal entries
  // to the reference path).
  const char* source = R"(
        addi r1, r0, 5
        .word 0xffffffff
        halt
  )";
  const tie::TieConfiguration empty_tie;
  std::string messages[3];
  const sim::Engine engines[3] = {sim::Engine::kFast, sim::Engine::kReference,
                                  sim::Engine::kThreaded};
  for (int e = 0; e < 3; ++e) {
    sim::Cpu cpu(sim::ProcessorConfig{}, empty_tie, engines[e]);
    cpu.load_program(isa::assemble(source));
    try {
      cpu.run();
      FAIL() << "expected an illegal-instruction fault";
    } catch (const Error& error) {
      messages[e] = error.what();
    }
  }
  EXPECT_EQ(messages[0], messages[1]);
  EXPECT_EQ(messages[2], messages[1]);
  EXPECT_NE(messages[0].find("illegal"), std::string::npos);
}

// --- Cache hot-line memo exactness -------------------------------------------

/// Bit-for-bit reference model of the set-associative true-LRU cache,
/// without any memoization. Guards the 2-entry hot-line memo in
/// sim::Cache.
class NaiveLruCache {
 public:
  explicit NaiveLruCache(const sim::CacheConfig& config)
      : config_(config),
        lines_(config.num_sets() * config.ways) {}

  bool access(std::uint32_t addr, bool allocate) {
    const std::uint32_t line_bytes = config_.line_bytes;
    const std::uint32_t sets = config_.num_sets();
    const std::uint32_t set = (addr / line_bytes) % sets;
    const std::uint64_t tag =
        static_cast<std::uint64_t>(addr) / line_bytes / sets;
    Line* base = &lines_[set * config_.ways];
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
      if (base[w].valid && base[w].tag == tag) {
        touch(base, w);
        return true;
      }
    }
    if (allocate) {
      std::uint32_t victim = 0;
      for (std::uint32_t w = 0; w < config_.ways; ++w) {
        if (!base[w].valid) {
          victim = w;
          break;
        }
        if (base[w].age > base[victim].age) victim = w;
      }
      base[victim].valid = true;
      base[victim].tag = tag;
      touch(base, victim);
    }
    return false;
  }

 private:
  struct Line {
    bool valid = false;
    std::uint64_t tag = 0;
    std::uint32_t age = 0;
  };

  void touch(Line* base, std::uint32_t used) {
    for (std::uint32_t w = 0; w < config_.ways; ++w) ++base[w].age;
    base[used].age = 0;
  }

  sim::CacheConfig config_;
  std::vector<Line> lines_;
};

TEST(EngineDiff, CacheMemoMatchesNaiveLru) {
  // Small cache (2 sets x 2 ways, 16-byte lines) so conflict evictions are
  // frequent, plus streams crafted to alternate between lines of the same
  // set and of different sets — the cases the memo must not distort.
  sim::CacheConfig config;
  config.size_bytes = 64;
  config.line_bytes = 16;
  config.ways = 2;

  sim::Cache cache(config);
  NaiveLruCache naive(config);
  SplitMix64 rng(0xcafe);
  std::uint64_t expected_hits = 0;
  std::uint64_t expected_misses = 0;
  for (int i = 0; i < 20000; ++i) {
    // Mix patterns: random addresses in a small pool (conflict-heavy),
    // same-set alternation, and different-set alternation.
    std::uint32_t addr;
    switch (i % 4) {
      case 0: addr = static_cast<std::uint32_t>(rng.next() % 8) * 16; break;
      case 1: addr = (i % 8 < 4) ? 0x00 : 0x40; break;   // same set 0
      case 2: addr = (i % 8 < 4) ? 0x00 : 0x10; break;   // different sets
      default: addr = static_cast<std::uint32_t>(rng.next() % 256); break;
    }
    const bool allocate = (rng.next() & 3) != 0;  // mix access and probe
    const bool naive_hit = naive.access(addr, allocate);
    const sim::CacheOutcome got =
        allocate ? cache.access(addr) : cache.probe(addr);
    EXPECT_EQ(got == sim::CacheOutcome::kHit, naive_hit)
        << "access " << i << " addr 0x" << std::hex << addr;
    (naive_hit ? expected_hits : expected_misses) += 1;
  }
  EXPECT_EQ(cache.hits(), expected_hits);
  EXPECT_EQ(cache.misses(), expected_misses);
}

// --- Memory bulk load --------------------------------------------------------

TEST(EngineDiff, MemoryBulkLoadMatchesByteStores) {
  // A segment straddling page boundaries with an unaligned base: load()
  // must place every byte exactly where write8 would have.
  isa::Segment segment;
  segment.base = sim::Memory::kPageBytes - 37;  // crosses into page 1 and 2
  segment.bytes.resize(2 * sim::Memory::kPageBytes + 91);
  SplitMix64 rng(0xb17e);
  for (std::uint8_t& b : segment.bytes) {
    b = static_cast<std::uint8_t>(rng.next());
  }

  isa::ProgramImage image;
  image.add_segment(segment);

  sim::Memory bulk;
  bulk.load(image);
  sim::Memory bytewise;
  for (std::size_t i = 0; i < segment.bytes.size(); ++i) {
    bytewise.write8(segment.base + static_cast<std::uint32_t>(i),
                    segment.bytes[i]);
  }

  EXPECT_EQ(bulk.resident_pages(), bytewise.resident_pages());
  for (std::size_t i = 0; i < segment.bytes.size(); ++i) {
    const std::uint32_t addr = segment.base + static_cast<std::uint32_t>(i);
    ASSERT_EQ(bulk.read8(addr), segment.bytes[i]) << "addr 0x" << std::hex
                                                  << addr;
  }
  // Bytes around the segment stay zero.
  EXPECT_EQ(bulk.read8(segment.base - 1), 0u);
  EXPECT_EQ(bulk.read8(segment.base +
                       static_cast<std::uint32_t>(segment.bytes.size())),
            0u);
}

// --- PcProfile flat window ---------------------------------------------------

TEST(EngineDiff, PcProfileFlatAndOverflowAgree) {
  sim::PcProfile profile;
  profile.on_run_begin();

  auto retire_at = [&](std::uint32_t pc, unsigned cycles) {
    sim::RetiredInstruction r;
    r.pc = pc;
    r.total_cycles = cycles;
    profile.on_retire(r);
  };

  // In-window pcs (flat table) and a far-away pc (overflow map).
  const std::uint32_t base = 0x0040'0000;
  retire_at(base, 1);
  retire_at(base + 4, 2);
  retire_at(base + 4, 2);
  const std::uint32_t far = base + sim::PcProfile::kWindowBytes + 0x100;
  retire_at(far, 7);

  EXPECT_EQ(profile.distinct_pcs(), 3u);
  const auto hottest = profile.hottest(3);
  ASSERT_EQ(hottest.size(), 3u);
  EXPECT_EQ(hottest[0].pc, far);          // 7 cycles
  EXPECT_EQ(hottest[0].cycles, 7u);
  EXPECT_EQ(hottest[1].pc, base + 4);     // 4 cycles over 2 executions
  EXPECT_EQ(hottest[1].executions, 2u);
  EXPECT_EQ(hottest[2].pc, base);

  // A new run clears both tables.
  profile.on_run_begin();
  EXPECT_EQ(profile.distinct_pcs(), 0u);
}

// --- Generator-backed differential tests -------------------------------------
//
// The hand-written cases above pin down known-tricky behaviours; these
// sweep the structured fuzz generators (src/fuzz/) over fixed seed ranges
// so every CI run also covers a few hundred random-but-valid programs.
// fuzz::run_engine_diff compares the full retirement-stream digest, final
// registers/pc/cycles, custom TIE state, and resident memory pages, and
// reports the first divergence in its message.

void expect_case_passes(const fuzz::EngineDiffCase& c, std::uint64_t seed) {
  const fuzz::Outcome outcome = fuzz::run_engine_diff(c);
  EXPECT_TRUE(outcome.ok) << "seed " << seed << ": " << outcome.message
                          << "\nprogram:\n" << c.asm_source;
}

TEST(EngineDiff, GeneratedBaseProgramsBitExact) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(Rng::derive_seed(0xBA5E, seed));
    fuzz::ProgramGenOptions options;
    options.blocks = 16;
    fuzz::EngineDiffCase c;
    c.asm_source = fuzz::generate_program(rng, options);
    expect_case_passes(c, seed);
  }
}

TEST(EngineDiff, GeneratedSelfModifyingProgramsBitExact) {
  // Self-modifying stores exercise the predecode invalidation path that
  // only the fast engine has; a stale predecoded word diverges instantly.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(Rng::derive_seed(0x5E1F, seed));
    fuzz::ProgramGenOptions options;
    options.blocks = 12;
    options.allow_self_modify = true;
    fuzz::EngineDiffCase c;
    c.asm_source = fuzz::generate_program(rng, options);
    c.config.icache.size_bytes = 1024;  // small cache: more refills of
    c.config.icache.line_bytes = 16;    // freshly patched lines
    c.config.icache.ways = 1;
    expect_case_passes(c, seed);
  }
}

TEST(EngineDiff, GeneratedUncachedAccessBitExact) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(Rng::derive_seed(0xD00D, seed));
    fuzz::ProgramGenOptions options;
    options.blocks = 10;
    options.allow_uncached = true;
    fuzz::EngineDiffCase c;
    c.asm_source = fuzz::generate_program(rng, options);
    c.config.uncached_fetch_penalty = 11;
    c.config.uncached_data_penalty = 13;
    expect_case_passes(c, seed);
  }
}

TEST(EngineDiff, GeneratedCustomInstructionMixBitExact) {
  // Random TIE spec + a program that interleaves its custom instructions
  // with base-ISA code: bytecode evaluation inside the fast engine vs tree
  // evaluation inside the reference engine, through the full pipeline.
  unsigned cases_with_customs = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(Rng::derive_seed(0xC057, seed));
    fuzz::EngineDiffCase c;
    c.tie_source = fuzz::generate_tie_spec(rng);
    const tie::TieConfiguration tie = tie::compile_tie_source(c.tie_source);

    fuzz::ProgramGenOptions options;
    options.blocks = 12;
    for (const auto& [name, sig] : tie.assembler_mnemonics()) {
      fuzz::ProgramGenOptions::CustomOp op;
      op.name = name;
      op.has_rd = sig.has_rd;
      op.has_rs1 = sig.has_rs1;
      op.has_rs2 = sig.has_rs2;
      options.customs.push_back(op);
    }
    if (!options.customs.empty()) ++cases_with_customs;
    c.asm_source = fuzz::generate_program(rng, options);
    expect_case_passes(c, seed);
  }
  EXPECT_GT(cases_with_customs, 20u);
}

TEST(EngineDiff, GeneratedMixedScheduleWithTimingConfigsBitExact) {
  // One program, swept across timing/cache configurations: penalties shift
  // every cycle count, so any engine disagreement about an event (miss,
  // interlock, redirect) becomes a digest mismatch under some config.
  Rng rng(Rng::derive_seed(0x71E5, 0));
  fuzz::ProgramGenOptions options;
  options.blocks = 14;
  options.allow_self_modify = true;
  options.allow_uncached = true;
  const std::string program = fuzz::generate_program(rng, options);

  const unsigned penalties[] = {0, 1, 18};
  for (unsigned miss : penalties) {
    for (unsigned interlock : {0u, 2u}) {
      fuzz::EngineDiffCase c;
      c.asm_source = program;
      c.config.icache_miss_penalty = miss;
      c.config.dcache_miss_penalty = miss;
      c.config.load_use_interlock = interlock;
      c.config.taken_branch_penalty = 3;
      c.config.jump_penalty = 2;
      expect_case_passes(c, miss * 10 + interlock);
    }
  }
}

TEST(EngineDiff, GeneratedFullCaseSweepBitExact) {
  // The exact generator the engine_diff fuzz target uses (random config
  // knobs + optional TIE spec + program), over a fixed seed range.
  for (std::uint64_t seed = 0; seed < 80; ++seed) {
    Rng rng(Rng::derive_seed(0xF0CA, seed));
    const fuzz::EngineDiffCase c = fuzz::generate_engine_diff_case(rng);
    expect_case_passes(c, seed);
  }
}

}  // namespace
}  // namespace exten
