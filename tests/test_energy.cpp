// Tests for src/energy/: RAPL sysfs backend (overflow-corrected deltas,
// fake-sysfs fixture trees, mid-run degradation), the deterministic
// synthetic backend, detection fallback to NullBackend, the EnergyMeter
// sampler + EnergySection scoped measurement, /proc/self telemetry, and
// the /metrics energy families.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "energy/backend.h"
#include "energy/meter.h"
#include "energy/procfs.h"
#include "energy/rapl.h"
#include "energy/synthetic.h"
#include "net/metrics.h"

namespace exten::energy {
namespace {

namespace fs = std::filesystem;

void write_file(const fs::path& path, const std::string& content) {
  std::ofstream file(path);
  ASSERT_TRUE(file.good()) << path;
  file << content;
}

/// Builds a one-package fake-sysfs tree. `energy_values` is the scripted
/// counter history ("v1 v2 v3"); `child_energy_values` adds one child
/// domain ("core") when non-empty.
fs::path make_tree(const std::string& tag, const std::string& energy_values,
                   const std::string& max_range,
                   const std::string& child_energy_values = "") {
  const fs::path root = fs::path(::testing::TempDir()) / ("rapl_" + tag);
  fs::remove_all(root);
  const fs::path pkg = root / "intel-rapl:0";
  fs::create_directories(pkg);
  write_file(pkg / "name", "package-0\n");
  write_file(pkg / "energy_uj", energy_values);
  if (!max_range.empty()) {
    write_file(pkg / "max_energy_range_uj", max_range);
  }
  if (!child_energy_values.empty()) {
    const fs::path child = pkg / "intel-rapl:0:0";
    fs::create_directories(child);
    write_file(child / "name", "core\n");
    write_file(child / "energy_uj", child_energy_values);
    write_file(child / "max_energy_range_uj", max_range);
  }
  return root;
}

double joules_of(const std::vector<DomainEnergy>& reading,
                 const std::string& name) {
  for (const DomainEnergy& d : reading) {
    if (d.name == name) return d.joules;
  }
  ADD_FAILURE() << "no domain " << name;
  return -1.0;
}

// ---------------------------------------------------------------------------
// Overflow-corrected delta arithmetic
// ---------------------------------------------------------------------------

TEST(RaplDelta, MonotonicCounterIsPlainDifference) {
  EXPECT_EQ(RaplSysfsBackend::corrected_delta_uj(100, 350, 1000), 250u);
  EXPECT_EQ(RaplSysfsBackend::corrected_delta_uj(0, 0, 1000), 0u);
}

TEST(RaplDelta, WrapAtMaxRangeIsCorrected) {
  // 900 -> wrap at 1000 -> 50: the counter really advanced 150.
  EXPECT_EQ(RaplSysfsBackend::corrected_delta_uj(900, 50, 1000), 150u);
  // The real package range.
  EXPECT_EQ(RaplSysfsBackend::corrected_delta_uj(262143328849, 1,
                                                 262143328850),
            2u);
}

TEST(RaplDelta, WrapWithUnknownRangeContributesZero) {
  // Range 0 (file missing): a wrap cannot be corrected; keep monotonic.
  EXPECT_EQ(RaplSysfsBackend::corrected_delta_uj(900, 50, 0), 0u);
  // Inconsistent range below the last reading: same degradation.
  EXPECT_EQ(RaplSysfsBackend::corrected_delta_uj(900, 50, 800), 0u);
}

// ---------------------------------------------------------------------------
// RaplSysfsBackend against fake-sysfs trees
// ---------------------------------------------------------------------------

TEST(RaplBackend, ReadsCommittedFixtureTreeExactly) {
  auto backend = RaplSysfsBackend::open(EXTEN_FIXTURE_DIR "/rapl");
  ASSERT_NE(backend, nullptr);
  EXPECT_STREQ(backend->kind(), "rapl");
  // Package first, then its children in sorted order; the non-RAPL
  // "other-device:0" directory in the fixture tree is ignored.
  const std::vector<std::string> expected = {"package-0", "core", "dram"};
  EXPECT_EQ(backend->domains(), expected);

  // Read 1 consumes the second scripted value of each counter.
  auto first = backend->read();
  EXPECT_DOUBLE_EQ(joules_of(first, "package-0"), 0.5);
  EXPECT_DOUBLE_EQ(joules_of(first, "core"), 0.05);
  EXPECT_DOUBLE_EQ(joules_of(first, "dram"), 0.0005);

  // Read 2: the core counter wraps at max_energy_range_uj=65712999613
  // (65712950000 -> 500000 = 49613 + 500000 = 549613 uJ more).
  auto second = backend->read();
  EXPECT_DOUBLE_EQ(joules_of(second, "package-0"), 2.0);
  EXPECT_DOUBLE_EQ(joules_of(second, "core"), 0.599613);
  EXPECT_DOUBLE_EQ(joules_of(second, "dram"), 0.002);

  // Past the scripted history the counter sticks: cumulative is stable.
  auto third = backend->read();
  EXPECT_DOUBLE_EQ(joules_of(third, "package-0"), 2.0);
  EXPECT_DOUBLE_EQ(joules_of(third, "core"), 0.599613);
  EXPECT_DOUBLE_EQ(joules_of(third, "dram"), 0.002);
}

TEST(RaplBackend, MultiValueFixtureScriptsCounterHistory) {
  const fs::path root =
      make_tree("history", "100 250 400\n", "1000000\n");
  auto backend = RaplSysfsBackend::open(root.string());
  ASSERT_NE(backend, nullptr);
  EXPECT_DOUBLE_EQ(joules_of(backend->read(), "package-0"), 150e-6);
  EXPECT_DOUBLE_EQ(joules_of(backend->read(), "package-0"), 300e-6);
  EXPECT_DOUBLE_EQ(joules_of(backend->read(), "package-0"), 300e-6);
}

TEST(RaplBackend, CounterWrapProducesCorrectedCumulative) {
  const fs::path root = make_tree("wrap", "999900 150\n", "1000000\n");
  auto backend = RaplSysfsBackend::open(root.string());
  ASSERT_NE(backend, nullptr);
  // 999900 -> 150 across a 1000000 uJ range: 100 + 150 = 250 uJ.
  EXPECT_DOUBLE_EQ(joules_of(backend->read(), "package-0"), 250e-6);
}

TEST(RaplBackend, WrapWithoutMaxRangeFreezesInsteadOfGarbage) {
  const fs::path root = make_tree("norange", "999900 150 250\n", "");
  auto backend = RaplSysfsBackend::open(root.string());
  ASSERT_NE(backend, nullptr);
  // The wrap cannot be corrected without a range: delta 0, not negative.
  EXPECT_DOUBLE_EQ(joules_of(backend->read(), "package-0"), 0.0);
  // Later monotonic deltas resume from the new baseline.
  EXPECT_DOUBLE_EQ(joules_of(backend->read(), "package-0"), 100e-6);
}

TEST(RaplBackend, DomainDisappearingMidRunFreezesWithoutError) {
  const fs::path root =
      make_tree("vanish", "100 200 300\n", "1000000\n", "1000 3000 5000\n");
  auto backend = RaplSysfsBackend::open(root.string());
  ASSERT_NE(backend, nullptr);
  ASSERT_EQ(backend->domains().size(), 2u);
  auto first = backend->read();
  EXPECT_DOUBLE_EQ(joules_of(first, "core"), 2000e-6);

  // The child domain's counter vanishes (hot-unplug / permission flip).
  fs::remove(root / "intel-rapl:0" / "intel-rapl:0:0" / "energy_uj");
  auto second = backend->read();
  // core froze at its last cumulative value; package keeps counting.
  EXPECT_DOUBLE_EQ(joules_of(second, "core"), 2000e-6);
  EXPECT_DOUBLE_EQ(joules_of(second, "package-0"), 200e-6);
  // Still frozen (and still no error) on subsequent reads.
  auto third = backend->read();
  EXPECT_DOUBLE_EQ(joules_of(third, "core"), 2000e-6);
}

TEST(RaplBackend, UnreadableEnergyFileIsSkippedAtOpen) {
  // energy_uj exists but is a directory: unreadable, domain skipped, and
  // with no other domain open() reports "nothing measurable".
  const fs::path root = fs::path(::testing::TempDir()) / "rapl_unreadable";
  fs::remove_all(root);
  const fs::path pkg = root / "intel-rapl:0";
  fs::create_directories(pkg / "energy_uj");
  write_file(pkg / "name", "package-0\n");
  EXPECT_EQ(RaplSysfsBackend::open(root.string()), nullptr);
}

TEST(RaplBackend, MissingRootGivesNoBackend) {
  EXPECT_EQ(RaplSysfsBackend::open("/nonexistent/powercap"), nullptr);
}

// ---------------------------------------------------------------------------
// Detection: never fails, degrades to NullBackend
// ---------------------------------------------------------------------------

TEST(DetectBackend, MissingPowercapDegradesToNull) {
  auto backend = detect_backend("auto", "/nonexistent/powercap");
  ASSERT_NE(backend, nullptr);
  EXPECT_STREQ(backend->kind(), "none");
  EXPECT_FALSE(backend->available());
  EXPECT_TRUE(backend->read().empty());
}

TEST(DetectBackend, ExplicitRaplOnBogusRootStillDegrades) {
  EXPECT_STREQ(detect_backend("rapl", "/nonexistent")->kind(), "none");
}

TEST(DetectBackend, SelectorsResolve) {
  EXPECT_STREQ(detect_backend("none")->kind(), "none");
  EXPECT_STREQ(detect_backend("synthetic")->kind(), "synthetic");
  EXPECT_STREQ(detect_backend("bogus-selector", "/nonexistent")->kind(),
               "none");
  EXPECT_STREQ(detect_backend("auto", EXTEN_FIXTURE_DIR "/rapl")->kind(),
               "rapl");
}

// ---------------------------------------------------------------------------
// SyntheticBackend
// ---------------------------------------------------------------------------

TEST(SyntheticBackend, DeterministicPerReadIncrements) {
  SyntheticBackend a({{"pkg", 0.5}, {"dram", 0.25}});
  SyntheticBackend b({{"pkg", 0.5}, {"dram", 0.25}});
  for (int i = 1; i <= 3; ++i) {
    const auto ra = a.read();
    const auto rb = b.read();
    ASSERT_EQ(ra.size(), 2u);
    EXPECT_DOUBLE_EQ(ra[0].joules, 0.5 * i);
    EXPECT_DOUBLE_EQ(ra[1].joules, 0.25 * i);
    EXPECT_DOUBLE_EQ(rb[0].joules, ra[0].joules);
  }
}

// ---------------------------------------------------------------------------
// EnergyMeter + EnergySection
// ---------------------------------------------------------------------------

TEST(EnergyMeter, SampleNowPublishesSnapshot) {
  EnergyMeter meter(
      std::make_unique<SyntheticBackend>(
          std::vector<SyntheticDomain>{{"pkg", 1.0}, {"dram", 0.5}}),
      /*sample_interval_ms=*/0);
  EXPECT_TRUE(meter.live());
  EXPECT_STREQ(meter.kind(), "synthetic");
  // Nothing sampled yet: zeros, not garbage.
  EXPECT_DOUBLE_EQ(meter.total_joules(), 0.0);

  meter.sample_now();
  meter.sample_now();
  const auto snapshot = meter.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_DOUBLE_EQ(snapshot[0].joules, 2.0);
  EXPECT_DOUBLE_EQ(snapshot[1].joules, 1.0);
  EXPECT_DOUBLE_EQ(meter.total_joules(), 3.0);
  EXPECT_EQ(meter.samples_taken(), 2u);
}

TEST(EnergyMeter, NullBackendMeterIsInertAndSafe) {
  EnergyMeter meter(std::make_unique<NullBackend>(), 5);
  EXPECT_FALSE(meter.live());
  EXPECT_STREQ(meter.kind(), "none");
  meter.sample_now();  // no-op, no crash
  EXPECT_TRUE(meter.snapshot().empty());

  EnergySection section(meter);
  const auto report = section.stop();
  EXPECT_FALSE(report.live);
  EXPECT_TRUE(report.joules.empty());
  EXPECT_DOUBLE_EQ(report.total_joules(), 0.0);
}

TEST(EnergyMeter, BackgroundSamplerAccumulates) {
  EnergyMeter meter(std::make_unique<SyntheticBackend>(
                        std::vector<SyntheticDomain>{{"pkg", 0.125}}),
                    /*sample_interval_ms=*/1);
  // The sampler thread must make progress without any sample_now() call.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (meter.samples_taken() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(meter.samples_taken(), 3u);
  EXPECT_GT(meter.total_joules(), 0.0);
}

TEST(EnergySection, MeasuresExactDeltaOverTheSection) {
  EnergyMeter meter(
      std::make_unique<SyntheticBackend>(
          std::vector<SyntheticDomain>{{"pkg", 2.0}, {"dram", 0.5}}),
      /*sample_interval_ms=*/0);
  EnergySection section(meter);  // samples once at start
  const auto report = section.stop();  // and once at stop
  EXPECT_TRUE(report.live);
  ASSERT_EQ(report.joules.size(), 2u);
  // Exactly one read between start and stop: one per-read increment.
  EXPECT_DOUBLE_EQ(report.joules[0].joules, 2.0);
  EXPECT_DOUBLE_EQ(report.joules[1].joules, 0.5);
  EXPECT_DOUBLE_EQ(report.total_joules(), 2.5);
  EXPECT_GE(report.wall_seconds, 0.0);
  // stop() is idempotent: same frozen report.
  EXPECT_DOUBLE_EQ(section.stop().total_joules(), 2.5);
}

TEST(EnergySection, SectionsOverFixtureTreeYieldExactJoules) {
  // The xtc-power CI contract: open consumes the baseline value, the
  // section start/stop consume the next two, so the reported section
  // energy is exactly the scripted difference (wrap included).
  EnergyMeter meter(detect_backend("rapl", EXTEN_FIXTURE_DIR "/rapl"), 0);
  ASSERT_TRUE(meter.live());
  EnergySection section(meter);
  const auto report = section.stop();
  EXPECT_DOUBLE_EQ(joules_of(report.joules, "package-0"), 1.5);
  EXPECT_DOUBLE_EQ(joules_of(report.joules, "core"), 0.549613);
  EXPECT_DOUBLE_EQ(joules_of(report.joules, "dram"), 0.0015);
}

// ---------------------------------------------------------------------------
// /proc/self telemetry
// ---------------------------------------------------------------------------

TEST(ProcSelfStats, ReadsResidentBytesAndCpuSeconds) {
  const ProcSelfStats stats = read_proc_self_stats();
  ASSERT_TRUE(stats.ok);
  EXPECT_GT(stats.resident_bytes, 0u);
  EXPECT_GE(stats.cpu_seconds, 0.0);
}

TEST(ProcSelfStats, MissingProcDegradesToNotOk) {
  const ProcSelfStats stats = read_proc_self_stats("/nonexistent");
  EXPECT_FALSE(stats.ok);
  EXPECT_EQ(stats.resident_bytes, 0u);
}

// ---------------------------------------------------------------------------
// /metrics rendering of the energy + process families
// ---------------------------------------------------------------------------

TEST(MetricsRender, EnergyFamiliesWithLiveBackend) {
  net::ServerMetrics metrics;
  for (int i = 0; i < 4; ++i) {
    metrics.record_request("estimate", 200, 0.001);
  }
  net::MetricsGauges gauges;
  gauges.energy_backend = "rapl";
  gauges.energy = {{"package-0", 10.0}, {"dram", 2.0}};
  const std::string text = metrics.render(gauges);
  EXPECT_NE(text.find("xtc_energy_backend_info{backend=\"rapl\"} 1"),
            std::string::npos);
  EXPECT_NE(
      text.find("xtc_host_energy_joules_total{domain=\"package-0\"} 10"),
      std::string::npos);
  EXPECT_NE(text.find("xtc_host_energy_joules_total{domain=\"dram\"} 2"),
            std::string::npos);
  // Lifetime average over the same requests_total denominator: 10 J / 4.
  EXPECT_NE(
      text.find("xtc_energy_joules_per_request{domain=\"package-0\"} 2.5"),
      std::string::npos);
  // Every family keeps the HELP/TYPE conformance contract.
  EXPECT_NE(text.find("# TYPE xtc_host_energy_joules_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE xtc_energy_joules_per_request gauge"),
            std::string::npos);
}

TEST(MetricsRender, EnergyFamiliesOmittedWithNullBackend) {
  net::ServerMetrics metrics;
  net::MetricsGauges gauges;  // energy_backend defaults to "none"
  const std::string text = metrics.render(gauges);
  EXPECT_NE(text.find("xtc_energy_backend_info{backend=\"none\"} 1"),
            std::string::npos);
  EXPECT_EQ(text.find("xtc_host_energy_joules_total"), std::string::npos);
  EXPECT_EQ(text.find("xtc_energy_joules_per_request"), std::string::npos);
}

TEST(MetricsRender, ZeroRequestsDoesNotDivideByZero) {
  net::ServerMetrics metrics;
  net::MetricsGauges gauges;
  gauges.energy_backend = "synthetic";
  gauges.energy = {{"pkg", 5.0}};
  const std::string text = metrics.render(gauges);
  // 0 requests: per-request reports the whole total instead of inf/nan.
  EXPECT_NE(text.find("xtc_energy_joules_per_request{domain=\"pkg\"} 5"),
            std::string::npos);
  EXPECT_EQ(text.find("nan"), std::string::npos);
  // Value position only: "xtc_energy_backend_info" contains "inf".
  EXPECT_EQ(text.find(" inf"), std::string::npos);
}

TEST(MetricsRender, ProcessSelfTelemetry) {
  net::ServerMetrics metrics;
  net::MetricsGauges gauges;
  gauges.proc.ok = true;
  gauges.proc.resident_bytes = 12345678;
  gauges.proc.cpu_seconds = 1.5;
  const std::string text = metrics.render(gauges);
  EXPECT_NE(text.find("xtc_process_resident_bytes 12345678"),
            std::string::npos);
  EXPECT_NE(text.find("xtc_process_cpu_seconds_total 1.5"),
            std::string::npos);

  // A host without procfs omits the families entirely.
  const std::string without = metrics.render(net::MetricsGauges{});
  EXPECT_EQ(without.find("xtc_process_resident_bytes"), std::string::npos);
  EXPECT_EQ(without.find("xtc_process_cpu_seconds_total"),
            std::string::npos);
}

}  // namespace
}  // namespace exten::energy
