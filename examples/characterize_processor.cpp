// Characterize the extensible processor and save the fitted macro-model.
//
//   $ ./examples/characterize_processor [output-file]
//
// This is the paper's Fig. 2, steps 1-8: run the characterization suite
// through the instruction-set simulator (variable values) and the
// RTL-level power estimator (reference energies), fit the 21 coefficients
// by least squares, and serialize the result. The saved model file is what
// examples/design_space_exploration.cpp loads for fast estimation.

#include <fstream>
#include <iostream>

#include "model/characterize.h"
#include "util/strings.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  using namespace exten;
  const std::string output = argc > 1 ? argv[1] : "xtc32.macromodel";

  std::cout << "building the characterization suite..." << std::endl;
  const auto suite = workloads::characterization_suite();
  std::cout << "  " << suite.size() << " test programs\n"
            << "characterizing (ISS + RTL-level reference per program)..."
            << std::endl;

  const model::CharacterizationResult result = model::characterize(suite);

  std::cout << "\nfitted macro-model:\n";
  result.model.coefficient_table().print(std::cout);
  std::cout << "\nfit quality: R^2 = " << format_fixed(result.r_squared, 6)
            << ", RMS fitting error = "
            << format_fixed(result.rms_error_percent, 2)
            << " %, max |fitting error| = "
            << format_fixed(result.max_abs_error_percent, 2) << " %\n";

  std::ofstream file(output);
  if (!file) {
    std::cerr << "cannot write " << output << "\n";
    return 1;
  }
  file << result.model.serialize();
  std::cout << "\nmodel written to " << output << "\n"
            << "use it with examples/design_space_exploration.cpp\n";
  return 0;
}
