// DSP pipeline profiling: run the three extra DSP/crypto kernels (8-tap
// FIR, motion-estimation SAD, CRC-32 — each on its own TIE-lite
// extension), report per-stage cycles / energy / power, and show the
// hotspot profile of the most expensive stage.
//
//   $ ./examples/dsp_pipeline

#include <cstdio>
#include <iostream>

#include "model/estimate.h"
#include "sim/cpu.h"
#include "sim/tracer.h"
#include "util/strings.h"
#include "util/table.h"
#include "workloads/workloads.h"

int main() {
  using namespace exten;

  std::cout << "profiling a three-stage DSP pipeline (each stage is a\n"
               "kernel with its own instruction-set extension):\n\n";

  AsciiTable table({"Stage", "Instructions", "Cycles", "CPI", "Energy (uJ)",
                    "Power (mW)"});
  std::string hottest_name;
  double hottest_uj = 0.0;
  for (const model::TestProgram& stage : workloads::extras_suite()) {
    const model::ReferenceResult result = model::reference_energy(stage);
    table.add_row(
        {stage.name, with_commas(result.stats.instructions),
         with_commas(result.stats.cycles), format_fixed(result.stats.cpi(), 2),
         format_fixed(result.energy_uj(), 2),
         format_fixed(result.energy_pj * 1e-12 /
                          result.stats.seconds_at(187.0) * 1e3,
                      1)});
    if (result.energy_uj() > hottest_uj) {
      hottest_uj = result.energy_uj();
      hottest_name = stage.name;
    }
  }
  table.print(std::cout);

  // Hotspot profile of the most expensive stage.
  std::cout << "\nhotspots of the most expensive stage (" << hottest_name
            << "):\n";
  for (model::TestProgram& stage : workloads::extras_suite()) {
    if (stage.name != hottest_name) continue;
    sim::Cpu cpu({}, *stage.tie);
    cpu.load_program(stage.image);
    sim::PcProfile profile;
    cpu.add_observer(&profile);
    cpu.run();
    for (const auto& entry : profile.hottest(5)) {
      std::printf("  0x%08x  %10llu cycles  %9llu executions\n", entry.pc,
                  static_cast<unsigned long long>(entry.cycles),
                  static_cast<unsigned long long>(entry.executions));
    }
    std::printf("  top-5 concentration: %.1f %%  (%zu distinct PCs)\n",
                100.0 * profile.concentration(5), profile.distinct_pcs());
  }
  return 0;
}
