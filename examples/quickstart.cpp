// Quickstart: extend the processor with a custom instruction, run a
// program on both configurations, and compare cycles and energy.
//
//   $ ./examples/quickstart
//
// This walks the whole stack in ~40 lines of user code: TIE-lite compile,
// assembly, cycle-approximate simulation, and RTL-level energy estimation
// (the ground-truth path — no macro-model needed for a one-off A/B
// comparison; see examples/characterize_processor.cpp for the fast path).

#include <cstdio>

#include "model/estimate.h"
#include "model/test_program.h"

int main() {
  using namespace exten;

  // A packed 4x8-bit saturating-free SIMD add as a custom instruction.
  const char* tie_source = R"(
instruction add4 {
  reads rs1, rs2
  writes rd
  use adder width=8 count=4
  use logic width=32
  semantics {
    rd = (((rs1 & 255) + (rs2 & 255)) & 255)
       | (((((rs1 >> 8) & 255) + ((rs2 >> 8) & 255)) & 255) << 8)
       | (((((rs1 >> 16) & 255) + ((rs2 >> 16) & 255)) & 255) << 16)
       | (((((rs1 >> 24) & 255) + ((rs2 >> 24) & 255)) & 255) << 24);
  }
}
)";

  // The same pixel-sum kernel, with and without the extension.
  const char* with_custom = R"(
  li   s0, vec_a
  li   s1, vec_b
  li   s2, vec_out
  li   s3, 256
loop:
  lw   t0, 0(s0)
  lw   t1, 0(s1)
  add4 t2, t0, t1          # one instruction for four byte lanes
  sw   t2, 0(s2)
  addi s0, s0, 4
  addi s1, s1, 4
  addi s2, s2, 4
  addi s3, s3, -1
  bnez s3, loop
  halt
.data
vec_a: .space 1024
vec_b: .space 1024
vec_out: .space 1024
)";
  const char* base_only = R"(
  li   s0, vec_a
  li   s1, vec_b
  li   s2, vec_out
  li   s3, 256
loop:
  lw   t0, 0(s0)
  lw   t1, 0(s1)
  # four byte lanes by hand: mask, add, mask, merge
  li   t9, 0x00ff00ff
  and  t2, t0, t9
  and  t3, t1, t9
  add  t2, t2, t3
  and  t2, t2, t9
  andn t4, t0, t9
  srli t4, t4, 8
  andn t5, t1, t9
  srli t5, t5, 8
  add  t4, t4, t5
  and  t4, t4, t9
  slli t4, t4, 8
  or   t2, t2, t4
  sw   t2, 0(s2)
  addi s0, s0, 4
  addi s1, s1, 4
  addi s2, s2, 4
  addi s3, s3, -1
  bnez s3, loop
  halt
.data
vec_a: .space 1024
vec_b: .space 1024
vec_out: .space 1024
)";

  const model::TestProgram extended =
      model::make_test_program("pixel_sum_add4", with_custom, tie_source);
  const model::TestProgram baseline =
      model::make_test_program("pixel_sum_base", base_only);

  const model::ReferenceResult ext = model::reference_energy(extended);
  const model::ReferenceResult base = model::reference_energy(baseline);

  std::printf("pixel-sum kernel, 256 words:\n\n");
  std::printf("  %-22s %10s %12s %10s\n", "configuration", "cycles",
              "energy (uJ)", "CPI");
  std::printf("  %-22s %10llu %12.2f %10.2f\n", "base ISA only",
              static_cast<unsigned long long>(base.stats.cycles),
              base.energy_uj(), base.stats.cpi());
  std::printf("  %-22s %10llu %12.2f %10.2f\n", "with add4 extension",
              static_cast<unsigned long long>(ext.stats.cycles),
              ext.energy_uj(), ext.stats.cpi());
  std::printf("\n  speedup: %.2fx   energy saving: %.1f %%\n",
              static_cast<double>(base.stats.cycles) /
                  static_cast<double>(ext.stats.cycles),
              100.0 * (1.0 - ext.energy_pj / base.energy_pj));
  return 0;
}
