// TIE-lite tutorial: what the instruction-set-extension subsystem gives
// you, feature by feature.
//
//   $ ./examples/tie_tutorial
//
// Covers: custom state (scalars and register files), lookup tables, the
// semantics expression language, multi-cycle datapaths with per-cycle
// component schedules, operand isolation, and what the compiler derives
// for the energy model (component weights, complexity, shared-bus
// exposure).

#include <cstdio>
#include <iostream>

#include "isa/assembler.h"
#include "sim/cpu.h"
#include "sim/stats.h"
#include "tie/compiler.h"

int main() {
  using namespace exten;

  // ---------------------------------------------------------------------
  // 1. A specification exercising most of the language.
  // ---------------------------------------------------------------------
  const char* spec = R"(
# A tiny DSP extension: windowed MAC with a coefficient table.

state  acc    width=48            # scalar custom state
regfile win   width=16 size=8     # custom register file

table coeff size=8 width=16 { 3, 9, 27, 81, 243, 729, 2187, 6561 }

# Load a sample into the window (rotating index in rs2).
instruction winld {
  reads rs1, rs2
  use logic width=16
  semantics { win[rs2] = rs1 & 0xffff; }
}

# Multiply-accumulate one tap: acc += win[i] * coeff[i].
# Two-cycle datapath: the multiplier works in cycle 0, the adder in 1.
instruction tapmac {
  latency 2
  reads rs1
  use tie_mac width=16 cycles=0
  use tie_add width=48 cycles=1
  semantics { acc = acc + sext(win[rs1], 16) * sext(coeff[rs1 & 7], 16); }
}

# Read the accumulator (isolated: its datapath is gated from the shared
# operand buses, so base instructions never toggle it).
instruction rdacc {
  isolated
  writes rd
  use logic width=32
  semantics { rd = acc; }
}

instruction clracc {
  isolated
  use logic width=8
  semantics { acc = 0; }
}
)";

  const tie::TieConfiguration config = tie::compile_tie_source(spec);

  // ---------------------------------------------------------------------
  // 2. What the compiler derived.
  // ---------------------------------------------------------------------
  std::printf("compiled %zu custom instructions:\n\n",
              config.instructions().size());
  for (const tie::CustomInstruction& ci : config.instructions()) {
    std::printf("  %-8s func=%u latency=%u %s%s%s%s complexity=%.2f\n",
                ci.name.c_str(), ci.func, ci.latency,
                ci.reads_rs1 ? "rs1 " : "", ci.reads_rs2 ? "rs2 " : "",
                ci.writes_rd ? "-> rd " : "",
                ci.isolated ? "[isolated] " : "", ci.total_complexity);
    for (const tie::ComponentUse& use : ci.components) {
      std::printf("      component %-9s width=%-3u count=%u C(W)=%.3f\n",
                  std::string(tie::component_class_name(use.cls)).c_str(),
                  use.width, use.count, use.total_complexity());
    }
  }

  std::printf("\nshared-bus exposure per category (what a base ADD touches):\n");
  for (std::size_t c = 0; c < tie::kComponentClassCount; ++c) {
    const double w = config.shared_bus_weights()[c];
    if (w > 0.0) {
      std::printf("  %-9s %.3f\n",
                  std::string(tie::component_class_name(
                                  static_cast<tie::ComponentClass>(c)))
                      .c_str(),
                  w);
    }
  }

  // ---------------------------------------------------------------------
  // 3. Run an 8-tap FIR-ish kernel on the extended processor.
  // ---------------------------------------------------------------------
  const char* program = R"(
  # load 8 samples into the window
  li   s0, samples
  li   s1, 0             # index
fill:
  lw   t0, 0(s0)
  winld t0, s1
  addi s0, s0, 4
  addi s1, s1, 1
  li   t9, 8
  blt  s1, t9, fill

  clracc
  li   s1, 0
taps:
  tapmac s1
  addi s1, s1, 1
  li   t9, 8
  blt  s1, t9, taps

  rdacc t0
  li   t1, result
  sw   t0, 0(t1)
  halt
.data
samples: .word 1, 2, 3, 4, 5, 6, 7, 8
result:  .space 4
)";

  isa::AssemblerOptions options;
  options.custom_mnemonics = config.assembler_mnemonics();
  const isa::ProgramImage image = isa::assemble(program, options);

  sim::Cpu cpu({}, config);
  cpu.load_program(image);
  sim::StatsCollector stats;
  cpu.add_observer(&stats);
  const sim::RunResult run = cpu.run();

  // Expected: sum of sample[i] * 3^(i+1).
  long expected = 0, power = 1;
  for (int i = 0; i < 8; ++i) {
    power *= 3;
    expected += (i + 1) * power;
  }
  const std::uint32_t result =
      cpu.memory().read32(image.symbol("result").value());
  std::printf("\nkernel: %llu instructions, %llu cycles, result = %u "
              "(expected %ld) %s\n",
              static_cast<unsigned long long>(run.instructions),
              static_cast<unsigned long long>(run.cycles), result, expected,
              result == static_cast<std::uint32_t>(expected) ? "OK" : "WRONG");
  std::printf("custom executions: ");
  for (const auto& [name, count] : stats.stats().custom_counts) {
    std::printf("%s=%llu ", name.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("\n");
  return result == static_cast<std::uint32_t>(expected) ? 0 : 1;
}
