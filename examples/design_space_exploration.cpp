// Design-space exploration: rank candidate instruction-set extensions by
// energy and performance *without synthesizing any of them* — the use-case
// the paper's methodology exists for (§I: "easily usable for evaluating
// energy-performance trade-offs among different candidate custom
// instructions").
//
//   $ ./examples/design_space_exploration [model-file]
//
// Loads a serialized macro-model if given (see
// examples/characterize_processor.cpp); otherwise characterizes in-process
// first. Then evaluates the four Reed-Solomon custom-instruction choices
// with the fast path only: ISS + resource-usage analysis + dot product.

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "explore/explore.h"
#include "model/characterize.h"
#include "util/strings.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  using namespace exten;

  std::optional<model::EnergyMacroModel> macro_model;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "cannot read " << argv[1] << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    macro_model = model::EnergyMacroModel::deserialize(buffer.str());
    std::cout << "loaded macro-model from " << argv[1] << "\n";
  } else {
    std::cout << "no model file given; characterizing first (pass a file\n"
                 "written by characterize_processor to skip this)...\n";
    macro_model =
        model::characterize(workloads::characterization_suite()).model;
  }

  std::cout << "\nevaluating four Reed-Solomon extension candidates with the\n"
               "macro-model (no RTL, no synthesis):\n\n";

  std::vector<explore::Candidate> candidates;
  for (model::TestProgram& variant : workloads::reed_solomon_variants()) {
    std::string name = variant.name;
    candidates.push_back({std::move(name), std::move(variant)});
  }
  const explore::ExploreResult result = explore::rank_candidates(
      candidates, *macro_model, explore::Objective::kEdp);

  explore::to_table(result).print(std::cout);

  std::cout << "\nlowest energy-delay product: " << result.best().name
            << "  (Pareto-optimal: "
            << (result.best().pareto_optimal ? "yes" : "no") << ")\n"
            << "\nEach estimate took milliseconds; the RTL-level flow would "
               "have\nsynthesized and simulated four different processors.\n";
  return 0;
}
