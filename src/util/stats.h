#pragma once

// Streaming statistics accumulators used by the regression diagnostics and
// the experiment harnesses (fitting errors, estimation errors, timings).

#include <cmath>
#include <cstddef>
#include <limits>

namespace exten {

/// Single-pass accumulator for mean / variance / extrema (Welford).
class StreamingStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    sum_sq_ += x * x;
    sum_abs_ += std::fabs(x);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double mean_abs() const { return n_ ? sum_abs_ / static_cast<double>(n_) : 0.0; }

  /// Root mean square of the samples (not centred).
  double rms() const {
    return n_ ? std::sqrt(sum_sq_ / static_cast<double>(n_)) : 0.0;
  }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

  double stddev() const { return std::sqrt(variance()); }

  /// Largest absolute sample.
  double max_abs() const {
    return n_ ? std::fmax(std::fabs(min_), std::fabs(max_)) : 0.0;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_sq_ = 0.0;
  double sum_abs_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Signed relative error in percent: 100 * (estimate - reference) / reference.
inline double percent_error(double estimate, double reference) {
  if (reference == 0.0) return estimate == 0.0 ? 0.0 : 100.0;
  return 100.0 * (estimate - reference) / reference;
}

}  // namespace exten
