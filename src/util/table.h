#pragma once

// ASCII table and CSV output used by the benchmark harnesses to print the
// paper's tables and figure series in a readable, diff-friendly form.

#include <ostream>
#include <string>
#include <vector>

namespace exten {

/// Column-aligned ASCII table with a header row.
///
///   AsciiTable t({"Application", "Estimate (uJ)", "Error (%)"});
///   t.add_row({"Ins_sort", "336.9", "-2.2"});
///   t.print(std::cout);
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  /// Adds one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

  /// Renders with box-drawing rules. First column left-aligned, the rest
  /// right-aligned (numeric convention).
  void print(std::ostream& os) const;

  /// Renders the same content as CSV (header + rows).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes a CSV field (quotes fields containing comma/quote/newline).
std::string csv_escape(const std::string& field);

}  // namespace exten
