#pragma once

// Small string utilities shared by the assembler, the TIE-lite parser and
// the reporting code. All functions are pure and allocation-light.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace exten {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits `s` on `sep`, optionally dropping empty fields.
std::vector<std::string_view> split(std::string_view s, char sep,
                                    bool keep_empty = false);

/// Splits `s` into lines (handles both "\n" and "\r\n").
std::vector<std::string_view> split_lines(std::string_view s);

/// True if `s` starts with / ends with the given prefix / suffix.
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// ASCII lower-casing (locale independent).
std::string to_lower(std::string_view s);

/// True if `s` is a valid identifier: [A-Za-z_][A-Za-z0-9_.]*
bool is_identifier(std::string_view s);

/// Parses a signed 64-bit integer with 0x/0b/decimal prefixes and an
/// optional leading '-'. Returns false on any syntax error or overflow.
bool parse_int(std::string_view s, std::int64_t* out);

/// Formats `value` with `digits` fractional digits ("%.3f"-style).
std::string format_fixed(double value, int digits);

/// Formats a byte count or plain count with thousands separators
/// (e.g. 1234567 -> "1,234,567"). Used by report printers.
std::string with_commas(std::uint64_t value);

}  // namespace exten
