#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace exten {

namespace {
bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && is_space(s[b])) ++b;
  std::size_t e = s.size();
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep,
                                    bool keep_empty) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      std::string_view field = s.substr(start, i - start);
      if (keep_empty || !field.empty()) out.push_back(field);
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_lines(std::string_view s) {
  std::vector<std::string_view> lines = split(s, '\n', /*keep_empty=*/true);
  for (auto& line : lines) {
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  }
  // split() with keep_empty produces one trailing empty field for a final
  // newline; drop it so "a\nb\n" yields {"a", "b"}.
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  return lines;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c)) || c == '.';
  };
  if (!head(s[0])) return false;
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (!tail(s[i])) return false;
  }
  return true;
}

bool parse_int(std::string_view s, std::int64_t* out) {
  s = trim(s);
  if (s.empty()) return false;
  bool negative = false;
  if (s[0] == '-' || s[0] == '+') {
    negative = (s[0] == '-');
    s.remove_prefix(1);
    if (s.empty()) return false;
  }
  int base = 10;
  if (starts_with(s, "0x") || starts_with(s, "0X")) {
    base = 16;
    s.remove_prefix(2);
  } else if (starts_with(s, "0b") || starts_with(s, "0B")) {
    base = 2;
    s.remove_prefix(2);
  }
  if (s.empty()) return false;
  std::uint64_t magnitude = 0;
  auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), magnitude, base);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  // Allow the full unsigned range for positive literals (useful for
  // 0xffffffff-style masks); reject magnitudes that can't be negated.
  if (negative) {
    if (magnitude > static_cast<std::uint64_t>(INT64_MAX) + 1) return false;
    *out = static_cast<std::int64_t>(~magnitude + 1);
  } else {
    *out = static_cast<std::int64_t>(magnitude);
  }
  return true;
}

std::string format_fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace exten
