#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>

#include "util/error.h"

namespace exten {

// ---------------------------------------------------------------------------
// JsonValue accessors
// ---------------------------------------------------------------------------

namespace {
const char* kind_name(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

void require_kind(const JsonValue& v, JsonValue::Kind want) {
  EXTEN_CHECK(v.kind() == want, "JSON value is ", kind_name(v.kind()),
              ", expected ", kind_name(want));
}
}  // namespace

bool JsonValue::as_bool() const {
  require_kind(*this, Kind::kBool);
  return bool_;
}

double JsonValue::as_number() const {
  require_kind(*this, Kind::kNumber);
  return number_;
}

const std::string& JsonValue::as_string() const {
  require_kind(*this, Kind::kString);
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  require_kind(*this, Kind::kArray);
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  require_kind(*this, Kind::kObject);
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* member = find(key);
  if (member == nullptr || member->is_null()) return std::string(fallback);
  return member->as_string();
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_space();
    EXTEN_CHECK(pos_ == text_.size(), "JSON: trailing characters at offset ",
                pos_);
    return value;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    throw Error("JSON: ", what, " at offset ", pos_);
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c, const char* what) {
    if (!consume(c)) fail(what);
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value() {
    skip_space();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
      case 'f':
      case 'n': return parse_literal();
      default: return parse_number();
    }
  }

  JsonValue parse_literal() {
    JsonValue v;
    if (consume_word("true")) {
      v.kind_ = JsonValue::Kind::kBool;
      v.bool_ = true;
    } else if (consume_word("false")) {
      v.kind_ = JsonValue::Kind::kBool;
      v.bool_ = false;
    } else if (consume_word("null")) {
      v.kind_ = JsonValue::Kind::kNull;
    } else {
      fail("invalid literal");
    }
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) { /* sign */ }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double parsed = 0.0;
    const auto [end, ec] = std::from_chars(text_.data() + start,
                                           text_.data() + pos_, parsed);
    if (ec != std::errc{} || end != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("invalid number");
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = parsed;
    return v;
  }

  /// Reads exactly four hex digits of a \uXXXX escape.
  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("bad \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail("bad \\u escape");
    }
    return code;
  }

  JsonValue parse_string() {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kString;
    v.string_ = parse_raw_string();
    return v;
  }

  std::string parse_raw_string() {
    expect('"', "expected '\"'");
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = parse_hex4();
            // Surrogate pair: a high surrogate must be immediately
            // followed by an escaped low surrogate; lone surrogates (in
            // either order) are malformed JSON, not U+FFFD material —
            // HTTP request bodies flow through here, so be strict.
            if (code >= 0xd800 && code <= 0xdbff) {
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                fail("unpaired high surrogate");
              }
              pos_ += 2;
              const unsigned low = parse_hex4();
              if (low < 0xdc00 || low > 0xdfff) {
                fail("invalid low surrogate");
              }
              code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
            } else if (code >= 0xdc00 && code <= 0xdfff) {
              fail("unpaired low surrogate");
            }
            // UTF-8 encode (1-4 bytes).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else if (code < 0x10000) {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else {
              out += static_cast<char>(0xf0 | (code >> 18));
              out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue parse_array() {
    expect('[', "expected '['");
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skip_space();
    if (consume(']')) return v;
    while (true) {
      v.array_.push_back(parse_value());
      skip_space();
      if (consume(']')) break;
      expect(',', "expected ',' or ']'");
    }
    return v;
  }

  JsonValue parse_object() {
    expect('{', "expected '{'");
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skip_space();
    if (consume('}')) return v;
    while (true) {
      skip_space();
      std::string key = parse_raw_string();
      skip_space();
      expect(':', "expected ':'");
      v.object_[std::move(key)] = parse_value();
      skip_space();
      if (consume('}')) break;
      expect(',', "expected ',' or '}'");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::format_number(double value) {
  if (!std::isfinite(value)) return "null";
  // Integral values print without a fractional part; everything else gets
  // enough digits to round-trip.
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void JsonWriter::comma() {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ << ",";
    needs_comma_.back() = true;
  }
}

void JsonWriter::key_prefix(std::string_view key) {
  comma();
  out_ << "\"" << json_escape(key) << "\":";
}

void JsonWriter::begin_object() {
  comma();
  out_ << "{";
  needs_comma_.push_back(false);
}

void JsonWriter::end_object() {
  out_ << "}";
  needs_comma_.pop_back();
}

void JsonWriter::begin_array() {
  comma();
  out_ << "[";
  needs_comma_.push_back(false);
}

void JsonWriter::end_array() {
  out_ << "]";
  needs_comma_.pop_back();
}

void JsonWriter::field(std::string_view key, double value) {
  key_prefix(key);
  out_ << format_number(value);
}

void JsonWriter::field(std::string_view key, std::uint64_t value) {
  key_prefix(key);
  out_ << value;
}

void JsonWriter::field(std::string_view key, int value) {
  key_prefix(key);
  out_ << value;
}

void JsonWriter::field(std::string_view key, bool value) {
  key_prefix(key);
  out_ << (value ? "true" : "false");
}

void JsonWriter::field(std::string_view key, std::string_view value) {
  key_prefix(key);
  out_ << "\"" << json_escape(value) << "\"";
}

void JsonWriter::object_field(std::string_view key) {
  key_prefix(key);
  out_ << "{";
  needs_comma_.push_back(false);
}

void JsonWriter::array_field(std::string_view key) {
  key_prefix(key);
  out_ << "[";
  needs_comma_.push_back(false);
}

void JsonWriter::element(double value) {
  comma();
  out_ << format_number(value);
}

void JsonWriter::element(std::string_view value) {
  comma();
  out_ << "\"" << json_escape(value) << "\"";
}

void JsonWriter::element_object() { begin_object(); }

}  // namespace exten
