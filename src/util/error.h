#pragma once

// Error handling for the exten library.
//
// All fatal, caller-visible failures are reported as exten::Error, a
// std::runtime_error carrying a formatted message. Helper macros build
// messages from streamable parts so call sites stay terse:
//
//   if (width > kMaxWidth)
//     throw Error("component ", name, ": width ", width, " exceeds ", kMaxWidth);
//
// EXTEN_CHECK is used for invariant/precondition checks that must survive
// release builds (user input validation); assert() remains for internal
// logic errors.

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace exten {

/// Exception type used for all library errors (parse errors, validation
/// failures, numerical failures, simulation faults).
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}

  /// Builds the message by streaming every argument.
  template <typename... Parts>
  explicit Error(const Parts&... parts) : std::runtime_error(concat(parts...)) {}

 private:
  template <typename... Parts>
  static std::string concat(const Parts&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    return os.str();
  }
};

/// Throws exten::Error with the given streamed message when `cond` is false.
#define EXTEN_CHECK(cond, ...)                          \
  do {                                                  \
    if (!(cond)) {                                      \
      throw ::exten::Error("check failed: " #cond ": ", \
                           __VA_ARGS__);                \
    }                                                   \
  } while (false)

}  // namespace exten
