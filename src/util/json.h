#pragma once

// Minimal JSON support for the service tooling (no third-party deps).
//
// Parser: full JSON values (null, bool, number, string with escapes,
// array, object) via recursive descent; throws exten::Error with a byte
// offset on malformed input. Numbers are held as double — ample for the
// counters and paths the batch tools exchange.
//
// Writer side: JsonWriter builds objects/arrays with correct escaping;
// the tools use it for the metrics blocks and bench snapshots.

#include <cstddef>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace exten {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; each throws exten::Error on a kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Convenience: member `key` as a string, or `fallback` when absent.
  /// Throws when present but not a string.
  std::string string_or(std::string_view key, std::string_view fallback) const;

  /// Parses exactly one JSON value (trailing non-space input is an error).
  static JsonValue parse(std::string_view text);

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Escapes `s` for embedding inside a JSON string literal (no quotes).
std::string json_escape(std::string_view s);

/// Streaming writer for flat-ish JSON (objects/arrays nest freely).
/// Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.field("jobs", 8);
///   w.field("hit_rate", 0.5);
///   w.end_object();
///   std::cout << w.str();
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Named members (inside an object).
  void field(std::string_view key, double value);
  void field(std::string_view key, std::uint64_t value);
  void field(std::string_view key, int value);
  void field(std::string_view key, bool value);
  void field(std::string_view key, std::string_view value);
  /// Opens a nested container as a named member.
  void object_field(std::string_view key);
  void array_field(std::string_view key);

  /// Unnamed elements (inside an array).
  void element(double value);
  void element(std::string_view value);
  void element_object();

  std::string str() const { return out_.str(); }

 private:
  void comma();
  void key_prefix(std::string_view key);
  static std::string format_number(double value);

  std::ostringstream out_;
  std::vector<bool> needs_comma_;
};

}  // namespace exten
