#pragma once

// Deterministic pseudo-random number generation (xoshiro256**).
//
// Workload generators, data-dependent simulations and the fuzzing
// subsystem must be reproducible across runs, compilers and platforms, so
// nothing here touches <random>: std::uniform_int_distribution and
// std::shuffle are implementation-defined (the same seed yields different
// sequences on libstdc++ vs libc++), which would make a fuzz seed
// non-reproducible across toolchains. Every bound and permutation below
// is an explicit algorithm over fixed-width integers — the exact output
// sequences are pinned by golden tests (tests/test_util.cpp), so any
// accidental change to the sequence is a test failure, not a silent
// corpus invalidation.

#include <cstdint>
#include <utility>
#include <vector>

namespace exten {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
/// Deterministic for a given seed on every platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes state from a 64-bit seed using splitmix64 expansion.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next 64 random bits.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Next 32 random bits.
  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform integer in [0, bound). bound must be nonzero. Explicit
  /// rejection sampling (no std distribution), so the draw sequence is
  /// identical on every platform for a given seed.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi and the
  /// span hi - lo fits in a uint64 minus one (always true for the 32-bit
  /// and small ranges the generators use).
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p.
  bool next_bool(double p = 0.5) { return next_double() < p; }

  /// Uniform element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[static_cast<std::size_t>(next_below(items.size()))];
  }

  /// In-place Fisher-Yates shuffle. std::shuffle's draw schedule is
  /// implementation-defined, so fuzz paths must use this instead.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[next_below(i)]);
    }
  }

  /// Derives the seed of an independent stream (e.g. fuzz iteration
  /// `stream` of master seed `seed`) with splitmix64 — a pure function of
  /// its inputs, so iteration N is replayable without generating 0..N-1.
  static std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) {
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace exten
