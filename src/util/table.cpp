#include "util/table.h"

#include <algorithm>

#include "util/error.h"

namespace exten {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  EXTEN_CHECK(!header_.empty(), "table needs at least one column");
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  EXTEN_CHECK(cells.size() == header_.size(), "row arity ", cells.size(),
              " != header arity ", header_.size());
  rows_.push_back(std::move(cells));
}

void AsciiTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = width[c] - cells[c].size();
      if (c == 0) {
        os << ' ' << cells[c] << std::string(pad, ' ') << " |";
      } else {
        os << ' ' << std::string(pad, ' ') << cells[c] << " |";
      }
    }
    os << '\n';
  };

  rule();
  emit(header_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
}

void AsciiTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace exten
