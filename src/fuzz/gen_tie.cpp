#include "fuzz/gen_tie.h"

#include <sstream>
#include <vector>

namespace exten::fuzz {

namespace {

struct Decls {
  std::vector<std::string> states;
  std::vector<std::string> regfiles;
  std::vector<std::string> tables;
};

class SpecBuilder {
 public:
  SpecBuilder(Rng& rng, const TieGenOptions& options)
      : rng_(rng), options_(options) {}

  std::string build() {
    emit_decls();
    const unsigned instructions =
        1 + static_cast<unsigned>(rng_.next_below(options_.max_instructions));
    for (unsigned i = 0; i < instructions; ++i) emit_instruction(i);
    return out_.str();
  }

 private:
  void emit_decls() {
    const unsigned states =
        static_cast<unsigned>(rng_.next_below(options_.max_states + 1));
    for (unsigned i = 0; i < states; ++i) {
      const std::string name = "s" + std::to_string(i);
      out_ << "state " << name << " width="
           << rng_.next_in(1, 64) << "\n";
      decls_.states.push_back(name);
    }
    const unsigned regfiles =
        static_cast<unsigned>(rng_.next_below(options_.max_regfiles + 1));
    for (unsigned i = 0; i < regfiles; ++i) {
      const std::string name = "f" + std::to_string(i);
      out_ << "regfile " << name << " width=" << rng_.next_in(1, 64)
           << " size=" << (1u << rng_.next_below(5)) << "\n";
      decls_.regfiles.push_back(name);
    }
    const unsigned tables =
        static_cast<unsigned>(rng_.next_below(options_.max_tables + 1));
    for (unsigned i = 0; i < tables; ++i) {
      const std::string name = "t" + std::to_string(i);
      const unsigned width = 1 + static_cast<unsigned>(rng_.next_below(16));
      const std::size_t size = std::size_t{1} << (1 + rng_.next_below(6));
      out_ << "table " << name << " size=" << size << " width=" << width
           << " {";
      for (std::size_t v = 0; v < size; ++v) {
        const std::uint64_t mask =
            width >= 64 ? ~std::uint64_t{0}
                        : ((std::uint64_t{1} << width) - 1);
        out_ << (v == 0 ? " " : ", ") << (rng_.next_u64() & mask);
      }
      out_ << " }\n";
      decls_.tables.push_back(name);
    }
  }

  /// Generates an expression, recording operand usage in the flags.
  std::string expr(unsigned depth) {
    // Leaves when the depth budget runs out or by chance.
    if (depth == 0 || rng_.next_bool(0.3)) return leaf();
    switch (rng_.next_below(4)) {
      case 0: {  // binary
        static const std::vector<std::string> kOps = {
            "+", "-", "*", "&", "|", "^", "<<", ">>",
            "==", "!=", "<", "<=", ">", ">="};
        return "(" + expr(depth - 1) + " " + rng_.pick(kOps) + " " +
               expr(depth - 1) + ")";
      }
      case 1:  // unary
        return (rng_.next_bool() ? "~" : "-") + std::string("(") +
               expr(depth - 1) + ")";
      case 2: {  // builtin call
        switch (rng_.next_below(7)) {
          case 0:
            return (rng_.next_bool() ? "sext(" : "zext(") + expr(depth - 1) +
                   ", " + std::to_string(rng_.next_in(1, 63)) + ")";
          case 1:
            return "sel(" + expr(depth - 1) + ", " + expr(depth - 1) + ", " +
                   expr(depth - 1) + ")";
          case 2: {
            static const std::vector<std::string> kPair = {"min", "max",
                                                           "mins", "maxs"};
            return rng_.pick(kPair) + "(" + expr(depth - 1) + ", " +
                   expr(depth - 1) + ")";
          }
          case 3:
            return "abs(" + expr(depth - 1) + ")";
          case 4:
            return "popcount(" + expr(depth - 1) + ")";
          default:
            return "asr(" + expr(depth - 1) + ", " + expr(depth - 1) + ", " +
                   std::to_string(rng_.next_in(1, 63)) + ")";
        }
      }
      default:  // indexed read
        if (!decls_.tables.empty() && rng_.next_bool()) {
          return rng_.pick(decls_.tables) + "[" + expr(depth - 1) + "]";
        }
        if (!decls_.regfiles.empty()) {
          return rng_.pick(decls_.regfiles) + "[" + expr(depth - 1) + "]";
        }
        return leaf();
    }
  }

  std::string leaf() {
    switch (rng_.next_below(5)) {
      case 0:
        uses_rs1_ = true;
        return "rs1";
      case 1:
        uses_rs2_ = true;
        return "rs2";
      case 2:
        if (!decls_.states.empty()) return rng_.pick(decls_.states);
        [[fallthrough]];
      case 3:
        // Small literals keep shifts and table indices interesting.
        return std::to_string(rng_.next_below(256));
      default:
        return std::to_string(rng_.next_u32());
    }
  }

  void emit_instruction(unsigned index) {
    uses_rs1_ = uses_rs2_ = false;
    const unsigned assignments =
        1 + static_cast<unsigned>(rng_.next_below(options_.max_assignments));
    bool writes_rd = false;
    std::ostringstream semantics;
    for (unsigned a = 0; a < assignments; ++a) {
      const std::uint64_t target = rng_.next_below(3);
      if (target == 0 || (decls_.states.empty() && decls_.regfiles.empty())) {
        semantics << "    rd = " << expr(options_.max_expr_depth) << ";\n";
        writes_rd = true;
      } else if (target == 1 && !decls_.states.empty()) {
        semantics << "    " << rng_.pick(decls_.states) << " = "
                  << expr(options_.max_expr_depth) << ";\n";
      } else if (!decls_.regfiles.empty()) {
        semantics << "    " << rng_.pick(decls_.regfiles) << "["
                  << expr(2) << "] = " << expr(options_.max_expr_depth)
                  << ";\n";
      } else {
        semantics << "    rd = " << expr(options_.max_expr_depth) << ";\n";
        writes_rd = true;
      }
    }

    out_ << "instruction fz" << index << " {\n";
    out_ << "  latency " << rng_.next_in(1, 4) << "\n";
    if (uses_rs1_ && uses_rs2_) {
      out_ << "  reads rs1, rs2\n";
    } else if (uses_rs1_) {
      out_ << "  reads rs1\n";
    } else if (uses_rs2_) {
      out_ << "  reads rs2\n";
    }
    if (writes_rd) out_ << "  writes rd\n";
    if (rng_.next_bool(0.2)) out_ << "  isolated\n";
    // Always at least one explicit component (the compiler rejects empty
    // datapaths for instructions with no implicit state/table component).
    static const std::vector<std::string> kComponents = {
        "mult", "adder", "logic", "shifter", "tie_mult",
        "tie_mac", "tie_add", "tie_csa"};
    out_ << "  use logic width=8\n";
    if (rng_.next_bool()) {
      out_ << "  use " << rng_.pick(kComponents)
           << " width=" << rng_.next_in(1, 64)
           << " count=" << rng_.next_in(1, 4) << "\n";
    }
    out_ << "  semantics {\n" << semantics.str() << "  }\n";
    out_ << "}\n";
  }

  Rng& rng_;
  const TieGenOptions& options_;
  Decls decls_;
  std::ostringstream out_;
  bool uses_rs1_ = false;
  bool uses_rs2_ = false;
};

}  // namespace

std::string generate_tie_spec(Rng& rng, const TieGenOptions& options) {
  return SpecBuilder(rng, options).build();
}

}  // namespace exten::fuzz
