#include "fuzz/gen_tie.h"

#include <sstream>

namespace exten::fuzz {

namespace {

/// Expression generation over a fixed declaration context. Records which
/// of rs1/rs2 the generated expressions used so the instruction emitter
/// can declare `reads` consistently.
class ExprBuilder {
 public:
  ExprBuilder(Rng& rng, const TieDeclNames& decls) : rng_(rng), decls_(decls) {}

  std::string expr(unsigned depth) {
    // Leaves when the depth budget runs out or by chance.
    if (depth == 0 || rng_.next_bool(0.3)) return leaf();
    switch (rng_.next_below(4)) {
      case 0: {  // binary
        static const std::vector<std::string> kOps = {
            "+", "-", "*", "&", "|", "^", "<<", ">>",
            "==", "!=", "<", "<=", ">", ">="};
        return "(" + expr(depth - 1) + " " + rng_.pick(kOps) + " " +
               expr(depth - 1) + ")";
      }
      case 1:  // unary
        return (rng_.next_bool() ? "~" : "-") + std::string("(") +
               expr(depth - 1) + ")";
      case 2: {  // builtin call
        switch (rng_.next_below(7)) {
          case 0:
            return (rng_.next_bool() ? "sext(" : "zext(") + expr(depth - 1) +
                   ", " + std::to_string(rng_.next_in(1, 63)) + ")";
          case 1:
            return "sel(" + expr(depth - 1) + ", " + expr(depth - 1) + ", " +
                   expr(depth - 1) + ")";
          case 2: {
            static const std::vector<std::string> kPair = {"min", "max",
                                                           "mins", "maxs"};
            return rng_.pick(kPair) + "(" + expr(depth - 1) + ", " +
                   expr(depth - 1) + ")";
          }
          case 3:
            return "abs(" + expr(depth - 1) + ")";
          case 4:
            return "popcount(" + expr(depth - 1) + ")";
          default:
            return "asr(" + expr(depth - 1) + ", " + expr(depth - 1) + ", " +
                   std::to_string(rng_.next_in(1, 63)) + ")";
        }
      }
      default:  // indexed read
        if (!decls_.tables.empty() && rng_.next_bool()) {
          return rng_.pick(decls_.tables) + "[" + expr(depth - 1) + "]";
        }
        if (!decls_.regfiles.empty()) {
          return rng_.pick(decls_.regfiles) + "[" + expr(depth - 1) + "]";
        }
        return leaf();
    }
  }

  std::string leaf() {
    switch (rng_.next_below(5)) {
      case 0:
        uses_rs1 = true;
        return "rs1";
      case 1:
        uses_rs2 = true;
        return "rs2";
      case 2:
        if (!decls_.states.empty()) return rng_.pick(decls_.states);
        [[fallthrough]];
      case 3:
        // Small literals keep shifts and table indices interesting.
        return std::to_string(rng_.next_below(256));
      default:
        return std::to_string(rng_.next_u32());
    }
  }

  bool uses_rs1 = false;
  bool uses_rs2 = false;

 private:
  Rng& rng_;
  const TieDeclNames& decls_;
};

}  // namespace

std::string generate_tie_decls(Rng& rng, const TieGenOptions& options,
                               TieDeclNames* names) {
  TieDeclNames discard;
  if (names == nullptr) names = &discard;
  std::ostringstream out;
  const unsigned states =
      static_cast<unsigned>(rng.next_below(options.max_states + 1));
  for (unsigned i = 0; i < states; ++i) {
    const std::string name = "s" + std::to_string(i);
    out << "state " << name << " width=" << rng.next_in(1, 64) << "\n";
    names->states.push_back(name);
  }
  const unsigned regfiles =
      static_cast<unsigned>(rng.next_below(options.max_regfiles + 1));
  for (unsigned i = 0; i < regfiles; ++i) {
    const std::string name = "f" + std::to_string(i);
    out << "regfile " << name << " width=" << rng.next_in(1, 64)
        << " size=" << (1u << rng.next_below(5)) << "\n";
    names->regfiles.push_back(name);
  }
  const unsigned tables =
      static_cast<unsigned>(rng.next_below(options.max_tables + 1));
  for (unsigned i = 0; i < tables; ++i) {
    const std::string name = "t" + std::to_string(i);
    const unsigned width = 1 + static_cast<unsigned>(rng.next_below(16));
    const std::size_t size = std::size_t{1} << (1 + rng.next_below(6));
    out << "table " << name << " size=" << size << " width=" << width
        << " {";
    for (std::size_t v = 0; v < size; ++v) {
      const std::uint64_t mask = width >= 64
                                     ? ~std::uint64_t{0}
                                     : ((std::uint64_t{1} << width) - 1);
      out << (v == 0 ? " " : ", ") << (rng.next_u64() & mask);
    }
    out << " }\n";
    names->tables.push_back(name);
  }
  return out.str();
}

std::string generate_tie_instruction(Rng& rng, std::string_view name,
                                     const TieDeclNames& decls,
                                     const TieGenOptions& options) {
  ExprBuilder builder(rng, decls);
  const unsigned assignments =
      1 + static_cast<unsigned>(rng.next_below(options.max_assignments));
  bool writes_rd = false;
  std::ostringstream semantics;
  for (unsigned a = 0; a < assignments; ++a) {
    const std::uint64_t target = rng.next_below(3);
    if (target == 0 || (decls.states.empty() && decls.regfiles.empty())) {
      semantics << "    rd = " << builder.expr(options.max_expr_depth)
                << ";\n";
      writes_rd = true;
    } else if (target == 1 && !decls.states.empty()) {
      semantics << "    " << rng.pick(decls.states) << " = "
                << builder.expr(options.max_expr_depth) << ";\n";
    } else if (!decls.regfiles.empty()) {
      semantics << "    " << rng.pick(decls.regfiles) << "["
                << builder.expr(2)
                << "] = " << builder.expr(options.max_expr_depth) << ";\n";
    } else {
      semantics << "    rd = " << builder.expr(options.max_expr_depth)
                << ";\n";
      writes_rd = true;
    }
  }

  std::ostringstream out;
  out << "instruction " << name << " {\n";
  out << "  latency " << rng.next_in(1, 4) << "\n";
  if (builder.uses_rs1 && builder.uses_rs2) {
    out << "  reads rs1, rs2\n";
  } else if (builder.uses_rs1) {
    out << "  reads rs1\n";
  } else if (builder.uses_rs2) {
    out << "  reads rs2\n";
  }
  if (writes_rd) out << "  writes rd\n";
  if (rng.next_bool(0.2)) out << "  isolated\n";
  // Always at least one explicit component (the compiler rejects empty
  // datapaths for instructions with no implicit state/table component).
  static const std::vector<std::string> kComponents = {
      "mult", "adder", "logic", "shifter", "tie_mult",
      "tie_mac", "tie_add", "tie_csa"};
  out << "  use logic width=8\n";
  if (rng.next_bool()) {
    out << "  use " << rng.pick(kComponents) << " width=" << rng.next_in(1, 64)
        << " count=" << rng.next_in(1, 4) << "\n";
  }
  out << "  semantics {\n" << semantics.str() << "  }\n";
  out << "}\n";
  return out.str();
}

std::string generate_tie_spec(Rng& rng, const TieGenOptions& options) {
  TieDeclNames decls;
  std::string out = generate_tie_decls(rng, options, &decls);
  const unsigned instructions =
      1 + static_cast<unsigned>(rng.next_below(options.max_instructions));
  for (unsigned i = 0; i < instructions; ++i) {
    out += generate_tie_instruction(rng, "fz" + std::to_string(i), decls,
                                    options);
  }
  return out;
}

}  // namespace exten::fuzz
