#include "fuzz/fuzz.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace exten::fuzz {

Corpus Corpus::load_directory(const std::string& dir) {
  Corpus corpus;
  std::error_code ec;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec)) paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    std::ifstream file(path, std::ios::binary);
    if (!file.good()) continue;
    std::ostringstream buffer;
    buffer << file.rdbuf();
    corpus.add(buffer.str());
  }
  return corpus;
}

void Corpus::append(const Corpus& other) {
  for (const std::string& entry : other.entries_) entries_.push_back(entry);
}

std::optional<Failure> run_target(const Target& target,
                                  const RunOptions& options) {
  for (std::uint64_t i = 0; i < options.iterations; ++i) {
    Rng rng(Rng::derive_seed(options.seed, i));
    static const Corpus kEmpty;
    const Corpus& corpus = options.corpus ? *options.corpus : kEmpty;
    std::string payload = target.generate(rng, corpus);
    Outcome outcome = target.run(payload);
    if (!outcome.ok) {
      Failure failure;
      failure.target = std::string(target.name());
      failure.seed = options.seed;
      failure.iteration = i;
      failure.message = std::move(outcome.message);
      failure.payload = minimize(target, std::move(payload), &failure.message,
                                 options.max_shrink_steps);
      return failure;
    }
  }
  return std::nullopt;
}

namespace {

/// Splits into lines, keeping the terminator with each line so joining is
/// byte-exact.
std::vector<std::string> chunk_lines(const std::string& payload) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < payload.size()) {
    std::size_t end = payload.find('\n', start);
    if (end == std::string::npos) {
      lines.push_back(payload.substr(start));
      break;
    }
    lines.push_back(payload.substr(start, end - start + 1));
    start = end + 1;
  }
  return lines;
}

std::string join(const std::vector<std::string>& chunks,
                 std::size_t skip_begin, std::size_t skip_end) {
  std::string out;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (i >= skip_begin && i < skip_end) continue;
    out += chunks[i];
  }
  return out;
}

}  // namespace

std::string minimize(const Target& target, std::string payload,
                     std::string* message, std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  bool progress = true;
  while (progress && steps < max_steps) {
    progress = false;
    std::vector<std::string> chunks;
    if (target.shrink_lines()) {
      chunks = chunk_lines(payload);
    } else {
      // Byte payloads shrink in fixed-size chunks refined per round.
      chunks.reserve(payload.size());
      for (char c : payload) chunks.emplace_back(1, c);
    }
    if (chunks.size() < 2) break;
    // Try removing windows from large (half the payload) to single chunks.
    for (std::size_t window = chunks.size() / 2; window >= 1; window /= 2) {
      for (std::size_t begin = 0;
           begin + window <= chunks.size() && steps < max_steps;
           begin += window) {
        const std::string candidate = join(chunks, begin, begin + window);
        if (candidate.empty()) continue;
        ++steps;
        Outcome outcome = target.run(candidate);
        if (!outcome.ok) {
          payload = candidate;
          *message = std::move(outcome.message);
          progress = true;
          break;
        }
      }
      if (progress || window == 1) break;
    }
  }
  return payload;
}

std::string write_repro_text(const Failure& failure) {
  std::ostringstream os;
  os << "xtc-fuzz repro v1\n";
  os << "target " << failure.target << '\n';
  os << "seed " << failure.seed << " iteration " << failure.iteration << '\n';
  os << "payload " << failure.payload.size() << '\n';
  os << failure.payload;
  os << "\n--- message\n" << failure.message << '\n';
  return os.str();
}

Failure parse_repro_text(std::string_view text) {
  Failure failure;
  auto take_line = [&text]() -> std::string_view {
    const std::size_t end = text.find('\n');
    EXTEN_CHECK(end != std::string_view::npos, "repro: truncated header");
    std::string_view line = text.substr(0, end);
    text.remove_prefix(end + 1);
    return line;
  };

  EXTEN_CHECK(take_line() == "xtc-fuzz repro v1",
              "repro: missing 'xtc-fuzz repro v1' header");
  std::string_view line = take_line();
  EXTEN_CHECK(starts_with(line, "target "), "repro: missing target line");
  failure.target = std::string(line.substr(7));

  line = take_line();
  EXTEN_CHECK(starts_with(line, "seed "), "repro: missing seed line");
  {
    std::istringstream is{std::string(line)};
    std::string word;
    is >> word >> failure.seed >> word >> failure.iteration;
  }

  line = take_line();
  EXTEN_CHECK(starts_with(line, "payload "), "repro: missing payload line");
  std::int64_t length = 0;
  EXTEN_CHECK(parse_int(line.substr(8), &length) && length >= 0,
              "repro: bad payload length '", line.substr(8), "'");
  EXTEN_CHECK(static_cast<std::size_t>(length) <= text.size(),
              "repro: payload truncated (expected ", length, " bytes, have ",
              text.size(), ")");
  failure.payload = std::string(text.substr(0, static_cast<std::size_t>(length)));
  text.remove_prefix(static_cast<std::size_t>(length));

  // Optional trailing "--- message" block (human-readable only).
  const std::size_t marker = text.find("--- message\n");
  if (marker != std::string_view::npos) {
    std::string_view message = text.substr(marker + 12);
    while (ends_with(message, "\n")) message.remove_suffix(1);
    failure.message = std::string(message);
  }
  return failure;
}

}  // namespace exten::fuzz
