#pragma once

// Random-but-valid TIE-lite specification generation.
//
// Specs exercise the whole semantics language — every operator, builtin
// call, state/regfile/table access, multi-assignment instructions — while
// respecting the compiler's validation rules (width/size/latency bounds,
// reads/writes declarations consistent with the semantics, power-of-two
// tables). Used by the tie_diff target (bytecode vs tree evaluation) and
// by engine_diff custom-instruction mixes.

#include <string>

#include "util/rng.h"

namespace exten::fuzz {

struct TieGenOptions {
  unsigned max_states = 2;
  unsigned max_regfiles = 1;
  unsigned max_tables = 2;
  unsigned max_instructions = 3;
  unsigned max_assignments = 3;
  unsigned max_expr_depth = 4;
};

/// Generates TIE-lite source text that tie::compile_tie_source accepts.
std::string generate_tie_spec(Rng& rng, const TieGenOptions& options = {});

}  // namespace exten::fuzz
