#pragma once

// Random-but-valid TIE-lite specification generation.
//
// Specs exercise the whole semantics language — every operator, builtin
// call, state/regfile/table access, multi-assignment instructions — while
// respecting the compiler's validation rules (width/size/latency bounds,
// reads/writes declarations consistent with the semantics, power-of-two
// tables). Used by the tie_diff target (bytecode vs tree evaluation), by
// engine_diff custom-instruction mixes, and — through the split
// decls/instruction entry points below — by the design-space exploration
// genome (src/dse/genome.h), which composes candidate extension *sets*
// from independently-seeded instruction genes.
//
// Seed stability is part of the API contract: for a fixed seed and
// options, every generator here emits byte-identical text on every
// platform (the Rng draws are explicit fixed-width algorithms, see
// util/rng.h). tests/test_fuzz.cpp pins golden digests so an accidental
// change to the draw sequence fails a test instead of silently
// invalidating fuzz corpora and DSE checkpoints.

#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace exten::fuzz {

struct TieGenOptions {
  unsigned max_states = 2;
  unsigned max_regfiles = 1;
  unsigned max_tables = 2;
  unsigned max_instructions = 3;
  unsigned max_assignments = 3;
  unsigned max_expr_depth = 4;
};

/// Names of the shared declarations a generated instruction may reference.
struct TieDeclNames {
  std::vector<std::string> states;
  std::vector<std::string> regfiles;
  std::vector<std::string> tables;
};

/// Generates the shared declaration section (states, register files,
/// tables) and records the declared names in `*names` (nullptr = discard).
std::string generate_tie_decls(Rng& rng, const TieGenOptions& options,
                               TieDeclNames* names);

/// Generates one `instruction <name> { ... }` block whose semantics only
/// reference declarations in `decls`. The same rng draw sequence always
/// yields the same text, independent of the instruction name — which is
/// what lets the DSE genome re-expand an instruction gene under a
/// different name or declaration context.
std::string generate_tie_instruction(Rng& rng, std::string_view name,
                                     const TieDeclNames& decls,
                                     const TieGenOptions& options);

/// Generates a whole TIE-lite spec that tie::compile_tie_source accepts:
/// declarations followed by 1..max_instructions instructions (fz0, fz1,
/// ...), all drawn from `rng`.
std::string generate_tie_spec(Rng& rng, const TieGenOptions& options = {});

}  // namespace exten::fuzz
