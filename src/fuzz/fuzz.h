#pragma once

// Deterministic, seed-reproducible fuzzing with differential oracles.
//
// Every fuzz target follows the same contract:
//   - generate(rng, corpus) produces one concrete *payload* (a
//     self-contained byte string: an assembly program, a TIE spec, raw
//     HTTP bytes, ...). The payload is the whole case — replaying it needs
//     no RNG state.
//   - run(payload) executes the target's oracle and reports pass/fail.
//     run must be a pure function of the payload, so a failure found at
//     (seed, iteration) is one `xtc-fuzz --repro file` away from replay.
//
// The driver (run_target) derives iteration seeds with Rng::derive_seed —
// a pure function of (seed, iteration) — so iteration N is reproducible
// without generating iterations 0..N-1, and a CI failure names the exact
// case. On failure the payload is greedily minimized (delta-debug style
// chunk removal) before it is written to a repro artifact.
//
// Targets live in targets.cpp; tools/xtc_fuzz.cpp is the CLI driver and
// tests/test_fuzz.cpp the budgeted in-tree smoke.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace exten::fuzz {

/// Result of one oracle run.
struct Outcome {
  bool ok = true;
  std::string message;  ///< failure description (empty when ok)

  static Outcome pass() { return {}; }
  static Outcome fail(std::string message) { return {false, std::move(message)}; }
};

/// Seed inputs for mutational targets. Entries are ordered (directory
/// loads sort by file name) so corpus selection is deterministic.
class Corpus {
 public:
  void add(std::string bytes) { entries_.push_back(std::move(bytes)); }
  const std::vector<std::string>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

  /// Loads every regular file under `dir` (sorted by path). Missing or
  /// unreadable directories yield an empty corpus — targets fall back to
  /// their built-in seeds.
  static Corpus load_directory(const std::string& dir);

  /// Merges `other`'s entries after this corpus's own.
  void append(const Corpus& other);

 private:
  std::vector<std::string> entries_;
};

/// One fuzz target: a generator plus a differential oracle.
class Target {
 public:
  virtual ~Target() = default;

  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;

  /// Generates one payload. `corpus` holds external seed inputs for
  /// mutational targets (may be empty; targets keep built-in seeds).
  virtual std::string generate(Rng& rng, const Corpus& corpus) const = 0;

  /// Runs the oracle. Deterministic in `payload`; never throws (oracle
  /// implementations convert expected exceptions into pass/fail).
  virtual Outcome run(const std::string& payload) const = 0;

  /// Minimization granularity: true shrinks whole lines (structured text
  /// payloads), false shrinks byte ranges.
  virtual bool shrink_lines() const { return false; }
};

/// The built-in target set (engine_diff, tie_diff, asm, disasm, image,
/// json, http), in stable order.
const std::vector<const Target*>& builtin_targets();

/// Built-in target by name; nullptr when unknown.
const Target* find_target(std::string_view name);

/// A minimized failing case.
struct Failure {
  std::string target;
  std::uint64_t seed = 0;
  std::uint64_t iteration = 0;
  std::string payload;  ///< minimized payload that still fails
  std::string message;  ///< oracle message for the minimized payload
};

struct RunOptions {
  std::uint64_t seed = 1;
  std::uint64_t iterations = 1000;
  const Corpus* corpus = nullptr;   ///< optional external corpus
  std::uint64_t max_shrink_steps = 600;  ///< oracle-run budget for minimize
};

/// Runs `iterations` cases of `target`; returns the first failure, already
/// minimized, or nullopt when every case passed.
std::optional<Failure> run_target(const Target& target, const RunOptions& options);

/// Greedy payload minimization: repeatedly removes line/byte chunks while
/// the oracle keeps failing, spending at most `max_steps` oracle runs.
/// Updates `*message` to the minimized payload's failure message.
std::string minimize(const Target& target, std::string payload,
                     std::string* message, std::uint64_t max_steps);

/// Repro artifact format:
///   xtc-fuzz repro v1
///   target <name>
///   seed <n> iteration <n>
///   payload <byte-count>
///   <payload bytes, verbatim>
///   --- message
///   <free text, ignored by the parser>
std::string write_repro_text(const Failure& failure);

/// Parses a repro artifact (only target + payload are required for
/// replay). Throws exten::Error on a malformed artifact.
Failure parse_repro_text(std::string_view text);

}  // namespace exten::fuzz
