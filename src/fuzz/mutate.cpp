#include "fuzz/mutate.h"

#include <algorithm>

namespace exten::fuzz {

namespace {

// Boundary bytes that historically trip parsers: NUL, newline variants,
// separators, sign characters, extremes.
constexpr unsigned char kInterestingBytes[] = {
    0x00, 0x09, 0x0a, 0x0d, 0x20, '"', ',', ':', ';', '#', '-', '+',
    '0',  '9',  '{',  '}',  '[',  ']', 0x7f, 0x80, 0xff};

std::size_t random_index(Rng& rng, std::size_t size) {
  return static_cast<std::size_t>(rng.next_below(size));
}

}  // namespace

std::string mutate_bytes(const std::string& base, Rng& rng, unsigned rounds,
                         const std::vector<std::string>& dictionary) {
  std::string bytes = base;
  for (unsigned round = 0; round < rounds; ++round) {
    if (bytes.empty()) bytes.push_back('a');
    const std::uint64_t kind = rng.next_below(dictionary.empty() ? 7 : 8);
    switch (kind) {
      case 0: {  // single bit flip
        const std::size_t i = random_index(rng, bytes.size());
        bytes[i] = static_cast<char>(
            static_cast<unsigned char>(bytes[i]) ^ (1u << rng.next_below(8)));
        break;
      }
      case 1: {  // overwrite with a random byte
        bytes[random_index(rng, bytes.size())] =
            static_cast<char>(rng.next_below(256));
        break;
      }
      case 2: {  // overwrite with an interesting byte
        bytes[random_index(rng, bytes.size())] = static_cast<char>(
            kInterestingBytes[rng.next_below(std::size(kInterestingBytes))]);
        break;
      }
      case 3: {  // erase a short range
        const std::size_t i = random_index(rng, bytes.size());
        const std::size_t n = 1 + random_index(
            rng, std::min<std::size_t>(16, bytes.size() - i));
        bytes.erase(i, n);
        break;
      }
      case 4: {  // duplicate a short range
        const std::size_t i = random_index(rng, bytes.size());
        const std::size_t n = 1 + random_index(
            rng, std::min<std::size_t>(16, bytes.size() - i));
        bytes.insert(i, bytes.substr(i, n));
        break;
      }
      case 5: {  // insert a random byte
        bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(
                         random_index(rng, bytes.size() + 1)),
                     static_cast<char>(rng.next_below(256)));
        break;
      }
      case 6: {  // swap two bytes
        const std::size_t i = random_index(rng, bytes.size());
        const std::size_t j = random_index(rng, bytes.size());
        std::swap(bytes[i], bytes[j]);
        break;
      }
      default: {  // splice a dictionary token
        const std::string& token =
            dictionary[random_index(rng, dictionary.size())];
        bytes.insert(random_index(rng, bytes.size() + 1), token);
        break;
      }
    }
    // Keep payloads bounded so oracle runs stay fast.
    if (bytes.size() > 8192) bytes.resize(8192);
  }
  return bytes;
}

}  // namespace exten::fuzz
