#pragma once

// Mutational byte fuzzing: deterministic havoc-style mutations over a
// seed input. Used by the assembler / image / JSON / HTTP targets, which
// take real corpus inputs and perturb them to probe parser edges.

#include <string>
#include <vector>

#include "util/rng.h"

namespace exten::fuzz {

/// Applies `rounds` random mutations to `base`. Mutations: bit flips,
/// byte overwrites with random or "interesting" values, range erase /
/// insert / duplicate, byte swaps, truncation, and token splices from
/// `dictionary` (may be empty). Deterministic in (base, rng state).
std::string mutate_bytes(const std::string& base, Rng& rng, unsigned rounds,
                         const std::vector<std::string>& dictionary = {});

}  // namespace exten::fuzz
