#pragma once

// Internals of the built-in fuzz targets (fuzz.h: builtin_targets()),
// exposed so tests can drive the oracles directly — test_engine_diff.cpp
// reuses run_engine_diff on hand-picked generator settings, and
// test_fuzz.cpp asserts payload round-trips.

#include <cstdint>
#include <string>
#include <string_view>

#include "fuzz/fuzz.h"
#include "sim/config.h"
#include "util/json.h"
#include "util/rng.h"

namespace exten::fuzz {

/// One engine_diff case: timing/cache knobs, an optional TIE-lite spec and
/// an assembly program. The payload text serializes all three:
///   %config icache_miss=18 dcache_miss=18 branch=2 ... icache_size=16384
///   %tie
///   <spec lines>
///   %asm
///   <program lines>
/// Lines before any marker are treated as program text, so a bare assembly
/// file is a valid payload.
struct EngineDiffCase {
  sim::ProcessorConfig config;
  std::string tie_source;  ///< empty = base processor only
  std::string asm_source;
};

std::string make_engine_diff_payload(const EngineDiffCase& c);
EngineDiffCase parse_engine_diff_payload(const std::string& payload);

/// Generates one random case from the structured generators (random config
/// knobs, optional random TIE spec, random-but-terminating program).
EngineDiffCase generate_engine_diff_case(Rng& rng);

/// The engine_diff oracle: runs the case on Engine::kFast and
/// Engine::kReference and compares the full retirement-stream digest,
/// final registers/pc/cycles, custom TIE state, resident memory, and
/// error behaviour. Cases whose spec/program do not compile pass — that
/// keeps greedy minimization from collapsing a real divergence into a
/// trivially-invalid payload.
Outcome run_engine_diff(const EngineDiffCase& c);

/// Deterministic JSON serializer used by the json round-trip oracle:
/// object keys in map order, numbers printed with up to 17 significant
/// digits so JsonValue::parse(json_serialize(v)) is value-exact.
std::string json_serialize(const JsonValue& value);

/// FNV-1a 64-bit hash (schedule seeds derived from payload bytes).
std::uint64_t fnv1a64(std::string_view bytes);

}  // namespace exten::fuzz
