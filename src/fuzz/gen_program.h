#pragma once

// Structured generation of random-but-valid XTC-32 assembly programs.
//
// Generated programs always terminate: control flow is restricted to
// forward branches/jumps and counted loops with dedicated counter
// registers, so the dynamic instruction count is linear in the program
// size. Optional features widen coverage: counted loops, self-modifying
// stores that patch an upcoming instruction word, custom-instruction
// mixes, and loads/stores into the uncached device region.

#include <string>
#include <vector>

#include "util/rng.h"

namespace exten::fuzz {

struct ProgramGenOptions {
  /// Number of generator constructs (each emits 1..8 instructions).
  unsigned blocks = 20;
  bool allow_loops = true;
  bool allow_self_modify = false;
  bool allow_uncached = false;

  /// Custom instructions available to the generator (operand shape as the
  /// assembler sees it). Empty disables custom blocks.
  struct CustomOp {
    std::string name;
    bool has_rd = false;
    bool has_rs1 = false;
    bool has_rs2 = false;
  };
  std::vector<CustomOp> customs;
};

/// Generates one assembly program (always ends in halt; always assembles
/// against the mnemonics implied by `options.customs`).
std::string generate_program(Rng& rng, const ProgramGenOptions& options);

}  // namespace exten::fuzz
