#include "fuzz/targets.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <sstream>
#include <vector>

#include "fuzz/gen_program.h"
#include "fuzz/gen_tie.h"
#include "fuzz/mutate.h"
#include "isa/assembler.h"
#include "isa/disassembler.h"
#include "isa/encoding.h"
#include "isa/image_io.h"
#include "isa/program.h"
#include "net/http.h"
#include "sim/cpu.h"
#include "tie/compiler.h"
#include "util/error.h"
#include "util/strings.h"

namespace exten::fuzz {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

/// FNV-1a accumulator over 64-bit values (byte order fixed: little-endian
/// serialization of each value, so the digest is platform independent).
struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<unsigned char>(v >> (8 * i));
      h *= 0x100000001b3ULL;
    }
  }
};

// ---------------------------------------------------------------------------
// engine_diff: Engine::kFast / Engine::kThreaded vs Engine::kReference
// bit-exactness (all three pairwise comparisons, labeled)
// ---------------------------------------------------------------------------

/// Instruction budget for oracle runs. Generated programs retire far fewer
/// instructions; the low ceiling keeps accidental runaways (e.g. shrink
/// candidates that break a loop bound) cheap — both engines see the same
/// retirement stream, so they exhaust the budget identically.
constexpr std::uint64_t kRunBudget = 2'000'000;

/// Digest of the full retirement stream. Mirrors the DigestSink of
/// tests/test_engine_diff.cpp but mixes the custom instruction's func id
/// instead of its pointer, so the digest is a pure function of execution.
struct StreamDigest {
  Fnv fnv;
  void on_run_begin() {}
  void on_retire(const sim::RetiredInstruction& r) {
    fnv.mix(r.pc);
    fnv.mix((std::uint64_t{static_cast<unsigned>(r.instr.op)} << 32) |
            (std::uint64_t{r.instr.rd} << 24) |
            (std::uint64_t{r.instr.rs1} << 16) |
            (std::uint64_t{r.instr.rs2} << 8) | r.instr.func);
    fnv.mix(static_cast<std::uint32_t>(r.instr.imm));
    fnv.mix(static_cast<unsigned>(r.cls));
    fnv.mix((std::uint64_t{r.branch_taken} << 1) | std::uint64_t{r.is_mem});
    fnv.mix((std::uint64_t{r.base_cycles} << 32) | r.total_cycles);
    fnv.mix((std::uint64_t{r.icache_miss} << 3) |
            (std::uint64_t{r.dcache_miss} << 2) |
            (std::uint64_t{r.uncached_fetch} << 1) |
            std::uint64_t{r.uncached_data});
    fnv.mix((std::uint64_t{r.interlock_cycles} << 40) |
            (std::uint64_t{r.redirect_cycles} << 20) | r.memory_stall_cycles);
    fnv.mix((std::uint64_t{r.rs1_value} << 32) | r.rs2_value);
    fnv.mix((std::uint64_t{r.result} << 32) | r.mem_addr);
    fnv.mix(r.custom != nullptr ? 0x100u + r.custom->func : 0u);
  }
  void on_run_end(std::uint64_t, std::uint64_t) {}
};

/// Everything observable about one engine's run of one case.
struct Capture {
  bool threw = false;
  std::string error;
  std::uint64_t stream_digest = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  bool halted = false;
  std::array<std::uint32_t, isa::kNumRegisters> regs{};
  std::uint32_t pc = 0;
  std::uint64_t tie_digest = 0;
  std::uint64_t mem_digest = 0;
};

Capture capture_run(const sim::ProcessorConfig& config,
                    const tie::TieConfiguration& tie,
                    const isa::ProgramImage& image, sim::Engine engine) {
  Capture c;
  sim::Cpu cpu(config, tie, engine);
  cpu.load_program(image);
  StreamDigest sink;
  try {
    const sim::RunResult r = cpu.run_with_sink(sink, kRunBudget);
    c.instructions = r.instructions;
    c.cycles = r.cycles;
    c.halted = r.halted;
  } catch (const Error& e) {
    c.threw = true;
    c.error = e.what();
  }
  c.stream_digest = sink.fnv.h;
  for (unsigned i = 0; i < isa::kNumRegisters; ++i) c.regs[i] = cpu.reg(i);
  c.pc = cpu.pc();

  Fnv tf;
  for (const tie::StateDecl& s : tie.state_decls()) {
    tf.mix(cpu.tie_state().read_state(s.name));
  }
  for (const tie::RegfileDecl& f : tie.regfile_decls()) {
    for (unsigned i = 0; i < f.size; ++i) {
      tf.mix(cpu.tie_state().read_regfile(f.name, i));
    }
  }
  c.tie_digest = tf.h;

  Fnv mf;
  for (std::uint32_t page : cpu.memory().resident_page_ids()) {
    mf.mix(page);
    const std::uint8_t* bytes = cpu.memory().page_bytes(page);
    for (std::uint32_t i = 0; i < sim::Memory::kPageBytes; i += 8) {
      std::uint64_t word = 0;
      for (unsigned b = 0; b < 8; ++b) {
        word |= std::uint64_t{bytes[i + b]} << (8 * b);
      }
      mf.mix(word);
    }
  }
  c.mem_digest = mf.h;
  return c;
}

Outcome compare_captures(const Capture& fast, const Capture& ref,
                         const char* lhs_name = "fast",
                         const char* rhs_name = "reference") {
  std::ostringstream os;
  os << "engine divergence (" << lhs_name << " vs " << rhs_name << "): ";
  if (fast.threw != ref.threw) {
    os << lhs_name << " " << (fast.threw ? "threw: " + fast.error : "completed")
       << "; " << rhs_name << " "
       << (ref.threw ? "threw: " + ref.error : "completed");
    return Outcome::fail(os.str());
  }
  if (fast.error != ref.error) {
    os << "error message mismatch: " << lhs_name << "=\"" << fast.error
       << "\" " << rhs_name << "=\"" << ref.error << "\"";
    return Outcome::fail(os.str());
  }
  if (fast.stream_digest != ref.stream_digest) {
    os << "retirement-stream digest mismatch: " << lhs_name << "=" << std::hex
       << fast.stream_digest << " " << rhs_name << "=" << ref.stream_digest;
    return Outcome::fail(os.str());
  }
  if (fast.instructions != ref.instructions || fast.cycles != ref.cycles ||
      fast.halted != ref.halted) {
    os << "totals mismatch: " << lhs_name << " instr=" << fast.instructions
       << " cycles=" << fast.cycles << " halted=" << fast.halted
       << "; " << rhs_name << " instr=" << ref.instructions
       << " cycles=" << ref.cycles << " halted=" << ref.halted;
    return Outcome::fail(os.str());
  }
  if (fast.pc != ref.pc) {
    os << "final pc mismatch: " << lhs_name << "=0x" << std::hex << fast.pc
       << " " << rhs_name << "=0x" << ref.pc;
    return Outcome::fail(os.str());
  }
  for (unsigned i = 0; i < isa::kNumRegisters; ++i) {
    if (fast.regs[i] != ref.regs[i]) {
      os << "r" << i << " mismatch: " << lhs_name << "=0x" << std::hex
         << fast.regs[i] << " " << rhs_name << "=0x" << ref.regs[i];
      return Outcome::fail(os.str());
    }
  }
  if (fast.tie_digest != ref.tie_digest) {
    os << "TIE state digest mismatch: " << lhs_name << "=" << std::hex
       << fast.tie_digest << " " << rhs_name << "=" << ref.tie_digest;
    return Outcome::fail(os.str());
  }
  if (fast.mem_digest != ref.mem_digest) {
    os << "memory digest mismatch: " << lhs_name << "=" << std::hex
       << fast.mem_digest << " " << rhs_name << "=" << ref.mem_digest;
    return Outcome::fail(os.str());
  }
  return Outcome::pass();
}

bool is_pow2(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }

void apply_config_token(std::string_view token, sim::ProcessorConfig* config) {
  const std::size_t eq = token.find('=');
  if (eq == std::string_view::npos) return;
  const std::string_view key = token.substr(0, eq);
  const std::string_view value = token.substr(eq + 1);

  auto set_penalty = [&](unsigned* field) {
    std::int64_t v = 0;
    if (parse_int(value, &v) && v >= 0 && v <= 1000) {
      *field = static_cast<unsigned>(v);
    }
  };
  auto set_cache = [&](sim::CacheConfig* cache) {
    const std::vector<std::string_view> parts = split(value, '/');
    std::int64_t size = 0, line = 0, ways = 0;
    if (parts.size() != 3 || !parse_int(parts[0], &size) ||
        !parse_int(parts[1], &line) || !parse_int(parts[2], &ways)) {
      return;
    }
    if (is_pow2(size) && is_pow2(line) && is_pow2(ways) && line >= 4 &&
        line <= 256 && ways <= 16 && size >= line * ways &&
        size <= (1 << 20)) {
      cache->size_bytes = static_cast<std::uint32_t>(size);
      cache->line_bytes = static_cast<std::uint32_t>(line);
      cache->ways = static_cast<std::uint32_t>(ways);
    }
  };

  if (key == "icache_miss") set_penalty(&config->icache_miss_penalty);
  else if (key == "dcache_miss") set_penalty(&config->dcache_miss_penalty);
  else if (key == "uncached_fetch") set_penalty(&config->uncached_fetch_penalty);
  else if (key == "uncached_data") set_penalty(&config->uncached_data_penalty);
  else if (key == "branch") set_penalty(&config->taken_branch_penalty);
  else if (key == "jump") set_penalty(&config->jump_penalty);
  else if (key == "interlock") set_penalty(&config->load_use_interlock);
  else if (key == "icache") set_cache(&config->icache);
  else if (key == "dcache") set_cache(&config->dcache);
}

// ---------------------------------------------------------------------------
// Mutational-target helpers
// ---------------------------------------------------------------------------

/// Picks a mutation base: an external corpus entry when available, else one
/// of the target's built-in seeds.
const std::string& pick_seed(Rng& rng, const Corpus& corpus,
                             const std::vector<std::string>& builtin) {
  if (!corpus.empty() && (builtin.empty() || rng.next_bool(0.7))) {
    return rng.pick(corpus.entries());
  }
  return rng.pick(builtin);
}

/// True when `payload` asks an allocation-sized directive for more than
/// `limit` bytes (".space 99999999" style allocation bombs from byte
/// mutations). Scans each line containing one of `directives` for integer
/// literals above the limit. Oracles skip such payloads instead of letting
/// the parser allocate unbounded memory.
bool allocation_bomb(const std::string& payload,
                     const std::vector<std::string_view>& directives,
                     std::int64_t limit) {
  for (std::string_view line : split_lines(payload)) {
    bool relevant = false;
    for (std::string_view d : directives) {
      if (line.find(d) != std::string_view::npos) {
        relevant = true;
        break;
      }
    }
    if (!relevant) continue;
    std::size_t i = 0;
    while (i < line.size()) {
      if (line[i] < '0' || line[i] > '9') {
        ++i;
        continue;
      }
      // Decimal or 0x/0b literal starting here; clamp while accumulating.
      std::int64_t value = 0;
      if (line[i] == '0' && i + 1 < line.size() &&
          (line[i + 1] == 'x' || line[i + 1] == 'X')) {
        i += 2;
        while (i < line.size() && std::isxdigit(static_cast<unsigned char>(
                                      line[i]))) {
          const char c = static_cast<char>(
              std::tolower(static_cast<unsigned char>(line[i])));
          value = value * 16 + (c >= 'a' ? c - 'a' + 10 : c - '0');
          if (value > limit) return true;
          ++i;
        }
      } else {
        while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
          value = value * 10 + (line[i] - '0');
          if (value > limit) return true;
          ++i;
        }
      }
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Targets
// ---------------------------------------------------------------------------

class EngineDiffTarget final : public Target {
 public:
  std::string_view name() const override { return "engine_diff"; }
  std::string_view description() const override {
    return "fast engine vs reference interpreter bit-exactness on random "
           "programs (self-modifying stores, custom-instruction mixes, "
           "random cache/timing configs)";
  }
  bool shrink_lines() const override { return true; }

  std::string generate(Rng& rng, const Corpus&) const override {
    return make_engine_diff_payload(generate_engine_diff_case(rng));
  }

  Outcome run(const std::string& payload) const override {
    try {
      return run_engine_diff(parse_engine_diff_payload(payload));
    } catch (const std::exception& e) {
      return Outcome::fail(std::string("unexpected exception: ") + e.what());
    }
  }
};

class TieDiffTarget final : public Target {
 public:
  std::string_view name() const override { return "tie_diff"; }
  std::string_view description() const override {
    return "TIE bytecode vs Expr-tree evaluation on random specs (rd "
           "results and final custom state over a fixed operand schedule)";
  }
  bool shrink_lines() const override { return true; }

  std::string generate(Rng& rng, const Corpus& corpus) const override {
    // Mostly structured specs; a slice of byte mutations exercises the
    // parser/compiler error paths (which the oracle treats as pass — the
    // sanitizers are the oracle there).
    if (!corpus.empty() && rng.next_bool(0.25)) {
      static const std::vector<std::string> kDict = {
          "state ",  "regfile ", "table ",     "instruction ", "width=",
          "size=",   "latency ", "reads rs1",  "writes rd",    "semantics {",
          "}",       "rd = ",    "sext(",      "sel(",         "use adder ",
          "isolated"};
      return mutate_bytes(rng.pick(corpus.entries()), rng,
                          1 + static_cast<unsigned>(rng.next_below(6)), kDict);
    }
    TieGenOptions options;
    options.max_instructions =
        1 + static_cast<unsigned>(rng.next_below(4));
    options.max_expr_depth = 2 + static_cast<unsigned>(rng.next_below(4));
    return generate_tie_spec(rng, options);
  }

  Outcome run(const std::string& payload) const override {
    tie::TieConfiguration tie;
    try {
      tie = tie::compile_tie_source(payload);
    } catch (const Error&) {
      return Outcome::pass();  // invalid spec: rejection is the contract
    } catch (const std::exception& e) {
      return Outcome::fail(std::string("unexpected exception: ") + e.what());
    }
    if (tie.empty()) return Outcome::pass();

    tie::TieState fast = tie.make_state();
    tie::TieState ref = tie.make_state();
    // Fixed schedule seed: the operand stream depends only on the step
    // index, so removing spec lines during minimization does not reshuffle
    // the schedule out from under the failure.
    Rng schedule(0x5851f42d4c957f2dULL);
    const std::size_t n = tie.instructions().size();
    for (unsigned step = 0; step < 256; ++step) {
      const tie::CustomInstruction& ci =
          tie.instructions()[static_cast<std::size_t>(schedule.next_below(n))];
      const std::uint32_t a = schedule.next_u32();
      const std::uint32_t b = schedule.next_u32();
      // A runtime fault (e.g. a non-literal sext width evaluating out of
      // range) is legal semantics as long as BOTH paths fault identically;
      // one-sided or differently-worded faults are divergences.
      std::uint32_t rd_fast = 0;
      std::uint32_t rd_ref = 0;
      std::string fault_fast;
      std::string fault_ref;
      try {
        rd_fast = tie.execute(ci, a, b, &fast);
      } catch (const Error& e) {
        fault_fast = e.what();
      }
      try {
        rd_ref = tie.execute_reference(ci, a, b, &ref);
      } catch (const Error& e) {
        fault_ref = e.what();
      }
      if (fault_fast != fault_ref) {
        return Outcome::fail(std::string("fault divergence at step ") +
                             std::to_string(step) + " (" + ci.name +
                             "): bytecode=[" + fault_fast + "] tree=[" +
                             fault_ref + "]");
      }
      if (!fault_fast.empty()) continue;  // both faulted identically
      if (rd_fast != rd_ref) {
        std::ostringstream os;
        os << "rd mismatch at step " << step << " (" << ci.name
           << "): rs1=0x" << std::hex << a << " rs2=0x" << b
           << " bytecode=0x" << rd_fast << " tree=0x" << rd_ref;
        return Outcome::fail(os.str());
      }
    }
    for (const tie::StateDecl& s : tie.state_decls()) {
      if (fast.read_state(s.name) != ref.read_state(s.name)) {
        std::ostringstream os;
        os << "state " << s.name << " mismatch: bytecode=0x" << std::hex
           << fast.read_state(s.name) << " tree=0x" << ref.read_state(s.name);
        return Outcome::fail(os.str());
      }
    }
    for (const tie::RegfileDecl& f : tie.regfile_decls()) {
      for (unsigned i = 0; i < f.size; ++i) {
        if (fast.read_regfile(f.name, i) != ref.read_regfile(f.name, i)) {
          std::ostringstream os;
          os << "regfile " << f.name << "[" << i << "] mismatch: bytecode=0x"
             << std::hex << fast.read_regfile(f.name, i) << " tree=0x"
             << ref.read_regfile(f.name, i);
          return Outcome::fail(os.str());
        }
      }
    }
    return Outcome::pass();
  }
};

class AsmTarget final : public Target {
 public:
  std::string_view name() const override { return "asm"; }
  std::string_view description() const override {
    return "assembler robustness + image serialization round-trip on "
           "mutated assembly source";
  }
  bool shrink_lines() const override { return true; }

  std::string generate(Rng& rng, const Corpus& corpus) const override {
    static const std::vector<std::string> kSeeds = {
        "  li r3, 10\n"
        "loop:\n"
        "  addi r3, r3, -1\n"
        "  bnez r3, loop\n"
        "  halt\n",
        "_start:\n"
        "  lui r4, %hi(value)\n"
        "  ori r4, r4, %lo(value)\n"
        "  lw r5, 0(r4)\n"
        "  sw r5, 4(r4)\n"
        "  halt\n"
        ".data\n"
        "value: .word 0x12345678, 42\n",
        ".equ K, 12\n"
        "  addi r6, r0, K\n"
        "  jal helper\n"
        "  halt\n"
        "helper:\n"
        "  mv r7, r6\n"
        "  ret\n"
        ".data\n"
        "buf: .space 16\n"
        "tail: .byte 1, 2, 3\n",
    };
    static const std::vector<std::string> kDict = {
        ".word 0x",  ".data\n", ".text\n",  ".space 8\n", ".align 4\n",
        ".byte 255", ".half 3", ".equ Q, 5\n", ".org 0x2000\n",
        "addi r3, r3, 1\n", "lw r4, 0(r16)\n", "%hi(", "%lo(",
        "label:\n",  ", ",    "\n",       "#",          ";"};
    std::string base;
    if (rng.next_bool(0.4)) {
      ProgramGenOptions options;
      options.blocks = 4 + static_cast<unsigned>(rng.next_below(8));
      base = generate_program(rng, options);
    } else {
      base = pick_seed(rng, corpus, kSeeds);
    }
    return mutate_bytes(base, rng,
                        1 + static_cast<unsigned>(rng.next_below(8)), kDict);
  }

  Outcome run(const std::string& payload) const override {
    if (allocation_bomb(payload, {".space", ".align", ".org", ".equ"}, 4096)) {
      return Outcome::pass();
    }
    isa::ProgramImage image;
    try {
      image = isa::assemble(payload);
    } catch (const Error&) {
      return Outcome::pass();  // rejection with a clean error is the contract
    } catch (const std::exception& e) {
      return Outcome::fail(std::string("unexpected exception: ") + e.what());
    }
    try {
      const std::string text = isa::image_to_string(image);
      isa::ProgramImage reparsed;
      try {
        reparsed = isa::parse_image(text);
      } catch (const Error& e) {
        return Outcome::fail(
            std::string("image_io rejects assembler output: ") + e.what());
      }
      const std::string text2 = isa::image_to_string(reparsed);
      if (text != text2) {
        return Outcome::fail("image text round-trip not a fixpoint:\n--- "
                             "first ---\n" + text + "--- second ---\n" + text2);
      }
      if (reparsed.entry_point() != image.entry_point()) {
        return Outcome::fail("entry point lost in round-trip");
      }
      if (reparsed.symbols() != image.symbols()) {
        return Outcome::fail("symbol table lost in round-trip");
      }
    } catch (const std::exception& e) {
      return Outcome::fail(std::string("unexpected exception: ") + e.what());
    }
    return Outcome::pass();
  }
};

class DisasmTarget final : public Target {
 public:
  std::string_view name() const override { return "disasm"; }
  std::string_view description() const override {
    return "decode/disassemble/encode canonicalization on raw instruction "
           "words (decode(encode(decode(w))) == decode(w))";
  }

  std::string generate(Rng& rng, const Corpus&) const override {
    std::string bytes;
    const unsigned words = 1 + static_cast<unsigned>(rng.next_below(12));
    for (unsigned w = 0; w < words; ++w) {
      std::uint32_t word = rng.next_u32();
      if (rng.next_bool(0.7)) {
        // Bias the primary opcode into the defined range so most words
        // decode (fully random words mostly hit illegal-opcode rejection).
        word = (word & 0x03FF'FFFFu) |
               (static_cast<std::uint32_t>(rng.next_below(isa::kOpcodeCount))
                << 26);
      }
      for (unsigned b = 0; b < 4; ++b) {
        bytes.push_back(static_cast<char>(word >> (8 * b)));
      }
    }
    if (rng.next_bool(0.3)) {
      bytes = mutate_bytes(bytes, rng,
                           1 + static_cast<unsigned>(rng.next_below(3)), {});
    }
    return bytes;
  }

  Outcome run(const std::string& payload) const override {
    for (std::size_t off = 0; off + 4 <= payload.size(); off += 4) {
      std::uint32_t word = 0;
      for (unsigned b = 0; b < 4; ++b) {
        word |= std::uint32_t{static_cast<unsigned char>(payload[off + b])}
                << (8 * b);
      }
      isa::DecodedInstr d;
      try {
        d = isa::decode(word);
      } catch (const Error&) {
        continue;  // illegal primary opcode: rejection is the contract
      }
      std::ostringstream ctx;
      ctx << "word 0x" << std::hex << word << ": ";
      try {
        const std::string text = isa::disassemble(d);
        if (text.empty()) {
          return Outcome::fail(ctx.str() + "empty disassembly");
        }
        const std::uint32_t canonical = isa::encode(d);
        const isa::DecodedInstr d2 = isa::decode(canonical);
        if (!(d2 == d)) {
          return Outcome::fail(ctx.str() +
                               "decode(encode(decode(w))) != decode(w)");
        }
        if (isa::encode(d2) != canonical) {
          return Outcome::fail(ctx.str() + "encode not a fixpoint");
        }
      } catch (const std::exception& e) {
        return Outcome::fail(ctx.str() + "unexpected exception: " + e.what());
      }
    }
    return Outcome::pass();
  }
};

class ImageTarget final : public Target {
 public:
  std::string_view name() const override { return "image"; }
  std::string_view description() const override {
    return "image text format parser robustness + parse/write round-trip";
  }
  bool shrink_lines() const override { return true; }

  std::string generate(Rng& rng, const Corpus& corpus) const override {
    static const std::vector<std::string> kSeeds = [] {
      std::vector<std::string> seeds;
      seeds.push_back(isa::image_to_string(
          isa::assemble("  li r3, 7\n  sw r3, 0(r16)\n  halt\n"
                        ".data\nbuffer: .space 8\n")));
      seeds.push_back(isa::image_to_string(
          isa::assemble("_start:\n  addi r4, r0, 1\n  halt\n"
                        ".data\nv: .word 1, 2, 3\n")));
      return seeds;
    }();
    static const std::vector<std::string> kDict = {
        "exten-image v1\n", "entry 0x00001000\n",
        "symbol _start 0x00001000\n", "segment 0x00001000 4\n",
        "00aabbcc", "ffffffff", "0x", "\n"};
    return mutate_bytes(pick_seed(rng, corpus, kSeeds), rng,
                        1 + static_cast<unsigned>(rng.next_below(8)), kDict);
  }

  Outcome run(const std::string& payload) const override {
    if (allocation_bomb(payload, {"segment"}, 65536)) {
      return Outcome::pass();
    }
    isa::ProgramImage image;
    try {
      image = isa::parse_image(payload);
    } catch (const Error&) {
      return Outcome::pass();
    } catch (const std::exception& e) {
      return Outcome::fail(std::string("unexpected exception: ") + e.what());
    }
    try {
      const std::string text = isa::image_to_string(image);
      isa::ProgramImage reparsed;
      try {
        reparsed = isa::parse_image(text);
      } catch (const Error& e) {
        return Outcome::fail(std::string("writer output rejected: ") +
                             e.what());
      }
      const std::string text2 = isa::image_to_string(reparsed);
      if (text != text2) {
        return Outcome::fail("image text round-trip not a fixpoint:\n--- "
                             "first ---\n" + text + "--- second ---\n" + text2);
      }
    } catch (const std::exception& e) {
      return Outcome::fail(std::string("unexpected exception: ") + e.what());
    }
    return Outcome::pass();
  }
};

class JsonTarget final : public Target {
 public:
  std::string_view name() const override { return "json"; }
  std::string_view description() const override {
    return "JSON parser robustness + parse/serialize round-trip stability";
  }

  std::string generate(Rng& rng, const Corpus& corpus) const override {
    static const std::vector<std::string> kSeeds = {
        R"({"jobs": 8, "hit_rate": 0.5, "name": "estimate"})",
        R"([1, 2.5, -3e-2, true, false, null, "a\nbA"])",
        R"({"nested": {"a": [{"b": []}, {}], "c": "\\"}, "n": 1e20})",
        "42",
        R"("plain \"string\" with éscapes")",
        "[[[[0]]]]",
    };
    static const std::vector<std::string> kDict = {
        "{", "}", "[", "]", ",", ":", "\"", "\\", "null", "true",
        "false", "-1e308", "0.5", "\\u00e9", "e+", "1E-2", " "};
    return mutate_bytes(pick_seed(rng, corpus, kSeeds), rng,
                        1 + static_cast<unsigned>(rng.next_below(8)), kDict);
  }

  Outcome run(const std::string& payload) const override {
    JsonValue value;
    try {
      value = JsonValue::parse(payload);
    } catch (const Error&) {
      return Outcome::pass();
    } catch (const std::exception& e) {
      return Outcome::fail(std::string("unexpected exception: ") + e.what());
    }
    try {
      const std::string first = json_serialize(value);
      JsonValue reparsed;
      try {
        reparsed = JsonValue::parse(first);
      } catch (const Error& e) {
        return Outcome::fail("serializer output rejected by parser: " +
                             first + " (" + e.what() + ")");
      }
      const std::string second = json_serialize(reparsed);
      if (first != second) {
        return Outcome::fail("serialize/parse/serialize not a fixpoint:\n" +
                             first + "\nvs\n" + second);
      }
    } catch (const std::exception& e) {
      return Outcome::fail(std::string("unexpected exception: ") + e.what());
    }
    return Outcome::pass();
  }
};

class HttpTarget final : public Target {
 public:
  std::string_view name() const override { return "http"; }
  std::string_view description() const override {
    return "HTTP request parser invariance under arbitrary byte-split "
           "schedules (single feed vs per-byte vs random chunking)";
  }

  std::string generate(Rng& rng, const Corpus& corpus) const override {
    static const std::vector<std::string> kSeeds = {
        "GET / HTTP/1.1\r\nHost: a\r\n\r\n",
        "POST /v1/estimate HTTP/1.1\r\nHost: x\r\n"
        "Content-Type: application/json\r\nContent-Length: 13\r\n\r\n"
        "{\"program\":1}",
        "GET /a HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
        "PUT /u HTTP/1.1\r\nContent-Length: 0\r\n\r\n"
        "GET /next HTTP/1.1\r\n\r\n",
        "POST /b HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        "GET /q?x=1&y=2 HTTP/1.1\r\nX-Empty:\r\nHost:   spaced   \r\n\r\n",
    };
    static const std::vector<std::string> kDict = {
        "GET ", "POST ", " HTTP/1.1", " HTTP/1.0", "\r\n", "\r\n\r\n",
        "Content-Length: ", "Content-Length: 8\r\n",
        "Transfer-Encoding: chunked\r\n", "Connection: close\r\n",
        "Host: h\r\n", ": ", "\t", " ", "\n"};
    return mutate_bytes(pick_seed(rng, corpus, kSeeds), rng,
                        1 + static_cast<unsigned>(rng.next_below(8)), kDict);
  }

  Outcome run(const std::string& payload) const override {
    const std::string whole = observe(payload, {payload.size()});

    std::vector<std::size_t> ones(payload.size(), 1);
    const std::string per_byte = observe(payload, ones);
    if (per_byte != whole) {
      return Outcome::fail("per-byte split diverges from single feed:\n--- "
                           "single ---\n" + whole + "\n--- per-byte ---\n" +
                           per_byte);
    }

    // Exhaustive two-chunk splits for small payloads.
    if (payload.size() <= 96) {
      for (std::size_t cut = 1; cut < payload.size(); ++cut) {
        const std::string split =
            observe(payload, {cut, payload.size() - cut});
        if (split != whole) {
          return Outcome::fail(
              "two-chunk split at " + std::to_string(cut) +
              " diverges:\n--- single ---\n" + whole + "\n--- split ---\n" +
              split);
        }
      }
    }

    // Random chunk schedules, derived from the payload so replay is exact.
    Rng rng(fnv1a64(payload));
    for (unsigned round = 0; round < 6; ++round) {
      std::vector<std::size_t> chunks;
      std::size_t pos = 0;
      while (pos < payload.size()) {
        const std::size_t n = 1 + static_cast<std::size_t>(rng.next_below(7));
        chunks.push_back(n);
        pos += n;
      }
      const std::string split = observe(payload, chunks);
      if (split != whole) {
        std::ostringstream schedule;
        for (std::size_t n : chunks) schedule << n << ' ';
        return Outcome::fail("chunk schedule [" + schedule.str() +
                             "] diverges:\n--- single ---\n" + whole +
                             "\n--- split ---\n" + split);
      }
    }
    return Outcome::pass();
  }

 private:
  /// Feeds `payload` in the given chunk sizes and renders everything
  /// observable about the final parser state as a comparable string.
  static std::string observe(const std::string& payload,
                             const std::vector<std::size_t>& chunks) {
    net::RequestParser parser;
    std::size_t pos = 0;
    for (std::size_t n : chunks) {
      if (pos >= payload.size()) break;
      n = std::min(n, payload.size() - pos);
      parser.feed(std::string_view(payload).substr(pos, n));
      pos += n;
    }
    if (pos < payload.size()) {
      parser.feed(std::string_view(payload).substr(pos));
    }

    std::ostringstream os;
    switch (parser.status()) {
      case net::RequestParser::Status::kNeedMore:
        os << "need-more";
        break;
      case net::RequestParser::Status::kError:
        // Error state: the connection is answered and closed, and feed()
        // intentionally discards further input, so buffered_bytes() depends
        // on where in the schedule the error surfaced — not comparable.
        os << "error " << parser.error_status() << " "
           << parser.error_reason();
        return os.str();
      case net::RequestParser::Status::kComplete: {
        const net::HttpRequest& r = parser.request();
        os << "complete " << r.method << " " << r.target << " " << r.version
           << " keepalive=" << r.keep_alive() << "\n";
        for (const net::Header& h : r.headers) {
          os << h.name << "=" << h.value << "\n";
        }
        os << "body[" << r.body.size() << "]=" << r.body;
        break;
      }
    }
    os << "\nbuffered=" << parser.buffered_bytes();
    return os.str();
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// engine_diff payload + oracle (exposed in targets.h)
// ---------------------------------------------------------------------------

std::string make_engine_diff_payload(const EngineDiffCase& c) {
  const sim::ProcessorConfig& k = c.config;
  std::ostringstream os;
  os << "%config icache_miss=" << k.icache_miss_penalty
     << " dcache_miss=" << k.dcache_miss_penalty
     << " uncached_fetch=" << k.uncached_fetch_penalty
     << " uncached_data=" << k.uncached_data_penalty
     << " branch=" << k.taken_branch_penalty << " jump=" << k.jump_penalty
     << " interlock=" << k.load_use_interlock << " icache="
     << k.icache.size_bytes << "/" << k.icache.line_bytes << "/"
     << k.icache.ways << " dcache=" << k.dcache.size_bytes << "/"
     << k.dcache.line_bytes << "/" << k.dcache.ways << "\n";
  if (!c.tie_source.empty()) {
    os << "%tie\n" << c.tie_source;
    if (!ends_with(c.tie_source, "\n")) os << "\n";
  }
  os << "%asm\n" << c.asm_source;
  return os.str();
}

EngineDiffCase parse_engine_diff_payload(const std::string& payload) {
  EngineDiffCase c;
  std::string tie;
  std::string program;
  std::string* section = &program;
  for (std::string_view line : split_lines(payload)) {
    const std::string_view t = trim(line);
    if (starts_with(t, "%config")) {
      for (std::string_view token : split(t, ' ')) {
        apply_config_token(token, &c.config);
      }
      continue;
    }
    if (t == "%tie") {
      section = &tie;
      continue;
    }
    if (t == "%asm") {
      section = &program;
      continue;
    }
    section->append(line);
    section->push_back('\n');
  }
  c.tie_source = std::move(tie);
  c.asm_source = std::move(program);
  return c;
}

EngineDiffCase generate_engine_diff_case(Rng& rng) {
  EngineDiffCase c;

  static const std::vector<unsigned> kMissPenalties = {0, 2, 18};
  c.config.icache_miss_penalty = rng.pick(kMissPenalties);
  c.config.dcache_miss_penalty = rng.pick(kMissPenalties);
  c.config.taken_branch_penalty = static_cast<unsigned>(rng.next_in(0, 3));
  c.config.jump_penalty = static_cast<unsigned>(rng.next_in(0, 2));
  c.config.load_use_interlock = static_cast<unsigned>(rng.next_in(0, 2));
  // Tiny caches force the miss/refill paths that full-size caches never hit
  // on short programs.
  static const std::vector<std::uint32_t> kSizes = {256, 1024, 16384};
  for (sim::CacheConfig* cache : {&c.config.icache, &c.config.dcache}) {
    cache->size_bytes = rng.pick(kSizes);
    cache->line_bytes = rng.next_bool() ? 16 : 32;
    cache->ways = std::uint32_t{1} << rng.next_below(3);
    if (cache->size_bytes < cache->line_bytes * cache->ways) {
      cache->size_bytes = cache->line_bytes * cache->ways;
    }
  }

  ProgramGenOptions program;
  program.blocks = 8 + static_cast<unsigned>(rng.next_below(25));
  program.allow_self_modify = rng.next_bool(0.5);
  program.allow_uncached = rng.next_bool(0.35);

  if (rng.next_bool(0.6)) {
    c.tie_source = generate_tie_spec(rng);
    try {
      const tie::TieConfiguration tie =
          tie::compile_tie_source(c.tie_source);
      for (const auto& [name, mnemonic] : tie.assembler_mnemonics()) {
        program.customs.push_back({name, mnemonic.has_rd, mnemonic.has_rs1,
                                   mnemonic.has_rs2});
      }
    } catch (const Error&) {
      // Generator produced an uncompilable spec (covered by its own unit
      // tests); fall back to a base-processor case.
      c.tie_source.clear();
    }
  }
  c.asm_source = generate_program(rng, program);
  return c;
}

Outcome run_engine_diff(const EngineDiffCase& c) {
  tie::TieConfiguration tie;
  if (!c.tie_source.empty()) {
    try {
      tie = tie::compile_tie_source(c.tie_source);
    } catch (const Error&) {
      return Outcome::pass();
    } catch (const std::exception& e) {
      return Outcome::fail(std::string("unexpected exception: ") + e.what());
    }
  }
  isa::AssemblerOptions options;
  options.custom_mnemonics = tie.assembler_mnemonics();
  isa::ProgramImage image;
  try {
    image = isa::assemble(c.asm_source, options);
  } catch (const Error&) {
    return Outcome::pass();
  } catch (const std::exception& e) {
    return Outcome::fail(std::string("unexpected exception: ") + e.what());
  }
  try {
    const Capture fast =
        capture_run(c.config, tie, image, sim::Engine::kFast);
    const Capture ref =
        capture_run(c.config, tie, image, sim::Engine::kReference);
    const Capture threaded =
        capture_run(c.config, tie, image, sim::Engine::kThreaded);
    Outcome o = compare_captures(fast, ref);
    if (!o.ok) return o;
    o = compare_captures(threaded, ref, "threaded", "reference");
    if (!o.ok) return o;
    return compare_captures(threaded, fast, "threaded", "fast");
  } catch (const std::exception& e) {
    return Outcome::fail(std::string("unexpected exception: ") + e.what());
  }
}

std::string json_serialize(const JsonValue& value) {
  std::string out;
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      return "null";
    case JsonValue::Kind::kBool:
      return value.as_bool() ? "true" : "false";
    case JsonValue::Kind::kNumber: {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", value.as_number());
      return buf;
    }
    case JsonValue::Kind::kString:
      return "\"" + json_escape(value.as_string()) + "\"";
    case JsonValue::Kind::kArray: {
      out = "[";
      bool first = true;
      for (const JsonValue& element : value.as_array()) {
        if (!first) out += ",";
        first = false;
        out += json_serialize(element);
      }
      out += "]";
      return out;
    }
    case JsonValue::Kind::kObject: {
      out = "{";
      bool first = true;
      for (const auto& [key, member] : value.as_object()) {
        if (!first) out += ",";
        first = false;
        out += "\"" + json_escape(key) + "\":" + json_serialize(member);
      }
      out += "}";
      return out;
    }
  }
  return out;  // unreachable
}

// ---------------------------------------------------------------------------
// Registry (declared in fuzz.h)
// ---------------------------------------------------------------------------

const std::vector<const Target*>& builtin_targets() {
  static const EngineDiffTarget engine_diff;
  static const TieDiffTarget tie_diff;
  static const AsmTarget asm_target;
  static const DisasmTarget disasm;
  static const ImageTarget image;
  static const JsonTarget json;
  static const HttpTarget http;
  static const std::vector<const Target*> all = {
      &engine_diff, &tie_diff, &asm_target, &disasm, &image, &json, &http};
  return all;
}

const Target* find_target(std::string_view name) {
  for (const Target* target : builtin_targets()) {
    if (target->name() == name) return target;
  }
  return nullptr;
}

}  // namespace exten::fuzz
