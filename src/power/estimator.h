#pragma once

// RtlPowerEstimator: the ground-truth, RTL-level structural energy
// simulator — this project's stand-in for the commercial flow the paper
// used (Xtensa processor generator -> ModelSim RTL simulation -> Sente
// WattWatcher).
//
// The estimator observes the retirement stream and replays it against a
// block-level structural model of the *extended* processor: every base-core
// block (clock tree, fetch/I-cache, decoder, register-file ports, operand
// and result buses, ALU, shifter, multiplier, AGU, D-cache, branch unit,
// bus interface) plus one datapath block per custom-instruction component.
// Dynamic energy is switching-activity based: each block charges a base
// access cost plus a per-toggled-bit cost computed from the Hamming
// distance between consecutive values on its inputs. Custom datapaths also
// burn input-stage energy when base instructions toggle the shared operand
// buses (the side effects of paper Example 1), and leak every cycle.
//
// The per-cycle, per-block, multi-settle-pass evaluation makes this
// deliberately expensive per instruction — that cost difference versus the
// macro-model path is the paper's headline speedup experiment.

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "power/technology.h"
#include "sim/events.h"
#include "tie/compiler.h"

namespace exten::power {

class RtlPowerEstimator : public sim::RetireObserver {
 public:
  /// The TieConfiguration describes the synthesized custom hardware and
  /// must outlive the estimator.
  explicit RtlPowerEstimator(const tie::TieConfiguration& tie,
                             const TechnologyParams& params = {});

  void on_run_begin() override;
  void on_retire(const sim::RetiredInstruction& r) override;
  void on_run_end(std::uint64_t instructions, std::uint64_t cycles) override;

  /// Total energy of the observed run.
  double energy_pj() const { return total_pj_; }
  double energy_uj() const { return total_pj_ * 1e-6; }

  /// Average power in mW at the given clock.
  double average_power_mw(double clock_mhz) const;

  /// Per-block energy breakdown (pJ), keyed by block name.
  std::map<std::string, double> block_breakdown() const;

  std::uint64_t cycles_simulated() const { return cycles_; }

  /// Rolling checksum over the per-cycle netlist evaluation (see
  /// evaluate_netlist_cycle). Deterministic for a given run; exposed so the
  /// evaluation is an observable output (and testable).
  std::uint64_t netlist_signature() const { return net_checksum_; }

 private:
  /// Base-core block identifiers (breakdown reporting).
  enum BaseBlock : std::size_t {
    kClockTree = 0,
    kPipelineRegs,
    kFetch,
    kDecode,
    kRegfileRead,
    kRegfileWrite,
    kOperandBus,
    kResultBus,
    kAlu,
    kShifter,
    kMultiplier,
    kBranchUnit,
    kAgu,
    kDcache,
    kBusInterface,
    kStallControl,
    kBaseBlockCount,
  };

  /// One synthesized custom-hardware component instance.
  struct CustomBlock {
    const tie::CustomInstruction* owner = nullptr;
    tie::ComponentUse use;
    double unit_energy = 0.0;   ///< params.component_unit[cls]
    double weight = 0.0;        ///< count x C(W)
    bool input_stage = false;   ///< active in cycle 0 (bus-facing)
    std::uint64_t prev_inputs = 0;  ///< last operand pair seen (toggles)
    double energy_pj = 0.0;
  };

  /// Charges `pj` to a base block.
  void charge(BaseBlock block, double pj) {
    base_energy_[block] += pj;
    total_pj_ += pj;
  }
  void charge_custom(CustomBlock& block, double pj) {
    block.energy_pj += pj;
    total_pj_ += pj;
  }

  /// Hamming distance refined over settle passes (byte lanes).
  unsigned settled_toggles(std::uint64_t prev, std::uint64_t cur) const;

  /// Evaluates every net of every synthesized block once per settle pass —
  /// the cycle-driven evaluation an RTL simulator performs whether or not
  /// anything toggles. This is what makes the ground-truth path slow
  /// relative to the macro-model path (the paper's speedup experiment);
  /// energy is charged by the activity model above, the net evaluation
  /// models simulation *cost* and feeds netlist_signature().
  void evaluate_netlist_cycle(std::uint64_t stimulus);

  void simulate_execute_cycle(const sim::RetiredInstruction& r);
  void simulate_stall_cycles(const sim::RetiredInstruction& r);
  void simulate_custom_activity(const sim::RetiredInstruction& r);
  void simulate_bus_side_effects(const sim::RetiredInstruction& r);

  const tie::TieConfiguration& tie_;
  TechnologyParams params_;

  std::array<double, kBaseBlockCount> base_energy_{};
  std::vector<CustomBlock> custom_blocks_;
  /// Indices into custom_blocks_ per extension id.
  std::vector<std::vector<std::size_t>> blocks_by_func_;
  double total_custom_complexity_ = 0.0;

  double total_pj_ = 0.0;
  std::uint64_t cycles_ = 0;

  /// Net state of the elaborated design, evaluated every cycle.
  std::vector<std::uint32_t> nets_;
  std::uint64_t net_checksum_ = 0;

  // Previous-value state for switching activity.
  std::uint32_t prev_instr_word_ = 0;
  std::uint32_t prev_bus_a_ = 0;
  std::uint32_t prev_bus_b_ = 0;
  std::uint32_t prev_result_ = 0;
  std::uint32_t prev_alu_a_ = 0;
  std::uint32_t prev_alu_b_ = 0;
};

}  // namespace exten::power
