#include "power/estimator.h"

#include <algorithm>
#include <bit>

#include "util/error.h"

namespace exten::power {

namespace {

constexpr const char* kBaseBlockNames[] = {
    "clock_tree",    "pipeline_regs", "fetch_icache", "decoder",
    "regfile_read",  "regfile_write", "operand_bus",  "result_bus",
    "alu",           "shifter",       "multiplier",   "branch_unit",
    "agu",           "dcache",        "bus_interface", "stall_control",
};

/// Extra per-base-block idle (leakage) energy per cycle.
constexpr double kBaseBlockLeakageCycle = 0.6;

std::uint64_t pack_operands(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::uint64_t>(a) |
         (static_cast<std::uint64_t>(b) << 32);
}

bool uses_shifter(isa::Opcode op) {
  using isa::Opcode;
  switch (op) {
    case Opcode::kSll:
    case Opcode::kSrl:
    case Opcode::kSra:
    case Opcode::kSlli:
    case Opcode::kSrli:
    case Opcode::kSrai:
      return true;
    default:
      return false;
  }
}

bool uses_multiplier(isa::Opcode op) {
  return op == isa::Opcode::kMul || op == isa::Opcode::kMulh;
}

}  // namespace

RtlPowerEstimator::RtlPowerEstimator(const tie::TieConfiguration& tie,
                                     const TechnologyParams& params)
    : tie_(tie), params_(params) {
  EXTEN_CHECK(params_.settle_passes >= 1, "settle_passes must be >= 1");
  // "Synthesize" the custom hardware: one block per component use of every
  // custom instruction in the configuration.
  blocks_by_func_.resize(tie_.instructions().size());
  for (const tie::CustomInstruction& ci : tie_.instructions()) {
    for (const tie::ComponentUse& use : ci.components) {
      CustomBlock block;
      block.owner = &ci;
      block.use = use;
      block.unit_energy =
          params_.component_unit[static_cast<std::size_t>(use.cls)];
      block.weight = use.total_complexity();
      block.input_stage =
          use.active_cycles.empty() ||
          std::find(use.active_cycles.begin(), use.active_cycles.end(), 0u) !=
              use.active_cycles.end();
      total_custom_complexity_ += block.weight;
      blocks_by_func_[ci.func].push_back(custom_blocks_.size());
      custom_blocks_.push_back(block);
    }
  }

  // Elaborate the net list: every base block contributes a fixed number of
  // nets; custom blocks contribute in proportion to their complexity. These
  // are the signals a cycle-driven RTL simulator evaluates every cycle.
  constexpr std::size_t kNetsPerBaseBlock = 48;
  std::size_t net_count = kBaseBlockCount * kNetsPerBaseBlock;
  for (const CustomBlock& block : custom_blocks_) {
    net_count += 8 + static_cast<std::size_t>(block.weight * 32.0);
  }
  nets_.assign(net_count, 0x6d2b79f5u);
}

void RtlPowerEstimator::on_run_begin() {
  base_energy_.fill(0.0);
  for (CustomBlock& block : custom_blocks_) {
    block.prev_inputs = 0;
    block.energy_pj = 0.0;
  }
  total_pj_ = 0.0;
  cycles_ = 0;
  for (std::uint32_t& net : nets_) net = 0x6d2b79f5u;
  net_checksum_ = 0;
  prev_instr_word_ = 0;
  prev_bus_a_ = prev_bus_b_ = prev_result_ = 0;
  prev_alu_a_ = prev_alu_b_ = 0;
}

unsigned RtlPowerEstimator::settled_toggles(std::uint64_t prev,
                                            std::uint64_t cur) const {
  // Event-driven evaluation: each settle pass re-evaluates the byte lanes
  // of the changed value; the passes converge to the full Hamming distance.
  const std::uint64_t x = prev ^ cur;
  unsigned accumulated = 0;
  for (int pass = 0; pass < params_.settle_passes; ++pass) {
    unsigned pass_toggles = 0;
    for (int lane = 0; lane < 8; ++lane) {
      pass_toggles +=
          static_cast<unsigned>(std::popcount((x >> (8 * lane)) & 0xffu));
    }
    accumulated += pass_toggles;
  }
  return accumulated / static_cast<unsigned>(params_.settle_passes);
}

void RtlPowerEstimator::evaluate_netlist_cycle(std::uint64_t stimulus) {
  // Cycle-driven evaluation: every net is recomputed settle_passes times,
  // exactly as an RTL simulator evaluates the elaborated design each clock
  // whether or not values change. The checksum keeps the evaluation an
  // observable (and verifiable) output.
  std::uint64_t acc = net_checksum_;
  for (int pass = 0; pass < params_.settle_passes; ++pass) {
    std::uint32_t carry = static_cast<std::uint32_t>(stimulus ^ (stimulus >> 32)) + static_cast<std::uint32_t>(pass);
    for (std::uint32_t& net : nets_) {
      net = (net ^ carry) * 0x9e3779b1u;
      carry = net >> 16;
    }
    acc += carry;
  }
  net_checksum_ = acc;
}

void RtlPowerEstimator::on_retire(const sim::RetiredInstruction& r) {
  cycles_ += r.total_cycles;

  // --- Per-cycle baseline: netlist evaluation, clock tree, leakage --------
  const std::uint64_t stimulus = pack_operands(r.rs1_value, r.rs2_value) ^
                                 (std::uint64_t{r.pc} << 13) ^
                                 (std::uint64_t{r.result} << 29);
  for (unsigned cycle = 0; cycle < r.total_cycles; ++cycle) {
    evaluate_netlist_cycle(stimulus + cycle);
    charge(kClockTree, params_.clock_tree_cycle);
    charge(kPipelineRegs, params_.pipeline_regs_cycle);
    // Cell leakage: every synthesized block leaks each cycle.
    charge(kStallControl,
           kBaseBlockLeakageCycle * static_cast<double>(kBaseBlockCount));
    for (CustomBlock& block : custom_blocks_) {
      charge_custom(block,
                    params_.leakage_per_complexity_cycle * block.weight);
    }
  }

  simulate_execute_cycle(r);
  simulate_stall_cycles(r);
  if (r.custom != nullptr) {
    simulate_custom_activity(r);
  } else {
    simulate_bus_side_effects(r);
  }
}

void RtlPowerEstimator::simulate_execute_cycle(
    const sim::RetiredInstruction& r) {
  const isa::OpcodeInfo& info = isa::opcode_info(r.instr.op);

  // Front end: fetch + decode + pipeline register toggles.
  charge(kFetch, params_.fetch_access);
  const std::uint32_t word = isa::encode(r.instr);
  charge(kPipelineRegs,
         params_.pipeline_regs_bit *
             settled_toggles(prev_instr_word_, word));
  prev_instr_word_ = word;
  charge(kDecode, params_.decode_access);

  // Register file reads and the shared operand buses.
  bool reads_rs1 = info.reads_rs1;
  bool reads_rs2 = info.reads_rs2;
  bool writes_rd = info.writes_rd;
  if (r.custom != nullptr) {
    reads_rs1 = r.custom->reads_rs1;
    reads_rs2 = r.custom->reads_rs2;
    writes_rd = r.custom->writes_rd;
  }
  if (reads_rs1) {
    charge(kRegfileRead, params_.regfile_read_port);
    charge(kOperandBus,
           params_.operand_bus_bit * settled_toggles(prev_bus_a_, r.rs1_value));
    prev_bus_a_ = r.rs1_value;
  }
  if (reads_rs2 || r.cls == isa::InstrClass::Store) {
    charge(kRegfileRead, params_.regfile_read_port);
    charge(kOperandBus,
           params_.operand_bus_bit * settled_toggles(prev_bus_b_, r.rs2_value));
    prev_bus_b_ = r.rs2_value;
  }

  // Execute units.
  switch (r.cls) {
    case isa::InstrClass::Arithmetic: {
      if (uses_multiplier(r.instr.op)) {
        charge(kMultiplier, params_.multiplier_op);
      } else if (uses_shifter(r.instr.op)) {
        charge(kShifter, params_.shifter_op);
      } else {
        charge(kAlu, params_.alu_op);
      }
      const std::uint64_t inputs = pack_operands(r.rs1_value, r.rs2_value);
      const std::uint64_t prev = pack_operands(prev_alu_a_, prev_alu_b_);
      charge(kAlu, params_.alu_bit * settled_toggles(prev, inputs));
      prev_alu_a_ = r.rs1_value;
      prev_alu_b_ = r.rs2_value;
      break;
    }
    case isa::InstrClass::Load:
      charge(kAgu, params_.agu_op);
      if (r.uncached_data) {
        charge(kBusInterface, params_.uncached_data);
      } else {
        charge(kDcache, params_.dcache_read);
      }
      break;
    case isa::InstrClass::Store:
      charge(kAgu, params_.agu_op);
      if (r.uncached_data) {
        charge(kBusInterface, params_.uncached_data);
      } else {
        charge(kDcache, params_.dcache_write);
      }
      break;
    case isa::InstrClass::Jump:
    case isa::InstrClass::Branch:
      charge(kBranchUnit, params_.branch_unit_op);
      break;
    case isa::InstrClass::Custom:
    case isa::InstrClass::Misc:
      break;
  }

  // Result write-back and result bus.
  if (writes_rd) {
    charge(kRegfileWrite, params_.regfile_write_port);
    charge(kResultBus,
           params_.result_bus_bit * settled_toggles(prev_result_, r.result));
    prev_result_ = r.result;
  }

  // Refill / uncached-transaction one-shot costs.
  if (r.icache_miss) charge(kBusInterface, params_.icache_refill);
  if (r.dcache_miss) charge(kBusInterface, params_.dcache_refill);
  if (r.uncached_fetch) charge(kBusInterface, params_.uncached_fetch);
}

void RtlPowerEstimator::simulate_stall_cycles(
    const sim::RetiredInstruction& r) {
  const unsigned stall =
      r.interlock_cycles + r.memory_stall_cycles;
  if (stall > 0) {
    charge(kStallControl, params_.stall_cycle * stall);
  }
  if (r.redirect_cycles > 0) {
    charge(kPipelineRegs, params_.flush_bubble * r.redirect_cycles);
  }
}

void RtlPowerEstimator::simulate_custom_activity(
    const sim::RetiredInstruction& r) {
  const tie::CustomInstruction& ci = *r.custom;
  const std::uint64_t inputs = pack_operands(r.rs1_value, r.rs2_value);
  for (std::size_t index : blocks_by_func_[ci.func]) {
    CustomBlock& block = custom_blocks_[index];
    const unsigned active = block.use.cycles_active(ci.latency);
    const unsigned toggles = settled_toggles(block.prev_inputs, inputs);
    block.prev_inputs = inputs;
    const double toggle_fraction = static_cast<double>(toggles) / 64.0;
    const double activity =
        params_.activity_floor + (1.0 - params_.activity_floor) * toggle_fraction;
    charge_custom(block, block.unit_energy * block.weight * activity *
                             static_cast<double>(active));
  }
}

void RtlPowerEstimator::simulate_bus_side_effects(
    const sim::RetiredInstruction& r) {
  // Base-processor instructions that drive the shared operand buses toggle
  // the input stage of every non-isolated custom datapath (Example 1).
  if (r.cls != isa::InstrClass::Arithmetic) return;
  if (custom_blocks_.empty()) return;
  const std::uint64_t inputs = pack_operands(r.rs1_value, r.rs2_value);
  for (CustomBlock& block : custom_blocks_) {
    if (!block.input_stage || block.owner->isolated) continue;
    const unsigned toggles = settled_toggles(block.prev_inputs, inputs);
    block.prev_inputs = inputs;
    const double toggle_fraction = static_cast<double>(toggles) / 64.0;
    charge_custom(block, block.unit_energy * block.weight *
                             params_.side_input_fraction * toggle_fraction);
  }
}

void RtlPowerEstimator::on_run_end(std::uint64_t instructions,
                                   std::uint64_t cycles) {
  (void)instructions;
  (void)cycles;
}

double RtlPowerEstimator::average_power_mw(double clock_mhz) const {
  if (cycles_ == 0) return 0.0;
  const double seconds = static_cast<double>(cycles_) / (clock_mhz * 1e6);
  return total_pj_ * 1e-12 / seconds * 1e3;
}

std::map<std::string, double> RtlPowerEstimator::block_breakdown() const {
  std::map<std::string, double> out;
  for (std::size_t b = 0; b < kBaseBlockCount; ++b) {
    out[kBaseBlockNames[b]] = base_energy_[b];
  }
  for (const CustomBlock& block : custom_blocks_) {
    const std::string key =
        "tie:" + block.owner->name + ":" +
        std::string(tie::component_class_name(block.use.cls));
    out[key] += block.energy_pj;
  }
  return out;
}

}  // namespace exten::power
