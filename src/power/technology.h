#pragma once

// Technology / characterization parameters for the RTL-level energy model.
//
// All energies are in picojoules (pJ). Defaults approximate a 0.18 um
// standard-cell embedded core at 187 MHz / 1.8 V — the paper's Xtensa T1040
// target — with per-class totals landing near 0.4-0.6 nJ/cycle (typical
// published numbers for cores of that generation).
//
// The custom-component unit energies are chosen near the paper's Table I
// values so the regression-fitted coefficients land in the same range; the
// fitted values will NOT equal these constants exactly, because the macro-
// model can only observe aggregate activity while this model burns energy
// as a function of data-dependent switching.

#include <array>

#include "tie/components.h"

namespace exten::power {

struct TechnologyParams {
  // --- Always-on per-cycle costs -------------------------------------------
  double clock_tree_cycle = 92.0;      ///< clock distribution, every cycle
  double pipeline_regs_cycle = 36.0;   ///< pipeline register clocking
  double pipeline_regs_bit = 0.9;      ///< per toggled instruction-word bit

  // --- Front end -------------------------------------------------------------
  double fetch_access = 86.0;          ///< I-cache tag+data read per fetch
  double decode_access = 25.0;         ///< decoder per instruction
  double icache_refill = 1580.0;       ///< per I-cache miss (line fill)
  double uncached_fetch = 610.0;       ///< bus transaction per uncached fetch

  // --- Register file and buses ----------------------------------------------
  double regfile_read_port = 23.0;     ///< per operand read
  double regfile_write_port = 30.0;    ///< per result write
  double operand_bus_bit = 1.55;       ///< per toggled operand-bus bit
  double result_bus_bit = 1.25;        ///< per toggled result-bus bit

  // --- Execute units ----------------------------------------------------------
  double alu_op = 48.0;                ///< ALU base per operation
  double alu_bit = 1.05;               ///< ALU per toggled operand bit
  double shifter_op = 62.0;            ///< barrel shifter per shift op
  double multiplier_op = 108.0;        ///< 32x32 multiplier per mul/mulh
  double branch_unit_op = 21.0;        ///< compare + target adder per branch
  double flush_bubble = 52.0;          ///< per pipeline bubble on redirect

  // --- Memory pipeline --------------------------------------------------------
  double agu_op = 33.0;                ///< address generation per load/store
  double dcache_read = 94.0;           ///< D-cache read per load
  double dcache_write = 116.0;         ///< D-cache write per store (write-through)
  double dcache_refill = 1720.0;       ///< per D-cache load miss
  double uncached_data = 540.0;        ///< bus transaction per uncached access

  // --- Stalls -------------------------------------------------------------------
  double stall_cycle = 16.0;           ///< control overhead per stall cycle

  // --- Custom hardware ------------------------------------------------------
  /// Unit energy per complexity unit per active cycle, indexed by
  /// tie::ComponentClass. Chosen near the paper's Table I coefficients.
  std::array<double, tie::kComponentClassCount> component_unit = {
      148.0,  // mult
      66.0,   // adder/sub/comparator
      11.0,   // logic/reduction/mux
      360.0,  // shifter
      170.0,  // custom register
      158.0,  // TIE mult
      182.0,  // TIE mac
      65.0,   // TIE add
      35.0,   // TIE csa
      25.0,   // table
  };

  /// Activity split for an active custom component:
  /// energy = unit * C(W) * (activity_floor + (1-activity_floor)*toggle_frac).
  double activity_floor = 0.45;

  /// Fraction of a non-isolated datapath's input-stage energy burned when a
  /// base-processor instruction toggles the shared operand buses
  /// (paper Example 1: ADD activating custom hardware).
  double side_input_fraction = 0.30;

  /// Custom-hardware leakage per complexity unit per cycle (burned every
  /// cycle the extended processor is clocked, active or not).
  double leakage_per_complexity_cycle = 0.018;

  /// Settle passes per simulated cycle: how many times the cycle-driven
  /// evaluator recomputes every net of the elaborated design before
  /// declaring the cycle stable. RTL simulators pay this cost every clock
  /// whether or not anything toggles; it is what makes the ground-truth
  /// path orders of magnitude slower than instruction-set simulation.
  int settle_passes = 4;
};

}  // namespace exten::power
