#pragma once

// The macro-model template: 21 variables (paper §IV-B.1, Eqs. (2)-(4)).
//
//   E = E_inst + E_struct
//
//   E_inst   = c_a N_a + c_l N_l + c_s N_s + c_j N_j + c_bt N_bt
//            + c_bu N_bu + c_icm N_icm + c_dcm N_dcm + c_unc N_unc
//            + c_ilk N_ilk + c_cisef N_cisef
//
//   E_struct = sum over the 10 component categories j of
//              c_j * sum_i (active cycles of block i of category j) * C_j(W_i)
//
// Instruction-level variables count base-core usage; structural variables
// count complexity-weighted custom-hardware active cycles (due to both
// custom instructions and operand-bus side effects of base instructions).

#include <array>
#include <cstddef>
#include <string_view>

#include "linalg/matrix.h"
#include "tie/components.h"

namespace exten::model {

/// Indices into the 21-variable macro-model template.
enum VariableIndex : std::size_t {
  kVarArith = 0,        ///< N_a:  cycles of arithmetic-class instructions
  kVarLoad,             ///< N_l:  cycles of loads
  kVarStore,            ///< N_s:  cycles of stores
  kVarJump,             ///< N_j:  cycles of jumps
  kVarBranchTaken,      ///< N_bt: cycles of taken branches
  kVarBranchUntaken,    ///< N_bu: cycles of untaken branches
  kVarIcacheMiss,       ///< N_icm: instruction-cache misses
  kVarDcacheMiss,       ///< N_dcm: data-cache misses
  kVarUncachedFetch,    ///< N_unc: uncached instruction fetches
  kVarInterlock,        ///< N_ilk: processor interlocks
  kVarCustomSideEffect, ///< N_cisef: custom-instruction cycles touching the
                        ///<          generic register file
  kVarStructuralBase,   ///< first structural variable (category 0)
};

/// Count of instruction-level variables (paper Eq. (3)).
inline constexpr std::size_t kNumInstructionVars = kVarStructuralBase;
/// Total macro-model variables (paper: 21).
inline constexpr std::size_t kNumVariables =
    kNumInstructionVars + tie::kComponentClassCount;
static_assert(kNumVariables == 21, "the paper's template has 21 variables");

/// Structural variable index for a component category.
inline constexpr std::size_t structural_index(tie::ComponentClass cls) {
  return kVarStructuralBase + static_cast<std::size_t>(cls);
}

/// Short name for reports ("N_a", "icache_miss", "tie_mac", ...).
std::string_view variable_name(std::size_t index);
/// Human-readable description (Table I's "Description" column).
std::string_view variable_description(std::size_t index);

/// One program's variable values (the row of matrix A in Eq. (5)).
struct MacroModelVariables {
  std::array<double, kNumVariables> values{};

  double& operator[](std::size_t i) { return values[i]; }
  double operator[](std::size_t i) const { return values[i]; }

  /// Converts to a linalg vector (for regression / dot products).
  linalg::Vector to_vector() const;

  MacroModelVariables& operator+=(const MacroModelVariables& other) {
    for (std::size_t i = 0; i < kNumVariables; ++i) {
      values[i] += other.values[i];
    }
    return *this;
  }
};

}  // namespace exten::model
