#include "model/test_program.h"

#include "isa/assembler.h"
#include "util/error.h"

namespace exten::model {

TestProgram make_test_program(
    std::string name, std::string_view asm_source,
    std::shared_ptr<const tie::TieConfiguration> tie) {
  EXTEN_CHECK(tie != nullptr, "test program '", name,
              "' needs a (possibly empty) TIE configuration");
  try {
    isa::AssemblerOptions options;
    options.custom_mnemonics = tie->assembler_mnemonics();
    TestProgram program;
    program.image = isa::assemble(asm_source, options);
    program.name = std::move(name);
    program.tie = std::move(tie);
    return program;
  } catch (const Error& e) {
    throw Error("program '", name, "': ", e.what());
  }
}

TestProgram make_test_program(std::string name, std::string_view asm_source,
                              std::string_view tie_source) {
  std::shared_ptr<const tie::TieConfiguration> config;
  try {
    config = std::make_shared<tie::TieConfiguration>(
        tie_source.empty() ? tie::TieConfiguration{}
                           : tie::compile_tie_source(tie_source));
  } catch (const Error& e) {
    throw Error("program '", name, "' (TIE): ", e.what());
  }
  return make_test_program(std::move(name), asm_source, std::move(config));
}

}  // namespace exten::model
