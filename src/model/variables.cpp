#include "model/variables.h"

#include "util/error.h"

namespace exten::model {

namespace {
constexpr std::string_view kNames[kNumVariables] = {
    "N_a",     "N_l",     "N_s",      "N_j",     "N_bt",    "N_bu",
    "N_icm",   "N_dcm",   "N_unc",    "N_ilk",   "N_cisef", "mult",
    "adder",   "logic",   "shifter",  "custreg", "tie_mult", "tie_mac",
    "tie_add", "tie_csa", "table",
};
constexpr std::string_view kDescriptions[kNumVariables] = {
    "arithmetic instruction",
    "load instruction",
    "store instruction",
    "jump instruction",
    "branch taken",
    "branch untaken",
    "instruction cache miss",
    "data cache miss",
    "uncached instruction fetch",
    "processor interlock",
    "side effects due to custom instructions",
    "multiplier",
    "+/-/comparator",
    "logic/reduction/mux",
    "shifter",
    "custom register",
    "TIE mult",
    "TIE mac",
    "TIE add",
    "TIE csa",
    "table",
};
}  // namespace

std::string_view variable_name(std::size_t index) {
  EXTEN_CHECK(index < kNumVariables, "variable index ", index, " out of range");
  return kNames[index];
}

std::string_view variable_description(std::size_t index) {
  EXTEN_CHECK(index < kNumVariables, "variable index ", index, " out of range");
  return kDescriptions[index];
}

linalg::Vector MacroModelVariables::to_vector() const {
  linalg::Vector v(kNumVariables);
  for (std::size_t i = 0; i < kNumVariables; ++i) v[i] = values[i];
  return v;
}

}  // namespace exten::model
