#include "model/validate.h"

#include "util/error.h"
#include "util/rng.h"
#include "util/stats.h"

namespace exten::model {

namespace {

/// Deterministic Fisher-Yates permutation of 0..n-1. Suites are often laid
/// out family-major (all the ALU mixes, then all the memory programs, ...);
/// a plain round-robin fold assignment would then hold out whole families
/// at once. Shuffling decorrelates fold membership from suite layout while
/// keeping the split reproducible.
std::vector<std::size_t> shuffled_indices(std::size_t n) {
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  Rng rng(0x5eedf01d);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(indices[i - 1], indices[rng.next_below(i)]);
  }
  return indices;
}

}  // namespace

CrossValidationResult cross_validate(
    std::span<const TestProgram> programs, std::size_t folds,
    const CharacterizeOptions& options,
    std::vector<ProgramObservation> observations) {
  EXTEN_CHECK(folds >= 2, "cross-validation needs at least 2 folds, got ",
              folds);
  EXTEN_CHECK(programs.size() >= folds, "cannot split ", programs.size(),
              " programs into ", folds, " folds");

  if (observations.empty()) {
    observations.reserve(programs.size());
    for (const TestProgram& program : programs) {
      observations.push_back(observe_program(program, options));
    }
  }
  EXTEN_CHECK(observations.size() == programs.size(),
              "observation count ", observations.size(),
              " does not match program count ", programs.size());

  CrossValidationResult result;
  StreamingStats errors;
  StreamingStats fit_rms;
  const std::vector<std::size_t> order = shuffled_indices(observations.size());

  for (std::size_t fold = 0; fold < folds; ++fold) {
    std::vector<ProgramObservation> training;
    std::vector<std::size_t> held_out;
    for (std::size_t position = 0; position < order.size(); ++position) {
      const std::size_t i = order[position];
      if (position % folds == fold) {
        held_out.push_back(i);
      } else {
        training.push_back(observations[i]);
      }
    }

    const EnergyMacroModel fold_model =
        fit_from_observations(training, options);

    // In-sample RMS of this fold's training fit.
    StreamingStats training_errors;
    for (const ProgramObservation& obs : training) {
      training_errors.add(percent_error(fold_model.estimate_pj(obs.variables),
                                        obs.reference_pj));
    }
    fit_rms.add(training_errors.rms());

    for (std::size_t index : held_out) {
      const ProgramObservation& obs = observations[index];
      HoldOutPrediction prediction;
      prediction.name = obs.name;
      prediction.fold = fold;
      prediction.reference_pj = obs.reference_pj;
      prediction.predicted_pj = fold_model.estimate_pj(obs.variables);
      prediction.error_percent =
          percent_error(prediction.predicted_pj, prediction.reference_pj);
      errors.add(prediction.error_percent);
      result.predictions.push_back(std::move(prediction));
    }
  }

  result.mean_abs_error_percent = errors.mean_abs();
  result.rms_error_percent = errors.rms();
  result.max_abs_error_percent = errors.max_abs();
  result.mean_fit_rms_percent = fit_rms.mean();
  return result;
}

}  // namespace exten::model
