#pragma once

// MacroModelProfiler: extracts the 21 macro-model variable values from a
// program's dynamic execution.
//
// This combines the paper's "instruction set simulation" statistics
// gathering (Fig. 2, steps 6/9) and the "dynamic resource usage analysis"
// (steps 7/10): for every retired instruction it updates the
// instruction-level counters, and for custom instructions (and the
// operand-bus side effects of base arithmetic instructions on non-isolated
// datapaths) it accumulates complexity-weighted custom-hardware activity.

#include "model/variables.h"
#include "sim/events.h"
#include "tie/compiler.h"

namespace exten::model {

/// Weight applied to the input-stage activity a base-processor arithmetic
/// instruction induces on non-isolated custom datapaths (the resource-usage
/// analyzer's model of paper Example 1's side activation). Side-activated
/// input stages see operand toggles but no clock enables, so only a small
/// fraction of the component's active-cycle energy is burned; 0.10 is the
/// gating fraction times a typical operand-bus toggle rate.
inline constexpr double kSideActivationWeight = 0.10;

/// `final` matters for throughput: model/estimate.cpp drives the profiler
/// through Cpu::run_with_sink, and the sealed type lets the compiler
/// devirtualize/inline on_retire in that loop.
class MacroModelProfiler final : public sim::RetireObserver {
 public:
  /// `tie` is the configuration the profiled program runs on (needed for
  /// the shared-bus side-effect weights); it must outlive the profiler.
  explicit MacroModelProfiler(const tie::TieConfiguration& tie) : tie_(tie) {}

  void on_run_begin() override { vars_ = MacroModelVariables{}; }

  void on_retire(const sim::RetiredInstruction& r) override;

  const MacroModelVariables& variables() const { return vars_; }

 private:
  const tie::TieConfiguration& tie_;
  MacroModelVariables vars_;
};

}  // namespace exten::model
