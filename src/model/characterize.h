#pragma once

// Characterization: fitting the macro-model coefficients by regression
// (paper Fig. 2, steps 1-8).
//
// For every test program, the driver runs the instruction-set simulator
// with two observers attached: the MacroModelProfiler (variable values —
// the row of A) and the RtlPowerEstimator (ground-truth energy — the entry
// of e). It then solves A c = e by least squares (Eq. (5)) and reports
// per-program fitting errors (the paper's Fig. 3).

#include <span>
#include <string>
#include <vector>

#include "model/macro_model.h"
#include "model/test_program.h"
#include "power/technology.h"
#include "sim/config.h"

namespace exten::model {

/// Regression back-end.
enum class FitMethod {
  kQr,             ///< Householder QR (numerically robust; the default)
  kPseudoInverse,  ///< the paper's literal Eq. (5): (A^T A)^{-1} A^T e
};

struct CharacterizeOptions {
  sim::ProcessorConfig processor;
  power::TechnologyParams technology;
  FitMethod method = FitMethod::kQr;
  /// Ridge penalty; 0 = ordinary least squares (kQr only).
  double ridge_lambda = 0.0;
  /// Clamp coefficients at >= 0 (kQr only).
  bool nonnegative = false;
  /// Weight each observation by 1 / reference energy, so the fit minimizes
  /// *relative* error and a long-running test program cannot dominate the
  /// residual. This is what keeps per-program fitting errors uniformly
  /// small across a suite whose energies span two orders of magnitude.
  bool relative_weighting = true;
  /// Per-program instruction budget.
  std::uint64_t max_instructions = 200'000'000;
};

/// One test program's contribution to the regression, with its residual.
struct ProgramObservation {
  std::string name;
  MacroModelVariables variables;
  double reference_pj = 0.0;  ///< RTL-level ground truth
  double predicted_pj = 0.0;  ///< macro-model value after the fit
  double fitting_error_percent = 0.0;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
};

struct CharacterizationResult {
  EnergyMacroModel model;
  std::vector<ProgramObservation> observations;
  double r_squared = 0.0;
  double condition = 0.0;
  double rms_error_percent = 0.0;
  double max_abs_error_percent = 0.0;
  double mean_abs_error_percent = 0.0;
};

/// Runs the full characterization flow over the test-program suite.
/// Throws exten::Error when the suite is smaller than the variable count
/// (the regression would be underdetermined) or does not excite enough of
/// the variable space for a full-rank fit.
CharacterizationResult characterize(std::span<const TestProgram> programs,
                                    const CharacterizeOptions& options = {});

/// Profiles one program: runs the ISS with the MacroModelProfiler and the
/// RtlPowerEstimator attached and returns the observation (predicted_pj and
/// fitting_error_percent left at 0). Exposed for tests and ablations.
ProgramObservation observe_program(const TestProgram& program,
                                   const CharacterizeOptions& options = {});

/// The regression step alone: fits a macro-model from pre-computed
/// observations (no simulation). Throws exten::Error on rank deficiency,
/// like characterize(). Used by cross-validation and the ablations.
EnergyMacroModel fit_from_observations(
    std::span<const ProgramObservation> observations,
    const CharacterizeOptions& options = {});

}  // namespace exten::model
