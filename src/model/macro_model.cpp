#include "model/macro_model.h"

#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace exten::model {

namespace {
constexpr std::string_view kSerializeHeader = "exten-macro-model v1";
}  // namespace

EnergyMacroModel::EnergyMacroModel(linalg::Vector coefficients)
    : coefficients_(std::move(coefficients)) {
  EXTEN_CHECK(coefficients_.size() == kNumVariables,
              "macro-model needs ", kNumVariables, " coefficients, got ",
              coefficients_.size());
}

double EnergyMacroModel::estimate_pj(const MacroModelVariables& vars) const {
  double energy = 0.0;
  for (std::size_t i = 0; i < kNumVariables; ++i) {
    energy += coefficients_[i] * vars[i];
  }
  return energy;
}

double EnergyMacroModel::coefficient(std::size_t index) const {
  EXTEN_CHECK(index < kNumVariables, "coefficient index ", index,
              " out of range");
  return coefficients_[index];
}

AsciiTable EnergyMacroModel::coefficient_table() const {
  AsciiTable table({"Energy coefficient", "Description", "Value (pJ)"});
  for (std::size_t i = 0; i < kNumVariables; ++i) {
    table.add_row({std::string(variable_name(i)),
                   std::string(variable_description(i)),
                   format_fixed(coefficients_[i], 1)});
  }
  return table;
}

std::string EnergyMacroModel::serialize() const {
  std::ostringstream os;
  os << kSerializeHeader << '\n';
  for (std::size_t i = 0; i < kNumVariables; ++i) {
    os << variable_name(i) << ' ' << format_fixed(coefficients_[i], 6) << '\n';
  }
  return os.str();
}

EnergyMacroModel EnergyMacroModel::deserialize(std::string_view text) {
  const std::vector<std::string_view> lines = split_lines(text);
  EXTEN_CHECK(!lines.empty() && trim(lines[0]) == kSerializeHeader,
              "bad macro-model header (expected '", kSerializeHeader, "')");
  linalg::Vector coefficients(kNumVariables);
  std::size_t seen = 0;
  for (std::size_t li = 1; li < lines.size(); ++li) {
    const std::string_view line = trim(lines[li]);
    if (line.empty()) continue;
    const auto fields = split(line, ' ');
    EXTEN_CHECK(fields.size() == 2, "bad macro-model line '", line, "'");
    EXTEN_CHECK(seen < kNumVariables, "too many macro-model coefficients");
    EXTEN_CHECK(fields[0] == variable_name(seen),
                "macro-model coefficient order: expected '",
                variable_name(seen), "', got '", fields[0], "'");
    coefficients[seen] = std::stod(std::string(fields[1]));
    ++seen;
  }
  EXTEN_CHECK(seen == kNumVariables, "macro-model has ", seen,
              " coefficients, expected ", kNumVariables);
  return EnergyMacroModel(std::move(coefficients));
}

}  // namespace exten::model
