#pragma once

// Fast application energy estimation with a characterized macro-model
// (paper Fig. 2, steps 9-11), and the slow RTL-level reference path used
// for accuracy comparisons (the Table II / Fig. 4 experiments).

#include <map>
#include <string>

#include "model/macro_model.h"
#include "model/test_program.h"
#include "power/technology.h"
#include "sim/config.h"
#include "sim/cpu.h"
#include "sim/stats.h"

namespace exten::model {

/// Result of the fast macro-model path: ISS + resource-usage analysis +
/// dot product with the fitted coefficients. No custom processor is
/// synthesized and no RTL-level simulation runs.
struct EnergyEstimate {
  double energy_pj = 0.0;
  MacroModelVariables variables;
  sim::ExecutionStats stats;
  /// Wall-clock seconds spent (ISS + profiling + evaluation).
  double elapsed_seconds = 0.0;

  double energy_uj() const { return energy_pj * 1e-6; }
};

/// Result of the slow reference path: ISS + RTL-level power estimation of
/// the synthesized extended processor.
struct ReferenceResult {
  double energy_pj = 0.0;
  sim::ExecutionStats stats;
  double elapsed_seconds = 0.0;
  /// Per-block energy breakdown from the structural model.
  std::map<std::string, double> breakdown;

  double energy_uj() const { return energy_pj * 1e-6; }
};

/// Estimates application energy with the macro-model (fast path).
///
/// `engine` selects the execution engine: sim::Engine::kFast (default) runs
/// the predecoded/bytecode engine through a statically-dispatched
/// profiler+stats sink; sim::Engine::kReference runs the original
/// interpreter through the observer list. Both produce bit-identical
/// variables and energy (tests/test_engine_diff.cpp).
///
/// Thread safety: safe to call concurrently from many threads. Every
/// mutable object (Cpu, Memory, caches, profiler, stats collector) is
/// created per call; the shared inputs — the macro-model, the program
/// image and its TieConfiguration — are only read. The same TestProgram
/// may be evaluated on several threads at once.
EnergyEstimate estimate_energy(const EnergyMacroModel& model,
                               const TestProgram& program,
                               const sim::ProcessorConfig& processor = {},
                               std::uint64_t max_instructions = 200'000'000,
                               sim::Engine engine = sim::Engine::kFast);

/// Computes the ground-truth energy with the RTL-level estimator
/// (slow path; stands in for ModelSim + WattWatcher).
ReferenceResult reference_energy(const TestProgram& program,
                                 const sim::ProcessorConfig& processor = {},
                                 const power::TechnologyParams& technology = {},
                                 std::uint64_t max_instructions = 200'000'000);

}  // namespace exten::model
