#pragma once

// Cross-validation of the macro-model fit.
//
// In-sample fitting error (the paper's Fig. 3) understates how a
// macro-model behaves on programs it never saw. k-fold cross-validation
// refits the model k times, each time holding out one fold of the
// characterization suite, and reports the held-out prediction errors —
// the honest generalization number for a characterization campaign.

#include <span>
#include <string>
#include <vector>

#include "model/characterize.h"

namespace exten::model {

/// One held-out prediction.
struct HoldOutPrediction {
  std::string name;
  std::size_t fold = 0;
  double reference_pj = 0.0;
  double predicted_pj = 0.0;
  double error_percent = 0.0;
};

struct CrossValidationResult {
  std::vector<HoldOutPrediction> predictions;  ///< one per program
  double mean_abs_error_percent = 0.0;
  double rms_error_percent = 0.0;
  double max_abs_error_percent = 0.0;
  /// In-sample RMS averaged over the folds, for comparison.
  double mean_fit_rms_percent = 0.0;
};

/// Runs k-fold cross-validation over `programs`.
///
/// Folds are assigned by a deterministic shuffle (so family-major suite
/// layouts don't put whole program families into one fold); each fold's
/// training set must still cover the variable space, so k should be small
/// relative to the suite size (folds whose training fit is rank-deficient
/// throw exten::Error — use a larger suite or fewer folds).
///
/// `observations` may be supplied to reuse already-profiled programs
/// (from characterize() / observe_program()); when empty, every program
/// is profiled here.
CrossValidationResult cross_validate(
    std::span<const TestProgram> programs, std::size_t folds,
    const CharacterizeOptions& options = {},
    std::vector<ProgramObservation> observations = {});

}  // namespace exten::model
