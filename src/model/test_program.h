#pragma once

// TestProgram: a program bundled with the processor extension it runs on.
//
// During characterization each test program may target a different custom
// processor (paper: "custom processors are generated during
// characterization"); during estimation an application carries the custom
// instructions whose energy/performance trade-off is being evaluated.

#include <memory>
#include <string>
#include <string_view>

#include "isa/program.h"
#include "tie/compiler.h"

namespace exten::model {

struct TestProgram {
  std::string name;
  isa::ProgramImage image;
  /// The instruction-set extension this program was assembled against.
  /// Shared so many programs can target one configuration. Never null
  /// (base-only programs use an empty configuration).
  std::shared_ptr<const tie::TieConfiguration> tie;
};

/// Compiles `tie_source` (may be empty for a base-only program), assembles
/// `asm_source` with the extension's mnemonics registered, and bundles the
/// result. Throws exten::Error on any TIE or assembly error, prefixed with
/// the program name.
TestProgram make_test_program(std::string name, std::string_view asm_source,
                              std::string_view tie_source = {});

/// Variant reusing an already-compiled configuration.
TestProgram make_test_program(
    std::string name, std::string_view asm_source,
    std::shared_ptr<const tie::TieConfiguration> tie);

}  // namespace exten::model
