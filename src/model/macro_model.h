#pragma once

// EnergyMacroModel: a characterized macro-model — the 21 fitted energy
// coefficients — plus estimation, serialization, and reporting.

#include <iosfwd>
#include <string>
#include <string_view>

#include "linalg/matrix.h"
#include "model/variables.h"
#include "util/table.h"

namespace exten::model {

class EnergyMacroModel {
 public:
  /// Builds a model from 21 coefficients (pJ per unit of each variable).
  explicit EnergyMacroModel(linalg::Vector coefficients);

  /// Estimated energy in pJ for the given variable values (Eq. (2)).
  double estimate_pj(const MacroModelVariables& vars) const;
  double estimate_uj(const MacroModelVariables& vars) const {
    return estimate_pj(vars) * 1e-6;
  }

  const linalg::Vector& coefficients() const { return coefficients_; }
  double coefficient(std::size_t index) const;

  /// Renders the paper's Table I: coefficient name, description, value.
  AsciiTable coefficient_table() const;

  /// Text serialization: one "name value" line per coefficient, with a
  /// version header. Round-trips through deserialize().
  std::string serialize() const;
  static EnergyMacroModel deserialize(std::string_view text);

 private:
  linalg::Vector coefficients_;
};

}  // namespace exten::model
