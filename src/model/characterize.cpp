#include "model/characterize.h"

#include <cmath>

#include "linalg/least_squares.h"
#include "model/profiler.h"
#include "power/estimator.h"
#include "sim/cpu.h"
#include "util/error.h"
#include "util/stats.h"

namespace exten::model {

ProgramObservation observe_program(const TestProgram& program,
                                   const CharacterizeOptions& options) {
  EXTEN_CHECK(program.tie != nullptr, "program '", program.name,
              "' has no TIE configuration");
  sim::Cpu cpu(options.processor, *program.tie);
  cpu.load_program(program.image);

  MacroModelProfiler profiler(*program.tie);
  power::RtlPowerEstimator reference(*program.tie, options.technology);
  cpu.add_observer(&profiler);
  cpu.add_observer(&reference);

  const sim::RunResult run = cpu.run(options.max_instructions);

  ProgramObservation obs;
  obs.name = program.name;
  obs.variables = profiler.variables();
  obs.reference_pj = reference.energy_pj();
  obs.instructions = run.instructions;
  obs.cycles = run.cycles;
  return obs;
}

namespace internal {

/// Step 8: regression. Builds A (N x 21) and e (N) from the observations
/// and solves per the options. With relative weighting, row r and e_r are
/// scaled by 1/e_r so every program contributes its *percent* residual.
/// Returns the coefficients and (via out-param) the condition estimate.
linalg::Vector fit_coefficients(std::span<const ProgramObservation> observations,
                                const CharacterizeOptions& options,
                                double* condition_out) {
  linalg::Matrix a(observations.size(), kNumVariables);
  linalg::Vector e(observations.size());
  for (std::size_t r = 0; r < observations.size(); ++r) {
    const double reference = observations[r].reference_pj;
    EXTEN_CHECK(reference > 0.0, "program '", observations[r].name,
                "' has non-positive reference energy ", reference);
    const double weight =
        options.relative_weighting ? 1.0 / reference : 1.0;
    linalg::Vector row = observations[r].variables.to_vector();
    for (std::size_t c = 0; c < kNumVariables; ++c) row[c] *= weight;
    a.set_row(r, row);
    e[r] = reference * weight;
  }

  if (options.method == FitMethod::kPseudoInverse) {
    if (condition_out != nullptr) *condition_out = 0.0;
    return linalg::pseudo_inverse_solve(a, e);
  }
  linalg::LeastSquaresOptions ls;
  ls.ridge_lambda = options.ridge_lambda;
  ls.nonnegative = options.nonnegative;
  const linalg::LeastSquaresFit fit = linalg::solve_least_squares(a, e, ls);
  if (condition_out != nullptr) *condition_out = fit.condition;
  return fit.coefficients;
}

}  // namespace internal

CharacterizationResult characterize(std::span<const TestProgram> programs,
                                    const CharacterizeOptions& options) {
  EXTEN_CHECK(programs.size() >= kNumVariables,
              "characterization needs at least ", kNumVariables,
              " test programs (one per macro-model variable), got ",
              programs.size());

  // Step 3-7: gather observations.
  std::vector<ProgramObservation> observations;
  observations.reserve(programs.size());
  for (const TestProgram& program : programs) {
    observations.push_back(observe_program(program, options));
  }

  double condition = 0.0;
  linalg::Vector coefficients =
      internal::fit_coefficients(observations, options, &condition);

  CharacterizationResult result{EnergyMacroModel(std::move(coefficients)),
                                std::move(observations)};
  result.condition = condition;

  // Diagnostics on the unweighted data.
  StreamingStats errors;
  double ss_res = 0.0;
  double energy_mean = 0.0;
  for (ProgramObservation& obs : result.observations) {
    obs.predicted_pj = result.model.estimate_pj(obs.variables);
    obs.fitting_error_percent = percent_error(obs.predicted_pj, obs.reference_pj);
    errors.add(obs.fitting_error_percent);
    const double residual = obs.reference_pj - obs.predicted_pj;
    ss_res += residual * residual;
    energy_mean += obs.reference_pj;
  }
  energy_mean /= static_cast<double>(result.observations.size());
  double ss_tot = 0.0;
  for (const ProgramObservation& obs : result.observations) {
    ss_tot += (obs.reference_pj - energy_mean) * (obs.reference_pj - energy_mean);
  }
  result.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  result.rms_error_percent = errors.rms();
  result.max_abs_error_percent = errors.max_abs();
  result.mean_abs_error_percent = errors.mean_abs();
  return result;
}


EnergyMacroModel fit_from_observations(
    std::span<const ProgramObservation> observations,
    const CharacterizeOptions& options) {
  EXTEN_CHECK(!observations.empty(), "no observations to fit");
  return EnergyMacroModel(
      internal::fit_coefficients(observations, options, nullptr));
}

}  // namespace exten::model
