#include "model/profiler.h"

namespace exten::model {

void MacroModelProfiler::on_retire(const sim::RetiredInstruction& r) {
  using isa::InstrClass;

  // Instruction-level variables: base-occupancy cycles per class. Custom
  // instructions are excluded — their base-core usage enters only through
  // N_cisef, and their datapath usage through the structural variables
  // (paper Eq. (3)).
  switch (r.cls) {
    case InstrClass::Arithmetic:
    case InstrClass::Misc:  // NOP/HALT exercise fetch/decode like arithmetic
      vars_[kVarArith] += r.base_cycles;
      break;
    case InstrClass::Load:
      vars_[kVarLoad] += r.base_cycles;
      break;
    case InstrClass::Store:
      vars_[kVarStore] += r.base_cycles;
      break;
    case InstrClass::Jump:
      vars_[kVarJump] += r.base_cycles;
      break;
    case InstrClass::Branch:
      vars_[r.branch_taken ? kVarBranchTaken : kVarBranchUntaken] +=
          r.base_cycles;
      break;
    case InstrClass::Custom:
      if (r.custom != nullptr && r.custom->uses_generic_regfile()) {
        vars_[kVarCustomSideEffect] += r.base_cycles;  // latency cycles
      }
      break;
  }

  // Dynamic non-idealities (event counts).
  if (r.icache_miss) vars_[kVarIcacheMiss] += 1;
  if (r.dcache_miss) vars_[kVarDcacheMiss] += 1;
  if (r.uncached_fetch) vars_[kVarUncachedFetch] += 1;
  vars_[kVarInterlock] += r.interlock_cycles;

  // Structural variables: complexity-weighted active cycles of custom
  // hardware.
  if (r.custom != nullptr) {
    for (std::size_t c = 0; c < tie::kComponentClassCount; ++c) {
      vars_[kVarStructuralBase + c] += r.custom->execution_weights[c];
    }
  } else if (r.cls == InstrClass::Arithmetic && !tie_.instructions().empty()) {
    // Side activation of non-isolated datapaths via the shared operand
    // buses (paper Example 1, CIHW activation by a base ADD).
    const auto& shared = tie_.shared_bus_weights();
    for (std::size_t c = 0; c < tie::kComponentClassCount; ++c) {
      vars_[kVarStructuralBase + c] += kSideActivationWeight * shared[c];
    }
  }
}

}  // namespace exten::model
