#include "model/estimate.h"

#include <chrono>

#include "model/profiler.h"
#include "power/estimator.h"
#include "sim/cpu.h"
#include "util/error.h"

namespace exten::model {

namespace {
double seconds_since(
    std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

/// Statically-dispatched profiler+stats sink: both observers are final, so
/// their on_retire bodies inline straight into the Cpu::run_with_sink loop
/// — no virtual call per retired instruction.
struct ProfilerStatsSink {
  MacroModelProfiler& profiler;
  sim::StatsCollector& stats;

  void on_run_begin() {
    profiler.on_run_begin();
    stats.on_run_begin();
  }
  void on_retire(const sim::RetiredInstruction& r) {
    profiler.on_retire(r);
    stats.on_retire(r);
  }
  void on_run_end(std::uint64_t instructions, std::uint64_t cycles) {
    profiler.on_run_end(instructions, cycles);
    stats.on_run_end(instructions, cycles);
  }
};
}  // namespace

EnergyEstimate estimate_energy(const EnergyMacroModel& model,
                               const TestProgram& program,
                               const sim::ProcessorConfig& processor,
                               std::uint64_t max_instructions,
                               sim::Engine engine) {
  EXTEN_CHECK(program.tie != nullptr, "program '", program.name,
              "' has no TIE configuration");
  const auto start = std::chrono::steady_clock::now();

  sim::Cpu cpu(processor, *program.tie, engine);
  cpu.load_program(program.image);
  MacroModelProfiler profiler(*program.tie);
  sim::StatsCollector stats;
  ProfilerStatsSink sink{profiler, stats};
  cpu.run_with_sink(sink, max_instructions);

  EnergyEstimate estimate;
  estimate.variables = profiler.variables();
  estimate.energy_pj = model.estimate_pj(estimate.variables);
  estimate.stats = stats.stats();
  estimate.elapsed_seconds = seconds_since(start);
  return estimate;
}

ReferenceResult reference_energy(const TestProgram& program,
                                 const sim::ProcessorConfig& processor,
                                 const power::TechnologyParams& technology,
                                 std::uint64_t max_instructions) {
  EXTEN_CHECK(program.tie != nullptr, "program '", program.name,
              "' has no TIE configuration");
  const auto start = std::chrono::steady_clock::now();

  sim::Cpu cpu(processor, *program.tie);
  cpu.load_program(program.image);
  power::RtlPowerEstimator rtl(*program.tie, technology);
  sim::StatsCollector stats;
  cpu.add_observer(&rtl);
  cpu.add_observer(&stats);
  cpu.run(max_instructions);

  ReferenceResult result;
  result.energy_pj = rtl.energy_pj();
  result.stats = stats.stats();
  result.breakdown = rtl.block_breakdown();
  result.elapsed_seconds = seconds_since(start);
  return result;
}

}  // namespace exten::model
