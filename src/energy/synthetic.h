#pragma once

// SyntheticBackend: a deterministic EnergyBackend for hermetic tests and
// demos. Every read() advances each domain's cumulative energy by a fixed
// per-read increment, so a test that controls the number of reads knows
// the exact joules to expect — no clocks, no hardware, no flakiness.

#include <vector>

#include "energy/backend.h"

namespace exten::energy {

struct SyntheticDomain {
  std::string name;
  double joules_per_read = 0.0;

  SyntheticDomain() = default;
  SyntheticDomain(std::string n, double j)
      : name(std::move(n)), joules_per_read(j) {}
};

class SyntheticBackend final : public EnergyBackend {
 public:
  /// Default shape: one package domain and two children, mirroring a
  /// typical single-socket RAPL tree.
  SyntheticBackend();
  explicit SyntheticBackend(std::vector<SyntheticDomain> spec);

  const char* kind() const override { return "synthetic"; }
  std::vector<std::string> domains() const override;
  std::vector<DomainEnergy> read() override;

 private:
  std::vector<SyntheticDomain> spec_;
  std::vector<double> cumulative_joules_;
};

}  // namespace exten::energy
