#include "energy/synthetic.h"

namespace exten::energy {

SyntheticBackend::SyntheticBackend()
    : SyntheticBackend({{"package-0", 0.25},
                        {"core", 0.125},
                        {"dram", 0.0625}}) {}

SyntheticBackend::SyntheticBackend(std::vector<SyntheticDomain> spec)
    : spec_(std::move(spec)), cumulative_joules_(spec_.size(), 0.0) {}

std::vector<std::string> SyntheticBackend::domains() const {
  std::vector<std::string> names;
  names.reserve(spec_.size());
  for (const SyntheticDomain& domain : spec_) names.push_back(domain.name);
  return names;
}

std::vector<DomainEnergy> SyntheticBackend::read() {
  std::vector<DomainEnergy> out;
  out.reserve(spec_.size());
  for (std::size_t i = 0; i < spec_.size(); ++i) {
    cumulative_joules_[i] += spec_[i].joules_per_read;
    out.emplace_back(spec_[i].name, cumulative_joules_[i]);
  }
  return out;
}

}  // namespace exten::energy
