#include "energy/meter.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace exten::energy {

EnergyMeter::EnergyMeter(std::unique_ptr<EnergyBackend> backend,
                         int sample_interval_ms)
    : backend_(std::move(backend)),
      names_(backend_->domains()),
      interval_ms_(sample_interval_ms) {
  cumulative_uj_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) cumulative_uj_[i] = 0;
  if (interval_ms_ > 0 && live()) {
    sampler_ = std::thread([this] { sampler_loop(); });
  }
}

EnergyMeter::~EnergyMeter() {
  if (sampler_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(stop_mu_);
      stop_ = true;
    }
    stop_cv_.notify_all();
    sampler_.join();
  }
}

void EnergyMeter::sample_now() {
  if (!live()) return;
  const std::lock_guard<std::mutex> lock(backend_mu_);
  store_reading(backend_->read());
}

void EnergyMeter::store_reading(const std::vector<DomainEnergy>& reading) {
  for (std::size_t i = 0; i < reading.size() && i < names_.size(); ++i) {
    const double uj = reading[i].joules * 1e6;
    cumulative_uj_[i].store(
        uj <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(uj)),
        std::memory_order_relaxed);
  }
  samples_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<DomainEnergy> EnergyMeter::snapshot() const {
  std::vector<DomainEnergy> out;
  out.reserve(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) {
    out.emplace_back(
        names_[i],
        static_cast<double>(cumulative_uj_[i].load(std::memory_order_relaxed)) *
            1e-6);
  }
  return out;
}

double EnergyMeter::total_joules() const {
  double total = 0.0;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    total +=
        static_cast<double>(cumulative_uj_[i].load(std::memory_order_relaxed)) *
        1e-6;
  }
  return total;
}

void EnergyMeter::sampler_loop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stop_) {
    // Fixed-interval monotonic cadence: wait_for uses steady_clock, so
    // wall-clock jumps cannot stall or burst the sampler.
    if (stop_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                          [this] { return stop_; })) {
      return;
    }
    lock.unlock();
    sample_now();
    lock.lock();
  }
}

EnergySection::EnergySection(EnergyMeter& meter) : meter_(meter) {
  meter_.sample_now();
  start_ = meter_.snapshot();
  start_time_ = std::chrono::steady_clock::now();
}

EnergySection::Report EnergySection::stop() {
  if (stopped_) return report_;
  stopped_ = true;
  meter_.sample_now();
  const std::vector<DomainEnergy> end = meter_.snapshot();
  report_.live = meter_.live();
  report_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  report_.joules.reserve(end.size());
  for (std::size_t i = 0; i < end.size(); ++i) {
    const double begin = i < start_.size() ? start_[i].joules : 0.0;
    report_.joules.emplace_back(end[i].name,
                                std::max(0.0, end[i].joules - begin));
  }
  return report_;
}

}  // namespace exten::energy
