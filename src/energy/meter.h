#pragma once

// EnergyMeter: a background sampler over an EnergyBackend, publishing
// per-domain cumulative joules as a lock-free snapshot; and
// EnergySection, a scoped interval measurement on top of it.
//
// Why a sampler at all: RAPL counters wrap (every ~60 s at package power
// on some parts), so a long-running server that only read the counter on
// demand could miss whole wrap periods. The meter samples on a fixed
// monotonic interval, keeps the overflow-corrected cumulative total, and
// the serving hot path reads that total with two relaxed atomic loads per
// domain — no locks, no syscalls, no sysfs I/O.
//
// Thread safety: sample_now() serializes backend reads behind a mutex
// (the background thread and any EnergySection user share it); snapshot()
// and total_joules() are wait-free and callable from any thread.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "energy/backend.h"

namespace exten::energy {

class EnergyMeter {
 public:
  /// Takes ownership of `backend` (never null; pass a NullBackend for the
  /// disabled state). `sample_interval_ms > 0` starts the background
  /// sampler thread; 0 means on-demand sampling only (sample_now /
  /// EnergySection) — the deterministic mode the fixture tests use.
  explicit EnergyMeter(std::unique_ptr<EnergyBackend> backend,
                       int sample_interval_ms = 0);
  ~EnergyMeter();

  EnergyMeter(const EnergyMeter&) = delete;
  EnergyMeter& operator=(const EnergyMeter&) = delete;

  const char* kind() const { return backend_->kind(); }
  /// True when at least one domain is measured (kind != "none").
  bool live() const { return !names_.empty(); }
  const std::vector<std::string>& domain_names() const { return names_; }

  /// Forces one backend read now (thread-safe, blocking on sysfs I/O).
  void sample_now();

  /// Cumulative joules per domain since meter creation. Wait-free: reads
  /// one atomic per domain, never touches the backend.
  std::vector<DomainEnergy> snapshot() const;

  /// Sum of snapshot() across domains that are not children of another
  /// measured domain would double-count; this is the plain sum — callers
  /// wanting "host energy" should prefer the package domain(s). Kept
  /// simple: per-domain data is the exported contract.
  double total_joules() const;

  std::uint64_t samples_taken() const {
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  void sampler_loop();
  void store_reading(const std::vector<DomainEnergy>& reading);

  std::unique_ptr<EnergyBackend> backend_;
  std::vector<std::string> names_;
  /// Cumulative microjoules per domain, atomically published (a u64 of
  /// integer microjoules cannot tear and is monotonic).
  std::unique_ptr<std::atomic<std::uint64_t>[]> cumulative_uj_;
  std::atomic<std::uint64_t> samples_{0};

  std::mutex backend_mu_;

  int interval_ms_ = 0;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread sampler_;
};

/// A measured interval of work: samples the meter at begin and end and
/// reports the per-domain joules spent in between plus wall time.
///
///   energy::EnergySection section(meter);
///   run_workload();
///   const energy::EnergySection::Report report = section.stop();
class EnergySection {
 public:
  struct Report {
    bool live = false;  ///< false when the meter has no backend
    double wall_seconds = 0.0;
    std::vector<DomainEnergy> joules;  ///< per-domain delta over the section

    double total_joules() const {
      double total = 0.0;
      for (const DomainEnergy& d : joules) total += d.joules;
      return total;
    }
  };

  /// Samples the meter immediately; `meter` must outlive the section.
  explicit EnergySection(EnergyMeter& meter);

  /// Samples again and returns the delta. Idempotent: the first stop()
  /// freezes the report, later calls return the same one.
  Report stop();

 private:
  EnergyMeter& meter_;
  std::vector<DomainEnergy> start_;
  std::chrono::steady_clock::time_point start_time_;
  bool stopped_ = false;
  Report report_;
};

}  // namespace exten::energy
