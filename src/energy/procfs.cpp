#include "energy/procfs.h"

#include <unistd.h>

#include <fstream>
#include <sstream>

namespace exten::energy {

ProcSelfStats read_proc_self_stats(const std::string& proc_root) {
  ProcSelfStats stats;

  long page_size = ::sysconf(_SC_PAGESIZE);
  if (page_size <= 0) page_size = 4096;
  long clk_tck = ::sysconf(_SC_CLK_TCK);
  if (clk_tck <= 0) clk_tck = 100;

  // statm: "size resident shared text lib data dt" in pages.
  std::ifstream statm(proc_root + "/self/statm");
  std::uint64_t size_pages = 0;
  std::uint64_t resident_pages = 0;
  if (!(statm >> size_pages >> resident_pages)) return stats;

  // stat: "pid (comm) state ppid ... utime stime ...". comm may contain
  // spaces and parentheses; parse from the LAST ')'.
  std::ifstream stat(proc_root + "/self/stat");
  std::string line;
  if (!std::getline(stat, line)) return stats;
  const std::size_t close = line.rfind(')');
  if (close == std::string::npos) return stats;
  std::istringstream rest(line.substr(close + 1));
  // After ')' the next field is state (field 3); utime/stime are fields
  // 14/15, i.e. the 11th and 12th tokens from here.
  std::string token;
  std::uint64_t utime_ticks = 0;
  std::uint64_t stime_ticks = 0;
  for (int field = 3; field <= 15; ++field) {
    if (!(rest >> token)) return stats;
    if (field == 14) utime_ticks = std::strtoull(token.c_str(), nullptr, 10);
    if (field == 15) stime_ticks = std::strtoull(token.c_str(), nullptr, 10);
  }

  stats.resident_bytes =
      resident_pages * static_cast<std::uint64_t>(page_size);
  stats.cpu_seconds = static_cast<double>(utime_ticks + stime_ticks) /
                      static_cast<double>(clk_tck);
  stats.ok = true;
  return stats;
}

}  // namespace exten::energy
