#pragma once

// Host-energy measurement backends (docs/energy.md).
//
// The repo has two energy oracles for the macro-model: the synthetic
// RTL-level estimator in src/power/ (target energy of the simulated
// extensible processor) and — this subsystem — *measured* energy of the
// host machine doing the work, read from the Linux powercap/RAPL counters.
// The second oracle grounds characterization and serving telemetry in real
// joules: xtc-serve reports joules-per-request next to its latency
// histograms and xtc-power compares measured host energy against the
// macro-model estimate and the RTL oracle per workload.
//
// Three backends sit behind one interface:
//   RaplSysfsBackend  — /sys/class/powercap/intel-rapl* reader (rapl.h),
//                       overflow-corrected per-domain counters.
//   SyntheticBackend  — deterministic counters for hermetic tests
//                       (synthetic.h).
//   NullBackend       — the graceful fallback when powercap is absent or
//                       unreadable. Detection NEVER fails the process: on
//                       any problem detect_backend() degrades to the null
//                       backend and callers keep running without host
//                       energy.
//
// Thread safety: backends are NOT thread-safe; EnergyMeter (meter.h)
// serializes reads and publishes lock-free snapshots.

#include <memory>
#include <string>
#include <vector>

namespace exten::energy {

/// One powercap domain's cumulative energy since backend creation.
struct DomainEnergy {
  std::string name;     ///< e.g. "package-0", "core", "dram"
  double joules = 0.0;  ///< cumulative, overflow-corrected

  DomainEnergy() = default;
  DomainEnergy(std::string n, double j) : name(std::move(n)), joules(j) {}
};

class EnergyBackend {
 public:
  virtual ~EnergyBackend() = default;

  /// Stable backend identifier: "rapl", "synthetic" or "none". Exposed in
  /// /healthz ("energy_backend") and the xtc_energy_backend_info metric.
  virtual const char* kind() const = 0;

  /// Domain names in a fixed order (stable across read() calls).
  virtual std::vector<std::string> domains() const = 0;

  /// Samples the counters and returns cumulative joules per domain since
  /// backend creation, in domains() order. A domain that became unreadable
  /// mid-run freezes at its last value — read() never throws.
  virtual std::vector<DomainEnergy> read() = 0;

  /// True when at least one domain is being measured.
  bool available() const { return !domains().empty(); }
};

/// The graceful fallback: no domains, kind "none".
class NullBackend final : public EnergyBackend {
 public:
  const char* kind() const override { return "none"; }
  std::vector<std::string> domains() const override { return {}; }
  std::vector<DomainEnergy> read() override { return {}; }
};

/// Backend selection. `selector` is one of:
///   "auto"      — RAPL when a readable powercap tree exists, else null
///   "rapl"      — RAPL or null (never throws, even on a bogus root)
///   "synthetic" — the deterministic test backend
///   "none"      — the null backend
/// Any other selector degrades to null. `sysfs_root` overrides the
/// powercap root so tests and CI run against a committed fake-sysfs
/// fixture tree (tests/fixtures/rapl).
std::unique_ptr<EnergyBackend> detect_backend(
    const std::string& selector = "auto", const std::string& sysfs_root = "");

}  // namespace exten::energy
