#pragma once

// Process self-telemetry from /proc/self, exported on /metrics as
// xtc_process_resident_bytes and xtc_process_cpu_seconds_total so
// joules-per-request can be read next to CPU and RSS. Reads never throw:
// on a host without procfs (or a parse failure) `ok` stays false and the
// metric families are simply omitted.

#include <cstdint>
#include <string>

namespace exten::energy {

struct ProcSelfStats {
  bool ok = false;
  /// Resident set size in bytes (/proc/self/statm field 2 x page size).
  std::uint64_t resident_bytes = 0;
  /// Cumulative user+system CPU time in seconds (/proc/self/stat fields
  /// 14+15 / CLK_TCK).
  double cpu_seconds = 0.0;
};

/// `proc_root` overrides "/proc" so tests can read committed fixtures.
ProcSelfStats read_proc_self_stats(const std::string& proc_root = "/proc");

}  // namespace exten::energy
