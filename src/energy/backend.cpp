#include "energy/backend.h"

#include "energy/rapl.h"
#include "energy/synthetic.h"

namespace exten::energy {

std::unique_ptr<EnergyBackend> detect_backend(const std::string& selector,
                                              const std::string& sysfs_root) {
  const std::string root =
      sysfs_root.empty() ? kDefaultRaplSysfsRoot : sysfs_root;
  if (selector == "synthetic") {
    return std::make_unique<SyntheticBackend>();
  }
  if (selector == "rapl" || selector == "auto") {
    if (auto rapl = RaplSysfsBackend::open(root)) return rapl;
  }
  // "none", an unknown selector, or no readable powercap tree: degrade to
  // the null backend — detection never fails the process.
  return std::make_unique<NullBackend>();
}

}  // namespace exten::energy
