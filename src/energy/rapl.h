#pragma once

// RaplSysfsBackend: measured host energy from the Linux powercap
// (intel-rapl) sysfs tree.
//
// Layout walked (both the flat /sys/class/powercap view and the
// hierarchical /sys/devices/virtual/powercap/intel-rapl view work):
//
//   <root>/intel-rapl:0/               package domain
//     name                             "package-0"
//     energy_uj                        cumulative microjoules (u64, wraps)
//     max_energy_range_uj              wrap modulus for overflow correction
//     intel-rapl:0:0/                  child domain ("core", "dram", ...)
//       name energy_uj max_energy_range_uj
//
// Overflow: energy_uj is a u64 microjoule counter that wraps at
// max_energy_range_uj. Deltas are corrected with
//   delta = now >= last ? now - last : now + max_range - last
// so cumulative joules stay monotonic across wraps (a wrap with an
// unknown/zero max range contributes 0 rather than a garbage delta).
//
// Fake-sysfs testing recipe (docs/energy.md): a fixture energy_uj file may
// hold SEVERAL whitespace-separated counter values; the reader consumes
// one per read() and sticks at the last. Real sysfs files always hold
// exactly one value, for which this is the identity behavior — but a
// committed fixture tree can script a deterministic counter history
// (including a wrap) with zero hardware dependency.
//
// Degradation contract: construction never throws (open() returns nullptr
// when no domain is readable, and detect_backend() turns that into
// NullBackend); a domain whose energy_uj disappears or becomes unreadable
// mid-run freezes at its last cumulative value while the others keep
// counting.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "energy/backend.h"

namespace exten::energy {

/// The real powercap root on a Linux host.
inline constexpr const char* kDefaultRaplSysfsRoot = "/sys/class/powercap";

class RaplSysfsBackend final : public EnergyBackend {
 public:
  /// Scans `sysfs_root` for intel-rapl* domains and records the baseline
  /// counter of each readable one. Returns nullptr — never throws — when
  /// the root is missing or no domain is readable.
  static std::unique_ptr<RaplSysfsBackend> open(const std::string& sysfs_root);

  const char* kind() const override { return "rapl"; }
  std::vector<std::string> domains() const override;
  std::vector<DomainEnergy> read() override;

  /// Overflow-corrected counter delta (exposed for tests).
  static std::uint64_t corrected_delta_uj(std::uint64_t last_uj,
                                          std::uint64_t now_uj,
                                          std::uint64_t max_range_uj);

 private:
  struct Domain {
    std::string name;
    std::string energy_path;
    std::uint64_t max_range_uj = 0;
    std::uint64_t last_raw_uj = 0;
    std::uint64_t cumulative_uj = 0;
    /// Fixture cursor: values already consumed from a multi-value file.
    std::size_t reads = 0;
    /// Cleared when energy_uj becomes unreadable; the domain then freezes.
    bool alive = true;
  };

  explicit RaplSysfsBackend(std::vector<Domain> domains);

  std::vector<Domain> domains_;
};

}  // namespace exten::energy
