#include "energy/rapl.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

namespace exten::energy {

namespace fs = std::filesystem;

namespace {

/// Reads every whitespace-separated u64 in `path`. Real sysfs files hold
/// one value; fixture files may script a counter history. Empty result =
/// unreadable (missing, permission denied, not a regular file, garbage).
std::vector<std::uint64_t> read_counter_values(const std::string& path) {
  std::vector<std::uint64_t> values;
  std::error_code ec;
  if (!fs::is_regular_file(path, ec)) return values;
  std::ifstream file(path);
  if (!file.good()) return values;
  std::uint64_t value = 0;
  while (file >> value) values.push_back(value);
  return values;
}

std::optional<std::string> read_name(const fs::path& dir) {
  std::ifstream file(dir / "name");
  if (!file.good()) return std::nullopt;
  std::string name;
  std::getline(file, name);
  if (name.empty()) return std::nullopt;
  return name;
}

bool is_rapl_dir(const fs::path& path) {
  const std::string leaf = path.filename().string();
  return leaf.rfind("intel-rapl", 0) == 0;
}

}  // namespace

std::uint64_t RaplSysfsBackend::corrected_delta_uj(std::uint64_t last_uj,
                                                   std::uint64_t now_uj,
                                                   std::uint64_t max_range_uj) {
  if (now_uj >= last_uj) return now_uj - last_uj;
  // Counter wrapped at max_energy_range_uj. Without a known range the
  // wrap cannot be corrected; contributing 0 keeps cumulative monotonic.
  if (max_range_uj <= last_uj) return 0;
  return now_uj + (max_range_uj - last_uj);
}

std::unique_ptr<RaplSysfsBackend> RaplSysfsBackend::open(
    const std::string& sysfs_root) {
  std::vector<Domain> domains;

  // Walk intel-rapl* directories (and symlinks — /sys/class/powercap is a
  // flat view of symlinks into the device tree) up to a few levels deep.
  // Everything is defensive: any unreadable piece skips that domain only.
  std::vector<fs::path> queue;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(sysfs_root, ec)) {
    if (is_rapl_dir(entry.path())) queue.push_back(entry.path());
  }
  std::sort(queue.begin(), queue.end());
  for (std::size_t depth = 0; depth < 3 && !queue.empty(); ++depth) {
    std::vector<fs::path> next;
    for (const fs::path& dir : queue) {
      if (!fs::is_directory(dir, ec)) continue;
      const auto name = read_name(dir);
      const std::string energy_path = (dir / "energy_uj").string();
      const std::vector<std::uint64_t> baseline =
          read_counter_values(energy_path);
      if (name.has_value() && !baseline.empty()) {
        Domain domain;
        domain.name = *name;
        domain.energy_path = energy_path;
        const auto range = read_counter_values((dir / "max_energy_range_uj").string());
        domain.max_range_uj = range.empty() ? 0 : range.front();
        domain.last_raw_uj = baseline.front();
        domain.reads = 1;
        domains.push_back(std::move(domain));
      }
      for (const auto& entry : fs::directory_iterator(dir, ec)) {
        if (is_rapl_dir(entry.path())) next.push_back(entry.path());
      }
    }
    std::sort(next.begin(), next.end());
    queue = std::move(next);
  }

  if (domains.empty()) return nullptr;

  // The domain label must be unique (it becomes a Prometheus label value);
  // a second package's "core" child gets a numeric suffix.
  for (std::size_t i = 0; i < domains.size(); ++i) {
    unsigned duplicates = 0;
    for (std::size_t j = 0; j < i; ++j) {
      const std::string& prior = domains[j].name;
      if (prior == domains[i].name ||
          prior.rfind(domains[i].name + "#", 0) == 0) {
        ++duplicates;
      }
    }
    if (duplicates > 0) {
      domains[i].name += "#" + std::to_string(duplicates + 1);
    }
  }

  return std::unique_ptr<RaplSysfsBackend>(
      new RaplSysfsBackend(std::move(domains)));
}

RaplSysfsBackend::RaplSysfsBackend(std::vector<Domain> domains)
    : domains_(std::move(domains)) {}

std::vector<std::string> RaplSysfsBackend::domains() const {
  std::vector<std::string> names;
  names.reserve(domains_.size());
  for (const Domain& domain : domains_) names.push_back(domain.name);
  return names;
}

std::vector<DomainEnergy> RaplSysfsBackend::read() {
  std::vector<DomainEnergy> out;
  out.reserve(domains_.size());
  for (Domain& domain : domains_) {
    if (domain.alive) {
      const std::vector<std::uint64_t> values =
          read_counter_values(domain.energy_path);
      if (values.empty()) {
        // Disappeared or unreadable mid-run: freeze, keep the others.
        domain.alive = false;
      } else {
        // Fixture files may script several values; consume the next one
        // and stick at the last. Real files have one value (index 0).
        const std::size_t index =
            std::min(domain.reads, values.size() - 1);
        const std::uint64_t raw = values[index];
        ++domain.reads;
        domain.cumulative_uj +=
            corrected_delta_uj(domain.last_raw_uj, raw, domain.max_range_uj);
        domain.last_raw_uj = raw;
      }
    }
    out.emplace_back(domain.name,
                     static_cast<double>(domain.cumulative_uj) * 1e-6);
  }
  return out;
}

}  // namespace exten::energy
