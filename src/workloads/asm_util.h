#pragma once

// Internal helpers for generating assembly sources with embedded data.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace exten::workloads::detail {

/// Renders ".word v, v, ..." lines (16 values per line).
std::string words_directive(std::span<const std::uint32_t> values);

/// Renders ".byte v, v, ..." lines.
std::string bytes_directive(std::span<const std::uint8_t> values);

/// n uniform random words in [lo, hi].
std::vector<std::uint32_t> random_words(Rng& rng, std::size_t n,
                                        std::uint32_t lo, std::uint32_t hi);

}  // namespace exten::workloads::detail
