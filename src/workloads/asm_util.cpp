#include "workloads/asm_util.h"

#include <sstream>

namespace exten::workloads::detail {

namespace {
template <typename T>
std::string directive(const char* name, std::span<const T> values) {
  std::ostringstream os;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i % 16 == 0) os << (i ? "\n" : "") << name << ' ';
    else os << ", ";
    os << static_cast<std::uint64_t>(values[i]);
  }
  os << '\n';
  return os.str();
}
}  // namespace

std::string words_directive(std::span<const std::uint32_t> values) {
  return directive(".word", values);
}

std::string bytes_directive(std::span<const std::uint8_t> values) {
  return directive(".byte", values);
}

std::vector<std::uint32_t> random_words(Rng& rng, std::size_t n,
                                        std::uint32_t lo, std::uint32_t hi) {
  std::vector<std::uint32_t> out(n);
  for (auto& value : out) {
    value = lo + static_cast<std::uint32_t>(
                     rng.next_below(static_cast<std::uint64_t>(hi) - lo + 1));
  }
  return out;
}

}  // namespace exten::workloads::detail
