// The characterization test-program suite (paper Fig. 2, step 2; Fig. 3).
//
// Regression macro-modeling only requires that the suite have "diversity in
// instruction statistics so as to cover the instruction space" plus custom
// instructions covering every hardware-library component category. The
// programs below each stress one region of the variable space: ALU mixes,
// memory streams, cache-thrashing strides, branch-dominated loops,
// call/return chains, load-use interlocks, I-cache-hostile straight-line
// code, uncached code regions, and one loop per TIE component category.

#include <sstream>

#include "workloads/asm_util.h"
#include "workloads/tie_library.h"
#include "workloads/workloads.h"

namespace exten::workloads {

using detail::random_words;
using detail::words_directive;

namespace {

/// A counted loop wrapping `body`; preserves s9 as the counter.
std::string counted_loop(unsigned iterations, const std::string& body) {
  std::ostringstream os;
  os << "  li   s9, " << iterations << "\nmain_loop:\n"
     << body << "  addi s9, s9, -1\n  bnez s9, main_loop\n  halt\n";
  return os.str();
}

std::string data_block(const std::string& label,
                       const std::vector<std::uint32_t>& values) {
  return label + ":\n" + words_directive(values);
}

/// Emits the probe lookup table declaration.
std::string emit_probe_table(const std::vector<unsigned>& values) {
  std::ostringstream os;
  os << "table ptab size=" << values.size() << " width=8 {\n  ";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << (i % 16 == 0 ? ",\n  " : ", ");
    os << values[i];
  }
  os << "\n}\n";
  return os.str();
}

/// Emits `n` arithmetic-class instructions over t0..t7 with rotating
/// registers. The op mix includes shifts and multiplies at roughly the
/// proportion real integer kernels show, so the fitted per-class
/// coefficient reflects a representative blend of ALU / shifter /
/// multiplier energies.
std::string alu_block(Rng& rng, unsigned n) {
  static constexpr const char* kOps[] = {"add", "sub", "and", "or",  "xor",
                                         "nor", "andn", "slt", "add", "sub",
                                         "sll", "srl",  "mul"};
  std::ostringstream os;
  for (unsigned i = 0; i < n; ++i) {
    const char* op = kOps[rng.next_below(13)];
    const unsigned rd = 20 + rng.next_below(8);
    const unsigned rs1 = 20 + rng.next_below(8);
    const unsigned rs2 = 20 + rng.next_below(8);
    os << "  " << op << "  r" << rd << ", r" << rs1 << ", r" << rs2 << "\n";
  }
  return os.str();
}

/// Seeds t0..t7. Low-entropy seeding (byte-range values) mirrors the data
/// profile of media/byte-processing applications; high-entropy seeding
/// stresses switching activity.
std::string seed_registers(Rng& rng, bool low_entropy = false) {
  std::ostringstream os;
  for (unsigned r = 20; r < 28; ++r) {
    const std::uint32_t value =
        low_entropy ? static_cast<std::uint32_t>(rng.next_below(256))
                    : rng.next_u32();
    os << "  li   r" << r << ", " << value << "\n";
  }
  return os.str();
}

model::TestProgram synth(const std::string& name, const std::string& body,
                         const std::string& tie_source = {}) {
  return model::make_test_program(name, "# characterization: " + name +
                                            "\n.text\n_start:\n" + body,
                                  tie_source);
}

// --- Base-ISA programs -----------------------------------------------------

model::TestProgram tp_alu_mix(Rng& rng, unsigned iters, const char* name) {
  const std::string body =
      seed_registers(rng) + counted_loop(iters, alu_block(rng, 40));
  return synth(name, body);
}

model::TestProgram tp_shift_mix(Rng& rng) {
  // Shift-heavy (but not shift-only: real kernels interleave shifts with
  // masking and adds, and a pure-class loop would sit at the edge of what
  // the single arithmetic-class coefficient can represent).
  std::ostringstream loop_body;
  for (unsigned i = 0; i < 24; ++i) {
    const unsigned rd = 20 + rng.next_below(8);
    const unsigned rs = 20 + rng.next_below(8);
    if (i % 2 == 0) {
      const char* op = (i % 4 == 0) ? "slli" : "srli";
      loop_body << "  " << op << " r" << rd << ", r" << rs << ", "
                << (1 + rng.next_below(30)) << "\n";
    } else {
      loop_body << "  " << ((i % 4 == 1) ? "and " : "add ") << " r" << rd
                << ", r" << rs << ", r" << (20 + rng.next_below(8)) << "\n";
    }
  }
  return synth("shift_mix",
               seed_registers(rng) + counted_loop(900, loop_body.str()));
}

model::TestProgram tp_mul_chain(Rng& rng) {
  // Multiply-heavy with the address/update arithmetic a real MAC-style
  // kernel carries alongside its multiplies.
  std::ostringstream loop_body;
  for (unsigned i = 0; i < 16; ++i) {
    const unsigned rd = 20 + rng.next_below(8);
    const unsigned rs1 = 20 + rng.next_below(8);
    const unsigned rs2 = 20 + rng.next_below(8);
    if (i % 2 == 0) {
      loop_body << (i % 4 == 0 ? "  mul  r" : "  mulh r") << rd << ", r"
                << rs1 << ", r" << rs2 << "\n";
    } else {
      loop_body << "  add  r" << rd << ", r" << rs1 << ", r" << rs2 << "\n";
    }
  }
  return synth("mul_chain",
               seed_registers(rng) + counted_loop(1100, loop_body.str()));
}

model::TestProgram tp_mem_stream(Rng& rng) {
  const auto data = random_words(rng, 1024, 0, 0xffffffff);
  const std::string body = R"(  li   s0, buffer
  li   s1, 1024
read_loop:
  lw   t0, 0(s0)
  lw   t1, 4(s0)
  lw   t2, 8(s0)
  lw   t3, 12(s0)
  add  t4, t0, t1
  add  t5, t2, t3
  addi s0, s0, 16
  addi s1, s1, -4
  bnez s1, read_loop
  li   s0, buffer
  li   s1, 1024
read_loop2:
  lw   t0, 0(s0)
  addi s0, s0, 4
  add  t6, t6, t0
  addi s1, s1, -1
  bnez s1, read_loop2
  halt
.data
)" + data_block("buffer", data);
  return synth("mem_stream", body);
}

model::TestProgram tp_stride_miss(Rng&) {
  // Stride of one line over a region 8x the cache: every load misses.
  const std::string body = R"(  li   s8, 6
outer:
  li   s0, region
  li   s1, 4096
miss_loop:
  lw   t0, 0(s0)
  addi s0, s0, 32
  add  t1, t1, t0
  addi s1, s1, -1
  bnez s1, miss_loop
  addi s8, s8, -1
  bnez s8, outer
  halt
.data
region:
.space 131072
)";
  return synth("stride_miss", body);
}

model::TestProgram tp_store_stream(Rng& rng) {
  std::ostringstream os;
  os << "  li   t0, " << rng.next_u32() << "\n" << R"(  li   s8, 10
outer:
  li   s0, outbuf
  li   s1, 512
store_loop:
  sw   t0, 0(s0)
  sw   t0, 4(s0)
  sw   t0, 8(s0)
  sh   t0, 12(s0)
  sb   t0, 14(s0)
  addi t0, t0, 0x155
  addi s0, s0, 16
  addi s1, s1, -4
  bnez s1, store_loop
  addi s8, s8, -1
  bnez s8, outer
  halt
.data
outbuf:
.space 2048
)";
  return synth("store_stream", os.str());
}

model::TestProgram tp_branch_taken(Rng&) {
  // Nested tight loops: almost every branch is taken.
  const std::string body = R"(  li   s0, 700
outer:
  li   s1, 12
inner:
  addi s1, s1, -1
  bnez s1, inner
  addi s0, s0, -1
  bnez s0, outer
  halt
)";
  return synth("branch_taken", body);
}

model::TestProgram tp_branch_untaken(Rng& rng) {
  // Long runs of never-taken compares against an unmatched sentinel.
  std::ostringstream loop_body;
  loop_body << "  li   t0, 1\n";
  for (unsigned i = 0; i < 24; ++i) {
    const unsigned rs = 21 + rng.next_below(6);
    loop_body << "  beq  t0, r" << rs << ", never\n";
    loop_body << "  addi t0, t0, 2\n";
  }
  std::string body = seed_registers(rng) + counted_loop(650, loop_body.str());
  body += "never:\n  halt\n";
  return synth("branch_untaken", body);
}

model::TestProgram tp_call_ret(Rng&) {
  const std::string body = R"(  li   s0, 1500
loop:
  call leaf1
  call leaf2
  addi s0, s0, -1
  bnez s0, loop
  halt
leaf1:
  addi t0, t0, 7
  ret
leaf2:
  xor  t1, t0, s0
  jr   ra
)";
  return synth("call_ret", body);
}

model::TestProgram tp_interlock(Rng& rng) {
  const auto data = random_words(rng, 256, 0, 0xffffffff);
  const std::string body = R"(  li   s8, 12
outer:
  li   s0, ptrs
  li   s1, 256
chase:
  lw   t0, 0(s0)          # load ...
  add  t1, t1, t0         # ... immediately used: interlock
  lw   t2, 4(s0)
  xor  t3, t2, t1         # interlock again
  addi s0, s0, 8
  addi s1, s1, -2
  bnez s1, chase
  addi s8, s8, -1
  bnez s8, outer
  halt
.data
)" + data_block("ptrs", data);
  return synth("interlock_heavy", body);
}

model::TestProgram tp_icache_thrash(Rng& rng) {
  // ~24 KiB of straight-line code (6000 instructions) against a 16 KiB
  // I-cache, looped: every pass misses throughout.
  std::ostringstream body;
  body << seed_registers(rng) << "  li   s9, 5\nbig_loop:\n";
  for (unsigned i = 0; i < 1500; ++i) {
    body << "  add  t0, t0, t1\n  xor  t1, t1, t2\n  sub  t2, t2, t0\n"
         << "  or   t3, t0, t2\n";
  }
  body << "  addi s9, s9, -1\n  bnez s9, big_loop\n  halt\n";
  return synth("icache_thrash", body.str());
}

model::TestProgram tp_uncached_code(Rng&) {
  // A loop executed from the uncached region: every fetch pays the bus.
  const std::string body = R"(  li   t0, ucode
  li   t1, 420            # iterations, consumed by the uncached loop
  jr   t0
.org 0x80002000
ucode:
  addi t2, t2, 3
  xor  t3, t3, t2
  addi t1, t1, -1
  bnez t1, ucode
  halt
)";
  return synth("uncached_code", body);
}

model::TestProgram tp_mixed_baseline(Rng& rng) {
  const auto data = random_words(rng, 512, 0, 0xffffffff);
  const std::string body = seed_registers(rng) + R"(  li   s8, 18
outer:
  li   s0, mixbuf
  li   s1, 128
work:
  lw   t0, 0(s0)
  add  t1, t1, t0
  slli t2, t0, 3
  xor  t1, t1, t2
  mul  t3, t0, t1
  sw   t3, 256(s0)
  blt  t3, zero, skip
  addi t4, t4, 1
skip:
  addi s0, s0, 4
  addi s1, s1, -1
  bnez s1, work
  call helper
  addi s8, s8, -1
  bnez s8, outer
  halt
helper:
  srai t5, t3, 4
  ret
.data
)" + data_block("mixbuf", data) + ".space 4096\n";
  return synth("mixed_baseline", body);
}

// --- Custom-instruction programs (one per component-category focus) -------

std::string repeat_body(const std::string& body, unsigned n);

model::TestProgram tp_tie(const char* name, const std::string& tie_source,
                          Rng& rng, const std::string& loop_body,
                          unsigned iters, const std::string& prologue = {},
                          bool low_entropy = false) {
  // Unroll 3x: custom-instruction density dominates the loop overhead, so
  // structural columns carry strong signal in these rows.
  std::string body = seed_registers(rng, low_entropy) + prologue +
                     counted_loop(iters, repeat_body(loop_body, 3));
  return synth(name, body, tie_source);
}

model::TestProgram tp_cust_mac(Rng& rng) {
  return tp_tie("cust_mac", tie_mac_spec(), rng,
                "  mac  t0, t1\n  add  t0, t0, t2\n  mac  t2, t0\n"
                "  rdmac t3\n  xor  t1, t1, t3\n",
                800, "  clrmac\n");
}

model::TestProgram tp_cust_smul(Rng& rng) {
  return tp_tie("cust_smul", tie_smul_spec(), rng,
                "  smul t0, t0, t1\n  smul t2, t2, t3\n  addi t0, t0, 5\n"
                "  smul t4, t0, t2\n",
                900, {}, /*low_entropy=*/true);
}

model::TestProgram tp_cust_dotp(Rng& rng) {
  return tp_tie("cust_dotp", tie_dotp_spec(), rng,
                "  dotp2 t0, t1, t2\n  add  t3, t3, t0\n  slli t1, t1, 1\n"
                "  dotp2 t4, t2, t3\n",
                850);
}

model::TestProgram tp_cust_csa(Rng& rng) {
  return tp_tie("cust_csa", tie_csa_spec(), rng,
                "  csa3 t0, t1\n  csa3 t2, t3\n  addi t0, t0, 13\n"
                "  csaflush t4\n",
                800, "  csaclr\n");
}

model::TestProgram tp_cust_funnel(Rng& rng) {
  return tp_tie("cust_funnel", tie_funnel_spec(), rng,
                "  funnel t0, t1, t2\n  xor  t1, t1, t0\n"
                "  funnel t3, t2, t0\n  addi t2, t2, 0x31\n",
                850, "  li   t9, 13\n  setsh t9\n");
}

model::TestProgram tp_cust_add4(Rng& rng) {
  return tp_tie("cust_add4", tie_add4_spec(), rng,
                "  add4 t0, t0, t1\n  sub4 t2, t2, t3\n  add4 t4, t0, t2\n"
                "  xor  t1, t1, t4\n",
                900, {}, /*low_entropy=*/true);
}

model::TestProgram tp_cust_blend(Rng& rng) {
  return tp_tie("cust_blend", tie_blend_spec(), rng,
                "  blend t0, t1, t2\n  addi t1, t1, 0x77\n"
                "  blend t3, t2, t0\n  xor  t2, t2, t3\n",
                800, "  li   t9, 97\n  setalpha t9\n");
}

model::TestProgram tp_cust_sbox(Rng& rng) {
  return tp_tie("cust_sbox", tie_sbox_spec(), rng,
                "  sbox  t0, t0, t1\n  sboxp t2, t2, t3\n"
                "  xor  t3, t3, t0\n",
                850, {}, /*low_entropy=*/true);
}

model::TestProgram tp_cust_absdiff(Rng& rng) {
  return tp_tie("cust_absdiff", tie_absdiff_spec(), rng,
                "  absdiff t0, t1, t2\n  add  t3, t3, t0\n"
                "  absdiff t4, t3, t1\n  addi t1, t1, 0x99\n",
                900);
}

model::TestProgram tp_cust_gf(Rng& rng) {
  return tp_tie("cust_gf", tie_gfmac_spec(), rng,
                "  gfmac t0, t1\n  gfmac t2, t3\n  rdgf t4\n"
                "  add  t0, t0, t4\n",
                850, "  clrgf\n");
}

/// Repeats a loop body `n` times (unrolling: raises the custom-instruction
/// density so structural columns dominate their rows).
std::string repeat_body(const std::string& body, unsigned n) {
  std::string out;
  out.reserve(body.size() * n);
  for (unsigned i = 0; i < n; ++i) out += body;
  return out;
}

model::TestProgram tp_alu_low_entropy(Rng& rng) {
  const std::string body = seed_registers(rng, /*low_entropy=*/true) +
                           counted_loop(800, alu_block(rng, 32));
  return synth("alu_low_entropy", body);
}

model::TestProgram tp_byte_stream(Rng& rng) {
  // Byte-granularity processing through a lookup table — the data profile
  // of codec/crypto kernels (low-entropy values, table-indexed byte loads).
  std::vector<std::uint32_t> table_words(64);
  for (auto& w : table_words) w = rng.next_u32() & 0x3f3f3f3f;
  std::vector<std::uint32_t> src_words(256);
  for (auto& w : src_words) w = rng.next_u32() & 0x0f0f0f0f;
  const std::string body = R"(  li   s8, 8
outer:
  li   s0, bsrc
  li   s1, 1024
  li   s2, btab
  li   s3, bscratch
byte_loop:
  lbu  t0, 0(s0)
  addi s0, s0, 1
  add  t1, s2, t0
  lbu  t2, 0(t1)
  addi s1, s1, -1
  xor  t3, t3, t2
  add  t4, s3, t0
  sb   t2, 0(t4)
  bnez s1, byte_loop
  addi s8, s8, -1
  bnez s8, outer
  halt
.data
btab:
)" + words_directive(table_words) +
                           "bsrc:\n" + words_directive(src_words) +
                           "bscratch:\n.space 256\n";
  return synth("byte_stream", body);
}

/// Width-variant specs: the same component categories at different bit
/// widths, so the regression sees structural columns at more than one
/// C(W) ratio (de-correlating the component categories).
constexpr const char* kMac12Spec = R"(
state macc12 width=32
instruction mac12 {
  reads rs1, rs2
  use tie_mac width=12
  semantics { macc12 = macc12 + sext(rs1, 12) * sext(rs2, 12); }
}
instruction rdmac12 {
  writes rd
  use logic width=32
  semantics { rd = macc12; }
}
)";

constexpr const char* kFsh32Spec = R"(
instruction fsh32 {
  reads rs1, rs2
  writes rd
  use shifter width=32
  semantics { rd = (rs1 << 7) | (rs2 >> 25); }
}
)";

model::TestProgram tp_cust_mac12(Rng& rng) {
  return tp_tie("cust_mac12", kMac12Spec, rng,
                "  mac12 t0, t1\n  mac12 t2, t3\n  rdmac12 t4\n"
                "  xor  t0, t0, t4\n",
                850);
}

model::TestProgram tp_cust_fsh32(Rng& rng) {
  return tp_tie("cust_fsh32", kFsh32Spec, rng,
                "  fsh32 t0, t1, t2\n  fsh32 t3, t0, t1\n"
                "  add  t1, t1, t3\n",
                900);
}

/// Probe extension: one minimal instruction per component category, so the
/// characterization matrix has near-solo excitation of every structural
/// column (the paper's "cover all the custom hardware library components"
/// requirement, taken to its cleanest form).
std::string probe_spec() {
  std::string spec = R"(
state pacc width=32
state preg width=32

instruction p_mult  { reads rs1, rs2  writes rd  use mult width=32
  semantics { rd = rs1 * rs2; } }
instruction p_add   { reads rs1, rs2  writes rd  use adder width=32
  semantics { rd = rs1 + rs2; } }
instruction p_logic { reads rs1, rs2  writes rd  use logic width=32
  semantics { rd = (rs1 & rs2) | (rs1 ^ (rs2 >> 1)); } }
instruction p_shift { reads rs1, rs2  writes rd  use shifter width=32
  semantics { rd = rs1 << (rs2 & 31); } }
instruction p_str   { reads rs1
  use custreg width=32
  semantics { preg = preg ^ rs1; } }
instruction p_ldr   { writes rd  use custreg width=32
  semantics { rd = preg; } }
instruction p_tmul  { reads rs1, rs2  writes rd  use tie_mult width=32
  semantics { rd = sext(rs1, 16) * sext(rs2, 16); } }
instruction p_tmac  { reads rs1, rs2
  use tie_mac width=32
  use custreg width=32
  semantics { pacc = pacc + rs1 * rs2; } }
instruction p_tadd  { reads rs1, rs2  writes rd  use tie_add width=32
  semantics { rd = rs1 + rs2 + 1; } }
instruction p_tcsa  { reads rs1, rs2  writes rd  use tie_csa width=32
  semantics { rd = rs1 ^ rs2 ^ ((rs1 & rs2) << 1); } }
)";
  std::vector<unsigned> identity(256);
  for (unsigned i = 0; i < 256; ++i) identity[i] = (i * 167 + 13) & 0xff;
  spec += emit_probe_table(identity);
  spec += R"(
instruction p_table { reads rs1  writes rd
  semantics { rd = ptab[rs1 & 255]; } }

# Wide variants: the cheap categories (logic, table, custom register) are
# only ~10 pJ/cycle per unit, below the regression noise floor of a single
# instance next to a ~450 pJ base core. Wide arrays give the columns
# measurable solo signal, the way a characterization engineer would size a
# probe structure.
instruction p_wlogic { reads rs1, rs2  writes rd
  use logic width=32 count=12
  semantics { rd = (rs1 & rs2) | (rs1 ^ (rs2 >> 3)); } }
instruction p_wtab  { reads rs1  writes rd
  use table width=8 entries=256 count=8
  semantics { rd = ptab[rs1 & 255] | (ptab[(rs1 >> 8) & 255] << 8); } }
instruction p_wstr  { reads rs1
  use custreg width=32 count=8
  semantics { preg = preg ^ (rs1 << 2) ^ rs1; } }
)";
  return spec;
}

/// Dense probe loops with different category emphases.
model::TestProgram tp_probe(const char* name, Rng& rng,
                            const std::string& unit, unsigned unroll,
                            unsigned iters) {
  return tp_tie(name, probe_spec(), rng, repeat_body(unit, unroll), iters);
}

/// Mixed-proportion programs over the full extension library: each mixes
/// several custom instructions in a different ratio, breaking the
/// per-program collinearity of structural columns.
model::TestProgram tp_cust_mix_a(Rng& rng) {
  return tp_tie("cust_mix_a", tie_full_library_spec(), rng,
                "  mac  t0, t1\n  mac  t1, t2\n  mac  t2, t3\n"
                "  funnel t4, t0, t1\n  absdiff t5, t4, t2\n"
                "  add  t0, t0, t5\n",
                600, "  clrmac\n  li   t9, 9\n  setsh t9\n");
}

model::TestProgram tp_cust_mix_b(Rng& rng) {
  return tp_tie("cust_mix_b", tie_full_library_spec(), rng,
                "  smul t0, t0, t1\n  sbox t2, t2, t0\n  sbox t3, t3, t2\n"
                "  csa3 t2, t3\n  addi t1, t1, 0x2b\n",
                650, "  csaclr\n", /*low_entropy=*/true);
}

model::TestProgram tp_cust_mix_c(Rng& rng) {
  return tp_tie("cust_mix_c", tie_full_library_spec(), rng,
                "  dotp2 t0, t1, t2\n  dotp2 t3, t2, t0\n"
                "  add4 t4, t0, t3\n  blend t5, t4, t1\n"
                "  blend t6, t5, t2\n  xor  t1, t1, t6\n",
                600, "  li   t9, 201\n  setalpha t9\n");
}

model::TestProgram tp_full_mix(Rng& rng) {
  const auto data = random_words(rng, 256, 0, 0xffffffff);
  const std::string prologue =
      "  clrmac\n  li   t9, 21\n  setsh t9\n  li   t9, 140\n  setalpha t9\n"
      "  li   s0, fmbuf\n";
  const std::string loop_body = R"(  lw   t0, 0(s0)
  lw   t1, 4(s0)
  mac  t0, t1
  add4 t2, t0, t1
  funnel t3, t2, t0
  sbox t4, t3, t1
  blend t5, t4, t0
  rdmac t6
  sw   t6, 8(s0)
  andi s1, s9, 0xfc
  add  s0, s0, s1
  li   s2, fmbuf
  bltu s0, s2, reset
  j    cont
reset:
  li   s0, fmbuf
cont:
  li   s2, fmbuf_end
  bltu s0, s2, ok
  li   s0, fmbuf
ok:
)";
  std::string body = seed_registers(rng) + prologue +
                     counted_loop(700, loop_body) + ".data\n" +
                     data_block("fmbuf", data) + "fmbuf_end:\n.space 64\n";
  return synth("full_mix", body, tie_full_library_spec());
}

}  // namespace

std::vector<model::TestProgram> characterization_suite(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<model::TestProgram> suite;
  // Base-ISA coverage (varied mixes and iteration scales).
  suite.push_back(tp_alu_mix(rng, 1200, "alu_mix_a"));
  suite.push_back(tp_alu_mix(rng, 350, "alu_mix_b"));
  suite.push_back(tp_shift_mix(rng));
  suite.push_back(tp_mul_chain(rng));
  suite.push_back(tp_mem_stream(rng));
  suite.push_back(tp_stride_miss(rng));
  suite.push_back(tp_store_stream(rng));
  suite.push_back(tp_branch_taken(rng));
  suite.push_back(tp_branch_untaken(rng));
  suite.push_back(tp_call_ret(rng));
  suite.push_back(tp_interlock(rng));
  suite.push_back(tp_icache_thrash(rng));
  suite.push_back(tp_uncached_code(rng));
  suite.push_back(tp_mixed_baseline(rng));
  suite.push_back(tp_alu_low_entropy(rng));
  suite.push_back(tp_byte_stream(rng));
  // Custom-hardware coverage: every component category.
  suite.push_back(tp_cust_mac(rng));
  suite.push_back(tp_cust_smul(rng));
  suite.push_back(tp_cust_dotp(rng));
  suite.push_back(tp_cust_csa(rng));
  suite.push_back(tp_cust_funnel(rng));
  suite.push_back(tp_cust_add4(rng));
  suite.push_back(tp_cust_blend(rng));
  suite.push_back(tp_cust_sbox(rng));
  suite.push_back(tp_cust_absdiff(rng));
  suite.push_back(tp_cust_gf(rng));
  // Width variants and mixed proportions (de-correlate structural columns).
  suite.push_back(tp_cust_mac12(rng));
  suite.push_back(tp_cust_fsh32(rng));
  suite.push_back(tp_cust_mix_a(rng));
  suite.push_back(tp_cust_mix_b(rng));
  suite.push_back(tp_cust_mix_c(rng));
  // Per-category probes at three different emphases.
  suite.push_back(tp_probe("probe_compute", rng,
                           "  p_mult t0, t1, t2\n  p_tmul t3, t1, t2\n"
                           "  p_add  t4, t0, t3\n  p_tadd t5, t4, t1\n"
                           "  p_tcsa t6, t5, t2\n  p_shift t7, t0, t1\n",
                           3, 500));
  suite.push_back(tp_probe("probe_storage", rng,
                           "  p_str  t0\n  p_tmac t1, t2\n"
                           "  p_table t3, t1\n  p_logic t4, t3, t2\n"
                           "  p_ldr  t5\n",
                           3, 500));
  suite.push_back(tp_probe("probe_cheap", rng,
                           "  p_wlogic t0, t1, t2\n  p_wtab t3, t0\n"
                           "  p_wstr t3\n  p_ldr t4\n  p_wlogic t5, t4, t3\n"
                           "  p_wtab t6, t5\n",
                           3, 500));
  // Near-solo programs for the categories that remain collinear in the
  // mixed programs (adder, custom register, TIE mult, table).
  suite.push_back(tp_probe("probe_adder", rng,
                           "  p_add t0, t1, t2\n  p_add t3, t2, t0\n"
                           "  p_add t4, t0, t3\n  p_add t5, t4, t1\n"
                           "  p_add t6, t5, t2\n  xor  t1, t1, t6\n",
                           3, 500));
  suite.push_back(tp_probe("probe_custreg", rng,
                           "  p_wstr t0\n  p_wstr t1\n  p_ldr t2\n"
                           "  p_wstr t2\n  p_ldr t3\n  add  t0, t0, t3\n",
                           3, 500));
  suite.push_back(tp_probe("probe_tmul", rng,
                           "  p_tmul t0, t1, t2\n  p_tmul t3, t2, t0\n"
                           "  p_tmul t4, t0, t3\n  p_tmul t5, t4, t1\n"
                           "  addi t1, t1, 0x5d\n",
                           3, 500));
  suite.push_back(tp_probe("probe_table", rng,
                           "  p_wtab t0, t1\n  p_wtab t2, t0\n"
                           "  p_wtab t3, t2\n  p_table t4, t3\n"
                           "  add  t1, t1, t4\n",
                           3, 500));
  suite.push_back(tp_probe("probe_skew", rng,
                           "  p_mult t0, t1, t2\n  p_mult t3, t2, t0\n"
                           "  p_mult t4, t0, t3\n  p_table t5, t4\n"
                           "  p_table t6, t5\n  p_tmac t0, t5\n"
                           "  p_tcsa t7, t6, t1\n  p_str t7\n",
                           2, 500));
  suite.push_back(tp_full_mix(rng));
  return suite;
}

}  // namespace exten::workloads
