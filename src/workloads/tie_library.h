#pragma once

// TIE-lite specifications used by the workload suite.
//
// Together these exercise every component category of the custom-hardware
// library (paper §IV-B.1): multiplier, adder/comparator, logic, shifter,
// custom register, TIE mult, TIE mac, TIE add, TIE csa, and table — a
// requirement for characterization ("the test program suite also
// incorporates custom instructions so as to cover all the custom hardware
// library components").

#include <cstdint>
#include <string>

namespace exten::workloads {

/// `mac` / `rdmac` / `clrmac`: 24x24 multiply-accumulate into a 48-bit
/// accumulator (TIE mac + custom register).
std::string tie_mac_spec();

/// `smul`: 16x16 -> 32 specialized multiply (TIE mult).
std::string tie_smul_spec();

/// `dotp2`: dual 16-bit products summed (generic multiplier + TIE add).
std::string tie_dotp_spec();

/// `csa3` / `csaflush`: carry-save accumulation of operand pairs
/// (TIE csa + custom registers).
std::string tie_csa_spec();

/// `funnel` / `setsh`: 64-bit funnel shift with the shift amount in custom
/// state (shifter + custom register).
std::string tie_funnel_spec();

/// `add4` / `sub4`: packed 4x8-bit SIMD add/subtract (adders + logic).
std::string tie_add4_spec();

/// `blend` / `setalpha`: 8-bit alpha blend of two pixels
/// (multiplier + adder + logic + custom register).
std::string tie_blend_spec();

/// `sbox` / `sboxp`: byte substitution through a 256-entry table plus a
/// permutation step (table + logic + shifter). The table is an AES-style
/// S-box, standing in for DES S-box lookups.
std::string tie_sbox_spec();

/// `absdiff`: |rs1 - rs2| (adder/comparator + mux logic).
std::string tie_absdiff_spec();

/// `gfmul`: GF(2^8) multiply via log/antilog tables (tables + adder).
std::string tie_gfmul_spec();

/// `gfmac` / `rdgf` / `clrgf`: GF(2^8) multiply-accumulate into custom
/// state (tables + adder + logic + custom register).
std::string tie_gfmac_spec();

/// `gfmac2` / `rdgf2` / `clrgf2`: two-way parallel GF(2^8) MAC operating on
/// packed byte pairs (wider datapath variant for the Fig. 4 study).
std::string tie_gfmac2_spec();

/// An "everything" configuration combining the specs above into one
/// processor (used by characterization programs that mix extensions).
std::string tie_full_library_spec();

/// GF(2^8) arithmetic helpers (generator polynomial 0x11d, the one used by
/// RS(255,223)); exposed so tests and the Reed-Solomon reference
/// implementation agree with the TIE tables.
std::uint8_t gf_mul_reference(std::uint8_t a, std::uint8_t b);
std::uint8_t gf_pow_alpha(unsigned exponent);

/// The AES S-box value (reference for the sbox table).
std::uint8_t aes_sbox(std::uint8_t index);

}  // namespace exten::workloads
