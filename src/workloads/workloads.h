#pragma once

// The workload suite: characterization test programs, the ten application
// benchmarks of the paper's Table II, and the Reed-Solomon design-space
// study of Fig. 4.
//
// Every workload is an XTC-32 assembly program (with embedded data) bundled
// with the TIE-lite extension it targets. Kernels are exposed individually
// (for functional tests) and as suites (for the experiment harnesses).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/test_program.h"

namespace exten::workloads {

// ---------------------------------------------------------------------------
// Suites
// ---------------------------------------------------------------------------

/// The characterization suite: 25+ programs with diverse instruction
/// statistics covering the base ISA classes, the dynamic non-idealities
/// (cache misses, uncached fetches, interlocks), and every custom-hardware
/// component category. `seed` controls embedded data generation.
std::vector<model::TestProgram> characterization_suite(std::uint64_t seed = 7);

/// The ten applications of Table II (disjoint from the test programs).
std::vector<model::TestProgram> application_suite(std::uint64_t seed = 11);

/// The four Reed-Solomon custom-instruction choices of Fig. 4, in the
/// paper's order: base-only, +gfmul, +gfmac, +gfmac2.
std::vector<model::TestProgram> reed_solomon_variants(std::uint64_t seed = 3);

// ---------------------------------------------------------------------------
// Individual applications (Table II)
// ---------------------------------------------------------------------------

/// Insertion sort of `n` random words (base ISA only).
model::TestProgram make_ins_sort(unsigned n, std::uint64_t seed);

/// Euclid's GCD over `pairs` random operand pairs (base ISA only).
model::TestProgram make_gcd(unsigned pairs, std::uint64_t seed);

/// Alpha blend of two `n`-pixel images using the `blend` extension.
model::TestProgram make_alphablend(unsigned n, std::uint64_t seed);

/// Packed 4x8-bit vector addition over `n` words using `add4`.
model::TestProgram make_add4(unsigned n, std::uint64_t seed);

/// Bubble sort of `n` random words (base ISA only).
model::TestProgram make_bubsort(unsigned n, std::uint64_t seed);

/// DES-style rounds: S-box substitution + permutation over `n` blocks
/// using the `sbox`/`sboxp` extension.
model::TestProgram make_des(unsigned n, std::uint64_t seed);

/// Accumulate `n` words through the carry-save extension (`csa3`).
model::TestProgram make_accumulate(unsigned n, std::uint64_t seed);

/// Bresenham line rasterization of `lines` random lines using `absdiff`.
model::TestProgram make_drawline(unsigned lines, std::uint64_t seed);

/// Multiply-accumulate over `n` sample pairs using the `mac` extension.
model::TestProgram make_multi_accumulate(unsigned n, std::uint64_t seed);

/// Sequence of dependent multiplies over `n` values using `smul`.
model::TestProgram make_seq_mult(unsigned n, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Reed-Solomon (Fig. 4)
// ---------------------------------------------------------------------------

/// Custom-instruction choice for the Reed-Solomon kernel.
enum class RsConfig {
  kBase,    ///< software GF(2^8) arithmetic, base ISA only
  kGfMul,   ///< gfmul custom instruction
  kGfMac,   ///< gfmac custom multiply-accumulate
  kGfMac2,  ///< gfmac2 two-way packed multiply-accumulate
};

/// RS(n=15 data + 8 parity per block)-style encoder + syndrome computation
/// over `blocks` random message blocks, with the chosen extension.
model::TestProgram make_reed_solomon(RsConfig config, unsigned blocks,
                                     std::uint64_t seed);

// ---------------------------------------------------------------------------
// Extra applications (the DSP/crypto workloads the paper's intro motivates)
// ---------------------------------------------------------------------------

/// 8-tap FIR filter over `n` 16-bit samples using the `mac` extension.
model::TestProgram make_fir(unsigned n, std::uint64_t seed);

/// Table-driven CRC-32 over `bytes` payload bytes using a `crcstep`
/// custom instruction (rounded up to a whole word).
model::TestProgram make_crc32(unsigned bytes, std::uint64_t seed);

/// Motion-estimation sum-of-absolute-differences over 16x16 blocks using
/// a packed `sad4` custom instruction.
model::TestProgram make_sad(unsigned blocks, std::uint64_t seed);

/// The three extra applications above, bundled.
std::vector<model::TestProgram> extras_suite(std::uint64_t seed = 17);

/// TIE specifications of the extra extensions (exposed for tests/examples).
std::string tie_crc_spec();
std::string tie_sad_spec();

/// C++ reference implementations the extra kernels must agree with.
std::uint32_t crc32_reference(std::span<const std::uint8_t> data);
std::vector<std::int32_t> fir_reference(std::span<const std::int16_t> samples,
                                        std::span<const std::int16_t> taps);
std::uint32_t sad_reference(std::span<const std::uint8_t> a,
                            std::span<const std::uint8_t> b);

/// Reference implementations the kernels must agree with (used by tests).
/// The LFSR taps G[0..7] in kernel order (G[i] = c_{7-i} of the monic
/// generator polynomial with roots alpha^0..alpha^7).
std::vector<std::uint8_t> rs_generator_poly();
/// Parity bytes for one 15-byte message block.
std::vector<std::uint8_t> rs_encode_reference(std::span<const std::uint8_t> msg);
/// Syndromes S_0..S_7 of a 24-byte (padded) codeword.
std::vector<std::uint8_t> rs_syndromes_reference(
    std::span<const std::uint8_t> padded_cw);

}  // namespace exten::workloads
