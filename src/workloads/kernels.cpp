// The ten application benchmarks of the paper's Table II, written in
// XTC-32 assembly with data generated per seed. Each kernel leaves a
// verifiable result in memory (the functional tests check it) and ends
// with HALT.

#include <sstream>

#include "workloads/asm_util.h"
#include "workloads/tie_library.h"
#include "workloads/workloads.h"

namespace exten::workloads {

using detail::random_words;
using detail::words_directive;

namespace {

std::string header(const std::string& comment) {
  return "# " + comment + "\n.text\n_start:\n";
}

}  // namespace

model::TestProgram make_ins_sort(unsigned n, std::uint64_t seed) {
  Rng rng(seed);
  const auto data = random_words(rng, n, 0, 0x7fffffff);
  std::ostringstream os;
  os << header("insertion sort of " + std::to_string(n) + " words");
  os << R"(  li   s0, array        # base pointer
  li   s1, 1             # i = 1
  li   s2, )" << n << R"(             # n
outer:
  bge  s1, s2, done
  slli t0, s1, 2
  add  t0, s0, t0        # &a[i]
  lw   t1, 0(t0)         # key = a[i]
  mv   t2, s1            # j = i
inner:
  beqz t2, place
  addi t3, t2, -1
  slli t4, t3, 2
  add  t4, s0, t4
  lw   t5, 0(t4)         # a[j-1]
  bge  t1, t5, place     # stop when key >= a[j-1]
  slli t6, t2, 2
  add  t6, s0, t6
  sw   t5, 0(t6)         # a[j] = a[j-1]
  mv   t2, t3
  j    inner
place:
  slli t6, t2, 2
  add  t6, s0, t6
  sw   t1, 0(t6)         # a[j] = key
  addi s1, s1, 1
  j    outer
done:
  halt

.data
array:
)" << words_directive(data);
  return model::make_test_program("Ins_sort", os.str());
}

model::TestProgram make_gcd(unsigned pairs, std::uint64_t seed) {
  Rng rng(seed);
  // Pairs with a shared factor keep iteration counts moderate and results
  // interesting.
  std::vector<std::uint32_t> data;
  data.reserve(2 * pairs);
  for (unsigned i = 0; i < pairs; ++i) {
    const auto g = static_cast<std::uint32_t>(rng.next_in(1, 64));
    data.push_back(g * static_cast<std::uint32_t>(rng.next_in(1, 700)));
    data.push_back(g * static_cast<std::uint32_t>(rng.next_in(1, 700)));
  }
  std::ostringstream os;
  os << header("subtraction GCD over " + std::to_string(pairs) + " pairs");
  os << R"(  li   s0, pairs
  li   s1, )" << pairs << R"(
  li   s2, results
pair_loop:
  beqz s1, done
  lw   t0, 0(s0)
  lw   t1, 4(s0)
gcd_loop:
  beq  t0, t1, gcd_done
  bltu t0, t1, t1_bigger
  sub  t0, t0, t1
  j    gcd_loop
t1_bigger:
  sub  t1, t1, t0
  j    gcd_loop
gcd_done:
  sw   t0, 0(s2)
  addi s2, s2, 4
  addi s0, s0, 8
  addi s1, s1, -1
  j    pair_loop
done:
  halt

.data
pairs:
)" << words_directive(data) << R"(results:
.space )" << 4 * pairs << "\n";
  return model::make_test_program("Gcd", os.str());
}

model::TestProgram make_alphablend(unsigned n, std::uint64_t seed) {
  Rng rng(seed);
  const auto img_a = random_words(rng, n, 0, 0xffff);
  const auto img_b = random_words(rng, n, 0, 0xffff);
  std::ostringstream os;
  os << header("alpha blend of two " + std::to_string(n) + "-pixel images");
  os << R"(  li   t0, 180
  setalpha t0
  li   s0, img_a
  li   s1, img_b
  li   s2, img_out
  li   s3, )" << n << R"(
loop:
  beqz s3, done
  lw   t1, 0(s0)
  lw   t2, 0(s1)
  blend t3, t1, t2
  sw   t3, 0(s2)
  addi s0, s0, 4
  addi s1, s1, 4
  addi s2, s2, 4
  addi s3, s3, -1
  j    loop
done:
  halt

.data
img_a:
)" << words_directive(img_a) << "img_b:\n"
     << words_directive(img_b) << "img_out:\n.space " << 4 * n << "\n";
  return model::make_test_program("Alphablend", os.str(), tie_blend_spec());
}

model::TestProgram make_add4(unsigned n, std::uint64_t seed) {
  Rng rng(seed);
  const auto vec_a = random_words(rng, n, 0, 0xffffffff);
  const auto vec_b = random_words(rng, n, 0, 0xffffffff);
  std::ostringstream os;
  os << header("packed 4x8-bit vector add over " + std::to_string(n) +
               " words");
  os << R"(  li   s0, vec_a
  li   s1, vec_b
  li   s2, vec_out
  li   s3, )" << n << R"(
loop:
  beqz s3, done
  lw   t1, 0(s0)
  lw   t2, 0(s1)
  add4 t3, t1, t2
  sw   t3, 0(s2)
  addi s0, s0, 4
  addi s1, s1, 4
  addi s2, s2, 4
  addi s3, s3, -1
  j    loop
done:
  halt

.data
vec_a:
)" << words_directive(vec_a) << "vec_b:\n"
     << words_directive(vec_b) << "vec_out:\n.space " << 4 * n << "\n";
  return model::make_test_program("Add4", os.str(), tie_add4_spec());
}

model::TestProgram make_bubsort(unsigned n, std::uint64_t seed) {
  Rng rng(seed);
  const auto data = random_words(rng, n, 0, 0x7fffffff);
  std::ostringstream os;
  os << header("bubble sort of " + std::to_string(n) + " words");
  os << R"(  li   s0, array
  li   s1, )" << n << R"(        # outer bound
outer:
  addi s1, s1, -1
  beqz s1, done
  mv   s2, s0            # walk pointer
  mv   s3, s1            # inner count
inner:
  lw   t0, 0(s2)
  lw   t1, 4(s2)
  bge  t1, t0, no_swap
  sw   t1, 0(s2)
  sw   t0, 4(s2)
no_swap:
  addi s2, s2, 4
  addi s3, s3, -1
  bnez s3, inner
  j    outer
done:
  halt

.data
array:
)" << words_directive(data);
  return model::make_test_program("Bubsort", os.str());
}

model::TestProgram make_des(unsigned n, std::uint64_t seed) {
  Rng rng(seed);
  const auto blocks = random_words(rng, n, 0, 0xffffffff);
  std::ostringstream os;
  os << header("DES-style S-box rounds over " + std::to_string(n) +
               " blocks");
  os << R"(  li   s4, 0x3a94b7c1     # round key 1
  li   s5, 0x5ce02d88     # round key 2
  li   s0, blocks
  li   s2, blocks_out
  li   s3, )" << n << R"(
loop:
  beqz s3, done
  lw   t1, 0(s0)
  sboxp t2, t1, s4        # substitution round 1
  sboxp t3, t2, s5        # substitution round 2
  xor  t3, t3, t1         # Feistel-style mix
  sw   t3, 0(s2)
  addi s0, s0, 4
  addi s2, s2, 4
  addi s3, s3, -1
  j    loop
done:
  halt

.data
blocks:
)" << words_directive(blocks) << "blocks_out:\n.space " << 4 * n << "\n";
  return model::make_test_program("DES", os.str(), tie_sbox_spec());
}

model::TestProgram make_accumulate(unsigned n, std::uint64_t seed) {
  Rng rng(seed);
  // Keep pairwise sums within 32 bits; the kernel consumes two words per
  // csa3, so n must be even (rounded up here).
  if (n % 2) ++n;
  const auto data = random_words(rng, n, 0, 0x00ffffff);
  std::ostringstream os;
  os << header("carry-save accumulation of " + std::to_string(n) + " words");
  os << R"(  csaclr
  li   s0, samples
  li   s3, )" << n / 2 << R"(
loop:
  beqz s3, done
  lw   t1, 0(s0)
  lw   t2, 4(s0)
  csa3 t1, t2
  addi s0, s0, 8
  addi s3, s3, -1
  j    loop
done:
  csaflush t0
  li   t9, sum_out
  sw   t0, 0(t9)
  halt

.data
samples:
)" << words_directive(data) << "sum_out:\n.space 4\n";
  return model::make_test_program("Accumulate", os.str(), tie_csa_spec());
}

model::TestProgram make_drawline(unsigned lines, std::uint64_t seed) {
  Rng rng(seed);
  // Endpoint quads (x0,y0,x1,y1) with x0<x1 and slope <= 1 so the simple
  // Bresenham variant below is exact.
  std::vector<std::uint32_t> endpoints;
  endpoints.reserve(4 * lines);
  for (unsigned i = 0; i < lines; ++i) {
    const auto x0 = static_cast<std::uint32_t>(rng.next_in(0, 40));
    const auto dx = static_cast<std::uint32_t>(rng.next_in(8, 80));
    const auto y0 = static_cast<std::uint32_t>(rng.next_in(0, 40));
    const auto dy = static_cast<std::uint32_t>(rng.next_below(dx + 1));
    endpoints.push_back(x0);
    endpoints.push_back(y0);
    endpoints.push_back(x0 + dx);
    endpoints.push_back(y0 + dy);
  }
  std::ostringstream os;
  os << header("Bresenham rasterization of " + std::to_string(lines) +
               " lines into a 128-wide framebuffer");
  os << R"(  li   s0, endpoints
  li   s1, )" << lines << R"(
line_loop:
  beqz s1, done
  lw   t0, 0(s0)          # x0
  lw   t1, 4(s0)          # y0
  lw   t2, 8(s0)          # x1
  lw   t3, 12(s0)         # y1
  absdiff t4, t2, t0      # dx
  absdiff t5, t3, t1      # dy
  slli t6, t5, 1
  sub  t6, t6, t4         # err = 2*dy - dx
pixel_loop:
  # plot(x0, y0): framebuffer[y0*128 + x0] = 1
  slli t7, t1, 7
  add  t7, t7, t0
  li   t8, framebuffer
  add  t7, t8, t7
  li   t8, 1
  sb   t8, 0(t7)
  bge  t0, t2, line_done
  bltz_check:
  blt  t6, zero, err_neg
  addi t1, t1, 1          # y++
  slli t9, t4, 1
  sub  t6, t6, t9         # err -= 2*dx
err_neg:
  slli t9, t5, 1
  add  t6, t6, t9         # err += 2*dy
  addi t0, t0, 1          # x++
  j    pixel_loop
line_done:
  addi s0, s0, 16
  addi s1, s1, -1
  j    line_loop
done:
  halt

.data
endpoints:
)" << words_directive(endpoints)
     << "framebuffer:\n.space " << 128 * 128 << "\n";
  return model::make_test_program("Drawline", os.str(), tie_absdiff_spec());
}

model::TestProgram make_multi_accumulate(unsigned n, std::uint64_t seed) {
  Rng rng(seed);
  const auto sig_a = random_words(rng, n, 0, 0x7fff);
  const auto sig_b = random_words(rng, n, 0, 0x7fff);
  const unsigned block = 16;
  std::ostringstream os;
  os << header("blocked multiply-accumulate over " + std::to_string(n) +
               " sample pairs");
  os << R"(  li   s0, sig_a
  li   s1, sig_b
  li   s2, mac_out
  li   s3, )" << n / block << R"(      # blocks
block_loop:
  beqz s3, done
  clrmac
  li   s4, )" << block << R"(          # samples per block
mac_loop:
  lw   t1, 0(s0)
  lw   t2, 0(s1)
  mac  t1, t2
  addi s0, s0, 4
  addi s1, s1, 4
  addi s4, s4, -1
  bnez s4, mac_loop
  rdmac t3
  sw   t3, 0(s2)
  rdmach t4
  sw   t4, 4(s2)
  addi s2, s2, 8
  addi s3, s3, -1
  j    block_loop
done:
  halt

.data
sig_a:
)" << words_directive(sig_a) << "sig_b:\n"
     << words_directive(sig_b) << "mac_out:\n.space "
     << 8 * (n / block) << "\n";
  return model::make_test_program("Multi_accumulate", os.str(),
                                  tie_mac_spec());
}

model::TestProgram make_seq_mult(unsigned n, std::uint64_t seed) {
  Rng rng(seed);
  const auto factors = random_words(rng, n, 1, 0x3fff);
  std::ostringstream os;
  os << header("sequential dependent multiplies over " + std::to_string(n) +
               " factors");
  os << R"(  li   s0, factors
  li   s2, prod_out
  li   s3, )" << n << R"(
  li   t0, 3              # running product (kept in range by masking)
loop:
  beqz s3, done
  lw   t1, 0(s0)
  smul t0, t0, t1
  andi t0, t0, 0x3fff     # keep the chain in 14 bits
  ori  t0, t0, 1          # never zero
  sw   t0, 0(s2)
  addi s0, s0, 4
  addi s2, s2, 4
  addi s3, s3, -1
  j    loop
done:
  halt

.data
factors:
)" << words_directive(factors) << "prod_out:\n.space " << 4 * n << "\n";
  return model::make_test_program("Seq_mult", os.str(), tie_smul_spec());
}

std::vector<model::TestProgram> application_suite(std::uint64_t seed) {
  std::vector<model::TestProgram> suite;
  suite.push_back(make_ins_sort(96, seed + 1));
  suite.push_back(make_gcd(160, seed + 2));
  suite.push_back(make_alphablend(400, seed + 3));
  suite.push_back(make_add4(520, seed + 4));
  suite.push_back(make_bubsort(72, seed + 5));
  suite.push_back(make_des(320, seed + 6));
  suite.push_back(make_accumulate(480, seed + 7));
  suite.push_back(make_drawline(24, seed + 8));
  suite.push_back(make_multi_accumulate(320, seed + 9));
  suite.push_back(make_seq_mult(280, seed + 10));
  return suite;
}

}  // namespace exten::workloads
