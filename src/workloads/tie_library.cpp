#include "workloads/tie_library.h"

#include <sstream>
#include <vector>

namespace exten::workloads {

namespace {

/// Emits `table NAME size=N width=W { ... }`.
std::string emit_table(const std::string& name, unsigned width,
                       const std::vector<unsigned>& values) {
  std::ostringstream os;
  os << "table " << name << " size=" << values.size() << " width=" << width
     << " {\n  ";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << (i % 16 == 0 ? ",\n  " : ", ");
    os << values[i];
  }
  os << "\n}\n";
  return os.str();
}

/// GF(2^8) log/antilog tables for generator polynomial 0x11d with a
/// 512-entry antilog (so log sums index it without a modulo).
/// `prefix` namespaces the table names per specification.
std::string gf_tables(const std::string& prefix) {
  std::vector<unsigned> alog(512, 1);
  std::vector<unsigned> log(256, 0);
  unsigned x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    alog[i] = x;
    log[x] = i;
    x <<= 1;
    if (x & 0x100) x ^= 0x11d;
  }
  for (unsigned i = 255; i < 512; ++i) alog[i] = alog[i - 255];
  return emit_table(prefix + "log", 8, log) +
         emit_table(prefix + "alog", 8, alog);
}

/// The shared body of a GF multiply expression over `a` and `b` byte
/// expressions, using the tables named with `prefix`.
std::string gf_mul_expr(const std::string& prefix, const std::string& a,
                        const std::string& b) {
  return "sel(((" + a + ") == 0) | ((" + b + ") == 0), 0, " + prefix +
         "alog[" + prefix + "log[" + a + "] + " + prefix + "log[" + b +
         "]])";
}

std::vector<unsigned> sbox_values() {
  std::vector<unsigned> values(256);
  for (unsigned i = 0; i < 256; ++i) {
    values[i] = aes_sbox(static_cast<std::uint8_t>(i));
  }
  return values;
}

}  // namespace

std::uint8_t gf_mul_reference(std::uint8_t a, std::uint8_t b) {
  unsigned product = 0;
  unsigned aa = a;
  for (unsigned bb = b; bb != 0; bb >>= 1) {
    if (bb & 1) product ^= aa;
    aa <<= 1;
    if (aa & 0x100) aa ^= 0x11d;
  }
  return static_cast<std::uint8_t>(product);
}

std::uint8_t gf_pow_alpha(unsigned exponent) {
  std::uint8_t result = 1;
  for (unsigned i = 0; i < exponent % 255; ++i) {
    result = gf_mul_reference(result, 2);
  }
  return result;
}

std::uint8_t aes_sbox(std::uint8_t index) {
  // Multiplicative inverse in GF(2^8) with the AES polynomial 0x11b,
  // followed by the AES affine transform.
  auto mul11b = [](unsigned a, unsigned b) {
    unsigned p = 0;
    for (; b != 0; b >>= 1) {
      if (b & 1) p ^= a;
      a <<= 1;
      if (a & 0x100) a ^= 0x11b;
    }
    return p & 0xff;
  };
  unsigned inv = 0;
  if (index != 0) {
    for (unsigned candidate = 1; candidate < 256; ++candidate) {
      if (mul11b(index, candidate) == 1) {
        inv = candidate;
        break;
      }
    }
  }
  unsigned s = inv;
  unsigned result = s;
  for (int i = 0; i < 4; ++i) {
    s = ((s << 1) | (s >> 7)) & 0xff;
    result ^= s;
  }
  return static_cast<std::uint8_t>(result ^ 0x63);
}

std::string tie_mac_spec() {
  return R"(# 24x24 -> 48 multiply-accumulate (TIE mac module)
state macc width=48

instruction mac {
  latency 2
  reads rs1, rs2
  use tie_mac width=24
  semantics { macc = macc + sext(rs1, 24) * sext(rs2, 24); }
}

instruction rdmac {
  writes rd
  use logic width=32
  semantics { rd = macc; }
}

instruction rdmach {
  writes rd
  use logic width=16
  semantics { rd = macc >> 32; }
}

instruction clrmac {
  use logic width=8
  semantics { macc = 0; }
}
)";
}

std::string tie_smul_spec() {
  return R"(# 16x16 -> 32 specialized multiply (TIE mult module)
instruction smul {
  reads rs1, rs2
  writes rd
  use tie_mult width=16
  semantics { rd = sext(rs1, 16) * sext(rs2, 16); }
}
)";
}

std::string tie_dotp_spec() {
  return R"(# dual 16-bit dot product step (generic multiplier + TIE add)
instruction dotp2 {
  reads rs1, rs2
  writes rd
  use mult width=16 count=2
  use tie_add width=32
  semantics {
    rd = sext(rs1, 16) * sext(rs2, 16) + asr(rs1, 16, 32) * asr(rs2, 16, 32);
  }
}
)";
}

std::string tie_csa_spec() {
  return R"(# carry-save accumulation (TIE csa module + custom registers)
# Invariant maintained by csa3: csum + ccarry == sum of all inputs (mod 2^32).
state csum width=32
state ccarry width=32
state csa_ts width=32
state csa_tc width=32

instruction csa3 {
  reads rs1, rs2
  use tie_csa width=32 count=2
  use custreg width=32 count=2
  semantics {
    csa_ts = csum ^ ccarry ^ rs1;
    csa_tc = ((csum & ccarry) | (csum & rs1) | (ccarry & rs1)) << 1;
    csum = csa_ts ^ csa_tc ^ rs2;
    ccarry = ((csa_ts & csa_tc) | (csa_ts & rs2) | (csa_tc & rs2)) << 1;
  }
}

instruction csaflush {
  writes rd
  use adder width=32
  semantics { rd = csum + ccarry; }
}

instruction csaclr {
  use logic width=8
  semantics {
    csum = 0;
    ccarry = 0;
  }
}
)";
}

std::string tie_funnel_spec() {
  return R"(# 64-bit funnel shifter with the shift amount in custom state
state fsh width=6

instruction setsh {
  reads rs1
  use logic width=8
  semantics { fsh = rs1 & 63; }
}

instruction funnel {
  reads rs1, rs2
  writes rd
  use shifter width=64
  semantics { rd = (rs1 << fsh) | (rs2 >> (32 - fsh)); }
}
)";
}

std::string tie_add4_spec() {
  return R"(# packed 4x8-bit SIMD add / subtract
instruction add4 {
  reads rs1, rs2
  writes rd
  use adder width=8 count=4
  use logic width=32
  semantics {
    rd = (((rs1 & 255) + (rs2 & 255)) & 255)
       | (((((rs1 >> 8) & 255) + ((rs2 >> 8) & 255)) & 255) << 8)
       | (((((rs1 >> 16) & 255) + ((rs2 >> 16) & 255)) & 255) << 16)
       | (((((rs1 >> 24) & 255) + ((rs2 >> 24) & 255)) & 255) << 24);
  }
}

instruction sub4 {
  reads rs1, rs2
  writes rd
  use adder width=8 count=4
  use logic width=32
  semantics {
    rd = (((rs1 & 255) - (rs2 & 255)) & 255)
       | (((((rs1 >> 8) & 255) - ((rs2 >> 8) & 255)) & 255) << 8)
       | (((((rs1 >> 16) & 255) - ((rs2 >> 16) & 255)) & 255) << 16)
       | (((((rs1 >> 24) & 255) - ((rs2 >> 24) & 255)) & 255) << 24);
  }
}
)";
}

std::string tie_blend_spec() {
  return R"(# two-channel 8-bit alpha blend with the alpha in custom state
state alpha width=9

instruction setalpha {
  reads rs1
  use logic width=9
  semantics { alpha = rs1 & 511; }
}

instruction blend {
  latency 2
  reads rs1, rs2
  writes rd
  use mult width=8 count=2 cycles=0
  use adder width=16 count=2 cycles=1
  use logic width=16
  semantics {
    rd = (((alpha * (rs1 & 255) + (256 - alpha) * (rs2 & 255)) >> 8) & 255)
       | (((((alpha * ((rs1 >> 8) & 255)
            + (256 - alpha) * ((rs2 >> 8) & 255)) >> 8) & 255)) << 8);
  }
}
)";
}

std::string tie_sbox_spec() {
  std::string spec = "# byte substitution through a 256-entry S-box\n";
  spec += emit_table("sboxtab", 8, sbox_values());
  spec += R"(
instruction sbox {
  reads rs1, rs2
  writes rd
  use logic width=8
  semantics { rd = sboxtab[(rs1 ^ rs2) & 255]; }
}

instruction sboxp {
  latency 2
  reads rs1, rs2
  writes rd
  use table width=8 entries=256 count=4 cycles=0
  use logic width=32 cycles=1
  semantics {
    rd = sboxtab[(rs1 ^ rs2) & 255]
       | (sboxtab[((rs1 >> 8) ^ (rs2 >> 8)) & 255] << 8)
       | (sboxtab[((rs1 >> 16) ^ (rs2 >> 16)) & 255] << 16)
       | (sboxtab[((rs1 >> 24) ^ (rs2 >> 24)) & 255] << 24);
  }
}
)";
  return spec;
}

std::string tie_absdiff_spec() {
  return R"(# |rs1 - rs2| (subtract + compare + mux)
instruction absdiff {
  reads rs1, rs2
  writes rd
  use adder width=32 count=2
  use logic width=32
  semantics { rd = sel(rs1 < rs2, rs2 - rs1, rs1 - rs2); }
}
)";
}

std::string tie_gfmul_spec() {
  std::string spec = "# GF(2^8) multiply via log/antilog tables\n";
  spec += gf_tables("gm");
  spec += "\ninstruction gfmul {\n"
          "  reads rs1, rs2\n"
          "  writes rd\n"
          "  use adder width=9\n"
          "  semantics { rd = " +
          gf_mul_expr("gm", "rs1 & 255", "rs2 & 255") + "; }\n}\n";
  return spec;
}

std::string tie_gfmac_spec() {
  std::string spec = "# GF(2^8) multiply-accumulate into custom state\n";
  spec += "state gacc width=8\n";
  spec += gf_tables("gc");
  spec += "\ninstruction gfmac {\n"
          "  reads rs1, rs2\n"
          "  use adder width=9\n"
          "  use logic width=8\n"
          "  semantics { gacc = gacc ^ " +
          gf_mul_expr("gc", "rs1 & 255", "rs2 & 255") + "; }\n}\n";
  spec += R"(
instruction rdgf {
  writes rd
  use logic width=8
  semantics { rd = gacc; }
}

instruction clrgf {
  use logic width=8
  semantics { gacc = 0; }
}

instruction ldgf {
  reads rs1
  use logic width=8
  semantics { gacc = rs1 & 255; }
}
)";
  return spec;
}

std::string tie_gfmac2_spec() {
  std::string spec =
      "# two-way packed GF(2^8) multiply-accumulate (wider datapath)\n";
  spec += "state gacc2 width=16\n";
  spec += gf_tables("g2");
  spec += "\ninstruction gfmac2 {\n"
          "  latency 2\n"
          "  reads rs1, rs2\n"
          "  use table width=8 entries=512 count=2 cycles=0\n"
          "  use adder width=9 count=2 cycles=0\n"
          "  use logic width=16 cycles=1\n"
          "  semantics {\n"
          "    gacc2 = gacc2 ^ ((" +
          gf_mul_expr("g2", "rs1 & 255", "rs2 & 255") + ")\n           | ((" +
          gf_mul_expr("g2", "(rs1 >> 8) & 255", "(rs2 >> 8) & 255") +
          ") << 8));\n  }\n}\n";
  spec += R"(
instruction rdgf2 {
  writes rd
  use logic width=16
  semantics { rd = gacc2; }
}

instruction clrgf2 {
  use logic width=8
  semantics { gacc2 = 0; }
}
)";
  return spec;
}

std::string tie_full_library_spec() {
  return tie_mac_spec() + "\n" + tie_smul_spec() + "\n" + tie_dotp_spec() +
         "\n" + tie_csa_spec() + "\n" + tie_funnel_spec() + "\n" +
         tie_add4_spec() + "\n" + tie_blend_spec() + "\n" + tie_sbox_spec() +
         "\n" + tie_absdiff_spec() + "\n" + tie_gfmac_spec();
}

}  // namespace exten::workloads
