// Extra application kernels beyond the paper's Table II set — the
// multimedia/DSP/crypto workloads the paper's introduction motivates.
// Each ships with its natural TIE-lite extension and a C++ reference
// implementation the tests verify against:
//
//   fir    - 8-tap FIR filter on the `mac` extension
//   crc32  - table-driven CRC-32 with a `crcstep` custom instruction
//   sad    - sum-of-absolute-differences motion-estimation kernel on a
//            packed `sad4` custom instruction

#include <array>
#include <sstream>

#include "util/error.h"
#include "workloads/asm_util.h"
#include "workloads/tie_library.h"
#include "workloads/workloads.h"

namespace exten::workloads {

using detail::random_words;
using detail::words_directive;

// ---------------------------------------------------------------------------
// References
// ---------------------------------------------------------------------------

std::uint32_t crc32_reference(std::span<const std::uint8_t> data) {
  std::uint32_t crc = 0xffffffffu;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0xedb88320u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

std::vector<std::int32_t> fir_reference(std::span<const std::int16_t> samples,
                                        std::span<const std::int16_t> taps) {
  EXTEN_CHECK(samples.size() >= taps.size(), "fir: too few samples");
  std::vector<std::int32_t> out(samples.size() - taps.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::int64_t acc = 0;
    for (std::size_t j = 0; j < taps.size(); ++j) {
      acc += static_cast<std::int64_t>(samples[i + j]) * taps[j];
    }
    out[i] = static_cast<std::int32_t>(acc);
  }
  return out;
}

std::uint32_t sad_reference(std::span<const std::uint8_t> a,
                            std::span<const std::uint8_t> b) {
  EXTEN_CHECK(a.size() == b.size(), "sad: size mismatch");
  std::uint32_t total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    total += a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
  }
  return total;
}

// ---------------------------------------------------------------------------
// TIE specifications
// ---------------------------------------------------------------------------

std::string tie_crc_spec() {
  // CRC-32 (reflected, poly 0xEDB88320) byte-step table.
  std::ostringstream spec;
  spec << "# table-driven CRC-32 byte step\nstate crc width=32\n";
  spec << "table crctab size=256 width=32 {\n  ";
  for (unsigned i = 0; i < 256; ++i) {
    std::uint32_t entry = i;
    for (int bit = 0; bit < 8; ++bit) {
      entry = (entry >> 1) ^ (0xedb88320u & (0u - (entry & 1u)));
    }
    if (i) spec << (i % 8 == 0 ? ",\n  " : ", ");
    spec << entry;
  }
  spec << "\n}\n";
  spec << R"(
instruction crcinit {
  use logic width=32
  semantics { crc = 0xffffffff; }
}

instruction crcstep {
  reads rs1
  use logic width=32
  use shifter width=32
  semantics { crc = (crc >> 8) ^ crctab[(crc ^ rs1) & 255]; }
}

instruction crcfin {
  writes rd
  use logic width=32
  semantics { rd = ~crc; }
}
)";
  return spec.str();
}

std::string tie_sad_spec() {
  return R"(# packed 4x8-bit sum-of-absolute-differences accumulator
state sacc width=32

instruction sadclr {
  use logic width=8
  semantics { sacc = 0; }
}

instruction sad4 {
  reads rs1, rs2
  use adder width=8 count=8
  use logic width=32
  use tie_add width=32
  semantics {
    sacc = sacc
      + sel((rs1 & 255) < (rs2 & 255),
            (rs2 & 255) - (rs1 & 255), (rs1 & 255) - (rs2 & 255))
      + sel(((rs1 >> 8) & 255) < ((rs2 >> 8) & 255),
            ((rs2 >> 8) & 255) - ((rs1 >> 8) & 255),
            ((rs1 >> 8) & 255) - ((rs2 >> 8) & 255))
      + sel(((rs1 >> 16) & 255) < ((rs2 >> 16) & 255),
            ((rs2 >> 16) & 255) - ((rs1 >> 16) & 255),
            ((rs1 >> 16) & 255) - ((rs2 >> 16) & 255))
      + sel(((rs1 >> 24) & 255) < ((rs2 >> 24) & 255),
            ((rs2 >> 24) & 255) - ((rs1 >> 24) & 255),
            ((rs1 >> 24) & 255) - ((rs2 >> 24) & 255));
  }
}

instruction sadrd {
  writes rd
  use logic width=32
  semantics { rd = sacc; }
}
)";
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

model::TestProgram make_fir(unsigned n, std::uint64_t seed) {
  constexpr unsigned kTaps = 8;
  EXTEN_CHECK(n > kTaps, "fir needs more than ", kTaps, " samples");
  Rng rng(seed);
  std::vector<std::uint32_t> samples(n);
  for (auto& s : samples) {
    s = static_cast<std::uint32_t>(rng.next_in(-2000, 2000)) & 0xffff;
  }
  std::vector<std::uint32_t> taps(kTaps);
  for (auto& t : taps) {
    t = static_cast<std::uint32_t>(rng.next_in(-128, 127)) & 0xffff;
  }

  std::ostringstream os;
  os << "# 8-tap FIR over " << n << " samples (mac extension)\n"
     << ".text\n_start:\n";
  os << R"(  li   s0, samples         # x
  li   s2, fir_out
  li   s3, )" << (n - kTaps + 1) << R"(        # outputs
out_loop:
  beqz s3, done
  clrmac
  li   s4, taps
  mv   s5, s0
  li   s6, )" << kTaps << R"(
tap_loop:
  lh   t1, 0(s5)
  lh   t2, 0(s4)
  mac  t1, t2
  addi s5, s5, 2
  addi s4, s4, 2
  addi s6, s6, -1
  bnez s6, tap_loop
  rdmac t3
  sw   t3, 0(s2)
  addi s2, s2, 4
  addi s0, s0, 2
  addi s3, s3, -1
  j    out_loop
done:
  halt

.data
.align 4
samples:
)";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    os << (i % 16 == 0 ? (i ? "\n.half " : ".half ") : ", ") << samples[i];
  }
  os << "\ntaps:\n.half ";
  for (std::size_t i = 0; i < taps.size(); ++i) {
    if (i) os << ", ";
    os << taps[i];
  }
  os << "\n.align 4\nfir_out:\n.space " << 4 * (n - kTaps + 1) << "\n";
  return model::make_test_program("FIR8", os.str(), tie_mac_spec());
}

model::TestProgram make_crc32(unsigned bytes, std::uint64_t seed) {
  Rng rng(seed);
  if (bytes % 4) bytes += 4 - bytes % 4;
  const auto data = random_words(rng, bytes / 4, 0, 0xffffffff);
  std::ostringstream os;
  os << "# CRC-32 over " << bytes << " bytes (crcstep extension)\n"
     << ".text\n_start:\n";
  os << R"(  crcinit
  li   s0, payload
  li   s1, )" << bytes << R"(
loop:
  lbu  t0, 0(s0)
  crcstep t0
  addi s0, s0, 1
  addi s1, s1, -1
  bnez s1, loop
  crcfin t1
  li   t2, crc_out
  sw   t1, 0(t2)
  halt

.data
payload:
)" << words_directive(data) << "crc_out:\n.space 4\n";
  return model::make_test_program("CRC32", os.str(), tie_crc_spec());
}

model::TestProgram make_sad(unsigned blocks, std::uint64_t seed) {
  // 16x16 pixel blocks, 64 packed words per block pair.
  Rng rng(seed);
  const unsigned words_per_block = 64;
  const auto cur = random_words(rng, blocks * words_per_block, 0, 0xffffffff);
  const auto ref = random_words(rng, blocks * words_per_block, 0, 0xffffffff);
  std::ostringstream os;
  os << "# motion-estimation SAD over " << blocks
     << " 16x16 blocks (sad4 extension)\n.text\n_start:\n";
  os << R"(  li   s0, cur_frame
  li   s1, ref_frame
  li   s2, sad_out
  li   s3, )" << blocks << R"(
block_loop:
  beqz s3, done
  sadclr
  li   s4, )" << words_per_block << R"(
word_loop:
  lw   t0, 0(s0)
  lw   t1, 0(s1)
  sad4 t0, t1
  addi s0, s0, 4
  addi s1, s1, 4
  addi s4, s4, -1
  bnez s4, word_loop
  sadrd t2
  sw   t2, 0(s2)
  addi s2, s2, 4
  addi s3, s3, -1
  j    block_loop
done:
  halt

.data
cur_frame:
)" << words_directive(cur) << "ref_frame:\n"
     << words_directive(ref) << "sad_out:\n.space " << 4 * blocks << "\n";
  return model::make_test_program("SAD16", os.str(), tie_sad_spec());
}

std::vector<model::TestProgram> extras_suite(std::uint64_t seed) {
  std::vector<model::TestProgram> suite;
  suite.push_back(make_fir(160, seed + 1));
  suite.push_back(make_crc32(512, seed + 2));
  suite.push_back(make_sad(6, seed + 3));
  return suite;
}

}  // namespace exten::workloads
