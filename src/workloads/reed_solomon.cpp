// Reed-Solomon encoder + syndrome kernel with four custom-instruction
// choices (the paper's Fig. 4 design-space study).
//
// Per message block of K=15 bytes the kernel computes P=8 parity bytes with
// a systematic LFSR encoder over GF(2^8) (generator polynomial with roots
// alpha^0..alpha^7, field polynomial 0x11d), builds the 23-byte codeword
// (padded to 24), injects a byte error in every other block, and computes
// the 8 syndromes S_i = C(alpha^i).
//
// Configurations:
//   kBase   - GF multiply in software (log/antilog tables in memory)
//   kGfMul  - gfmul custom instruction
//   kGfMac  - gfmul + gfmac (syndromes in power-sum form, accumulating in
//             custom state)
//   kGfMac2 - gfmul + gfmac2 (two-way packed power-sum syndromes)

#include <array>
#include <sstream>

#include "util/error.h"
#include "workloads/asm_util.h"
#include "workloads/tie_library.h"
#include "workloads/workloads.h"

namespace exten::workloads {

namespace {

constexpr unsigned kMsgBytes = 15;   // K
constexpr unsigned kParityBytes = 8; // P
constexpr unsigned kPaddedCw = 24;   // K + P padded to even

/// Coefficients c_0..c_7 of the monic generator polynomial
/// g(x) = x^8 + c_7 x^7 + ... + c_0 with roots alpha^0..alpha^7.
std::array<std::uint8_t, 8> generator_coefficients() {
  // poly starts as {1} (constant 1) and is multiplied by (x + alpha^i).
  std::array<std::uint8_t, 9> poly{};
  poly[0] = 1;
  unsigned degree = 0;
  for (unsigned i = 0; i < kParityBytes; ++i) {
    const std::uint8_t root = gf_pow_alpha(i);
    // poly *= (x + root): new[j] = old[j-1] + root*old[j].
    std::array<std::uint8_t, 9> next{};
    for (unsigned j = 0; j <= degree; ++j) {
      next[j + 1] ^= poly[j];
      next[j] ^= gf_mul_reference(root, poly[j]);
    }
    ++degree;
    poly = next;
  }
  std::array<std::uint8_t, 8> coeffs{};
  for (unsigned j = 0; j < 8; ++j) coeffs[j] = poly[j];
  return coeffs;
}

}  // namespace

std::vector<std::uint8_t> rs_generator_poly() {
  // The LFSR taps in kernel order: G[i] = c_{7-i}.
  const auto c = generator_coefficients();
  std::vector<std::uint8_t> taps(8);
  for (unsigned i = 0; i < 8; ++i) taps[i] = c[7 - i];
  return taps;
}

std::vector<std::uint8_t> rs_encode_reference(
    std::span<const std::uint8_t> msg) {
  EXTEN_CHECK(msg.size() == kMsgBytes, "rs_encode_reference: message must be ",
              kMsgBytes, " bytes, got ", msg.size());
  const std::vector<std::uint8_t> taps = rs_generator_poly();
  std::vector<std::uint8_t> parity(kParityBytes, 0);
  for (std::uint8_t m : msg) {
    const std::uint8_t fb = m ^ parity[0];
    for (unsigned j = 0; j + 1 < kParityBytes; ++j) {
      parity[j] = parity[j + 1] ^ gf_mul_reference(fb, taps[j]);
    }
    parity[kParityBytes - 1] = gf_mul_reference(fb, taps[kParityBytes - 1]);
  }
  return parity;
}

std::vector<std::uint8_t> rs_syndromes_reference(
    std::span<const std::uint8_t> padded_cw) {
  EXTEN_CHECK(padded_cw.size() == kPaddedCw,
              "rs_syndromes_reference: codeword must be ", kPaddedCw,
              " bytes, got ", padded_cw.size());
  std::vector<std::uint8_t> syndromes(kParityBytes, 0);
  for (unsigned i = 0; i < kParityBytes; ++i) {
    const std::uint8_t a = gf_pow_alpha(i);
    std::uint8_t s = 0;
    for (std::uint8_t c : padded_cw) {
      s = static_cast<std::uint8_t>(gf_mul_reference(s, a) ^ c);
    }
    syndromes[i] = s;
  }
  return syndromes;
}

model::TestProgram make_reed_solomon(RsConfig config, unsigned blocks,
                                     std::uint64_t seed) {
  Rng rng(seed);

  // GF multiply fragment: inputs in a0/a1, result in a2.
  const bool has_gfmul_instr = config != RsConfig::kBase;
  // Encoder multiply: a2 = s6 (feedback) * a1 (tap).
  const std::string enc_mul = has_gfmul_instr
                                  ? "  gfmul a2, s6, a1\n"
                                  : "  mv   a0, s6\n  call gfmul_sw\n";

  // --- Syndrome inner body: a = s7 (alpha^i), result into s8 --------------
  std::string synd_body;
  switch (config) {
    case RsConfig::kBase:
      // NOTE: gfmul_sw clobbers t5..t8, so this loop keeps its state in
      // t0..t2 (untouched by the software multiply).
      synd_body = R"(  li   s8, 0
  li   t0, cw
  li   t1, 24
hor_loop:
  mv   a0, s8
  mv   a1, s7
  call gfmul_sw
  lbu  t2, 0(t0)
  xor  s8, a2, t2
  addi t0, t0, 1
  addi t1, t1, -1
  bnez t1, hor_loop
)";
      break;
    case RsConfig::kGfMul:
      synd_body = R"(  li   s8, 0
  li   t0, cw
  li   t1, 24
hor_loop:
  gfmul s8, s8, s7
  lbu  t2, 0(t0)
  xor  s8, s8, t2
  addi t0, t0, 1
  addi t1, t1, -1
  bnez t1, hor_loop
)";
      break;
    case RsConfig::kGfMac:
      synd_body = R"(  clrgf
  li   t5, cw+23
  li   t6, 24
  li   t8, 1              # pow = a^0
ps_loop:
  lbu  t7, 0(t5)
  gfmac t7, t8            # gacc ^= c_j * pow
  gfmul t8, t8, s7        # pow *= a
  addi t5, t5, -1
  addi t6, t6, -1
  bnez t6, ps_loop
  rdgf s8
)";
      break;
    case RsConfig::kGfMac2:
      // Pairs are loaded with one halfword access: cw is 4-aligned and the
      // pair base offsets are even. The halfword at cw+22-j packs
      // c_{j+1} | c_j << 8, so the packed powers are phi | pow << 8.
      synd_body = R"(  clrgf2
  li   t5, cw+22
  li   t6, 12             # coefficient pairs
  li   t8, 1              # pow = a^(2k)
ps2_loop:
  gfmul t3, t8, s7        # phi = pow * a
  lhu  t7, 0(t5)          # c_{j+1} | c_j << 8
  slli t4, t8, 8
  or   t4, t4, t3         # phi | pow << 8
  gfmac2 t7, t4
  gfmul t8, t3, s7        # pow = phi * a
  addi t5, t5, -2
  addi t6, t6, -1
  bnez t6, ps2_loop
  rdgf2 t7
  srli t4, t7, 8
  xor  s8, t7, t4
  andi s8, s8, 255
)";
      break;
  }

  // --- Program -------------------------------------------------------------
  std::ostringstream os;
  os << "# Reed-Solomon encode + syndromes, " << blocks << " blocks\n"
     << ".text\n_start:\n";
  os << "  li   s0, msg\n  li   s1, " << blocks << R"(
  li   s2, parity_out
  li   s3, synd_out
block_loop:
  beqz s1, all_done

  # encode: systematic LFSR over the generator polynomial
  li   s4, parity_work
  sw   zero, 0(s4)
  sw   zero, 4(s4)
  li   s5, )" << kMsgBytes << R"(
enc_loop:
  lbu  t0, 0(s0)
  lbu  t1, 0(s4)
  xor  s6, t0, t1         # feedback
  li   s7, 0              # tap index j
par_loop:
  li   t9, 7
  beq  s7, t9, par_last
  add  t2, s4, s7
  lbu  t3, 1(t2)          # parity[j+1]
  li   t4, gpoly
  add  t4, t4, s7
  lbu  a1, 0(t4)          # G[j]
)" << enc_mul << R"(  xor  t3, t3, a2
  add  t2, s4, s7
  sb   t3, 0(t2)
  addi s7, s7, 1
  j    par_loop
par_last:
  li   t4, gpoly
  lbu  a1, 7(t4)
)" << enc_mul << R"(  addi t2, s4, 7
  sb   a2, 0(t2)
  addi s0, s0, 1
  addi s5, s5, -1
  bnez s5, enc_loop

  # build the padded codeword and emit parity
  addi t0, s0, -)" << kMsgBytes << R"(
  li   t1, cw
  li   t2, )" << kMsgBytes << R"(
copy_msg:
  lbu  t3, 0(t0)
  sb   t3, 0(t1)
  addi t0, t0, 1
  addi t1, t1, 1
  addi t2, t2, -1
  bnez t2, copy_msg
  li   t2, 8
  mv   t0, s4
copy_par:
  lbu  t3, 0(t0)
  sb   t3, 0(t1)
  sb   t3, 0(s2)
  addi t0, t0, 1
  addi t1, t1, 1
  addi s2, s2, 1
  addi t2, t2, -1
  bnez t2, copy_par
  sb   zero, 0(t1)        # pad to 24 bytes

  # inject a byte error in every other block
  andi t0, s1, 1
  beqz t0, no_err
  li   t1, cw
  lbu  t2, 5(t1)
  xori t2, t2, 0x27
  sb   t2, 5(t1)
no_err:

  # syndromes S_0..S_7
  li   s5, 0
synd_loop:
  li   t9, 8
  beq  s5, t9, synd_done
  li   t4, alphas
  add  t4, t4, s5
  lbu  s7, 0(t4)          # a = alpha^i
)" << synd_body << R"(  add  t4, s3, s5
  sb   s8, 0(t4)
  addi s5, s5, 1
  j    synd_loop
synd_done:
  addi s3, s3, 8
  addi s1, s1, -1
  j    block_loop
all_done:
  halt
)";

  // Software GF multiply for the base configuration.
  if (!has_gfmul_instr) {
    os << R"(
# a2 = a0 * a1 over GF(2^8), via log/antilog tables in memory
gfmul_sw:
  beqz a0, gm_zero
  beqz a1, gm_zero
  li   t8, gflog
  add  t7, t8, a0
  lbu  t6, 0(t7)
  add  t7, t8, a1
  lbu  t5, 0(t7)
  add  t6, t6, t5
  li   t8, gfalog
  add  t7, t8, t6
  lbu  a2, 0(t7)
  ret
gm_zero:
  li   a2, 0
  ret
)";
  }

  // --- Data ------------------------------------------------------------------
  std::vector<std::uint8_t> msg_bytes(blocks * kMsgBytes);
  for (auto& b : msg_bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
  const std::vector<std::uint8_t> taps = rs_generator_poly();
  std::vector<std::uint8_t> alphas(kParityBytes);
  for (unsigned i = 0; i < kParityBytes; ++i) alphas[i] = gf_pow_alpha(i);

  os << "\n.data\nmsg:\n" << detail::bytes_directive(msg_bytes);
  os << "gpoly:\n" << detail::bytes_directive(taps);
  os << "alphas:\n" << detail::bytes_directive(alphas);
  os << "parity_out:\n.space " << blocks * kParityBytes << "\n";
  os << "synd_out:\n.space " << blocks * kParityBytes << "\n";
  os << ".align 4\ncw:\n.space 24\nparity_work:\n.space 8\n";

  if (!has_gfmul_instr) {
    std::vector<std::uint8_t> log_table(256, 0);
    std::vector<std::uint8_t> alog_table(512, 1);
    std::uint8_t x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      alog_table[i] = x;
      log_table[x] = static_cast<std::uint8_t>(i);
      x = gf_mul_reference(x, 2);
    }
    for (unsigned i = 255; i < 512; ++i) alog_table[i] = alog_table[i - 255];
    os << "gflog:\n" << detail::bytes_directive(log_table);
    os << "gfalog:\n" << detail::bytes_directive(alog_table);
  }

  std::string tie_source;
  std::string name;
  switch (config) {
    case RsConfig::kBase:
      name = "RS_base";
      break;
    case RsConfig::kGfMul:
      name = "RS_gfmul";
      tie_source = tie_gfmul_spec();
      break;
    case RsConfig::kGfMac:
      name = "RS_gfmac";
      tie_source = tie_gfmul_spec() + "\n" + tie_gfmac_spec();
      break;
    case RsConfig::kGfMac2:
      name = "RS_gfmac2";
      tie_source = tie_gfmul_spec() + "\n" + tie_gfmac2_spec();
      break;
  }
  return model::make_test_program(name, os.str(), tie_source);
}

std::vector<model::TestProgram> reed_solomon_variants(std::uint64_t seed) {
  std::vector<model::TestProgram> variants;
  variants.push_back(make_reed_solomon(RsConfig::kBase, 40, seed));
  variants.push_back(make_reed_solomon(RsConfig::kGfMul, 40, seed));
  variants.push_back(make_reed_solomon(RsConfig::kGfMac, 40, seed));
  variants.push_back(make_reed_solomon(RsConfig::kGfMac2, 40, seed));
  return variants;
}

}  // namespace exten::workloads
