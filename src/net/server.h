#pragma once

// The estimation server: a single-threaded, non-blocking HTTP/1.1 event
// loop in front of service::BatchEstimator.
//
// Architecture (one box per thread):
//
//   [event loop]  --try_submit-->  [estimator worker pool]
//       ^   accept/read/parse/route      runs ISS jobs
//       |   write/timeout/drain              |
//       +---- completion queue + wake pipe <-+
//       |
//       +--- [rank lane] — a tiny ThreadPool for /v1/rank, whose
//            blocking rank_candidates() call fans out onto the
//            estimator pool and must not stall the loop.
//
// Request lifecycle: bytes -> RequestParser -> route. /healthz and
// /metrics answer inline. Estimation routes are admitted only while
// in-flight requests < max_inflight AND the pool queue accepts the job
// (both violations answer 503 + Retry-After — the backpressure contract);
// admitted work completes on a worker, which posts the result to the
// completion queue and wakes the loop via the self-pipe. Each admitted
// request carries a deadline; expiry answers 504, cancels still-queued
// jobs through service::CancelToken, and drops the eventual stale
// completion by generation check.
//
// Shutdown: request_stop() is async-signal-safe (flag + pipe write). The
// loop then stops accepting, closes idle connections, finishes in-flight
// requests (responses carry Connection: close), waits for outstanding
// worker callbacks, and returns from run(). Connections that ignore the
// drain are force-closed after drain_timeout_ms.
//
// Thread safety: the server object is owned by the thread calling run().
// request_stop() may be called from any thread or signal handler. port()
// is fixed at construction.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "energy/meter.h"
#include "net/http.h"
#include "net/metrics.h"
#include "net/poller.h"
#include "net/socket.h"
#include "service/batch_estimator.h"
#include "service/thread_pool.h"

namespace exten::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; the bound port is available via HttpServer::port().
  std::uint16_t port = 0;

  /// Admitted-but-unanswered HTTP requests across all connections; the
  /// 503 backpressure threshold.
  std::size_t max_inflight = 64;
  std::size_t max_connections = 256;
  /// Jobs per /v1/batch request (and candidates per /v1/rank).
  std::size_t max_batch_jobs = 1024;

  /// Keep-alive connection with no request in progress.
  int idle_timeout_ms = 30'000;
  /// A request that has started arriving but is incomplete.
  int read_timeout_ms = 10'000;
  /// A response that is not being consumed.
  int write_timeout_ms = 10'000;
  /// Estimation deadline when the request does not set "deadline_ms".
  int default_deadline_ms = 30'000;
  int max_deadline_ms = 300'000;
  /// Answer for 503 responses.
  int retry_after_seconds = 1;
  /// Grace period for in-flight work after request_stop().
  int drain_timeout_ms = 10'000;

  /// Worker threads for the blocking /v1/rank lane.
  unsigned rank_threads = 2;

  /// Optional host-energy meter (not owned; must outlive the server).
  /// When set and live, /metrics exports xtc_host_energy_joules_total and
  /// xtc_energy_joules_per_request, and /healthz reports the backend kind.
  /// nullptr behaves exactly like a NullBackend meter.
  energy::EnergyMeter* energy_meter = nullptr;

  ParserLimits limits;
  Poller::Backend poller_backend = Poller::Backend::kDefault;

  /// Set SO_REUSEPORT on this server's listener so several shards can bind
  /// the same address:port (ShardedServer's reuseport accept mode).
  bool reuse_port = false;
  /// When false the server binds no listener at all and only serves
  /// connections handed to it via adopt_socket() (ShardedServer's
  /// accept-handoff mode).
  bool own_listener = true;
  /// This server's shard index within a ShardedServer (labels only).
  unsigned shard_id = 0;
  /// When set, GET /metrics answers with this body instead of the
  /// shard-local exposition — ShardedServer installs its cluster-aggregated
  /// renderer here. Must be callable from any shard's loop thread.
  std::function<std::string()> metrics_override;
};

class HttpServer {
 public:
  /// Binds and listens immediately (throws exten::Error on failure).
  /// `estimator` must outlive the server.
  HttpServer(service::BatchEstimator& estimator, ServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (useful with options.port == 0).
  std::uint16_t port() const { return port_; }

  /// Runs the event loop until a requested stop has fully drained.
  void run();

  /// Initiates graceful shutdown; async-signal-safe, callable from any
  /// thread. Idempotent.
  void request_stop();

  /// Lifetime request count (valid to read after run() returns).
  std::uint64_t requests_served() const { return metrics_.requests_total(); }

  /// Hands an accepted connection to this server's event loop; safe from
  /// any thread (ShardedServer's accept-handoff mode). The loop adopts it
  /// on its next wakeup; while draining or at max_connections the socket
  /// is simply closed (the client sees a reset, same as a refused accept).
  void adopt_socket(Socket socket);

  // Cross-thread gauges + counters for cluster aggregation (safe from any
  // thread; the mirrors are relaxed atomics updated by the loop thread).
  std::size_t open_connections() const {
    return open_connections_mirror_.load(std::memory_order_relaxed);
  }
  std::size_t inflight_requests() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  MetricsSnapshot metrics_snapshot() const { return metrics_.snapshot(); }

 private:
  struct BatchState {
    std::vector<service::BatchJob> jobs;
    std::vector<service::JobResult> results;
    std::size_t next = 0;       // submission cursor (windowed)
    std::size_t completed = 0;
    std::shared_ptr<service::CancelToken> cancel;
  };

  struct Connection {
    Socket socket;
    RequestParser parser;
    enum class State { kReading, kProcessing, kWriting } state =
        State::kReading;
    std::string outbox;
    std::size_t out_off = 0;
    bool response_keep_alive = true;
    /// Wall-clock timeout (idle/read/write depending on state).
    std::chrono::steady_clock::time_point expiry;
    /// Estimation deadline; meaningful while kProcessing.
    std::chrono::steady_clock::time_point deadline;
    /// Incremented per dispatched request; stale completions are dropped.
    std::uint64_t generation = 0;
    /// True between dispatch and response (the in-flight accounting bit).
    bool dispatched = false;
    std::shared_ptr<service::CancelToken> cancel;
    std::unique_ptr<BatchState> batch;
    /// Metrics label + start time of the request being handled. A string
    /// literal: it doubles as the trace span name (static storage).
    const char* endpoint = "other";
    std::chrono::steady_clock::time_point request_start;
    /// Tracing correlation id for the request being handled (0 when
    /// tracing is off); propagated into every BatchJob it spawns.
    std::uint64_t trace_id = 0;
    /// Accumulated RequestParser::feed() time for the in-progress request.
    double parse_seconds = 0.0;
    /// When finish_request began serializing (the respond stage runs until
    /// the last byte is written).
    std::chrono::steady_clock::time_point respond_start;

    explicit Connection(Socket s, ParserLimits limits)
        : socket(std::move(s)), parser(limits) {}
  };

  struct Completion {
    int fd = -1;
    std::uint64_t generation = 0;
    bool is_job = false;         // else `response` is ready to send
    std::size_t job_index = 0;
    service::JobResult result;
    HttpResponse response;
  };

  using Clock = std::chrono::steady_clock;

  // Event handlers (loop thread only).
  void accept_connections();
  void on_readable(Connection& conn);
  void on_writable(Connection& conn);
  void handle_parsed_request(Connection& conn);
  void route_request(Connection& conn, const HttpRequest& request);
  void dispatch_estimate(Connection& conn, const HttpRequest& request);
  void dispatch_batch(Connection& conn, const HttpRequest& request);
  void dispatch_rank(Connection& conn, const HttpRequest& request);
  void pump_batch(Connection& conn);
  void finish_request(Connection& conn, HttpResponse response);
  void start_reading(Connection& conn);
  void close_connection(int fd);
  void adopt_pending();
  void handle_completions();
  void handle_timeouts(Clock::time_point now);
  void begin_drain();
  int next_timeout_ms(Clock::time_point now) const;
  int resolve_deadline_ms(int requested) const;
  MetricsGauges gauges() const;

  // Worker-side (any thread).
  void post_completion(Completion completion);

  service::BatchEstimator& estimator_;
  ServerOptions options_;
  std::uint16_t port_ = 0;

  Socket listener_;
  Socket wake_pipe_[2];
  Poller poller_;
  service::ThreadPool rank_pool_;

  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  /// Atomic only so other shards can read it for the aggregated gauges;
  /// all writes happen on the loop thread.
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::size_t> open_connections_mirror_{0};
  ServerMetrics metrics_;
  bool draining_ = false;
  bool running_ = false;
  Clock::time_point drain_deadline_;

  std::atomic<bool> stop_requested_{false};
  /// Worker callbacks not yet finished posting; run() waits for zero
  /// before returning so no callback can outlive the server.
  std::atomic<std::size_t> outstanding_jobs_{0};

  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  /// Connections handed over by ShardedServer's acceptor, waiting for the
  /// loop thread to adopt them.
  std::mutex adopted_mu_;
  std::vector<Socket> adopted_;
};

}  // namespace exten::net
