#pragma once

// Thin POSIX TCP layer for the estimation server and its client: an RAII
// file-descriptor wrapper plus listener/connect helpers. Everything above
// this file (parser, event loop) works on plain fds and byte buffers, so
// it stays unit-testable without a network.

#include <cstdint>
#include <string>

namespace exten::net {

/// Move-only owner of a file descriptor (socket or pipe end).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.release()) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.release();
    }
    return *this;
  }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Relinquishes ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  void close();

 private:
  int fd_ = -1;
};

/// O_NONBLOCK on/off; throws exten::Error on fcntl failure.
void set_nonblocking(int fd, bool on);

/// TCP_NODELAY (disable Nagle — the server exchanges small messages).
void set_nodelay(int fd);

/// Creates a listening TCP socket bound to `address`:`*port` (SO_REUSEADDR,
/// non-blocking). `*port` == 0 picks an ephemeral port; the bound port is
/// written back. With `reuse_port`, SO_REUSEPORT is also set so several
/// listeners (one per server shard) can bind the same address:port and let
/// the kernel load-balance accepts across them; throws when the platform
/// has no SO_REUSEPORT. Throws exten::Error on failure.
Socket listen_tcp(const std::string& address, std::uint16_t* port,
                  int backlog = 128, bool reuse_port = false);

/// True when this build/platform supports SO_REUSEPORT listeners (the
/// sharded server falls back to accept-handoff when it does not).
bool reuse_port_supported();

/// Blocking connect with a millisecond timeout; the returned socket is in
/// blocking mode with SO_RCVTIMEO/SO_SNDTIMEO set to `timeout_ms`.
/// Throws exten::Error on failure or timeout.
Socket connect_tcp(const std::string& address, std::uint16_t port,
                   int timeout_ms);

/// Non-blocking wakeup pipe (self-pipe trick): `fds[0]` is the read end.
/// Writing one byte to `fds[1]` is async-signal-safe, which is what lets a
/// SIGTERM handler nudge the event loop.
void make_wake_pipe(Socket fds[2]);

}  // namespace exten::net
