#pragma once

// Minimal blocking HTTP/1.1 client for the estimation server: used by the
// CI smoke test, the throughput benchmark, and the xtc-http CLI. One
// connection, keep-alive, with a single transparent reconnect when the
// server closed an idle connection between requests.

#include <cstdint>
#include <string>
#include <string_view>

#include "net/http.h"
#include "net/socket.h"

namespace exten::net {

class HttpClient {
 public:
  /// Lazily connects on the first request. `timeout_ms` bounds connect,
  /// send and receive individually.
  HttpClient(std::string host, std::uint16_t port, int timeout_ms = 10'000);

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  HttpClient(HttpClient&&) = default;
  HttpClient& operator=(HttpClient&&) = default;

  /// Sends one request and blocks for the response. Throws exten::Error on
  /// transport failure or malformed response; HTTP error statuses are
  /// returned, not thrown.
  ResponseParser::Response get(std::string_view target);
  ResponseParser::Response post(std::string_view target, std::string_view body,
                                std::string_view content_type =
                                    "application/json");

  bool connected() const { return socket_.valid(); }
  void disconnect() { socket_.close(); }

 private:
  ResponseParser::Response round_trip(std::string_view method,
                                      std::string_view target,
                                      std::string_view body,
                                      std::string_view content_type);
  /// One attempt on the current connection; throws on any transport error.
  ResponseParser::Response attempt(const std::string& wire);
  void ensure_connected();

  std::string host_;
  std::uint16_t port_;
  int timeout_ms_;
  Socket socket_;
  /// True when at least one response arrived on this connection — i.e. a
  /// subsequent failure may just be an idle keep-alive close, worth one
  /// reconnect-and-retry.
  bool reused_ = false;
};

}  // namespace exten::net
