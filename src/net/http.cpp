#include "net/http.h"

#include <algorithm>
#include <cctype>

#include "util/strings.h"

namespace exten::net {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// RFC 7230 token characters (method and header names).
bool is_token_char(char c) {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  return std::string_view("!#$%&'*+-.^_`|~").find(c) != std::string_view::npos;
}

bool is_token(std::string_view s) {
  return !s.empty() && std::all_of(s.begin(), s.end(), is_token_char);
}

/// Strict decimal parse for Content-Length (no sign, no whitespace).
bool parse_content_length(std::string_view s, std::size_t* out) {
  if (s.empty() || s.size() > 15) return false;
  std::size_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

const std::string* find_header(const std::vector<Header>& headers,
                               std::string_view name) {
  for (const Header& header : headers) {
    if (iequals(header.name, name)) return &header.value;
  }
  return nullptr;
}

std::string_view HttpRequest::path() const {
  const std::string_view t(target);
  const std::size_t query = t.find('?');
  return query == std::string_view::npos ? t : t.substr(0, query);
}

bool HttpRequest::keep_alive() const {
  if (const std::string* connection = header("Connection")) {
    if (iequals(*connection, "close")) return false;
    if (iequals(*connection, "keep-alive")) return true;
  }
  return version != "HTTP/1.0";
}

std::string_view status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string serialize_response(const HttpResponse& response, bool keep_alive) {
  std::string out;
  out.reserve(128 + response.body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += status_reason(response.status);
  out += "\r\n";
  if (!response.content_type.empty()) {
    out += "Content-Type: ";
    out += response.content_type;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\n";
  for (const Header& header : response.extra_headers) {
    out += header.name;
    out += ": ";
    out += header.value;
    out += "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

std::string serialize_request(std::string_view method, std::string_view target,
                              std::string_view host, std::string_view body,
                              std::string_view content_type,
                              const std::vector<Header>& extra_headers) {
  std::string out;
  out.reserve(128 + body.size());
  out += method;
  out += ' ';
  out += target;
  out += " HTTP/1.1\r\nHost: ";
  out += host;
  out += "\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    if (!content_type.empty()) {
      out += "Content-Type: ";
      out += content_type;
      out += "\r\n";
    }
    out += "Content-Length: ";
    out += std::to_string(body.size());
    out += "\r\n";
  }
  for (const Header& header : extra_headers) {
    out += header.name;
    out += ": ";
    out += header.value;
    out += "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

// ---------------------------------------------------------------------------
// RequestParser
// ---------------------------------------------------------------------------

RequestParser::Status RequestParser::feed(std::string_view bytes) {
  if (status_ == Status::kError) return status_;
  buffer_.append(bytes.data(), bytes.size());
  if (status_ == Status::kComplete) return status_;  // pipelined bytes wait
  advance();
  return status_;
}

void RequestParser::fail(int status, std::string reason) {
  status_ = Status::kError;
  error_status_ = status;
  error_reason_ = std::move(reason);
}

bool RequestParser::next_line(std::string_view* line, std::size_t limit,
                              int limit_status) {
  const std::size_t nl = buffer_.find('\n', pos_);
  if (nl == std::string::npos) {
    if (buffer_.size() - pos_ > limit) {
      fail(limit_status, "line exceeds limit");
    }
    return false;
  }
  if (nl - pos_ > limit) {
    fail(limit_status, "line exceeds limit");
    return false;
  }
  std::size_t end = nl;
  if (end > pos_ && buffer_[end - 1] == '\r') --end;
  *line = std::string_view(buffer_).substr(pos_, end - pos_);
  pos_ = nl + 1;
  return true;
}

bool RequestParser::parse_request_line(std::string_view line) {
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    fail(400, "malformed request line");
    return false;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (!is_token(method)) {
    fail(400, "invalid method");
    return false;
  }
  if (target.empty() || target[0] != '/') {
    fail(400, "invalid request target");
    return false;
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    fail(505, "unsupported HTTP version");
    return false;
  }
  request_.method = std::string(method);
  request_.target = std::string(target);
  request_.version = std::string(version);
  return true;
}

bool RequestParser::parse_header_line(std::string_view line) {
  if (line[0] == ' ' || line[0] == '\t') {
    fail(400, "obsolete header folding");
    return false;
  }
  const std::size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    fail(400, "malformed header");
    return false;
  }
  const std::string_view name = line.substr(0, colon);
  if (!is_token(name)) {
    fail(400, "invalid header name");
    return false;
  }
  request_.headers.push_back(
      {std::string(name), std::string(trim(line.substr(colon + 1)))});
  return true;
}

bool RequestParser::finish_headers() {
  if (request_.header("Transfer-Encoding") != nullptr) {
    fail(501, "transfer encodings not supported");
    return false;
  }
  body_length_ = 0;
  if (const std::string* length = request_.header("Content-Length")) {
    if (!parse_content_length(*length, &body_length_)) {
      fail(400, "invalid Content-Length");
      return false;
    }
    if (body_length_ > limits_.max_body_bytes) {
      fail(413, "body exceeds limit");
      return false;
    }
  }
  return true;
}

void RequestParser::advance() {
  while (status_ == Status::kNeedMore) {
    if (phase_ == Phase::kRequestLine) {
      std::string_view line;
      if (!next_line(&line, limits_.max_request_line, 431)) return;
      if (line.empty()) continue;  // tolerate leading blank lines (RFC 7230)
      if (!parse_request_line(line)) return;
      header_bytes_ = 0;
      phase_ = Phase::kHeaders;
    } else if (phase_ == Phase::kHeaders) {
      const std::size_t before = pos_;
      std::string_view line;
      if (!next_line(&line, limits_.max_header_bytes, 431)) {
        if (status_ != Status::kError &&
            header_bytes_ + (buffer_.size() - pos_) >
                limits_.max_header_bytes) {
          fail(431, "header section exceeds limit");
        }
        return;
      }
      header_bytes_ += pos_ - before;
      if (header_bytes_ > limits_.max_header_bytes) {
        fail(431, "header section exceeds limit");
        return;
      }
      if (line.empty()) {
        if (!finish_headers()) return;
        phase_ = Phase::kBody;
      } else if (!parse_header_line(line)) {
        return;
      }
    } else if (phase_ == Phase::kBody) {
      if (buffer_.size() - pos_ < body_length_) return;
      request_.body = buffer_.substr(pos_, body_length_);
      pos_ += body_length_;
      phase_ = Phase::kDone;
      status_ = Status::kComplete;
    }
  }
}

void RequestParser::reset() {
  if (status_ == Status::kError) return;
  // Drop the consumed prefix, keep pipelined bytes.
  buffer_.erase(0, pos_);
  pos_ = 0;
  header_bytes_ = 0;
  body_length_ = 0;
  request_ = HttpRequest{};
  phase_ = Phase::kRequestLine;
  status_ = Status::kNeedMore;
  advance();
}

// ---------------------------------------------------------------------------
// ResponseParser
// ---------------------------------------------------------------------------

ResponseParser::Status ResponseParser::feed(std::string_view bytes) {
  if (status_ != Status::kNeedMore) return status_;
  buffer_.append(bytes.data(), bytes.size());
  advance();
  return status_;
}

ResponseParser::Status ResponseParser::feed_eof() {
  if (status_ != Status::kNeedMore) return status_;
  if (phase_ == Phase::kBody && !have_length_) {
    response_.body = buffer_.substr(pos_);
    pos_ = buffer_.size();
    phase_ = Phase::kDone;
    status_ = Status::kComplete;
  } else {
    fail("connection closed mid-response");
  }
  return status_;
}

void ResponseParser::fail(std::string reason) {
  status_ = Status::kError;
  error_reason_ = std::move(reason);
}

bool ResponseParser::next_line(std::string_view* line) {
  const std::size_t nl = buffer_.find('\n', pos_);
  if (nl == std::string::npos) return false;
  std::size_t end = nl;
  if (end > pos_ && buffer_[end - 1] == '\r') --end;
  *line = std::string_view(buffer_).substr(pos_, end - pos_);
  pos_ = nl + 1;
  return true;
}

void ResponseParser::advance() {
  while (status_ == Status::kNeedMore) {
    if (phase_ == Phase::kStatusLine) {
      std::string_view line;
      if (!next_line(&line)) return;
      if (line.empty()) continue;
      // "HTTP/1.1 200 OK" — the reason phrase may contain spaces.
      const std::size_t sp1 = line.find(' ');
      if (sp1 == std::string_view::npos || !starts_with(line, "HTTP/")) {
        fail("malformed status line");
        return;
      }
      const std::size_t sp2 = line.find(' ', sp1 + 1);
      const std::string_view code = line.substr(
          sp1 + 1, sp2 == std::string_view::npos ? line.size() : sp2 - sp1 - 1);
      std::int64_t status = 0;
      if (!parse_int(code, &status) || status < 100 || status > 599) {
        fail("malformed status code");
        return;
      }
      response_.version = std::string(line.substr(0, sp1));
      response_.status = static_cast<int>(status);
      response_.reason = sp2 == std::string_view::npos
                             ? std::string()
                             : std::string(line.substr(sp2 + 1));
      phase_ = Phase::kHeaders;
    } else if (phase_ == Phase::kHeaders) {
      std::string_view line;
      if (!next_line(&line)) return;
      if (line.empty()) {
        have_length_ = false;
        body_length_ = 0;
        if (const std::string* length =
                response_.header("Content-Length")) {
          if (!parse_content_length(*length, &body_length_)) {
            fail("invalid Content-Length");
            return;
          }
          have_length_ = true;
        }
        phase_ = Phase::kBody;
      } else {
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos || colon == 0) {
          fail("malformed header");
          return;
        }
        response_.headers.push_back({std::string(line.substr(0, colon)),
                                     std::string(trim(line.substr(colon + 1)))});
      }
    } else if (phase_ == Phase::kBody) {
      if (!have_length_) return;  // close-delimited: wait for feed_eof()
      if (buffer_.size() - pos_ < body_length_) return;
      response_.body = buffer_.substr(pos_, body_length_);
      pos_ += body_length_;
      phase_ = Phase::kDone;
      status_ = Status::kComplete;
    }
  }
}

}  // namespace exten::net
