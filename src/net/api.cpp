#include "net/api.h"

#include <map>
#include <utility>

#include "model/variables.h"
#include "util/error.h"

namespace exten::net::api {

namespace {

/// Member `key` as a non-negative integer, or `fallback` when absent.
std::int64_t int_or(const JsonValue& v, std::string_view key,
                    std::int64_t fallback) {
  const JsonValue* member = v.find(key);
  if (member == nullptr || member->is_null()) return fallback;
  const double number = member->as_number();
  EXTEN_CHECK(number >= 0 && number == static_cast<double>(
                                           static_cast<std::int64_t>(number)),
              "\"", key, "\" must be a non-negative integer");
  return static_cast<std::int64_t>(number);
}

/// Compiles a TIE source, memoizing identical sources within one request
/// so batch jobs naming the same extension share a configuration.
class TieCompiler {
 public:
  std::shared_ptr<const tie::TieConfiguration> compile(
      const std::string& source) {
    auto [it, inserted] = by_source_.try_emplace(source);
    if (inserted) {
      if (source.empty()) {
        it->second = std::make_shared<const tie::TieConfiguration>();
      } else {
        it->second = std::make_shared<const tie::TieConfiguration>(
            tie::compile_tie_source(source));
      }
    }
    return it->second;
  }

 private:
  std::map<std::string, std::shared_ptr<const tie::TieConfiguration>>
      by_source_;
};

EstimateRequest parse_one_estimate(const JsonValue& v, TieCompiler& tie) {
  EXTEN_CHECK(v.is_object(), "request must be a JSON object");
  EstimateRequest request;
  const JsonValue* asm_member = v.find("asm");
  EXTEN_CHECK(asm_member != nullptr, "missing \"asm\" member");
  const std::string& asm_source = asm_member->as_string();
  EXTEN_CHECK(!asm_source.empty(), "\"asm\" must be non-empty");

  std::string tie_source;
  if (const JsonValue* tie_member = v.find("tie");
      tie_member != nullptr && !tie_member->is_null()) {
    tie_source = tie_member->as_string();
  }

  request.job.name = v.string_or("name", "anonymous");
  request.job.program = model::make_test_program(
      request.job.name, asm_source, tie.compile(tie_source));
  request.deadline_ms = static_cast<int>(int_or(v, "deadline_ms", 0));
  request.job.max_instructions =
      static_cast<std::uint64_t>(int_or(v, "max_instructions", 0));
  return request;
}

}  // namespace

EstimateRequest parse_estimate_request(const JsonValue& v) {
  TieCompiler tie;
  return parse_one_estimate(v, tie);
}

BatchRequest parse_batch_request(const JsonValue& v, std::size_t max_jobs) {
  EXTEN_CHECK(v.is_object(), "request must be a JSON object");
  const JsonValue* jobs = v.find("jobs");
  EXTEN_CHECK(jobs != nullptr, "missing \"jobs\" member");
  const JsonValue::Array& array = jobs->as_array();
  EXTEN_CHECK(!array.empty(), "\"jobs\" must be non-empty");
  EXTEN_CHECK(array.size() <= max_jobs, "\"jobs\" has ", array.size(),
              " entries, limit is ", max_jobs);

  BatchRequest request;
  request.deadline_ms = static_cast<int>(int_or(v, "deadline_ms", 0));
  TieCompiler tie;
  request.jobs.reserve(array.size());
  for (std::size_t i = 0; i < array.size(); ++i) {
    try {
      request.jobs.push_back(parse_one_estimate(array[i], tie));
    } catch (const Error& e) {
      throw Error("jobs[", i, "]: ", e.what());
    }
  }
  return request;
}

RankRequest parse_rank_request(const JsonValue& v, std::size_t max_jobs) {
  EXTEN_CHECK(v.is_object(), "request must be a JSON object");
  const JsonValue* candidates = v.find("candidates");
  EXTEN_CHECK(candidates != nullptr, "missing \"candidates\" member");
  const JsonValue::Array& array = candidates->as_array();
  EXTEN_CHECK(!array.empty(), "\"candidates\" must be non-empty");
  EXTEN_CHECK(array.size() <= max_jobs, "\"candidates\" has ", array.size(),
              " entries, limit is ", max_jobs);

  RankRequest request;
  request.deadline_ms = static_cast<int>(int_or(v, "deadline_ms", 0));
  const std::string objective = v.string_or("objective", "edp");
  if (objective == "energy") {
    request.objective = explore::Objective::kEnergy;
  } else if (objective == "delay") {
    request.objective = explore::Objective::kDelay;
  } else if (objective == "edp") {
    request.objective = explore::Objective::kEdp;
  } else {
    throw Error("unknown objective \"", objective,
                "\" (energy|delay|edp)");
  }

  TieCompiler tie;
  request.candidates.reserve(array.size());
  for (std::size_t i = 0; i < array.size(); ++i) {
    try {
      EstimateRequest parsed = parse_one_estimate(array[i], tie);
      request.candidates.push_back(
          {parsed.job.name, std::move(parsed.job.program)});
    } catch (const Error& e) {
      throw Error("candidates[", i, "]: ", e.what());
    }
  }
  return request;
}

namespace {

void write_job_result(JsonWriter& w, const service::JobResult& result,
                      const model::EnergyMacroModel& model) {
  w.field("name", std::string_view(result.name));
  w.field("ok", result.ok);
  if (!result.ok) {
    w.field("error", std::string_view(result.error));
    w.field("cancelled", result.cancelled);
    return;
  }
  const model::EnergyEstimate& e = result.estimate;
  w.field("energy_pj", e.energy_pj);
  w.field("energy_uj", e.energy_uj());
  w.field("cycles", static_cast<std::uint64_t>(e.stats.cycles));
  w.field("instructions", static_cast<std::uint64_t>(e.stats.instructions));
  w.field("cpi", e.stats.cpi());
  w.field("cache_hit", result.cache_hit);
  w.field("eval_seconds", e.elapsed_seconds);
  w.field("worker_seconds", result.worker_seconds);
  // Per-stage attribution of the job's service-side time (queue wait is
  // outside worker_seconds; the others are subsets of it).
  w.object_field("stages");
  w.field("queue_seconds", result.timings.queue_seconds);
  w.field("cache_probe_seconds", result.timings.cache_probe_seconds);
  w.field("evaluate_seconds", result.timings.evaluate_seconds);
  w.end_object();
  // Per-variable energy breakdown (Table I terms): only the variables
  // that actually contribute, to keep warm-path responses small.
  w.object_field("breakdown_pj");
  for (std::size_t i = 0; i < model::kNumVariables; ++i) {
    const double contribution = e.variables[i] * model.coefficient(i);
    if (contribution != 0.0) {
      w.field(model::variable_name(i), contribution);
    }
  }
  w.end_object();
}

}  // namespace

std::string job_result_body(const service::JobResult& result,
                            const model::EnergyMacroModel& model) {
  JsonWriter w;
  w.begin_object();
  write_job_result(w, result, model);
  w.end_object();
  return w.str();
}

std::string batch_result_body(const std::vector<service::JobResult>& results,
                              const model::EnergyMacroModel& model) {
  std::size_t succeeded = 0;
  for (const service::JobResult& r : results) {
    if (r.ok) ++succeeded;
  }
  JsonWriter w;
  w.begin_object();
  w.field("jobs", static_cast<std::uint64_t>(results.size()));
  w.field("succeeded", static_cast<std::uint64_t>(succeeded));
  w.field("failed",
          static_cast<std::uint64_t>(results.size() - succeeded));
  w.array_field("results");
  for (const service::JobResult& r : results) {
    w.element_object();
    write_job_result(w, r, model);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string rank_result_body(const explore::ExploreResult& result) {
  JsonWriter w;
  w.begin_object();
  switch (result.objective) {
    case explore::Objective::kEnergy:
      w.field("objective", std::string_view("energy"));
      break;
    case explore::Objective::kDelay:
      w.field("objective", std::string_view("delay"));
      break;
    case explore::Objective::kEdp:
      w.field("objective", std::string_view("edp"));
      break;
  }
  w.array_field("ranked");
  for (const explore::Evaluation& eval : result.ranked) {
    w.element_object();
    w.field("name", std::string_view(eval.name));
    w.field("energy_pj", eval.energy_pj);
    w.field("cycles", static_cast<std::uint64_t>(eval.cycles));
    w.field("edp", eval.edp);
    w.field("pareto_optimal", eval.pareto_optimal);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string error_body(std::string_view message) {
  JsonWriter w;
  w.begin_object();
  w.field("error", message);
  w.end_object();
  return w.str();
}

}  // namespace exten::net::api
