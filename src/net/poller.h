#pragma once

// Readiness multiplexer: epoll on Linux, with a portable poll(2) backend
// that is also selectable at runtime (ServerOptions::poller_backend) so
// the fallback path stays tested on Linux CI rather than rotting until
// someone builds on a BSD.
//
// Level-triggered semantics in both backends: an fd keeps reporting
// readable/writable while the condition holds, so the event loop never
// needs to drain a socket completely in one pass.

#include <cstddef>
#include <vector>

namespace exten::net {

class Poller {
 public:
  enum class Backend {
    kDefault,  ///< epoll where available, poll otherwise
    kEpoll,    ///< throws at construction on non-Linux builds
    kPoll,
  };

  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    /// Peer hangup or socket error — the connection should be torn down.
    bool hangup = false;
  };

  explicit Poller(Backend backend = Backend::kDefault);
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// The backend actually in use (kDefault resolved).
  Backend backend() const { return backend_; }

  /// Registers `fd` with the given interest set (either flag may be false
  /// — hangup/error conditions are always reported).
  void add(int fd, bool read, bool write);
  /// Updates the interest set of a registered fd.
  void mod(int fd, bool read, bool write);
  /// Deregisters; must be called before the fd is closed.
  void remove(int fd);

  std::size_t watched() const { return watched_; }

  /// Waits up to `timeout_ms` (-1 = forever, 0 = poll) and returns the
  /// ready events. The reference is valid until the next wait() call.
  const std::vector<Event>& wait(int timeout_ms);

 private:
  struct PollEntry {
    int fd;
    short events;
  };

  Backend backend_;
  std::size_t watched_ = 0;
  int epoll_fd_ = -1;
  std::vector<PollEntry> poll_entries_;  // poll backend registry
  std::vector<Event> events_;
};

}  // namespace exten::net
