#include "net/metrics.h"

#include <cstdio>
#include <sstream>

namespace exten::net {

LatencyHistogram::LatencyHistogram() {
  // 1-2.5-5 decade ladder from 100us to 10s: enough resolution to tell a
  // cache hit (sub-ms) from a cold simulation (tens of ms to seconds).
  for (double decade = 1e-4; decade < 10.0; decade *= 10.0) {
    bounds_.push_back(decade);
    bounds_.push_back(decade * 2.5);
    bounds_.push_back(decade * 5.0);
  }
  bounds_.push_back(10.0);
  counts_.assign(bounds_.size() + 1, 0);
}

void LatencyHistogram::observe(double seconds) {
  std::size_t bucket = bounds_.size();  // overflow
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (seconds <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++count_;
  sum_seconds_ += seconds;
}

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) >= target) {
      return i < bounds_.size() ? bounds_[i] : bounds_.back();
    }
  }
  return bounds_.back();
}

void ServerMetrics::record_request(std::string_view endpoint, int status,
                                   double seconds) {
  ++requests_[{std::string(endpoint), status}];
  latency_.observe(seconds);
}

namespace {
std::string format_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}
}  // namespace

std::string ServerMetrics::render(const MetricsGauges& gauges) const {
  std::ostringstream out;
  out << "# TYPE xtc_requests_total counter\n";
  for (const auto& [key, count] : requests_) {
    out << "xtc_requests_total{endpoint=\"" << key.first << "\",code=\""
        << key.second << "\"} " << count << "\n";
  }
  out << "# TYPE xtc_request_duration_seconds histogram\n";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < latency_.bounds().size(); ++i) {
    cumulative += latency_.counts()[i];
    out << "xtc_request_duration_seconds_bucket{le=\""
        << format_double(latency_.bounds()[i]) << "\"} " << cumulative
        << "\n";
  }
  out << "xtc_request_duration_seconds_bucket{le=\"+Inf\"} "
      << latency_.count() << "\n";
  out << "xtc_request_duration_seconds_sum "
      << format_double(latency_.sum_seconds()) << "\n";
  out << "xtc_request_duration_seconds_count " << latency_.count() << "\n";

  out << "# TYPE xtc_connections_accepted_total counter\n"
      << "xtc_connections_accepted_total " << connections_accepted_ << "\n";
  out << "# TYPE xtc_backpressure_rejections_total counter\n"
      << "xtc_backpressure_rejections_total " << backpressure_rejections_
      << "\n";
  out << "# TYPE xtc_deadline_expiries_total counter\n"
      << "xtc_deadline_expiries_total " << deadline_expiries_ << "\n";
  out << "# TYPE xtc_parse_errors_total counter\n"
      << "xtc_parse_errors_total " << parse_errors_ << "\n";

  out << "# TYPE xtc_open_connections gauge\n"
      << "xtc_open_connections " << gauges.open_connections << "\n";
  out << "# TYPE xtc_inflight_requests gauge\n"
      << "xtc_inflight_requests " << gauges.inflight_requests << "\n";
  out << "# TYPE xtc_queue_depth gauge\n"
      << "xtc_queue_depth " << gauges.queue_depth << "\n";
  out << "# TYPE xtc_queue_capacity gauge\n"
      << "xtc_queue_capacity " << gauges.queue_capacity << "\n";
  out << "# TYPE xtc_draining gauge\n"
      << "xtc_draining " << (gauges.draining ? 1 : 0) << "\n";

  out << "# TYPE xtc_eval_cache_hits_total counter\n"
      << "xtc_eval_cache_hits_total " << gauges.cache.hits << "\n";
  out << "# TYPE xtc_eval_cache_misses_total counter\n"
      << "xtc_eval_cache_misses_total " << gauges.cache.misses << "\n";
  out << "# TYPE xtc_eval_cache_evictions_total counter\n"
      << "xtc_eval_cache_evictions_total " << gauges.cache.evictions << "\n";
  out << "# TYPE xtc_eval_cache_entries gauge\n"
      << "xtc_eval_cache_entries " << gauges.cache.entries << "\n";
  out << "# TYPE xtc_eval_cache_bytes gauge\n"
      << "xtc_eval_cache_bytes " << gauges.cache.approx_bytes << "\n";
  out << "# TYPE xtc_eval_cache_hit_rate gauge\n"
      << "xtc_eval_cache_hit_rate " << format_double(gauges.cache.hit_rate())
      << "\n";
  return out.str();
}

}  // namespace exten::net
