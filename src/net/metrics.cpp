#include "net/metrics.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

namespace exten::net {

LatencyHistogram::LatencyHistogram() {
  // 1-2.5-5 decade ladder from 100us to 10s: enough resolution to tell a
  // cache hit (sub-ms) from a cold simulation (tens of ms to seconds).
  for (double decade = 1e-4; decade < 10.0; decade *= 10.0) {
    bounds_.push_back(decade);
    bounds_.push_back(decade * 2.5);
    bounds_.push_back(decade * 5.0);
  }
  bounds_.push_back(10.0);
  counts_.assign(bounds_.size() + 1, 0);
}

void LatencyHistogram::observe(double seconds) {
  std::size_t bucket = bounds_.size();  // overflow
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (seconds <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++count_;
  sum_seconds_ += seconds;
}

double LatencyHistogram::quantile(double q, bool* is_overflow) const {
  if (is_overflow != nullptr) *is_overflow = false;
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) >= target) {
      if (i < bounds_.size()) return bounds_[i];
      break;  // quantile lands in the overflow bucket
    }
  }
  // Observations above the top bound have no finite upper estimate;
  // reporting bounds_.back() here would silently cap the p99 of a
  // degraded server.
  if (is_overflow != nullptr) *is_overflow = true;
  return std::numeric_limits<double>::infinity();
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_seconds_ += other.sum_seconds_;
}

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kParse: return "parse";
    case Stage::kRoute: return "route";
    case Stage::kQueueWait: return "queue_wait";
    case Stage::kCacheProbe: return "cache_probe";
    case Stage::kEvaluate: return "evaluate";
    case Stage::kRespond: return "respond";
  }
  return "unknown";
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [key, count] : other.requests) {
    requests[key] += count;
  }
  latency.merge(other.latency);
  for (std::size_t s = 0; s < kNumStages; ++s) {
    stage_latency[s].merge(other.stage_latency[s]);
  }
  connections_accepted += other.connections_accepted;
  backpressure_rejections += other.backpressure_rejections;
  deadline_expiries += other.deadline_expiries;
  parse_errors += other.parse_errors;
}

void ServerMetrics::record_request(std::string_view endpoint, int status,
                                   double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.requests[{std::string(endpoint), status}];
  counters_.latency.observe(seconds);
}

void ServerMetrics::observe_stage(Stage stage, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.stage_latency[static_cast<std::size_t>(stage)].observe(seconds);
}

LatencyHistogram ServerMetrics::stage_latency(Stage stage) const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.stage_latency[static_cast<std::size_t>(stage)];
}

void ServerMetrics::on_connection_opened() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.connections_accepted;
}

void ServerMetrics::on_backpressure_rejection() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.backpressure_rejections;
}

void ServerMetrics::on_deadline_expiry() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.deadline_expiries;
}

void ServerMetrics::on_parse_error() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.parse_errors;
}

std::uint64_t ServerMetrics::requests_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.requests_total();
}

std::uint64_t ServerMetrics::connections_accepted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.connections_accepted;
}

std::uint64_t ServerMetrics::backpressure_rejections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.backpressure_rejections;
}

std::uint64_t ServerMetrics::deadline_expiries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.deadline_expiries;
}

MetricsSnapshot ServerMetrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

namespace {

std::string format_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

/// Escapes a label value per the Prometheus text format: backslash,
/// double quote and newline must be written as \\, \" and \n.
std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

void render_histogram(std::ostream& out, const std::string& name,
                      const std::string& extra_label,
                      const LatencyHistogram& histogram) {
  // `le` buckets are cumulative in the exposition; counts() is per-bucket.
  const std::string labels_open =
      extra_label.empty() ? "{" : "{" + extra_label + ",";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < histogram.bounds().size(); ++i) {
    cumulative += histogram.counts()[i];
    out << name << "_bucket" << labels_open << "le=\""
        << format_double(histogram.bounds()[i]) << "\"} " << cumulative
        << "\n";
  }
  out << name << "_bucket" << labels_open << "le=\"+Inf\"} "
      << histogram.count() << "\n";
  const std::string labels =
      extra_label.empty() ? "" : "{" + extra_label + "}";
  out << name << "_sum" << labels << " "
      << format_double(histogram.sum_seconds()) << "\n";
  out << name << "_count" << labels << " " << histogram.count() << "\n";
}

}  // namespace

std::string ServerMetrics::render(const MetricsGauges& gauges) const {
  return render_metrics(snapshot(), gauges);
}

std::string render_metrics(const MetricsSnapshot& snapshot,
                           const MetricsGauges& gauges,
                           const std::vector<ShardSample>& shards) {
  std::ostringstream out;
  out << "# HELP xtc_requests_total Finished HTTP exchanges by endpoint "
         "and status code.\n"
      << "# TYPE xtc_requests_total counter\n";
  for (const auto& [key, count] : snapshot.requests) {
    out << "xtc_requests_total{endpoint=\"" << escape_label_value(key.first)
        << "\",code=\"" << key.second << "\"} " << count << "\n";
  }

  out << "# HELP xtc_request_duration_seconds End-to-end request latency "
         "(parse complete to response recorded).\n"
      << "# TYPE xtc_request_duration_seconds histogram\n";
  render_histogram(out, "xtc_request_duration_seconds", "",
                   snapshot.latency);

  out << "# HELP xtc_stage_duration_seconds Per-stage request processing "
         "time (queueing, cache probe, evaluation, ...).\n"
      << "# TYPE xtc_stage_duration_seconds histogram\n";
  for (std::size_t s = 0; s < kNumStages; ++s) {
    render_histogram(
        out, "xtc_stage_duration_seconds",
        "stage=\"" +
            escape_label_value(stage_name(static_cast<Stage>(s))) + "\"",
        snapshot.stage_latency[s]);
  }

  out << "# HELP xtc_connections_accepted_total TCP connections accepted.\n"
      << "# TYPE xtc_connections_accepted_total counter\n"
      << "xtc_connections_accepted_total " << snapshot.connections_accepted
      << "\n";
  out << "# HELP xtc_backpressure_rejections_total Requests answered 503 "
         "because the server or queue was full.\n"
      << "# TYPE xtc_backpressure_rejections_total counter\n"
      << "xtc_backpressure_rejections_total "
      << snapshot.backpressure_rejections << "\n";
  out << "# HELP xtc_deadline_expiries_total Requests answered 504 after "
         "their deadline expired.\n"
      << "# TYPE xtc_deadline_expiries_total counter\n"
      << "xtc_deadline_expiries_total " << snapshot.deadline_expiries << "\n";
  out << "# HELP xtc_parse_errors_total Malformed HTTP requests.\n"
      << "# TYPE xtc_parse_errors_total counter\n"
      << "xtc_parse_errors_total " << snapshot.parse_errors << "\n";

  out << "# HELP xtc_shards Event-loop shards serving this exposition.\n"
      << "# TYPE xtc_shards gauge\n"
      << "xtc_shards " << gauges.shards << "\n";
  if (!shards.empty()) {
    // Per-shard attribution on top of the aggregated families above: the
    // sums across shard="N" must equal the aggregate counters, which is
    // exactly what the multi-shard test battery asserts.
    out << "# HELP xtc_shard_requests_total Finished HTTP exchanges per "
           "event-loop shard.\n"
        << "# TYPE xtc_shard_requests_total counter\n";
    for (const ShardSample& s : shards) {
      out << "xtc_shard_requests_total{shard=\"" << s.shard << "\"} "
          << s.requests << "\n";
    }
    out << "# HELP xtc_shard_connections_accepted_total TCP connections "
           "accepted per event-loop shard.\n"
        << "# TYPE xtc_shard_connections_accepted_total counter\n";
    for (const ShardSample& s : shards) {
      out << "xtc_shard_connections_accepted_total{shard=\"" << s.shard
          << "\"} " << s.connections_accepted << "\n";
    }
    out << "# HELP xtc_shard_backpressure_rejections_total 503 answers per "
           "event-loop shard.\n"
        << "# TYPE xtc_shard_backpressure_rejections_total counter\n";
    for (const ShardSample& s : shards) {
      out << "xtc_shard_backpressure_rejections_total{shard=\"" << s.shard
          << "\"} " << s.backpressure_rejections << "\n";
    }
    out << "# HELP xtc_shard_deadline_expiries_total 504 answers per "
           "event-loop shard.\n"
        << "# TYPE xtc_shard_deadline_expiries_total counter\n";
    for (const ShardSample& s : shards) {
      out << "xtc_shard_deadline_expiries_total{shard=\"" << s.shard
          << "\"} " << s.deadline_expiries << "\n";
    }
    out << "# HELP xtc_shard_open_connections Currently open connections "
           "per event-loop shard.\n"
        << "# TYPE xtc_shard_open_connections gauge\n";
    for (const ShardSample& s : shards) {
      out << "xtc_shard_open_connections{shard=\"" << s.shard << "\"} "
          << s.open_connections << "\n";
    }
    out << "# HELP xtc_shard_inflight_requests Admitted-but-unanswered "
           "requests per event-loop shard.\n"
        << "# TYPE xtc_shard_inflight_requests gauge\n";
    for (const ShardSample& s : shards) {
      out << "xtc_shard_inflight_requests{shard=\"" << s.shard << "\"} "
          << s.inflight_requests << "\n";
    }
  }

  out << "# HELP xtc_open_connections Currently open connections.\n"
      << "# TYPE xtc_open_connections gauge\n"
      << "xtc_open_connections " << gauges.open_connections << "\n";
  out << "# HELP xtc_inflight_requests Admitted requests not yet "
         "answered.\n"
      << "# TYPE xtc_inflight_requests gauge\n"
      << "xtc_inflight_requests " << gauges.inflight_requests << "\n";
  out << "# HELP xtc_queue_depth Jobs waiting in the estimator pool "
         "queue.\n"
      << "# TYPE xtc_queue_depth gauge\n"
      << "xtc_queue_depth " << gauges.queue_depth << "\n";
  out << "# HELP xtc_queue_capacity Estimator pool queue capacity.\n"
      << "# TYPE xtc_queue_capacity gauge\n"
      << "xtc_queue_capacity " << gauges.queue_capacity << "\n";
  out << "# HELP xtc_draining 1 while a graceful drain is in progress.\n"
      << "# TYPE xtc_draining gauge\n"
      << "xtc_draining " << (gauges.draining ? 1 : 0) << "\n";

  out << "# HELP xtc_energy_backend_info Host-energy backend in use "
         "(rapl|synthetic|none), as a labeled constant 1.\n"
      << "# TYPE xtc_energy_backend_info gauge\n"
      << "xtc_energy_backend_info{backend=\""
      << escape_label_value(gauges.energy_backend) << "\"} 1\n";
  if (!gauges.energy.empty()) {
    out << "# HELP xtc_host_energy_joules_total Cumulative measured host "
           "energy per powercap domain (overflow-corrected) since server "
           "start.\n"
        << "# TYPE xtc_host_energy_joules_total counter\n";
    for (const energy::DomainEnergy& d : gauges.energy) {
      out << "xtc_host_energy_joules_total{domain=\""
          << escape_label_value(d.name) << "\"} " << format_double(d.joules)
          << "\n";
    }
    // Lifetime average, the measured companion to the latency histograms:
    // the same requests_total denominator, so joules-per-request and
    // seconds-per-request line up.
    const double requests =
        static_cast<double>(
            std::max<std::uint64_t>(1, snapshot.latency.count()));
    out << "# HELP xtc_energy_joules_per_request Lifetime measured host "
           "joules per finished request, per powercap domain.\n"
        << "# TYPE xtc_energy_joules_per_request gauge\n";
    for (const energy::DomainEnergy& d : gauges.energy) {
      out << "xtc_energy_joules_per_request{domain=\""
          << escape_label_value(d.name) << "\"} "
          << format_double(d.joules / requests) << "\n";
    }
  }

  if (gauges.proc.ok) {
    out << "# HELP xtc_process_resident_bytes Resident set size of this "
           "process.\n"
        << "# TYPE xtc_process_resident_bytes gauge\n"
        << "xtc_process_resident_bytes " << gauges.proc.resident_bytes
        << "\n";
    out << "# HELP xtc_process_cpu_seconds_total Cumulative user+system "
           "CPU time of this process.\n"
        << "# TYPE xtc_process_cpu_seconds_total counter\n"
        << "xtc_process_cpu_seconds_total "
        << format_double(gauges.proc.cpu_seconds) << "\n";
  }

  out << "# HELP xtc_cache_hits_total Evaluation-cache hits.\n"
      << "# TYPE xtc_cache_hits_total counter\n"
      << "xtc_cache_hits_total " << gauges.cache.hits << "\n";
  out << "# HELP xtc_cache_misses_total Evaluation-cache misses.\n"
      << "# TYPE xtc_cache_misses_total counter\n"
      << "xtc_cache_misses_total " << gauges.cache.misses << "\n";
  out << "# HELP xtc_cache_insertions_total Evaluation-cache insertions.\n"
      << "# TYPE xtc_cache_insertions_total counter\n"
      << "xtc_cache_insertions_total " << gauges.cache.insertions << "\n";
  out << "# HELP xtc_cache_evictions_total Evaluation-cache LRU "
         "evictions.\n"
      << "# TYPE xtc_cache_evictions_total counter\n"
      << "xtc_cache_evictions_total " << gauges.cache.evictions << "\n";
  out << "# HELP xtc_cache_entries Evaluation-cache resident "
         "entries.\n"
      << "# TYPE xtc_cache_entries gauge\n"
      << "xtc_cache_entries " << gauges.cache.entries << "\n";
  out << "# HELP xtc_cache_bytes Approximate evaluation-cache "
         "footprint in bytes.\n"
      << "# TYPE xtc_cache_bytes gauge\n"
      << "xtc_cache_bytes " << gauges.cache.approx_bytes << "\n";
  out << "# HELP xtc_cache_hit_rate Lifetime evaluation-cache hit "
         "rate.\n"
      << "# TYPE xtc_cache_hit_rate gauge\n"
      << "xtc_cache_hit_rate " << format_double(gauges.cache.hit_rate())
      << "\n";
  return out.str();
}

}  // namespace exten::net
