#include "net/metrics.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

namespace exten::net {

LatencyHistogram::LatencyHistogram() {
  // 1-2.5-5 decade ladder from 100us to 10s: enough resolution to tell a
  // cache hit (sub-ms) from a cold simulation (tens of ms to seconds).
  for (double decade = 1e-4; decade < 10.0; decade *= 10.0) {
    bounds_.push_back(decade);
    bounds_.push_back(decade * 2.5);
    bounds_.push_back(decade * 5.0);
  }
  bounds_.push_back(10.0);
  counts_.assign(bounds_.size() + 1, 0);
}

void LatencyHistogram::observe(double seconds) {
  std::size_t bucket = bounds_.size();  // overflow
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (seconds <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++count_;
  sum_seconds_ += seconds;
}

double LatencyHistogram::quantile(double q, bool* is_overflow) const {
  if (is_overflow != nullptr) *is_overflow = false;
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) >= target) {
      if (i < bounds_.size()) return bounds_[i];
      break;  // quantile lands in the overflow bucket
    }
  }
  // Observations above the top bound have no finite upper estimate;
  // reporting bounds_.back() here would silently cap the p99 of a
  // degraded server.
  if (is_overflow != nullptr) *is_overflow = true;
  return std::numeric_limits<double>::infinity();
}

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kParse: return "parse";
    case Stage::kRoute: return "route";
    case Stage::kQueueWait: return "queue_wait";
    case Stage::kCacheProbe: return "cache_probe";
    case Stage::kEvaluate: return "evaluate";
    case Stage::kRespond: return "respond";
  }
  return "unknown";
}

void ServerMetrics::record_request(std::string_view endpoint, int status,
                                   double seconds) {
  ++requests_[{std::string(endpoint), status}];
  latency_.observe(seconds);
}

void ServerMetrics::observe_stage(Stage stage, double seconds) {
  stage_latency_[static_cast<std::size_t>(stage)].observe(seconds);
}

namespace {

std::string format_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

/// Escapes a label value per the Prometheus text format: backslash,
/// double quote and newline must be written as \\, \" and \n.
std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

void render_histogram(std::ostream& out, const std::string& name,
                      const std::string& extra_label,
                      const LatencyHistogram& histogram) {
  // `le` buckets are cumulative in the exposition; counts() is per-bucket.
  const std::string labels_open =
      extra_label.empty() ? "{" : "{" + extra_label + ",";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < histogram.bounds().size(); ++i) {
    cumulative += histogram.counts()[i];
    out << name << "_bucket" << labels_open << "le=\""
        << format_double(histogram.bounds()[i]) << "\"} " << cumulative
        << "\n";
  }
  out << name << "_bucket" << labels_open << "le=\"+Inf\"} "
      << histogram.count() << "\n";
  const std::string labels =
      extra_label.empty() ? "" : "{" + extra_label + "}";
  out << name << "_sum" << labels << " "
      << format_double(histogram.sum_seconds()) << "\n";
  out << name << "_count" << labels << " " << histogram.count() << "\n";
}

}  // namespace

std::string ServerMetrics::render(const MetricsGauges& gauges) const {
  std::ostringstream out;
  out << "# HELP xtc_requests_total Finished HTTP exchanges by endpoint "
         "and status code.\n"
      << "# TYPE xtc_requests_total counter\n";
  for (const auto& [key, count] : requests_) {
    out << "xtc_requests_total{endpoint=\"" << escape_label_value(key.first)
        << "\",code=\"" << key.second << "\"} " << count << "\n";
  }

  out << "# HELP xtc_request_duration_seconds End-to-end request latency "
         "(parse complete to response recorded).\n"
      << "# TYPE xtc_request_duration_seconds histogram\n";
  render_histogram(out, "xtc_request_duration_seconds", "", latency_);

  out << "# HELP xtc_stage_duration_seconds Per-stage request processing "
         "time (queueing, cache probe, evaluation, ...).\n"
      << "# TYPE xtc_stage_duration_seconds histogram\n";
  for (std::size_t s = 0; s < kNumStages; ++s) {
    render_histogram(
        out, "xtc_stage_duration_seconds",
        "stage=\"" +
            escape_label_value(stage_name(static_cast<Stage>(s))) + "\"",
        stage_latency_[s]);
  }

  out << "# HELP xtc_connections_accepted_total TCP connections accepted.\n"
      << "# TYPE xtc_connections_accepted_total counter\n"
      << "xtc_connections_accepted_total " << connections_accepted_ << "\n";
  out << "# HELP xtc_backpressure_rejections_total Requests answered 503 "
         "because the server or queue was full.\n"
      << "# TYPE xtc_backpressure_rejections_total counter\n"
      << "xtc_backpressure_rejections_total " << backpressure_rejections_
      << "\n";
  out << "# HELP xtc_deadline_expiries_total Requests answered 504 after "
         "their deadline expired.\n"
      << "# TYPE xtc_deadline_expiries_total counter\n"
      << "xtc_deadline_expiries_total " << deadline_expiries_ << "\n";
  out << "# HELP xtc_parse_errors_total Malformed HTTP requests.\n"
      << "# TYPE xtc_parse_errors_total counter\n"
      << "xtc_parse_errors_total " << parse_errors_ << "\n";

  out << "# HELP xtc_open_connections Currently open connections.\n"
      << "# TYPE xtc_open_connections gauge\n"
      << "xtc_open_connections " << gauges.open_connections << "\n";
  out << "# HELP xtc_inflight_requests Admitted requests not yet "
         "answered.\n"
      << "# TYPE xtc_inflight_requests gauge\n"
      << "xtc_inflight_requests " << gauges.inflight_requests << "\n";
  out << "# HELP xtc_queue_depth Jobs waiting in the estimator pool "
         "queue.\n"
      << "# TYPE xtc_queue_depth gauge\n"
      << "xtc_queue_depth " << gauges.queue_depth << "\n";
  out << "# HELP xtc_queue_capacity Estimator pool queue capacity.\n"
      << "# TYPE xtc_queue_capacity gauge\n"
      << "xtc_queue_capacity " << gauges.queue_capacity << "\n";
  out << "# HELP xtc_draining 1 while a graceful drain is in progress.\n"
      << "# TYPE xtc_draining gauge\n"
      << "xtc_draining " << (gauges.draining ? 1 : 0) << "\n";

  out << "# HELP xtc_energy_backend_info Host-energy backend in use "
         "(rapl|synthetic|none), as a labeled constant 1.\n"
      << "# TYPE xtc_energy_backend_info gauge\n"
      << "xtc_energy_backend_info{backend=\""
      << escape_label_value(gauges.energy_backend) << "\"} 1\n";
  if (!gauges.energy.empty()) {
    out << "# HELP xtc_host_energy_joules_total Cumulative measured host "
           "energy per powercap domain (overflow-corrected) since server "
           "start.\n"
        << "# TYPE xtc_host_energy_joules_total counter\n";
    for (const energy::DomainEnergy& d : gauges.energy) {
      out << "xtc_host_energy_joules_total{domain=\""
          << escape_label_value(d.name) << "\"} " << format_double(d.joules)
          << "\n";
    }
    // Lifetime average, the measured companion to the latency histograms:
    // the same requests_total denominator, so joules-per-request and
    // seconds-per-request line up.
    const double requests =
        static_cast<double>(std::max<std::uint64_t>(1, latency_.count()));
    out << "# HELP xtc_energy_joules_per_request Lifetime measured host "
           "joules per finished request, per powercap domain.\n"
        << "# TYPE xtc_energy_joules_per_request gauge\n";
    for (const energy::DomainEnergy& d : gauges.energy) {
      out << "xtc_energy_joules_per_request{domain=\""
          << escape_label_value(d.name) << "\"} "
          << format_double(d.joules / requests) << "\n";
    }
  }

  if (gauges.proc.ok) {
    out << "# HELP xtc_process_resident_bytes Resident set size of this "
           "process.\n"
        << "# TYPE xtc_process_resident_bytes gauge\n"
        << "xtc_process_resident_bytes " << gauges.proc.resident_bytes
        << "\n";
    out << "# HELP xtc_process_cpu_seconds_total Cumulative user+system "
           "CPU time of this process.\n"
        << "# TYPE xtc_process_cpu_seconds_total counter\n"
        << "xtc_process_cpu_seconds_total "
        << format_double(gauges.proc.cpu_seconds) << "\n";
  }

  out << "# HELP xtc_cache_hits_total Evaluation-cache hits.\n"
      << "# TYPE xtc_cache_hits_total counter\n"
      << "xtc_cache_hits_total " << gauges.cache.hits << "\n";
  out << "# HELP xtc_cache_misses_total Evaluation-cache misses.\n"
      << "# TYPE xtc_cache_misses_total counter\n"
      << "xtc_cache_misses_total " << gauges.cache.misses << "\n";
  out << "# HELP xtc_cache_insertions_total Evaluation-cache insertions.\n"
      << "# TYPE xtc_cache_insertions_total counter\n"
      << "xtc_cache_insertions_total " << gauges.cache.insertions << "\n";
  out << "# HELP xtc_cache_evictions_total Evaluation-cache LRU "
         "evictions.\n"
      << "# TYPE xtc_cache_evictions_total counter\n"
      << "xtc_cache_evictions_total " << gauges.cache.evictions << "\n";
  out << "# HELP xtc_cache_entries Evaluation-cache resident "
         "entries.\n"
      << "# TYPE xtc_cache_entries gauge\n"
      << "xtc_cache_entries " << gauges.cache.entries << "\n";
  out << "# HELP xtc_cache_bytes Approximate evaluation-cache "
         "footprint in bytes.\n"
      << "# TYPE xtc_cache_bytes gauge\n"
      << "xtc_cache_bytes " << gauges.cache.approx_bytes << "\n";
  out << "# HELP xtc_cache_hit_rate Lifetime evaluation-cache hit "
         "rate.\n"
      << "# TYPE xtc_cache_hit_rate gauge\n"
      << "xtc_cache_hit_rate " << format_double(gauges.cache.hit_rate())
      << "\n";
  return out.str();
}

}  // namespace exten::net
