#pragma once

// HTTP/1.1 message handling as pure functions over byte buffers — no IO,
// no fds. The server and client feed arbitrarily-split chunks (whatever
// read(2) returned) into the incremental parsers; tests feed adversarial
// splits directly.
//
// Scope: the subset the estimation service needs. Content-Length bodies
// only (a Transfer-Encoding request is answered 501), HTTP/1.0 and /1.1,
// keep-alive and pipelining, hard limits on request-line/header/body
// sizes (431 / 431 / 413).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace exten::net {

struct Header {
  std::string name;
  std::string value;
};

/// Case-insensitive header lookup shared by requests and responses;
/// returns nullptr when absent.
const std::string* find_header(const std::vector<Header>& headers,
                               std::string_view name);

struct HttpRequest {
  std::string method;   // uppercase token, e.g. "POST"
  std::string target;   // origin-form, e.g. "/v1/estimate?x=1"
  std::string version;  // "HTTP/1.1" or "HTTP/1.0"
  std::vector<Header> headers;
  std::string body;

  const std::string* header(std::string_view name) const {
    return find_header(headers, name);
  }
  /// Request target with any query string stripped ("/v1/estimate").
  std::string_view path() const;
  /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an explicit
  /// Connection header wins either way.
  bool keep_alive() const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra headers (e.g. Retry-After); Content-Length, Content-Type and
  /// Connection are emitted automatically.
  std::vector<Header> extra_headers;
};

/// Reason phrase for every status the server emits ("Unknown" otherwise).
std::string_view status_reason(int status);

/// Serializes `response` onto the wire, appending Content-Length and
/// Connection: keep-alive/close.
std::string serialize_response(const HttpResponse& response, bool keep_alive);

/// Serializes a request (used by HttpClient and tests).
std::string serialize_request(std::string_view method, std::string_view target,
                              std::string_view host, std::string_view body,
                              std::string_view content_type,
                              const std::vector<Header>& extra_headers = {});

struct ParserLimits {
  std::size_t max_request_line = 8 * 1024;
  /// Total header-section bytes (all lines incl. terminators).
  std::size_t max_header_bytes = 64 * 1024;
  std::size_t max_body_bytes = 8 * 1024 * 1024;
};

/// Incremental HTTP/1.1 request parser.
///
/// feed() consumes any chunking of the input; once status() is kComplete
/// the request is available via request() and any extra bytes already
/// received (pipelined next request) stay buffered — reset() re-arms the
/// parser on them. On kError the connection should answer error_status()
/// and close; the parser stays in the error state.
class RequestParser {
 public:
  enum class Status { kNeedMore, kComplete, kError };

  explicit RequestParser(ParserLimits limits = {}) : limits_(limits) {}

  /// Appends bytes and advances the state machine.
  Status feed(std::string_view bytes);
  Status status() const { return status_; }

  /// Valid when kComplete.
  const HttpRequest& request() const { return request_; }

  /// Valid when kError: the status code to reject with + a reason line.
  int error_status() const { return error_status_; }
  const std::string& error_reason() const { return error_reason_; }

  /// After kComplete: discards the parsed request and immediately parses
  /// any buffered pipelined bytes (check status() again afterwards).
  void reset();

  /// Bytes received but not yet consumed by a completed request.
  std::size_t buffered_bytes() const { return buffer_.size() - pos_; }

 private:
  enum class Phase { kRequestLine, kHeaders, kBody, kDone };

  void advance();
  /// Returns the next CRLF/LF-terminated line, or nullopt when incomplete.
  bool next_line(std::string_view* line, std::size_t limit, int limit_status);
  void fail(int status, std::string reason);
  bool parse_request_line(std::string_view line);
  bool parse_header_line(std::string_view line);
  bool finish_headers();

  ParserLimits limits_;
  Status status_ = Status::kNeedMore;
  Phase phase_ = Phase::kRequestLine;
  std::string buffer_;
  std::size_t pos_ = 0;           // consumed prefix of buffer_
  std::size_t header_bytes_ = 0;  // header-section bytes seen so far
  std::size_t body_length_ = 0;
  HttpRequest request_;
  int error_status_ = 400;
  std::string error_reason_;
};

/// Incremental HTTP/1.1 response parser (client side). Content-Length
/// bodies and bodies delimited by connection close (feed_eof()).
class ResponseParser {
 public:
  enum class Status { kNeedMore, kComplete, kError };

  struct Response {
    std::string version;
    int status = 0;
    std::string reason;
    std::vector<Header> headers;
    std::string body;

    const std::string* header(std::string_view name) const {
      return find_header(headers, name);
    }
  };

  Status feed(std::string_view bytes);
  /// Signals end of stream: completes a close-delimited body, errors a
  /// truncated one.
  Status feed_eof();

  Status status() const { return status_; }
  const Response& response() const { return response_; }
  const std::string& error_reason() const { return error_reason_; }

 private:
  enum class Phase { kStatusLine, kHeaders, kBody, kDone };

  void advance();
  bool next_line(std::string_view* line);
  void fail(std::string reason);

  Status status_ = Status::kNeedMore;
  Phase phase_ = Phase::kStatusLine;
  std::string buffer_;
  std::size_t pos_ = 0;
  bool have_length_ = false;
  std::size_t body_length_ = 0;
  Response response_;
  std::string error_reason_;
};

}  // namespace exten::net
