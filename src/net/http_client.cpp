#include "net/http_client.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/error.h"

namespace exten::net {

HttpClient::HttpClient(std::string host, std::uint16_t port, int timeout_ms)
    : host_(std::move(host)), port_(port), timeout_ms_(timeout_ms) {}

void HttpClient::ensure_connected() {
  if (socket_.valid()) return;
  socket_ = connect_tcp(host_, port_, timeout_ms_);
  reused_ = false;
}

ResponseParser::Response HttpClient::get(std::string_view target) {
  return round_trip("GET", target, "", "");
}

ResponseParser::Response HttpClient::post(std::string_view target,
                                          std::string_view body,
                                          std::string_view content_type) {
  return round_trip("POST", target, body, content_type);
}

ResponseParser::Response HttpClient::round_trip(std::string_view method,
                                                std::string_view target,
                                                std::string_view body,
                                                std::string_view content_type) {
  const std::string wire =
      serialize_request(method, target, host_, body, content_type);
  ensure_connected();
  const bool may_retry = reused_;
  try {
    return attempt(wire);
  } catch (const Error&) {
    // A keep-alive connection the server closed while idle fails exactly
    // here, on the first reuse. Retry once on a fresh connection; a fresh
    // connection that fails is a real error.
    if (!may_retry) throw;
    socket_.close();
    ensure_connected();
    return attempt(wire);
  }
}

ResponseParser::Response HttpClient::attempt(const std::string& wire) {
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n =
        ::write(socket_.fd(), wire.data() + sent, wire.size() - sent);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const int err = errno;
    socket_.close();
    throw Error("http send failed: ", std::strerror(err));
  }

  ResponseParser parser;
  char buf[16 * 1024];
  while (parser.status() == ResponseParser::Status::kNeedMore) {
    const ssize_t n = ::read(socket_.fd(), buf, sizeof(buf));
    if (n > 0) {
      parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      parser.feed_eof();
      if (parser.status() == ResponseParser::Status::kComplete) break;
      socket_.close();
      throw Error("http connection closed mid-response");
    }
    const int err = errno;
    socket_.close();
    throw Error("http receive failed: ",
                err == EAGAIN || err == EWOULDBLOCK ? "timed out"
                                                    : std::strerror(err));
  }
  if (parser.status() == ResponseParser::Status::kError) {
    socket_.close();
    throw Error("malformed http response: ", parser.error_reason());
  }

  ResponseParser::Response response = parser.response();
  const std::string* connection = response.header("Connection");
  if (connection != nullptr && *connection == "close") {
    socket_.close();
  } else {
    reused_ = true;
  }
  return response;
}

}  // namespace exten::net
