#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.h"

namespace exten::net {

namespace {

std::string errno_text() { return std::strerror(errno); }

sockaddr_in make_addr(const std::string& address, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXTEN_CHECK(::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) == 1,
              "bad IPv4 address '", address, "'");
  return addr;
}

void set_timeouts(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  EXTEN_CHECK(flags >= 0, "fcntl(F_GETFL): ", errno_text());
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  EXTEN_CHECK(::fcntl(fd, F_SETFL, next) == 0, "fcntl(F_SETFL): ",
              errno_text());
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool reuse_port_supported() {
#ifdef SO_REUSEPORT
  return true;
#else
  return false;
#endif
}

Socket listen_tcp(const std::string& address, std::uint16_t* port,
                  int backlog, bool reuse_port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  EXTEN_CHECK(sock.valid(), "socket(): ", errno_text());
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port) {
#ifdef SO_REUSEPORT
    EXTEN_CHECK(::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEPORT, &one,
                             sizeof(one)) == 0,
                "setsockopt(SO_REUSEPORT): ", errno_text());
#else
    throw Error("SO_REUSEPORT is not supported on this platform");
#endif
  }

  sockaddr_in addr = make_addr(address, *port);
  EXTEN_CHECK(::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0,
              "bind(", address, ":", *port, "): ", errno_text());
  EXTEN_CHECK(::listen(sock.fd(), backlog) == 0, "listen(): ", errno_text());

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  EXTEN_CHECK(::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound),
                            &len) == 0,
              "getsockname(): ", errno_text());
  *port = ntohs(bound.sin_port);
  set_nonblocking(sock.fd(), true);
  return sock;
}

Socket connect_tcp(const std::string& address, std::uint16_t port,
                   int timeout_ms) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  EXTEN_CHECK(sock.valid(), "socket(): ", errno_text());
  set_nonblocking(sock.fd(), true);

  sockaddr_in addr = make_addr(address, port);
  const int rc =
      ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0) {
    EXTEN_CHECK(errno == EINPROGRESS, "connect(", address, ":", port,
                "): ", errno_text());
    pollfd pfd{sock.fd(), POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    EXTEN_CHECK(ready > 0, "connect(", address, ":", port,
                "): ", ready == 0 ? "timeout" : errno_text());
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len);
    EXTEN_CHECK(err == 0, "connect(", address, ":", port,
                "): ", std::strerror(err));
  }
  set_nonblocking(sock.fd(), false);
  set_timeouts(sock.fd(), timeout_ms);
  set_nodelay(sock.fd());
  return sock;
}

void make_wake_pipe(Socket fds[2]) {
  int raw[2];
  EXTEN_CHECK(::pipe(raw) == 0, "pipe(): ", errno_text());
  fds[0] = Socket(raw[0]);
  fds[1] = Socket(raw[1]);
  set_nonblocking(raw[0], true);
  set_nonblocking(raw[1], true);
}

}  // namespace exten::net
