#include "net/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <exception>
#include <utility>

#include "explore/explore.h"
#include "net/api.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "util/error.h"
#include "util/json.h"

namespace exten::net {

namespace {

constexpr std::size_t kReadChunk = 16 * 1024;

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

std::uint64_t to_dur_ns(double seconds) {
  return seconds > 0.0 ? static_cast<std::uint64_t>(seconds * 1e9) : 0;
}

HttpResponse json_response(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

HttpResponse error_response(int status, std::string_view message) {
  return json_response(status, api::error_body(message));
}

std::chrono::milliseconds ms(int value) {
  return std::chrono::milliseconds(value);
}

}  // namespace

HttpServer::HttpServer(service::BatchEstimator& estimator,
                       ServerOptions options)
    : estimator_(estimator),
      options_(std::move(options)),
      port_(options_.port),
      poller_(options_.poller_backend),
      rank_pool_(std::max(1u, options_.rank_threads),
                 std::max<std::size_t>(2, options_.rank_threads) * 2) {
  if (options_.own_listener) {
    listener_ = listen_tcp(options_.bind_address, &port_, /*backlog=*/128,
                           options_.reuse_port);
  }
  make_wake_pipe(wake_pipe_);
}

HttpServer::~HttpServer() {
  // rank_pool_ joins in its own destructor; by then run() has already
  // waited for outstanding_jobs_ == 0, so no callback touches *this.
}

void HttpServer::request_stop() {
  stop_requested_.store(true, std::memory_order_release);
  // Nudge the loop out of wait(). A full pipe is fine: a pending byte
  // already guarantees wakeup. Only async-signal-safe calls here.
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1].fd(), &byte, 1);
}

void HttpServer::post_completion(Completion completion) {
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.push_back(std::move(completion));
  }
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1].fd(), &byte, 1);
}

int HttpServer::resolve_deadline_ms(int requested) const {
  if (requested <= 0) return options_.default_deadline_ms;
  return std::min(requested, options_.max_deadline_ms);
}

MetricsGauges HttpServer::gauges() const {
  MetricsGauges g;
  g.open_connections = connections_.size();
  g.inflight_requests = inflight_;
  g.queue_depth = estimator_.queue_depth();
  g.queue_capacity = estimator_.queue_capacity();
  g.draining = draining_;
  g.cache = estimator_.cache_stats();
  if (options_.energy_meter != nullptr) {
    g.energy_backend = options_.energy_meter->kind();
    g.energy = options_.energy_meter->snapshot();
  }
  g.proc = energy::read_proc_self_stats();
  return g;
}

void HttpServer::run() {
  EXTEN_CHECK(!running_, "HttpServer::run() may only be called once");
  running_ = true;
  if (listener_.valid()) {
    poller_.add(listener_.fd(), /*read=*/true, /*write=*/false);
  }
  poller_.add(wake_pipe_[0].fd(), /*read=*/true, /*write=*/false);

  while (true) {
    const auto now = Clock::now();
    const std::vector<Poller::Event>& events =
        poller_.wait(next_timeout_ms(now));

    for (const Poller::Event& event : events) {
      if (event.fd == wake_pipe_[0].fd()) {
        // Drain the self-pipe; completions/stop are handled below.
        char buf[256];
        while (::read(wake_pipe_[0].fd(), buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (listener_.valid() && event.fd == listener_.fd()) {
        accept_connections();
        continue;
      }
      auto it = connections_.find(event.fd);
      if (it == connections_.end()) continue;  // closed earlier this pass
      if (event.hangup) {
        // Full peer close (both directions). Safe even mid-processing:
        // close_connection releases the admission slot and cancels, and
        // the generation check drops the eventual completion. Not closing
        // here would spin the level-triggered loop on the hangup.
        close_connection(event.fd);
        continue;
      }
      if (event.writable &&
          it->second->state == Connection::State::kWriting) {
        on_writable(*it->second);
        it = connections_.find(event.fd);  // may have closed itself
        if (it == connections_.end()) continue;
      }
      if (event.readable &&
          it->second->state == Connection::State::kReading) {
        on_readable(*it->second);
      }
    }

    adopt_pending();
    handle_completions();

    if (stop_requested_.load(std::memory_order_acquire) && !draining_) {
      begin_drain();
    }

    handle_timeouts(Clock::now());

    if (draining_ && connections_.empty() &&
        outstanding_jobs_.load(std::memory_order_acquire) == 0) {
      break;
    }
  }

  if (listener_.valid()) poller_.remove(listener_.fd());  // drain closed it
  poller_.remove(wake_pipe_[0].fd());
}

int HttpServer::next_timeout_ms(Clock::time_point now) const {
  Clock::time_point earliest = Clock::time_point::max();
  for (const auto& [fd, conn] : connections_) {
    earliest = std::min(earliest, conn->expiry);
    if (conn->state == Connection::State::kProcessing) {
      earliest = std::min(earliest, conn->deadline);
    }
  }
  if (draining_) {
    earliest = std::min(earliest, drain_deadline_);
    // While draining we also wait for outstanding worker callbacks, which
    // wake us via the pipe — but poll at least once per 50ms as a backstop.
    if (connections_.empty()) {
      earliest = std::min(earliest, now + ms(50));
    }
  }
  if (earliest == Clock::time_point::max()) return -1;
  const auto delta =
      std::chrono::duration_cast<std::chrono::milliseconds>(earliest - now);
  return static_cast<int>(std::clamp<long long>(delta.count(), 0, 60'000));
}

void HttpServer::accept_connections() {
  obs::ScopedSpan span(obs::Category::kServer, "accept");
  std::uint64_t accepted_count = 0;
  while (true) {
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      // EAGAIN/EWOULDBLOCK/EINTR, or a transient failure (ECONNABORTED,
      // EMFILE, ...): either way the accept pass is over.
      span.add_counter("accepted", accepted_count);
      return;
    }
    ++accepted_count;
    Socket socket(fd);
    if (draining_ || connections_.size() >= options_.max_connections) {
      continue;  // Socket destructor closes; client sees a reset.
    }
    try {
      set_nonblocking(fd, true);
      set_nodelay(fd);
    } catch (const Error&) {
      continue;
    }
    auto conn = std::make_unique<Connection>(std::move(socket),
                                             options_.limits);
    conn->expiry = Clock::now() + ms(options_.idle_timeout_ms);
    poller_.add(fd, /*read=*/true, /*write=*/false);
    connections_.emplace(fd, std::move(conn));
    open_connections_mirror_.store(connections_.size(),
                                   std::memory_order_relaxed);
    metrics_.on_connection_opened();
  }
}

void HttpServer::adopt_socket(Socket socket) {
  {
    std::lock_guard<std::mutex> lock(adopted_mu_);
    adopted_.push_back(std::move(socket));
  }
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1].fd(), &byte, 1);
}

void HttpServer::adopt_pending() {
  std::vector<Socket> adopted;
  {
    std::lock_guard<std::mutex> lock(adopted_mu_);
    if (adopted_.empty()) return;
    adopted.swap(adopted_);
  }
  for (Socket& socket : adopted) {
    const int fd = socket.fd();
    if (draining_ || connections_.size() >= options_.max_connections) {
      continue;  // Socket destructor closes; client sees a reset.
    }
    try {
      set_nonblocking(fd, true);
      set_nodelay(fd);
    } catch (const Error&) {
      continue;
    }
    auto conn = std::make_unique<Connection>(std::move(socket),
                                             options_.limits);
    conn->expiry = Clock::now() + ms(options_.idle_timeout_ms);
    // Level-triggered polling picks up any bytes the client already sent
    // while the connection sat in the handoff queue.
    poller_.add(fd, /*read=*/true, /*write=*/false);
    connections_.emplace(fd, std::move(conn));
    open_connections_mirror_.store(connections_.size(),
                                   std::memory_order_relaxed);
    metrics_.on_connection_opened();
  }
}

void HttpServer::close_connection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  if (conn.dispatched) {
    // The peer vanished mid-request: release the admission slot and tell
    // a still-queued job not to bother. A late completion is dropped by
    // the generation check (the connection will be gone entirely).
    --inflight_;
    conn.dispatched = false;
    if (conn.cancel) conn.cancel->cancel();
    if (conn.batch && conn.batch->cancel) conn.batch->cancel->cancel();
  }
  poller_.remove(fd);
  connections_.erase(it);
  open_connections_mirror_.store(connections_.size(),
                                 std::memory_order_relaxed);
}

void HttpServer::on_readable(Connection& conn) {
  char buf[kReadChunk];
  while (conn.state == Connection::State::kReading) {
    const ssize_t n = ::read(conn.socket.fd(), buf, sizeof(buf));
    if (n > 0) {
      const auto feed_start = Clock::now();
      const RequestParser::Status status =
          conn.parser.feed(std::string_view(buf, static_cast<size_t>(n)));
      conn.parse_seconds += seconds_between(feed_start, Clock::now());
      if (status == RequestParser::Status::kComplete) {
        handle_parsed_request(conn);
        return;  // further pipelined bytes are handled after the response
      }
      if (status == RequestParser::Status::kError) {
        metrics_.on_parse_error();
        conn.endpoint = "other";
        conn.request_start = Clock::now();
        conn.response_keep_alive = false;
        finish_request(conn, error_response(conn.parser.error_status(),
                                            conn.parser.error_reason()));
        return;
      }
      // Partial request: arm the stricter read timeout.
      conn.expiry = Clock::now() + ms(options_.read_timeout_ms);
      continue;
    }
    if (n == 0) {  // EOF
      close_connection(conn.socket.fd());
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_connection(conn.socket.fd());
    return;
  }
}

void HttpServer::handle_parsed_request(Connection& conn) {
  const HttpRequest& request = conn.parser.request();
  conn.request_start = Clock::now();
  conn.response_keep_alive = request.keep_alive() && !draining_;
  conn.trace_id =
      obs::Tracer::enabled() ? obs::Tracer::instance().next_id() : 0;
  metrics_.observe_stage(Stage::kParse, conn.parse_seconds);
  if (obs::Tracer::enabled()) {
    // feed() time accumulates across reads; render it as one contiguous
    // span ending at parse completion.
    const std::uint64_t dur = to_dur_ns(conn.parse_seconds);
    const std::uint64_t end = obs::Tracer::to_ns(conn.request_start);
    obs::emit_span(obs::Category::kServer, "http_parse", conn.trace_id,
                   end > dur ? end - dur : 0, dur);
  }
  conn.parse_seconds = 0.0;
  const obs::ScopedId correlate(conn.trace_id);
  const auto route_start = Clock::now();
  {
    obs::ScopedSpan route_span(obs::Category::kServer, "route");
    route_request(conn, request);
  }
  metrics_.observe_stage(Stage::kRoute,
                         seconds_between(route_start, Clock::now()));
}

void HttpServer::route_request(Connection& conn, const HttpRequest& request) {
  const std::string_view path = request.path();

  if (path == "/healthz") {
    conn.endpoint = "healthz";
    if (request.method != "GET") {
      finish_request(conn, error_response(405, "method not allowed"));
      return;
    }
    const int status = draining_ ? 503 : 200;
    // "energy_backend" tells an operator at a glance whether the
    // joules-per-request families are measured (rapl), simulated
    // (synthetic) or unavailable (none).
    const char* backend = options_.energy_meter != nullptr
                              ? options_.energy_meter->kind()
                              : "none";
    finish_request(
        conn,
        json_response(status, std::string("{\"status\":\"") +
                                  (draining_ ? "draining" : "ok") +
                                  "\",\"energy_backend\":\"" + backend +
                                  "\"}"));
    return;
  }

  if (path == "/metrics") {
    conn.endpoint = "metrics";
    if (request.method != "GET") {
      finish_request(conn, error_response(405, "method not allowed"));
      return;
    }
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4";
    response.body = options_.metrics_override ? options_.metrics_override()
                                              : metrics_.render(gauges());
    finish_request(conn, std::move(response));
    return;
  }

  if (path == "/v1/trace") {
    conn.endpoint = "trace";
    if (request.method != "GET") {
      finish_request(conn, error_response(405, "method not allowed"));
      return;
    }
    // Chrome trace-event JSON of every span currently buffered (empty
    // trace when tracing is disabled). Snapshotting never blocks emitters.
    finish_request(conn,
                   json_response(200, obs::chrome_trace_json(
                                          obs::Tracer::instance().snapshot())));
    return;
  }

  const bool is_estimate = path == "/v1/estimate";
  const bool is_batch = path == "/v1/batch";
  const bool is_rank = path == "/v1/rank";
  if (!is_estimate && !is_batch && !is_rank) {
    conn.endpoint = "other";
    finish_request(conn, error_response(404, "no such endpoint"));
    return;
  }
  conn.endpoint = is_estimate ? "estimate" : (is_batch ? "batch" : "rank");
  if (request.method != "POST") {
    finish_request(conn, error_response(405, "method not allowed"));
    return;
  }
  if (draining_) {
    finish_request(conn, error_response(503, "server is draining"));
    return;
  }
  if (inflight_ >= options_.max_inflight) {
    metrics_.on_backpressure_rejection();
    HttpResponse response =
        error_response(503, "server is at capacity, retry later");
    response.extra_headers.push_back(
        {"Retry-After", std::to_string(options_.retry_after_seconds)});
    finish_request(conn, std::move(response));
    return;
  }

  if (is_estimate) {
    dispatch_estimate(conn, request);
  } else if (is_batch) {
    dispatch_batch(conn, request);
  } else {
    dispatch_rank(conn, request);
  }
}

void HttpServer::dispatch_estimate(Connection& conn,
                                   const HttpRequest& request) {
  api::EstimateRequest parsed;
  try {
    parsed = api::parse_estimate_request(JsonValue::parse(request.body));
  } catch (const std::exception& e) {
    finish_request(conn, error_response(400, e.what()));
    return;
  }
  parsed.job.trace_id = conn.trace_id;

  const int fd = conn.socket.fd();
  const std::uint64_t generation = ++conn.generation;
  auto cancel = std::make_shared<service::CancelToken>();
  outstanding_jobs_.fetch_add(1, std::memory_order_acq_rel);
  const bool accepted = estimator_.try_submit(
      std::move(parsed.job),
      [this, fd, generation](service::JobResult result) {
        Completion completion;
        completion.fd = fd;
        completion.generation = generation;
        completion.is_job = true;
        completion.result = std::move(result);
        post_completion(std::move(completion));
        outstanding_jobs_.fetch_sub(1, std::memory_order_acq_rel);
      },
      cancel);
  if (!accepted) {
    outstanding_jobs_.fetch_sub(1, std::memory_order_acq_rel);
    metrics_.on_backpressure_rejection();
    HttpResponse response = error_response(503, "estimation queue is full");
    response.extra_headers.push_back(
        {"Retry-After", std::to_string(options_.retry_after_seconds)});
    finish_request(conn, std::move(response));
    return;
  }

  conn.state = Connection::State::kProcessing;
  conn.cancel = std::move(cancel);
  conn.dispatched = true;
  ++inflight_;
  conn.deadline =
      Clock::now() + ms(resolve_deadline_ms(parsed.deadline_ms));
  conn.expiry = Clock::time_point::max();
  poller_.mod(fd, /*read=*/false, /*write=*/false);
}

void HttpServer::dispatch_batch(Connection& conn,
                                const HttpRequest& request) {
  api::BatchRequest parsed;
  try {
    parsed = api::parse_batch_request(JsonValue::parse(request.body),
                                      options_.max_batch_jobs);
  } catch (const std::exception& e) {
    finish_request(conn, error_response(400, e.what()));
    return;
  }

  auto batch = std::make_unique<BatchState>();
  batch->jobs.reserve(parsed.jobs.size());
  for (api::EstimateRequest& job : parsed.jobs) {
    job.job.trace_id = conn.trace_id;
    batch->jobs.push_back(std::move(job.job));
  }
  batch->results.resize(batch->jobs.size());
  batch->cancel = std::make_shared<service::CancelToken>();

  conn.batch = std::move(batch);
  conn.state = Connection::State::kProcessing;
  conn.dispatched = true;
  ++inflight_;
  ++conn.generation;
  conn.deadline =
      Clock::now() + ms(resolve_deadline_ms(parsed.deadline_ms));
  conn.expiry = Clock::time_point::max();
  poller_.mod(conn.socket.fd(), /*read=*/false, /*write=*/false);
  pump_batch(conn);
}

void HttpServer::pump_batch(Connection& conn) {
  BatchState& batch = *conn.batch;
  const int fd = conn.socket.fd();
  const std::uint64_t generation = conn.generation;
  // Windowed submission: push as many jobs as the pool queue will take;
  // the rest wait for the next completion drain to pump again. The whole
  // batch holds one admission slot, so a giant batch cannot starve other
  // requests of queue space forever — it just trickles.
  while (batch.next < batch.jobs.size()) {
    const std::size_t index = batch.next;
    outstanding_jobs_.fetch_add(1, std::memory_order_acq_rel);
    const bool accepted = estimator_.try_submit(
        std::move(batch.jobs[index]),
        [this, fd, generation, index](service::JobResult result) {
          Completion completion;
          completion.fd = fd;
          completion.generation = generation;
          completion.is_job = true;
          completion.job_index = index;
          completion.result = std::move(result);
          post_completion(std::move(completion));
          outstanding_jobs_.fetch_sub(1, std::memory_order_acq_rel);
        },
        batch.cancel);
    if (!accepted) {
      outstanding_jobs_.fetch_sub(1, std::memory_order_acq_rel);
      return;  // queue full; re-pumped on the next completion drain
    }
    ++batch.next;
  }
}

void HttpServer::dispatch_rank(Connection& conn, const HttpRequest& request) {
  api::RankRequest parsed;
  try {
    parsed = api::parse_rank_request(JsonValue::parse(request.body),
                                     options_.max_batch_jobs);
  } catch (const std::exception& e) {
    finish_request(conn, error_response(400, e.what()));
    return;
  }

  const int fd = conn.socket.fd();
  const std::uint64_t generation = ++conn.generation;
  outstanding_jobs_.fetch_add(1, std::memory_order_acq_rel);
  // rank_candidates() blocks until the estimator pool has run every
  // candidate, so it must not run on the event loop (stalls everything)
  // nor on the estimator pool itself (waits for jobs behind it in the
  // same queue). Hence the dedicated rank lane.
  const bool accepted = rank_pool_.try_submit(
      [this, fd, generation, parsed = std::move(parsed)]() mutable {
        Completion completion;
        completion.fd = fd;
        completion.generation = generation;
        try {
          explore::ExploreResult result = explore::rank_candidates(
              parsed.candidates, estimator_, parsed.objective);
          completion.response =
              json_response(200, api::rank_result_body(result));
        } catch (const std::exception& e) {
          completion.response = error_response(400, e.what());
        }
        post_completion(std::move(completion));
        outstanding_jobs_.fetch_sub(1, std::memory_order_acq_rel);
      });
  if (!accepted) {
    outstanding_jobs_.fetch_sub(1, std::memory_order_acq_rel);
    metrics_.on_backpressure_rejection();
    HttpResponse response = error_response(503, "rank lane is full");
    response.extra_headers.push_back(
        {"Retry-After", std::to_string(options_.retry_after_seconds)});
    finish_request(conn, std::move(response));
    return;
  }

  conn.state = Connection::State::kProcessing;
  conn.dispatched = true;
  ++inflight_;
  conn.deadline =
      Clock::now() + ms(resolve_deadline_ms(parsed.deadline_ms));
  conn.expiry = Clock::time_point::max();
  poller_.mod(fd, /*read=*/false, /*write=*/false);
}

void HttpServer::handle_completions() {
  std::vector<Completion> drained;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    drained.swap(completions_);
  }
  for (Completion& completion : drained) {
    if (completion.is_job) {
      // Worker-side attribution; counted even when the requester is gone
      // (the pool spent the time regardless). Cancelled jobs never probed
      // the cache; hits never evaluated.
      const service::JobTimings& t = completion.result.timings;
      metrics_.observe_stage(Stage::kQueueWait, t.queue_seconds);
      if (!completion.result.cancelled) {
        metrics_.observe_stage(Stage::kCacheProbe, t.cache_probe_seconds);
      }
      if (t.evaluate_seconds > 0.0) {
        metrics_.observe_stage(Stage::kEvaluate, t.evaluate_seconds);
      }
    }
    auto it = connections_.find(completion.fd);
    if (it == connections_.end()) continue;  // connection already closed
    Connection& conn = *it->second;
    if (conn.generation != completion.generation) continue;  // stale (504'd)

    if (!completion.is_job) {  // rank lane: response is ready as-is
      finish_request(conn, std::move(completion.response));
      continue;
    }
    if (conn.batch) {
      BatchState& batch = *conn.batch;
      batch.results[completion.job_index] = std::move(completion.result);
      ++batch.completed;
      if (batch.completed == batch.results.size()) {
        HttpResponse response = json_response(
            200, api::batch_result_body(batch.results, estimator_.model()));
        conn.batch.reset();
        finish_request(conn, std::move(response));
      }
      continue;
    }
    finish_request(conn, json_response(200, api::job_result_body(
                                                completion.result,
                                                estimator_.model())));
  }
  if (!drained.empty()) {
    // Queue slots freed up: give stalled batches another chance.
    for (auto& [fd, conn] : connections_) {
      if (conn->batch && conn->state == Connection::State::kProcessing &&
          conn->batch->next < conn->batch->jobs.size()) {
        pump_batch(*conn);
      }
    }
  }
}

void HttpServer::finish_request(Connection& conn, HttpResponse response) {
  if (conn.dispatched) {
    --inflight_;
    conn.dispatched = false;
  }
  conn.cancel.reset();
  conn.batch.reset();
  if (draining_) conn.response_keep_alive = false;

  const double seconds =
      std::chrono::duration<double>(Clock::now() - conn.request_start)
          .count();
  metrics_.record_request(conn.endpoint, response.status, seconds);
  if (obs::Tracer::enabled()) {
    // The request span covers exactly what record_request measured, so a
    // trace's per-stage durations can be reconciled against /metrics.
    obs::emit_span(obs::Category::kServer, conn.endpoint, conn.trace_id,
                   obs::Tracer::to_ns(conn.request_start), to_dur_ns(seconds),
                   "status", static_cast<std::uint64_t>(response.status));
  }

  conn.respond_start = Clock::now();
  conn.outbox = serialize_response(response, conn.response_keep_alive);
  conn.out_off = 0;
  conn.state = Connection::State::kWriting;
  conn.expiry = conn.respond_start + ms(options_.write_timeout_ms);
  on_writable(conn);  // optimistic write; usually completes in one call
}

void HttpServer::on_writable(Connection& conn) {
  const int fd = conn.socket.fd();
  while (conn.out_off < conn.outbox.size()) {
    const ssize_t n = ::write(fd, conn.outbox.data() + conn.out_off,
                              conn.outbox.size() - conn.out_off);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      poller_.mod(fd, /*read=*/false, /*write=*/true);
      conn.state = Connection::State::kWriting;
      return;
    }
    if (errno == EINTR) continue;
    close_connection(fd);
    return;
  }

  // Response fully written.
  const double respond_seconds =
      seconds_between(conn.respond_start, Clock::now());
  metrics_.observe_stage(Stage::kRespond, respond_seconds);
  if (obs::Tracer::enabled()) {
    obs::emit_span(obs::Category::kServer, "respond", conn.trace_id,
                   obs::Tracer::to_ns(conn.respond_start),
                   to_dur_ns(respond_seconds), "bytes",
                   static_cast<std::uint64_t>(conn.outbox.size()));
  }
  conn.outbox.clear();
  conn.out_off = 0;
  if (!conn.response_keep_alive ||
      conn.parser.status() == RequestParser::Status::kError) {
    close_connection(fd);
    return;
  }
  conn.parser.reset();
  if (conn.parser.status() == RequestParser::Status::kComplete) {
    // A pipelined request was already buffered.
    conn.state = Connection::State::kReading;
    poller_.mod(fd, /*read=*/false, /*write=*/false);
    handle_parsed_request(conn);
    return;
  }
  if (conn.parser.status() == RequestParser::Status::kError) {
    metrics_.on_parse_error();
    conn.endpoint = "other";
    conn.request_start = Clock::now();
    conn.response_keep_alive = false;
    conn.state = Connection::State::kReading;
    finish_request(conn, error_response(conn.parser.error_status(),
                                        conn.parser.error_reason()));
    return;
  }
  start_reading(conn);
}

void HttpServer::start_reading(Connection& conn) {
  conn.state = Connection::State::kReading;
  conn.expiry = Clock::now() + ms(conn.parser.buffered_bytes() > 0
                                      ? options_.read_timeout_ms
                                      : options_.idle_timeout_ms);
  poller_.mod(conn.socket.fd(), /*read=*/true, /*write=*/false);
}

void HttpServer::handle_timeouts(Clock::time_point now) {
  std::vector<int> expired_close;
  std::vector<int> expired_deadline;
  for (const auto& [fd, conn] : connections_) {
    if (conn->state == Connection::State::kProcessing) {
      if (now >= conn->deadline) expired_deadline.push_back(fd);
    } else if (now >= conn->expiry) {
      expired_close.push_back(fd);
    }
  }
  for (int fd : expired_deadline) {
    auto it = connections_.find(fd);
    if (it == connections_.end()) continue;
    Connection& conn = *it->second;
    metrics_.on_deadline_expiry();
    // Ask still-queued work to skip itself, then disown the request: the
    // generation bump makes the eventual completion(s) no-ops.
    if (conn.cancel) conn.cancel->cancel();
    if (conn.batch && conn.batch->cancel) conn.batch->cancel->cancel();
    ++conn.generation;
    finish_request(conn, error_response(504, "deadline exceeded"));
  }
  for (int fd : expired_close) {
    close_connection(fd);
  }
  if (draining_ && now >= drain_deadline_) {
    std::vector<int> all;
    all.reserve(connections_.size());
    for (const auto& [fd, conn] : connections_) all.push_back(fd);
    for (int fd : all) close_connection(fd);
  }
}

void HttpServer::begin_drain() {
  draining_ = true;
  drain_deadline_ = Clock::now() + ms(options_.drain_timeout_ms);
  if (listener_.valid()) {
    poller_.remove(listener_.fd());
    listener_.close();
  }
  // Idle connections (no request in progress, nothing buffered) can close
  // immediately; everyone else gets Connection: close on their response.
  std::vector<int> idle;
  for (const auto& [fd, conn] : connections_) {
    if (conn->state == Connection::State::kReading &&
        conn->parser.status() == RequestParser::Status::kNeedMore &&
        conn->parser.buffered_bytes() == 0) {
      idle.push_back(fd);
    }
  }
  for (int fd : idle) close_connection(fd);
}

}  // namespace exten::net
