#pragma once

// Server observability: request counters by (endpoint, status), a fixed-
// bucket latency histogram, per-stage latency histograms (queueing vs.
// cache probe vs. ISS evaluation — the per-component attribution the
// macro-model is about), connection/backpressure counters, and a
// text-exposition renderer (Prometheus style) for GET /metrics.
//
// Thread safety: every ServerMetrics method takes one internal mutex. Each
// event-loop shard owns its own ServerMetrics, so in steady state the lock
// is uncontended (same-thread); contention only happens when another
// shard's /metrics handler snapshots this shard for cluster aggregation.
// Gauges that live elsewhere (queue depth, eval-cache stats) are sampled
// at render time and passed in. Worker-side stage timings travel back to
// the loop thread inside JobResult::timings and are observed there.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "energy/backend.h"
#include "energy/procfs.h"
#include "service/eval_cache.h"

namespace exten::net {

/// Cumulative latency histogram with log-spaced bounds (100us .. 10s).
class LatencyHistogram {
 public:
  LatencyHistogram();

  void observe(double seconds);

  std::uint64_t count() const { return count_; }
  double sum_seconds() const { return sum_seconds_; }
  /// Approximate quantile (upper bucket bound), 0 when empty. A quantile
  /// that falls in the overflow bucket (observations above bounds().back())
  /// has no finite upper bound: it returns +infinity and sets
  /// *is_overflow, so a degraded server's p99 can never be silently
  /// capped at the top bound.
  double quantile(double q, bool* is_overflow = nullptr) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts: counts()[i] is the number of observations that
  /// landed in bucket i (bounds()[i-1], bounds()[i]], NOT a cumulative
  /// total — the Prometheus renderer accumulates when it emits the
  /// cumulative `le` buckets. One extra overflow bucket at the end holds
  /// observations above bounds().back().
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// Adds another histogram's observations into this one (bucket-wise; the
  /// bounds ladder is identical by construction). The cross-shard
  /// aggregation primitive.
  void merge(const LatencyHistogram& other);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_seconds_ = 0.0;
};

/// Request-processing stages attributed in xtc_stage_duration_seconds.
/// Fixed set (array-indexed) so the per-request observe path costs an
/// index, not a map lookup.
enum class Stage : std::uint8_t {
  kParse,       ///< HTTP bytes -> parsed request (summed feed() time)
  kRoute,       ///< routing + body JSON/TIE parse + job dispatch
  kQueueWait,   ///< job enqueue -> worker dequeue
  kCacheProbe,  ///< content hash + eval-cache lookup
  kEvaluate,    ///< ISS simulation + macro-model evaluation (cache miss)
  kRespond,     ///< response serialization start -> last byte written
};
inline constexpr std::size_t kNumStages = 6;

const char* stage_name(Stage stage);

/// Point-in-time gauges sampled by the renderer.
struct MetricsGauges {
  std::size_t open_connections = 0;
  std::size_t inflight_requests = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  bool draining = false;
  service::CacheStats cache;
  /// Host-energy backend: "rapl"|"synthetic"|"none" plus the cumulative
  /// per-domain joules (empty with the null backend — the energy families
  /// are then omitted, everything else keeps working).
  std::string energy_backend = "none";
  std::vector<energy::DomainEnergy> energy;
  /// Process self-telemetry; families omitted when !proc.ok.
  energy::ProcSelfStats proc;
  /// Event-loop shards behind this exposition (1 for a plain HttpServer).
  std::size_t shards = 1;
};

/// A consistent copy of every cumulative counter in a ServerMetrics —
/// what one shard contributes to a cluster-wide /metrics exposition.
struct MetricsSnapshot {
  std::map<std::pair<std::string, int>, std::uint64_t> requests;
  LatencyHistogram latency;
  LatencyHistogram stage_latency[kNumStages];
  std::uint64_t connections_accepted = 0;
  std::uint64_t backpressure_rejections = 0;
  std::uint64_t deadline_expiries = 0;
  std::uint64_t parse_errors = 0;

  std::uint64_t requests_total() const { return latency.count(); }

  /// Adds another shard's counters into this one.
  void merge(const MetricsSnapshot& other);
};

/// Per-shard sample rendered as the xtc_shard_* families so an operator
/// can see load (im)balance without losing the aggregated view.
struct ShardSample {
  unsigned shard = 0;
  std::uint64_t requests = 0;
  std::uint64_t connections_accepted = 0;
  std::uint64_t backpressure_rejections = 0;
  std::uint64_t deadline_expiries = 0;
  std::size_t open_connections = 0;
  std::size_t inflight_requests = 0;
};

/// Renders the text exposition (text/plain; version=0.0.4) for a (possibly
/// merged) snapshot. Every family carries # HELP and # TYPE lines; label
/// values are escaped per the Prometheus text-format rules. A non-empty
/// `shards` adds the per-shard families (xtc_shard_requests_total, ...)
/// with shard="N" labels on top of the aggregated ones.
std::string render_metrics(const MetricsSnapshot& snapshot,
                           const MetricsGauges& gauges,
                           const std::vector<ShardSample>& shards = {});

class ServerMetrics {
 public:
  /// Records one finished HTTP exchange. `endpoint` is the route label
  /// ("estimate", "batch", "rank", "healthz", "metrics", "trace",
  /// "other").
  void record_request(std::string_view endpoint, int status, double seconds);

  /// Records one stage duration (per request for server stages, per job
  /// for worker stages).
  void observe_stage(Stage stage, double seconds);
  /// Copy (not reference): the underlying histogram may be mutated by the
  /// owning shard while the caller inspects it.
  LatencyHistogram stage_latency(Stage stage) const;

  void on_connection_opened();
  void on_backpressure_rejection();
  void on_deadline_expiry();
  void on_parse_error();

  std::uint64_t requests_total() const;
  std::uint64_t connections_accepted() const;
  std::uint64_t backpressure_rejections() const;
  std::uint64_t deadline_expiries() const;

  /// A consistent copy of every counter; safe from any thread.
  MetricsSnapshot snapshot() const;

  /// Renders this object's own counters (single-shard exposition);
  /// equivalent to render_metrics(snapshot(), gauges).
  std::string render(const MetricsGauges& gauges) const;

 private:
  mutable std::mutex mu_;
  MetricsSnapshot counters_;
};

}  // namespace exten::net
