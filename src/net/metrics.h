#pragma once

// Server observability: request counters by (endpoint, status), a fixed-
// bucket latency histogram, connection/backpressure counters, and a
// text-exposition renderer (Prometheus style) for GET /metrics.
//
// Thread safety: none — every member is mutated and read exclusively on
// the server's event-loop thread. Gauges that live elsewhere (queue depth,
// eval-cache stats) are sampled at render time and passed in.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "service/eval_cache.h"

namespace exten::net {

/// Cumulative latency histogram with log-spaced bounds (100us .. 10s).
class LatencyHistogram {
 public:
  LatencyHistogram();

  void observe(double seconds);

  std::uint64_t count() const { return count_; }
  double sum_seconds() const { return sum_seconds_; }
  /// Approximate quantile (upper bucket bound), 0 when empty.
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// counts()[i] = observations <= bounds()[i]; one extra overflow bucket
  /// at the end.
  const std::vector<std::uint64_t>& counts() const { return counts_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_seconds_ = 0.0;
};

/// Point-in-time gauges sampled by the renderer.
struct MetricsGauges {
  std::size_t open_connections = 0;
  std::size_t inflight_requests = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 0;
  bool draining = false;
  service::CacheStats cache;
};

class ServerMetrics {
 public:
  /// Records one finished HTTP exchange. `endpoint` is the route label
  /// ("estimate", "batch", "rank", "healthz", "metrics", "other").
  void record_request(std::string_view endpoint, int status, double seconds);

  void on_connection_opened() { ++connections_accepted_; }
  void on_backpressure_rejection() { ++backpressure_rejections_; }
  void on_deadline_expiry() { ++deadline_expiries_; }
  void on_parse_error() { ++parse_errors_; }

  std::uint64_t requests_total() const { return latency_.count(); }
  std::uint64_t backpressure_rejections() const {
    return backpressure_rejections_;
  }
  std::uint64_t deadline_expiries() const { return deadline_expiries_; }

  /// Renders the text exposition (text/plain; version=0.0.4).
  std::string render(const MetricsGauges& gauges) const;

 private:
  std::map<std::pair<std::string, int>, std::uint64_t> requests_;
  LatencyHistogram latency_;
  std::uint64_t connections_accepted_ = 0;
  std::uint64_t backpressure_rejections_ = 0;
  std::uint64_t deadline_expiries_ = 0;
  std::uint64_t parse_errors_ = 0;
};

}  // namespace exten::net
