#pragma once

// Multi-core scale-out for the estimation server: N independent HttpServer
// event loops ("shards"), one thread each, in front of one shared
// BatchEstimator (whose striped EvalCache and bounded MPMC queue are
// already thread-safe).
//
// Accept models:
//
//   kReusePort — every shard binds its own SO_REUSEPORT listener on the
//     same address:port and the kernel load-balances incoming connections
//     across them. Zero cross-shard coordination on the accept path; this
//     is the default wherever SO_REUSEPORT exists.
//
//   kHandoff — one acceptor thread owns the single listener and hands
//     accepted sockets to shards round-robin via HttpServer::adopt_socket
//     (mutex-protected queue + self-pipe wakeup). Portable fallback, and
//     the mode the deterministic tests use: connection k lands on shard
//     k % num_shards, so a test can aim traffic at one specific shard.
//
// /metrics on ANY shard answers with the cluster-aggregated exposition:
// per-shard MetricsSnapshots merged into one set of xtc_* families (so the
// single-shard dashboards keep working unchanged) plus per-shard
// xtc_shard_* families labeled shard="N" for load-balance visibility.
//
// Shutdown: request_stop() is async-signal-safe (atomic flags + pipe
// writes, no locks). The acceptor stops and closes the shared listener,
// every shard drains independently (503s new estimation work, finishes
// in-flight requests, closes idle connections), and run() joins all shard
// threads before returning.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/server.h"
#include "net/socket.h"

namespace exten::net {

struct ShardedServerOptions {
  /// Per-shard template. `port`/`bind_address` describe the shared
  /// endpoint; `reuse_port`, `own_listener`, `shard_id` and
  /// `metrics_override` are overwritten per shard by the accept mode.
  ServerOptions server;
  /// Event-loop shards (>= 1). 1 behaves exactly like a plain HttpServer
  /// with a normal listener.
  unsigned shards = 1;

  enum class AcceptMode {
    kAuto,       ///< kReusePort when the platform has it, else kHandoff.
    kReusePort,  ///< per-shard SO_REUSEPORT listeners (kernel balancing)
    kHandoff,    ///< single acceptor thread, round-robin adopt_socket
  };
  AcceptMode accept_mode = AcceptMode::kAuto;
};

class ShardedServer {
 public:
  /// Binds all listeners immediately (throws exten::Error on failure).
  /// `estimator` must be shared-safe (BatchEstimator is) and outlive the
  /// server.
  ShardedServer(service::BatchEstimator& estimator,
                ShardedServerOptions options);
  ~ShardedServer();

  ShardedServer(const ShardedServer&) = delete;
  ShardedServer& operator=(const ShardedServer&) = delete;

  /// The shared bound port (useful with options.server.port == 0).
  std::uint16_t port() const { return port_; }
  unsigned num_shards() const {
    return static_cast<unsigned>(shards_.size());
  }
  /// True when the reuseport accept model is active (false = handoff).
  bool using_reuse_port() const { return reuse_port_; }

  /// Runs every shard (plus the acceptor in handoff mode) until a
  /// requested stop has fully drained all of them. Call from one thread.
  void run();

  /// Initiates graceful shutdown of every shard; async-signal-safe,
  /// callable from any thread. Idempotent.
  void request_stop();

  /// Lifetime request count summed over shards (valid after run()).
  std::uint64_t requests_served() const;

  /// Shard accessor for tests ( i < num_shards() ).
  HttpServer& shard(std::size_t i) { return *shards_[i]; }

  /// The cluster-aggregated /metrics body (what any shard's /metrics
  /// route serves); exposed for tests and for scraping without HTTP.
  std::string render_cluster_metrics() const;

 private:
  void acceptor_loop();

  service::BatchEstimator& estimator_;
  ShardedServerOptions options_;
  std::uint16_t port_ = 0;
  bool reuse_port_ = false;

  std::vector<std::unique_ptr<HttpServer>> shards_;

  // Handoff mode only: the shared listener + the acceptor's wake pipe.
  Socket listener_;
  Socket acceptor_wake_[2];

  std::atomic<bool> stop_requested_{false};
  bool running_ = false;
};

}  // namespace exten::net
