#pragma once

// JSON request/response schemas of the estimation API — the pure glue
// between HTTP bodies and the service/explore layers, with no sockets or
// event-loop state so it unit-tests directly.
//
//   POST /v1/estimate  {"name"?, "asm", "tie"?, "deadline_ms"?,
//                       "max_instructions"?}
//   POST /v1/batch     {"jobs": [<estimate request>, ...], "deadline_ms"?}
//   POST /v1/rank      {"candidates": [{"name"?, "asm", "tie"?}, ...],
//                       "objective"?: "energy"|"delay"|"edp",
//                       "deadline_ms"?}
//
// Sources are inline (assembly text, TIE-lite text), unlike the file-path
// convention of the CLI tools: a network client should not need a shared
// filesystem with the server. Parsing throws exten::Error with a message
// suitable for a 400 body.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "explore/explore.h"
#include "service/batch_estimator.h"
#include "util/json.h"

namespace exten::net::api {

struct EstimateRequest {
  /// "max_instructions" lands in job.max_instructions (0 = server default).
  service::BatchJob job;
  /// 0 = use the server default.
  int deadline_ms = 0;
};

struct BatchRequest {
  std::vector<EstimateRequest> jobs;
  int deadline_ms = 0;
};

struct RankRequest {
  std::vector<explore::Candidate> candidates;
  explore::Objective objective = explore::Objective::kEdp;
  int deadline_ms = 0;
};

/// Parses and compiles one estimate request (assembles "asm" against the
/// optional "tie" spec). Throws exten::Error on schema violations or
/// assembly/TIE errors.
EstimateRequest parse_estimate_request(const JsonValue& v);

/// Parses {"jobs": [...]}; enforces 1 <= jobs <= max_jobs. Identical TIE
/// sources across jobs share one compiled configuration (and therefore
/// one eval-cache key component).
BatchRequest parse_batch_request(const JsonValue& v, std::size_t max_jobs);

RankRequest parse_rank_request(const JsonValue& v, std::size_t max_jobs);

/// One JobResult as a JSON object: the energy breakdown (per-variable
/// contributions in pJ against `model`), totals, and cache/timing info on
/// success; {"ok": false, "error", "cancelled"} on failure.
std::string job_result_body(const service::JobResult& result,
                            const model::EnergyMacroModel& model);

/// {"results": [...], "succeeded": N, "failed": N}
std::string batch_result_body(const std::vector<service::JobResult>& results,
                              const model::EnergyMacroModel& model);

/// Ranked candidates with Pareto marks.
std::string rank_result_body(const explore::ExploreResult& result);

/// {"error": "<message>"}
std::string error_body(std::string_view message);

}  // namespace exten::net::api
