#include "net/sharded_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "util/error.h"

namespace exten::net {

ShardedServer::ShardedServer(service::BatchEstimator& estimator,
                             ShardedServerOptions options)
    : estimator_(estimator), options_(std::move(options)) {
  EXTEN_CHECK(options_.shards >= 1, "ShardedServer needs >= 1 shard");

  using AcceptMode = ShardedServerOptions::AcceptMode;
  AcceptMode mode = options_.accept_mode;
  if (mode == AcceptMode::kAuto) {
    mode = reuse_port_supported() ? AcceptMode::kReusePort
                                  : AcceptMode::kHandoff;
  }
  // One shard needs no balancing at all: plain listener, no acceptor.
  reuse_port_ = options_.shards > 1 && mode == AcceptMode::kReusePort;
  const bool handoff = options_.shards > 1 && mode == AcceptMode::kHandoff;

  port_ = options_.server.port;
  if (handoff) {
    listener_ = listen_tcp(options_.server.bind_address, &port_);
    make_wake_pipe(acceptor_wake_);
  }

  shards_.reserve(options_.shards);
  for (unsigned i = 0; i < options_.shards; ++i) {
    ServerOptions shard_options = options_.server;
    shard_options.shard_id = i;
    shard_options.port = port_;
    shard_options.reuse_port = reuse_port_;
    shard_options.own_listener = !handoff;
    shard_options.metrics_override = [this] {
      return render_cluster_metrics();
    };
    shards_.push_back(std::make_unique<HttpServer>(
        estimator_, std::move(shard_options)));
    if (i == 0 && !handoff) {
      // Shard 0 resolved the ephemeral port; later reuseport listeners
      // must bind the same one.
      port_ = shards_[0]->port();
    }
  }
}

ShardedServer::~ShardedServer() = default;

void ShardedServer::request_stop() {
  stop_requested_.store(true, std::memory_order_release);
  // Nudge the acceptor (no-op pipe in reuseport mode) and every shard.
  // Only async-signal-safe calls here; shards_ is structurally frozen
  // after construction.
  const char byte = 1;
  if (acceptor_wake_[1].valid()) {
    [[maybe_unused]] ssize_t n = ::write(acceptor_wake_[1].fd(), &byte, 1);
  }
  for (const auto& shard : shards_) shard->request_stop();
}

void ShardedServer::acceptor_loop() {
  // Round-robin handoff: connection k goes to shard k % N — deterministic,
  // which is what lets a test saturate one specific shard.
  std::size_t next = 0;
  pollfd fds[2] = {{listener_.fd(), POLLIN, 0},
                   {acceptor_wake_[0].fd(), POLLIN, 0}};
  while (!stop_requested_.load(std::memory_order_acquire)) {
    fds[0].revents = 0;
    fds[1].revents = 0;
    const int ready = ::poll(fds, 2, /*timeout_ms=*/1000);
    if (ready <= 0) continue;  // timeout/EINTR: re-check the stop flag
    if (fds[1].revents != 0) {
      char buf[64];
      while (::read(acceptor_wake_[0].fd(), buf, sizeof(buf)) > 0) {
      }
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    while (true) {
      const int fd = ::accept(listener_.fd(), nullptr, nullptr);
      if (fd < 0) break;  // EAGAIN/EINTR/transient: pass is over
      shards_[next]->adopt_socket(Socket(fd));
      next = (next + 1) % shards_.size();
    }
  }
  // Stop accepting before the shards drain; pending-but-unserved backlog
  // connections get a reset, same as a plain HttpServer closing its
  // listener in begin_drain().
  listener_.close();
}

void ShardedServer::run() {
  EXTEN_CHECK(!running_, "ShardedServer::run() may only be called once");
  running_ = true;

  std::vector<std::thread> threads;
  threads.reserve(shards_.size() + 1);
  for (const auto& shard : shards_) {
    threads.emplace_back([&server = *shard] { server.run(); });
  }
  if (listener_.valid()) {
    threads.emplace_back([this] { acceptor_loop(); });
  }
  for (std::thread& t : threads) t.join();
}

std::uint64_t ShardedServer::requests_served() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->requests_served();
  return total;
}

std::string ShardedServer::render_cluster_metrics() const {
  MetricsSnapshot total;
  std::vector<ShardSample> samples;
  samples.reserve(shards_.size());
  std::size_t open_connections = 0;
  std::size_t inflight = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const MetricsSnapshot snap = shards_[i]->metrics_snapshot();
    ShardSample sample;
    sample.shard = static_cast<unsigned>(i);
    sample.requests = snap.requests_total();
    sample.connections_accepted = snap.connections_accepted;
    sample.backpressure_rejections = snap.backpressure_rejections;
    sample.deadline_expiries = snap.deadline_expiries;
    sample.open_connections = shards_[i]->open_connections();
    sample.inflight_requests = shards_[i]->inflight_requests();
    open_connections += sample.open_connections;
    inflight += sample.inflight_requests;
    samples.push_back(sample);
    total.merge(snap);
  }

  MetricsGauges gauges;
  gauges.open_connections = open_connections;
  gauges.inflight_requests = inflight;
  gauges.queue_depth = estimator_.queue_depth();
  gauges.queue_capacity = estimator_.queue_capacity();
  gauges.draining = stop_requested_.load(std::memory_order_acquire);
  gauges.cache = estimator_.cache_stats();
  if (options_.server.energy_meter != nullptr) {
    gauges.energy_backend = options_.server.energy_meter->kind();
    gauges.energy = options_.server.energy_meter->snapshot();
  }
  gauges.proc = energy::read_proc_self_stats();
  gauges.shards = shards_.size();
  return render_metrics(total, gauges, samples);
}

}  // namespace exten::net
