#include "net/poller.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.h"

#if defined(__linux__)
#define EXTEN_HAVE_EPOLL 1
#include <sys/epoll.h>
#else
#define EXTEN_HAVE_EPOLL 0
#endif

namespace exten::net {

namespace {
constexpr std::size_t kMaxEventsPerWait = 64;
}  // namespace

Poller::Poller(Backend backend) : backend_(backend) {
  if (backend_ == Backend::kDefault) {
    backend_ = EXTEN_HAVE_EPOLL ? Backend::kEpoll : Backend::kPoll;
  }
#if EXTEN_HAVE_EPOLL
  if (backend_ == Backend::kEpoll) {
    epoll_fd_ = ::epoll_create1(0);
    EXTEN_CHECK(epoll_fd_ >= 0, "epoll_create1(): ", std::strerror(errno));
  }
#else
  EXTEN_CHECK(backend_ != Backend::kEpoll,
              "epoll backend requested on a non-Linux build");
#endif
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

#if EXTEN_HAVE_EPOLL
namespace {
std::uint32_t epoll_mask(bool read, bool write) {
  std::uint32_t mask = 0;
  if (read) mask |= EPOLLIN;
  if (write) mask |= EPOLLOUT;
  return mask;  // EPOLLERR/EPOLLHUP are implicit
}
}  // namespace
#endif

void Poller::add(int fd, bool read, bool write) {
  if (backend_ == Backend::kEpoll) {
#if EXTEN_HAVE_EPOLL
    epoll_event ev{};
    ev.events = epoll_mask(read, write);
    ev.data.fd = fd;
    EXTEN_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
                "epoll_ctl(ADD): ", std::strerror(errno));
#endif
  } else {
    short events = 0;
    if (read) events |= POLLIN;
    if (write) events |= POLLOUT;
    poll_entries_.push_back({fd, events});
  }
  ++watched_;
}

void Poller::mod(int fd, bool read, bool write) {
  if (backend_ == Backend::kEpoll) {
#if EXTEN_HAVE_EPOLL
    epoll_event ev{};
    ev.events = epoll_mask(read, write);
    ev.data.fd = fd;
    EXTEN_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0,
                "epoll_ctl(MOD): ", std::strerror(errno));
#endif
  } else {
    for (PollEntry& entry : poll_entries_) {
      if (entry.fd == fd) {
        entry.events = static_cast<short>((read ? POLLIN : 0) |
                                          (write ? POLLOUT : 0));
        return;
      }
    }
    throw Error("poller: mod of unregistered fd ", fd);
  }
}

void Poller::remove(int fd) {
  if (backend_ == Backend::kEpoll) {
#if EXTEN_HAVE_EPOLL
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
  } else {
    for (std::size_t i = 0; i < poll_entries_.size(); ++i) {
      if (poll_entries_[i].fd == fd) {
        poll_entries_[i] = poll_entries_.back();
        poll_entries_.pop_back();
        break;
      }
    }
  }
  if (watched_ > 0) --watched_;
}

const std::vector<Poller::Event>& Poller::wait(int timeout_ms) {
  events_.clear();
  if (backend_ == Backend::kEpoll) {
#if EXTEN_HAVE_EPOLL
    epoll_event raw[kMaxEventsPerWait];
    const int n = ::epoll_wait(epoll_fd_, raw,
                               static_cast<int>(kMaxEventsPerWait),
                               timeout_ms);
    if (n < 0) {
      EXTEN_CHECK(errno == EINTR, "epoll_wait(): ", std::strerror(errno));
      return events_;  // interrupted by a signal: report no events
    }
    events_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      Event event;
      event.fd = raw[i].data.fd;
      event.readable = (raw[i].events & EPOLLIN) != 0;
      event.writable = (raw[i].events & EPOLLOUT) != 0;
      event.hangup = (raw[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      events_.push_back(event);
    }
#endif
  } else {
    std::vector<pollfd> fds;
    fds.reserve(poll_entries_.size());
    for (const PollEntry& entry : poll_entries_) {
      fds.push_back({entry.fd, entry.events, 0});
    }
    const int n = ::poll(fds.data(), fds.size(), timeout_ms);
    if (n < 0) {
      EXTEN_CHECK(errno == EINTR, "poll(): ", std::strerror(errno));
      return events_;
    }
    for (const pollfd& pfd : fds) {
      if (pfd.revents == 0) continue;
      Event event;
      event.fd = pfd.fd;
      event.readable = (pfd.revents & POLLIN) != 0;
      event.writable = (pfd.revents & POLLOUT) != 0;
      event.hangup = (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      events_.push_back(event);
      if (events_.size() >= kMaxEventsPerWait) break;
    }
  }
  return events_;
}

}  // namespace exten::net
