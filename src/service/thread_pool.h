#pragma once

// Fixed-size worker pool over a BoundedQueue<std::function<void()>>.
//
// Deliberately minimal: the pool runs opaque closures and guarantees that
// a throwing job never takes down its worker thread (the exception is
// swallowed and counted). Callers that care about per-job errors — the
// BatchEstimator does — capture them inside the closure; an escaped
// exception here indicates a bug in the submitting layer, not in the job.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "service/job_queue.h"

namespace exten::service {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = std::thread::hardware_concurrency,
  /// itself clamped to >= 1). `queue_capacity` 0 selects 2x the worker
  /// count, enough to keep every worker fed while bounding memory.
  explicit ThreadPool(unsigned num_threads = 0, std::size_t queue_capacity = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Graceful shutdown: drains queued jobs, then joins.
  ~ThreadPool();

  /// Enqueues a job; blocks while the queue is full (backpressure).
  /// Returns false after shutdown() — the job is dropped, not run.
  bool submit(std::function<void()> job);

  /// Non-blocking enqueue: false (dropping the job) when the queue is full
  /// or shut down. The admission-control primitive for callers that must
  /// not block — the HTTP server turns a false here into a 503.
  bool try_submit(std::function<void()> job);

  /// Closes the queue, lets workers drain every queued job, joins them.
  /// Idempotent; submit() fails afterwards.
  void shutdown();

  unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Jobs waiting in the queue (excludes jobs already running on a
  /// worker). Instantaneous snapshot; exposed for /metrics.
  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t queue_capacity() const { return queue_.capacity(); }

  /// Jobs whose exceptions escaped into a worker (see file comment).
  std::uint64_t escaped_exceptions() const;

 private:
  void worker_loop();

  BoundedQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  mutable std::mutex escaped_mu_;
  std::uint64_t escaped_exceptions_ = 0;
};

/// `requested` threads resolved against the host (0 -> hardware
/// concurrency, never less than 1).
unsigned resolve_thread_count(unsigned requested);

}  // namespace exten::service
