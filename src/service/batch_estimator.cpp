#include "service/batch_estimator.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <latch>

#include "obs/trace.h"
#include "util/error.h"

namespace exten::service {

namespace {
double seconds_since(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

std::uint64_t ns_between(std::chrono::steady_clock::time_point from,
                         std::chrono::steady_clock::time_point to) {
  const auto delta =
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count();
  return delta > 0 ? static_cast<std::uint64_t>(delta) : 0;
}
}  // namespace

bool BatchResult::all_ok() const {
  for (const JobResult& r : results) {
    if (!r.ok) return false;
  }
  return true;
}

BatchEstimator::BatchEstimator(model::EnergyMacroModel model,
                               BatchOptions options)
    : model_(std::move(model)),
      model_digest_(hash_macro_model(model_)),
      options_(options),
      cache_(options.cache_capacity, options.cache_stripes),
      pool_(options.num_threads, options.queue_capacity) {}

JobResult BatchEstimator::run_job(
    const BatchJob& job, const CancelToken* cancel,
    std::chrono::steady_clock::time_point enqueued) {
  const auto start = std::chrono::steady_clock::now();
  JobResult result;
  result.name = job.name;
  result.timings.queue_seconds =
      std::chrono::duration<double>(start - enqueued).count();
  if (result.timings.queue_seconds < 0.0) result.timings.queue_seconds = 0.0;
  if (cancel != nullptr && cancel->cancelled()) {
    result.cancelled = true;
    result.error = "cancelled before execution";
    return result;
  }
  // Propagate the request's correlation id to every span emitted below
  // (including the engine/TIE spans deep inside estimate_energy).
  const obs::ScopedId correlate(job.trace_id);
  if (obs::Tracer::enabled()) {
    // queue_wait is measured externally (submission happened on another
    // thread); emit it on this worker's track just before the job span.
    obs::emit_span(obs::Category::kService, "queue_wait", obs::current_id(),
                   obs::Tracer::to_ns(enqueued), ns_between(enqueued, start));
  }
  obs::ScopedSpan job_span(obs::Category::kService, "job");
  try {
    EXTEN_CHECK(job.program.tie != nullptr, "job '", job.name,
                "' has no TIE configuration");
    const std::uint64_t budget = job.max_instructions != 0
                                     ? job.max_instructions
                                     : options_.max_instructions;
    // The budget is an input to the evaluation (it decides whether a long
    // program errors out), so it participates in the cache key.
    const auto probe_start = std::chrono::steady_clock::now();
    ContentHasher budget_hash;
    budget_hash.u64(budget);
    const Digest key = combine_digests(
        {hash_program_image(job.program.image),
         hash_tie_configuration(*job.program.tie),
         hash_processor_config(job.processor), model_digest_,
         budget_hash.digest()});
    std::optional<model::EnergyEstimate> cached = cache_.lookup(key);
    result.timings.cache_probe_seconds = seconds_since(probe_start);
    if (obs::Tracer::enabled()) {
      obs::emit_span(obs::Category::kService, "cache_probe",
                     obs::current_id(), obs::Tracer::to_ns(probe_start),
                     ns_between(probe_start, std::chrono::steady_clock::now()),
                     "hit", cached.has_value() ? 1 : 0);
    }
    if (cached.has_value()) {
      result.estimate = std::move(*cached);
      result.cache_hit = true;
    } else {
      const auto eval_start = std::chrono::steady_clock::now();
      {
        obs::ScopedSpan eval_span(obs::Category::kService, "evaluate");
        result.estimate = model::estimate_energy(model_, job.program,
                                                 job.processor, budget);
      }
      result.timings.evaluate_seconds = seconds_since(eval_start);
      cache_.insert(key, result.estimate);
    }
    result.ok = true;
  } catch (const std::exception& e) {
    result.error = e.what();
  }
  job_span.add_counter("cache_hit", result.cache_hit ? 1 : 0);
  result.worker_seconds = seconds_since(start);
  return result;
}

BatchResult BatchEstimator::estimate(std::span<const BatchJob> jobs) {
  const auto start = std::chrono::steady_clock::now();
  BatchResult batch;
  batch.metrics.jobs = jobs.size();
  batch.metrics.threads = pool_.num_threads();
  batch.results.resize(jobs.size());
  if (jobs.empty()) return batch;

  std::latch done(static_cast<std::ptrdiff_t>(jobs.size()));
  std::atomic<bool> rejected{false};
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // submit() blocks on the bounded queue (backpressure) — with a live
    // pool it only returns false after shutdown.
    const auto enqueued = std::chrono::steady_clock::now();
    const bool accepted =
        pool_.submit([this, &jobs, &batch, &done, i, enqueued] {
          batch.results[i] = run_job(jobs[i], nullptr, enqueued);
          done.count_down();
        });
    if (!accepted) {
      rejected = true;
      for (std::size_t j = i; j < jobs.size(); ++j) done.count_down();
      break;
    }
  }
  done.wait();
  EXTEN_CHECK(!rejected.load(), "batch estimator pool is shut down");

  for (const JobResult& r : batch.results) {
    if (r.ok) {
      ++batch.metrics.succeeded;
    } else {
      ++batch.metrics.failed;
    }
    if (r.cache_hit) {
      ++batch.metrics.cache_hits;
    } else if (r.ok) {
      ++batch.metrics.cache_misses;
    }
    batch.metrics.total_worker_seconds += r.worker_seconds;
  }
  batch.metrics.wall_seconds = seconds_since(start);
  return batch;
}

JobResult BatchEstimator::estimate_one(const BatchJob& job) {
  BatchResult batch = estimate(std::span<const BatchJob>(&job, 1));
  return std::move(batch.results.front());
}

bool BatchEstimator::try_submit(BatchJob job,
                                std::function<void(JobResult)> done,
                                std::shared_ptr<CancelToken> cancel) {
  // The closure owns the job, the token and the callback; run_job never
  // throws (per-job errors are captured into the result).
  const auto enqueued = std::chrono::steady_clock::now();
  return pool_.try_submit([this, job = std::move(job), done = std::move(done),
                           cancel = std::move(cancel), enqueued] {
    done(run_job(job, cancel.get(), enqueued));
  });
}

}  // namespace exten::service
