#include "service/thread_pool.h"

namespace exten::service {

unsigned resolve_thread_count(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned num_threads, std::size_t queue_capacity)
    : queue_(queue_capacity > 0
                 ? queue_capacity
                 : 2 * static_cast<std::size_t>(
                           resolve_thread_count(num_threads))) {
  const unsigned n = resolve_thread_count(num_threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> job) {
  return queue_.push(std::move(job));
}

bool ThreadPool::try_submit(std::function<void()> job) {
  return queue_.try_push(std::move(job));
}

void ThreadPool::shutdown() {
  queue_.close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::uint64_t ThreadPool::escaped_exceptions() const {
  std::lock_guard<std::mutex> lock(escaped_mu_);
  return escaped_exceptions_;
}

void ThreadPool::worker_loop() {
  while (std::optional<std::function<void()>> job = queue_.pop()) {
    try {
      (*job)();
    } catch (...) {
      std::lock_guard<std::mutex> lock(escaped_mu_);
      ++escaped_exceptions_;
    }
  }
}

}  // namespace exten::service
