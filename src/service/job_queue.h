#pragma once

// Bounded multi-producer / multi-consumer job queue.
//
// The service layer's backpressure primitive: producers block when the
// queue is full (so a million-job batch never materializes a million
// closures), consumers block when it is empty, and close() initiates a
// graceful shutdown — producers are refused, consumers drain the remaining
// items and then observe end-of-stream as std::nullopt.
//
// Condition-variable based; correctness under concurrency is exercised by
// tests/test_service.cpp and the TSan CI job.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace exten::service {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` must be >= 1.
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false (dropping `item`) when
  /// the queue is closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty. Returns std::nullopt only after
  /// close() AND every queued item has been drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Initiates shutdown: wakes every blocked producer (which fails) and
  /// consumer (which drains, then sees end-of-stream). Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace exten::service
