#include "service/content_hash.h"

#include <cstring>

#include "tie/expr.h"

namespace exten::service {

namespace {

// FNV-1a 64-bit offset bases / prime. The second stream starts from a
// different basis (the fractional bits of sqrt(2)) so the two 64-bit
// halves are effectively independent.
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
constexpr std::uint64_t kBasisHi = 0xcbf29ce484222325ull;
constexpr std::uint64_t kBasisLo = 0x6a09e667f3bcc908ull;

void hash_expr(ContentHasher& h, const tie::Expr& expr) {
  h.u8(static_cast<std::uint8_t>(expr.kind));
  h.u64(expr.literal);
  h.str(expr.name);
  h.str(expr.op);
  h.u64(expr.args.size());
  for (const tie::ExprPtr& arg : expr.args) hash_expr(h, *arg);
}

void hash_assignment(ContentHasher& h, const tie::Assignment& a) {
  h.u8(static_cast<std::uint8_t>(a.target));
  h.str(a.name);
  h.u8(a.index != nullptr);
  if (a.index) hash_expr(h, *a.index);
  hash_expr(h, *a.value);
}

void hash_component(ContentHasher& h, const tie::ComponentUse& use) {
  h.u8(static_cast<std::uint8_t>(use.cls));
  h.u32(use.width);
  h.u32(use.count);
  h.u32(use.entries);
  h.u64(use.active_cycles.size());
  for (unsigned cycle : use.active_cycles) h.u32(cycle);
}

}  // namespace

std::string Digest::hex() const {
  static const char* kDigits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t word = i < 8 ? hi : lo;
    const int shift = 56 - 8 * (i % 8);
    const std::uint8_t byte = static_cast<std::uint8_t>(word >> shift);
    out[2 * static_cast<std::size_t>(i)] = kDigits[byte >> 4];
    out[2 * static_cast<std::size_t>(i) + 1] = kDigits[byte & 0xf];
  }
  return out;
}

ContentHasher::ContentHasher() : hi_(kBasisHi), lo_(kBasisLo) {}

void ContentHasher::bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hi_ = (hi_ ^ p[i]) * kFnvPrime;
    lo_ = (lo_ ^ p[i]) * kFnvPrime;
    // Extra avalanche on the second stream keeps the halves decorrelated.
    lo_ ^= lo_ >> 29;
  }
}

void ContentHasher::u8(std::uint8_t v) { bytes(&v, 1); }

void ContentHasher::u32(std::uint32_t v) {
  std::uint8_t buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
  bytes(buf, sizeof(buf));
}

void ContentHasher::u64(std::uint64_t v) {
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
  bytes(buf, sizeof(buf));
}

void ContentHasher::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ContentHasher::str(std::string_view s) {
  u64(s.size());
  bytes(s.data(), s.size());
}

void ContentHasher::digest_of(const Digest& d) {
  u64(d.hi);
  u64(d.lo);
}

Digest hash_program_image(const isa::ProgramImage& image) {
  ContentHasher h;
  h.u32(image.entry_point());
  h.u64(image.segments().size());
  for (const isa::Segment& segment : image.segments()) {
    h.u32(segment.base);
    h.u64(segment.bytes.size());
    h.bytes(segment.bytes.data(), segment.bytes.size());
  }
  h.u64(image.symbols().size());
  for (const auto& [name, value] : image.symbols()) {
    h.str(name);
    h.u32(value);
  }
  return h.digest();
}

Digest hash_tie_configuration(const tie::TieConfiguration& tie) {
  ContentHasher h;
  h.u64(tie.instructions().size());
  for (const tie::CustomInstruction& ci : tie.instructions()) {
    h.str(ci.name);
    h.u8(ci.func);
    h.u32(ci.latency);
    h.u8(static_cast<std::uint8_t>((ci.reads_rs1 << 0) | (ci.reads_rs2 << 1) |
                                   (ci.writes_rd << 2) | (ci.isolated << 3)));
    h.u64(ci.components.size());
    for (const tie::ComponentUse& use : ci.components) hash_component(h, use);
    h.u64(ci.semantics.size());
    for (const tie::Assignment& a : ci.semantics) hash_assignment(h, a);
    for (double w : ci.execution_weights) h.f64(w);
    for (double w : ci.input_stage_weights) h.f64(w);
    h.f64(ci.total_complexity);
  }
  h.u64(tie.state_decls().size());
  for (const tie::StateDecl& d : tie.state_decls()) {
    h.str(d.name);
    h.u32(d.width);
  }
  h.u64(tie.regfile_decls().size());
  for (const tie::RegfileDecl& d : tie.regfile_decls()) {
    h.str(d.name);
    h.u32(d.width);
    h.u32(d.size);
  }
  h.u64(tie.tables().size());
  for (const auto& [name, table] : tie.tables()) {
    h.str(name);
    h.u32(table.width);
    h.u64(table.values.size());
    for (std::uint64_t v : table.values) h.u64(v);
  }
  return h.digest();
}

Digest hash_processor_config(const sim::ProcessorConfig& config) {
  ContentHasher h;
  h.f64(config.clock_mhz);
  for (const sim::CacheConfig* cache : {&config.icache, &config.dcache}) {
    h.u32(cache->size_bytes);
    h.u32(cache->line_bytes);
    h.u32(cache->ways);
  }
  h.u32(config.icache_miss_penalty);
  h.u32(config.dcache_miss_penalty);
  h.u32(config.uncached_fetch_penalty);
  h.u32(config.uncached_data_penalty);
  h.u32(config.taken_branch_penalty);
  h.u32(config.jump_penalty);
  h.u32(config.load_use_interlock);
  h.u32(config.uncached_base);
  return h.digest();
}

Digest hash_macro_model(const model::EnergyMacroModel& model) {
  ContentHasher h;
  h.u64(model.coefficients().size());
  for (std::size_t i = 0; i < model.coefficients().size(); ++i) {
    h.f64(model.coefficient(i));
  }
  return h.digest();
}

Digest combine_digests(std::initializer_list<Digest> digests) {
  ContentHasher h;
  for (const Digest& d : digests) h.digest_of(d);
  return h.digest();
}

}  // namespace exten::service
