#pragma once

// Content-addressed evaluation cache.
//
// Maps Digest(program image, TIE configuration, processor config,
// macro-model) -> EnergyEstimate with LRU eviction. Because an estimation
// run is a pure function of the hashed inputs (see content_hash.h), a hit
// is exactly as good as re-running the ISS — which is what makes repeated
// design-space exploration over overlapping candidate sets cheap.
//
// Thread safety: all methods are safe to call concurrently (one internal
// mutex; an evaluation is microseconds of copying against the
// milliseconds-to-seconds of a simulation, so a sharded design is not
// warranted yet). Note there is no in-flight dedup: two threads missing on
// the same key simultaneously both compute and both insert (last write
// wins, results are identical by construction).

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "model/estimate.h"
#include "service/content_hash.h"

namespace exten::service {

/// Counter snapshot (monotonic over the cache's lifetime, except entries).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;
  /// Approximate resident footprint of the cached entries (key + estimate
  /// + dynamic members); tracked on insert/evict so /metrics can report
  /// memory without walking the cache.
  std::uint64_t approx_bytes = 0;

  double hit_rate() const {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

class EvalCache {
 public:
  /// `capacity` = maximum resident entries; 0 disables caching entirely
  /// (every lookup misses, inserts are dropped).
  explicit EvalCache(std::size_t capacity);

  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  /// Returns a copy of the cached estimate and refreshes its LRU position;
  /// std::nullopt on miss. Counts a hit or a miss.
  std::optional<model::EnergyEstimate> lookup(const Digest& key);

  /// Inserts (or refreshes) `key`, evicting the least-recently-used entry
  /// when at capacity.
  void insert(const Digest& key, model::EnergyEstimate estimate);

  CacheStats stats() const;

  /// Drops every entry (counters other than `entries` / `approx_bytes`
  /// are preserved).
  void clear();

 private:
  // MRU at the front of lru_; map values point into the list.
  using LruList = std::list<std::pair<Digest, model::EnergyEstimate>>;

  const std::size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;
  std::unordered_map<Digest, LruList::iterator, DigestHash> index_;
  CacheStats stats_;
};

}  // namespace exten::service
