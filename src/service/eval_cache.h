#pragma once

// Content-addressed evaluation cache.
//
// Maps Digest(program image, TIE configuration, processor config,
// macro-model) -> EnergyEstimate with LRU eviction. Because an estimation
// run is a pure function of the hashed inputs (see content_hash.h), a hit
// is exactly as good as re-running the ISS — which is what makes repeated
// design-space exploration over overlapping candidate sets cheap.
//
// Thread safety: all methods are safe to call concurrently. The cache is
// lock-striped: the digest selects one of `num_stripes()` independent LRU
// shards (own mutex, own list/index/counters), so concurrent lookups from
// several server shards stop serializing on one lock. Striping trades
// global LRU order for per-stripe LRU order — eviction accuracy degrades
// only when one stripe's share of the capacity is hot — so small caches
// (< 128 entries by default) keep a single stripe and the exact global
// LRU behavior the unit tests pin down. Note there is no in-flight dedup:
// two threads missing on the same key simultaneously both compute and
// both insert (last write wins, results are identical by construction).

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/estimate.h"
#include "service/content_hash.h"

namespace exten::service {

/// Counter snapshot (monotonic over the cache's lifetime, except entries).
/// For a striped cache, stats() sums these across stripes; the invariant
/// `entries == insertions - evictions` holds per stripe and in total.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;
  /// Approximate resident footprint of the cached entries (key + estimate
  /// + dynamic members); tracked on insert/evict so /metrics can report
  /// memory without walking the cache.
  std::uint64_t approx_bytes = 0;

  double hit_rate() const {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

class EvalCache {
 public:
  /// `capacity` = maximum resident entries across all stripes; 0 disables
  /// caching entirely (every lookup misses, inserts are dropped).
  /// `stripes` = number of independent lock-striped LRU shards; 0 picks
  /// automatically (1 below kAutoStripeThreshold entries, else
  /// kMaxAutoStripes). The value is always clamped to [1, capacity] when
  /// capacity > 0, so no stripe ends up with zero capacity.
  explicit EvalCache(std::size_t capacity, std::size_t stripes = 0);

  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  /// Returns a copy of the cached estimate and refreshes its LRU position
  /// within its stripe; std::nullopt on miss. Counts a hit or a miss.
  std::optional<model::EnergyEstimate> lookup(const Digest& key);

  /// Inserts (or refreshes) `key`, evicting the least-recently-used entry
  /// of the key's stripe when that stripe is at capacity.
  void insert(const Digest& key, model::EnergyEstimate estimate);

  /// Aggregated over every stripe.
  CacheStats stats() const;

  std::size_t num_stripes() const { return stripes_.size(); }
  /// Which stripe `key` maps to (stable for the cache's lifetime).
  std::size_t stripe_of(const Digest& key) const;
  /// One stripe's counters (entries/capacity are that stripe's share).
  CacheStats stripe_stats(std::size_t stripe) const;

  /// Drops every entry (counters other than `entries` / `approx_bytes`
  /// are preserved).
  void clear();

  /// Caches below this capacity default to a single stripe (exact global
  /// LRU); at or above it, auto-striping kicks in.
  static constexpr std::size_t kAutoStripeThreshold = 128;
  static constexpr std::size_t kMaxAutoStripes = 16;

 private:
  // MRU at the front of each stripe's lru; index values point into it.
  using LruList = std::list<std::pair<Digest, model::EnergyEstimate>>;

  struct Stripe {
    mutable std::mutex mu;
    std::size_t capacity = 0;
    LruList lru;
    std::unordered_map<Digest, LruList::iterator, DigestHash> index;
    CacheStats stats;
  };

  const std::size_t capacity_;
  // unique_ptr because Stripe holds a mutex (immovable) and the vector is
  // sized once in the constructor.
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace exten::service
