#pragma once

// Content addressing for the batch-estimation service.
//
// An evaluation of (program image, TIE configuration, processor config,
// macro-model) is a pure function of those inputs: the simulator is
// deterministic and estimate_energy() builds all mutable state per call.
// That makes results cacheable under a content hash of the inputs — the
// key ingredient that lets design-space exploration re-rank overlapping
// candidate sets without re-running the ISS.
//
// The digest is 128 bits built from two independently-seeded FNV-1a-64
// streams. This is not a cryptographic hash: the service trusts its
// callers, and 128 bits is far beyond birthday-collision range for any
// realistic cache population.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "isa/program.h"
#include "model/macro_model.h"
#include "sim/config.h"
#include "tie/compiler.h"

namespace exten::service {

/// A 128-bit content digest.
struct Digest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Digest& other) const {
    return hi == other.hi && lo == other.lo;
  }
  bool operator!=(const Digest& other) const { return !(*this == other); }

  /// 32 lowercase hex characters.
  std::string hex() const;
};

/// Hash functor for unordered containers keyed by Digest.
struct DigestHash {
  std::size_t operator()(const Digest& d) const {
    // The digest is already uniformly mixed; fold the halves.
    return static_cast<std::size_t>(d.hi ^ (d.lo * 0x9e3779b97f4a7c15ull));
  }
};

/// Streaming hasher. Feed typed values (each update is length/type
/// delimited by construction: fixed-width encodings, and strings are
/// prefixed with their size) and take the digest at the end.
class ContentHasher {
 public:
  ContentHasher();

  void bytes(const void* data, std::size_t size);
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Hashes the IEEE-754 bit pattern (all coefficient/weight values in the
  /// model are computed deterministically, so bit equality is the right
  /// notion of "same input").
  void f64(double v);
  /// Size-prefixed so concatenated strings cannot alias each other.
  void str(std::string_view s);
  void digest_of(const Digest& d);

  Digest digest() const { return Digest{hi_, lo_}; }

 private:
  std::uint64_t hi_ = 0;
  std::uint64_t lo_ = 0;
};

/// Content hash of a linked program image: entry point, segments (base
/// address + bytes) and symbol table.
Digest hash_program_image(const isa::ProgramImage& image);

/// Content hash of a compiled TIE configuration: every custom instruction
/// (opcode binding, latency, operand flags, datapath components, semantics
/// expression trees, derived weights), every custom state / register-file
/// declaration and every lookup table. Two specs that differ anywhere a
/// simulation or the resource-usage analysis could observe hash apart.
Digest hash_tie_configuration(const tie::TieConfiguration& tie);

/// Content hash of the processor configuration (all timing/geometry knobs).
Digest hash_processor_config(const sim::ProcessorConfig& config);

/// Content hash of the fitted macro-model coefficients.
Digest hash_macro_model(const model::EnergyMacroModel& model);

/// Order-sensitive combination of several digests.
Digest combine_digests(std::initializer_list<Digest> digests);

}  // namespace exten::service
