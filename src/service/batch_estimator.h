#pragma once

// BatchEstimator: the serving facade of the energy-estimation service.
//
// The paper's point (§I) is that the macro-model makes energy estimation
// fast enough to sit inside a design-space-exploration loop. This layer
// makes it fast enough to sit inside a *large* one: N estimation jobs fan
// out across a fixed thread pool (each worker builds its own Cpu/Memory/
// cache instances — see the thread-safety notes in sim/cpu.h and
// model/estimate.h), results land in job order regardless of scheduling,
// and a content-addressed cache makes re-evaluating an already-seen
// (program, TIE, processor) triple free.
//
// Error isolation: a job that throws (assembly referencing an unmapped
// address, an illegal instruction, a TIE fault, ...) is captured into its
// JobResult; the rest of the batch is unaffected.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/estimate.h"
#include "model/macro_model.h"
#include "model/test_program.h"
#include "service/eval_cache.h"
#include "service/thread_pool.h"
#include "sim/config.h"

namespace exten::service {

struct BatchOptions {
  /// Worker threads; 0 = hardware concurrency.
  unsigned num_threads = 0;
  /// Maximum cached evaluations (LRU); 0 disables the cache.
  std::size_t cache_capacity = 1024;
  /// Job-queue depth; 0 = 2x worker count.
  std::size_t queue_capacity = 0;
  /// Per-job instruction budget forwarded to the simulator.
  std::uint64_t max_instructions = 200'000'000;
};

/// One estimation request.
struct BatchJob {
  std::string name;
  model::TestProgram program;
  sim::ProcessorConfig processor{};
};

/// Outcome of one job. Exactly one of {ok, !error.empty()} holds.
struct JobResult {
  std::string name;
  bool ok = false;
  /// exten::Error (or std::exception) message when !ok.
  std::string error;
  /// Result was served from the evaluation cache.
  bool cache_hit = false;
  /// Valid when ok. On a cache hit this is the original evaluation,
  /// including its elapsed_seconds (the cost that was *avoided*).
  model::EnergyEstimate estimate;
  /// Wall-clock seconds this job spent in its worker (hash + cache
  /// lookup + simulation; microseconds on a hit).
  double worker_seconds = 0.0;
};

/// Per-batch metrics (the cache counters are scoped to the batch, not the
/// cache lifetime — see BatchEstimator::cache_stats for the latter).
struct BatchMetrics {
  std::size_t jobs = 0;
  std::size_t succeeded = 0;
  std::size_t failed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// End-to-end wall-clock seconds for the batch.
  double wall_seconds = 0.0;
  /// Sum of worker_seconds over jobs — what one thread would have paid.
  double total_worker_seconds = 0.0;
  unsigned threads = 1;

  double hit_rate() const {
    const std::uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(lookups);
  }
  /// Parallel + cache speedup realized vs. running the same work serially.
  double speedup_vs_serial() const {
    return wall_seconds <= 0.0 ? 1.0 : total_worker_seconds / wall_seconds;
  }
};

struct BatchResult {
  /// results[i] corresponds to jobs[i] — deterministic, scheduling-free
  /// ordering.
  std::vector<JobResult> results;
  BatchMetrics metrics;

  /// True when every job succeeded.
  bool all_ok() const;
};

/// Thread safety: estimate() may be called from several threads at once
/// (jobs interleave on the shared pool; each call still returns its own
/// ordered results). The estimator must outlive every call.
class BatchEstimator {
 public:
  explicit BatchEstimator(model::EnergyMacroModel model,
                          BatchOptions options = {});

  /// Evaluates every job and returns results in job order. Per-job errors
  /// are captured, never thrown; throws only on internal service failure
  /// (pool already shut down).
  BatchResult estimate(std::span<const BatchJob> jobs);

  /// Convenience: single job.
  JobResult estimate_one(const BatchJob& job);

  const model::EnergyMacroModel& model() const { return model_; }
  unsigned num_threads() const { return pool_.num_threads(); }

  /// Lifetime cache counters (across batches).
  CacheStats cache_stats() const { return cache_.stats(); }
  void clear_cache() { cache_.clear(); }

 private:
  JobResult run_job(const BatchJob& job);

  model::EnergyMacroModel model_;
  Digest model_digest_;
  BatchOptions options_;
  EvalCache cache_;
  ThreadPool pool_;
};

}  // namespace exten::service
