#pragma once

// BatchEstimator: the serving facade of the energy-estimation service.
//
// The paper's point (§I) is that the macro-model makes energy estimation
// fast enough to sit inside a design-space-exploration loop. This layer
// makes it fast enough to sit inside a *large* one: N estimation jobs fan
// out across a fixed thread pool (each worker builds its own Cpu/Memory/
// cache instances — see the thread-safety notes in sim/cpu.h and
// model/estimate.h), results land in job order regardless of scheduling,
// and a content-addressed cache makes re-evaluating an already-seen
// (program, TIE, processor) triple free.
//
// Error isolation: a job that throws (assembly referencing an unmapped
// address, an illegal instruction, a TIE fault, ...) is captured into its
// JobResult; the rest of the batch is unaffected.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "model/estimate.h"
#include "model/macro_model.h"
#include "model/test_program.h"
#include "service/eval_cache.h"
#include "service/thread_pool.h"
#include "sim/config.h"

namespace exten::service {

struct BatchOptions {
  /// Worker threads; 0 = hardware concurrency.
  unsigned num_threads = 0;
  /// Maximum cached evaluations (LRU); 0 disables the cache.
  std::size_t cache_capacity = 1024;
  /// Evaluation-cache lock stripes; 0 = auto (see EvalCache).
  std::size_t cache_stripes = 0;
  /// Job-queue depth; 0 = 2x worker count.
  std::size_t queue_capacity = 0;
  /// Per-job instruction budget forwarded to the simulator.
  std::uint64_t max_instructions = 200'000'000;
};

/// One estimation request.
struct BatchJob {
  std::string name;
  model::TestProgram program;
  sim::ProcessorConfig processor{};
  /// Per-job instruction budget; 0 = BatchOptions::max_instructions.
  std::uint64_t max_instructions = 0;
  /// Tracing correlation id (obs::Tracer::next_id()); 0 = no correlation.
  /// Worker-side spans (queue_wait, cache_probe, evaluate, engine, TIE)
  /// inherit it so a request can be followed across threads.
  std::uint64_t trace_id = 0;
};

/// Worker-side stage attribution for one job, always measured (feeds the
/// xtc_stage_duration_seconds histograms even when tracing is off). The
/// stages are disjoint subsets of worker_seconds; evaluate_seconds is 0 on
/// a cache hit.
struct JobTimings {
  /// Submission -> worker dequeue (time spent waiting in the pool queue).
  double queue_seconds = 0.0;
  /// Content hashing + evaluation-cache lookup.
  double cache_probe_seconds = 0.0;
  /// ISS simulation + macro-model evaluation (cache miss only).
  double evaluate_seconds = 0.0;
};

/// Cooperative cancellation handle shared between a submitter and the
/// worker that eventually dequeues the job. cancel() is a request, not an
/// interrupt: a job still *queued* is skipped entirely (its JobResult
/// reports cancelled); a job already simulating runs to completion and the
/// caller discards the result. Thread-safe.
class CancelToken {
 public:
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Outcome of one job. Exactly one of {ok, !error.empty()} holds.
struct JobResult {
  std::string name;
  bool ok = false;
  /// exten::Error (or std::exception) message when !ok.
  std::string error;
  /// The job was skipped because its CancelToken fired while it was still
  /// queued (ok is false and error says so).
  bool cancelled = false;
  /// Result was served from the evaluation cache.
  bool cache_hit = false;
  /// Valid when ok. On a cache hit this is the original evaluation,
  /// including its elapsed_seconds (the cost that was *avoided*).
  model::EnergyEstimate estimate;
  /// Wall-clock seconds this job spent in its worker (hash + cache
  /// lookup + simulation; microseconds on a hit).
  double worker_seconds = 0.0;
  /// Per-stage breakdown (queue wait, cache probe, evaluation).
  JobTimings timings;
};

/// Per-batch metrics (the cache counters are scoped to the batch, not the
/// cache lifetime — see BatchEstimator::cache_stats for the latter).
struct BatchMetrics {
  std::size_t jobs = 0;
  std::size_t succeeded = 0;
  std::size_t failed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  /// End-to-end wall-clock seconds for the batch.
  double wall_seconds = 0.0;
  /// Sum of worker_seconds over jobs — what one thread would have paid.
  double total_worker_seconds = 0.0;
  unsigned threads = 1;

  double hit_rate() const {
    const std::uint64_t lookups = cache_hits + cache_misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(cache_hits) /
                              static_cast<double>(lookups);
  }
  /// Parallel + cache speedup realized vs. running the same work serially.
  double speedup_vs_serial() const {
    return wall_seconds <= 0.0 ? 1.0 : total_worker_seconds / wall_seconds;
  }
};

struct BatchResult {
  /// results[i] corresponds to jobs[i] — deterministic, scheduling-free
  /// ordering.
  std::vector<JobResult> results;
  BatchMetrics metrics;

  /// True when every job succeeded.
  bool all_ok() const;
};

/// Thread safety: estimate() may be called from several threads at once
/// (jobs interleave on the shared pool; each call still returns its own
/// ordered results). The estimator must outlive every call.
class BatchEstimator {
 public:
  explicit BatchEstimator(model::EnergyMacroModel model,
                          BatchOptions options = {});

  /// Evaluates every job and returns results in job order. Per-job errors
  /// are captured, never thrown; throws only on internal service failure
  /// (pool already shut down).
  BatchResult estimate(std::span<const BatchJob> jobs);

  /// Convenience: single job.
  JobResult estimate_one(const BatchJob& job);

  /// Asynchronous, non-blocking single-job submission — the admission path
  /// for callers with their own event loop (the HTTP server). Returns
  /// false (and never calls `done`) when the pool queue is full or shut
  /// down; otherwise `done` runs exactly once on a worker thread with the
  /// job's result. A non-null `cancel` token lets the caller abandon a
  /// still-queued job (deadline expiry): the worker then skips the
  /// simulation and reports a cancelled JobResult.
  bool try_submit(BatchJob job, std::function<void(JobResult)> done,
                  std::shared_ptr<CancelToken> cancel = nullptr);

  /// Jobs waiting in the pool queue right now (for /metrics and
  /// backpressure decisions).
  std::size_t queue_depth() const { return pool_.queue_depth(); }
  std::size_t queue_capacity() const { return pool_.queue_capacity(); }

  const model::EnergyMacroModel& model() const { return model_; }
  unsigned num_threads() const { return pool_.num_threads(); }

  /// Lifetime cache counters (across batches).
  CacheStats cache_stats() const { return cache_.stats(); }
  void clear_cache() { cache_.clear(); }

 private:
  JobResult run_job(const BatchJob& job, const CancelToken* cancel,
                    std::chrono::steady_clock::time_point enqueued);

  model::EnergyMacroModel model_;
  Digest model_digest_;
  BatchOptions options_;
  EvalCache cache_;
  ThreadPool pool_;
};

}  // namespace exten::service
