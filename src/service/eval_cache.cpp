#include "service/eval_cache.h"

namespace exten::service {

EvalCache::EvalCache(std::size_t capacity) : capacity_(capacity) {
  stats_.capacity = capacity;
  if (capacity_ > 0) index_.reserve(capacity_);
}

std::optional<model::EnergyEstimate> EvalCache::lookup(const Digest& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh to MRU
  return it->second->second;
}

void EvalCache::insert(const Digest& key, model::EnergyEstimate estimate) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent miss on the same key: both threads computed the (equal)
    // result; refresh rather than grow.
    it->second->second = std::move(estimate);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.emplace_front(key, std::move(estimate));
  index_.emplace(key, lru_.begin());
  ++stats_.insertions;
}

CacheStats EvalCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats snapshot = stats_;
  snapshot.entries = lru_.size();
  return snapshot;
}

void EvalCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace exten::service
