#include "service/eval_cache.h"

#include <algorithm>

namespace exten::service {

namespace {
/// Approximate heap+inline footprint of one cached entry. The only
/// dynamic member of an EnergyEstimate is the per-custom-instruction
/// count map; 3 pointers stand in for the rb-tree node overhead.
std::uint64_t entry_bytes(const model::EnergyEstimate& estimate) {
  std::uint64_t bytes = sizeof(Digest) + sizeof(model::EnergyEstimate);
  for (const auto& [name, count] : estimate.stats.custom_counts) {
    (void)count;
    bytes += sizeof(std::pair<const std::string, std::uint64_t>) +
             3 * sizeof(void*) + name.capacity();
  }
  return bytes;
}

/// Stripe selector: mixes the digest differently from DigestHash (which
/// feeds the per-stripe index buckets) so stripe choice and bucket choice
/// stay decorrelated.
std::size_t stripe_index(const Digest& key, std::size_t num_stripes) {
  const std::uint64_t mixed = key.lo ^ (key.hi * 0x9e3779b97f4a7c15ull);
  return static_cast<std::size_t>(mixed % num_stripes);
}
}  // namespace

EvalCache::EvalCache(std::size_t capacity, std::size_t stripes)
    : capacity_(capacity) {
  if (stripes == 0) {
    stripes = capacity < kAutoStripeThreshold ? 1 : kMaxAutoStripes;
  }
  if (capacity > 0) stripes = std::min(stripes, capacity);
  stripes = std::max<std::size_t>(1, stripes);

  stripes_.reserve(stripes);
  const std::size_t base = capacity / stripes;
  const std::size_t remainder = capacity % stripes;
  for (std::size_t i = 0; i < stripes; ++i) {
    auto stripe = std::make_unique<Stripe>();
    stripe->capacity = base + (i < remainder ? 1 : 0);
    stripe->stats.capacity = stripe->capacity;
    if (stripe->capacity > 0) stripe->index.reserve(stripe->capacity);
    stripes_.push_back(std::move(stripe));
  }
}

std::size_t EvalCache::stripe_of(const Digest& key) const {
  return stripe_index(key, stripes_.size());
}

std::optional<model::EnergyEstimate> EvalCache::lookup(const Digest& key) {
  Stripe& stripe = *stripes_[stripe_of(key)];
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.index.find(key);
  if (it == stripe.index.end()) {
    ++stripe.stats.misses;
    return std::nullopt;
  }
  ++stripe.stats.hits;
  stripe.lru.splice(stripe.lru.begin(), stripe.lru,
                    it->second);  // refresh to MRU
  return it->second->second;
}

void EvalCache::insert(const Digest& key, model::EnergyEstimate estimate) {
  if (capacity_ == 0) return;
  Stripe& stripe = *stripes_[stripe_of(key)];
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.index.find(key);
  if (it != stripe.index.end()) {
    // Concurrent miss on the same key: both threads computed the (equal)
    // result; refresh rather than grow.
    stripe.stats.approx_bytes -= entry_bytes(it->second->second);
    it->second->second = std::move(estimate);
    stripe.stats.approx_bytes += entry_bytes(it->second->second);
    stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
    return;
  }
  if (stripe.lru.size() >= stripe.capacity) {
    stripe.stats.approx_bytes -= entry_bytes(stripe.lru.back().second);
    stripe.index.erase(stripe.lru.back().first);
    stripe.lru.pop_back();
    ++stripe.stats.evictions;
  }
  stripe.lru.emplace_front(key, std::move(estimate));
  stripe.index.emplace(key, stripe.lru.begin());
  stripe.stats.approx_bytes += entry_bytes(stripe.lru.front().second);
  ++stripe.stats.insertions;
}

CacheStats EvalCache::stats() const {
  CacheStats total;
  total.capacity = capacity_;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    total.hits += stripe->stats.hits;
    total.misses += stripe->stats.misses;
    total.insertions += stripe->stats.insertions;
    total.evictions += stripe->stats.evictions;
    total.entries += stripe->lru.size();
    total.approx_bytes += stripe->stats.approx_bytes;
  }
  return total;
}

CacheStats EvalCache::stripe_stats(std::size_t stripe_id) const {
  const Stripe& stripe = *stripes_[stripe_id];
  std::lock_guard<std::mutex> lock(stripe.mu);
  CacheStats snapshot = stripe.stats;
  snapshot.entries = stripe.lru.size();
  return snapshot;
}

void EvalCache::clear() {
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    stripe->lru.clear();
    stripe->index.clear();
    stripe->stats.approx_bytes = 0;
  }
}

}  // namespace exten::service
