#include "service/eval_cache.h"

namespace exten::service {

namespace {
/// Approximate heap+inline footprint of one cached entry. The only
/// dynamic member of an EnergyEstimate is the per-custom-instruction
/// count map; 3 pointers stand in for the rb-tree node overhead.
std::uint64_t entry_bytes(const model::EnergyEstimate& estimate) {
  std::uint64_t bytes = sizeof(Digest) + sizeof(model::EnergyEstimate);
  for (const auto& [name, count] : estimate.stats.custom_counts) {
    (void)count;
    bytes += sizeof(std::pair<const std::string, std::uint64_t>) +
             3 * sizeof(void*) + name.capacity();
  }
  return bytes;
}
}  // namespace

EvalCache::EvalCache(std::size_t capacity) : capacity_(capacity) {
  stats_.capacity = capacity;
  if (capacity_ > 0) index_.reserve(capacity_);
}

std::optional<model::EnergyEstimate> EvalCache::lookup(const Digest& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh to MRU
  return it->second->second;
}

void EvalCache::insert(const Digest& key, model::EnergyEstimate estimate) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent miss on the same key: both threads computed the (equal)
    // result; refresh rather than grow.
    stats_.approx_bytes -= entry_bytes(it->second->second);
    it->second->second = std::move(estimate);
    stats_.approx_bytes += entry_bytes(it->second->second);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    stats_.approx_bytes -= entry_bytes(lru_.back().second);
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.emplace_front(key, std::move(estimate));
  index_.emplace(key, lru_.begin());
  stats_.approx_bytes += entry_bytes(lru_.front().second);
  ++stats_.insertions;
}

CacheStats EvalCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats snapshot = stats_;
  snapshot.entries = lru_.size();
  return snapshot;
}

void EvalCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_.approx_bytes = 0;
}

}  // namespace exten::service
