#pragma once

// Binary encoding and decoding of XTC-32 instruction words.

#include <cstdint>

#include "isa/isa.h"

namespace exten::isa {

/// A decoded instruction. Field meanings depend on the opcode's format:
///  - RType:   rd, rs1, rs2
///  - IType:   rd, rs1, imm (stores: rs2 = value register, rs1 = base)
///  - UType:   rd, imm (already shifted: imm = raw18 << 14)
///  - Branch:  rs1, rs2, imm (word offset from the *next* instruction)
///  - JType:   imm (word offset from the next instruction)
///  - Custom:  rd, rs1, rs2, func (extension id)
struct DecodedInstr {
  Opcode op = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::uint8_t func = 0;
  std::int32_t imm = 0;

  bool operator==(const DecodedInstr&) const = default;
};

/// Encodes a decoded instruction into a 32-bit word.
/// Throws exten::Error if a field is out of range for the format
/// (register >= 64, immediate outside the format's range, …).
std::uint32_t encode(const DecodedInstr& instr);

/// Decodes a 32-bit word. Throws exten::Error on an undefined primary
/// opcode (the processor would raise an illegal-instruction exception).
DecodedInstr decode(std::uint32_t word);

/// Convenience constructors used by the assembler, tests and workloads.
DecodedInstr make_rtype(Opcode op, unsigned rd, unsigned rs1, unsigned rs2);
DecodedInstr make_itype(Opcode op, unsigned rd, unsigned rs1, std::int32_t imm);
DecodedInstr make_store(Opcode op, unsigned value_reg, unsigned base_reg,
                        std::int32_t imm);
DecodedInstr make_utype(Opcode op, unsigned rd, std::int32_t imm18);
DecodedInstr make_branch(Opcode op, unsigned rs1, unsigned rs2,
                         std::int32_t word_offset);
DecodedInstr make_jump(Opcode op, std::int32_t word_offset);
DecodedInstr make_custom(unsigned func, unsigned rd, unsigned rs1,
                         unsigned rs2);

}  // namespace exten::isa
