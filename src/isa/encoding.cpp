#include "isa/encoding.h"

#include "util/error.h"

namespace exten::isa {

namespace {

constexpr std::uint32_t kRegMask = 0x3f;    // 6 bits
constexpr std::uint32_t kFuncMask = 0xff;   // 8 bits
constexpr std::uint32_t kImm14Mask = 0x3fff;
constexpr std::uint32_t kImm18Mask = 0x3ffff;
constexpr std::uint32_t kImm26Mask = 0x3ffffff;

void check_reg(unsigned reg, const char* what) {
  EXTEN_CHECK(reg < kNumRegisters, what, " register r", reg,
              " out of range (0..", kNumRegisters - 1, ")");
}

std::int32_t sign_extend(std::uint32_t value, unsigned bits) {
  const std::uint32_t sign_bit = 1u << (bits - 1);
  const std::uint32_t mask = (1u << bits) - 1;
  value &= mask;
  if (value & sign_bit) value |= ~mask;
  return static_cast<std::int32_t>(value);
}

bool imm_is_unsigned(Opcode op) {
  // Logical immediates are zero-extended so that LUI+ORI composes 32-bit
  // constants; shift immediates are 0..31.
  switch (op) {
    case Opcode::kAndi:
    case Opcode::kOri:
    case Opcode::kXori:
    case Opcode::kSlli:
    case Opcode::kSrli:
    case Opcode::kSrai:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::uint32_t encode(const DecodedInstr& instr) {
  const OpcodeInfo& info = opcode_info(instr.op);
  const auto opbits = static_cast<std::uint32_t>(instr.op) << 26;

  switch (info.format) {
    case Format::RType: {
      check_reg(instr.rd, "rd");
      check_reg(instr.rs1, "rs1");
      check_reg(instr.rs2, "rs2");
      return opbits | (static_cast<std::uint32_t>(instr.rd) << 20) |
             (static_cast<std::uint32_t>(instr.rs1) << 14) |
             (static_cast<std::uint32_t>(instr.rs2) << 8);
    }
    case Format::IType: {
      check_reg(instr.rd, "rd");
      check_reg(instr.rs1, "rs1");
      if (info.cls == InstrClass::Store) check_reg(instr.rs2, "store value");
      if (imm_is_unsigned(instr.op)) {
        EXTEN_CHECK(instr.imm >= 0 && instr.imm <= kImm14UMax, info.mnemonic,
                    ": unsigned imm14 ", instr.imm, " out of range");
      } else {
        EXTEN_CHECK(instr.imm >= kImm14Min && instr.imm <= kImm14Max,
                    info.mnemonic, ": imm14 ", instr.imm, " out of range");
      }
      // Stores reuse the rd field for the value register (held in rs2 of the
      // decoded form).
      const std::uint32_t reg_field =
          info.cls == InstrClass::Store ? instr.rs2 : instr.rd;
      return opbits | (reg_field << 20) |
             (static_cast<std::uint32_t>(instr.rs1) << 14) |
             (static_cast<std::uint32_t>(instr.imm) & kImm14Mask);
    }
    case Format::UType: {
      check_reg(instr.rd, "rd");
      // instr.imm carries the full value (raw18 << 14); validate shape.
      EXTEN_CHECK((instr.imm & 0x3fff) == 0, "lui: imm ", instr.imm,
                  " has nonzero low 14 bits");
      const std::uint32_t raw18 =
          (static_cast<std::uint32_t>(instr.imm) >> 14) & kImm18Mask;
      return opbits | (static_cast<std::uint32_t>(instr.rd) << 20) | raw18;
    }
    case Format::BranchType: {
      check_reg(instr.rs1, "rs1");
      check_reg(instr.rs2, "rs2");
      EXTEN_CHECK(instr.imm >= kImm14Min && instr.imm <= kImm14Max,
                  info.mnemonic, ": branch offset ", instr.imm,
                  " words out of range");
      return opbits | (static_cast<std::uint32_t>(instr.rs1) << 20) |
             (static_cast<std::uint32_t>(instr.rs2) << 14) |
             (static_cast<std::uint32_t>(instr.imm) & kImm14Mask);
    }
    case Format::JType: {
      EXTEN_CHECK(instr.imm >= kImm26Min && instr.imm <= kImm26Max,
                  info.mnemonic, ": jump offset ", instr.imm,
                  " words out of range");
      return opbits | (static_cast<std::uint32_t>(instr.imm) & kImm26Mask);
    }
    case Format::CustomType: {
      check_reg(instr.rd, "rd");
      check_reg(instr.rs1, "rs1");
      check_reg(instr.rs2, "rs2");
      return opbits | (static_cast<std::uint32_t>(instr.rd) << 20) |
             (static_cast<std::uint32_t>(instr.rs1) << 14) |
             (static_cast<std::uint32_t>(instr.rs2) << 8) |
             (static_cast<std::uint32_t>(instr.func) & kFuncMask);
    }
    case Format::None:
      return opbits;
  }
  throw Error("encode: unhandled format for ", info.mnemonic);
}

DecodedInstr decode(std::uint32_t word) {
  const std::uint32_t primary = word >> 26;
  EXTEN_CHECK(primary < static_cast<std::uint32_t>(Opcode::kOpcodeCount),
              "illegal instruction: undefined primary opcode ", primary,
              " in word 0x", std::hex, word);
  const auto op = static_cast<Opcode>(primary);
  const OpcodeInfo& info = opcode_info(op);

  DecodedInstr d;
  d.op = op;
  switch (info.format) {
    case Format::RType:
      d.rd = (word >> 20) & kRegMask;
      d.rs1 = (word >> 14) & kRegMask;
      d.rs2 = (word >> 8) & kRegMask;
      break;
    case Format::IType: {
      const std::uint8_t reg_field = (word >> 20) & kRegMask;
      d.rs1 = (word >> 14) & kRegMask;
      if (info.cls == InstrClass::Store) {
        d.rs2 = reg_field;
      } else {
        d.rd = reg_field;
      }
      if (imm_is_unsigned(op)) {
        d.imm = static_cast<std::int32_t>(word & kImm14Mask);
      } else {
        d.imm = sign_extend(word & kImm14Mask, 14);
      }
      break;
    }
    case Format::UType:
      d.rd = (word >> 20) & kRegMask;
      d.imm = static_cast<std::int32_t>((word & kImm18Mask) << 14);
      break;
    case Format::BranchType:
      d.rs1 = (word >> 20) & kRegMask;
      d.rs2 = (word >> 14) & kRegMask;
      d.imm = sign_extend(word & kImm14Mask, 14);
      break;
    case Format::JType:
      d.imm = sign_extend(word & kImm26Mask, 26);
      break;
    case Format::CustomType:
      d.rd = (word >> 20) & kRegMask;
      d.rs1 = (word >> 14) & kRegMask;
      d.rs2 = (word >> 8) & kRegMask;
      d.func = word & kFuncMask;
      break;
    case Format::None:
      break;
  }
  return d;
}

DecodedInstr make_rtype(Opcode op, unsigned rd, unsigned rs1, unsigned rs2) {
  DecodedInstr d;
  d.op = op;
  d.rd = static_cast<std::uint8_t>(rd);
  d.rs1 = static_cast<std::uint8_t>(rs1);
  d.rs2 = static_cast<std::uint8_t>(rs2);
  return d;
}

DecodedInstr make_itype(Opcode op, unsigned rd, unsigned rs1,
                        std::int32_t imm) {
  DecodedInstr d;
  d.op = op;
  d.rd = static_cast<std::uint8_t>(rd);
  d.rs1 = static_cast<std::uint8_t>(rs1);
  d.imm = imm;
  return d;
}

DecodedInstr make_store(Opcode op, unsigned value_reg, unsigned base_reg,
                        std::int32_t imm) {
  DecodedInstr d;
  d.op = op;
  d.rs2 = static_cast<std::uint8_t>(value_reg);
  d.rs1 = static_cast<std::uint8_t>(base_reg);
  d.imm = imm;
  return d;
}

DecodedInstr make_utype(Opcode op, unsigned rd, std::int32_t imm) {
  DecodedInstr d;
  d.op = op;
  d.rd = static_cast<std::uint8_t>(rd);
  d.imm = imm;
  return d;
}

DecodedInstr make_branch(Opcode op, unsigned rs1, unsigned rs2,
                         std::int32_t word_offset) {
  DecodedInstr d;
  d.op = op;
  d.rs1 = static_cast<std::uint8_t>(rs1);
  d.rs2 = static_cast<std::uint8_t>(rs2);
  d.imm = word_offset;
  return d;
}

DecodedInstr make_jump(Opcode op, std::int32_t word_offset) {
  DecodedInstr d;
  d.op = op;
  d.imm = word_offset;
  return d;
}

DecodedInstr make_custom(unsigned func, unsigned rd, unsigned rs1,
                         unsigned rs2) {
  DecodedInstr d;
  d.op = Opcode::kCustom;
  d.func = static_cast<std::uint8_t>(func);
  d.rd = static_cast<std::uint8_t>(rd);
  d.rs1 = static_cast<std::uint8_t>(rs1);
  d.rs2 = static_cast<std::uint8_t>(rs2);
  return d;
}

}  // namespace exten::isa
