#pragma once

// Two-pass assembler for XTC-32 assembly source.
//
// Syntax overview:
//   # comment  or  ; comment
//   label:                         (also allowed on the same line as code)
//   .text / .data                  section switch (independent counters)
//   .org ADDR                      start a new segment at ADDR
//   .align N                       align to N bytes (power of two, zero fill)
//   .word  E [, E ...]             32-bit little-endian values
//   .half  E [, E ...]             16-bit values
//   .byte  E [, E ...]             8-bit values
//   .space N                       N zero bytes
//   .equ NAME, E                   assembler constant
//   add  rd, rs1, rs2              R-type
//   addi rd, rs1, E                I-type
//   lw   rd, E(rs1)                load (also lh/lhu/lb/lbu)
//   sw   rv, E(rs1)                store (also sh/sb)
//   lui  rd, E                     E's low 14 bits must be zero
//   beq  rs1, rs2, LABEL           branches take label or expression targets
//   j    LABEL / jal LABEL / jr rs / jalr rs
//   NAME rd, rs1, rs2              custom instruction (registered mnemonic)
//
// Pseudo-instructions: li rd, E (always expands to lui+ori, 8 bytes),
// mv rd, rs; not rd, rs; neg rd, rs; b LABEL; call LABEL; ret.
//
// Register names: r0..r63 plus aliases zero (r0), ra (r1), sp (r2),
// a0..a7 (r10..r17), t0..t9 (r20..r29), s0..s9 (r30..r39).
//
// Operand expressions support +, -, parentheses, decimal/hex/binary
// literals, symbols, and %hi(E) / %lo(E) for 32-bit constant composition.
//
// The entry point is the `_start` symbol if defined, otherwise the start of
// the first .text segment.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "isa/program.h"

namespace exten::isa {

/// Operand signature of a custom instruction: which encoding fields its
/// assembly operands map to, in rd, rs1, rs2 order. An instruction that
/// only reads rs1 (e.g. "setalpha t0") takes one operand, bound to rs1.
struct CustomMnemonic {
  std::uint8_t func = 0;
  bool has_rd = false;
  bool has_rs1 = false;
  bool has_rs2 = false;

  unsigned operand_count() const {
    return static_cast<unsigned>(has_rd) + static_cast<unsigned>(has_rs1) +
           static_cast<unsigned>(has_rs2);
  }
};

/// Options controlling assembly.
struct AssemblerOptions {
  std::uint32_t text_base = kTextBase;
  std::uint32_t data_base = kDataBase;
  /// Custom instruction mnemonics, provided by the TIE compiler for a given
  /// processor configuration.
  std::map<std::string, CustomMnemonic, std::less<>> custom_mnemonics;
};

/// Assembles `source` into a program image.
/// Throws exten::Error with a "line N: ..." message on any syntax, range,
/// or symbol error.
ProgramImage assemble(std::string_view source,
                      const AssemblerOptions& options = {});

/// Parses a register name ("r7", "sp", "a0", ...). Throws exten::Error on
/// an unknown name. Exposed for tests and the disassembler.
unsigned parse_register(std::string_view token);

/// Canonical display name for a register number (r-number form).
std::string register_name(unsigned reg);

}  // namespace exten::isa
