#pragma once

// Disassembly of XTC-32 instruction words back to assembler syntax.
// Used by tests (round-trip property), trace dumps, and debug tooling.

#include <cstdint>
#include <map>
#include <string>

#include "isa/encoding.h"

namespace exten::isa {

/// Options for disassembly.
struct DisassemblerOptions {
  /// Reverse mapping func -> custom mnemonic; unknown funcs are rendered as
  /// "custom.<func>".
  std::map<std::uint8_t, std::string> custom_mnemonics;
};

/// Renders one decoded instruction in the assembler's input syntax.
/// Branch/jump targets are rendered as relative word offsets ("pc+N").
std::string disassemble(const DecodedInstr& instr,
                        const DisassemblerOptions& options = {});

/// Decodes and renders a raw word.
std::string disassemble_word(std::uint32_t word,
                             const DisassemblerOptions& options = {});

}  // namespace exten::isa
