#pragma once

// Program images: the loadable output of the assembler and the input of the
// simulator. An image is a set of byte segments at absolute addresses plus
// an entry point and a symbol table.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace exten::isa {

/// Default memory layout used by the assembler and workloads.
/// Anything at or above kUncachedBase bypasses the caches (device region).
inline constexpr std::uint32_t kTextBase = 0x0000'1000;
inline constexpr std::uint32_t kDataBase = 0x0002'0000;
inline constexpr std::uint32_t kStackTop = 0x000f'fff0;
inline constexpr std::uint32_t kUncachedBase = 0x8000'0000;

/// One contiguous run of initialized bytes.
struct Segment {
  std::uint32_t base = 0;
  std::vector<std::uint8_t> bytes;

  std::uint32_t end() const {
    return base + static_cast<std::uint32_t>(bytes.size());
  }
};

/// A fully linked program.
class ProgramImage {
 public:
  /// Appends a segment. Throws exten::Error if it overlaps an existing one.
  void add_segment(Segment segment);

  /// Defines a symbol. Throws exten::Error on duplicate definition with a
  /// different value.
  void define_symbol(const std::string& name, std::uint32_t value);

  /// Looks up a symbol value.
  std::optional<std::uint32_t> symbol(const std::string& name) const;

  const std::vector<Segment>& segments() const { return segments_; }
  const std::map<std::string, std::uint32_t>& symbols() const {
    return symbols_;
  }

  std::uint32_t entry_point() const { return entry_point_; }
  void set_entry_point(std::uint32_t entry) { entry_point_ = entry; }

  /// Total number of initialized bytes across segments.
  std::size_t total_bytes() const;

  /// Reads a 32-bit little-endian word from the image; nullopt if any of the
  /// four bytes is uninitialized.
  std::optional<std::uint32_t> read_word(std::uint32_t address) const;

 private:
  std::vector<Segment> segments_;
  std::map<std::string, std::uint32_t> symbols_;
  std::uint32_t entry_point_ = kTextBase;
};

}  // namespace exten::isa
