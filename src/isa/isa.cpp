#include "isa/isa.h"

#include <array>
#include <cassert>
#include <unordered_map>

namespace exten::isa {

namespace {

using enum Format;
using enum InstrClass;

// One row per opcode, in enumerator order. reads/writes flags describe
// register-file port usage for hazard detection and energy accounting.
constexpr std::array<OpcodeInfo, kOpcodeCount> kOpcodeTable = {{
    //  opcode        mnemonic  format      class       rs1    rs2    rd
    {Opcode::kAdd, "add", RType, Arithmetic, true, true, true},
    {Opcode::kSub, "sub", RType, Arithmetic, true, true, true},
    {Opcode::kAnd, "and", RType, Arithmetic, true, true, true},
    {Opcode::kOr, "or", RType, Arithmetic, true, true, true},
    {Opcode::kXor, "xor", RType, Arithmetic, true, true, true},
    {Opcode::kNor, "nor", RType, Arithmetic, true, true, true},
    {Opcode::kAndn, "andn", RType, Arithmetic, true, true, true},
    {Opcode::kSll, "sll", RType, Arithmetic, true, true, true},
    {Opcode::kSrl, "srl", RType, Arithmetic, true, true, true},
    {Opcode::kSra, "sra", RType, Arithmetic, true, true, true},
    {Opcode::kSlt, "slt", RType, Arithmetic, true, true, true},
    {Opcode::kSltu, "sltu", RType, Arithmetic, true, true, true},
    {Opcode::kMul, "mul", RType, Arithmetic, true, true, true},
    {Opcode::kMulh, "mulh", RType, Arithmetic, true, true, true},
    {Opcode::kMin, "min", RType, Arithmetic, true, true, true},
    {Opcode::kMax, "max", RType, Arithmetic, true, true, true},
    {Opcode::kMinu, "minu", RType, Arithmetic, true, true, true},
    {Opcode::kMaxu, "maxu", RType, Arithmetic, true, true, true},
    {Opcode::kAddi, "addi", IType, Arithmetic, true, false, true},
    {Opcode::kAndi, "andi", IType, Arithmetic, true, false, true},
    {Opcode::kOri, "ori", IType, Arithmetic, true, false, true},
    {Opcode::kXori, "xori", IType, Arithmetic, true, false, true},
    {Opcode::kSlli, "slli", IType, Arithmetic, true, false, true},
    {Opcode::kSrli, "srli", IType, Arithmetic, true, false, true},
    {Opcode::kSrai, "srai", IType, Arithmetic, true, false, true},
    {Opcode::kSlti, "slti", IType, Arithmetic, true, false, true},
    {Opcode::kSltiu, "sltiu", IType, Arithmetic, true, false, true},
    {Opcode::kLui, "lui", UType, Arithmetic, false, false, true},
    {Opcode::kLw, "lw", IType, Load, true, false, true},
    {Opcode::kLh, "lh", IType, Load, true, false, true},
    {Opcode::kLhu, "lhu", IType, Load, true, false, true},
    {Opcode::kLb, "lb", IType, Load, true, false, true},
    {Opcode::kLbu, "lbu", IType, Load, true, false, true},
    // Stores carry the value register in the rd field slot of the encoding
    // but semantically *read* it; reads_rs2 marks the value read.
    {Opcode::kSw, "sw", IType, Store, true, true, false},
    {Opcode::kSh, "sh", IType, Store, true, true, false},
    {Opcode::kSb, "sb", IType, Store, true, true, false},
    {Opcode::kJ, "j", JType, Jump, false, false, false},
    {Opcode::kJal, "jal", JType, Jump, false, false, true},
    {Opcode::kJr, "jr", RType, Jump, true, false, false},
    {Opcode::kJalr, "jalr", RType, Jump, true, false, true},
    {Opcode::kBeq, "beq", BranchType, Branch, true, true, false},
    {Opcode::kBne, "bne", BranchType, Branch, true, true, false},
    {Opcode::kBlt, "blt", BranchType, Branch, true, true, false},
    {Opcode::kBge, "bge", BranchType, Branch, true, true, false},
    {Opcode::kBltu, "bltu", BranchType, Branch, true, true, false},
    {Opcode::kBgeu, "bgeu", BranchType, Branch, true, true, false},
    {Opcode::kBeqz, "beqz", BranchType, Branch, true, false, false},
    {Opcode::kBnez, "bnez", BranchType, Branch, true, false, false},
    {Opcode::kNop, "nop", None, Misc, false, false, false},
    {Opcode::kHalt, "halt", None, Misc, false, false, false},
    {Opcode::kCustom, "custom", CustomType, Custom, true, true, true},
}};

const std::unordered_map<std::string_view, Opcode>& mnemonic_map() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string_view, Opcode>();
    for (const auto& info : kOpcodeTable) m->emplace(info.mnemonic, info.opcode);
    return m;
  }();
  return *map;
}

}  // namespace

const OpcodeInfo& opcode_info(Opcode op) {
  const auto index = static_cast<std::size_t>(op);
  assert(index < kOpcodeTable.size());
  const OpcodeInfo& info = kOpcodeTable[index];
  assert(info.opcode == op && "opcode table out of order");
  return info;
}

std::optional<Opcode> find_opcode(std::string_view mnemonic) {
  const auto& map = mnemonic_map();
  auto it = map.find(mnemonic);
  if (it == map.end()) return std::nullopt;
  return it->second;
}

}  // namespace exten::isa
