#pragma once

// Serialization of program images to a simple, diff-friendly text format,
// used by the command-line tools (xtc-asm emits it, xtc-run / xtc-dis /
// xtc-energy consume it).
//
// Format:
//   exten-image v1
//   entry 0x00001000
//   symbol _start 0x00001000
//   segment 0x00001000 64
//   0011223344...                 (hex, 32 bytes per line)
//
// Order: header, entry, symbols (sorted), segments with their data.

#include <iosfwd>
#include <string>
#include <string_view>

#include "isa/program.h"

namespace exten::isa {

/// Writes `image` in the text format above.
void write_image(std::ostream& os, const ProgramImage& image);

/// Convenience: returns the serialized text.
std::string image_to_string(const ProgramImage& image);

/// Parses the text format. Throws exten::Error with a line-numbered
/// message on any syntax or consistency problem.
ProgramImage parse_image(std::string_view text);

}  // namespace exten::isa
