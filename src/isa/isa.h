#pragma once

// XTC-32: the base instruction-set architecture of our extensible processor.
//
// XTC-32 is a from-scratch 32-bit in-order RISC ISA standing in for the
// Xtensa base ISA of the paper. It has ~45 base opcodes in six macro-model
// classes (arithmetic, load, store, jump, branch, misc), 64 general-purpose
// 32-bit registers (r0 hardwired to zero, r1 the link register), and one
// CUSTOM primary opcode whose 8-bit `func` field selects a TIE-lite custom
// instruction (up to 256 extensions per configuration).
//
// Encoding (32 bits, little-endian in memory):
//   [31:26] primary opcode
//   R-type:  [25:20] rd   [19:14] rs1  [13:8] rs2  [7:0] zero
//   I-type:  [25:20] rd   [19:14] rs1  [13:0] imm14 (signed for arithmetic
//            and memory offsets; zero-extended for ANDI/ORI/XORI)
//   U-type:  [25:20] rd   [17:0]  imm18 (LUI: rd = imm18 << 14)
//   Branch:  [25:20] rs1  [19:14] rs2  [13:0] imm14 word offset from the
//            instruction after the branch
//   J-type:  [25:0] imm26 signed word offset from the next instruction
//   Custom:  [25:20] rd   [19:14] rs1  [13:8] rs2  [7:0] func (extension id)

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace exten::isa {

/// Number of architected general-purpose registers (Xtensa T1040 config:
/// 64 32-bit registers).
inline constexpr unsigned kNumRegisters = 64;
/// r0 always reads zero; writes are ignored.
inline constexpr unsigned kZeroRegister = 0;
/// Link register used by JAL/JALR.
inline constexpr unsigned kLinkRegister = 1;
/// Stack pointer by software convention (used by workloads).
inline constexpr unsigned kStackRegister = 2;

/// Macro-model instruction classes (paper §IV-B.1). Branches are a single
/// static class; the taken/untaken split is resolved dynamically by the
/// simulator when it accounts cycles.
enum class InstrClass : std::uint8_t {
  Arithmetic,  ///< ALU / shift / compare / multiply on the base datapath
  Load,        ///< memory loads
  Store,       ///< memory stores
  Jump,        ///< unconditional control transfer
  Branch,      ///< conditional control transfer
  Custom,      ///< TIE-lite extension instruction
  Misc,        ///< NOP / HALT (counted with arithmetic for energy purposes)
};

/// Number of InstrClass values (for per-class counter arrays).
inline constexpr std::size_t kInstrClassCount = 7;

/// Instruction word formats.
enum class Format : std::uint8_t {
  RType,
  IType,
  UType,
  BranchType,
  JType,
  CustomType,
  None,  ///< NOP / HALT
};

/// Base-ISA opcodes. The enumerator value is the 6-bit primary opcode.
enum class Opcode : std::uint8_t {
  // R-type arithmetic.
  kAdd = 0,
  kSub,
  kAnd,
  kOr,
  kXor,
  kNor,
  kAndn,
  kSll,
  kSrl,
  kSra,
  kSlt,
  kSltu,
  kMul,
  kMulh,
  kMin,
  kMax,
  kMinu,
  kMaxu,
  // I-type arithmetic.
  kAddi,
  kAndi,
  kOri,
  kXori,
  kSlli,
  kSrli,
  kSrai,
  kSlti,
  kSltiu,
  kLui,
  // Loads.
  kLw,
  kLh,
  kLhu,
  kLb,
  kLbu,
  // Stores.
  kSw,
  kSh,
  kSb,
  // Jumps.
  kJ,
  kJal,
  kJr,
  kJalr,
  // Branches.
  kBeq,
  kBne,
  kBlt,
  kBge,
  kBltu,
  kBgeu,
  kBeqz,
  kBnez,
  // Misc.
  kNop,
  kHalt,
  // Extension entry point.
  kCustom,

  kOpcodeCount,
};

inline constexpr unsigned kOpcodeCount =
    static_cast<unsigned>(Opcode::kOpcodeCount);

/// Static properties of one opcode.
struct OpcodeInfo {
  Opcode opcode;
  std::string_view mnemonic;
  Format format;
  InstrClass cls;
  bool reads_rs1;
  bool reads_rs2;
  bool writes_rd;
};

/// Returns the static descriptor for `op`. Precondition: op is a valid
/// opcode (not kOpcodeCount).
const OpcodeInfo& opcode_info(Opcode op);

/// Looks up an opcode by mnemonic (lower case). Returns nullopt for unknown
/// mnemonics (including pseudo-instructions, which only the assembler knows).
std::optional<Opcode> find_opcode(std::string_view mnemonic);

/// True if `op` is a conditional branch.
inline bool is_branch(Opcode op) {
  return opcode_info(op).cls == InstrClass::Branch;
}

/// True if `op` is a load.
inline bool is_load(Opcode op) { return opcode_info(op).cls == InstrClass::Load; }

/// Maximum/minimum signed 14-bit immediate.
inline constexpr std::int32_t kImm14Max = (1 << 13) - 1;
inline constexpr std::int32_t kImm14Min = -(1 << 13);
/// Maximum unsigned 14-bit immediate (logical immediates).
inline constexpr std::int32_t kImm14UMax = (1 << 14) - 1;
/// Maximum unsigned 18-bit immediate (LUI).
inline constexpr std::int32_t kImm18UMax = (1 << 18) - 1;
/// Signed 26-bit jump offset bounds (in words).
inline constexpr std::int32_t kImm26Max = (1 << 25) - 1;
inline constexpr std::int32_t kImm26Min = -(1 << 25);

}  // namespace exten::isa
