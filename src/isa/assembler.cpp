#include "isa/assembler.h"

#include <cctype>
#include <optional>
#include <vector>

#include "isa/encoding.h"
#include "util/error.h"
#include "util/strings.h"

namespace exten::isa {

namespace {

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

/// Symbol environment for expression evaluation. During pass 1 labels may be
/// unknown; expressions are then deferred to pass 2.
class SymbolEnv {
 public:
  void define(const std::string& name, std::int64_t value) {
    values_[name] = value;
  }
  std::optional<std::int64_t> lookup(std::string_view name) const {
    auto it = values_.find(std::string(name));
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::map<std::string, std::int64_t> values_;
};

/// Recursive-descent evaluator for operand expressions.
/// Grammar:  expr := term (('+'|'-') term)*
///           term := NUMBER | SYMBOL | '%hi' '(' expr ')' | '%lo' '(' expr ')'
///                 | '(' expr ')' | '-' term
class ExprParser {
 public:
  ExprParser(std::string_view text, const SymbolEnv& env)
      : text_(text), env_(env) {}

  std::int64_t parse() {
    const std::int64_t value = parse_expr();
    skip_ws();
    if (pos_ != text_.size()) {
      throw Error("trailing characters in expression '", text_, "'");
    }
    return value;
  }

 private:
  std::int64_t parse_expr() {
    std::int64_t value = parse_term();
    for (;;) {
      skip_ws();
      if (peek() == '+') {
        ++pos_;
        value += parse_term();
      } else if (peek() == '-') {
        ++pos_;
        value -= parse_term();
      } else {
        return value;
      }
    }
  }

  std::int64_t parse_term() {
    skip_ws();
    if (peek() == '-') {
      ++pos_;
      return -parse_term();
    }
    if (peek() == '(') {
      ++pos_;
      const std::int64_t value = parse_expr();
      expect(')');
      return value;
    }
    if (peek() == '%') {
      return parse_hi_lo();
    }
    return parse_atom();
  }

  std::int64_t parse_hi_lo() {
    ++pos_;  // consume '%'
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    const std::string_view name = text_.substr(start, pos_ - start);
    skip_ws();
    expect('(');
    const std::int64_t inner = parse_expr();
    expect(')');
    const auto u = static_cast<std::uint32_t>(inner);
    if (name == "hi") return static_cast<std::int64_t>(u & ~0x3fffu);
    if (name == "lo") return static_cast<std::int64_t>(u & 0x3fffu);
    throw Error("unknown operator %", name, " in expression '", text_, "'");
  }

  std::int64_t parse_atom() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.' || c == 'x' || c == 'X') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty()) {
      throw Error("expected number or symbol in expression '", text_,
                  "' at offset ", start);
    }
    std::int64_t number = 0;
    if (parse_int(token, &number)) return number;
    if (auto value = env_.lookup(token)) return *value;
    throw Error("undefined symbol '", token, "'");
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void expect(char c) {
    skip_ws();
    if (peek() != c) {
      throw Error("expected '", c, "' in expression '", text_, "'");
    }
    ++pos_;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  const SymbolEnv& env_;
  std::size_t pos_ = 0;
};

std::int64_t eval_expr(std::string_view text, const SymbolEnv& env) {
  return ExprParser(text, env).parse();
}

// ---------------------------------------------------------------------------
// Statement model
// ---------------------------------------------------------------------------

enum class Section { Text, Data };

struct Statement {
  int line = 0;
  Section section = Section::Text;
  std::uint32_t address = 0;        // resolved in pass 1
  std::string mnemonic;             // lower-cased; empty for pure labels
  std::vector<std::string> operands;
  std::size_t size = 0;             // bytes emitted
};

/// Splits "op a, b, c" into mnemonic and operand list. Operand commas inside
/// parentheses do not occur in this grammar, so a flat comma split is fine.
void split_statement(std::string_view text, std::string* mnemonic,
                     std::vector<std::string>* operands) {
  text = trim(text);
  std::size_t i = 0;
  while (i < text.size() &&
         !std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  *mnemonic = to_lower(text.substr(0, i));
  operands->clear();
  const std::string_view rest = trim(text.substr(i));
  if (rest.empty()) return;
  for (std::string_view field : split(rest, ',', /*keep_empty=*/true)) {
    operands->push_back(std::string(trim(field)));
  }
}

/// Splits "E(rs)" memory operands into offset expression and register token.
void split_mem_operand(std::string_view operand, std::string* offset,
                       std::string* reg) {
  const std::size_t open = operand.rfind('(');
  EXTEN_CHECK(open != std::string_view::npos && operand.back() == ')',
              "malformed memory operand '", operand, "', expected off(reg)");
  *offset = std::string(trim(operand.substr(0, open)));
  if (offset->empty()) *offset = "0";
  *reg = std::string(trim(operand.substr(open + 1, operand.size() - open - 2)));
}

// ---------------------------------------------------------------------------
// Assembler driver
// ---------------------------------------------------------------------------

class Assembler {
 public:
  explicit Assembler(const AssemblerOptions& options) : options_(options) {}

  ProgramImage run(std::string_view source) {
    pass1(source);
    return pass2();
  }

 private:
  struct SectionState {
    std::uint32_t cursor = 0;
  };

  void pass1(std::string_view source) {
    sections_[Section::Text].cursor = options_.text_base;
    sections_[Section::Data].cursor = options_.data_base;
    Section current = Section::Text;

    int line_number = 0;
    for (std::string_view raw_line : split_lines(source)) {
      ++line_number;
      std::string_view line = raw_line;
      // Strip comments.
      if (const std::size_t hash = line.find_first_of("#;");
          hash != std::string_view::npos) {
        line = line.substr(0, hash);
      }
      line = trim(line);
      if (line.empty()) continue;

      try {
        // Peel off any leading labels.
        while (true) {
          const std::size_t colon = line.find(':');
          if (colon == std::string_view::npos) break;
          const std::string_view label = trim(line.substr(0, colon));
          // A colon inside an expression can't occur in this grammar, but a
          // label must be a plain identifier; otherwise treat ':' as error.
          EXTEN_CHECK(is_identifier(label), "invalid label '", label, "'");
          EXTEN_CHECK(!symbols_.lookup(label).has_value(),
                      "duplicate label '", label, "'");
          symbols_.define(std::string(label), sections_[current].cursor);
          label_names_.emplace_back(label);
          line = trim(line.substr(colon + 1));
          if (line.empty()) break;
        }
        if (line.empty()) continue;

        Statement st;
        st.line = line_number;
        split_statement(line, &st.mnemonic, &st.operands);

        if (st.mnemonic == ".text") {
          current = Section::Text;
          continue;
        }
        if (st.mnemonic == ".data") {
          current = Section::Data;
          continue;
        }
        if (st.mnemonic == ".equ") {
          EXTEN_CHECK(st.operands.size() == 2, ".equ needs NAME, VALUE");
          symbols_.define(st.operands[0], eval_expr(st.operands[1], symbols_));
          continue;
        }
        if (st.mnemonic == ".org") {
          EXTEN_CHECK(st.operands.size() == 1, ".org needs one operand");
          const std::int64_t addr = eval_expr(st.operands[0], symbols_);
          EXTEN_CHECK(addr >= 0 && addr <= 0xffffffffll, ".org address 0x",
                      std::hex, addr, " out of range");
          sections_[current].cursor = static_cast<std::uint32_t>(addr);
          st.section = current;
          st.address = sections_[current].cursor;
          st.size = 0;
          statements_.push_back(st);
          continue;
        }

        st.section = current;
        st.address = sections_[current].cursor;
        st.size = statement_size(st);
        sections_[current].cursor += static_cast<std::uint32_t>(st.size);
        statements_.push_back(std::move(st));
      } catch (const Error& e) {
        throw Error("line ", line_number, ": ", e.what());
      }
    }
  }

  std::size_t statement_size(const Statement& st) {
    const std::string& m = st.mnemonic;
    if (m == ".align") {
      EXTEN_CHECK(st.operands.size() == 1, ".align needs one operand");
      const std::int64_t align = eval_expr(st.operands[0], symbols_);
      EXTEN_CHECK(align > 0 && (align & (align - 1)) == 0,
                  ".align requires a power of two, got ", align);
      const std::uint32_t cursor = st.address;
      const auto mask = static_cast<std::uint32_t>(align - 1);
      return ((cursor + mask) & ~mask) - cursor;
    }
    if (m == ".word") return 4 * st.operands.size();
    if (m == ".half") return 2 * st.operands.size();
    if (m == ".byte") return st.operands.size();
    if (m == ".space") {
      EXTEN_CHECK(st.operands.size() == 1, ".space needs one operand");
      const std::int64_t n = eval_expr(st.operands[0], symbols_);
      EXTEN_CHECK(n >= 0, ".space size must be non-negative, got ", n);
      return static_cast<std::size_t>(n);
    }
    EXTEN_CHECK(m[0] != '.', "unknown directive '", m, "'");
    if (m == "li") return 8;  // always lui + ori for deterministic sizing
    return 4;                 // every real instruction and other pseudos
  }

  ProgramImage pass2() {
    ProgramImage image;
    for (const auto& name : label_names_) {
      image.define_symbol(name, static_cast<std::uint32_t>(
                                    symbols_.lookup(name).value()));
    }

    // Group consecutive statements into contiguous segments.
    struct Builder {
      std::uint32_t base = 0;
      std::uint32_t next = 0;
      std::vector<std::uint8_t> bytes;
      bool open = false;
    };
    std::map<Section, Builder> builders;
    std::vector<Segment> finished;

    auto flush = [&](Builder& b) {
      if (b.open && !b.bytes.empty()) {
        finished.push_back(Segment{b.base, std::move(b.bytes)});
      }
      b.bytes = {};
      b.open = false;
    };

    for (const Statement& st : statements_) {
      Builder& b = builders[st.section];
      if (!b.open || st.address != b.next) {
        flush(b);
        b.base = st.address;
        b.next = st.address;
        b.open = true;
      }
      try {
        std::vector<std::uint8_t> bytes = emit(st);
        EXTEN_CHECK(bytes.size() == st.size, "internal: statement '",
                    st.mnemonic, "' emitted ", bytes.size(),
                    " bytes, pass 1 sized ", st.size);
        b.bytes.insert(b.bytes.end(), bytes.begin(), bytes.end());
        b.next += static_cast<std::uint32_t>(bytes.size());
      } catch (const Error& e) {
        throw Error("line ", st.line, ": ", e.what());
      }
    }
    for (auto& [section, b] : builders) flush(b);
    for (Segment& s : finished) image.add_segment(std::move(s));

    if (auto start = image.symbol("_start")) {
      image.set_entry_point(*start);
    } else {
      image.set_entry_point(options_.text_base);
    }
    return image;
  }

  std::vector<std::uint8_t> emit(const Statement& st) {
    const std::string& m = st.mnemonic;
    if (m == ".org") return {};
    if (m == ".align") return std::vector<std::uint8_t>(st.size, 0);
    if (m == ".space") return std::vector<std::uint8_t>(st.size, 0);
    if (m == ".word" || m == ".half" || m == ".byte") {
      const std::size_t width = m == ".word" ? 4 : (m == ".half" ? 2 : 1);
      std::vector<std::uint8_t> out;
      out.reserve(width * st.operands.size());
      for (const std::string& operand : st.operands) {
        const auto value =
            static_cast<std::uint64_t>(eval_expr(operand, symbols_));
        for (std::size_t i = 0; i < width; ++i) {
          out.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
        }
      }
      return out;
    }
    return emit_instruction(st);
  }

  std::vector<std::uint8_t> emit_instruction(const Statement& st) {
    std::vector<DecodedInstr> instrs = expand(st);
    std::vector<std::uint8_t> out;
    out.reserve(4 * instrs.size());
    for (const DecodedInstr& d : instrs) {
      const std::uint32_t word = encode(d);
      out.push_back(static_cast<std::uint8_t>(word));
      out.push_back(static_cast<std::uint8_t>(word >> 8));
      out.push_back(static_cast<std::uint8_t>(word >> 16));
      out.push_back(static_cast<std::uint8_t>(word >> 24));
    }
    return out;
  }

  std::int32_t eval32(const std::string& text) {
    const std::int64_t v = eval_expr(text, symbols_);
    EXTEN_CHECK(v >= INT32_MIN && v <= 0xffffffffll, "value ", v,
                " does not fit in 32 bits");
    return static_cast<std::int32_t>(v);
  }

  /// Word offset from the instruction after `st` to the target expression.
  std::int32_t branch_offset(const Statement& st, const std::string& target,
                             std::size_t instr_index) {
    const std::int64_t dest = eval_expr(target, symbols_);
    const std::int64_t next =
        static_cast<std::int64_t>(st.address) + 4 * (instr_index + 1);
    const std::int64_t delta = dest - next;
    EXTEN_CHECK(delta % 4 == 0, "branch target 0x", std::hex, dest,
                " is not word aligned");
    return static_cast<std::int32_t>(delta / 4);
  }

  std::vector<DecodedInstr> expand(const Statement& st) {
    const std::string& m = st.mnemonic;
    const auto& ops = st.operands;
    auto need = [&](std::size_t n) {
      EXTEN_CHECK(ops.size() == n, m, " expects ", n, " operand(s), got ",
                  ops.size());
    };

    // Pseudo-instructions first.
    if (m == "li") {
      need(2);
      const unsigned rd = parse_register(ops[0]);
      const auto value = static_cast<std::uint32_t>(eval32(ops[1]));
      return {make_utype(Opcode::kLui, rd,
                         static_cast<std::int32_t>(value & ~0x3fffu)),
              make_itype(Opcode::kOri, rd, rd,
                         static_cast<std::int32_t>(value & 0x3fffu))};
    }
    if (m == "mv") {
      need(2);
      return {make_itype(Opcode::kAddi, parse_register(ops[0]),
                         parse_register(ops[1]), 0)};
    }
    if (m == "not") {
      need(2);
      return {make_rtype(Opcode::kNor, parse_register(ops[0]),
                         parse_register(ops[1]), kZeroRegister)};
    }
    if (m == "neg") {
      need(2);
      return {make_rtype(Opcode::kSub, parse_register(ops[0]), kZeroRegister,
                         parse_register(ops[1]))};
    }
    if (m == "ret") {
      need(0);
      return {make_rtype(Opcode::kJr, 0, kLinkRegister, 0)};
    }
    if (m == "b") {
      need(1);
      return {make_jump(Opcode::kJ, branch_offset(st, ops[0], 0))};
    }
    if (m == "call") {
      need(1);
      DecodedInstr d = make_jump(Opcode::kJal, branch_offset(st, ops[0], 0));
      d.rd = kLinkRegister;
      return {d};
    }

    // Base-ISA instructions.
    if (auto op = find_opcode(m)) {
      const OpcodeInfo& info = opcode_info(*op);
      switch (info.format) {
        case Format::RType:
          if (*op == Opcode::kJr) {
            need(1);
            return {make_rtype(*op, 0, parse_register(ops[0]), 0)};
          }
          if (*op == Opcode::kJalr) {
            need(1);
            DecodedInstr d = make_rtype(*op, kLinkRegister,
                                        parse_register(ops[0]), 0);
            return {d};
          }
          need(3);
          return {make_rtype(*op, parse_register(ops[0]),
                             parse_register(ops[1]), parse_register(ops[2]))};
        case Format::IType:
          if (info.cls == InstrClass::Load) {
            need(2);
            std::string offset, base;
            split_mem_operand(ops[1], &offset, &base);
            return {make_itype(*op, parse_register(ops[0]),
                               parse_register(base), eval32(offset))};
          }
          if (info.cls == InstrClass::Store) {
            need(2);
            std::string offset, base;
            split_mem_operand(ops[1], &offset, &base);
            return {make_store(*op, parse_register(ops[0]),
                               parse_register(base), eval32(offset))};
          }
          need(3);
          return {make_itype(*op, parse_register(ops[0]),
                             parse_register(ops[1]), eval32(ops[2]))};
        case Format::UType:
          need(2);
          return {make_utype(*op, parse_register(ops[0]), eval32(ops[1]))};
        case Format::BranchType: {
          const bool zero_form = (*op == Opcode::kBeqz || *op == Opcode::kBnez);
          if (zero_form) {
            need(2);
            return {make_branch(*op, parse_register(ops[0]), kZeroRegister,
                                branch_offset(st, ops[1], 0))};
          }
          need(3);
          return {make_branch(*op, parse_register(ops[0]),
                              parse_register(ops[1]),
                              branch_offset(st, ops[2], 0))};
        }
        case Format::JType:
          need(1);
          {
            DecodedInstr d = make_jump(*op, branch_offset(st, ops[0], 0));
            if (*op == Opcode::kJal) d.rd = kLinkRegister;
            return {d};
          }
        case Format::None:
          need(0);
          return {DecodedInstr{.op = *op}};
        case Format::CustomType:
          break;  // "custom" raw mnemonic falls through to custom handling
      }
    }

    // Custom instructions: mnemonic registered by the TIE compiler. The
    // operands bind positionally to the fields the instruction declares,
    // in rd, rs1, rs2 order.
    auto it = options_.custom_mnemonics.find(m);
    EXTEN_CHECK(it != options_.custom_mnemonics.end(),
                "unknown mnemonic '", m, "'");
    const CustomMnemonic& sig = it->second;
    need(sig.operand_count());
    unsigned rd = 0, rs1 = 0, rs2 = 0;
    std::size_t next = 0;
    if (sig.has_rd) rd = parse_register(ops[next++]);
    if (sig.has_rs1) rs1 = parse_register(ops[next++]);
    if (sig.has_rs2) rs2 = parse_register(ops[next++]);
    return {make_custom(sig.func, rd, rs1, rs2)};
  }

  AssemblerOptions options_;
  SymbolEnv symbols_;
  std::vector<std::string> label_names_;
  std::vector<Statement> statements_;
  std::map<Section, SectionState> sections_;
};

}  // namespace

unsigned parse_register(std::string_view token) {
  token = trim(token);
  EXTEN_CHECK(!token.empty(), "empty register operand");
  const std::string lower = to_lower(token);
  auto numbered = [&](std::string_view prefix, unsigned base,
                      unsigned count) -> std::optional<unsigned> {
    if (!starts_with(lower, prefix)) return std::nullopt;
    std::int64_t n = 0;
    if (!parse_int(lower.substr(prefix.size()), &n)) return std::nullopt;
    if (n < 0 || n >= static_cast<std::int64_t>(count)) return std::nullopt;
    return base + static_cast<unsigned>(n);
  };
  if (lower == "zero") return 0;
  if (lower == "ra") return kLinkRegister;
  if (lower == "sp") return kStackRegister;
  if (auto r = numbered("r", 0, kNumRegisters)) return *r;
  if (auto r = numbered("a", 10, 8)) return *r;
  if (auto r = numbered("t", 20, 10)) return *r;
  if (auto r = numbered("s", 30, 10)) return *r;
  throw Error("unknown register '", token, "'");
}

std::string register_name(unsigned reg) { return "r" + std::to_string(reg); }

ProgramImage assemble(std::string_view source,
                      const AssemblerOptions& options) {
  return Assembler(options).run(source);
}

}  // namespace exten::isa
