#include "isa/disassembler.h"

#include <sstream>

#include "isa/assembler.h"

namespace exten::isa {

namespace {

std::string offset_target(std::int32_t words) {
  const std::int32_t bytes = (words + 1) * 4;
  std::ostringstream os;
  os << "pc" << (bytes >= 0 ? "+" : "") << bytes;
  return os.str();
}

}  // namespace

std::string disassemble(const DecodedInstr& instr,
                        const DisassemblerOptions& options) {
  const OpcodeInfo& info = opcode_info(instr.op);
  std::ostringstream os;

  switch (info.format) {
    case Format::RType:
      if (instr.op == Opcode::kJr || instr.op == Opcode::kJalr) {
        os << info.mnemonic << ' ' << register_name(instr.rs1);
      } else {
        os << info.mnemonic << ' ' << register_name(instr.rd) << ", "
           << register_name(instr.rs1) << ", " << register_name(instr.rs2);
      }
      break;
    case Format::IType:
      if (info.cls == InstrClass::Load) {
        os << info.mnemonic << ' ' << register_name(instr.rd) << ", "
           << instr.imm << '(' << register_name(instr.rs1) << ')';
      } else if (info.cls == InstrClass::Store) {
        os << info.mnemonic << ' ' << register_name(instr.rs2) << ", "
           << instr.imm << '(' << register_name(instr.rs1) << ')';
      } else {
        os << info.mnemonic << ' ' << register_name(instr.rd) << ", "
           << register_name(instr.rs1) << ", " << instr.imm;
      }
      break;
    case Format::UType:
      os << info.mnemonic << ' ' << register_name(instr.rd) << ", 0x"
         << std::hex << static_cast<std::uint32_t>(instr.imm);
      break;
    case Format::BranchType:
      if (instr.op == Opcode::kBeqz || instr.op == Opcode::kBnez) {
        os << info.mnemonic << ' ' << register_name(instr.rs1) << ", "
           << offset_target(instr.imm);
      } else {
        os << info.mnemonic << ' ' << register_name(instr.rs1) << ", "
           << register_name(instr.rs2) << ", " << offset_target(instr.imm);
      }
      break;
    case Format::JType:
      os << info.mnemonic << ' ' << offset_target(instr.imm);
      break;
    case Format::CustomType: {
      auto it = options.custom_mnemonics.find(instr.func);
      const std::string name = it != options.custom_mnemonics.end()
                                   ? it->second
                                   : "custom." + std::to_string(instr.func);
      os << name << ' ' << register_name(instr.rd) << ", "
         << register_name(instr.rs1) << ", " << register_name(instr.rs2);
      break;
    }
    case Format::None:
      os << info.mnemonic;
      break;
  }
  return os.str();
}

std::string disassemble_word(std::uint32_t word,
                             const DisassemblerOptions& options) {
  return disassemble(decode(word), options);
}

}  // namespace exten::isa
