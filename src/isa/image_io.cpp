#include "isa/image_io.h"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace exten::isa {

namespace {

constexpr std::string_view kHeader = "exten-image v1";

void write_hex32(std::ostream& os, std::uint32_t value) {
  os << "0x" << std::hex << std::setw(8) << std::setfill('0') << value
     << std::dec << std::setfill(' ');
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::uint32_t parse_u32(std::string_view token, int line) {
  std::int64_t value = 0;
  EXTEN_CHECK(parse_int(token, &value) && value >= 0 && value <= 0xffffffffll,
              "line ", line, ": bad 32-bit value '", token, "'");
  return static_cast<std::uint32_t>(value);
}

}  // namespace

void write_image(std::ostream& os, const ProgramImage& image) {
  os << kHeader << '\n';
  os << "entry ";
  write_hex32(os, image.entry_point());
  os << '\n';
  for (const auto& [name, value] : image.symbols()) {
    os << "symbol " << name << ' ';
    write_hex32(os, value);
    os << '\n';
  }
  for (const Segment& segment : image.segments()) {
    os << "segment ";
    write_hex32(os, segment.base);
    os << ' ' << segment.bytes.size() << '\n';
    for (std::size_t i = 0; i < segment.bytes.size(); ++i) {
      os << std::hex << std::setw(2) << std::setfill('0')
         << static_cast<unsigned>(segment.bytes[i]) << std::dec
         << std::setfill(' ');
      if ((i + 1) % 32 == 0 || i + 1 == segment.bytes.size()) os << '\n';
    }
  }
}

std::string image_to_string(const ProgramImage& image) {
  std::ostringstream os;
  write_image(os, image);
  return os.str();
}

ProgramImage parse_image(std::string_view text) {
  const std::vector<std::string_view> lines = split_lines(text);
  EXTEN_CHECK(!lines.empty() && trim(lines[0]) == kHeader,
              "bad image header (expected '", kHeader, "')");

  ProgramImage image;
  bool entry_seen = false;
  std::size_t li = 1;
  while (li < lines.size()) {
    const std::string_view line = trim(lines[li]);
    const int line_number = static_cast<int>(li) + 1;
    ++li;
    if (line.empty()) continue;
    const auto fields = split(line, ' ');
    if (fields[0] == "entry") {
      EXTEN_CHECK(fields.size() == 2, "line ", line_number,
                  ": entry needs one value");
      image.set_entry_point(parse_u32(fields[1], line_number));
      entry_seen = true;
    } else if (fields[0] == "symbol") {
      EXTEN_CHECK(fields.size() == 3, "line ", line_number,
                  ": symbol needs NAME VALUE");
      image.define_symbol(std::string(fields[1]),
                          parse_u32(fields[2], line_number));
    } else if (fields[0] == "segment") {
      EXTEN_CHECK(fields.size() == 3, "line ", line_number,
                  ": segment needs BASE SIZE");
      Segment segment;
      segment.base = parse_u32(fields[1], line_number);
      const std::uint32_t size = parse_u32(fields[2], line_number);
      segment.bytes.reserve(size);
      // Consume hex data lines until `size` bytes are read.
      while (segment.bytes.size() < size) {
        EXTEN_CHECK(li < lines.size(), "line ", line_number, ": segment at 0x",
                    std::hex, segment.base, std::dec, " truncated: got ",
                    segment.bytes.size(), " of ", size, " bytes");
        const std::string_view data = trim(lines[li]);
        const int data_line = static_cast<int>(li) + 1;
        ++li;
        EXTEN_CHECK(data.size() % 2 == 0, "line ", data_line,
                    ": odd-length hex line");
        for (std::size_t i = 0; i < data.size(); i += 2) {
          const int hi = hex_digit(data[i]);
          const int lo = hex_digit(data[i + 1]);
          EXTEN_CHECK(hi >= 0 && lo >= 0, "line ", data_line,
                      ": bad hex byte '", data.substr(i, 2), "'");
          segment.bytes.push_back(static_cast<std::uint8_t>(hi * 16 + lo));
        }
        EXTEN_CHECK(segment.bytes.size() <= size, "line ", data_line,
                    ": segment data overruns declared size ", size);
      }
      image.add_segment(std::move(segment));
    } else {
      throw Error("line ", line_number, ": unknown record '", fields[0], "'");
    }
  }
  EXTEN_CHECK(entry_seen, "image has no entry record");
  return image;
}

}  // namespace exten::isa
