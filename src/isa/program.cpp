#include "isa/program.h"

#include "util/error.h"

namespace exten::isa {

void ProgramImage::add_segment(Segment segment) {
  for (const Segment& existing : segments_) {
    const bool disjoint =
        segment.end() <= existing.base || existing.end() <= segment.base;
    EXTEN_CHECK(disjoint, "segment [0x", std::hex, segment.base, ", 0x",
                segment.end(), ") overlaps [0x", existing.base, ", 0x",
                existing.end(), ")");
  }
  if (!segment.bytes.empty()) segments_.push_back(std::move(segment));
}

void ProgramImage::define_symbol(const std::string& name,
                                 std::uint32_t value) {
  auto [it, inserted] = symbols_.emplace(name, value);
  EXTEN_CHECK(inserted || it->second == value, "symbol '", name,
              "' redefined: 0x", std::hex, it->second, " vs 0x", value);
}

std::optional<std::uint32_t> ProgramImage::symbol(
    const std::string& name) const {
  auto it = symbols_.find(name);
  if (it == symbols_.end()) return std::nullopt;
  return it->second;
}

std::size_t ProgramImage::total_bytes() const {
  std::size_t total = 0;
  for (const Segment& s : segments_) total += s.bytes.size();
  return total;
}

std::optional<std::uint32_t> ProgramImage::read_word(
    std::uint32_t address) const {
  for (const Segment& s : segments_) {
    if (address >= s.base && address + 4 <= s.end()) {
      const std::size_t off = address - s.base;
      return static_cast<std::uint32_t>(s.bytes[off]) |
             (static_cast<std::uint32_t>(s.bytes[off + 1]) << 8) |
             (static_cast<std::uint32_t>(s.bytes[off + 2]) << 16) |
             (static_cast<std::uint32_t>(s.bytes[off + 3]) << 24);
    }
  }
  return std::nullopt;
}

}  // namespace exten::isa
