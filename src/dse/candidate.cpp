#include "dse/candidate.h"

#include "fuzz/gen_program.h"
#include "service/content_hash.h"

namespace exten::dse {

CandidateSources expand_candidate(const Genome& genome,
                                  const GenomeOptions& options) {
  CandidateSources sources;
  sources.tie_source = to_tie_source(genome, options);
  sources.tie = std::make_shared<const tie::TieConfiguration>(
      tie::compile_tie_source(sources.tie_source));

  // The harness is regenerated per candidate from the same fixed seed: the
  // program *structure* draws are identical across candidates, while the
  // custom-instruction blocks adapt to the candidate's own mnemonics.
  fuzz::ProgramGenOptions program;
  program.blocks = options.harness_blocks;
  program.allow_loops = true;
  for (const auto& [name, mnemonic] : sources.tie->assembler_mnemonics()) {
    program.customs.push_back(
        {name, mnemonic.has_rd, mnemonic.has_rs1, mnemonic.has_rs2});
  }
  Rng harness_rng(Rng::derive_seed(options.harness_seed, 0));
  sources.asm_source = fuzz::generate_program(harness_rng, program);

  service::ContentHasher hasher;
  hasher.str(sources.tie_source);
  hasher.str(sources.asm_source);
  sources.name = "g" + hasher.digest().hex().substr(0, 16);
  return sources;
}

service::BatchJob make_job(const CandidateSources& sources) {
  service::BatchJob job;
  job.name = sources.name;
  job.program =
      model::make_test_program(sources.name, sources.asm_source, sources.tie);
  return job;
}

}  // namespace exten::dse
