#pragma once

// Durable search state: JSON-lines run log + atomic checkpoint snapshot.
//
// A checkpoint directory holds three files:
//
//   run.jsonl        append-only audit log: one "start" record per process
//                    segment, then one "generation" record per completed
//                    generation (names + scores of every proposal).
//   checkpoint.json  the full resumable state, rewritten atomically
//                    (tmp + rename) after every generation: search
//                    definition, progress counters, frontier, strategy
//                    state. A kill at any point leaves the previous
//                    complete snapshot in place.
//   frontier.json    canonical frontier snapshot (generation, evaluations,
//                    ranked frontier) with no timing or process-local
//                    counters — byte-comparable across a rerun or a
//                    kill + resume of the same seed (the CI smoke diffs
//                    exactly this file).
//
// Bit-reproducible resume: everything the search's future depends on is a
// pure function of (checkpoint state, seed, generation index) — strategy
// RNG streams are derived per generation, scores are pure functions of the
// candidate — so a resumed run's remaining generations are identical to
// the uninterrupted run's. Wall-clock and cache counters are process-local
// observations, deliberately kept out of frontier.json.

#include <cstdint>
#include <string>
#include <vector>

#include "dse/strategy.h"
#include "explore/explore.h"

namespace exten::dse {

const char* objective_name(explore::Objective objective);
explore::Objective parse_objective(std::string_view name);

/// Everything checkpoint.json persists.
struct CheckpointData {
  // Search definition (fixed at --resume; a changed definition would make
  // the remaining generations incomparable).
  std::string strategy;
  std::uint64_t seed = 1;
  explore::Objective objective = explore::Objective::kEdp;
  std::uint64_t budget = 0;
  std::size_t frontier_size = 16;
  GenomeOptions genome{};
  StrategyOptions search{};
  // Progress.
  std::uint64_t generation = 0;
  std::uint64_t evaluations = 0;
  std::uint64_t infeasible = 0;
  std::vector<ScoredGenome> frontier;
  /// Parsed strategy state object (fed to Strategy::load_state); kept as
  /// raw JSON so the checkpoint module needs no strategy knowledge.
  JsonValue strategy_state;
};

/// Serializes the checkpoint (strategy state supplied by `strategy`).
std::string render_checkpoint(const CheckpointData& data,
                              const Strategy& strategy);

/// Parses checkpoint.json text. Throws exten::Error on malformed or
/// version-incompatible input.
CheckpointData parse_checkpoint(const std::string& text);

/// The canonical frontier snapshot (see header comment).
std::string render_frontier(std::uint64_t generation,
                            std::uint64_t evaluations,
                            const std::vector<ScoredGenome>& frontier);

/// Creates `dir` (and parents) when missing; throws exten::Error when the
/// path exists but is not a directory.
void ensure_directory(const std::string& dir);

/// Whole-file read; throws exten::Error when unreadable.
std::string read_checkpoint_file(const std::string& path);
bool checkpoint_file_exists(const std::string& path);

/// Write via tmp + rename so readers (and a kill mid-write) never observe
/// a partial file.
void write_file_atomic(const std::string& path, const std::string& content);

/// Appends one line to the run log (creates the file when missing).
void append_run_log(const std::string& path, const std::string& line);

}  // namespace exten::dse
